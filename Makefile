# Build/test entry points; `make ci` is what the repository considers green.
GO ?= go

.PHONY: all build test race bench bench-json bench-compare fuzz ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The campaign worker pool must be race-clean; this is the gate for it.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./...

# Benchmark results as committable JSON (see BENCH_PR*.json baselines).
# Override BENCH_OUT to choose the output file.
BENCH_OUT ?= BENCH.json
bench-json:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./... | $(GO) run ./cmd/dfrs-bench > $(BENCH_OUT)

# Compare the current PR's committed baseline against the previous one and
# flag >10% ns/op regressions. Non-blocking in CI (single-iteration
# benchmark timings are noisy; treat failures as a prompt to re-measure,
# not a verdict). Override BENCH_OLD/BENCH_NEW to diff other baselines.
BENCH_OLD ?= BENCH_PR9.json
BENCH_NEW ?= BENCH_PR10.json
bench-compare:
	$(GO) run ./cmd/dfrs-bench -compare -old $(BENCH_OLD) -new $(BENCH_NEW) -threshold 10

# Short fuzz session over the SWF parser (the deterministic corpus also
# runs as a normal test in `make test`).
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/swf/

ci: build test race
