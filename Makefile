# Build/test entry points; `make ci` is what the repository considers green.
GO ?= go

.PHONY: all build test race bench bench-json fuzz ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The campaign worker pool must be race-clean; this is the gate for it.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Benchmark results as committable JSON (see BENCH_PR*.json baselines).
# Override BENCH_OUT to choose the output file.
BENCH_OUT ?= BENCH.json
bench-json:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./... | $(GO) run ./cmd/dfrs-bench > $(BENCH_OUT)

# Short fuzz session over the SWF parser (the deterministic corpus also
# runs as a normal test in `make test`).
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/swf/

ci: build test race
