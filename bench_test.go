// Benchmarks regenerating every table and figure of the paper, plus the
// ablation studies of DESIGN.md. Each benchmark executes the corresponding
// experiment at a reduced-but-representative scale (full-paper scale is
// CPU-hours; use cmd/dfrs-exp with -traces 100 -jobs 1000 for that) and
// reports the experiment's headline quantities as custom benchmark metrics.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
package dfrs_test

import (
	"context"
	"fmt"
	"testing"

	dfrs "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/lublin"
	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/vectorpack"
)

// benchConfig is the shared reduced-scale campaign configuration.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Traces = 1
	cfg.JobsPerTrace = 100
	cfg.Nodes = 128
	cfg.Loads = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	cfg.HPC2NWeeks = 2
	return cfg
}

// BenchmarkFigure1a regenerates Figure 1(a): average degradation factor vs
// load with no rescheduling penalty. The reported metrics are the mean
// degradation of the batch baseline (EASY) and the periodic DFRS winner
// (DYNMCB8-ASAP-PER) averaged over all loads — the paper's headline gap.
func BenchmarkFigure1a(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(context.Background(), cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(meanOf(res.Mean["easy"]), "easy-deg")
		b.ReportMetric(meanOf(res.Mean["dynmcb8-asap-per"]), "asapper-deg")
		b.ReportMetric(meanOf(res.Mean["dynmcb8"]), "dynmcb8-deg")
	}
}

// BenchmarkFigure1b regenerates Figure 1(b): the same sweep under the
// 5-minute rescheduling penalty.
func BenchmarkFigure1b(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(context.Background(), cfg, experiments.PaperPenalty)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(meanOf(res.Mean["easy"]), "easy-deg")
		b.ReportMetric(meanOf(res.Mean["dynmcb8-asap-per"]), "asapper-deg")
		b.ReportMetric(meanOf(res.Mean["dynmcb8"]), "dynmcb8-deg")
	}
}

// BenchmarkTableI regenerates Table I: degradation statistics over scaled
// synthetic, unscaled synthetic, and HPC2N-like workloads at the 5-minute
// penalty. Reported metrics are the average degradation of EASY and
// DYNMCB8-ASAP-PER on the scaled set.
func BenchmarkTableI(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableI(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Scaled["easy"].Mean, "easy-scaled-deg")
		b.ReportMetric(res.Scaled["dynmcb8-asap-per"].Mean, "asapper-scaled-deg")
		b.ReportMetric(res.RealWorld["greedy-pmtn"].Mean, "gpmtn-real-deg")
	}
}

// BenchmarkTableII regenerates Table II: preemption/migration bandwidth and
// operation rates on high-load scaled traces. Reported metrics are
// DYNMCB8-PER's average preemption bandwidth (GB/s) and migrations per
// hour, the two quantities the paper discusses.
func BenchmarkTableII(b *testing.B) {
	cfg := benchConfig()
	cfg.Algorithms = experiments.PreemptingAlgorithms
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableII(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		row := res.Streams["dynmcb8-per"]
		b.ReportMetric(row[0].Mean, "per-pmtn-GBps")
		b.ReportMetric(row[3].Mean, "per-mig-perhour")
	}
}

// BenchmarkTimingStudy regenerates the Section V measurement: time for
// DYNMCB8 to compute an allocation per scheduling event.
func BenchmarkTimingStudy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.TimingStudy(context.Background(), cfg, "dynmcb8")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.All.Mean*1e3, "alloc-ms-avg")
		b.ReportMetric(res.All.Max*1e3, "alloc-ms-max")
		b.ReportMetric(100*res.SmallFastFrac, "small-fast-%")
	}
}

// BenchmarkMCB8Allocation measures one min-yield maximization (binary
// search over MCB8 packings) on a representative high-load job mix — the
// inner loop of every DYNMCB8 scheduling event, reported per allocation.
func BenchmarkMCB8Allocation(b *testing.B) {
	tr, err := lublin.GenerateTrace(rng.New(1), lublin.DefaultParams(128), 60, "bench")
	if err != nil {
		b.Fatal(err)
	}
	specs := make([]core.JobSpec, len(tr.Jobs))
	for i, j := range tr.Jobs {
		specs[i] = core.JobSpec{ID: i, Tasks: j.Tasks, CPUNeed: j.CPUNeed, MemReq: j.MemReq}
	}
	// A random 60-job slice may be memory-infeasible on 128 nodes; shed
	// jobs from the tail until the packing exists, exactly as the
	// DYNMCB8 schedulers do.
	for len(specs) > 0 {
		if _, ok := core.MaxMinYield(specs, cluster.Homogeneous(128), vectorpack.MCB8{}); ok {
			break
		}
		specs = specs[:len(specs)-1]
	}
	if len(specs) == 0 {
		b.Fatal("no feasible job subset")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := core.MaxMinYield(specs, cluster.Homogeneous(128), vectorpack.MCB8{}); !ok {
			b.Fatal("bench instance infeasible")
		}
	}
}

// BenchmarkAblationPriorityPower regenerates ablation A1: the squared
// priority function against the linear variant (the paper reports the
// linear one is markedly worse).
func BenchmarkAblationPriorityPower(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationPriorityPower(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Stats["greedy-pmtn"].Mean, "squared-deg")
		b.ReportMetric(res.Stats["greedy-pmtn-linprio"].Mean, "linear-deg")
	}
}

// BenchmarkAblationPeriod regenerates ablation A2: the scheduling period
// sweep T in {60, 600, 3600} for DYNMCB8-ASAP-PER.
func BenchmarkAblationPeriod(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationPeriod(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Stats["dynmcb8-asap-per-60"].Mean, "T60-deg")
		b.ReportMetric(res.Stats["dynmcb8-asap-per"].Mean, "T600-deg")
		b.ReportMetric(res.Stats["dynmcb8-asap-per-3600"].Mean, "T3600-deg")
	}
}

// BenchmarkAblationPacker regenerates ablation A3: MCB8 against first-fit
// and best-fit decreasing inside DYNMCB8-PER.
func BenchmarkAblationPacker(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationPacker(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Stats["dynmcb8-per"].Mean, "mcb8-deg")
		b.ReportMetric(res.Stats["dynmcb8-per-ffd"].Mean, "ffd-deg")
		b.ReportMetric(res.Stats["dynmcb8-per-bfd"].Mean, "bfd-deg")
	}
}

// BenchmarkExtensionFairness regenerates experiment A4: the Section VII
// fairness extension (long-running jobs excluded from the average-yield
// improvement).
func BenchmarkExtensionFairness(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExtensionFairness(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Stats["dynmcb8-per"].Mean, "base-deg")
		b.ReportMetric(res.Stats["dynmcb8-per-fair"].Mean, "fair-deg")
	}
}

// benchState is a flat-array placement.State over a 128-node bimodal
// priced platform, the shape every selection scan presents to an
// objective.
type benchState struct {
	d          int
	caps, free []float64
	load, cost []float64
}

func (s *benchState) Dims() int                { return s.d }
func (s *benchState) Cap(node, k int) float64  { return s.caps[node*s.d+k] }
func (s *benchState) Free(node, k int) float64 { return s.free[node*s.d+k] }
func (s *benchState) CPULoad(node int) float64 { return s.load[node] }
func (s *benchState) Cost(node int) float64    { return s.cost[node] }

// BenchmarkObjectiveScore measures one full selection scan — scoring all
// 128 candidates of a bimodal priced platform through the objective
// indirection and picking the argmin — for each built-in objective. This
// is the per-task overhead every scheduler family pays when a placement
// objective is configured; the default (nil-objective) paths bypass it.
func BenchmarkObjectiveScore(b *testing.B) {
	const n, d = 128, 3
	st := &benchState{
		d:    d,
		caps: make([]float64, n*d),
		free: make([]float64, n*d),
		load: make([]float64, n),
		cost: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		scale := 1.0
		if i%2 == 0 {
			scale, st.cost[i] = 2, 3
		} else {
			st.cost[i] = 1
		}
		for k := 0; k < d; k++ {
			st.caps[i*d+k] = scale
			st.free[i*d+k] = scale * float64(1+i%7) / 7
		}
		st.load[i] = scale - st.free[i*d]
	}
	dem := func(k int) float64 { return 0.1 }
	feasible := func(node int) bool { return st.free[node*d+1] >= 0.1 }
	for _, obj := range []placement.Objective{
		placement.LoadBalance{}, placement.Cost{}, placement.BestFit{}, placement.WorstFit{},
	} {
		b.Run(obj.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if placement.Pick(n, dem, st, feasible, obj) < 0 {
					b.Fatal("no feasible node")
				}
			}
		})
	}
}

// BenchmarkCostObjectiveSimulation measures a full greedy-pmtn simulation
// on the priced bimodal mix under the cost objective — the end-to-end
// price of routing every placement through the objective layer, to be
// read against BenchmarkSingleSimulation/greedy-pmtn-like baselines.
func BenchmarkCostObjectiveSimulation(b *testing.B) {
	tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 2, Nodes: 128, Jobs: 150})
	if err != nil {
		b.Fatal(err)
	}
	tr, err = tr.ScaleToLoad(0.7)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := dfrs.Run(context.Background(), tr, "greedy-pmtn",
			dfrs.WithPenalty(experiments.PaperPenalty),
			dfrs.WithNodeMix("bimodal-priced"), dfrs.WithObjective("cost"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Cost(), "cost-units")
	}
}

// BenchmarkSingleSimulation measures the simulator's raw event-processing
// throughput for each algorithm family on one mid-load trace.
func BenchmarkSingleSimulation(b *testing.B) {
	tr, err := lublin.GenerateTrace(rng.New(2), lublin.DefaultParams(128), 150, "bench")
	if err != nil {
		b.Fatal(err)
	}
	scaled, err := tr.ScaleToLoad(0.7)
	if err != nil {
		b.Fatal(err)
	}
	for _, alg := range []string{"fcfs", "easy", "greedy", "greedy-pmtn", "dynmcb8", "dynmcb8-asap-per"} {
		b.Run(alg, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunOne(context.Background(), scaled, alg, experiments.PaperPenalty, false)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Events), "events")
			}
		})
	}
}

// BenchmarkFederationDispatch measures the shared-clock orchestrator's
// overhead per dispatch policy: a 2-cluster cloud-bursting federation
// (free on-prem + priced remote) over one mid-load trace, to be read
// against BenchmarkSingleSimulation (the single-cluster engine processes
// the same kind of event stream without the dispatch layer).
func BenchmarkFederationDispatch(b *testing.B) {
	tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 2, Nodes: 64, Jobs: 150})
	if err != nil {
		b.Fatal(err)
	}
	tr, err = tr.ScaleToLoad(0.9)
	if err != nil {
		b.Fatal(err)
	}
	spec := dfrs.FederationSpec{
		Clusters: []dfrs.ClusterSpec{
			{Name: "onprem", Nodes: 64},
			{Name: "remote", NodeMix: "bimodal-priced", Nodes: 64},
		},
		Algorithm: "greedy-pmtn",
	}
	for _, dispatcher := range dfrs.Dispatchers() {
		spec.Dispatcher = dispatcher
		b.Run(dispatcher, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := dfrs.RunFederated(context.Background(), tr, spec,
					dfrs.WithPenalty(experiments.PaperPenalty))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Events()), "events")
				b.ReportMetric(res.Cost(), "cost-units")
				b.ReportMetric(float64(res.Dispatched()[1]), "burst-jobs")
			}
		})
	}
}

// BenchmarkFederationParallel measures the conservative-lookahead parallel
// federation loop on a members × workers grid: identical uniform members
// under round-robin dispatch (the stateless policy, so arrival batches
// stretch the lookahead horizon), with the per-member MCB scheduler
// supplying real work between barriers. workers=1 rows run the serial
// heap loop and are the speedup baseline; the wall-clock ratio at
// members=8/workers=4 is the PR-10 acceptance number. On single-core
// hosts the rows collapse to parity (the pool cannot run concurrently);
// results are byte-identical across rows either way.
func BenchmarkFederationParallel(b *testing.B) {
	for _, members := range []int{4, 8} {
		tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{
			Seed: 5, Nodes: 64, Jobs: 300 * members,
		})
		if err != nil {
			b.Fatal(err)
		}
		tr, err = tr.ScaleToLoad(0.9)
		if err != nil {
			b.Fatal(err)
		}
		clusters := make([]dfrs.ClusterSpec, members)
		for i := range clusters {
			clusters[i] = dfrs.ClusterSpec{Nodes: 64}
		}
		spec := dfrs.FederationSpec{
			Clusters:   clusters,
			Dispatcher: "roundrobin",
			Algorithm:  "dynmcb8-asap-per",
		}
		for _, workers := range []int{1, 2, 4} {
			spec.Workers = workers
			b.Run(fmt.Sprintf("members=%d/workers=%d", members, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := dfrs.RunFederated(context.Background(), tr, spec,
						dfrs.WithPenalty(experiments.PaperPenalty))
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(res.Events()), "events")
				}
			})
		}
	}
}

// BenchmarkFederatedCampaign regenerates a Figure-1-shaped sweep on the
// federated engine: a load sweep of the cloud-bursting topology across all
// three dispatch policies through the campaign layer, reporting the mean
// stretch and total burst cost — the federated counterpart of the
// Figure 1 benchmarks above.
func BenchmarkFederatedCampaign(b *testing.B) {
	g := dfrs.Grid{
		Name:         "fed-bench",
		Seeds:        []uint64{42},
		Algorithms:   []string{"greedy-pmtn"},
		Families:     []dfrs.CampaignFamily{{Kind: dfrs.FamilyLublin, Count: 1}},
		Loads:        []float64{0.1, 0.3, 0.5, 0.7, 0.9},
		Penalties:    []float64{experiments.PaperPenalty},
		Nodes:        []int{64},
		Topologies:   []string{"uniform:64+bimodal-priced:64"},
		Dispatchers:  []string{"roundrobin", "queuedepth", "costaware"},
		JobsPerTrace: 100,
	}
	for i := 0; i < b.N; i++ {
		run, err := dfrs.Campaign(context.Background(), g, dfrs.CampaignOptions{})
		if err != nil {
			b.Fatal(err)
		}
		recs, err := run.Wait()
		if err != nil {
			b.Fatal(err)
		}
		var avg, cost float64
		for _, rec := range recs {
			avg += rec.AvgStretch
			cost += rec.Cost
		}
		b.ReportMetric(avg/float64(len(recs)), "avg-stretch")
		b.ReportMetric(cost, "cost-units")
	}
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Ensure the bench file's package compiles alongside the facade even when
// benchmarks are filtered out.
var _ = fmt.Sprintf
