package dfrs

import (
	"context"
	"fmt"
	"io"
	"os"

	"repro/internal/campaign"
)

// Grid declares a campaign: the full cross product of algorithms, workload
// families, offered loads, seeds, rescheduling penalties, cluster sizes,
// node-mix profiles and placement objectives. Empty dimensions fall back
// to single-element defaults, so a minimal grid needs only Algorithms and
// one Family.
type Grid = campaign.Grid

// CampaignFamily selects one workload family of a Grid and its per-family
// sweep dimensions.
type CampaignFamily = campaign.Family

// CampaignCell is one point of an expanded grid: exactly one simulation,
// identified by its canonical Key.
type CampaignCell = campaign.Cell

// CampaignRecord is the JSONL checkpoint unit: one finished cell plus the
// metrics every report aggregates from.
type CampaignRecord = campaign.Record

// Workload family kinds understood by Grid.
const (
	// FamilyLublin is the Lublin–Feitelson synthetic workload model, the
	// paper's 100-trace campaign family.
	FamilyLublin = campaign.FamilyLublin
	// FamilyHPC2N is the HPC2N-like real-world stand-in, split into
	// weekly segments as in Section IV-C.
	FamilyHPC2N = campaign.FamilyHPC2N
	// UnscaledLoad is the load value meaning "do not rescale the trace".
	UnscaledLoad = campaign.Unscaled
)

// ParseGrid decodes and validates a JSON grid declaration — the wire
// format of dfrs-serve submissions. Unknown fields are rejected so a
// typoed dimension name fails the submission instead of silently running
// the default sweep.
func ParseGrid(data []byte) (*Grid, error) { return campaign.ParseGrid(data) }

// ReadCampaignRecords parses a JSONL results stream; unparseable lines
// (e.g. a torn final line after an interrupt) are skipped, matching the
// checkpoint-resume semantics.
func ReadCampaignRecords(r io.Reader) ([]CampaignRecord, error) {
	return campaign.ReadRecords(r)
}

// SortCampaignRecords orders records by cell key, the canonical
// presentation order (byte-identical for any worker count).
func SortCampaignRecords(recs []CampaignRecord) { campaign.SortRecords(recs) }

// CampaignOptions configures one Campaign execution.
type CampaignOptions struct {
	// Workers bounds concurrent simulations; <=0 means all cores.
	Workers int
	// Checkpoint, when non-empty, streams every finished cell to this
	// JSONL file. With Resume, cells whose keys are already present are
	// skipped and new records are appended (a torn final line left by an
	// interrupted run is repaired); without Resume the file is truncated.
	Checkpoint string
	// Resume enables checkpoint resume; it requires Checkpoint.
	Resume bool
	// Output, when non-nil, streams every finished cell as one JSON line
	// to this writer (ignored when Checkpoint is set).
	Output io.Writer
	// Progress, when non-nil, is called after each finished cell with the
	// number of cells done so far and the total number of cells this run
	// will execute (the grid's cells minus those skipped by checkpoint
	// resume). Calls are serialised.
	Progress func(done, total int, rec CampaignRecord)
	// Observer, when non-nil, is called once per cell before its
	// simulation; a non-nil return value receives that cell's scheduling
	// transitions. Per-cell event sequences are deterministic and
	// identical for any worker count.
	Observer func(CampaignCell) Observer
	// Stream runs every cell through the simulator's streaming path (lazy
	// job admission, pooled runtime records). Records are identical to a
	// materialized run; the switch bounds live memory on large traces.
	Stream bool
	// FedWorkers sets FederationSpec.Workers for federated cells (those
	// with a Topologies axis): values above 1 advance each cell's member
	// clusters concurrently between dispatch points. The default 0 keeps
	// federated cells serial, since the campaign worker pool already
	// saturates the cores. Records and checkpoint JSONL are
	// byte-identical across every value — an execution knob, never a
	// grid axis.
	FedWorkers int
	// OnJob, when non-nil, receives every retained per-job outcome of each
	// finished cell, after the cell validates and before its record
	// reaches the sinks — the campaign-side feed for online aggregators
	// (OnlineAggregator.ObserveJob), mirroring WithOnlineMetrics on single
	// runs. The tap never perturbs records. Cells finish on concurrent
	// workers, so OnJob must be safe for concurrent use.
	OnJob func(CampaignCell, JobResult)
}

// CampaignRun is a campaign in flight, started by Campaign.
type CampaignRun struct {
	ch      chan CampaignRecord
	done    chan struct{}
	recs    []CampaignRecord
	err     error
	total   int
	skipped int
}

// Campaign validates the grid and launches it on the campaign engine's
// bounded worker pool, returning immediately. Finished cells stream on
// Records as they complete; Wait blocks for the final sorted record set.
// Cancelling the context stops the campaign within one cell per worker;
// cells finished before the cancellation are already flushed to the
// checkpoint, so a re-run with Resume completes exactly the missing cells.
func Campaign(ctx context.Context, g Grid, opt CampaignOptions) (*CampaignRun, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if opt.Resume && opt.Checkpoint == "" {
		return nil, fmt.Errorf("dfrs: CampaignOptions.Resume requires Checkpoint")
	}
	runner := &campaign.Runner{Workers: opt.Workers, Stream: opt.Stream, FedWorkers: opt.FedWorkers}
	var checkpoint *os.File
	switch {
	case opt.Checkpoint != "" && opt.Resume:
		f, skip, err := campaign.OpenCheckpoint(opt.Checkpoint)
		if err != nil {
			return nil, err
		}
		checkpoint = f
		runner.Skip = skip
	case opt.Checkpoint != "":
		f, err := os.Create(opt.Checkpoint)
		if err != nil {
			return nil, err
		}
		checkpoint = f
	}

	// Count skips against this grid's cells, not the checkpoint file: a
	// checkpoint may hold keys from other grids, which resume ignores.
	cells := g.Cells()
	skipped := 0
	for _, c := range cells {
		if runner.Skip[c.Key()] {
			skipped++
		}
	}
	total := len(cells)
	run := &CampaignRun{
		ch:      make(chan CampaignRecord, total),
		done:    make(chan struct{}),
		total:   total,
		skipped: skipped,
	}

	sinks := campaign.MultiSink{sinkFunc(func(rec campaign.Record) error {
		run.ch <- rec // buffered to the full cell count: never blocks
		return nil
	})}
	if checkpoint != nil {
		sinks = append(sinks, campaign.NewJSONLSink(checkpoint))
	} else if opt.Output != nil {
		sinks = append(sinks, campaign.NewJSONLSink(opt.Output))
	}
	runner.Sink = sinks
	if opt.Progress != nil {
		runner.Progress = opt.Progress
	}
	if opt.Observer != nil {
		runner.Observe = opt.Observer
	}
	if opt.OnJob != nil {
		runner.OnJob = opt.OnJob
	}

	go func() {
		defer close(run.done)
		defer close(run.ch)
		run.recs, run.err = runner.RunContext(ctx, &g)
		if checkpoint != nil {
			if serr := checkpoint.Sync(); serr != nil && run.err == nil {
				run.err = serr
			}
			if cerr := checkpoint.Close(); cerr != nil && run.err == nil {
				run.err = cerr
			}
		}
	}()
	return run, nil
}

// sinkFunc adapts a function to the campaign sink interface.
type sinkFunc func(campaign.Record) error

// Write implements campaign.Sink.
func (f sinkFunc) Write(rec campaign.Record) error { return f(rec) }

// Records streams finished cells as they complete. The channel is buffered
// to the full cell count and closed when the campaign ends, so draining it
// is optional; completion order is nondeterministic with more than one
// worker (Wait returns the canonical key-sorted set).
func (r *CampaignRun) Records() <-chan CampaignRecord { return r.ch }

// Wait blocks until the campaign finishes and returns the records of every
// cell run (sorted by key; skipped checkpoint cells are not re-emitted).
// On cancellation it returns the cells completed before the stop together
// with an error wrapping ctx.Err().
func (r *CampaignRun) Wait() ([]CampaignRecord, error) {
	<-r.done
	return r.recs, r.err
}

// Total returns the number of cells the validated grid expands to,
// including cells skipped by checkpoint resume.
func (r *CampaignRun) Total() int { return r.total }

// Skipped returns the number of cells satisfied by the checkpoint and not
// re-run.
func (r *CampaignRun) Skipped() int { return r.skipped }
