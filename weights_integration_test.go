package dfrs_test

import (
	"context"
	"testing"

	dfrs "repro"
)

// TestWeightedJobFinishesFaster exercises the Section VII user-priority
// extension end to end: two identical contending jobs, one with weight 3,
// run under DYNMCB8 — the weighted job must finish first.
func TestWeightedJobFinishesFaster(t *testing.T) {
	jobs := []dfrs.Job{
		{ID: 0, Submit: 0, Tasks: 1, CPUNeed: 1.0, MemReq: 0.2, ExecTime: 1000, Weight: 3},
		{ID: 1, Submit: 0, Tasks: 1, CPUNeed: 1.0, MemReq: 0.2, ExecTime: 1000},
	}
	tr, err := dfrs.FromJobs("weighted", 1, 8, jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dfrs.Run(context.Background(), tr, "dynmcb8", dfrs.WithInvariantChecking())
	if err != nil {
		t.Fatal(err)
	}
	stretches := res.JobStretches()
	if stretches[0] >= stretches[1] {
		t.Errorf("weighted job stretch %v should beat unit job stretch %v",
			stretches[0], stretches[1])
	}
}

// TestNegativeWeightRejected: validation catches bad weights.
func TestNegativeWeightRejected(t *testing.T) {
	jobs := []dfrs.Job{{ID: 0, Submit: 0, Tasks: 1, CPUNeed: 0.5, MemReq: 0.5, ExecTime: 10, Weight: -2}}
	if _, err := dfrs.FromJobs("bad", 1, 8, jobs); err == nil {
		t.Error("negative weight accepted")
	}
}
