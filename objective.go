package dfrs

import (
	"io"

	"repro/internal/cluster"
	"repro/internal/placement"
)

// Objective is the pluggable placement-objective interface: it scores a
// candidate node for hosting one task given the task's demand vector and
// the node's current state, and selection picks the feasible node with the
// lowest score (ties toward the lowest node id). Every scheduler family
// routes its node choice through the configured objective — greedy task
// placement, batch whole-node allocation, gang row filling and the
// vector-packing kernels — while feasibility (memory, GPU, CPU capacity)
// always stays with the scheduler. Implement it to bring an out-of-tree
// objective to Run, Campaign and the CLIs via RegisterObjective; the
// built-ins ("cost", "bestfit", "worstfit", and the family defaults
// "first" and "loadbalance") are implementations of the same interface.
type Objective = placement.Objective

// PlacementState is the read-only platform view handed to an Objective's
// Score: per-node capacities, free capacities, CPU load and cost rate.
type PlacementState = placement.State

// PlacementDemand is the per-task demand-vector view handed to an
// Objective's Score: Demand(k) is the requirement in resource dimension k.
type PlacementDemand = placement.Demand

// RegisterObjective adds a named placement objective to the registry
// shared by Run, Campaign and the CLIs, mirroring RegisterAlgorithm: once
// registered, the name is accepted everywhere a built-in objective name is
// and appears in Objectives. The constructor must return a fresh instance
// on every call. It returns an error for an empty name, a nil constructor,
// or a name that is already registered.
func RegisterObjective(name string, constructor func() Objective) error {
	return placement.Register(name, placement.Factory(constructor))
}

// Objectives lists every registered placement-objective name, including
// objectives added through RegisterObjective. The empty string — every
// family's published default rule — is always valid but not listed.
func Objectives() []string { return placement.Names() }

// KnownObjective reports whether name is a registered objective; the empty
// string (the per-family default) is always known.
func KnownObjective(name string) bool { return placement.Known(name) }

// NodeSpec describes one node of an explicit cluster inventory: its
// capacity vector in units of the paper's reference node (the first two
// dimensions are CPU and memory) and its cost rate in price units per
// second of occupancy.
type NodeSpec = cluster.NodeSpec

// ParseNodeSpecs parses a node-inventory stream — one capacity vector per
// line with an optional trailing cost= field and an optional "# dims:"
// header naming the dimensions — and returns the dimension names (nil
// means the canonical cpu/mem/gpu naming) and one NodeSpec per line.
// Errors name the offending line. See RegisterNodeMix for turning an
// inventory into a sweepable node mix.
func ParseNodeSpecs(r io.Reader) (dims []string, specs []NodeSpec, err error) {
	return cluster.FromSpecs(r)
}

// RegisterNodeMix registers an explicit node inventory under a node-mix
// name accepted everywhere a built-in profile name is (WithNodeMix, the
// campaign grid's NodeMixes axis, the CLIs' -node-mix flags). The specs
// are laid out cyclically over the requested cluster size — node i
// receives specs[i mod len(specs)] — so an inventory describes a node-type
// pattern, like the built-in profiles, rather than one fixed cluster size.
func RegisterNodeMix(name string, dims []string, specs []NodeSpec) error {
	return cluster.RegisterProfile(name, dims, specs)
}

// LoadNodeMix parses a node-inventory stream (see ParseNodeSpecs) and
// registers it as the named node mix in one step; the CLIs use it to wire
// "-resources @file". The returned node count is the inventory's natural
// size (the pattern length).
func LoadNodeMix(name string, r io.Reader) (nodes int, err error) {
	dims, specs, err := cluster.FromSpecs(r)
	if err != nil {
		return 0, err
	}
	if err := cluster.RegisterProfile(name, dims, specs); err != nil {
		return 0, err
	}
	return len(specs), nil
}
