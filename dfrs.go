// Package dfrs is the public API of this reproduction of Stillwell, Vivien
// and Casanova, "Dynamic Fractional Resource Scheduling for HPC Workloads"
// (IPDPS 2010). It exposes, as a facade over the internal packages:
//
//   - workload construction: the Lublin–Feitelson synthetic model, an
//     HPC2N-like real-world stand-in, SWF ingestion, trace-file reading,
//     and load scaling;
//   - the nine scheduling algorithms of the paper (FCFS, EASY, GREEDY,
//     GREEDY-PMTN, GREEDY-PMTN-MIGR, DYNMCB8, DYNMCB8-PER,
//     DYNMCB8-ASAP-PER, DYNMCB8-STRETCH-PER), selected by name, plus open
//     registration of out-of-tree schedulers (RegisterAlgorithm);
//   - pluggable placement objectives (WithObjective, RegisterObjective):
//     every family's node selection is split into feasibility filtering
//     and scoring, the paper's rules are the default scores, and the
//     built-in cost/bestfit/worstfit objectives open cost-aware scheduling
//     on priced platforms (NodeSpec.Cost, the bimodal-priced mix,
//     LoadNodeMix inventories) with per-run cost accounting (Result.Cost);
//   - context-aware, observable simulation of a fractionally shared
//     cluster: Run takes a context and cancels at event granularity,
//     WithObserver taps every scheduling transition, and Stream turns the
//     hooks into a typed event channel for live consumers;
//   - full evaluation campaigns (Campaign): declarative scenario grids
//     executed on a bounded worker pool, streamed as JSONL records that
//     double as resumable checkpoints;
//   - the paper's metrics: bounded stretch, degradation factors, and
//     preemption/migration costs — both post hoc (Result) and as rolling
//     aggregates computed while a run executes (NewOnlineAggregator,
//     WithOnlineMetrics: quantile-sketched stretch percentiles, event
//     counters and cost burn with concurrent-safe snapshots, the layer
//     behind the dfrs-serve daemon's live metrics).
//
// The simulator also runs as a service: cmd/dfrs-serve (internal/serve)
// is an HTTP daemon that accepts campaign grids and trace uploads, runs
// them on a bounded pool, streams records, scheduling events and online
// snapshots over SSE, and resumes interrupted campaigns at cell
// granularity after a restart.
//
// A minimal run:
//
//	trace, _ := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 1, Nodes: 128, Jobs: 200})
//	res, _ := dfrs.Run(ctx, trace, "dynmcb8-asap-per", dfrs.WithPenalty(300))
//	fmt.Println(res.MaxStretch())
//
// # Observable simulations
//
// Run is a blocking call, but every scheduling transition inside it —
// submission, dispatch, preemption, migration, completion, and each
// scheduler invocation with its wall-clock timing — can be observed
// live through the Observer interface (WithObserver) or consumed as a
// typed event channel:
//
//	events, wait := dfrs.Stream(ctx, trace, "greedy-pmtn")
//	for ev := range events {
//		fmt.Println(ev) // live progress, online metrics, dashboards
//	}
//	res, err := wait()
//
// Observation is zero-cost when absent: an unobserved run executes the
// identical hot path as before the hooks existed. Event sequences are a
// deterministic function of (trace, algorithm, cluster, penalty); only the
// wall-clock Elapsed field of scheduler invocations varies between runs.
// Cancelling the context stops a run between two simulation events and
// returns an error wrapping ctx.Err(), which is what makes long
// simulations safe to embed in servers: deadlines, SIGINT handlers and
// early termination all fall out of standard context plumbing.
//
// # Cluster resource model
//
// Every layer works against a shared cluster resource model
// (internal/cluster): each node has its own capacity vector over named
// resource dimensions in units of the paper's reference node. Dimensions
// 0 and 1 are always CPU and memory — the paper's pair — and further
// rigid dimensions (GPU, ...) are optional: WithResources("cpu", "mem",
// "gpu") adds them, SyntheticOptions.GPUFrac decorates synthetic
// workloads with GPU demands (Job.Extra), and the gpu-uniform/gpu-bimodal
// node mixes model partially GPU-equipped platforms. By default a trace
// runs on the paper's homogeneous platform — Trace.Nodes reference nodes
// of capacity 1.0 x 1.0 — and reproduces the published algorithms
// exactly. Heterogeneous platforms are selected with WithNodeMix, one of
// the deterministic named profiles listed by NodeMixes (for example
// "bimodal": alternating double-capacity fat nodes and reference nodes).
// A job whose per-task requirement in any dimension exceeds every node of
// the materialised cluster can never be placed; such traces are rejected
// up front with a typed UnschedulableError naming the job and the binding
// resource instead of starving at run time (and, similarly, with
// InsufficientCapacityError when a job's simultaneous tasks exceed the
// cluster's aggregate rigid capacity).
//
// # Placement objectives and cost-aware scheduling
//
// Every scheduling family answers "which nodes get this job?" in two
// steps: a feasibility filter (the paper's hard memory/GPU/CPU
// constraints, never relaxed) and a score over the feasible candidates.
// The paper hard-codes one score per family — greedy's least relative
// CPU load, the batch baselines' first-eligible-node rule, the MCB8
// kernel's index bin order — and those remain the defaults, locked
// bit-for-bit. WithObjective(name) swaps the score everywhere at once:
//
//	res, _ := dfrs.Run(ctx, trace, "greedy-pmtn",
//	    dfrs.WithNodeMix("bimodal-priced"), dfrs.WithObjective("cost"))
//	fmt.Println(res.Cost()) // cost-weighted occupancy, price units
//
// Built-ins: "cost" places tasks on the cheapest feasible nodes
// (per-node-type pricing via NodeSpec.Cost; the bimodal-priced mix and
// LoadNodeMix inventories with cost= fields declare prices), "bestfit"
// packs densely, "worstfit" spreads, and "loadbalance"/"first" spell out
// the family defaults. Campaign grids sweep objectives through the
// Objectives axis (cell keys gain an obj= segment; default-objective
// cells keep their historical keys), and out-of-tree objectives register
// with RegisterObjective, mirroring RegisterAlgorithm.
//
// # Campaigns
//
// Campaign runs the paper's nine-algorithm scenario grid — algorithms x
// workload families x loads x seeds x penalties x cluster sizes x node
// mixes — on the campaign engine: a declarative Grid expands into cells,
// executes on a bounded worker pool with deterministic per-cell RNG
// substreams (the key-sorted record set is byte-identical for any worker
// count), and streams each finished cell as a JSONL record that doubles as
// a checkpoint for resumable runs. CampaignRun.Records delivers records
// live as cells finish; cancelling the campaign context stops within one
// cell per worker and leaves the checkpoint valid, so a resumed campaign
// completes exactly the missing cells. The dfrs-campaign command exposes
// this API directly, dfrs-exp renders the paper's tables and figures from
// the same engine, and examples/campaign and examples/streaming are
// runnable end-to-end walkthroughs.
//
// # Federated simulations
//
// RunFederated promotes the engine to N clusters advancing under one
// shared clock: each member of a FederationSpec is an independent
// simulator with its own node mix, scheduler, and objective, and a
// Dispatcher routes every arriving job to one member before it enters
// that cluster's queue. Built-in policies are "roundrobin" (the
// default), "queuedepth" (fewest jobs in system), and "costaware"
// (cheapest cluster with free capacity, falling back to the cheapest
// feasible one) — the cloud-bursting shape, keeping a priced elastic
// remote mix idle until the on-prem cluster saturates:
//
//	res, _ := dfrs.RunFederated(ctx, trace, dfrs.FederationSpec{
//	    Clusters: []dfrs.ClusterSpec{
//	        {Name: "onprem", NodeMix: "uniform", Nodes: 64},
//	        {Name: "cloud", NodeMix: "bimodal-priced", Nodes: 64},
//	    },
//	    Dispatcher: "costaware",
//	    Algorithm:  "greedy-pmtn",
//	})
//	fmt.Println(res.Dispatched(), res.Cost()) // per-cluster job counts, price units
//
// The orchestrator only decides which member advances next (events fire
// in global timestamp order; arrivals win ties), so a one-cluster
// federation is byte-identical to Run on the same trace under every
// dispatch policy — pinned by test. RunFederatedStream is the streaming
// counterpart, ParseClusters parses the CLI topology notation
// ("uniform:64+bimodal-priced:64", or a bare count for identical
// members), RegisterDispatcher adds out-of-tree policies, and campaign
// grids sweep Topologies x Dispatchers axes (cell keys gain fed= and
// disp= segments; non-federated cells keep their historical keys). The
// dfrs-sim -clusters/-dispatch flags and examples/federation exercise
// the cloud-bursting scenario end to end.
package dfrs

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/hpc2n"
	"repro/internal/lublin"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/swf"
	"repro/internal/workload"

	// Register every scheduling algorithm.
	_ "repro/internal/sched/batch"
	_ "repro/internal/sched/gang"
	_ "repro/internal/sched/greedy"
	_ "repro/internal/sched/mcb"
)

// Trace is a workload destined for a homogeneous cluster. It wraps the
// internal representation; construct one with SyntheticTrace,
// HPC2NLikeTraces, FromSWF, ReadTrace or FromJobs.
type Trace struct {
	t *workload.Trace
}

// Job describes one job: Tasks parallel tasks submitted at Submit seconds,
// each needing the CPUNeed fraction of a node's CPU and the MemReq fraction
// of its memory, running for ExecTime seconds at full speed.
type Job = workload.Job

// Name returns the trace's name.
func (t Trace) Name() string { return t.t.Name }

// Nodes returns the cluster size the trace targets.
func (t Trace) Nodes() int { return t.t.Nodes }

// Jobs returns a copy of the trace's jobs.
func (t Trace) Jobs() []Job { return append([]Job(nil), t.t.Jobs...) }

// OfferedLoad returns the trace's offered load (total work over cluster
// capacity across the submission span).
func (t Trace) OfferedLoad() float64 { return t.t.OfferedLoad() }

// Encode writes the trace in the dfrs text format. The output round-trips
// through ReadTrace and RunStream, so a trace can be generated once, stored,
// and later replayed without rematerializing its job list in memory.
func (t Trace) Encode(w io.Writer) error { return t.t.Encode(w) }

// ScaleToLoad returns a copy of the trace with inter-arrival times rescaled
// so its offered load matches target, as in the paper's construction of the
// load-0.1 through load-0.9 instances.
func (t Trace) ScaleToLoad(target float64) (Trace, error) {
	scaled, err := t.t.ScaleToLoad(target)
	if err != nil {
		return Trace{}, err
	}
	return Trace{t: scaled}, nil
}

// SyntheticOptions configures the Lublin–Feitelson generator.
type SyntheticOptions struct {
	Seed  uint64
	Nodes int // cluster size (the paper uses 128)
	Jobs  int // number of jobs (the paper uses 1000)
	Name  string
	// GPUFrac, when positive, gives that fraction of the jobs a per-task
	// GPU demand (resource dimension 2) drawn uniformly from [0.1, 0.5] of
	// a reference node's GPU capacity, from a dedicated deterministic
	// substream of Seed. Zero keeps the paper's two-resource workload.
	GPUFrac float64
	// GPUCorr, in [-1, 1], correlates the GPU demands drawn by GPUFrac
	// with each job's per-task memory requirement
	// (workload.AttachGPUDemandCorrelated): positive values make
	// memory-hungry jobs GPU-hungry, negative values invert the relation,
	// and the magnitude is the mixing weight. Zero keeps the independent
	// draws, byte-identical to earlier releases.
	GPUCorr float64
}

// SyntheticTrace draws a synthetic trace from the Lublin–Feitelson model
// annotated with the paper's CPU needs and memory requirements, and
// optionally with a GPU-demand axis (SyntheticOptions.GPUFrac).
func SyntheticTrace(opt SyntheticOptions) (Trace, error) {
	if opt.Nodes <= 0 {
		opt.Nodes = 128
	}
	if opt.Jobs <= 0 {
		opt.Jobs = 1000
	}
	if opt.Name == "" {
		opt.Name = fmt.Sprintf("lublin-seed%d", opt.Seed)
	}
	tr, err := lublin.GenerateTrace(rng.New(opt.Seed), lublin.DefaultParams(opt.Nodes), opt.Jobs, opt.Name)
	if err != nil {
		return Trace{}, err
	}
	if opt.GPUFrac > 0 {
		tr, err = workload.AttachGPUDemandCorrelated(tr, rng.New(opt.Seed).Split("gpu"),
			opt.GPUFrac, opt.GPUCorr, workload.GPUDemandLo, workload.GPUDemandHi)
		if err != nil {
			return Trace{}, err
		}
	} else if opt.GPUCorr != 0 {
		return Trace{}, fmt.Errorf("dfrs: GPUCorr %g requires GPUFrac > 0", opt.GPUCorr)
	}
	return Trace{t: tr}, nil
}

// HPC2NLikeTraces synthesizes the real-world stand-in workload (see
// DESIGN.md section 4) and returns it split into 1-week instances, as the
// paper splits the HPC2N log.
func HPC2NLikeTraces(seed uint64, weeks int) ([]Trace, error) {
	p := hpc2n.DefaultSynthParams()
	if weeks > 0 {
		p.Weeks = weeks
	}
	ws, _, err := hpc2n.WeeklyTraces(rng.New(seed), p)
	if err != nil {
		return nil, err
	}
	out := make([]Trace, len(ws))
	for i, w := range ws {
		out[i] = Trace{t: w}
	}
	return out, nil
}

// FromSWF parses a Standard Workload Format stream and applies the paper's
// HPC2N preprocessing rules (Section IV-C), so a genuine archive log can be
// replayed through the simulator.
func FromSWF(r io.Reader, name string) (Trace, error) {
	log, err := swf.Parse(r)
	if err != nil {
		return Trace{}, err
	}
	tr, _, err := hpc2n.Preprocess(log, name)
	if err != nil {
		return Trace{}, err
	}
	return Trace{t: tr}, nil
}

// ReadTrace parses the dfrs trace text format (the output of dfrs-gen and
// Trace encoding) from r.
func ReadTrace(r io.Reader) (Trace, error) {
	tr, err := workload.ReadTrace(r)
	if err != nil {
		return Trace{}, err
	}
	return Trace{t: tr}, nil
}

// FromJobs builds a trace from explicit jobs for a cluster of the given
// size; nodeMemGB is used only for migration-bandwidth accounting.
func FromJobs(name string, nodes int, nodeMemGB float64, jobs []Job) (Trace, error) {
	tr := &workload.Trace{Name: name, Nodes: nodes, NodeMemGB: nodeMemGB, Jobs: append([]Job(nil), jobs...)}
	tr.SortBySubmit()
	if err := tr.Validate(); err != nil {
		return Trace{}, err
	}
	return Trace{t: tr}, nil
}

// Algorithms lists every registered scheduling algorithm name, including
// schedulers added through RegisterAlgorithm.
func Algorithms() []string { return sched.Names() }

// KnownAlgorithm reports whether name is a registered algorithm.
func KnownAlgorithm(name string) bool { return sched.Registered(name) }

// NodeMixes lists the named node-mix profiles accepted by WithNodeMix
// ("uniform", "bimodal", "powerlaw", ...).
func NodeMixes() []string { return cluster.ProfileNames() }

// ValidNodeMix reports whether name is a known node-mix profile; the empty
// string and "uniform" both select the paper's homogeneous platform.
func ValidNodeMix(name string) bool { return cluster.ValidProfile(name) }

// BoundedStretch exposes the paper's bounded-stretch metric:
// max(turnaround, 30s) / max(execTime, 30s).
func BoundedStretch(turnaround, execTime float64) float64 {
	return metrics.BoundedStretch(turnaround, execTime)
}

// DegradationFactors converts per-algorithm maximum stretches measured on
// the same instance into degradation factors (ratio to the instance's best
// algorithm), the quantity plotted in Figure 1 and tabulated in Table I.
func DegradationFactors(maxStretchByAlgorithm map[string]float64) (map[string]float64, error) {
	return metrics.DegradationFactors(maxStretchByAlgorithm)
}
