// Package dfrs is the public API of this reproduction of Stillwell, Vivien
// and Casanova, "Dynamic Fractional Resource Scheduling for HPC Workloads"
// (IPDPS 2010). It exposes, as a small facade over the internal packages:
//
//   - workload construction: the Lublin–Feitelson synthetic model, an
//     HPC2N-like real-world stand-in, SWF ingestion, and load scaling;
//   - the nine scheduling algorithms of the paper (FCFS, EASY, GREEDY,
//     GREEDY-PMTN, GREEDY-PMTN-MIGR, DYNMCB8, DYNMCB8-PER,
//     DYNMCB8-ASAP-PER, DYNMCB8-STRETCH-PER), selected by name;
//   - the discrete-event simulation of a fractionally shared cluster with
//     a configurable rescheduling penalty;
//   - the paper's metrics: bounded stretch, degradation factors, and
//     preemption/migration costs.
//
// A minimal run:
//
//	trace, _ := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 1, Nodes: 128, Jobs: 200})
//	res, _ := dfrs.Run(trace, "dynmcb8-asap-per", dfrs.RunOptions{PenaltySeconds: 300})
//	fmt.Println(res.MaxStretch())
//
// # Cluster resource model
//
// Every layer works against a shared cluster resource model
// (internal/cluster): each node has its own CPU and memory capacity in
// units of the paper's reference node. By default a trace runs on the
// paper's homogeneous platform — Trace.Nodes reference nodes of capacity
// 1.0 x 1.0 — and reproduces the published algorithms exactly.
// Heterogeneous platforms are selected with RunOptions.NodeMix, one of the
// deterministic named profiles listed by NodeMixes (for example "bimodal":
// alternating double-capacity fat nodes and reference nodes). Job resource
// requirements stay fractions of the reference node, and profiles never
// shrink a node below reference capacity, so every valid workload remains
// schedulable on every profile. The vector-packing kernel packs into the
// resulting unequal bins, the allocation math measures yields against each
// node's own CPU capacity, and the simulator enforces per-node capacities
// at every event.
//
// Full evaluation campaigns — the paper's nine-algorithm scenario grid over
// loads, seeds, penalties and cluster sizes — run on the campaign engine
// (internal/campaign): a declarative grid expands into cells, executes on a
// bounded worker pool with deterministic per-cell RNG substreams (the
// key-sorted record set is byte-identical for any worker count), and
// streams each finished cell as a JSONL record that doubles as a
// checkpoint for resumable runs. The
// dfrs-campaign command exposes the engine directly (-preset fig1a/fig1b/
// table1/table2 or custom grids, -workers, -out, -resume), dfrs-exp renders
// the paper's tables and figures from the same engine, and examples/campaign
// is a runnable end-to-end walkthrough.
package dfrs

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/hpc2n"
	"repro/internal/lublin"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/swf"
	"repro/internal/workload"

	// Register every scheduling algorithm.
	_ "repro/internal/sched/batch"
	_ "repro/internal/sched/gang"
	_ "repro/internal/sched/greedy"
	_ "repro/internal/sched/mcb"
)

// Trace is a workload destined for a homogeneous cluster. It wraps the
// internal representation; construct one with SyntheticTrace,
// HPC2NLikeTraces, FromSWF or FromJobs.
type Trace struct {
	t *workload.Trace
}

// Job describes one job: Tasks parallel tasks submitted at Submit seconds,
// each needing the CPUNeed fraction of a node's CPU and the MemReq fraction
// of its memory, running for ExecTime seconds at full speed.
type Job = workload.Job

// Name returns the trace's name.
func (t Trace) Name() string { return t.t.Name }

// Nodes returns the cluster size the trace targets.
func (t Trace) Nodes() int { return t.t.Nodes }

// Jobs returns a copy of the trace's jobs.
func (t Trace) Jobs() []Job { return append([]Job(nil), t.t.Jobs...) }

// OfferedLoad returns the trace's offered load (total work over cluster
// capacity across the submission span).
func (t Trace) OfferedLoad() float64 { return t.t.OfferedLoad() }

// ScaleToLoad returns a copy of the trace with inter-arrival times rescaled
// so its offered load matches target, as in the paper's construction of the
// load-0.1 through load-0.9 instances.
func (t Trace) ScaleToLoad(target float64) (Trace, error) {
	scaled, err := t.t.ScaleToLoad(target)
	if err != nil {
		return Trace{}, err
	}
	return Trace{t: scaled}, nil
}

// SyntheticOptions configures the Lublin–Feitelson generator.
type SyntheticOptions struct {
	Seed  uint64
	Nodes int // cluster size (the paper uses 128)
	Jobs  int // number of jobs (the paper uses 1000)
	Name  string
}

// SyntheticTrace draws a synthetic trace from the Lublin–Feitelson model
// annotated with the paper's CPU needs and memory requirements.
func SyntheticTrace(opt SyntheticOptions) (Trace, error) {
	if opt.Nodes <= 0 {
		opt.Nodes = 128
	}
	if opt.Jobs <= 0 {
		opt.Jobs = 1000
	}
	if opt.Name == "" {
		opt.Name = fmt.Sprintf("lublin-seed%d", opt.Seed)
	}
	tr, err := lublin.GenerateTrace(rng.New(opt.Seed), lublin.DefaultParams(opt.Nodes), opt.Jobs, opt.Name)
	if err != nil {
		return Trace{}, err
	}
	return Trace{t: tr}, nil
}

// HPC2NLikeTraces synthesizes the real-world stand-in workload (see
// DESIGN.md section 4) and returns it split into 1-week instances, as the
// paper splits the HPC2N log.
func HPC2NLikeTraces(seed uint64, weeks int) ([]Trace, error) {
	p := hpc2n.DefaultSynthParams()
	if weeks > 0 {
		p.Weeks = weeks
	}
	ws, _, err := hpc2n.WeeklyTraces(rng.New(seed), p)
	if err != nil {
		return nil, err
	}
	out := make([]Trace, len(ws))
	for i, w := range ws {
		out[i] = Trace{t: w}
	}
	return out, nil
}

// FromSWF parses a Standard Workload Format stream and applies the paper's
// HPC2N preprocessing rules (Section IV-C), so a genuine archive log can be
// replayed through the simulator.
func FromSWF(r io.Reader, name string) (Trace, error) {
	log, err := swf.Parse(r)
	if err != nil {
		return Trace{}, err
	}
	tr, _, err := hpc2n.Preprocess(log, name)
	if err != nil {
		return Trace{}, err
	}
	return Trace{t: tr}, nil
}

// FromJobs builds a trace from explicit jobs for a cluster of the given
// size; nodeMemGB is used only for migration-bandwidth accounting.
func FromJobs(name string, nodes int, nodeMemGB float64, jobs []Job) (Trace, error) {
	tr := &workload.Trace{Name: name, Nodes: nodes, NodeMemGB: nodeMemGB, Jobs: append([]Job(nil), jobs...)}
	tr.SortBySubmit()
	if err := tr.Validate(); err != nil {
		return Trace{}, err
	}
	return Trace{t: tr}, nil
}

// Algorithms lists every registered scheduling algorithm name.
func Algorithms() []string { return sched.Names() }

// NodeMixes lists the named node-mix profiles accepted by
// RunOptions.NodeMix ("uniform", "bimodal", "powerlaw", ...).
func NodeMixes() []string { return cluster.ProfileNames() }

// RunOptions configures one simulation.
type RunOptions struct {
	// PenaltySeconds is the rescheduling penalty charged to every resume
	// and migration (the paper evaluates 0 and 300).
	PenaltySeconds float64
	// NodeMix selects a heterogeneous node-mix profile (see NodeMixes)
	// laid out over the trace's node count. Empty means the paper's
	// homogeneous platform.
	NodeMix string
	// CheckInvariants enables per-event state validation (slow; for
	// tests).
	CheckInvariants bool
}

// Result wraps a finished simulation.
type Result struct {
	r *sim.Result
}

// Run simulates the named algorithm over the trace.
func Run(t Trace, algorithm string, opt RunOptions) (Result, error) {
	s, err := sched.New(algorithm)
	if err != nil {
		return Result{}, err
	}
	cl, err := cluster.Profile(opt.NodeMix, t.t.Nodes)
	if err != nil {
		return Result{}, err
	}
	simulator, err := sim.New(sim.Config{
		Trace:           t.t,
		Cluster:         cl,
		Penalty:         opt.PenaltySeconds,
		CheckInvariants: opt.CheckInvariants,
		MaxSimTime:      50 * 365 * 24 * 3600,
	}, s)
	if err != nil {
		return Result{}, err
	}
	res, err := simulator.Run()
	if err != nil {
		return Result{}, err
	}
	if err := metrics.Validate(res); err != nil {
		return Result{}, err
	}
	return Result{r: res}, nil
}

// Algorithm returns the algorithm that produced this result.
func (r Result) Algorithm() string { return r.r.Algorithm }

// Makespan returns the completion time of the last job, in seconds.
func (r Result) Makespan() float64 { return r.r.Makespan }

// MaxStretch returns the maximum bounded stretch over all jobs, the
// paper's headline metric.
func (r Result) MaxStretch() float64 { return metrics.Summarize(r.r).MaxStretch }

// Utilization returns the fraction of cluster CPU capacity that delivered
// useful work over the makespan (Section II-B2's platform-utilization
// view).
func (r Result) Utilization() float64 { return r.r.Utilization() }

// AvgStretch returns the average bounded stretch over all jobs.
func (r Result) AvgStretch() float64 { return metrics.Summarize(r.r).AvgStretch }

// JobStretches returns the bounded stretch of every job, indexed as in
// Trace.Jobs ordering by job ID.
func (r Result) JobStretches() []float64 {
	out := make([]float64, len(r.r.Jobs))
	for i, jr := range r.r.Jobs {
		out[i] = metrics.BoundedStretch(jr.Turnaround, jr.Job.ExecTime)
	}
	return out
}

// Costs summarizes preemption/migration bandwidth and operation rates as in
// Table II.
func (r Result) Costs() CostSummary {
	c := metrics.Costs(r.r)
	return CostSummary{
		PreemptionGBps:     c.PmtnGBps,
		MigrationGBps:      c.MigGBps,
		PreemptionsPerHour: c.PmtnPerHour,
		MigrationsPerHour:  c.MigPerHour,
		PreemptionsPerJob:  c.PmtnPerJob,
		MigrationsPerJob:   c.MigPerJob,
	}
}

// CostSummary mirrors one row of the paper's Table II for one run.
type CostSummary struct {
	PreemptionGBps     float64
	MigrationGBps      float64
	PreemptionsPerHour float64
	MigrationsPerHour  float64
	PreemptionsPerJob  float64
	MigrationsPerJob   float64
}

// BoundedStretch exposes the paper's bounded-stretch metric:
// max(turnaround, 30s) / max(execTime, 30s).
func BoundedStretch(turnaround, execTime float64) float64 {
	return metrics.BoundedStretch(turnaround, execTime)
}

// DegradationFactors converts per-algorithm maximum stretches measured on
// the same instance into degradation factors (ratio to the instance's best
// algorithm), the quantity plotted in Figure 1 and tabulated in Table I.
func DegradationFactors(maxStretchByAlgorithm map[string]float64) (map[string]float64, error) {
	return metrics.DegradationFactors(maxStretchByAlgorithm)
}
