package dfrs_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	dfrs "repro"
)

func federationTrace(t *testing.T) dfrs.Trace {
	t.Helper()
	tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 21, Nodes: 64, Jobs: 200})
	if err != nil {
		t.Fatalf("SyntheticTrace: %v", err)
	}
	scaled, err := tr.ScaleToLoad(1.2)
	if err != nil {
		t.Fatalf("ScaleToLoad: %v", err)
	}
	return scaled
}

func burstSpec(dispatcher string) dfrs.FederationSpec {
	return dfrs.FederationSpec{
		Clusters: []dfrs.ClusterSpec{
			{Name: "onprem", NodeMix: "", Nodes: 64},
			{Name: "remote", NodeMix: "bimodal-priced", Nodes: 64},
		},
		Dispatcher: dispatcher,
		Algorithm:  "greedy",
	}
}

// Streamed and materialized federated runs of the same trace must agree on
// every public metric, per cluster and aggregate — the streaming lock
// extended to federations.
func TestFederatedStreamMatchesMaterialized(t *testing.T) {
	tr := federationTrace(t)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// Both paths parse the same bytes: the comparison is the streaming
	// reader vs the materialized parser, not in-memory vs text (the text
	// format quantizes floats).
	rtr, err := dfrs.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	for _, dispatcher := range dfrs.Dispatchers() {
		t.Run(dispatcher, func(t *testing.T) {
			mat, err := dfrs.RunFederated(context.Background(), rtr, burstSpec(dispatcher))
			if err != nil {
				t.Fatalf("RunFederated: %v", err)
			}
			str, err := dfrs.RunFederatedStream(context.Background(), bytes.NewReader(buf.Bytes()), burstSpec(dispatcher))
			if err != nil {
				t.Fatalf("RunFederatedStream: %v", err)
			}
			if !reflect.DeepEqual(mat.Dispatched(), str.Dispatched()) {
				t.Errorf("dispatch counts diverge: %v vs %v", mat.Dispatched(), str.Dispatched())
			}
			if !reflect.DeepEqual(mat.Jobs(), str.Jobs()) {
				t.Errorf("per-job outcomes diverge")
			}
			if mat.Events() != str.Events() || mat.Makespan() != str.Makespan() || mat.Cost() != str.Cost() {
				t.Errorf("aggregates diverge: events %d/%d makespan %g/%g cost %g/%g",
					mat.Events(), str.Events(), mat.Makespan(), str.Makespan(), mat.Cost(), str.Cost())
			}
			for i := 0; i < mat.Clusters(); i++ {
				if mat.Cluster(i) != str.Cluster(i) {
					t.Errorf("cluster %d diverges: %+v vs %+v", i, mat.Cluster(i), str.Cluster(i))
				}
			}
		})
	}
}

// Cost-aware dispatch must prefer the free on-prem mix and burst to the
// priced remote only under pressure: with a cost-0 and a priced member,
// the on-prem cluster takes the majority of jobs, the remote takes the
// overflow, and the run accrues cost only for the burst share.
func TestFederatedCostAwareBursting(t *testing.T) {
	tr := federationTrace(t)
	res, err := dfrs.RunFederated(context.Background(), tr, burstSpec("costaware"))
	if err != nil {
		t.Fatalf("RunFederated: %v", err)
	}
	onprem, remote := res.Cluster(0), res.Cluster(1)
	if onprem.Dispatched+remote.Dispatched != len(tr.Jobs()) {
		t.Fatalf("dispatched %d+%d of %d jobs", onprem.Dispatched, remote.Dispatched, len(tr.Jobs()))
	}
	if onprem.Dispatched <= remote.Dispatched {
		t.Errorf("cost-aware dispatch did not prefer the free on-prem mix: onprem %d, remote %d",
			onprem.Dispatched, remote.Dispatched)
	}
	if remote.Dispatched == 0 {
		t.Errorf("an offered load of 1.2 on a 64-node on-prem mix should burst, but the remote got nothing")
	}
	if onprem.Cost != 0 {
		t.Errorf("on-prem mix accrued cost %g", onprem.Cost)
	}
	if remote.Dispatched > 0 && remote.Cost <= 0 {
		t.Errorf("priced remote hosted %d jobs but accrued no cost", remote.Dispatched)
	}
	if res.Cost() != onprem.Cost+remote.Cost {
		t.Errorf("aggregate cost %g != %g + %g", res.Cost(), onprem.Cost, remote.Cost)
	}
}

// Online metrics ride the job-sink path on federated runs exactly as on
// single runs: Jobs() stays empty, and the aggregator sees every job.
func TestFederatedOnlineMetrics(t *testing.T) {
	tr := federationTrace(t)
	agg := dfrs.NewOnlineAggregator()
	res, err := dfrs.RunFederated(context.Background(), tr, burstSpec("roundrobin"), dfrs.WithOnlineMetrics(agg))
	if err != nil {
		t.Fatalf("RunFederated: %v", err)
	}
	if n := len(res.Jobs()); n != 0 {
		t.Errorf("Jobs() holds %d entries under WithOnlineMetrics", n)
	}
	snap := agg.Snapshot()
	if snap.Jobs != int64(len(tr.Jobs())) {
		t.Errorf("aggregator saw %d of %d jobs", snap.Jobs, len(tr.Jobs()))
	}
	if snap.Submitted != int64(len(tr.Jobs())) {
		t.Errorf("aggregator observed %d submissions of %d", snap.Submitted, len(tr.Jobs()))
	}
}

func TestParseClusters(t *testing.T) {
	cases := []struct {
		spec    string
		want    []dfrs.ClusterSpec
		wantErr bool
	}{
		{spec: "2", want: []dfrs.ClusterSpec{{Nodes: 128}, {Nodes: 128}}},
		{spec: "uniform:64+bimodal-priced:32", want: []dfrs.ClusterSpec{
			{NodeMix: "", Nodes: 64}, {NodeMix: "bimodal-priced", Nodes: 32}}},
		{spec: "bimodal", want: []dfrs.ClusterSpec{{NodeMix: "bimodal", Nodes: 128}}},
		{spec: "0", wantErr: true},
		{spec: "nosuchmix:4", wantErr: true},
		{spec: "", wantErr: true},
		{spec: "uniform:x", wantErr: true},
	}
	for _, tc := range cases {
		got, err := dfrs.ParseClusters(tc.spec, 128, "")
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseClusters(%q): no error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseClusters(%q): %v", tc.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseClusters(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}
