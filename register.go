package dfrs

import (
	"repro/internal/sched"
	"repro/internal/sim"
)

// Scheduler is the algorithm interface the simulator drives: one hook per
// simulation event (Init, OnArrival, OnCompletion, OnTimer), each
// inspecting and mutating cluster state through the Controller. Implement
// it to bring an out-of-tree scheduling algorithm to Run and Campaign via
// RegisterAlgorithm; the nine paper algorithms are implementations of the
// same interface and register themselves the same way.
type Scheduler = sim.Scheduler

// Controller is the interface a Scheduler uses to inspect and mutate
// cluster state: job snapshots, per-node loads and capacities, and the
// Section II-B1 operations (Start, Pause, Resume, Migrate, SetYield,
// SetTimer).
type Controller = sim.Controller

// JobInfo is a read-only snapshot of one job's simulation state, as
// returned by Controller.Job.
type JobInfo = sim.JobInfo

// JobState is the lifecycle state of a job inside the simulator.
type JobState = sim.JobState

// Job lifecycle states.
const (
	// JobPending jobs have been submitted and hold no resources.
	JobPending = sim.Pending
	// JobRunning jobs hold nodes and progress at their yield.
	JobRunning = sim.Running
	// JobPaused jobs were preempted and hold no resources.
	JobPaused = sim.Paused
	// JobDone jobs have completed.
	JobDone = sim.Done
)

// RegisterAlgorithm adds a named scheduler constructor to the registry
// shared by Run, Campaign and the CLIs, making out-of-tree schedulers
// first-class: once registered, the name is accepted everywhere a built-in
// algorithm name is and appears in Algorithms. The constructor must return
// a fresh instance on every call — schedulers carry per-run state. It
// returns an error for an empty name, a nil constructor, or a name that is
// already registered.
func RegisterAlgorithm(name string, constructor func() Scheduler) error {
	if constructor == nil {
		return sched.RegisterFactory(name, nil)
	}
	return sched.RegisterFactory(name, sched.Factory(constructor))
}
