package dfrs_test

import (
	"context"
	"math"
	"strings"
	"testing"

	dfrs "repro"
)

// smallTrace builds a deterministic synthetic instance small enough to run
// every algorithm with full invariant checking.
func smallTrace(t *testing.T, seed uint64, jobs int, load float64) dfrs.Trace {
	t.Helper()
	tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: seed, Nodes: 64, Jobs: jobs})
	if err != nil {
		t.Fatalf("SyntheticTrace: %v", err)
	}
	scaled, err := tr.ScaleToLoad(load)
	if err != nil {
		t.Fatalf("ScaleToLoad: %v", err)
	}
	return scaled
}

// TestAllAlgorithmsRunClean runs every registered algorithm over a small
// workload with per-event invariant checking at both paper penalties.
func TestAllAlgorithmsRunClean(t *testing.T) {
	tr := smallTrace(t, 11, 60, 0.7)
	for _, alg := range dfrs.Algorithms() {
		for _, penalty := range []float64{0, 300} {
			alg, penalty := alg, penalty
			t.Run(alg+pen(penalty), func(t *testing.T) {
				t.Parallel()
				res, err := dfrs.Run(context.Background(), tr, alg,
					dfrs.WithPenalty(penalty), dfrs.WithInvariantChecking())
				if err != nil {
					t.Fatalf("Run(%s): %v", alg, err)
				}
				if got := res.MaxStretch(); math.IsNaN(got) || got < 1 {
					t.Errorf("max stretch = %v, want >= 1", got)
				}
				if res.Makespan() <= 0 {
					t.Errorf("makespan = %v, want > 0", res.Makespan())
				}
				for i, s := range res.JobStretches() {
					if s < 1-1e-9 {
						t.Errorf("job %d stretch %v < 1", i, s)
					}
				}
			})
		}
	}
}

// TestDFRSOutperformsBatchOnContendedLoad checks the paper's headline
// claim: on a contended workload the DFRS algorithms achieve much lower
// maximum stretch than the batch baselines.
func TestDFRSOutperformsBatchOnContendedLoad(t *testing.T) {
	tr := smallTrace(t, 3, 120, 0.8)
	max := map[string]float64{}
	for _, alg := range []string{"fcfs", "easy", "greedy-pmtn", "dynmcb8-asap-per"} {
		res, err := dfrs.Run(context.Background(), tr, alg, dfrs.WithPenalty(300))
		if err != nil {
			t.Fatalf("Run(%s): %v", alg, err)
		}
		max[alg] = res.MaxStretch()
	}
	bestDFRS := math.Min(max["greedy-pmtn"], max["dynmcb8-asap-per"])
	worstBatch := math.Min(max["fcfs"], max["easy"]) // even the better baseline
	if bestDFRS >= worstBatch {
		t.Errorf("DFRS (%.2f) should beat batch (%.2f) on contended load: %v",
			bestDFRS, worstBatch, max)
	}
}

// TestDeterminism verifies that identical seeds produce identical results.
func TestDeterminism(t *testing.T) {
	for _, alg := range []string{"easy", "greedy-pmtn-migr", "dynmcb8-per"} {
		tr := smallTrace(t, 5, 50, 0.6)
		a, err := dfrs.Run(context.Background(), tr, alg, dfrs.WithPenalty(300))
		if err != nil {
			t.Fatalf("Run(%s): %v", alg, err)
		}
		b, err := dfrs.Run(context.Background(), tr, alg, dfrs.WithPenalty(300))
		if err != nil {
			t.Fatalf("Run(%s): %v", alg, err)
		}
		if a.MaxStretch() != b.MaxStretch() || a.Makespan() != b.Makespan() {
			t.Errorf("%s: non-deterministic results: (%v,%v) vs (%v,%v)",
				alg, a.MaxStretch(), a.Makespan(), b.MaxStretch(), b.Makespan())
		}
	}
}

// TestDegradationFactors checks the Figure 1 metric construction.
func TestDegradationFactors(t *testing.T) {
	deg, err := dfrs.DegradationFactors(map[string]float64{"a": 10, "b": 5, "c": 50})
	if err != nil {
		t.Fatal(err)
	}
	if deg["b"] != 1 || deg["a"] != 2 || deg["c"] != 10 {
		t.Errorf("unexpected degradation factors: %v", deg)
	}
	if _, err := dfrs.DegradationFactors(nil); err == nil {
		t.Error("expected error for empty input")
	}
}

// TestBoundedStretch pins the metric's corner cases.
func TestBoundedStretch(t *testing.T) {
	cases := []struct {
		turnaround, exec, want float64
	}{
		{3600, 1800, 2},               // plain ratio above the bound
		{10, 1, 1},                    // short job run immediately: exactly 1
		{300, 1, 10},                  // short job delayed: bounded denominator
		{30, 30, 1},                   // at the bound
		{7200, 7200, 1},               // long job run dedicated
		{14400, 7200, 2},              // long job halved
		{29, 29, 1},                   // below bound in both terms
		{601, 30.0001, 601 / 30.0001}, // just above bound
	}
	for _, c := range cases {
		if got := dfrs.BoundedStretch(c.turnaround, c.exec); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("BoundedStretch(%v, %v) = %v, want %v", c.turnaround, c.exec, got, c.want)
		}
	}
}

// TestFromJobs exercises the explicit-trace constructor and a hand-checked
// schedule: two 1-task jobs that fit together must both run immediately
// under DFRS, giving both a stretch of 1 when uncontended.
func TestFromJobs(t *testing.T) {
	jobs := []dfrs.Job{
		{ID: 0, Submit: 0, Tasks: 1, CPUNeed: 0.5, MemReq: 0.4, ExecTime: 100},
		{ID: 1, Submit: 0, Tasks: 1, CPUNeed: 0.5, MemReq: 0.4, ExecTime: 100},
	}
	tr, err := dfrs.FromJobs("two-jobs", 1, 8, jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dfrs.Run(context.Background(), tr, "greedy", dfrs.WithInvariantChecking())
	if err != nil {
		t.Fatal(err)
	}
	// Both jobs share one node; each needs 50% CPU, so both can run at
	// full speed simultaneously: turnaround 100s, stretch 1.
	if got := res.MaxStretch(); math.Abs(got-1) > 1e-6 {
		t.Errorf("max stretch = %v, want 1", got)
	}
	if got := res.Makespan(); math.Abs(got-100) > 1e-6 {
		t.Errorf("makespan = %v, want 100", got)
	}
}

// TestFromJobsValidation rejects malformed jobs.
func TestFromJobsValidation(t *testing.T) {
	bad := []dfrs.Job{{ID: 0, Submit: 0, Tasks: 3, CPUNeed: 0.5, MemReq: 0.5, ExecTime: 10}}
	if _, err := dfrs.FromJobs("bad", 2, 8, bad); err == nil ||
		!strings.Contains(err.Error(), "tasks") {
		t.Errorf("expected task-count validation error, got %v", err)
	}
}

// TestFromSWF round-trips a tiny SWF document through the paper's HPC2N
// preprocessing rules.
func TestFromSWF(t *testing.T) {
	const doc = `; Computer: test
; MaxNodes: 120
1 0 -1 600 4 -1 209715 4 -1 -1 1 1 1 -1 0 0 -1 -1
2 60 -1 120 3 -1 1468006 3 -1 -1 1 1 1 -1 0 0 -1 -1
3 120 -1 60 1 -1 -1 1 -1 -1 1 1 1 -1 0 0 -1 -1
`
	tr, err := dfrs.FromSWF(strings.NewReader(doc), "swf-test")
	if err != nil {
		t.Fatal(err)
	}
	jobs := tr.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("got %d jobs, want 3", len(jobs))
	}
	// Job 1: 4 procs, 10% per-proc memory (209715 KB of 2 GB) -> even
	// count, low memory: 2 multi-threaded tasks, 100% CPU, 20% memory.
	if jobs[0].Tasks != 2 || jobs[0].CPUNeed != 1.0 || math.Abs(jobs[0].MemReq-0.2) > 1e-3 {
		t.Errorf("job 1 preprocessed wrong: %+v", jobs[0])
	}
	// Job 2: odd processor count -> 3 tasks at 50% CPU need, 70% memory.
	if jobs[1].Tasks != 3 || jobs[1].CPUNeed != 0.5 || math.Abs(jobs[1].MemReq-0.7) > 1e-3 {
		t.Errorf("job 2 preprocessed wrong: %+v", jobs[1])
	}
	// Job 3: missing memory -> 10% floor; serial -> 1 task at 50%.
	if jobs[2].Tasks != 1 || jobs[2].CPUNeed != 0.5 || math.Abs(jobs[2].MemReq-0.1) > 1e-3 {
		t.Errorf("job 3 preprocessed wrong: %+v", jobs[2])
	}
	if _, err := dfrs.Run(context.Background(), tr, "dynmcb8", dfrs.WithInvariantChecking()); err != nil {
		t.Fatalf("running SWF trace: %v", err)
	}
}

func pen(p float64) string {
	if p == 0 {
		return "/pen0"
	}
	return "/pen300"
}
