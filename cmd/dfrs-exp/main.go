// Command dfrs-exp regenerates the paper's tables and figures (and the
// ablation studies of DESIGN.md) at a configurable scale.
//
// Usage:
//
//	dfrs-exp -exp fig1a                 # Figure 1(a): no penalty
//	dfrs-exp -exp fig1b                 # Figure 1(b): 5-minute penalty
//	dfrs-exp -exp table1                # Table I
//	dfrs-exp -exp table2                # Table II
//	dfrs-exp -exp timing                # Section V timing study
//	dfrs-exp -exp priority|period|packer|fairness   # ablations A1-A4
//	dfrs-exp -exp all
//
// Scale flags: -traces, -jobs, -nodes, -weeks; the paper's full campaign is
// -traces 100 -jobs 1000 -weeks 182 (CPU-hours). Defaults are a small but
// representative slice.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: fig1a, fig1b, table1, table2, timing, priority, period, packer, fairness, heterogeneity, all")
		seed    = flag.Uint64("seed", 42, "campaign seed")
		traces  = flag.Int("traces", 3, "number of base synthetic traces (paper: 100)")
		jobs    = flag.Int("jobs", 150, "jobs per synthetic trace (paper: 1000)")
		nodes   = flag.Int("nodes", 128, "cluster size (paper: 128)")
		weeks   = flag.Int("weeks", 4, "HPC2N-like weekly segments for Table I (paper: 182)")
		workers = flag.Int("workers", 0, "parallel simulations (0 = all cores)")
		loads   = flag.String("loads", "0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9", "comma-separated load levels")
		check   = flag.Bool("check", false, "enable per-event simulator invariant checking")
		csv     = flag.Bool("csv", false, "emit CSV instead of fixed-width tables")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.Traces = *traces
	cfg.JobsPerTrace = *jobs
	cfg.Nodes = *nodes
	cfg.HPC2NWeeks = *weeks
	cfg.Workers = *workers
	cfg.Check = *check
	var err error
	cfg.Loads, err = parseLoads(*loads)
	if err != nil {
		fatal(err)
	}

	// SIGINT/SIGTERM cancels the campaign context: the engine stops within
	// one cell per worker and the command exits cleanly.
	ctx, stop := cli.SignalContext()
	defer stop()
	run := func(name string) {
		if err := dispatch(ctx, name, cfg, *csv); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "dfrs-exp: interrupted")
				os.Exit(1)
			}
			fatal(fmt.Errorf("%s: %w", name, err))
		}
	}
	if *exp == "all" {
		for _, name := range []string{"fig1a", "fig1b", "table1", "table2", "timing", "priority", "period", "packer", "fairness", "heterogeneity"} {
			run(name)
			fmt.Println()
		}
		return
	}
	run(*exp)
}

// renderable is any experiment result that can print itself as a
// fixed-width table or as CSV.
type renderable interface {
	Render(io.Writer) error
	RenderCSV(io.Writer) error
}

func dispatch(ctx context.Context, name string, cfg experiments.Config, csv bool) error {
	var res renderable
	var err error
	switch name {
	case "fig1a":
		res, err = experiments.Figure1(ctx, cfg, 0)
	case "fig1b":
		res, err = experiments.Figure1(ctx, cfg, experiments.PaperPenalty)
	case "table1":
		res, err = experiments.TableI(ctx, cfg)
	case "table2":
		c := cfg
		c.Algorithms = experiments.PreemptingAlgorithms
		res, err = experiments.TableII(ctx, c)
	case "timing":
		res, err = experiments.TimingStudy(ctx, cfg, "dynmcb8")
	case "priority":
		res, err = experiments.AblationPriorityPower(ctx, cfg)
	case "period":
		res, err = experiments.AblationPeriod(ctx, cfg)
	case "packer":
		res, err = experiments.AblationPacker(ctx, cfg)
	case "fairness":
		res, err = experiments.ExtensionFairness(ctx, cfg)
	case "heterogeneity":
		res, err = experiments.HeterogeneityStudy(ctx, cfg)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	if err != nil {
		return err
	}
	if csv {
		return res.RenderCSV(os.Stdout)
	}
	return res.Render(os.Stdout)
}

func parseLoads(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 || v > 1 {
			return nil, fmt.Errorf("invalid load %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no load levels given")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfrs-exp:", err)
	os.Exit(1)
}
