// Command dfrs-campaign runs a declarative scenario grid — algorithms x
// workload families x loads x seeds x penalties x cluster sizes — through
// the public campaign API (dfrs.Campaign), streaming one JSONL record per
// finished simulation. Output is checkpointed: interrupting a campaign
// (including with SIGINT/SIGTERM, which cancels the run context, finishes
// within one cell per worker and flushes the file) and re-running with
// -resume completes only the missing cells.
//
// Presets reproduce the paper's campaigns:
//
//	dfrs-campaign -preset fig1a  -out fig1a.jsonl      # Figure 1(a): no penalty
//	dfrs-campaign -preset fig1b  -out fig1b.jsonl      # Figure 1(b): 5-minute penalty
//	dfrs-campaign -preset table1 -out table1.jsonl     # Table I's three workload legs
//	dfrs-campaign -preset table2 -out table2.jsonl     # Table II's high-load cost study
//
// Or declare a custom grid directly:
//
//	dfrs-campaign -algs easy,dynmcb8-asap-per -seeds 1,2,3 -traces 10 \
//	    -loads 0.5,0.7,0.9 -penalties 0,300 -workers 8 -out sweep.jsonl
//
// Heterogeneous platforms are a grid axis: -node-mix sweeps named node-mix
// profiles (uniform, bimodal, powerlaw), e.g.
//
//	dfrs-campaign -node-mix uniform,bimodal -loads 0.7 -out het.jsonl
//
// The paper's full scale is -traces 100 -jobs 1000 -weeks 182 (CPU-hours);
// defaults are a small representative slice. Records sort by their "key"
// field into a canonical order that is byte-identical for any -workers
// value.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	dfrs "repro"
	"repro/internal/cli"
	"repro/internal/experiments"
)

func main() {
	var (
		preset    = flag.String("preset", "", "paper campaign: fig1a, fig1b, table1, table2 (empty = custom grid from flags)")
		algs      = flag.String("algs", strings.Join(experiments.Algorithms, ","), "comma-separated algorithm names")
		seeds     = flag.String("seeds", "42", "comma-separated campaign seeds")
		traces    = flag.Int("traces", 3, "synthetic traces per seed (paper: 100)")
		jobs      = flag.Int("jobs", 150, "jobs per synthetic trace (paper: 1000)")
		nodes     = flag.String("nodes", "128", "comma-separated cluster sizes (paper: 128)")
		nodeMix   = flag.String("node-mix", "", "comma-separated node-mix profiles (uniform, bimodal, bimodal-priced, powerlaw, gpu-uniform, gpu-bimodal); empty = homogeneous")
		resources = flag.String("resources", "", "@file node inventory (one capacity vector per line, optional cost= field), registered as a node mix and added to the sweep")
		objective = flag.String("objective", "", "comma-separated placement objectives to sweep (cost, bestfit, worstfit, ...); empty = each family's default rule")
		gpuFrac   = flag.Float64("gpu-frac", 0, "fraction of each cell's jobs given a GPU demand (adds a third resource dimension)")
		gpuCorr   = flag.Float64("gpu-corr", 0, "correlation of GPU demands with memory requirements, in [-1,1] (requires -gpu-frac; 0 = independent draws)")
		clusters  = flag.String("clusters", "", "comma-separated federation topologies to sweep (a count like 2, or mix:nodes terms joined by +, e.g. uniform:128+bimodal-priced:64); empty = single-cluster cells")
		dispatch  = flag.String("dispatch", "", "comma-separated federation dispatch policies crossed with -clusters (see dfrs.Dispatchers); empty = "+dfrs.DefaultDispatcher)
		loads     = flag.String("loads", "0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9", "comma-separated load levels; 0 means unscaled")
		penalties = flag.String("penalties", "300", "comma-separated rescheduling penalties in seconds")
		weeks     = flag.Int("weeks", 0, "HPC2N-like weekly segments to add as a second family (0 = none; paper: 182)")
		workers   = flag.Int("workers", 0, "parallel simulations (0 = all cores)")
		fedWork   = flag.Int("fed-workers", 0, "goroutines advancing each federated cell's member clusters concurrently (0 = serial per cell, the default — the cell pool owns the cores); output JSONL is byte-identical for any value")
		out       = flag.String("out", "-", "output JSONL path (- = stdout)")
		resume    = flag.Bool("resume", false, "skip cells already present in -out and append the rest")
		check     = flag.Bool("check", false, "enable per-event simulator invariant checking")
		timing    = flag.Bool("timing", false, "record wall-clock scheduler timing aggregates (nondeterministic)")
		stream    = flag.Bool("stream", false, "run cells through the streaming simulator path (lazy admission, pooled records); identical output, bounded live memory")
		quiet     = flag.Bool("q", false, "suppress progress output on stderr")
	)
	flag.Parse()

	// -resources @file loads an explicit node inventory, registers it under
	// the "@file" name and adds it to the node-mix sweep.
	if *resources != "" {
		if !strings.HasPrefix(*resources, "@") {
			fatal(fmt.Errorf("bad -resources: want @file (a node-inventory path), got %q", *resources))
		}
		path := strings.TrimPrefix(*resources, "@")
		f, err := os.Open(path)
		if err != nil {
			fatal(fmt.Errorf("bad -resources: %v", err))
		}
		_, err = dfrs.LoadNodeMix(*resources, f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("bad -resources: %s: %v", path, err))
		}
		if *nodeMix == "" {
			*nodeMix = *resources
		} else {
			*nodeMix += "," + *resources
		}
	}

	g, err := buildGrid(*preset, *algs, *seeds, *traces, *jobs, *nodes, *nodeMix, *loads, *penalties, *weeks, *gpuFrac, *gpuCorr, *objective, *clusters, *dispatch)
	if err != nil {
		fatal(err)
	}
	g.Check = *check
	g.Timing = *timing

	if *fedWork < 0 {
		fatal(fmt.Errorf("bad -fed-workers: negative worker count %d", *fedWork))
	}
	if *fedWork != 0 && *clusters == "" {
		fatal(fmt.Errorf("bad -fed-workers: requires -clusters"))
	}
	opt := dfrs.CampaignOptions{Workers: *workers, Stream: *stream, FedWorkers: *fedWork}
	if !*quiet {
		opt.Progress = func(done, total int, rec dfrs.CampaignRecord) {
			fmt.Fprintf(os.Stderr, "dfrs-campaign: [%d/%d] %s\n", done, total, rec.Key)
		}
	}
	switch {
	case *out == "-" && *resume:
		fatal(fmt.Errorf("-resume requires -out pointing at a file"))
	case *out == "-":
		opt.Output = os.Stdout
	default:
		opt.Checkpoint = *out
		opt.Resume = *resume
	}

	ctx, stop := cli.SignalContext()
	defer stop()
	run, err := dfrs.Campaign(ctx, *g, opt)
	if err != nil {
		fatal(err)
	}
	recs, err := run.Wait()
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr,
				"dfrs-campaign: interrupted after %d cells; checkpoint flushed, re-run with -resume to finish\n",
				len(recs))
			os.Exit(1)
		}
		fatal(err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "dfrs-campaign: %d cells finished (%d already checkpointed)\n",
			len(recs), run.Skipped())
	}
}

// buildGrid assembles the campaign grid from the preset or the custom grid
// flags. Presets start from the flag values and override only the
// dimensions that define the paper campaign, so -traces/-jobs/-seeds still
// scale them. Flag values are validated eagerly so a bad sweep fails with a
// clear message before any cell runs.
func buildGrid(preset, algs, seeds string, traces, jobs int, nodes, nodeMix, loads, penalties string, weeks int, gpuFrac, gpuCorr float64, objectives, clusters, dispatchers string) (*dfrs.Grid, error) {
	seedList, err := parseUints(seeds)
	if err != nil {
		return nil, fmt.Errorf("bad -seeds: %w", err)
	}
	if traces <= 0 {
		return nil, fmt.Errorf("bad -traces: %d traces per seed, want at least 1", traces)
	}
	if jobs <= 0 {
		return nil, fmt.Errorf("bad -jobs: %d jobs per trace, want at least 1", jobs)
	}
	if weeks < 0 {
		return nil, fmt.Errorf("bad -weeks: negative segment count %d", weeks)
	}
	nodeList, err := parseInts(nodes)
	if err != nil {
		return nil, fmt.Errorf("bad -nodes: %w", err)
	}
	for _, n := range nodeList {
		if n <= 0 {
			return nil, fmt.Errorf("bad -nodes: cluster size %d, want at least 1", n)
		}
	}
	loadList, err := parseFloats(loads)
	if err != nil {
		return nil, fmt.Errorf("bad -loads: %w", err)
	}
	for _, l := range loadList {
		if l < 0 || l > 1 {
			return nil, fmt.Errorf("bad -loads: load %g outside [0,1] (0 means unscaled)", l)
		}
	}
	penList, err := parseFloats(penalties)
	if err != nil {
		return nil, fmt.Errorf("bad -penalties: %w", err)
	}
	for _, p := range penList {
		if p < 0 {
			return nil, fmt.Errorf("bad -penalties: negative penalty %g", p)
		}
	}
	if !(gpuFrac >= 0 && gpuFrac <= 1) { // negated so NaN is rejected too
		return nil, fmt.Errorf("bad -gpu-frac: fraction %g outside [0,1]", gpuFrac)
	}
	if !(gpuCorr >= -1 && gpuCorr <= 1) {
		return nil, fmt.Errorf("bad -gpu-corr: correlation %g outside [-1,1]", gpuCorr)
	}
	if gpuCorr != 0 && gpuFrac == 0 {
		return nil, fmt.Errorf("bad -gpu-corr: requires -gpu-frac > 0")
	}
	topoList := splitList(clusters)
	dispList := splitList(dispatchers)
	if len(dispList) > 0 && len(topoList) == 0 {
		return nil, fmt.Errorf("bad -dispatch: requires -clusters")
	}
	mixList := splitList(nodeMix)
	for _, mix := range mixList {
		if !dfrs.ValidNodeMix(mix) {
			return nil, fmt.Errorf("bad -node-mix: unknown profile %q (known: %v)",
				mix, dfrs.NodeMixes())
		}
	}
	objList := splitList(objectives)
	for _, obj := range objList {
		if !dfrs.KnownObjective(obj) {
			return nil, fmt.Errorf("bad -objective: unknown objective %q (known: %v)",
				obj, dfrs.Objectives())
		}
	}
	for _, alg := range splitList(algs) {
		if !dfrs.KnownAlgorithm(alg) {
			return nil, fmt.Errorf("bad -algs: unknown algorithm %q (known: %v)", alg, dfrs.Algorithms())
		}
	}
	g := &dfrs.Grid{
		Name:         "custom",
		Seeds:        seedList,
		Algorithms:   splitList(algs),
		Families:     []dfrs.CampaignFamily{{Kind: dfrs.FamilyLublin, Count: traces}},
		Loads:        loadList,
		Penalties:    penList,
		Nodes:        nodeList,
		NodeMixes:    mixList,
		GPUFrac:      gpuFrac,
		GPUCorr:      gpuCorr,
		Objectives:   objList,
		Topologies:   topoList,
		Dispatchers:  dispList,
		JobsPerTrace: jobs,
	}
	if weeks > 0 {
		g.Families = append(g.Families,
			dfrs.CampaignFamily{Kind: dfrs.FamilyHPC2N, Count: weeks, Loads: []float64{dfrs.UnscaledLoad}})
	}
	paperLoads := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	switch preset {
	case "":
	case "fig1a":
		g.Name, g.Loads, g.Penalties = "fig1a", paperLoads, []float64{0}
	case "fig1b":
		g.Name, g.Loads, g.Penalties = "fig1b", paperLoads, []float64{experiments.PaperPenalty}
	case "table1":
		g.Name, g.Loads, g.Penalties = "table1", paperLoads, []float64{experiments.PaperPenalty}
		w := weeks
		if w <= 0 {
			w = 4
		}
		g.Families = []dfrs.CampaignFamily{
			{Kind: dfrs.FamilyLublin, Count: traces},
			{Kind: dfrs.FamilyLublin, Count: traces, Loads: []float64{dfrs.UnscaledLoad}},
			{Kind: dfrs.FamilyHPC2N, Count: w, Loads: []float64{dfrs.UnscaledLoad}},
		}
	case "table2":
		g.Name, g.Loads, g.Penalties = "table2", []float64{0.7, 0.8, 0.9}, []float64{experiments.PaperPenalty}
		g.Algorithms = experiments.PreemptingAlgorithms
	default:
		return nil, fmt.Errorf("unknown preset %q (want fig1a, fig1b, table1 or table2)", preset)
	}
	return g, g.Validate()
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("invalid value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseUints(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range splitList(s) {
		v, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfrs-campaign:", err)
	os.Exit(1)
}
