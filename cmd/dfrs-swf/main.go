// Command dfrs-swf inspects Standard Workload Format files and converts
// them to the dfrs trace format using the paper's HPC2N preprocessing
// rules.
//
//	dfrs-swf -in log.swf               # print summary statistics
//	dfrs-swf -in log.swf -convert      # emit dfrs trace format on stdout
//	dfrs-swf -in log.swf -weeks        # emit per-week job counts
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/hpc2n"
	"repro/internal/stats"
	"repro/internal/swf"
)

func main() {
	var (
		in      = flag.String("in", "", "input SWF file (required)")
		convert = flag.Bool("convert", false, "emit dfrs trace format after HPC2N preprocessing")
		weeks   = flag.Bool("weeks", false, "print per-week segment summary after preprocessing")
	)
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	// SIGINT/SIGTERM aborts the in-flight conversion at write granularity.
	ctx, stop := cli.SignalContext()
	defer stop()
	out := cli.Writer(ctx, os.Stdout)
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	log, err := swf.Parse(f)
	if err != nil {
		fatal(err)
	}

	if *convert {
		tr, st, err := hpc2n.Preprocess(log, *in)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dfrs-swf: kept %d/%d jobs\n", st.Kept, st.Total)
		if err := tr.Encode(out); err != nil {
			fatal(err)
		}
		return
	}
	if *weeks {
		tr, _, err := hpc2n.Preprocess(log, *in)
		if err != nil {
			fatal(err)
		}
		segs, err := tr.SplitSegments(hpc2n.WeekSeconds)
		if err != nil {
			fatal(err)
		}
		for _, seg := range segs {
			fmt.Printf("%-24s %6d jobs  offered load %.3f\n", seg.Name, len(seg.Jobs), seg.OfferedLoad())
		}
		return
	}

	var runtimes, procs stats.Stream
	serial := 0
	missingMem := 0
	for _, rec := range log.Records {
		if rec.RunTime > 0 {
			runtimes.Add(float64(rec.RunTime))
		}
		p := rec.AllocatedProcs
		if p <= 0 {
			p = rec.RequestedProcs
		}
		if p > 0 {
			procs.Add(float64(p))
			if p == 1 {
				serial++
			}
		}
		if rec.UsedMemoryKB <= 0 && rec.RequestedMemKB <= 0 {
			missingMem++
		}
	}
	fmt.Printf("records        %d\n", len(log.Records))
	fmt.Printf("header         %d comment lines", len(log.Header))
	if v := log.HeaderValue("Computer"); v != "" {
		fmt.Printf(" (Computer: %s)", v)
	}
	fmt.Println()
	fmt.Printf("runtime        avg %.0fs  max %.0fs\n", runtimes.Mean(), runtimes.Max())
	fmt.Printf("processors     avg %.1f  max %.0f  serial %.1f%%\n",
		procs.Mean(), procs.Max(), 100*float64(serial)/float64(max(1, procs.N())))
	fmt.Printf("missing memory %d (%.2f%%)\n", missingMem,
		100*float64(missingMem)/float64(max(1, len(log.Records))))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfrs-swf:", err)
	os.Exit(1)
}
