// Command dfrs-sim runs one scheduling algorithm over one trace and prints
// the paper's metrics for the run.
//
//	dfrs-gen -model lublin -jobs 300 -load 0.7 > t.txt
//	dfrs-sim -trace t.txt -alg dynmcb8-asap-per -penalty 300
//
// Without -trace, a synthetic workload is generated on the fly from -seed,
// -jobs, -nodes and -load. The command is built on the v2 facade: the run
// is context-driven, so SIGINT/SIGTERM cancels it cleanly at event
// granularity, and -events streams every scheduling transition live to
// stderr through the observer hooks.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	dfrs "repro"
	"repro/internal/cli"
	"repro/internal/report"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file (dfrs trace format); empty = synthesize")
		alg       = flag.String("alg", "dynmcb8-asap-per", "algorithm (see -list)")
		list      = flag.Bool("list", false, "list algorithms and exit")
		penalty   = flag.Float64("penalty", 300, "rescheduling penalty in seconds")
		seed      = flag.Uint64("seed", 1, "synthetic workload seed")
		jobs      = flag.Int("jobs", 300, "synthetic workload size")
		nodes     = flag.Int("nodes", 128, "synthetic cluster size")
		nodeMix   = flag.String("node-mix", "", "node-mix profile (see dfrs.NodeMixes, e.g. bimodal, bimodal-priced, gpu-bimodal); empty = homogeneous")
		resources = flag.String("resources", "", "comma-separated resource dimensions, e.g. cpu,mem,gpu; or @file to load a node inventory (one capacity vector per line, optional cost= field, tiled over -nodes); empty = cpu,mem (or the node-mix profile's own)")
		objective = flag.String("objective", "", "placement objective (see dfrs.Objectives, e.g. cost, bestfit); empty = each scheduler family's default rule")
		gpuFrac   = flag.Float64("gpu-frac", 0, "fraction of synthetic jobs given a GPU demand (adds a third resource dimension)")
		gpuCorr   = flag.Float64("gpu-corr", 0, "correlation of synthetic GPU demands with memory requirements, in [-1,1] (requires -gpu-frac; 0 = independent draws)")
		clusters  = flag.String("clusters", "", "federated run over this cluster topology: a count like 2, or mix:nodes terms joined by +, e.g. uniform:128+bimodal-priced:64 (defaults per member: -nodes and -node-mix)")
		dispatch  = flag.String("dispatch", "", "federation dispatch policy routing arrivals across -clusters (see -list-dispatchers); empty = "+dfrs.DefaultDispatcher)
		listDisp  = flag.Bool("list-dispatchers", false, "list federation dispatch policies and exit")
		fedWork   = flag.Int("fed-workers", 0, "goroutines advancing -clusters members concurrently between dispatch points; 0 = all cores, 1 = serial (results identical either way)")
		load      = flag.Float64("load", 0.7, "synthetic offered load (0 = natural); with -stream, explicitly setting it rescales the streamed trace to this load (two-pass measurement for a -trace file, '# offered_load:' metadata for stdin)")
		check     = flag.Bool("check", false, "enable per-event invariant checking")
		events    = flag.Bool("events", false, "stream every scheduling transition live to stderr")
		perJob    = flag.Bool("jobs-detail", false, "print per-job stretch table")
		gantt     = flag.Bool("gantt", false, "print an ASCII Gantt chart of the schedule")
		ganttJobs = flag.Int("gantt-jobs", 40, "max jobs shown in the Gantt chart")
		tlCSV     = flag.String("timeline-csv", "", "write every per-job scheduling transition as CSV to this file")
		stream    = flag.Bool("stream", false, "stream the trace through the simulator without materializing the job list (-trace file, or stdin when -trace is empty)")
		summary   = flag.Bool("summary-only", false, "with -stream: aggregate per-job metrics online and drop per-job results, bounding live memory by jobs in system")
		maxHeapMB = flag.Int("max-heap-mb", 0, "fail if the live Go heap exceeds this many MiB after the run (0 = no check)")
		maxYears  = flag.Float64("max-sim-years", 50, "livelock guard: fail a run whose simulated clock passes this many years (long natural-load traces need more)")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file (flushed on any exit, including interrupts)")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile to this file at exit (after a final GC)")
	)
	flag.Parse()

	// -load defaults to 0.7 for the synthetic generator; a streamed trace
	// is rescaled only when the flag was given explicitly, so plain
	// `dfrs-sim -stream -trace f` replays the file's natural load exactly
	// like the materialized `dfrs-sim -trace f`.
	loadSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "load" {
			loadSet = true
		}
	})

	if *list {
		for _, name := range dfrs.Algorithms() {
			fmt.Println(name)
		}
		return
	}
	if *listDisp {
		for _, name := range dfrs.Dispatchers() {
			fmt.Println(name)
		}
		return
	}

	// Validate flags eagerly so misuse fails with a clear message instead
	// of a generator or simulator error deep in the run.
	if *summary && !*stream {
		fatal(errors.New("bad -summary-only: requires -stream"))
	}
	if *summary && (*perJob || *gantt || *tlCSV != "") {
		fatal(errors.New("bad -summary-only: incompatible with -jobs-detail, -gantt and -timeline-csv (they need retained per-job results)"))
	}
	if *maxHeapMB < 0 {
		fatal(fmt.Errorf("bad -max-heap-mb: negative limit %d", *maxHeapMB))
	}
	if *maxYears <= 0 {
		fatal(fmt.Errorf("bad -max-sim-years: non-positive guard %g", *maxYears))
	}
	if *tracePath == "" && !*stream {
		if *nodes <= 0 {
			fatal(fmt.Errorf("bad -nodes: cluster size %d, want at least 1", *nodes))
		}
		if *jobs <= 0 {
			fatal(fmt.Errorf("bad -jobs: workload size %d, want at least 1", *jobs))
		}
	}
	if *load < 0 || *load > 1 {
		fatal(fmt.Errorf("bad -load: offered load %g outside [0,1] (0 means natural)", *load))
	}
	if *penalty < 0 {
		fatal(fmt.Errorf("bad -penalty: negative rescheduling penalty %g", *penalty))
	}
	// -resources @file loads an explicit node inventory and registers it as
	// the run's node mix under the "@file" name.
	if strings.HasPrefix(*resources, "@") {
		if *nodeMix != "" {
			fatal(fmt.Errorf("bad -resources: %q conflicts with -node-mix %q (an inventory defines the node mix)", *resources, *nodeMix))
		}
		path := strings.TrimPrefix(*resources, "@")
		f, err := os.Open(path)
		if err != nil {
			fatal(fmt.Errorf("bad -resources: %v", err))
		}
		if _, err := dfrs.LoadNodeMix(*resources, f); err != nil {
			f.Close()
			fatal(fmt.Errorf("bad -resources: %s: %v", path, err))
		}
		f.Close()
		*nodeMix = *resources
		*resources = ""
	}
	if !dfrs.ValidNodeMix(*nodeMix) {
		fatal(fmt.Errorf("bad -node-mix: unknown profile %q (known: %v)", *nodeMix, dfrs.NodeMixes()))
	}
	if !dfrs.KnownObjective(*objective) {
		fatal(fmt.Errorf("bad -objective: unknown objective %q (known: %v)", *objective, dfrs.Objectives()))
	}
	if !(*gpuFrac >= 0 && *gpuFrac <= 1) { // negated so NaN is rejected too
		fatal(fmt.Errorf("bad -gpu-frac: fraction %g outside [0,1]", *gpuFrac))
	}
	if !(*gpuCorr >= -1 && *gpuCorr <= 1) {
		fatal(fmt.Errorf("bad -gpu-corr: correlation %g outside [-1,1]", *gpuCorr))
	}
	if *gpuCorr != 0 && *gpuFrac == 0 {
		fatal(errors.New("bad -gpu-corr: requires -gpu-frac > 0"))
	}
	if !dfrs.KnownAlgorithm(*alg) {
		fatal(fmt.Errorf("bad -alg: unknown algorithm %q (known: %v)", *alg, dfrs.Algorithms()))
	}
	if *dispatch != "" && *clusters == "" {
		fatal(errors.New("bad -dispatch: requires -clusters"))
	}
	if *fedWork < 0 {
		fatal(fmt.Errorf("bad -fed-workers: negative worker count %d", *fedWork))
	}
	if *fedWork != 0 && *clusters == "" {
		fatal(errors.New("bad -fed-workers: requires -clusters"))
	}
	if *clusters != "" {
		known := false
		for _, name := range dfrs.Dispatchers() {
			if name == *dispatch || *dispatch == "" {
				known = true
				break
			}
		}
		if !known {
			fatal(fmt.Errorf("bad -dispatch: unknown policy %q (known: %v)", *dispatch, dfrs.Dispatchers()))
		}
		if *gantt || *tlCSV != "" {
			fatal(errors.New("bad -clusters: federated runs do not record timelines (-gantt, -timeline-csv)"))
		}
		if *resources != "" {
			fatal(errors.New("bad -clusters: per-cluster dimensions come from the member node mixes, not -resources"))
		}
	}

	if err := startProfiles(*cpuProf, *memProf); err != nil {
		fatal(err)
	}
	defer stopProfiles()

	ctx, stop := cli.SignalContext()
	defer stop()

	var tr dfrs.Trace
	if !*stream {
		var err error
		tr, err = loadTrace(*tracePath, *seed, *nodes, *jobs, *load, *gpuFrac, *gpuCorr)
		if err != nil {
			fatal(err)
		}
	}
	// -clusters switches the run into the federated engine: the topology is
	// parsed over the single-run defaults (-nodes / the trace's node count,
	// -node-mix), and arrivals are routed across the members by -dispatch.
	var fspec dfrs.FederationSpec
	if *clusters != "" {
		defNodes := *nodes
		if !*stream && *tracePath != "" {
			defNodes = tr.Nodes()
		}
		cspecs, cerr := dfrs.ParseClusters(*clusters, defNodes, *nodeMix)
		if cerr != nil {
			fatal(fmt.Errorf("bad -clusters: %w", cerr))
		}
		fspec = dfrs.FederationSpec{Clusters: cspecs, Dispatcher: *dispatch, Algorithm: *alg, Workers: *fedWork}
	}
	opts := []dfrs.RunOption{
		dfrs.WithPenalty(*penalty), dfrs.WithNodeMix(*nodeMix),
		dfrs.WithMaxSimTime(*maxYears * 365 * 24 * 3600),
	}
	if *resources != "" {
		opts = append(opts, dfrs.WithResources(strings.Split(*resources, ",")...))
	}
	if *objective != "" {
		opts = append(opts, dfrs.WithObjective(*objective))
	}
	if *check {
		opts = append(opts, dfrs.WithInvariantChecking())
	}
	if *gantt || *tlCSV != "" {
		opts = append(opts, dfrs.WithTimeline())
	}
	if *events {
		opts = append(opts, dfrs.WithObserver(stderrObserver{}))
	}
	// -summary-only folds each job's stretch into the shared online
	// aggregator (the same layer behind dfrs-serve's live snapshots) as it
	// completes, instead of retaining the per-job result list. The average
	// is summed in completion order, so it can differ from the
	// materialized report in the last float bits; max is order-free, and
	// the printed percentiles carry the sketch's documented tolerance.
	var agg *dfrs.OnlineAggregator
	if *summary {
		agg = dfrs.NewOnlineAggregator()
		opts = append(opts, dfrs.WithOnlineMetrics(agg))
	}
	var res dfrs.Result
	var fres dfrs.FederatedResult
	var err error
	traceLabel := *tracePath
	if *stream {
		// An explicit -load rescales the stream: a seekable -trace file is
		// measured on a first pass and replayed; stdin must declare its
		// load ("# offered_load:", as dfrs-gen -stream -load emits).
		if loadSet && *load > 0 {
			opts = append(opts, dfrs.WithTargetLoad(*load))
			if *tracePath != "" {
				mf, oerr := os.Open(*tracePath)
				if oerr != nil {
					fatal(oerr)
				}
				cur, _, merr := dfrs.MeasureStreamLoad(mf)
				mf.Close()
				if merr != nil {
					fatal(merr)
				}
				if cur <= 0 {
					fatal(fmt.Errorf("bad -load: trace %s has zero measured offered load", *tracePath))
				}
				opts = append(opts, dfrs.WithCurrentLoad(cur))
			}
		}
		in := os.Stdin
		if *tracePath != "" {
			f, oerr := os.Open(*tracePath)
			if oerr != nil {
				fatal(oerr)
			}
			defer f.Close()
			in = f
		} else {
			traceLabel = "stdin"
		}
		if *clusters != "" {
			fres, err = dfrs.RunFederatedStream(ctx, in, fspec, opts...)
		} else {
			res, err = dfrs.RunStream(ctx, in, *alg, opts...)
		}
	} else if *clusters != "" {
		fres, err = dfrs.RunFederated(ctx, tr, fspec, opts...)
	} else {
		res, err = dfrs.Run(ctx, tr, *alg, opts...)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "dfrs-sim: interrupted; partial run discarded")
			exit(1)
		}
		fatal(err)
	}
	if *clusters != "" {
		reportFederated(fres, tr, traceLabel, *stream, *penalty, agg)
		checkHeap(*maxHeapMB)
		return
	}
	costs := res.Costs()
	var snap dfrs.OnlineSnapshot
	if agg != nil {
		snap = agg.Snapshot()
	}
	// Per-job rates divide by the retained job list, which -summary-only
	// keeps empty; recompute them from the online completion count.
	if agg != nil && snap.Jobs > 0 {
		costs.PreemptionsPerJob = float64(res.Preemptions()) / float64(snap.Jobs)
		costs.MigrationsPerJob = float64(res.Migrations()) / float64(snap.Jobs)
		costs.NodeCostPerJob = res.Cost() / float64(snap.Jobs)
	}
	if *stream {
		done := int64(len(res.Jobs()))
		if agg != nil {
			done = snap.Jobs
		}
		fmt.Printf("trace        %s (streamed, %d jobs completed)\n", traceLabel, done)
	} else {
		fmt.Printf("trace        %s (%d jobs, %d nodes, offered load %.2f)\n",
			tr.Name(), len(tr.Jobs()), tr.Nodes(), tr.OfferedLoad())
	}
	if *nodeMix != "" && *nodeMix != "uniform" {
		fmt.Printf("cluster      node-mix %s\n", *nodeMix)
	}
	fmt.Printf("algorithm    %s (penalty %.0fs)\n", res.Algorithm(), *penalty)
	if *objective != "" {
		fmt.Printf("objective    %s\n", *objective)
	}
	fmt.Printf("makespan     %.1f h\n", res.Makespan()/3600)
	maxStretch, avgStretch := res.MaxStretch(), res.AvgStretch()
	if agg != nil && snap.Jobs > 0 {
		maxStretch, avgStretch = snap.MaxStretch, snap.AvgStretch
	}
	fmt.Printf("max stretch  %.2f\n", maxStretch)
	fmt.Printf("avg stretch  %.2f\n", avgStretch)
	if agg != nil && snap.Jobs > 0 {
		fmt.Printf("stretch pcts p50 %.2f, p95 %.2f, p99 %.2f (online sketch)\n",
			snap.StretchP50, snap.StretchP95, snap.StretchP99)
	}
	fmt.Printf("preemptions  %d (%.3f GB/s, %.2f/h, %.2f/job)\n",
		res.Preemptions(), costs.PreemptionGBps, costs.PreemptionsPerHour, costs.PreemptionsPerJob)
	fmt.Printf("migrations   %d (%.3f GB/s, %.2f/h, %.2f/job)\n",
		res.Migrations(), costs.MigrationGBps, costs.MigrationsPerHour, costs.MigrationsPerJob)
	fmt.Printf("utilization  %.1f%% of cluster CPU over the makespan\n", 100*res.Utilization())
	if res.Cost() > 0 {
		fmt.Printf("cost         %.1f price units (%.2f/job)\n", res.Cost(), costs.NodeCostPerJob)
	}
	fmt.Printf("events       %d\n", res.Events())

	if *tlCSV != "" {
		n, err := writeTimelineCSV(*tlCSV, res)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("timeline     %d transitions written to %s\n", n, *tlCSV)
	}

	if *gantt {
		chart := &report.Gantt{
			Title: fmt.Sprintf("schedule: %s on %s", res.Algorithm(), tr.Name()),
			Lanes: ganttLanes(res, *ganttJobs),
		}
		fmt.Println()
		if err := chart.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if *perJob {
		fmt.Println("\njob  tasks  exec      turnaround  stretch  pauses  migs")
		for _, jr := range res.Jobs() {
			fmt.Printf("%-4d %-6d %-9.1f %-11.1f %-8.2f %-7d %d\n",
				jr.Job.ID, jr.Job.Tasks, jr.Job.ExecTime, jr.Turnaround,
				dfrs.BoundedStretch(jr.Turnaround, jr.Job.ExecTime),
				jr.Pauses, jr.Migrations)
		}
	}

	checkHeap(*maxHeapMB)
}

// checkHeap turns the streaming memory promise into an exit code: collect,
// read the live heap, and fail loudly if it blew the budget (-max-heap-mb).
func checkHeap(maxHeapMB int) {
	if maxHeapMB <= 0 {
		return
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heapMiB := float64(ms.HeapAlloc) / (1 << 20)
	fmt.Printf("heap         %.1f MiB live (limit %d MiB)\n", heapMiB, maxHeapMB)
	if heapMiB > float64(maxHeapMB) {
		fmt.Fprintf(os.Stderr, "dfrs-sim: live heap %.1f MiB exceeds -max-heap-mb %d\n", heapMiB, maxHeapMB)
		exit(1)
	}
}

// profileStop flushes the pprof outputs; startProfiles replaces it. It is
// idempotent and wired into every exit path — os.Exit skips deferred
// calls, so exit() and fatal() invoke it explicitly, which is what makes
// profiles survive -max-heap-mb failures and SIGINT shutdowns.
var profileStop = func() {}

func startProfiles(cpu, mem string) error {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return fmt.Errorf("bad -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("bad -cpuprofile: %w", err)
		}
		cpuF = f
	}
	var once sync.Once
	profileStop = func() {
		once.Do(func() {
			if cpuF != nil {
				pprof.StopCPUProfile()
				cpuF.Close()
			}
			if mem != "" {
				f, err := os.Create(mem)
				if err != nil {
					fmt.Fprintln(os.Stderr, "dfrs-sim: -memprofile:", err)
					return
				}
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "dfrs-sim: -memprofile:", err)
				}
				f.Close()
			}
		})
	}
	return nil
}

func stopProfiles() { profileStop() }

// exit flushes profiles and terminates with the code.
func exit(code int) {
	stopProfiles()
	os.Exit(code)
}

// reportFederated prints the federated run summary: the aggregate headline
// numbers plus one line per member cluster.
func reportFederated(fres dfrs.FederatedResult, tr dfrs.Trace, traceLabel string, streamed bool, penalty float64, agg *dfrs.OnlineAggregator) {
	var snap dfrs.OnlineSnapshot
	if agg != nil {
		snap = agg.Snapshot()
	}
	if streamed {
		done := int64(len(fres.Jobs()))
		if agg != nil {
			done = snap.Jobs
		}
		fmt.Printf("trace        %s (streamed, %d jobs completed)\n", traceLabel, done)
	} else {
		fmt.Printf("trace        %s (%d jobs, offered load %.2f)\n",
			tr.Name(), len(tr.Jobs()), tr.OfferedLoad())
	}
	fmt.Printf("federation   %d clusters, dispatch %s (penalty %.0fs)\n",
		fres.Clusters(), fres.Dispatcher(), penalty)
	for i := 0; i < fres.Clusters(); i++ {
		c := fres.Cluster(i)
		line := fmt.Sprintf("  cluster    %-18s %-16s %4d nodes  %5d jobs  max/avg stretch %.2f/%.2f  util %.1f%%",
			c.Name, c.Algorithm, c.Nodes, c.Dispatched, c.MaxStretch, c.AvgStretch, 100*c.Utilization)
		if c.Cost > 0 {
			line += fmt.Sprintf("  cost %.1f", c.Cost)
		}
		fmt.Println(line)
	}
	fmt.Printf("makespan     %.1f h\n", fres.Makespan()/3600)
	maxStretch, avgStretch := fres.MaxStretch(), fres.AvgStretch()
	if agg != nil && snap.Jobs > 0 {
		maxStretch, avgStretch = snap.MaxStretch, snap.AvgStretch
	}
	fmt.Printf("max stretch  %.2f\n", maxStretch)
	fmt.Printf("avg stretch  %.2f\n", avgStretch)
	if agg != nil && snap.Jobs > 0 {
		fmt.Printf("stretch pcts p50 %.2f, p95 %.2f, p99 %.2f (online sketch)\n",
			snap.StretchP50, snap.StretchP95, snap.StretchP99)
	}
	fmt.Printf("utilization  %.1f%% of federated CPU over the makespan\n", 100*fres.Utilization())
	if fres.Cost() > 0 {
		fmt.Printf("cost         %.1f price units\n", fres.Cost())
	}
	fmt.Printf("events       %d\n", fres.Events())
}

// stderrObserver prints every scheduling transition live, the simplest
// consumer of the observer hooks.
type stderrObserver struct{}

func (stderrObserver) JobSubmitted(now float64, jid int) {
	fmt.Fprintf(os.Stderr, "t=%-12.1f submit   job %d\n", now, jid)
}
func (stderrObserver) JobStarted(now float64, jid int, nodes []int) {
	fmt.Fprintf(os.Stderr, "t=%-12.1f start    job %d on %v\n", now, jid, nodes)
}
func (stderrObserver) JobPreempted(now float64, jid int) {
	fmt.Fprintf(os.Stderr, "t=%-12.1f preempt  job %d\n", now, jid)
}
func (stderrObserver) JobMigrated(now float64, jid int, nodes []int) {
	fmt.Fprintf(os.Stderr, "t=%-12.1f migrate  job %d to %v\n", now, jid, nodes)
}
func (stderrObserver) JobCompleted(now float64, jid int, turnaround float64) {
	fmt.Fprintf(os.Stderr, "t=%-12.1f complete job %d (turnaround %.1fs)\n", now, jid, turnaround)
}
func (stderrObserver) SchedulerInvoked(float64, string, int, time.Duration) {}

// writeTimelineCSV dumps the recorded transitions for offline analysis or
// plotting: one row per (time, job, kind, yield, frozen_until).
func writeTimelineCSV(path string, res dfrs.Result) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "time,jid,kind,yield,frozen_until"); err != nil {
		return 0, err
	}
	tl := res.Timeline()
	for _, e := range tl {
		if _, err := fmt.Fprintf(f, "%.6f,%d,%s,%.6f,%.6f\n",
			e.Time, e.JID, e.Kind, e.Yield, e.FrozenUntil); err != nil {
			return 0, err
		}
	}
	return len(tl), nil
}

// ganttLanes converts the recorded timeline into chart lanes, one per job
// (in jid order, capped at maxJobs).
func ganttLanes(res dfrs.Result, maxJobs int) []report.GanttLane {
	jids := map[int]bool{}
	for _, e := range res.Timeline() {
		jids[e.JID] = true
	}
	ordered := make([]int, 0, len(jids))
	for jid := range jids {
		ordered = append(ordered, jid)
	}
	sort.Ints(ordered)
	if maxJobs > 0 && len(ordered) > maxJobs {
		ordered = ordered[:maxJobs]
	}
	lanes := make([]report.GanttLane, 0, len(ordered))
	for _, jid := range ordered {
		lane := report.GanttLane{Label: fmt.Sprintf("job %d", jid)}
		for _, seg := range res.JobSegments(jid) {
			lane.Segments = append(lane.Segments, report.GanttSegment{
				From: seg.From, To: seg.To, State: seg.State.String(), Yield: seg.Yield,
			})
		}
		lanes = append(lanes, lane)
	}
	return lanes
}

func loadTrace(path string, seed uint64, nodes, jobs int, load, gpuFrac, gpuCorr float64) (dfrs.Trace, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return dfrs.Trace{}, err
		}
		defer f.Close()
		return dfrs.ReadTrace(f)
	}
	tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: seed, Nodes: nodes, Jobs: jobs, GPUFrac: gpuFrac, GPUCorr: gpuCorr})
	if err != nil {
		return dfrs.Trace{}, err
	}
	if load > 0 {
		return tr.ScaleToLoad(load)
	}
	return tr, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfrs-sim:", err)
	exit(1)
}
