// Command dfrs-sim runs one scheduling algorithm over one trace and prints
// the paper's metrics for the run.
//
//	dfrs-gen -model lublin -jobs 300 -load 0.7 > t.txt
//	dfrs-sim -trace t.txt -alg dynmcb8-asap-per -penalty 300
//
// Without -trace, a synthetic workload is generated on the fly from -seed,
// -jobs, -nodes and -load.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cluster"
	"repro/internal/lublin"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"

	_ "repro/internal/sched/batch"
	_ "repro/internal/sched/greedy"
	_ "repro/internal/sched/mcb"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file (dfrs trace format); empty = synthesize")
		alg       = flag.String("alg", "dynmcb8-asap-per", "algorithm (see -list)")
		list      = flag.Bool("list", false, "list algorithms and exit")
		penalty   = flag.Float64("penalty", 300, "rescheduling penalty in seconds")
		seed      = flag.Uint64("seed", 1, "synthetic workload seed")
		jobs      = flag.Int("jobs", 300, "synthetic workload size")
		nodes     = flag.Int("nodes", 128, "synthetic cluster size")
		nodeMix   = flag.String("node-mix", "", "node-mix profile (uniform, bimodal, powerlaw); empty = homogeneous")
		load      = flag.Float64("load", 0.7, "synthetic offered load (0 = natural)")
		check     = flag.Bool("check", false, "enable per-event invariant checking")
		perJob    = flag.Bool("jobs-detail", false, "print per-job stretch table")
		gantt     = flag.Bool("gantt", false, "print an ASCII Gantt chart of the schedule")
		ganttJobs = flag.Int("gantt-jobs", 40, "max jobs shown in the Gantt chart")
		tlCSV     = flag.String("timeline-csv", "", "write every per-job scheduling transition as CSV to this file")
	)
	flag.Parse()

	if *list {
		for _, name := range sched.Names() {
			fmt.Println(name)
		}
		return
	}

	// Validate flags eagerly so misuse fails with a clear message instead
	// of a generator or simulator error deep in the run.
	if *tracePath == "" {
		if *nodes <= 0 {
			fatal(fmt.Errorf("bad -nodes: cluster size %d, want at least 1", *nodes))
		}
		if *jobs <= 0 {
			fatal(fmt.Errorf("bad -jobs: workload size %d, want at least 1", *jobs))
		}
	}
	if *load < 0 || *load > 1 {
		fatal(fmt.Errorf("bad -load: offered load %g outside [0,1] (0 means natural)", *load))
	}
	if *penalty < 0 {
		fatal(fmt.Errorf("bad -penalty: negative rescheduling penalty %g", *penalty))
	}
	if !cluster.ValidProfile(*nodeMix) {
		fatal(fmt.Errorf("bad -node-mix: unknown profile %q (known: %v)", *nodeMix, cluster.ProfileNames()))
	}

	tr, err := loadTrace(*tracePath, *seed, *nodes, *jobs, *load)
	if err != nil {
		fatal(err)
	}
	cl, err := cluster.Profile(*nodeMix, tr.Nodes)
	if err != nil {
		fatal(err)
	}
	s, err := sched.New(*alg)
	if err != nil {
		fatal(err)
	}
	simulator, err := sim.New(sim.Config{
		Trace:           tr,
		Cluster:         cl,
		Penalty:         *penalty,
		CheckInvariants: *check,
		RecordTimeline:  *gantt || *tlCSV != "",
		MaxSimTime:      50 * 365 * 24 * 3600,
	}, s)
	if err != nil {
		fatal(err)
	}
	res, err := simulator.Run()
	if err != nil {
		fatal(err)
	}
	if err := metrics.Validate(res); err != nil {
		fatal(err)
	}
	sum := metrics.Summarize(res)
	costs := metrics.Costs(res)
	fmt.Printf("trace        %s (%d jobs, %d nodes, offered load %.2f)\n",
		tr.Name, len(tr.Jobs), tr.Nodes, tr.OfferedLoad())
	if !cl.Homogeneous() {
		fmt.Printf("cluster      node-mix %s (total CPU capacity %.1f, memory %.1f)\n",
			*nodeMix, cl.TotalCPU(), cl.TotalMem())
	}
	fmt.Printf("algorithm    %s (penalty %.0fs)\n", res.Algorithm, *penalty)
	fmt.Printf("makespan     %.1f h\n", res.Makespan/3600)
	fmt.Printf("max stretch  %.2f\n", sum.MaxStretch)
	fmt.Printf("avg stretch  %.2f\n", sum.AvgStretch)
	fmt.Printf("preemptions  %d (%.3f GB/s, %.2f/h, %.2f/job)\n",
		res.PreemptionOps, costs.PmtnGBps, costs.PmtnPerHour, costs.PmtnPerJob)
	fmt.Printf("migrations   %d (%.3f GB/s, %.2f/h, %.2f/job)\n",
		res.MigrationOps, costs.MigGBps, costs.MigPerHour, costs.MigPerJob)
	fmt.Printf("utilization  %.1f%% of cluster CPU over the makespan\n", 100*res.Utilization())
	fmt.Printf("events       %d\n", res.Events)

	if *tlCSV != "" {
		if err := writeTimelineCSV(*tlCSV, res); err != nil {
			fatal(err)
		}
		fmt.Printf("timeline     %d transitions written to %s\n", len(res.Timeline), *tlCSV)
	}

	if *gantt {
		chart := &report.Gantt{
			Title: fmt.Sprintf("schedule: %s on %s", res.Algorithm, tr.Name),
			Lanes: ganttLanes(res, *ganttJobs),
		}
		fmt.Println()
		if err := chart.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if *perJob {
		fmt.Println("\njob  tasks  exec      turnaround  stretch  pauses  migs")
		rows := append([]sim.JobResult(nil), res.Jobs...)
		sort.Slice(rows, func(a, b int) bool { return rows[a].Job.ID < rows[b].Job.ID })
		for _, jr := range rows {
			fmt.Printf("%-4d %-6d %-9.1f %-11.1f %-8.2f %-7d %d\n",
				jr.Job.ID, jr.Job.Tasks, jr.Job.ExecTime, jr.Turnaround,
				metrics.BoundedStretch(jr.Turnaround, jr.Job.ExecTime),
				jr.Pauses, jr.Migrations)
		}
	}
}

// writeTimelineCSV dumps the recorded transitions for offline analysis or
// plotting: one row per (time, job, kind, yield, frozen_until).
func writeTimelineCSV(path string, res *sim.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "time,jid,kind,yield,frozen_until"); err != nil {
		return err
	}
	for _, e := range res.Timeline {
		if _, err := fmt.Fprintf(f, "%.6f,%d,%s,%.6f,%.6f\n",
			e.Time, e.JID, e.Kind, e.Yield, e.FrozenUntil); err != nil {
			return err
		}
	}
	return nil
}

// ganttLanes converts the recorded timeline into chart lanes, one per job
// (in jid order, capped at maxJobs).
func ganttLanes(res *sim.Result, maxJobs int) []report.GanttLane {
	jids := map[int]bool{}
	for _, e := range res.Timeline {
		jids[e.JID] = true
	}
	ordered := make([]int, 0, len(jids))
	for jid := range jids {
		ordered = append(ordered, jid)
	}
	sort.Ints(ordered)
	if maxJobs > 0 && len(ordered) > maxJobs {
		ordered = ordered[:maxJobs]
	}
	lanes := make([]report.GanttLane, 0, len(ordered))
	for _, jid := range ordered {
		lane := report.GanttLane{Label: fmt.Sprintf("job %d", jid)}
		for _, seg := range res.JobSegments(jid) {
			lane.Segments = append(lane.Segments, report.GanttSegment{
				From: seg.From, To: seg.To, State: seg.State.String(), Yield: seg.Yield,
			})
		}
		lanes = append(lanes, lane)
	}
	return lanes
}

func loadTrace(path string, seed uint64, nodes, jobs int, load float64) (*workload.Trace, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workload.ReadTrace(f)
	}
	tr, err := lublin.GenerateTrace(rng.New(seed), lublin.DefaultParams(nodes), jobs,
		fmt.Sprintf("lublin-seed%d", seed))
	if err != nil {
		return nil, err
	}
	if load > 0 {
		return tr.ScaleToLoad(load)
	}
	return tr, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfrs-sim:", err)
	os.Exit(1)
}
