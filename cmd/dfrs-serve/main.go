// Command dfrs-serve runs the DFRS simulator as a service: an HTTP daemon
// that accepts campaign grids and trace uploads, executes them on a
// bounded worker pool, streams progress and live online-metric snapshots
// over SSE, and checkpoints campaigns so a killed daemon resumes at cell
// granularity on restart.
//
//	dfrs-serve -addr :8080 -state-dir /var/lib/dfrs
//
//	# submit the Figure 1 smoke grid
//	curl -d '{"name":"fig1","algorithms":["fcfs","greedy"],
//	          "families":[{"kind":"lublin","count":2}],
//	          "loads":[0.7],"nodes":[32],"jobs_per_trace":200}' \
//	     localhost:8080/v1/campaigns
//
//	# watch it live
//	curl -N localhost:8080/v1/jobs/<id>/events
//
// See internal/serve for the API and the resume guarantees.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		stateDir = flag.String("state-dir", "dfrs-serve-state", "state directory (specs, checkpoints, summaries)")
		jobs     = flag.Int("jobs", 2, "max concurrently executing submissions")
		cellWork = flag.Int("cell-workers", 1, "concurrent cells per campaign (1 keeps checkpoints byte-reproducible across restarts)")
	)
	flag.Parse()

	m, err := serve.New(serve.Options{Dir: *stateDir, Jobs: *jobs, CellWorkers: *cellWork})
	if err != nil {
		fatal(err)
	}
	resumed, err := m.Resume()
	if err != nil {
		fatal(err)
	}
	if len(resumed) > 0 {
		fmt.Fprintf(os.Stderr, "dfrs-serve: resuming %d incomplete job(s): %v\n", len(resumed), resumed)
	}

	ctx, stop := cli.SignalContext()
	defer stop()
	srv := &http.Server{Addr: *addr, Handler: m.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "dfrs-serve: listening on %s (state in %s)\n", *addr, *stateDir)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting requests, then cancel the running
	// jobs. Campaigns stop within one cell and their checkpoints stay
	// valid, so the next boot resumes exactly the missing cells.
	fmt.Fprintln(os.Stderr, "dfrs-serve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "dfrs-serve: shutdown:", err)
	}
	m.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfrs-serve:", err)
	os.Exit(1)
}
