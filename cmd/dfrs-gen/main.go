// Command dfrs-gen generates workload traces for the DFRS simulator.
//
//	dfrs-gen -model lublin -nodes 128 -jobs 1000 -seed 1 -load 0.7 > trace.txt
//	dfrs-gen -model hpc2n -weeks 4 -seed 1 -swf > hpc2n-like.swf
//
// The lublin model emits the dfrs trace text format (see internal/workload);
// the hpc2n model emits either the trace format (after the paper's
// preprocessing) or raw SWF with -swf.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/hpc2n"
	"repro/internal/lublin"
	"repro/internal/rng"
	"repro/internal/workload"
)

func main() {
	var (
		model   = flag.String("model", "lublin", "workload model: lublin or hpc2n")
		nodes   = flag.Int("nodes", 128, "cluster size (lublin)")
		jobs    = flag.Int("jobs", 1000, "number of jobs (lublin)")
		weeks   = flag.Int("weeks", 4, "weeks of log (hpc2n)")
		seed    = flag.Uint64("seed", 1, "generator seed")
		load    = flag.Float64("load", 0, "rescale to this offered load (0 = keep natural load)")
		gpuFrac = flag.Float64("gpu-frac", 0, "fraction of jobs given a GPU demand in [0.1,0.5] (adds a gpu column to the trace format)")
		swfFl   = flag.Bool("swf", false, "emit raw SWF instead of the trace format (hpc2n only)")
		name    = flag.String("name", "", "trace name (default derived from model and seed)")
		stream  = flag.Bool("stream", false, "generate and emit jobs one at a time without materializing the trace (lublin with -load 0 only; output is identical except that -gpu-frac always emits the gpu column)")
	)
	flag.Parse()

	if *stream {
		if *model != "lublin" {
			fatal(fmt.Errorf("bad -stream: model %q materializes inherently (lublin only)", *model))
		}
		if *load > 0 {
			fatal(fmt.Errorf("bad -stream: -load %g needs the whole trace to rescale (use -load 0)", *load))
		}
	}

	// SIGINT/SIGTERM cancels the context; the context-aware writer then
	// fails the in-flight encode so the command exits promptly instead of
	// finishing a multi-megabyte trace dump.
	ctx, stop := cli.SignalContext()
	defer stop()
	var out io.Writer = cli.Writer(ctx, os.Stdout)

	var tr *workload.Trace
	switch *model {
	case "lublin":
		n := *name
		if n == "" {
			n = fmt.Sprintf("lublin-seed%d", *seed)
		}
		if *stream {
			if err := streamLublin(out, *seed, *nodes, *jobs, n, *gpuFrac); err != nil {
				fatal(err)
			}
			return
		}
		var err error
		tr, err = lublin.GenerateTrace(rng.New(*seed), lublin.DefaultParams(*nodes), *jobs, n)
		if err != nil {
			fatal(err)
		}
	case "hpc2n":
		p := hpc2n.DefaultSynthParams()
		p.Weeks = *weeks
		log, err := hpc2n.Synthesize(rng.New(*seed), p)
		if err != nil {
			fatal(err)
		}
		if *swfFl {
			if err := log.Write(out); err != nil {
				fatal(err)
			}
			return
		}
		n := *name
		if n == "" {
			n = fmt.Sprintf("hpc2n-like-seed%d", *seed)
		}
		var st hpc2n.PreprocessStats
		tr, st, err = hpc2n.Preprocess(log, n)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dfrs-gen: %d/%d jobs kept (%d missing memory, %d dropped)\n",
			st.Kept, st.Total, st.MissingMemory, st.DroppedRuntime+st.DroppedSize)
	default:
		fatal(fmt.Errorf("unknown model %q", *model))
	}
	// Shared post-processing: optional GPU-demand axis, load rescaling,
	// trace-format encoding.
	var err error
	if *gpuFrac > 0 {
		tr, err = workload.AttachGPUDemand(tr, rng.New(*seed).Split("gpu"),
			*gpuFrac, workload.GPUDemandLo, workload.GPUDemandHi)
		if err != nil {
			fatal(err)
		}
	}
	if *load > 0 {
		if tr, err = tr.ScaleToLoad(*load); err != nil {
			fatal(err)
		}
	}
	if err := tr.Encode(out); err != nil {
		fatal(err)
	}
}

// streamLublin is the -stream pipeline: generate a raw job, annotate it,
// optionally attach a GPU demand, encode it, discard it. Each stage pulls
// from the same deterministic substream as its batch counterpart, in the
// same per-job order, so the emitted rows match GenerateTrace (+
// AttachGPUDemand) byte for byte — except that the column layout is fixed
// up front (a streaming writer cannot scan the jobs), so -gpu-frac emits
// the gpu column even if the Bernoulli draws happen to select no job.
func streamLublin(out io.Writer, seed uint64, nodes, njobs int, name string, gpuFrac float64) error {
	if njobs < 0 {
		return fmt.Errorf("lublin: %d jobs requested", njobs)
	}
	root := rng.New(seed)
	raw, err := lublin.DefaultParams(nodes).Stream(root.Split("arrivals"))
	if err != nil {
		return err
	}
	ann := root.Split("annotations")
	var gpu *rng.Source
	extraDims := 0
	if gpuFrac > 0 {
		gpu = rng.New(seed).Split("gpu")
		extraDims = 1
	}
	meta := &workload.Trace{Name: name, Nodes: nodes, NodeMemGB: lublin.NodeMemGB}
	enc := workload.NewTraceEncoder(out, meta, false, extraDims)
	for i := 0; i < njobs; i++ {
		j := lublin.AnnotateJob(ann, raw.Next(), i)
		if gpu != nil && gpu.Bernoulli(gpuFrac) {
			u := gpu.Float64()
			j.Extra = []float64{workload.GPUDemandLo + (workload.GPUDemandHi-workload.GPUDemandLo)*u}
		}
		if err := j.Validate(nodes); err != nil {
			return err
		}
		if err := enc.Write(j); err != nil {
			return err
		}
	}
	return enc.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfrs-gen:", err)
	os.Exit(1)
}
