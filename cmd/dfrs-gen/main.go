// Command dfrs-gen generates workload traces for the DFRS simulator.
//
//	dfrs-gen -model lublin -nodes 128 -jobs 1000 -seed 1 -load 0.7 > trace.txt
//	dfrs-gen -model hpc2n -weeks 4 -seed 1 -swf > hpc2n-like.swf
//
// The lublin model emits the dfrs trace text format (see internal/workload);
// the hpc2n model emits either the trace format (after the paper's
// preprocessing) or raw SWF with -swf.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/cli"
	"repro/internal/hpc2n"
	"repro/internal/lublin"
	"repro/internal/rng"
	"repro/internal/workload"
)

func main() {
	var (
		model   = flag.String("model", "lublin", "workload model: lublin or hpc2n")
		nodes   = flag.Int("nodes", 128, "cluster size (lublin)")
		jobs    = flag.Int("jobs", 1000, "number of jobs (lublin)")
		weeks   = flag.Int("weeks", 4, "weeks of log (hpc2n)")
		seed    = flag.Uint64("seed", 1, "generator seed")
		load    = flag.Float64("load", 0, "rescale to this offered load (0 = keep natural load)")
		gpuFrac = flag.Float64("gpu-frac", 0, "fraction of jobs given a GPU demand in [0.1,0.5] (adds a gpu column to the trace format)")
		gpuCorr = flag.Float64("gpu-corr", 0, "correlation of GPU demands with memory requirements, in [-1,1] (requires -gpu-frac; 0 = independent draws)")
		swfFl   = flag.Bool("swf", false, "emit raw SWF instead of the trace format (hpc2n only)")
		name    = flag.String("name", "", "trace name (default derived from model and seed)")
		stream  = flag.Bool("stream", false, "generate and emit jobs one at a time without materializing the trace (lublin only; output is identical except that -gpu-frac always emits the gpu column, and -load regenerates the deterministic stream twice — measure, then scale — and declares the load as '# offered_load:' metadata)")
	)
	flag.Parse()

	if *stream && *model != "lublin" {
		fatal(fmt.Errorf("bad -stream: model %q materializes inherently (lublin only)", *model))
	}
	if !(*gpuCorr >= -1 && *gpuCorr <= 1) {
		fatal(fmt.Errorf("bad -gpu-corr: correlation %g outside [-1,1]", *gpuCorr))
	}
	if *gpuCorr != 0 && *gpuFrac == 0 {
		fatal(fmt.Errorf("bad -gpu-corr: requires -gpu-frac > 0"))
	}

	// SIGINT/SIGTERM cancels the context; the context-aware writer then
	// fails the in-flight encode so the command exits promptly instead of
	// finishing a multi-megabyte trace dump.
	ctx, stop := cli.SignalContext()
	defer stop()
	var out io.Writer = cli.Writer(ctx, os.Stdout)

	var tr *workload.Trace
	switch *model {
	case "lublin":
		n := *name
		if n == "" {
			n = fmt.Sprintf("lublin-seed%d", *seed)
		}
		if *stream {
			if err := streamLublin(out, *seed, *nodes, *jobs, n, *gpuFrac, *gpuCorr, *load); err != nil {
				fatal(err)
			}
			return
		}
		var err error
		tr, err = lublin.GenerateTrace(rng.New(*seed), lublin.DefaultParams(*nodes), *jobs, n)
		if err != nil {
			fatal(err)
		}
	case "hpc2n":
		p := hpc2n.DefaultSynthParams()
		p.Weeks = *weeks
		log, err := hpc2n.Synthesize(rng.New(*seed), p)
		if err != nil {
			fatal(err)
		}
		if *swfFl {
			if err := log.Write(out); err != nil {
				fatal(err)
			}
			return
		}
		n := *name
		if n == "" {
			n = fmt.Sprintf("hpc2n-like-seed%d", *seed)
		}
		var st hpc2n.PreprocessStats
		tr, st, err = hpc2n.Preprocess(log, n)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dfrs-gen: %d/%d jobs kept (%d missing memory, %d dropped)\n",
			st.Kept, st.Total, st.MissingMemory, st.DroppedRuntime+st.DroppedSize)
	default:
		fatal(fmt.Errorf("unknown model %q", *model))
	}
	// Shared post-processing: optional GPU-demand axis, load rescaling,
	// trace-format encoding.
	var err error
	if *gpuFrac > 0 {
		tr, err = workload.AttachGPUDemandCorrelated(tr, rng.New(*seed).Split("gpu"),
			*gpuFrac, *gpuCorr, workload.GPUDemandLo, workload.GPUDemandHi)
		if err != nil {
			fatal(err)
		}
	}
	if *load > 0 {
		if tr, err = tr.ScaleToLoad(*load); err != nil {
			fatal(err)
		}
	}
	if err := tr.Encode(out); err != nil {
		fatal(err)
	}
}

// streamLublin is the -stream pipeline: generate a raw job, annotate it,
// optionally attach a GPU demand, encode it, discard it. Each stage pulls
// from the same deterministic substream as its batch counterpart, in the
// same per-job order, so the emitted rows match GenerateTrace (+
// AttachGPUDemand) byte for byte — except that the column layout is fixed
// up front (a streaming writer cannot scan the jobs), so -gpu-frac emits
// the gpu column even if the Bernoulli draws happen to select no job.
//
// A target load runs the pipeline twice: the sequence is a deterministic
// function of the seed, so a first instance measures the natural offered
// load in O(1) memory and a second replays through a ScaledSource — the
// streaming counterpart of ScaleToLoad, still never materializing the
// trace. The target is declared as "# offered_load:" metadata so
// single-pass consumers (dfrs-sim -stream -load reading stdin) can rescale
// further without their own measuring pass.
func streamLublin(out io.Writer, seed uint64, nodes, njobs int, name string, gpuFrac, gpuCorr, load float64) error {
	if njobs < 0 {
		return fmt.Errorf("lublin: %d jobs requested", njobs)
	}
	extraDims := 0
	if gpuFrac > 0 {
		extraDims = 1
	}
	src, err := newLublinSource(seed, nodes, njobs, gpuFrac, gpuCorr)
	if err != nil {
		return err
	}
	var jobs workload.JobSource = src
	meta := &workload.Trace{Name: name, Nodes: nodes, NodeMemGB: lublin.NodeMemGB}
	if load > 0 {
		measure, err := newLublinSource(seed, nodes, njobs, gpuFrac, gpuCorr)
		if err != nil {
			return err
		}
		cur, _, err := workload.MeasureSourceLoad(measure, nodes)
		if err != nil {
			return err
		}
		if cur <= 0 {
			return fmt.Errorf("lublin: cannot rescale a %d-job stream with zero offered load", njobs)
		}
		if jobs, err = workload.NewScaledSource(src, cur/load); err != nil {
			return err
		}
		meta.Name = fmt.Sprintf("%s-load%.2f", name, load)
	}
	enc := workload.NewTraceEncoder(out, meta, false, extraDims)
	if load > 0 {
		if err := enc.SetOfferedLoad(load); err != nil {
			return err
		}
	}
	for {
		j, ok, err := jobs.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := enc.Write(j); err != nil {
			return err
		}
	}
	return enc.Flush()
}

// lublinSource replays the deterministic generate→annotate(→gpu) pipeline
// as a workload.JobSource; instances with identical parameters emit
// identical job sequences.
type lublinSource struct {
	raw     *lublin.RawStream
	ann     *rng.Source
	gpu     *rng.Source
	gpuFrac float64
	gpuCorr float64
	nodes   int
	njobs   int
	i       int
}

func newLublinSource(seed uint64, nodes, njobs int, gpuFrac, gpuCorr float64) (*lublinSource, error) {
	root := rng.New(seed)
	raw, err := lublin.DefaultParams(nodes).Stream(root.Split("arrivals"))
	if err != nil {
		return nil, err
	}
	s := &lublinSource{raw: raw, ann: root.Split("annotations"),
		gpuFrac: gpuFrac, gpuCorr: gpuCorr, nodes: nodes, njobs: njobs}
	if gpuFrac > 0 {
		s.gpu = rng.New(seed).Split("gpu")
	}
	return s, nil
}

// Next implements workload.JobSource.
func (s *lublinSource) Next() (workload.Job, bool, error) {
	if s.i >= s.njobs {
		return workload.Job{}, false, nil
	}
	j := lublin.AnnotateJob(s.ann, s.raw.Next(), s.i)
	s.i++
	if s.gpu != nil && s.gpu.Bernoulli(s.gpuFrac) {
		// Mirrors workload.AttachGPUDemandCorrelated: the uniform variate
		// is mixed with the job's memory requirement by |corr|, consuming
		// the same variates in the same order as the batch decorator, so
		// streamed and materialized traces stay byte-identical.
		u := s.gpu.Float64()
		w := math.Abs(s.gpuCorr)
		m := j.MemReq
		if s.gpuCorr < 0 {
			m = 1 - m
		}
		v := w*m + (1-w)*u
		j.Extra = []float64{workload.GPUDemandLo + (workload.GPUDemandHi-workload.GPUDemandLo)*v}
	}
	if err := j.Validate(s.nodes); err != nil {
		return workload.Job{}, false, err
	}
	return j, true, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfrs-gen:", err)
	os.Exit(1)
}
