// Command dfrs-bench converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark result, so benchmark baselines
// can be committed and diffed across PRs:
//
//	go test -run '^$' -bench . -benchtime 1x ./... | dfrs-bench > BENCH.json
//
// Lines that are not benchmark results (package headers, PASS/ok trailers)
// are ignored. Standard testing metrics (ns/op, B/op, allocs/op) get their
// own fields; any custom metrics land in the "extra" map.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op,omitempty"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsUnit float64 `json:"allocs_per_op,omitempty"`
	// Extra holds nonstandard "value unit" pairs reported via b.ReportMetric.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	results, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfrs-bench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "dfrs-bench:", err)
		os.Exit(1)
	}
}

// parse extracts benchmark lines of the form
//
//	BenchmarkName-8   	      12	  98765 ns/op	  4096 B/op	  12 allocs/op
func parse(sc *bufio.Scanner) ([]Result, error) {
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	results := []Result{}
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmarking..." chatter, not a result line
		}
		r := Result{Name: fields[0], Iterations: iters}
		// The remainder is "value unit" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value %q in %q", fields[i], sc.Text())
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsUnit = v
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[fields[i+1]] = v
			}
		}
		results = append(results, r)
	}
	return results, sc.Err()
}
