// Command dfrs-bench converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark result, so benchmark baselines
// can be committed and diffed across PRs:
//
//	go test -run '^$' -bench . -benchtime 1x ./... | dfrs-bench > BENCH.json
//
// Lines that are not benchmark results (package headers, PASS/ok trailers)
// are ignored. Standard testing metrics (ns/op, B/op, allocs/op) get their
// own fields; any custom metrics land in the "extra" map.
//
// With -compare, the command instead diffs two committed baselines and
// flags wall-clock regressions beyond a threshold (the `make
// bench-compare` non-blocking CI step):
//
//	dfrs-bench -compare -old BENCH_PR2.json -new BENCH_PR3.json -threshold 10
//
// It exits 1 if any benchmark present in both files regressed its ns/op by
// more than the threshold percentage.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cli"
)

// Result is one benchmark measurement.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op,omitempty"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsUnit float64 `json:"allocs_per_op,omitempty"`
	// Extra holds nonstandard "value unit" pairs reported via b.ReportMetric.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	var (
		compare   = flag.Bool("compare", false, "compare two baseline JSON files instead of parsing bench output")
		oldPath   = flag.String("old", "", "baseline JSON (with -compare)")
		newPath   = flag.String("new", "", "candidate JSON (with -compare)")
		threshold = flag.Float64("threshold", 10, "ns/op regression percentage that fails the comparison (with -compare)")
	)
	flag.Parse()
	// SIGINT/SIGTERM aborts the in-flight encode.
	ctx, stop := cli.SignalContext()
	defer stop()

	if *compare {
		if *oldPath == "" || *newPath == "" {
			fatal(fmt.Errorf("-compare requires -old and -new"))
		}
		regressed, err := compareBaselines(os.Stdout, *oldPath, *newPath, *threshold)
		if err != nil {
			fatal(err)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}

	results, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(cli.Writer(ctx, os.Stdout))
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fatal(err)
	}
}

// compareBaselines diffs two committed baseline files by benchmark name and
// reports every ns/op change, flagging regressions beyond thresholdPct. It
// returns whether any benchmark regressed beyond the threshold. Benchmarks
// present in only one file are listed but never fail the comparison, so
// adding or retiring benchmarks stays cheap.
func compareBaselines(w *os.File, oldPath, newPath string, thresholdPct float64) (bool, error) {
	oldRes, err := readBaseline(oldPath)
	if err != nil {
		return false, err
	}
	newRes, err := readBaseline(newPath)
	if err != nil {
		return false, err
	}
	names := make([]string, 0, len(newRes))
	for name := range newRes {
		names = append(names, name)
	}
	sort.Strings(names)
	regressed := false
	fmt.Fprintf(w, "%-60s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		nr := newRes[name]
		or, ok := oldRes[name]
		if !ok || or.NsPerOp == 0 {
			fmt.Fprintf(w, "%-60s %14s %14.0f %8s\n", name, "-", nr.NsPerOp, "new")
			continue
		}
		deltaPct := 100 * (nr.NsPerOp - or.NsPerOp) / or.NsPerOp
		mark := ""
		if deltaPct > thresholdPct {
			mark = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(w, "%-60s %14.0f %14.0f %+7.1f%%%s\n", name, or.NsPerOp, nr.NsPerOp, deltaPct, mark)
	}
	for name := range oldRes {
		if _, ok := newRes[name]; !ok {
			fmt.Fprintf(w, "%-60s %14.0f %14s %8s\n", name, oldRes[name].NsPerOp, "-", "gone")
		}
	}
	if regressed {
		fmt.Fprintf(w, "\nbenchmarks regressed more than %.0f%% ns/op against %s\n", thresholdPct, oldPath)
	}
	return regressed, nil
}

// readBaseline loads a committed BENCH_PR*.json file into a name-keyed map.
func readBaseline(path string) (map[string]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var results []Result
	if err := json.NewDecoder(f).Decode(&results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]Result, len(results))
	for _, r := range results {
		out[r.Name] = r
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfrs-bench:", err)
	os.Exit(1)
}

// parse extracts benchmark lines of the form
//
//	BenchmarkName-8   	      12	  98765 ns/op	  4096 B/op	  12 allocs/op
func parse(sc *bufio.Scanner) ([]Result, error) {
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	results := []Result{}
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmarking..." chatter, not a result line
		}
		r := Result{Name: fields[0], Iterations: iters}
		// The remainder is "value unit" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value %q in %q", fields[i], sc.Text())
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsUnit = v
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[fields[i+1]] = v
			}
		}
		results = append(results, r)
	}
	return results, sc.Err()
}
