package dfrs_test

// RunStream must agree exactly with Run: a trace encoded to the dfrs text
// format and replayed through the streaming reader yields the same Result
// as the materialized run, for both the plain and GPU-extended formats.

import (
	"bytes"
	"context"
	"strings"
	"testing"

	dfrs "repro"
)

func streamEqTrace(t *testing.T) dfrs.Trace {
	t.Helper()
	tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 5, Nodes: 16, Jobs: 60, Name: "stream-eq"})
	if err != nil {
		t.Fatal(err)
	}
	tr, err = tr.ScaleToLoad(1.2)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunStreamMatchesRun(t *testing.T) {
	tr := streamEqTrace(t)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	encoded := buf.Bytes()
	// Both paths parse the same bytes: the comparison is StreamTrace vs
	// ReadTrace, not in-memory vs text (the text format quantizes floats).
	rtr, err := dfrs.ReadTrace(bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"fcfs", "easy", "greedy-pmtn-migr", "dynmcb8", "dynmcb8-stretch-per"} {
		mat, err := dfrs.Run(context.Background(), rtr, alg)
		if err != nil {
			t.Fatalf("%s run: %v", alg, err)
		}
		str, err := dfrs.RunStream(context.Background(), bytes.NewReader(encoded), alg)
		if err != nil {
			t.Fatalf("%s stream: %v", alg, err)
		}
		compareRuns(t, alg, mat, str)
	}
}

func compareRuns(t *testing.T, alg string, mat, str dfrs.Result) {
	t.Helper()
	if mat.Makespan() != str.Makespan() {
		t.Errorf("%s: makespan %g vs %g", alg, mat.Makespan(), str.Makespan())
	}
	if mat.Events() != str.Events() {
		t.Errorf("%s: events %d vs %d", alg, mat.Events(), str.Events())
	}
	if mat.Preemptions() != str.Preemptions() || mat.Migrations() != str.Migrations() {
		t.Errorf("%s: ops %d/%d vs %d/%d", alg, mat.Preemptions(), mat.Migrations(), str.Preemptions(), str.Migrations())
	}
	if mat.Cost() != str.Cost() {
		t.Errorf("%s: cost %g vs %g", alg, mat.Cost(), str.Cost())
	}
	mj, sj := mat.Jobs(), str.Jobs()
	if len(mj) != len(sj) {
		t.Fatalf("%s: %d jobs vs %d", alg, len(mj), len(sj))
	}
	for i := range mj {
		if mj[i].Job.ID != sj[i].Job.ID || mj[i].Start != sj[i].Start ||
			mj[i].Finish != sj[i].Finish || mj[i].Pauses != sj[i].Pauses {
			t.Errorf("%s: job %d: %+v vs %+v", alg, mj[i].Job.ID, mj[i], sj[i])
		}
	}
}

func TestRunStreamGPUFormat(t *testing.T) {
	gtr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 5, Nodes: 16, Jobs: 60, Name: "stream-gpu", GPUFrac: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gtr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	rtr, err := dfrs.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	mat, err := dfrs.Run(context.Background(), rtr, "dynmcb8")
	if err != nil {
		t.Fatal(err)
	}
	str, err := dfrs.RunStream(context.Background(), bytes.NewReader(buf.Bytes()), "dynmcb8")
	if err != nil {
		t.Fatal(err)
	}
	compareRuns(t, "dynmcb8/gpu", mat, str)
}

func TestRunStreamWithJobSink(t *testing.T) {
	tr := streamEqTrace(t)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var n int
	res, err := dfrs.RunStream(context.Background(), &buf, "greedy-pmtn",
		dfrs.WithJobSink(func(dfrs.JobResult) { n++ }))
	if err != nil {
		t.Fatal(err)
	}
	if n != 60 {
		t.Errorf("sink saw %d jobs, want 60", n)
	}
	if len(res.Jobs()) != 0 {
		t.Errorf("Result.Jobs holds %d entries despite sink", len(res.Jobs()))
	}
	if res.Makespan() <= 0 {
		t.Error("makespan not computed under sink")
	}
}

func TestRunStreamBadInput(t *testing.T) {
	if _, err := dfrs.RunStream(context.Background(), strings.NewReader("not a trace\n"), "fcfs"); err == nil {
		t.Error("garbage input accepted")
	}
	if _, err := dfrs.RunStream(context.Background(), strings.NewReader(""), "fcfs"); err == nil {
		t.Error("empty input accepted")
	}
}
