package dfrs

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"repro/internal/federation"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ClusterSpec declares one member cluster of a federated run.
type ClusterSpec struct {
	// Name identifies the cluster in results; empty derives one from the
	// position and mix.
	Name string
	// NodeMix is the cluster's node-mix profile (see NodeMixes); empty
	// inherits the run's WithNodeMix (itself defaulting to the paper's
	// homogeneous platform).
	NodeMix string
	// Nodes is the cluster's node count; 0 inherits the trace's node
	// count.
	Nodes int
	// Algorithm overrides the federation's default scheduler for this
	// cluster when non-empty.
	Algorithm string
	// Objective overrides the run's WithObjective for this cluster when
	// non-empty.
	Objective string
}

// FederationSpec declares a federated run: the member clusters and the
// dispatch policy routing arriving jobs across them.
type FederationSpec struct {
	// Clusters are the members; at least one is required.
	Clusters []ClusterSpec
	// Dispatcher names the routing policy — one of Dispatchers(), or a
	// name registered with RegisterDispatcher. Empty means
	// DefaultDispatcher (round-robin).
	Dispatcher string
	// Algorithm is the default scheduler family for clusters that do not
	// set their own. RunFederated's algorithm argument is this field; set
	// per-cluster Algorithm for heterogeneous federations.
	Algorithm string
	// Workers selects the execution mode: 0 (the default) picks
	// GOMAXPROCS workers for federations of two or more clusters and the
	// serial loop otherwise; 1 forces the serial loop; higher values run
	// that many goroutines advancing members concurrently between
	// dispatch points (capped at the cluster count). Results are
	// byte-identical across every value — the parallel loop processes the
	// identical per-member event sequence (see internal/federation's
	// package doc).
	Workers int
}

// Dispatcher decides which member cluster each arriving job of a federated
// run enters; see RegisterDispatcher for custom policies.
type Dispatcher = federation.Dispatcher

// ClusterView is the live per-cluster snapshot a Dispatcher routes on.
type ClusterView = federation.ClusterView

// DefaultDispatcher is the dispatch policy used when FederationSpec leaves
// Dispatcher empty.
const DefaultDispatcher = federation.DefaultDispatcher

// RegisterDispatcher adds a dispatch policy under a unique name, making it
// available to FederationSpec.Dispatcher, the campaign Dispatchers axis
// and the CLIs' -dispatch flag. Each federated run gets a fresh instance
// from the factory, so policies may keep per-run state. Like
// RegisterAlgorithm, registration must happen before the runs that use it
// (typically from init).
func RegisterDispatcher(name string, factory func() Dispatcher) error {
	return federation.Register(name, factory)
}

// Dispatchers lists the registered dispatch policy names, sorted.
func Dispatchers() []string { return federation.Names() }

// ParseClusters parses the compact topology notation of the -clusters CLI
// flag into a cluster list: either a bare count "N" (N copies of defNodes
// nodes of the defMix profile) or a "+"-separated member list of
// "mix:nodes" terms, e.g. "uniform:128+bimodal-priced:64". defMix and
// defNodes fill omitted fields.
func ParseClusters(spec string, defNodes int, defMix string) ([]ClusterSpec, error) {
	members, err := federation.ParseTopology(spec, defNodes, defMix)
	if err != nil {
		return nil, err
	}
	out := make([]ClusterSpec, len(members))
	for i, m := range members {
		out[i] = ClusterSpec{NodeMix: m.Mix, Nodes: m.Nodes}
	}
	return out, nil
}

// FederatedResult wraps a finished federated run: per-cluster results plus
// the merged whole-federation view.
type FederatedResult struct {
	r *federation.Result
}

// FederatedClusterResult summarizes one member cluster of a federated run.
type FederatedClusterResult struct {
	// Name, Algorithm and Nodes echo the resolved member spec.
	Name      string
	Algorithm string
	Nodes     int
	// Dispatched counts the jobs routed to this cluster.
	Dispatched int
	// MaxStretch, AvgStretch and Makespan summarize the cluster's own
	// jobs (bounded stretch, as everywhere).
	MaxStretch float64
	AvgStretch float64
	Makespan   float64
	// Utilization is the fraction of the cluster's CPU capacity that
	// delivered useful work over its makespan.
	Utilization float64
	// Cost is the cluster's cost-weighted occupancy in price units
	// (always 0 on unpriced mixes).
	Cost float64
	// Finished counts the cluster's completed jobs; Events its processed
	// simulation events.
	Finished int
	Events   int
}

// RunFederated simulates a federation of clusters over the trace: one
// global arrival feed, routed across the member clusters by the spec's
// dispatch policy, every member advancing under one shared clock. Each
// member runs its own scheduler (spec.Algorithm, or per-cluster
// overrides) on its own node mix. Options apply federation-wide: penalty
// and max-sim-time in every member, WithNodeMix/WithObjective as member
// defaults, WithTargetLoad on the feed, observers on every member,
// WithJobSink/WithOnlineMetrics on every completion.
// WithResources and WithTimeline do not extend to federations and are
// rejected.
//
// A single-cluster federation is behaviourally identical to Run on the
// same trace — the per-cluster result matches field for field, any
// dispatcher — which pins federated semantics to the single-cluster
// engine.
//
// Multi-cluster federations execute in parallel by default
// (FederationSpec.Workers), advancing members concurrently between
// dispatch points with byte-identical results to the serial loop.
func RunFederated(ctx context.Context, t Trace, spec FederationSpec, opts ...RunOption) (FederatedResult, error) {
	return runFederated(ctx, t.t, t.t.Dims(), nil, spec, opts)
}

// RunFederatedStream is RunFederated over a trace read lazily from r (the
// dfrs trace format): the global feed pulls jobs as virtual time reaches
// them, and member memory stays bounded by jobs-in-system. Results equal
// RunFederated's on the same trace.
func RunFederatedStream(ctx context.Context, r io.Reader, spec FederationSpec, opts ...RunOption) (FederatedResult, error) {
	tr, err := workload.StreamTrace(r)
	if err != nil {
		return FederatedResult{}, err
	}
	return runFederated(ctx, tr.Meta(), tr.Dims(), tr, spec, opts)
}

// runFederated is the shared engine of RunFederated and RunFederatedStream,
// mirroring runTrace: resolve options, build the federation spec, run.
func runFederated(ctx context.Context, t *workload.Trace, dims int, source workload.JobSource, spec FederationSpec, opts []RunOption) (FederatedResult, error) {
	cfg := runConfig{maxSimTime: defaultMaxSimTime}
	for _, opt := range opts {
		opt(&cfg)
	}
	if len(cfg.resources) > 0 {
		return FederatedResult{}, fmt.Errorf("dfrs: WithResources is not supported for federated runs; per-cluster dimensions come from the node mixes")
	}
	if cfg.timeline {
		return FederatedResult{}, fmt.Errorf("dfrs: WithTimeline is not supported for federated runs")
	}
	if len(spec.Clusters) == 0 {
		return FederatedResult{}, fmt.Errorf("dfrs: FederationSpec needs at least one cluster")
	}
	if cfg.targetLoad != 0 {
		var err error
		if t, source, err = rescaleToTarget(t, source, cfg.targetLoad, cfg.currentLoad); err != nil {
			return FederatedResult{}, err
		}
	}
	members := make([]federation.MemberSpec, len(spec.Clusters))
	for i, cs := range spec.Clusters {
		nodes := cs.Nodes
		if nodes <= 0 {
			nodes = t.Nodes
		}
		mix := cs.NodeMix
		if mix == "" {
			mix = cfg.nodeMix
		}
		members[i] = federation.MemberSpec{
			Name:      cs.Name,
			Mix:       mix,
			Nodes:     nodes,
			Algorithm: cs.Algorithm,
			Objective: cs.Objective,
		}
	}
	workers := spec.Workers
	if workers < 0 {
		return FederatedResult{}, fmt.Errorf("dfrs: negative FederationSpec.Workers %d", workers)
	}
	if workers == 0 && len(spec.Clusters) > 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	fspec := federation.Spec{
		TraceName:       t.Name,
		NodeMemGB:       t.NodeMemGB,
		Dims:            dims,
		Members:         members,
		Dispatcher:      spec.Dispatcher,
		Algorithm:       spec.Algorithm,
		Objective:       cfg.objective,
		Penalty:         cfg.penalty,
		MaxSimTime:      cfg.maxSimTime,
		CheckInvariants: cfg.check,
		Workers:         workers,
	}
	if cfg.observer != nil {
		obs := cfg.observer
		fspec.Observer = func(int) sim.Observer { return obs }
	}
	if cfg.jobSink != nil {
		sink := cfg.jobSink
		fspec.JobSink = func(_ int, jr JobResult) { sink(jr) }
	}
	if source == nil {
		source = workload.NewSliceSource(t)
	}
	fed, err := federation.New(fspec, source)
	if err != nil {
		return FederatedResult{}, err
	}
	res, err := fed.Run(ctx)
	if err != nil {
		return FederatedResult{}, err
	}
	return FederatedResult{r: res}, nil
}

// Dispatcher returns the dispatch policy that routed the run.
func (r FederatedResult) Dispatcher() string { return r.r.Dispatcher }

// Clusters returns the number of member clusters.
func (r FederatedResult) Clusters() int { return len(r.r.Clusters) }

// Cluster summarizes member i.
func (r FederatedResult) Cluster(i int) FederatedClusterResult {
	c := r.r.Clusters[i]
	return FederatedClusterResult{
		Name:        c.Name,
		Algorithm:   c.Algorithm,
		Nodes:       c.Nodes,
		Dispatched:  c.Dispatched,
		MaxStretch:  c.Summary.MaxStretch,
		AvgStretch:  c.Summary.AvgStretch,
		Makespan:    c.Summary.Makespan,
		Utilization: c.Result.Utilization(),
		Cost:        c.Result.NodeCostSeconds,
		Finished:    len(c.Result.Jobs),
		Events:      c.Result.Events,
	}
}

// Dispatched returns how many jobs each cluster received, in cluster
// order.
func (r FederatedResult) Dispatched() []int {
	out := make([]int, len(r.r.Clusters))
	for i, c := range r.r.Clusters {
		out[i] = c.Dispatched
	}
	return out
}

// MaxStretch returns the maximum bounded stretch across all clusters.
func (r FederatedResult) MaxStretch() float64 { return r.r.Summary.MaxStretch }

// AvgStretch returns the average bounded stretch over all jobs of the
// federation.
func (r FederatedResult) AvgStretch() float64 { return r.r.Summary.AvgStretch }

// Makespan returns the completion time of the federation's last job.
func (r FederatedResult) Makespan() float64 { return r.r.Merged.Makespan }

// Utilization returns the delivered fraction of the federation's
// aggregate CPU capacity over the makespan.
func (r FederatedResult) Utilization() float64 { return r.r.Merged.Utilization() }

// Cost returns the federation's total cost-weighted occupancy in price
// units — the cloud-bursting headline number on priced remote mixes.
func (r FederatedResult) Cost() float64 { return r.r.Merged.NodeCostSeconds }

// Events returns the total number of simulation events processed across
// all clusters.
func (r FederatedResult) Events() int { return r.r.Merged.Events }

// Jobs returns a copy of the per-job outcomes across all clusters,
// ordered by job ID (empty when the run used WithJobSink or
// WithOnlineMetrics).
func (r FederatedResult) Jobs() []JobResult {
	return append([]JobResult(nil), r.r.Merged.Jobs...)
}
