package dfrs

// Federation lock: a 1-cluster federation must be byte-identical to a
// plain Run of the same trace — same per-job outcomes, same event counts,
// same aggregates, field for field — for every scheduler family, node
// mix and dispatch policy. The orchestrator only chooses which member
// advances next, so with one member it must reduce to the single-cluster
// engine exactly; this test pins that reduction the same way the
// placement layer pinned its default rules.

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/sim"
)

func lockTrace(t *testing.T, seed uint64, jobs int, gpuFrac float64) Trace {
	t.Helper()
	nodes := 64
	if gpuFrac > 0 {
		nodes = 128 // the GPU mixes put accelerators on a node subset
	}
	tr, err := SyntheticTrace(SyntheticOptions{Seed: seed, Nodes: nodes, Jobs: jobs, GPUFrac: gpuFrac})
	if err != nil {
		t.Fatalf("SyntheticTrace: %v", err)
	}
	scaled, err := tr.ScaleToLoad(0.7)
	if err != nil {
		t.Fatalf("ScaleToLoad: %v", err)
	}
	return scaled
}

func TestFederationSingleClusterByteIdentity(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		alg, mix, objective string
		gpuFrac             float64
		penalty             float64
	}{
		{alg: "greedy", mix: "", gpuFrac: 0, penalty: 0},
		{alg: "greedy-pmtn-migr", mix: "bimodal", gpuFrac: 0, penalty: 300},
		{alg: "dynmcb8-per", mix: "", gpuFrac: 0, penalty: 300},
		{alg: "fcfs", mix: "powerlaw", gpuFrac: 0, penalty: 0},
		{alg: "gang", mix: "", gpuFrac: 0, penalty: 0},
		{alg: "greedy", mix: "gpu-uniform", gpuFrac: 0.3, penalty: 0},
		{alg: "greedy", mix: "bimodal-priced", objective: "cost", gpuFrac: 0, penalty: 300},
	}
	for _, tc := range cases {
		for _, dispatcher := range Dispatchers() {
			name := tc.alg + "/" + tc.mix + "/" + tc.objective + "/" + dispatcher
			t.Run(name, func(t *testing.T) {
				tr := lockTrace(t, 7, 120, tc.gpuFrac)
				opts := []RunOption{WithPenalty(tc.penalty), WithNodeMix(tc.mix)}
				if tc.objective != "" {
					opts = append(opts, WithObjective(tc.objective))
				}
				single, err := Run(ctx, tr, tc.alg, opts...)
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				fed, err := RunFederated(ctx, tr, FederationSpec{
					Clusters:   []ClusterSpec{{}},
					Dispatcher: dispatcher,
					Algorithm:  tc.alg,
				}, opts...)
				if err != nil {
					t.Fatalf("RunFederated: %v", err)
				}
				member := fed.r.Clusters[0].Result
				if !reflect.DeepEqual(single.r, member) {
					t.Errorf("1-cluster federated result diverges from Run:\n  single: %+v\n  member: %+v",
						summaryOf(single.r), summaryOf(member))
				}
				if got := fed.r.Clusters[0].Dispatched; got != len(tr.t.Jobs) {
					t.Errorf("dispatched %d of %d jobs", got, len(tr.t.Jobs))
				}
			})
		}
	}
}

// summaryOf compacts a result for failure messages (the full struct holds
// the per-job array).
func summaryOf(r *sim.Result) string {
	return fmt.Sprintf("alg=%s jobs=%d makespan=%g events=%d pmtn=%d mig=%d delivered=%g cost=%g",
		r.Algorithm, len(r.Jobs), r.Makespan, r.Events, r.PreemptionOps, r.MigrationOps,
		r.DeliveredCPUSeconds, r.NodeCostSeconds)
}

// TestFederationMergedAggregates pins the merged result against the
// members: job counts, events, delivered work and cost must sum; the
// per-cluster summaries must equal post-hoc metrics.Summarize of the
// member results (checked indirectly through the facade accessors).
func TestFederationMergedAggregates(t *testing.T) {
	tr := lockTrace(t, 11, 150, 0)
	fed, err := RunFederated(context.Background(), tr, FederationSpec{
		Clusters: []ClusterSpec{
			{Name: "onprem", NodeMix: "", Nodes: 64},
			{Name: "remote", NodeMix: "bimodal-priced", Nodes: 64},
		},
		Dispatcher: "queuedepth",
		Algorithm:  "greedy",
	})
	if err != nil {
		t.Fatalf("RunFederated: %v", err)
	}
	jobs, events, cost, delivered := 0, 0, 0.0, 0.0
	maxMk := 0.0
	for i := range fed.r.Clusters {
		c := fed.r.Clusters[i]
		jobs += len(c.Result.Jobs)
		events += c.Result.Events
		cost += c.Result.NodeCostSeconds
		delivered += c.Result.DeliveredCPUSeconds
		if c.Result.Makespan > maxMk {
			maxMk = c.Result.Makespan
		}
		if c.Summary.Jobs != len(c.Result.Jobs) {
			t.Errorf("cluster %d summary jobs %d != %d", i, c.Summary.Jobs, len(c.Result.Jobs))
		}
	}
	m := fed.r.Merged
	if len(m.Jobs) != jobs || len(m.Jobs) != len(tr.t.Jobs) {
		t.Errorf("merged jobs %d, members %d, trace %d", len(m.Jobs), jobs, len(tr.t.Jobs))
	}
	if m.Events != events {
		t.Errorf("merged events %d != sum %d", m.Events, events)
	}
	if m.NodeCostSeconds != cost {
		t.Errorf("merged cost %g != sum %g", m.NodeCostSeconds, cost)
	}
	if m.DeliveredCPUSeconds != delivered {
		t.Errorf("merged delivered %g != sum %g", m.DeliveredCPUSeconds, delivered)
	}
	if m.Makespan != maxMk {
		t.Errorf("merged makespan %g != max %g", m.Makespan, maxMk)
	}
	if cost <= 0 {
		t.Errorf("priced remote accrued no cost")
	}
	for i := 1; i < len(m.Jobs); i++ {
		if m.Jobs[i].Job.ID < m.Jobs[i-1].Job.ID {
			t.Fatalf("merged jobs not sorted by ID at %d", i)
		}
	}
}
