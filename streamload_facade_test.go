package dfrs_test

// WithTargetLoad must behave identically on both run paths: a materialized
// Run rescaled to a target load and a RunStream rescaled via measured or
// declared current load replay the exact same simulation.

import (
	"bytes"
	"context"
	"strconv"
	"testing"

	dfrs "repro"
)

func encodedLoadTrace(t *testing.T) []byte {
	t.Helper()
	tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 11, Nodes: 16, Jobs: 80, Name: "load-eq"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTargetLoadStreamMatchesMaterialized(t *testing.T) {
	encoded := encodedLoadTrace(t)
	cur, jobs, err := dfrs.MeasureStreamLoad(bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	if jobs != 80 || cur <= 0 {
		t.Fatalf("measured %d jobs at load %g", jobs, cur)
	}
	rtr, err := dfrs.ReadTrace(bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	const target = 0.8
	for _, alg := range []string{"greedy-pmtn", "dynmcb8-stretch-per"} {
		mat, err := dfrs.Run(context.Background(), rtr, alg, dfrs.WithTargetLoad(target))
		if err != nil {
			t.Fatalf("%s run: %v", alg, err)
		}
		// Two-pass scheme: the measured load feeds the second, scaled pass.
		str, err := dfrs.RunStream(context.Background(), bytes.NewReader(encoded), alg,
			dfrs.WithTargetLoad(target), dfrs.WithCurrentLoad(cur))
		if err != nil {
			t.Fatalf("%s stream: %v", alg, err)
		}
		compareRuns(t, alg, mat, str)
	}
}

func TestTargetLoadDeclaredMetadata(t *testing.T) {
	encoded := encodedLoadTrace(t)
	cur, _, err := dfrs.MeasureStreamLoad(bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	// Declare the measured load in the preamble, as dfrs-gen -stream does;
	// FormatFloat 'g'/-1 round-trips the float64 exactly, so the declared
	// path and the WithCurrentLoad path scale by the same factor.
	decl := []byte("# offered_load: " + strconv.FormatFloat(cur, 'g', -1, 64) + "\nid submit")
	declared := bytes.Replace(encoded, []byte("id submit"), decl, 1)

	const target = 0.8
	rtr, err := dfrs.ReadTrace(bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	mat, err := dfrs.Run(context.Background(), rtr, "greedy-pmtn", dfrs.WithTargetLoad(target))
	if err != nil {
		t.Fatal(err)
	}
	str, err := dfrs.RunStream(context.Background(), bytes.NewReader(declared), "greedy-pmtn",
		dfrs.WithTargetLoad(target))
	if err != nil {
		t.Fatal(err)
	}
	compareRuns(t, "greedy-pmtn/declared", mat, str)
}

func TestTargetLoadStreamRequiresLoadInfo(t *testing.T) {
	encoded := encodedLoadTrace(t)
	if _, err := dfrs.RunStream(context.Background(), bytes.NewReader(encoded), "fcfs",
		dfrs.WithTargetLoad(0.8)); err == nil {
		t.Error("stream without declared or current load accepted a target load")
	}
	if _, err := dfrs.RunStream(context.Background(), bytes.NewReader(encoded), "fcfs",
		dfrs.WithTargetLoad(-1), dfrs.WithCurrentLoad(0.5)); err == nil {
		t.Error("negative target load accepted")
	}
}

func TestWithOnlineMetricsWiring(t *testing.T) {
	encoded := encodedLoadTrace(t)
	agg := dfrs.NewOnlineAggregator()
	res, err := dfrs.RunStream(context.Background(), bytes.NewReader(encoded), "greedy-pmtn",
		dfrs.WithOnlineMetrics(agg))
	if err != nil {
		t.Fatal(err)
	}
	snap := agg.Snapshot()
	if snap.Jobs != 80 || snap.Submitted != 80 {
		t.Errorf("aggregator saw %d completions / %d submissions, want 80/80", snap.Jobs, snap.Submitted)
	}
	if snap.StretchP50 < 1 || snap.MaxStretch < snap.StretchP99 {
		t.Errorf("implausible stretch snapshot: p50=%g p99=%g max=%g", snap.StretchP50, snap.StretchP99, snap.MaxStretch)
	}
	if len(res.Jobs()) != 0 {
		t.Errorf("Result.Jobs holds %d entries despite online metrics riding the sink path", len(res.Jobs()))
	}
}
