// Command federation demonstrates shared-clock multi-cluster federation
// as a cloud-bursting study: a free on-prem cluster plus a priced elastic
// remote one (the bimodal-priced mix: fat nodes at cost rate 3, reference
// nodes at 1), the same workload routed across them by each built-in
// dispatch policy. Round-robin splits arrivals evenly and pays for half
// the work; queue-depth balances jobs-in-system; cost-aware keeps the
// remote cluster idle until the on-prem one runs out of free capacity, so
// only the overflow is billed.
//
// Every member advances under one global clock — the orchestrator only
// picks which cluster's next event fires, so a one-cluster federation is
// byte-identical to dfrs.Run (that lock is what makes the dispatch
// policies comparable: any difference between rows is routing, not
// engine drift).
//
// The second half times a wider eight-member federation twice — serial
// (Workers 1) and on the conservative-lookahead worker pool (Workers 0,
// all cores) — and checks the results match exactly: parallelism is an
// execution detail, never a semantics change. The speedup tracks the
// host's core count; on a single-core machine the two timings collapse
// to parity.
//
//	go run ./examples/federation
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"
)

import dfrs "repro"

func main() {
	var (
		alg  = flag.String("alg", "greedy-pmtn", "scheduler run inside every member cluster")
		jobs = flag.Int("jobs", 150, "synthetic workload size")
		load = flag.Float64("load", 0.9, "offered load relative to one 64-node cluster")
	)
	flag.Parse()

	// The trace is sized and load-scaled against a single 64-node
	// cluster, so at high load the on-prem member alone cannot absorb it
	// and bursting becomes visible.
	tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 7, Nodes: 64, Jobs: *jobs})
	if err != nil {
		log.Fatal(err)
	}
	tr, err = tr.ScaleToLoad(*load)
	if err != nil {
		log.Fatal(err)
	}

	spec := dfrs.FederationSpec{
		Clusters: []dfrs.ClusterSpec{
			{Name: "onprem", NodeMix: "uniform", Nodes: 64},
			{Name: "cloud", NodeMix: "bimodal-priced", Nodes: 64},
		},
		Algorithm: *alg,
	}

	fmt.Printf("%s across onprem:64 + cloud:64 (%d jobs, load %.1f)\n\n", *alg, *jobs, *load)
	fmt.Printf("%-12s %8s %8s %12s %14s %12s\n",
		"dispatch", "onprem", "cloud", "max stretch", "cloud cost", "utilization")
	for _, policy := range dfrs.Dispatchers() {
		spec.Dispatcher = policy
		res, err := dfrs.RunFederated(context.Background(), tr, spec, dfrs.WithPenalty(300))
		if err != nil {
			log.Fatal(err)
		}
		d := res.Dispatched()
		fmt.Printf("%-12s %8d %8d %12.2f %14.0f %11.1f%%\n",
			policy, d[0], d[1], res.MaxStretch(), res.Cluster(1).Cost, 100*res.Utilization())
	}
	fmt.Println("\nThe cloud column is the billed overflow: costaware routes there only")
	fmt.Println("when onprem has no free slots. Sweep topologies x policies across whole")
	fmt.Println("campaigns with dfrs-campaign -clusters uniform:64+bimodal-priced:64 \\")
	fmt.Println("  -dispatch roundrobin,queuedepth,costaware.")

	// Parallel execution: the same federation, eight members wide, timed
	// serial versus the lookahead worker pool. Round-robin is stateless,
	// so the pool batches whole arrival runs ahead of the members.
	wide := dfrs.FederationSpec{
		Clusters:   make([]dfrs.ClusterSpec, 8),
		Dispatcher: "roundrobin",
		Algorithm:  *alg,
	}
	for i := range wide.Clusters {
		wide.Clusters[i] = dfrs.ClusterSpec{Nodes: 64}
	}
	wtr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 7, Nodes: 64, Jobs: 8 * *jobs})
	if err != nil {
		log.Fatal(err)
	}
	run := func(workers int) (dfrs.FederatedResult, time.Duration) {
		wide.Workers = workers
		start := time.Now()
		res, err := dfrs.RunFederated(context.Background(), wtr, wide, dfrs.WithPenalty(300))
		if err != nil {
			log.Fatal(err)
		}
		return res, time.Since(start)
	}
	serial, serialDur := run(1)
	parallel, parallelDur := run(0)
	fmt.Printf("\nParallel execution (8 members, roundrobin, %d cores):\n", runtime.GOMAXPROCS(0))
	fmt.Printf("  serial   (Workers 1): %8s\n", serialDur.Round(time.Millisecond))
	fmt.Printf("  parallel (Workers 0): %8s\n", parallelDur.Round(time.Millisecond))
	if serial.Events() != parallel.Events() || serial.Makespan() != parallel.Makespan() {
		log.Fatalf("parallel run diverged from serial: %d/%d events, %g/%g makespan",
			serial.Events(), parallel.Events(), serial.Makespan(), parallel.Makespan())
	}
	fmt.Println("  results: identical (parallelism never changes the answer)")
}
