// Command serve demonstrates the dfrs-serve HTTP API end to end: submit a
// small Figure-1-style campaign grid, follow its server-sent event stream,
// and print the rolling p95 stretch as online snapshots arrive — the live
// view a dashboard would render — then fetch the final summary.
//
// Point it at a running daemon:
//
//	dfrs-serve -addr 127.0.0.1:8080 -state-dir /tmp/dfrs-state &
//	go run ./examples/serve -addr 127.0.0.1:8080
//
// With no -addr, the example starts an in-process daemon on a loopback
// port first, so it runs with zero setup.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"repro/internal/serve"
)

// grid is a small slice of the paper's Figure 1 campaign: three scheduler
// families over two Lublin traces at offered load 0.7.
const grid = `{
  "name": "fig1-live",
  "algorithms": ["fcfs", "greedy-pmtn", "dynmcb8-asap-per"],
  "families": [{"kind": "lublin", "count": 2}],
  "loads": [0.7],
  "nodes": [32],
  "jobs_per_trace": 2000
}`

func main() {
	addr := flag.String("addr", "", "daemon address (empty: start one in-process)")
	flag.Parse()

	base := *addr
	if base == "" {
		base = startLocalDaemon()
	}
	base = "http://" + base

	// Submit the grid; the daemon answers 202 with the job ID before any
	// cell has run.
	resp, err := http.Post(base+"/v1/campaigns", "application/json", strings.NewReader(grid))
	if err != nil {
		log.Fatal(err)
	}
	var sub struct {
		ID    string `json:"id"`
		Cells int    `json:"cells"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("submit rejected: %d %+v", resp.StatusCode, sub)
	}
	fmt.Printf("submitted job %s (%d cells)\n", sub.ID, sub.Cells)

	// Follow the SSE stream. Record frames mark finished cells; snapshot
	// frames carry the rolling aggregates, including the p95 stretch
	// sketch value.
	stream, err := http.Get(base + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	defer stream.Body.Close()
	var (
		event string
		cells int
	)
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case serve.EventRecord:
				cells++
			case serve.EventSnapshot:
				var snap struct {
					Jobs int64   `json:"jobs"`
					P50  float64 `json:"stretch_p50"`
					P95  float64 `json:"stretch_p95"`
				}
				if err := json.Unmarshal([]byte(data), &snap); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("cell %2d/%d  %5d jobs folded  rolling stretch p50 %8.2f  p95 %8.2f\n",
					cells, sub.Cells, snap.Jobs, snap.P50, snap.P95)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	// The stream ended with the job: the summary is now final.
	resp, err = http.Get(base + "/v1/jobs/" + sub.ID + "/summary")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var sum serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		log.Fatal(err)
	}
	s := sum.Snapshot
	fmt.Printf("\njob %s %s: %d cells, %d jobs\n", sum.ID, sum.State, s.Cells, s.Jobs)
	fmt.Printf("stretch p50 %.2f  p95 %.2f  p99 %.2f  max %.2f  utilization %.3f\n",
		s.StretchP50, s.StretchP95, s.StretchP99, s.MaxStretch, s.Utilization)
}

// startLocalDaemon runs a throwaway in-process daemon and returns its
// listen address.
func startLocalDaemon() string {
	m, err := serve.New(serve.Options{Dir: "dfrs-serve-state"})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, m.Handler())
	fmt.Printf("in-process daemon on %s (state in dfrs-serve-state/)\n", ln.Addr())
	return ln.Addr().String()
}
