// Command streaming demonstrates the observable half of the v2 API: a
// simulation consumed live, event by event, instead of as a finished
// Result. dfrs.Stream runs the simulation in the background and delivers
// every scheduling transition — submissions, dispatches, preemptions,
// migrations, completions, and scheduler invocations with wall-clock
// timing — on a typed channel, which is the shape live dashboards, online
// metrics and early-termination logic build on.
//
// The example streams a contended synthetic trace through GREEDY-PMTN-MIGR,
// prints the first transitions as they happen, keeps running per-kind
// counters and an online average stretch, and shows deadline-driven early
// termination with a context timeout (-deadline).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"

	dfrs "repro"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 17, "workload seed")
		jobs     = flag.Int("jobs", 120, "number of jobs")
		load     = flag.Float64("load", 0.8, "offered load")
		alg      = flag.String("alg", "greedy-pmtn-migr", "algorithm")
		show     = flag.Int("show", 12, "job transitions to print live before going quiet")
		deadline = flag.Duration("deadline", 0, "optional wall-clock budget (e.g. 50ms); 0 = none")
	)
	flag.Parse()

	trace, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: *seed, Nodes: 64, Jobs: *jobs})
	if err != nil {
		log.Fatal(err)
	}
	if trace, err = trace.ScaleToLoad(*load); err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	events, wait := dfrs.Stream(ctx, trace, *alg, dfrs.WithPenalty(300))

	// Online consumption: counters, a live stretch average, and a live log
	// of the first transitions. Everything here sees the simulation as it
	// unfolds, not after the fact.
	counts := map[dfrs.EventKind]int{}
	shown := 0
	var stretchSum float64
	byID := map[int]dfrs.Job{}
	for _, j := range trace.Jobs() {
		byID[j.ID] = j
	}
	for ev := range events {
		counts[ev.Kind]++
		if ev.Kind == dfrs.EvCompleted {
			stretchSum += dfrs.BoundedStretch(ev.Turnaround, byID[ev.JID].ExecTime)
		}
		if ev.Kind != dfrs.EvSchedulerInvoked && shown < *show {
			fmt.Println(" ", ev)
			shown++
			if shown == *show {
				fmt.Println("  ... (going quiet; counters keep running)")
			}
		}
	}

	res, err := wait()
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Printf("\ndeadline hit after %d completions — the run stopped at event granularity\n",
			counts[dfrs.EvCompleted])
		return
	case err != nil:
		log.Fatal(err)
	}

	fmt.Printf("\nfinal: %s on %s\n", res.Algorithm(), trace.Name())
	fmt.Printf("  raw transitions observed: %d submitted, %d started, %d preempted, %d migrated, %d completed\n",
		counts[dfrs.EvSubmitted], counts[dfrs.EvStarted], counts[dfrs.EvPreempted],
		counts[dfrs.EvMigrated], counts[dfrs.EvCompleted])
	fmt.Printf("  scheduler invocations: %d\n", counts[dfrs.EvSchedulerInvoked])
	fmt.Printf("  online avg stretch %.2f  (final: avg %.2f, max %.2f)\n",
		stretchSum/float64(counts[dfrs.EvCompleted]), res.AvgStretch(), res.MaxStretch())
	// Accounted operations can be lower than raw transitions: a pause
	// resumed within the same event is refunded (or reclassified as the
	// migration the stream also reported).
	fmt.Printf("  accounted preemptions %d, migrations %d, makespan %.1f h\n",
		res.Preemptions(), res.Migrations(), res.Makespan()/3600)
}
