// Command synthetic-campaign reproduces the shape of the paper's Figure 1
// with the public API: it sweeps offered load over several levels, runs a
// representative algorithm from each family on identical scaled traces, and
// prints average degradation factors per load. With more traces and jobs
// (flags) it converges to the committed Figure 1 results.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	dfrs "repro"
)

func main() {
	var (
		traces  = flag.Int("traces", 2, "synthetic traces per load level")
		jobs    = flag.Int("jobs", 150, "jobs per trace")
		penalty = flag.Float64("penalty", 300, "rescheduling penalty (seconds)")
	)
	flag.Parse()

	algorithms := []string{"fcfs", "easy", "greedy", "greedy-pmtn", "dynmcb8", "dynmcb8-asap-per"}
	loads := []float64{0.3, 0.5, 0.7, 0.9}

	// degradation[alg][load] accumulates degradation factors across traces.
	sums := map[string]map[float64]float64{}
	for _, alg := range algorithms {
		sums[alg] = map[float64]float64{}
	}

	for t := 0; t < *traces; t++ {
		base, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{
			Seed: uint64(100 + t), Nodes: 128, Jobs: *jobs,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, load := range loads {
			scaled, err := base.ScaleToLoad(load)
			if err != nil {
				log.Fatal(err)
			}
			maxStretch := map[string]float64{}
			for _, alg := range algorithms {
				res, err := dfrs.Run(context.Background(), scaled, alg, dfrs.WithPenalty(*penalty))
				if err != nil {
					log.Fatal(err)
				}
				maxStretch[alg] = res.MaxStretch()
			}
			deg, err := dfrs.DegradationFactors(maxStretch)
			if err != nil {
				log.Fatal(err)
			}
			for alg, d := range deg {
				sums[alg][load] += d
			}
		}
	}

	fmt.Printf("average degradation factor (penalty %.0fs, %d traces x %d jobs)\n\n",
		*penalty, *traces, *jobs)
	fmt.Printf("%-18s", "algorithm")
	for _, load := range loads {
		fmt.Printf("  load %.1f", load)
	}
	fmt.Println()
	for _, alg := range algorithms {
		fmt.Printf("%-18s", alg)
		for _, load := range loads {
			fmt.Printf("  %8.2f", sums[alg][load]/float64(*traces))
		}
		fmt.Println()
	}
	fmt.Println("\n1.00 = best algorithm on every instance; compare with the paper's")
	fmt.Println("Figure 1(b): batch schedulers degrade by orders of magnitude while")
	fmt.Println("the periodic DYNMCB8 variants stay within a small factor of optimal.")
}
