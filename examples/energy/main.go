// Command energy illustrates the under-subscription observation of
// Section II-B2: once the minimum yield is maximized, an under-subscribed
// cluster has whole nodes' worth of unused capacity, which an operator
// could power down. The example runs a low-load workload under a batch
// baseline and a DFRS algorithm and estimates the node-hours each one
// could have powered down (cluster capacity minus the workload's work,
// over each schedule's makespan).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	dfrs "repro"
)

func main() {
	var (
		load = flag.Float64("load", 0.3, "offered load of the workload")
		jobs = flag.Int("jobs", 200, "number of jobs")
		seed = flag.Uint64("seed", 21, "workload seed")
	)
	flag.Parse()

	trace, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: *seed, Nodes: 128, Jobs: *jobs})
	if err != nil {
		log.Fatal(err)
	}
	trace, err = trace.ScaleToLoad(*load)
	if err != nil {
		log.Fatal(err)
	}

	// Total CPU work is schedule-independent: tasks x execution time.
	var workNodeHours float64
	for _, j := range trace.Jobs() {
		workNodeHours += float64(j.Tasks) * j.ExecTime / 3600
	}

	fmt.Printf("workload: %d jobs, offered load %.2f, %.0f node-hours of work\n\n",
		len(trace.Jobs()), *load, workNodeHours)
	fmt.Printf("%-18s %12s %14s %16s %12s\n",
		"algorithm", "makespan(h)", "capacity(nh)", "idle(nh)", "max stretch")
	for _, alg := range []string{"easy", "dynmcb8-asap-per"} {
		res, err := dfrs.Run(context.Background(), trace, alg, dfrs.WithPenalty(300))
		if err != nil {
			log.Fatal(err)
		}
		hours := res.Makespan() / 3600
		capacity := hours * float64(trace.Nodes())
		idle := capacity - workNodeHours
		fmt.Printf("%-18s %12.1f %14.0f %16.0f %12.2f\n",
			alg, hours, capacity, idle, res.MaxStretch())
	}
	fmt.Println("\nA shorter makespan at equal work means less idle capacity burning")
	fmt.Println("power; the idle node-hours column is the power-down opportunity the")
	fmt.Println("paper mentions for truly under-subscribed systems.")
}
