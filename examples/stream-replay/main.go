// Command stream-replay demonstrates the streaming run path: a trace is
// consumed from an io.Reader job by job (dfrs.RunStream), and per-job
// results are folded into online aggregates as jobs complete
// (dfrs.WithJobSink) instead of being retained. Neither the job list nor
// the result list is ever materialized, so the live set is bounded by
// jobs concurrently in the system — the mode behind
//
//	dfrs-gen -stream | dfrs-sim -stream -summary-only
//
// which replays million-job traces in a few megabytes. Here the "file" is
// an in-memory encode of a synthetic trace; point the reader at a real
// trace file for the same effect.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	dfrs "repro"
)

func main() {
	ctx := context.Background()

	// Stand-in for a trace file on disk: generate and encode.
	trace, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{
		Seed: 7, Nodes: 64, Jobs: 500, Name: "stream-replay",
	})
	if err != nil {
		log.Fatal(err)
	}
	var file bytes.Buffer
	if err := trace.Encode(&file); err != nil {
		log.Fatal(err)
	}

	// Online aggregation: the sink sees each job once, at completion.
	var (
		jobs       int
		maxStretch float64
		sumStretch float64
	)
	sink := func(jr dfrs.JobResult) {
		s := dfrs.BoundedStretch(jr.Turnaround, jr.Job.ExecTime)
		jobs++
		sumStretch += s
		if s > maxStretch {
			maxStretch = s
		}
	}

	res, err := dfrs.RunStream(ctx, &file, "dynmcb8-asap-per",
		dfrs.WithPenalty(300), dfrs.WithJobSink(sink))
	if err != nil {
		log.Fatal(err)
	}

	// Result.Jobs stays empty under a sink; counters are still complete.
	fmt.Printf("streamed %d jobs (retained per-job results: %d)\n", jobs, len(res.Jobs()))
	fmt.Printf("makespan     %.1f h\n", res.Makespan()/3600)
	fmt.Printf("max stretch  %.2f\n", maxStretch)
	fmt.Printf("avg stretch  %.2f\n", sumStretch/float64(jobs))
	fmt.Printf("preemptions  %d, migrations %d\n", res.Preemptions(), res.Migrations())
}
