// Command weighted-priorities demonstrates the user-priority extension the
// paper's conclusion calls for (Section VII): per-job weights scale yields
// under contention, so a high-priority job makes proportionally faster
// progress without starving anyone. Three identical CPU-bound jobs contend
// for one node with weights 1, 2 and 4.
package main

import (
	"context"
	"fmt"
	"log"

	dfrs "repro"
)

func main() {
	jobs := []dfrs.Job{
		{ID: 0, Submit: 0, Tasks: 1, CPUNeed: 1.0, MemReq: 0.2, ExecTime: 3600, Weight: 1},
		{ID: 1, Submit: 0, Tasks: 1, CPUNeed: 1.0, MemReq: 0.2, ExecTime: 3600, Weight: 2},
		{ID: 2, Submit: 0, Tasks: 1, CPUNeed: 1.0, MemReq: 0.2, ExecTime: 3600, Weight: 4},
	}
	trace, err := dfrs.FromJobs("weighted-demo", 1, 8, jobs)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dfrs.Run(context.Background(), trace, "dynmcb8", dfrs.WithInvariantChecking())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("three identical 1-hour jobs share one node under DYNMCB8:")
	fmt.Printf("%-8s %-8s %-14s %-10s\n", "job", "weight", "turnaround(h)", "stretch")
	stretches := res.JobStretches()
	for i, j := range trace.Jobs() {
		// Stretch ~ 1/share: weight-4 job gets 4/7 of the node.
		fmt.Printf("%-8d %-8.0f %-14.2f %-10.2f\n",
			j.ID, j.EffectiveWeight(), stretches[i]*j.ExecTime/3600, stretches[i])
	}
	fmt.Println("\nWith weights w the max-min weighted yield gives each job w/(sum of")
	fmt.Println("weights) of the CPU while contended; once heavier jobs finish, the")
	fmt.Println("remaining ones absorb the freed capacity automatically.")
}
