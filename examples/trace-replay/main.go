// Command trace-replay exercises the real-world leg of the evaluation: it
// synthesizes an HPC2N-like log (or ingests a genuine SWF file with -swf),
// splits it into 1-week instances as the paper does, and replays each week
// through a batch baseline and a DFRS algorithm, reporting per-week maximum
// stretches and the resulting degradation factors.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	dfrs "repro"
)

func main() {
	var (
		swfPath = flag.String("swf", "", "replay a genuine SWF log instead of the synthetic stand-in")
		weeks   = flag.Int("weeks", 3, "number of synthetic weeks (ignored with -swf)")
		seed    = flag.Uint64("seed", 9, "synthesis seed")
		penalty = flag.Float64("penalty", 300, "rescheduling penalty (seconds)")
	)
	flag.Parse()

	var traces []dfrs.Trace
	if *swfPath != "" {
		f, err := os.Open(*swfPath)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := dfrs.FromSWF(f, *swfPath)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		traces = []dfrs.Trace{tr}
	} else {
		var err error
		traces, err = dfrs.HPC2NLikeTraces(*seed, *weeks)
		if err != nil {
			log.Fatal(err)
		}
	}

	algs := []string{"easy", "greedy-pmtn", "dynmcb8-asap-per"}
	fmt.Printf("%-22s %8s", "week", "jobs")
	for _, alg := range algs {
		fmt.Printf("  %18s", alg)
	}
	fmt.Println("   (max stretch, degradation)")
	for _, tr := range traces {
		maxStretch := map[string]float64{}
		for _, alg := range algs {
			res, err := dfrs.Run(context.Background(), tr, alg, dfrs.WithPenalty(*penalty))
			if err != nil {
				log.Fatal(err)
			}
			maxStretch[alg] = res.MaxStretch()
		}
		deg, err := dfrs.DegradationFactors(maxStretch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %8d", tr.Name(), len(tr.Jobs()))
		for _, alg := range algs {
			fmt.Printf("  %8.1f (%6.2fx)", maxStretch[alg], deg[alg])
		}
		fmt.Println()
	}
	fmt.Println("\nThe paper's Table I observation should hold: on short-serial-heavy")
	fmt.Println("real-world weeks the greedy preemptive algorithm is close to the")
	fmt.Println("periodic vector-packing one on average, but with worse worst cases.")
}
