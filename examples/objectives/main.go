// Command objectives demonstrates the pluggable placement-objective layer
// on a price-heterogeneous cluster: the same workload and algorithm run
// under each built-in objective over the bimodal-priced node mix (fat
// 2.0 x 2.0 nodes at cost rate 3, reference nodes at cost rate 1), and the
// program tabulates the cost/performance trade-off — the default
// (published) placement rule against cost-aware, packing (bestfit) and
// spreading (worstfit) objectives.
//
// An explicit node inventory works the same way: put one capacity vector
// per line (optional cost= field) in a file and load it with
// dfrs.LoadNodeMix (the CLIs expose this as -resources @file).
//
//	go run ./examples/objectives
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
)

import dfrs "repro"

func main() {
	var (
		alg  = flag.String("alg", "greedy-pmtn", "algorithm to sweep")
		jobs = flag.Int("jobs", 80, "synthetic workload size")
		load = flag.Float64("load", 0.6, "offered load")
	)
	flag.Parse()

	tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 42, Nodes: 32, Jobs: *jobs})
	if err != nil {
		log.Fatal(err)
	}
	tr, err = tr.ScaleToLoad(*load)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on bimodal-priced (32 nodes, %d jobs, load %.1f)\n\n", *alg, *jobs, *load)
	fmt.Printf("%-12s %12s %14s %12s %12s\n", "objective", "max stretch", "cost", "cost/job", "utilization")
	for _, objective := range append([]string{""}, dfrs.Objectives()...) {
		opts := []dfrs.RunOption{dfrs.WithNodeMix("bimodal-priced"), dfrs.WithPenalty(300)}
		if objective != "" {
			opts = append(opts, dfrs.WithObjective(objective))
		}
		res, err := dfrs.Run(context.Background(), tr, *alg, opts...)
		if err != nil {
			log.Fatal(err)
		}
		name := objective
		if name == "" {
			name = "(default)"
		}
		costs := res.Costs()
		fmt.Printf("%-12s %12.2f %14.0f %12.0f %11.1f%%\n",
			name, res.MaxStretch(), res.Cost(), costs.NodeCostPerJob, 100*res.Utilization())
	}
	fmt.Println("\nLower cost means priced capacity sat idle; the default objective")
	fmt.Println("optimizes yields only. Sweep objectives across whole campaigns with")
	fmt.Println("dfrs-campaign -node-mix bimodal-priced -objective cost,bestfit,worstfit.")
}
