// Command quickstart is the minimal end-to-end example of the v2 API:
// generate a small synthetic workload, run one batch baseline and two DFRS
// algorithms over it with a context and functional options, and compare
// maximum bounded stretches — the paper's headline comparison in ~40
// lines. See examples/streaming for the observable variant and
// examples/campaign for full scenario grids.
package main

import (
	"context"
	"fmt"
	"log"

	dfrs "repro"
)

func main() {
	ctx := context.Background()

	trace, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{
		Seed:  7,
		Nodes: 128,
		Jobs:  200,
		Name:  "quickstart",
	})
	if err != nil {
		log.Fatal(err)
	}
	// Scale the workload to a nontrivial offered load, as in Figure 1.
	trace, err = trace.ScaleToLoad(0.7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d jobs on %d nodes, offered load %.2f\n",
		len(trace.Jobs()), trace.Nodes(), trace.OfferedLoad())

	for _, alg := range []string{"easy", "greedy-pmtn", "dynmcb8-asap-per"} {
		// Run blocks until the simulation completes; cancelling ctx (a
		// deadline, a signal handler) would stop it at event granularity.
		res, err := dfrs.Run(ctx, trace, alg, dfrs.WithPenalty(300))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s max stretch %8.2f   avg stretch %6.2f   makespan %7.1f h\n",
			alg, res.MaxStretch(), res.AvgStretch(), res.Makespan()/3600)
	}
	fmt.Println("\nLower stretch is better; DFRS algorithms admit jobs immediately by")
	fmt.Println("fractionally sharing nodes, so they avoid the long queue waits that")
	fmt.Println("drive batch schedulers' maximum stretch.")
}
