// Command campaign demonstrates the campaign engine (internal/campaign):
// it declares a small scenario grid — algorithms x synthetic traces x loads
// x penalties — runs it on a bounded worker pool with deterministic
// per-cell RNG substreams, checkpoints every finished cell as JSONL, and
// then aggregates the records into a per-load degradation table.
//
// The same grid always produces the same records regardless of -workers;
// interrupting the program and re-running it with the same -out path
// completes only the missing cells (the dfrs-campaign CLI exposes the same
// engine with the full flag surface).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/campaign"
	"repro/internal/metrics"

	// Register the scheduling algorithms the grid names.
	_ "repro/internal/sched/batch"
	_ "repro/internal/sched/gang"
	_ "repro/internal/sched/greedy"
	_ "repro/internal/sched/mcb"
)

func main() {
	var (
		workers = flag.Int("workers", 0, "parallel simulations (0 = all cores)")
		out     = flag.String("out", "", "optional JSONL checkpoint path; re-run to resume")
	)
	flag.Parse()

	grid := &campaign.Grid{
		Name:       "example",
		Seeds:      []uint64{42},
		Algorithms: []string{"fcfs", "easy", "greedy-pmtn", "dynmcb8-asap-per"},
		Families: []campaign.Family{
			{Kind: campaign.FamilyLublin, Count: 2},
		},
		Loads:        []float64{0.3, 0.6, 0.9},
		Penalties:    []float64{300},
		Nodes:        []int{64},
		JobsPerTrace: 80,
	}

	runner := &campaign.Runner{Workers: *workers}
	if *out != "" {
		// Resume: skip every cell already checkpointed in the file and
		// append the rest (OpenCheckpoint also repairs a torn final line
		// left by an interrupted run).
		f, skip, err := campaign.OpenCheckpoint(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		runner.Skip = skip
		runner.Sink = campaign.NewJSONLSink(f)
		if len(skip) > 0 {
			fmt.Printf("resuming: %d cells already checkpointed in %s\n", len(skip), *out)
		}
	}

	records, err := runner.Run(grid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %d of %d cells (grid %q)\n\n", len(records), len(grid.Cells()), grid.Name)

	// Aggregate: per-instance degradation factors, averaged per load.
	if *out != "" {
		f, err := os.Open(*out)
		if err != nil {
			log.Fatal(err)
		}
		records, err = campaign.ReadRecords(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	maxStretch := map[string]map[string]float64{} // instance -> alg -> max stretch
	for _, rec := range records {
		key := rec.InstanceKey()
		if maxStretch[key] == nil {
			maxStretch[key] = map[string]float64{}
		}
		maxStretch[key][rec.Algorithm] = rec.MaxStretch
	}
	sum := map[string]map[float64]float64{}
	count := map[float64]int{}
	loadOf := map[string]float64{}
	for _, rec := range records {
		loadOf[rec.InstanceKey()] = rec.Load
	}
	for key, byAlg := range maxStretch {
		deg, err := metrics.DegradationFactors(byAlg)
		if err != nil {
			log.Fatal(err)
		}
		load := loadOf[key]
		count[load]++
		for alg, d := range deg {
			if sum[alg] == nil {
				sum[alg] = map[float64]float64{}
			}
			sum[alg][load] += d
		}
	}

	fmt.Printf("average degradation factor (1.00 = best algorithm per instance)\n\n")
	fmt.Printf("%-18s", "algorithm")
	for _, load := range grid.Loads {
		fmt.Printf("  load %.1f", load)
	}
	fmt.Println()
	for _, alg := range grid.Algorithms {
		fmt.Printf("%-18s", alg)
		for _, load := range grid.Loads {
			fmt.Printf("  %8.2f", sum[alg][load]/float64(count[load]))
		}
		fmt.Println()
	}
}
