// Command campaign demonstrates the public campaign API (dfrs.Campaign):
// it declares a small scenario grid — algorithms x synthetic traces x
// loads x penalties — launches it on a bounded worker pool with
// deterministic per-cell RNG substreams, consumes finished cells live from
// the streaming record channel, checkpoints them as JSONL, and then
// aggregates the records into a per-load degradation table.
//
// The same grid always produces the same records regardless of -workers;
// interrupting the program (ctrl-C cancels the context and stops within
// one cell per worker) and re-running it with the same -out path completes
// only the missing cells. The dfrs-campaign CLI exposes the same API with
// the full flag surface.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	dfrs "repro"
)

func main() {
	var (
		workers = flag.Int("workers", 0, "parallel simulations (0 = all cores)")
		out     = flag.String("out", "", "optional JSONL checkpoint path; re-run to resume")
	)
	flag.Parse()

	grid := dfrs.Grid{
		Name:       "example",
		Seeds:      []uint64{42},
		Algorithms: []string{"fcfs", "easy", "greedy-pmtn", "dynmcb8-asap-per"},
		Families: []dfrs.CampaignFamily{
			{Kind: dfrs.FamilyLublin, Count: 2},
		},
		Loads:        []float64{0.3, 0.6, 0.9},
		Penalties:    []float64{300},
		Nodes:        []int{64},
		JobsPerTrace: 80,
	}

	// ctrl-C cancels the campaign gracefully: in-flight cells finish, the
	// checkpoint stays valid, and a re-run resumes exactly the rest.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opt := dfrs.CampaignOptions{Workers: *workers}
	if *out != "" {
		opt.Checkpoint = *out
		opt.Resume = true
	}
	run, err := dfrs.Campaign(ctx, grid, opt)
	if err != nil {
		log.Fatal(err)
	}
	if run.Skipped() > 0 {
		fmt.Printf("resuming: %d of %d cells already checkpointed in %s\n",
			run.Skipped(), run.Total(), *out)
	}

	// Consume records live as cells finish (order is nondeterministic with
	// more than one worker; Wait returns the canonical sorted set).
	for rec := range run.Records() {
		fmt.Printf("  done: %s (max stretch %.2f)\n", rec.Key, rec.MaxStretch)
	}
	records, err := run.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %d of %d cells (grid %q)\n\n", len(records), run.Total(), grid.Name)

	// Aggregate: per-instance degradation factors, averaged per load. With
	// a checkpoint, aggregate the full file so resumed runs include the
	// cells finished earlier.
	if *out != "" {
		f, err := os.Open(*out)
		if err != nil {
			log.Fatal(err)
		}
		records, err = dfrs.ReadCampaignRecords(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	maxStretch := map[string]map[string]float64{} // instance -> alg -> max stretch
	loadOf := map[string]float64{}
	for _, rec := range records {
		key := rec.InstanceKey()
		if maxStretch[key] == nil {
			maxStretch[key] = map[string]float64{}
		}
		maxStretch[key][rec.Algorithm] = rec.MaxStretch
		loadOf[key] = rec.Load
	}
	sum := map[string]map[float64]float64{}
	count := map[float64]int{}
	for key, byAlg := range maxStretch {
		deg, err := dfrs.DegradationFactors(byAlg)
		if err != nil {
			log.Fatal(err)
		}
		load := loadOf[key]
		count[load]++
		for alg, d := range deg {
			if sum[alg] == nil {
				sum[alg] = map[float64]float64{}
			}
			sum[alg][load] += d
		}
	}

	fmt.Printf("average degradation factor (1.00 = best algorithm per instance)\n\n")
	fmt.Printf("%-18s", "algorithm")
	for _, load := range grid.Loads {
		fmt.Printf("  load %.1f", load)
	}
	fmt.Println()
	for _, alg := range grid.Algorithms {
		fmt.Printf("%-18s", alg)
		for _, load := range grid.Loads {
			fmt.Printf("  %8.2f", sum[alg][load]/float64(count[load]))
		}
		fmt.Println()
	}
}
