package dfrs_test

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	dfrs "repro"
)

// v2Trace builds a small contended instance for the v2-surface tests.
func v2Trace(t *testing.T) dfrs.Trace {
	t.Helper()
	tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 33, Nodes: 32, Jobs: 60})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := tr.ScaleToLoad(0.8)
	if err != nil {
		t.Fatal(err)
	}
	return scaled
}

// stripElapsed zeroes the only nondeterministic event field.
func stripElapsed(evs []dfrs.Event) []dfrs.Event {
	out := append([]dfrs.Event(nil), evs...)
	for i := range out {
		out[i].Elapsed = 0
	}
	return out
}

// TestObserverSequenceDeterministicThroughFacade runs the same simulation
// twice through Run with observers and demands identical event sequences.
func TestObserverSequenceDeterministicThroughFacade(t *testing.T) {
	tr := v2Trace(t)
	record := func() []dfrs.Event {
		rec := &dfrs.EventRecorder{}
		if _, err := dfrs.Run(context.Background(), tr, "greedy-pmtn",
			dfrs.WithPenalty(300), dfrs.WithObserver(rec)); err != nil {
			t.Fatal(err)
		}
		return stripElapsed(rec.Events())
	}
	a, b := record(), record()
	if len(a) == 0 {
		t.Fatal("no events recorded")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("event sequences differ across identical runs")
	}
}

// TestStreamMatchesObservedRun checks Stream delivers exactly the observer
// event sequence and the same final result as a blocking Run.
func TestStreamMatchesObservedRun(t *testing.T) {
	tr := v2Trace(t)
	rec := &dfrs.EventRecorder{}
	blocking, err := dfrs.Run(context.Background(), tr, "dynmcb8-per",
		dfrs.WithPenalty(300), dfrs.WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}

	events, wait := dfrs.Stream(context.Background(), tr, "dynmcb8-per", dfrs.WithPenalty(300))
	var streamed []dfrs.Event
	for ev := range events {
		streamed = append(streamed, ev)
	}
	res, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxStretch() != blocking.MaxStretch() || res.Makespan() != blocking.Makespan() ||
		res.Events() != blocking.Events() {
		t.Errorf("streamed result differs from blocking run")
	}
	if !reflect.DeepEqual(stripElapsed(streamed), stripElapsed(rec.Events())) {
		t.Error("streamed events differ from observer events")
	}
}

// TestStreamEarlyBreak abandons the channel mid-run; wait must still
// drain, finish the simulation, and return the result.
func TestStreamEarlyBreak(t *testing.T) {
	tr := v2Trace(t)
	events, wait := dfrs.Stream(context.Background(), tr, "easy")
	seen := 0
	for range events {
		if seen++; seen >= 5 {
			break
		}
	}
	res, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan() <= 0 {
		t.Error("abandoned stream did not finish the run")
	}
}

// TestRunCancellation covers both pre-cancelled contexts and cancellation
// mid-run from an observer hook: Run must stop at event granularity with
// an error wrapping context.Canceled.
func TestRunCancellation(t *testing.T) {
	tr := v2Trace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := dfrs.Run(ctx, tr, "easy"); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Run: err = %v, want context.Canceled", err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	events, wait := dfrs.Stream(ctx2, tr, "easy")
	completions := 0
	for ev := range events {
		if ev.Kind == dfrs.EvCompleted {
			if completions++; completions == 3 {
				cancel2()
			}
		}
	}
	if _, err := wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: err = %v, want context.Canceled", err)
	}
	if completions < 3 || completions >= len(tr.Jobs()) {
		t.Errorf("cancelled run completed %d of %d jobs", completions, len(tr.Jobs()))
	}
}

// toyScheduler is the out-of-tree registration round-trip subject: a
// deliberately naive FCFS-with-sharing scheduler written against only the
// public Scheduler/Controller surface.
type toyScheduler struct{}

func (toyScheduler) Name() string                    { return "toy-fcfs-share" }
func (toyScheduler) Init(*dfrs.Controller)           {}
func (toyScheduler) OnTimer(*dfrs.Controller, int64) {}
func (toyScheduler) OnArrival(ctl *dfrs.Controller, jid int) {
	toyStartAll(ctl)
}
func (toyScheduler) OnCompletion(ctl *dfrs.Controller, jid int) {
	toyStartAll(ctl)
}

// toyStartAll starts every placeable pending job in submission order (first
// fit by free memory, with the float tolerance any real scheduler needs
// against accumulated release residue) and reapplies the uniform greedy
// yield.
func toyStartAll(ctl *dfrs.Controller) {
	const eps = 1e-9
	for _, jid := range ctl.JobsInState(dfrs.JobPending) {
		ji := ctl.Job(jid)
		extra := make([]float64, ctl.NumNodes())
		nodes := make([]int, 0, ji.Job.Tasks)
		for task := 0; task < ji.Job.Tasks; task++ {
			placed := false
			for n := 0; n < ctl.NumNodes() && !placed; n++ {
				if ctl.FreeMem(n)-extra[n] >= ji.Job.MemReq-eps {
					nodes = append(nodes, n)
					extra[n] += ji.Job.MemReq
					placed = true
				}
			}
			if !placed {
				break
			}
		}
		if len(nodes) == ji.Job.Tasks {
			ctl.Start(jid, nodes)
		}
	}
	running := ctl.JobsInState(dfrs.JobRunning)
	y := 1.0 / math.Max(1, ctl.MaxCPULoad())
	for _, jid := range running {
		ctl.SetYield(jid, 0)
	}
	for _, jid := range running {
		ctl.SetYield(jid, y)
	}
}

// TestRegisterAlgorithmRoundTrip registers a toy out-of-tree scheduler and
// drives it through the full public pipeline: listing, Run with invariant
// checking, and duplicate/invalid registration errors.
func TestRegisterAlgorithmRoundTrip(t *testing.T) {
	if err := dfrs.RegisterAlgorithm("toy-fcfs-share", func() dfrs.Scheduler { return toyScheduler{} }); err != nil {
		t.Fatal(err)
	}
	if !dfrs.KnownAlgorithm("toy-fcfs-share") {
		t.Fatal("registered algorithm not listed")
	}
	found := false
	for _, name := range dfrs.Algorithms() {
		if name == "toy-fcfs-share" {
			found = true
		}
	}
	if !found {
		t.Error("Algorithms() does not include the registered scheduler")
	}

	tr := v2Trace(t)
	res, err := dfrs.Run(context.Background(), tr, "toy-fcfs-share", dfrs.WithInvariantChecking())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Jobs()); got != len(tr.Jobs()) {
		t.Errorf("toy scheduler finished %d of %d jobs", got, len(tr.Jobs()))
	}
	if res.MaxStretch() < 1 || math.IsNaN(res.MaxStretch()) {
		t.Errorf("toy scheduler max stretch = %v", res.MaxStretch())
	}

	if err := dfrs.RegisterAlgorithm("toy-fcfs-share", func() dfrs.Scheduler { return toyScheduler{} }); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := dfrs.RegisterAlgorithm("", func() dfrs.Scheduler { return toyScheduler{} }); err == nil {
		t.Error("empty name accepted")
	}
	if err := dfrs.RegisterAlgorithm("toy-nil", nil); err == nil {
		t.Error("nil constructor accepted")
	}
}

// TestSchedulerInvokedTiming checks the timing side channel delivers
// non-negative wall-clock durations and job counts.
func TestSchedulerInvokedTiming(t *testing.T) {
	tr := v2Trace(t)
	rec := &dfrs.EventRecorder{}
	if _, err := dfrs.Run(context.Background(), tr, "easy", dfrs.WithObserver(rec)); err != nil {
		t.Fatal(err)
	}
	invocations := 0
	for _, ev := range rec.Events() {
		if ev.Kind != dfrs.EvSchedulerInvoked {
			continue
		}
		invocations++
		if ev.Elapsed < 0 || ev.Elapsed > time.Minute {
			t.Errorf("implausible hook duration %v", ev.Elapsed)
		}
		if ev.JobsInSystem < 0 || ev.JobsInSystem > len(tr.Jobs()) {
			t.Errorf("implausible jobs-in-system %d", ev.JobsInSystem)
		}
	}
	if invocations == 0 {
		t.Error("no scheduler invocations observed")
	}
}
