package dfrs_test

import (
	"context"
	"fmt"

	dfrs "repro"
)

// ExampleRun demonstrates the minimal DFRS workflow on a tiny hand-built
// workload: two CPU-bound jobs share one node fractionally and each runs at
// half speed.
func ExampleRun() {
	jobs := []dfrs.Job{
		{ID: 0, Submit: 0, Tasks: 1, CPUNeed: 1.0, MemReq: 0.3, ExecTime: 100},
		{ID: 1, Submit: 0, Tasks: 1, CPUNeed: 1.0, MemReq: 0.3, ExecTime: 100},
	}
	trace, err := dfrs.FromJobs("pair", 1, 8, jobs)
	if err != nil {
		panic(err)
	}
	res, err := dfrs.Run(context.Background(), trace, "greedy")
	if err != nil {
		panic(err)
	}
	fmt.Printf("makespan %.0fs, max stretch %.2f\n", res.Makespan(), res.MaxStretch())
	// Output: makespan 200s, max stretch 2.00
}

// ExampleBoundedStretch shows the paper's metric: turnaround over dedicated
// execution time, both floored at 30 seconds so that short failing jobs do
// not dominate.
func ExampleBoundedStretch() {
	fmt.Printf("%.1f\n", dfrs.BoundedStretch(7200, 3600)) // 2h turnaround for a 1h job
	fmt.Printf("%.1f\n", dfrs.BoundedStretch(10, 1))      // short job run immediately
	fmt.Printf("%.1f\n", dfrs.BoundedStretch(300, 1))     // short job delayed 5 minutes
	// Output:
	// 2.0
	// 1.0
	// 10.0
}

// ExampleDegradationFactors converts per-algorithm maximum stretches on one
// instance into the Figure 1 / Table I quantity.
func ExampleDegradationFactors() {
	deg, err := dfrs.DegradationFactors(map[string]float64{
		"easy":             1100,
		"greedy-pmtn":      9,
		"dynmcb8-asap-per": 4.5,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("easy %.1fx, greedy-pmtn %.1fx, dynmcb8-asap-per %.1fx\n",
		deg["easy"], deg["greedy-pmtn"], deg["dynmcb8-asap-per"])
	// Output: easy 244.4x, greedy-pmtn 2.0x, dynmcb8-asap-per 1.0x
}
