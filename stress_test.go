package dfrs_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	dfrs "repro"
)

// randomJobs draws a small adversarial workload: bursts of simultaneous
// submissions, memory hogs, single-second jobs, and full-cluster jobs.
func randomJobs(r *rand.Rand, n, nodes int) []dfrs.Job {
	jobs := make([]dfrs.Job, n)
	t := 0.0
	for i := range jobs {
		if r.Intn(4) != 0 { // 25% chance of a simultaneous submission
			t += r.Float64() * 400
		}
		tasks := 1
		switch r.Intn(4) {
		case 1:
			tasks = 1 + r.Intn(nodes/2)
		case 2:
			tasks = nodes // full-cluster job
		}
		exec := []float64{1, 5, 30, 120, 900, 4000, 20000}[r.Intn(7)]
		jobs[i] = dfrs.Job{
			ID:       i,
			Submit:   t,
			Tasks:    tasks,
			CPUNeed:  []float64{0.25, 0.5, 1.0}[r.Intn(3)],
			MemReq:   []float64{0.1, 0.3, 0.5, 0.9}[r.Intn(4)],
			ExecTime: exec,
		}
	}
	return jobs
}

// TestRandomWorkloadStress pushes every algorithm through adversarial
// random workloads with per-event invariant checking: no panics, no
// deadlocks, every job finishes, every stretch is sane. This is the
// repository's failure-injection net for the scheduler/simulator contract.
func TestRandomWorkloadStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	algorithms := dfrs.Algorithms()
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(seed))
			nodes := []int{4, 16, 64}[r.Intn(3)]
			jobs := randomJobs(r, 25+r.Intn(25), nodes)
			tr, err := dfrs.FromJobs(fmt.Sprintf("stress-%d", seed), nodes, 8, jobs)
			if err != nil {
				t.Fatal(err)
			}
			penalty := []float64{0, 300}[r.Intn(2)]
			for _, alg := range algorithms {
				res, err := dfrs.Run(context.Background(), tr, alg,
					dfrs.WithPenalty(penalty), dfrs.WithInvariantChecking())
				if err != nil {
					t.Fatalf("%s (penalty %.0f): %v", alg, penalty, err)
				}
				for i, s := range res.JobStretches() {
					if s < 1-1e-9 {
						t.Errorf("%s: job %d stretch %v < 1", alg, i, s)
					}
				}
			}
		})
	}
}
