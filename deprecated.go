package dfrs

import "context"

// RunOptions configures one simulation for the deprecated v1 entry point
// RunWithOptions.
//
// Deprecated: use the functional options of Run (WithPenalty, WithNodeMix,
// WithInvariantChecking).
type RunOptions struct {
	// PenaltySeconds is the rescheduling penalty charged to every resume
	// and migration (the paper evaluates 0 and 300).
	PenaltySeconds float64
	// NodeMix selects a heterogeneous node-mix profile (see NodeMixes);
	// empty means the paper's homogeneous platform.
	NodeMix string
	// CheckInvariants enables per-event state validation (slow; for
	// tests).
	CheckInvariants bool
}

// RunWithOptions simulates the named algorithm over the trace with the v1
// struct options, blocking until completion. It is a thin wrapper over Run
// with a background context and remains only so v1 callers keep compiling;
// it will be kept for at least two further releases (see the deprecation
// policy in CHANGES.md).
//
// Deprecated: use Run with a context and functional options.
func RunWithOptions(t Trace, algorithm string, opt RunOptions) (Result, error) {
	opts := []RunOption{WithPenalty(opt.PenaltySeconds), WithNodeMix(opt.NodeMix)}
	if opt.CheckInvariants {
		opts = append(opts, WithInvariantChecking())
	}
	return Run(context.Background(), t, algorithm, opts...)
}
