package dfrs_test

import (
	"context"
	"math"
	"testing"

	dfrs "repro"
)

// TestAlgorithmsList checks the facade exposes all paper algorithms plus
// the extension/baseline variants.
func TestAlgorithmsList(t *testing.T) {
	have := map[string]bool{}
	for _, a := range dfrs.Algorithms() {
		have[a] = true
	}
	for _, want := range []string{
		"fcfs", "easy", "conservative", "gang",
		"greedy", "greedy-pmtn", "greedy-pmtn-migr", "greedy-pmtn-linprio",
		"dynmcb8", "dynmcb8-per", "dynmcb8-asap-per", "dynmcb8-stretch-per",
		"dynmcb8-per-fair",
	} {
		if !have[want] {
			t.Errorf("missing algorithm %q in %v", want, dfrs.Algorithms())
		}
	}
}

func TestTraceAccessors(t *testing.T) {
	tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 1, Nodes: 64, Jobs: 50, Name: "acc"})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "acc" || tr.Nodes() != 64 || len(tr.Jobs()) != 50 {
		t.Errorf("accessors: %q %d %d", tr.Name(), tr.Nodes(), len(tr.Jobs()))
	}
	if tr.OfferedLoad() <= 0 {
		t.Error("offered load should be positive")
	}
	// Jobs() must return a copy.
	jobs := tr.Jobs()
	jobs[0].ExecTime = 1e9
	if tr.Jobs()[0].ExecTime == 1e9 {
		t.Error("Jobs() leaked internal storage")
	}
}

func TestSyntheticDefaults(t *testing.T) {
	tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nodes() != 128 || len(tr.Jobs()) != 1000 {
		t.Errorf("defaults: %d nodes, %d jobs; want 128, 1000", tr.Nodes(), len(tr.Jobs()))
	}
}

func TestHPC2NLikeTraces(t *testing.T) {
	weeks, err := dfrs.HPC2NLikeTraces(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(weeks) < 1 {
		t.Fatal("no weekly traces")
	}
	for _, w := range weeks {
		if w.Nodes() != 120 {
			t.Errorf("HPC2N-like week on %d nodes, want 120", w.Nodes())
		}
	}
}

func TestResultAccessors(t *testing.T) {
	tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 4, Nodes: 32, Jobs: 30})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := tr.ScaleToLoad(0.8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dfrs.Run(context.Background(), scaled, "dynmcb8-per", dfrs.WithPenalty(300))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm() != "dynmcb8-per-600" {
		t.Errorf("Algorithm() = %q", res.Algorithm())
	}
	if res.Makespan() <= 0 {
		t.Error("Makespan() <= 0")
	}
	if res.AvgStretch() > res.MaxStretch() {
		t.Errorf("avg %v > max %v", res.AvgStretch(), res.MaxStretch())
	}
	if got := len(res.JobStretches()); got != 30 {
		t.Errorf("JobStretches() has %d entries", got)
	}
	c := res.Costs()
	if c.PreemptionGBps < 0 || c.MigrationsPerJob < 0 {
		t.Errorf("negative costs: %+v", c)
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 5, Nodes: 8, Jobs: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dfrs.Run(context.Background(), tr, "nope"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

// TestGangBeatsNothingButRuns sanity-checks the Section VI baseline through
// the facade: gang scheduling completes the workload and, as the paper's
// reasoning predicts, its memory-blocked admissions leave it behind DFRS on
// a memory-heavy contended instance.
func TestGangVsDFRSOnMemoryHeavyLoad(t *testing.T) {
	jobs := []dfrs.Job{}
	for i := 0; i < 12; i++ {
		jobs = append(jobs, dfrs.Job{
			ID: i, Submit: float64(i * 30), Tasks: 1 + i%2,
			CPUNeed: 1.0, MemReq: 0.6, ExecTime: 900,
		})
	}
	tr, err := dfrs.FromJobs("memheavy", 4, 8, jobs)
	if err != nil {
		t.Fatal(err)
	}
	gang, err := dfrs.Run(context.Background(), tr, "gang", dfrs.WithInvariantChecking())
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := dfrs.Run(context.Background(), tr, "dynmcb8", dfrs.WithInvariantChecking())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(gang.MaxStretch()) || math.IsNaN(dyn.MaxStretch()) {
		t.Fatal("NaN stretches")
	}
	// DFRS should do at least as well: same memory constraint, but
	// fractional CPU sharing instead of whole time slices.
	if dyn.MaxStretch() > gang.MaxStretch()+1e-9 {
		t.Logf("note: gang (%v) beat dynmcb8 (%v) on this instance", gang.MaxStretch(), dyn.MaxStretch())
	}
}

func TestConservativeThroughFacade(t *testing.T) {
	tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 6, Nodes: 32, Jobs: 40})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := tr.ScaleToLoad(0.7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dfrs.Run(context.Background(), scaled, "conservative", dfrs.WithPenalty(300), dfrs.WithInvariantChecking())
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxStretch() < 1 {
		t.Errorf("max stretch %v < 1", res.MaxStretch())
	}
}
