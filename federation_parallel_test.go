package dfrs

// Parallel federation lock: the parallel loop (FederationSpec.Workers > 1)
// must produce results byte-identical to the serial one — per-cluster and
// merged, materialized and streamed — under every built-in dispatcher and
// across topology shapes. The parallel executor processes the identical
// per-member event sequence between dispatch points, so any divergence is
// an engine bug, never nondeterminism to tolerate.

import (
	"bytes"
	"context"
	"reflect"
	"sync"
	"testing"
	"time"
)

// parallelTopologies are the shapes the identity lock sweeps: a single
// member (reduces to the serial 1-cluster lock), a uniform quad, and a
// mixed federation with a priced member (exercises costaware's bursting
// and per-member mean costs).
func parallelTopologies() map[string][]ClusterSpec {
	return map[string][]ClusterSpec{
		"single": {{Nodes: 64}},
		"quad": {
			{Nodes: 64}, {Nodes: 64}, {Nodes: 64}, {Nodes: 64},
		},
		"mixed-priced": {
			{Name: "onprem", Nodes: 64},
			{Name: "cloud", NodeMix: "bimodal-priced", Nodes: 64},
			{Name: "spill", NodeMix: "powerlaw", Nodes: 64},
		},
	}
}

// runFedMode runs the federation trace either materialized or streamed
// (round-tripped through the trace format), with the given worker count.
func runFedMode(t *testing.T, tr Trace, spec FederationSpec, streamed bool, workers int) FederatedResult {
	t.Helper()
	spec.Workers = workers
	var (
		res FederatedResult
		err error
	)
	if streamed {
		var buf bytes.Buffer
		if encErr := tr.Encode(&buf); encErr != nil {
			t.Fatalf("Encode: %v", encErr)
		}
		res, err = RunFederatedStream(context.Background(), &buf, spec, WithPenalty(300))
	} else {
		res, err = RunFederated(context.Background(), tr, spec, WithPenalty(300))
	}
	if err != nil {
		t.Fatalf("federated run (streamed=%v workers=%d): %v", streamed, workers, err)
	}
	return res
}

// requireFedEqual compares two federated results field for field: every
// member's full sim.Result, routing counts, and the merged view.
func requireFedEqual(t *testing.T, label string, serial, parallel FederatedResult) {
	t.Helper()
	if len(serial.r.Clusters) != len(parallel.r.Clusters) {
		t.Fatalf("%s: cluster counts %d vs %d", label, len(serial.r.Clusters), len(parallel.r.Clusters))
	}
	for i := range serial.r.Clusters {
		s, p := serial.r.Clusters[i], parallel.r.Clusters[i]
		if s.Dispatched != p.Dispatched {
			t.Errorf("%s: cluster %d dispatched %d vs %d", label, i, s.Dispatched, p.Dispatched)
		}
		if !reflect.DeepEqual(s.Result, p.Result) {
			t.Errorf("%s: cluster %d result diverges:\n  serial:   %s\n  parallel: %s",
				label, i, summaryOf(s.Result), summaryOf(p.Result))
		}
	}
	if !reflect.DeepEqual(serial.r.Merged, parallel.r.Merged) {
		t.Errorf("%s: merged result diverges:\n  serial:   %s\n  parallel: %s",
			label, summaryOf(serial.r.Merged), summaryOf(parallel.r.Merged))
	}
}

func TestFederationParallelMatchesSerial(t *testing.T) {
	tr := lockTrace(t, 13, 150, 0)
	for topoName, clusters := range parallelTopologies() {
		for _, dispatcher := range Dispatchers() {
			for _, streamed := range []bool{false, true} {
				mode := "materialized"
				if streamed {
					mode = "streamed"
				}
				t.Run(topoName+"/"+dispatcher+"/"+mode, func(t *testing.T) {
					spec := FederationSpec{
						Clusters:   clusters,
						Dispatcher: dispatcher,
						Algorithm:  "greedy-pmtn",
					}
					serial := runFedMode(t, tr, spec, streamed, 1)
					parallel := runFedMode(t, tr, spec, streamed, 4)
					requireFedEqual(t, t.Name(), serial, parallel)
				})
			}
		}
	}
}

// TestFederationParallelAcrossAlgorithms re-pins the lock under scheduler
// families with very different event mixes (periodic timers, preemption,
// packing) on the mixed topology.
func TestFederationParallelAcrossAlgorithms(t *testing.T) {
	tr := lockTrace(t, 17, 120, 0)
	for _, alg := range []string{"fcfs", "gang", "dynmcb8-asap-per"} {
		t.Run(alg, func(t *testing.T) {
			spec := FederationSpec{
				Clusters:   parallelTopologies()["mixed-priced"],
				Dispatcher: "costaware",
				Algorithm:  alg,
			}
			serial := runFedMode(t, tr, spec, false, 1)
			parallel := runFedMode(t, tr, spec, false, 3)
			requireFedEqual(t, alg, serial, parallel)
		})
	}
}

// countingObserver counts callbacks; with the shared federation callback
// lock, concurrent member advances must never race on it (this test is the
// -race probe for the locked observer path).
type countingObserver struct {
	mu     sync.Mutex
	events int
}

func (o *countingObserver) bump() {
	o.mu.Lock()
	o.events++
	o.mu.Unlock()
}
func (o *countingObserver) JobSubmitted(float64, int)          { o.bump() }
func (o *countingObserver) JobStarted(float64, int, []int)     { o.bump() }
func (o *countingObserver) JobPreempted(float64, int)          { o.bump() }
func (o *countingObserver) JobMigrated(float64, int, []int)    { o.bump() }
func (o *countingObserver) JobCompleted(float64, int, float64) { o.bump() }
func (o *countingObserver) SchedulerInvoked(float64, string, int, time.Duration) {
	o.bump()
}

// TestFederationParallelManyMemberStress drives a wide federation (twelve
// members, eight workers) over a short bursty trace with observer and job
// sink callbacks wired — the barrier and the locked callback path under
// load, meaningful mainly under -race — and still requires byte-identity
// with the serial run.
func TestFederationParallelManyMemberStress(t *testing.T) {
	tr, err := SyntheticTrace(SyntheticOptions{Seed: 23, Nodes: 32, Jobs: 400})
	if err != nil {
		t.Fatalf("SyntheticTrace: %v", err)
	}
	tr, err = tr.ScaleToLoad(0.9)
	if err != nil {
		t.Fatalf("ScaleToLoad: %v", err)
	}
	clusters := make([]ClusterSpec, 12)
	for i := range clusters {
		clusters[i] = ClusterSpec{Nodes: 32}
	}
	for _, dispatcher := range []string{"roundrobin", "queuedepth"} {
		t.Run(dispatcher, func(t *testing.T) {
			spec := FederationSpec{Clusters: clusters, Dispatcher: dispatcher, Algorithm: "greedy-pmtn"}
			serial := runFedMode(t, tr, spec, false, 1)

			var obs countingObserver
			var sinkMu sync.Mutex
			sunk := 0
			spec.Workers = 8
			parallel, err := RunFederated(context.Background(), tr, spec,
				WithPenalty(300),
				WithObserver(&obs),
				WithJobSink(func(JobResult) { sinkMu.Lock(); sunk++; sinkMu.Unlock() }))
			if err != nil {
				t.Fatalf("parallel RunFederated: %v", err)
			}
			if obs.events == 0 {
				t.Error("observer saw no events")
			}
			if want := len(tr.t.Jobs); sunk != want {
				t.Errorf("job sink saw %d jobs, want %d", sunk, want)
			}
			// The sink run retains no per-job results, so compare the
			// aggregate quantities instead of the full structs.
			if serial.Events() != parallel.Events() {
				t.Errorf("events %d vs %d", serial.Events(), parallel.Events())
			}
			if serial.Makespan() != parallel.Makespan() {
				t.Errorf("makespan %g vs %g", serial.Makespan(), parallel.Makespan())
			}
			if serial.Cost() != parallel.Cost() {
				t.Errorf("cost %g vs %g", serial.Cost(), parallel.Cost())
			}
			if !reflect.DeepEqual(serial.Dispatched(), parallel.Dispatched()) {
				t.Errorf("dispatched %v vs %v", serial.Dispatched(), parallel.Dispatched())
			}

			// And once more without callbacks for the full byte-identity
			// check at the stress width.
			bare := runFedMode(t, tr, spec, false, 8)
			requireFedEqual(t, dispatcher+"/bare", serial, bare)
		})
	}
}

// TestFederationWorkersAuto pins the defaulting: multi-cluster federations
// parallelize automatically (Workers 0), and explicit values — including
// counts far above the member count — change nothing about the outcome.
func TestFederationWorkersAuto(t *testing.T) {
	tr := lockTrace(t, 29, 100, 0)
	spec := FederationSpec{
		Clusters:  []ClusterSpec{{Nodes: 64}, {Nodes: 64}},
		Algorithm: "greedy",
	}
	serial := runFedMode(t, tr, spec, false, 1)
	for _, workers := range []int{0, 2, 64} {
		got := runFedMode(t, tr, spec, false, workers)
		requireFedEqual(t, "workers=0/2/64", serial, got)
	}
	if _, err := RunFederated(context.Background(), tr, FederationSpec{
		Clusters: spec.Clusters, Algorithm: "greedy", Workers: -1,
	}); err == nil {
		t.Error("negative Workers accepted")
	}
}
