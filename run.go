package dfrs

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/metrics/online"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// defaultMaxSimTime is the livelock guard for facade runs: 50 years of
// simulated time.
const defaultMaxSimTime = 50 * 365 * 24 * 3600

// Observer receives scheduling transitions live as a simulation executes:
// JobSubmitted, JobStarted, JobPreempted, JobMigrated, JobCompleted, and
// SchedulerInvoked with wall-clock timing. Attach one with WithObserver;
// see Stream for a channel-based consumer. Event sequences are
// deterministic for a fixed (trace, algorithm, cluster, penalty); only the
// Elapsed timing of scheduler invocations varies between runs.
type Observer = sim.Observer

// Event is one observer callback as a value, the element type of Stream's
// channel.
type Event = sim.Event

// EventKind labels an Event.
type EventKind = sim.EventKind

// Event kinds delivered by Stream and EventRecorder.
const (
	EvSubmitted        = sim.EvSubmitted
	EvStarted          = sim.EvStarted
	EvPreempted        = sim.EvPreempted
	EvMigrated         = sim.EvMigrated
	EvCompleted        = sim.EvCompleted
	EvSchedulerInvoked = sim.EvSchedulerInvoked
)

// EventRecorder is an Observer that collects every event in memory, useful
// for tests and post-run analysis.
type EventRecorder = sim.Recorder

// UnschedulableError reports a job whose per-task requirement for the
// binding resource exceeds every node of the materialised cluster; Run and
// Campaign reject such traces eagerly instead of letting them starve.
type UnschedulableError = sim.UnschedulableError

// InsufficientCapacityError reports a job whose simultaneous tasks exceed
// the empty cluster's aggregate capacity in its rigid resource dimensions
// (e.g. a 16-task GPU job on a cluster with four GPU nodes); Run and
// Campaign reject such traces eagerly instead of deadlocking mid-run.
type InsufficientCapacityError = sim.InsufficientCapacityError

// JobResult records the outcome of one job of a finished run.
type JobResult = sim.JobResult

// TimelineEvent is one recorded per-job scheduling transition (see
// WithTimeline).
type TimelineEvent = sim.TimelineEvent

// Segment is one homogeneous interval of a job's recorded timeline.
type Segment = sim.Segment

// RunOption configures one simulation run.
type RunOption func(*runConfig)

type runConfig struct {
	penalty     float64
	nodeMix     string
	resources   []string
	objective   string
	check       bool
	timeline    bool
	maxSimTime  float64
	observer    sim.Observer
	jobSink     func(JobResult)
	targetLoad  float64
	currentLoad float64
}

// WithPenalty sets the rescheduling penalty in seconds charged to every
// resume and migration (the paper evaluates 0 and 300; the default is 0).
func WithPenalty(seconds float64) RunOption {
	return func(c *runConfig) { c.penalty = seconds }
}

// WithNodeMix selects a heterogeneous node-mix profile (see NodeMixes)
// laid out over the trace's node count. The default is the paper's
// homogeneous platform.
func WithNodeMix(profile string) RunOption {
	return func(c *runConfig) { c.nodeMix = profile }
}

// WithResources names the cluster's resource dimensions, e.g. "cpu",
// "mem", "gpu". The first two must be "cpu" and "mem" (the paper's pair);
// each further name adds a rigid dimension with capacity 1.0 per node on
// top of the node-mix profile, so jobs may carry demands in those
// dimensions (Job.Extra). The names must agree with the profile's own
// dimensions where they overlap (e.g. "cpu", "mem", "gpu" with
// "gpu-bimodal", whose GPU layout is then kept); a conflicting or shorter
// list fails the run, and a trace demanding dimensions beyond the list is
// rejected rather than granted capacity the declared platform lacks. The
// default is the two-dimensional platform — or the profile's own
// dimensions for three-dimensional mixes — auto-extended when the trace
// demands more.
func WithResources(names ...string) RunOption {
	return func(c *runConfig) { c.resources = append([]string(nil), names...) }
}

// WithObjective selects the placement objective by which every scheduler
// family chooses among feasible nodes: one of Objectives ("cost",
// "bestfit", "worstfit", ...) or a name registered with RegisterObjective.
// The empty string (the default) keeps each family's published rule —
// greedy's least-relative-load placement, the batch baselines'
// first-eligible-node choice, the packing kernel's index bin order — so
// the paper's behaviour is the default objective. The feasibility
// constraints (memory, GPU, CPU capacity) are never relaxed; an objective
// only reorders the choice among feasible nodes.
func WithObjective(name string) RunOption {
	return func(c *runConfig) { c.objective = name }
}

// WithInvariantChecking enables per-event state validation (slow; for
// tests).
func WithInvariantChecking() RunOption {
	return func(c *runConfig) { c.check = true }
}

// WithTimeline records every per-job scheduling transition so the run can
// be rendered as a Gantt chart (Result.Timeline, Result.JobSegments).
func WithTimeline() RunOption {
	return func(c *runConfig) { c.timeline = true }
}

// WithMaxSimTime overrides the livelock guard: a run whose simulated clock
// passes this many seconds fails. The default is 50 simulated years; 0
// disables the guard.
func WithMaxSimTime(seconds float64) RunOption {
	return func(c *runConfig) { c.maxSimTime = seconds }
}

// WithObserver attaches an observer that receives every scheduling
// transition live. Multiple WithObserver options fan out in order.
// Observation never changes results: an observed run produces the
// identical Result as an unobserved one.
func WithObserver(o Observer) RunOption {
	return func(c *runConfig) {
		switch {
		case o == nil:
		case c.observer == nil:
			c.observer = o
		default:
			if f, ok := c.observer.(sim.FanoutObserver); ok {
				c.observer = append(f, o)
			} else {
				c.observer = sim.FanoutObserver{c.observer, o}
			}
		}
	}
}

// WithJobSink streams each completed job's outcome to fn the moment it
// completes, instead of accumulating it in the result (Result.Jobs stays
// empty; aggregate metrics are unaffected, but the per-job summaries —
// MaxStretch, AvgStretch, JobStretches — see no jobs and must be computed
// by the sink). Required for bounded-memory million-job runs, where the
// per-job result array would otherwise dominate the heap.
func WithJobSink(fn func(JobResult)) RunOption {
	return func(c *runConfig) { c.jobSink = fn }
}

// OnlineAggregator folds scheduling events and per-job outcomes into
// rolling aggregates — stretch quantile sketches, event counters, cost
// burn — with a Snapshot safe for concurrent readers. It is the
// aggregation layer behind dfrs-serve's live metrics and dfrs-sim
// -summary-only; see repro/internal/metrics/online for the sketch
// guarantees.
type OnlineAggregator = online.Aggregator

// OnlineSnapshot is a point-in-time view of an OnlineAggregator.
type OnlineSnapshot = online.Snapshot

// NewOnlineAggregator returns an empty online-metrics aggregator, ready to
// attach with WithOnlineMetrics or to fold campaign records directly
// (OnlineAggregator.ObserveRecord).
func NewOnlineAggregator() *OnlineAggregator { return online.New() }

// WithOnlineMetrics feeds the run's scheduling events and per-job outcomes
// into a (snapshot-while-running) streaming aggregator. The per-job fold
// rides the job-sink path, so — exactly as with WithJobSink — Result.Jobs
// stays empty and the post-hoc per-job summaries must be read from the
// aggregator instead; memory stays bounded for million-job runs. Composes
// with an explicit WithJobSink: both receive every outcome. A nil
// aggregator is a no-op.
func WithOnlineMetrics(a *OnlineAggregator) RunOption {
	return func(c *runConfig) {
		if a == nil {
			return
		}
		WithObserver(a.Observer())(c)
		if prev := c.jobSink; prev != nil {
			c.jobSink = func(jr JobResult) { prev(jr); a.ObserveJob(jr) }
		} else {
			c.jobSink = a.ObserveJob
		}
	}
}

// WithTargetLoad rescales the workload's inter-arrival times so its
// offered load hits target, the paper's construction of the scaled trace
// sets. Materialized runs rescale against the trace's own measured load
// (Trace.OfferedLoad). Streaming runs cannot scan the stream first, so the
// current load comes from WithCurrentLoad when given, else from the
// stream's "# offered_load:" preamble metadata; a stream with neither
// fails (measure a seekable input with MeasureStreamLoad, then reopen it).
// Scaled streaming and materialized runs of the same trace are
// bit-identical.
func WithTargetLoad(target float64) RunOption {
	return func(c *runConfig) { c.targetLoad = target }
}

// WithCurrentLoad declares the workload's present offered load for
// WithTargetLoad's streaming path, overriding any "# offered_load:"
// metadata (typically the value MeasureStreamLoad returned on a first
// pass). Materialized runs measure the trace directly and ignore it.
func WithCurrentLoad(current float64) RunOption {
	return func(c *runConfig) { c.currentLoad = current }
}

// MeasureStreamLoad drains a trace stream in the dfrs trace format and
// returns its offered load — total work over the cluster capacity across
// the submission span, the definition behind Trace.OfferedLoad — plus the
// number of jobs seen, in O(1) memory. The reader is consumed; reopen a
// seekable input to replay it through RunStream with
// WithTargetLoad+WithCurrentLoad (the two-pass scheme of dfrs-sim -stream
// -load).
func MeasureStreamLoad(r io.Reader) (load float64, jobs int, err error) {
	tr, err := workload.StreamTrace(r)
	if err != nil {
		return 0, 0, err
	}
	return workload.MeasureSourceLoad(tr, tr.Meta().Nodes)
}

// Result wraps a finished simulation.
type Result struct {
	r *sim.Result
}

// Run simulates the named algorithm over the trace. The context is checked
// between simulation events, so cancellation or a deadline stops the run at
// event granularity with an error wrapping ctx.Err(); context.Background()
// runs to completion. Options default to the paper's homogeneous platform
// with no rescheduling penalty.
func Run(ctx context.Context, t Trace, algorithm string, opts ...RunOption) (Result, error) {
	return runTrace(ctx, t.t, t.t.Dims(), nil, algorithm, opts)
}

// RunStream simulates the named algorithm over a trace read lazily from r
// (the dfrs trace format, as written by Trace.Encode or dfrs-gen): jobs
// enter the simulator as virtual time reaches their submission instant and
// each job's runtime record is recycled at completion, so memory is
// bounded by jobs-in-system rather than trace length. The Result equals
// Run's on the same trace. Pair it with WithJobSink to also stream the
// per-job outcomes instead of accumulating them.
func RunStream(ctx context.Context, r io.Reader, algorithm string, opts ...RunOption) (Result, error) {
	tr, err := workload.StreamTrace(r)
	if err != nil {
		return Result{}, err
	}
	return runTrace(ctx, tr.Meta(), tr.Dims(), tr, algorithm, opts)
}

// runTrace is the shared engine of Run and RunStream: it materializes the
// platform from the options and executes the simulation. In streaming mode
// (source non-nil) t carries metadata only and dims comes from the trace
// header rather than a job scan.
func runTrace(ctx context.Context, t *workload.Trace, dims int, source workload.JobSource, algorithm string, opts []RunOption) (Result, error) {
	cfg := runConfig{maxSimTime: defaultMaxSimTime}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.targetLoad != 0 {
		var err error
		if t, source, err = rescaleToTarget(t, source, cfg.targetLoad, cfg.currentLoad); err != nil {
			return Result{}, err
		}
	}
	s, err := sched.New(algorithm)
	if err != nil {
		return Result{}, err
	}
	obj, err := placement.ByName(cfg.objective)
	if err != nil {
		return Result{}, err
	}
	cl, err := cluster.Profile(cfg.nodeMix, t.Nodes)
	if err != nil {
		return Result{}, err
	}
	if len(cfg.resources) > 0 {
		if len(cfg.resources) < 2 || cfg.resources[0] != "cpu" || cfg.resources[1] != "mem" {
			return Result{}, fmt.Errorf("dfrs: resources must start with \"cpu\", \"mem\", got %v", cfg.resources)
		}
		// The names must agree with the node-mix profile's own dimensions
		// where they overlap — WithDims only adds dimensions, so silently
		// accepting e.g. "net" for a profile's "gpu" axis (with its own
		// capacity layout) would break the documented "capacity 1.0 per
		// added resource" contract.
		if cl.D() > len(cfg.resources) {
			return Result{}, fmt.Errorf("dfrs: node mix %q declares %d resource dimensions but WithResources names %d",
				cfg.nodeMix, cl.D(), len(cfg.resources))
		}
		for k := 0; k < cl.D(); k++ {
			if cl.DimName(k) != cfg.resources[k] {
				return Result{}, fmt.Errorf("dfrs: node mix %q names dimension %d %q, WithResources names it %q",
					cfg.nodeMix, k, cl.DimName(k), cfg.resources[k])
			}
		}
		cl = cl.WithDims(len(cfg.resources), 1, cfg.resources)
	}
	// A trace demanding more dimensions than the cluster declares (GPU
	// jobs on a two-resource mix) gets a unit capacity in the missing
	// dimensions — the same rule the campaign engine applies. An explicit
	// WithResources list is a declaration of the platform and disables the
	// extension: demands beyond it are rejected by the simulator's eager
	// checks rather than granted phantom capacity.
	if len(cfg.resources) == 0 {
		cl = cl.ExtendUnit(dims)
	}
	simulator, err := sim.New(sim.Config{
		Trace:           t,
		Source:          source,
		JobSink:         cfg.jobSink,
		Cluster:         cl,
		Penalty:         cfg.penalty,
		CheckInvariants: cfg.check,
		RecordTimeline:  cfg.timeline,
		MaxSimTime:      cfg.maxSimTime,
		Observer:        cfg.observer,
		Objective:       obj,
	}, s)
	if err != nil {
		return Result{}, err
	}
	res, err := simulator.RunContext(ctx)
	if err != nil {
		return Result{}, err
	}
	if err := metrics.Validate(res); err != nil {
		return Result{}, err
	}
	return Result{r: res}, nil
}

// rescaleToTarget applies WithTargetLoad: materialized traces rescale
// against their own measured load; streams wrap the source in a
// ScaledSource whose factor comes from WithCurrentLoad or the stream's
// declared offered load. Both paths rename the trace exactly as
// Trace.ScaleToLoad does, so result labels agree.
func rescaleToTarget(t *workload.Trace, source workload.JobSource, target, current float64) (*workload.Trace, workload.JobSource, error) {
	if !(target > 0) {
		return nil, nil, fmt.Errorf("dfrs: target load %g must be positive", target)
	}
	if source == nil {
		scaled, err := t.ScaleToLoad(target)
		if err != nil {
			return nil, nil, err
		}
		return scaled, nil, nil
	}
	cur := current
	if cur == 0 {
		if tr, ok := source.(*workload.TraceReader); ok {
			if v, declared := tr.DeclaredLoad(); declared {
				cur = v
			}
		}
	}
	if !(cur > 0) {
		return nil, nil, fmt.Errorf("dfrs: cannot rescale stream to load %g: no \"# offered_load:\" metadata and no WithCurrentLoad (measure a seekable input with MeasureStreamLoad, then reopen it)", target)
	}
	scaledSrc, err := workload.NewScaledSource(source, cur/target)
	if err != nil {
		return nil, nil, err
	}
	meta := *t
	meta.Name = fmt.Sprintf("%s-load%.2f", t.Name, target)
	return &meta, scaledSrc, nil
}

// Stream runs the simulation in a background goroutine and returns its
// scheduling transitions as a typed event channel, enabling live
// dashboards, online metrics and early termination at event granularity.
// The channel is unbuffered — the simulation advances in lockstep with the
// consumer — and is closed when the run ends. The returned wait function
// blocks until then and returns the final Result (it may be called before
// or after draining the channel; an abandoned channel is drained by wait
// itself, so `for range events` loops may break early as long as wait is
// eventually called). Cancelling the context stops the run between two
// events.
func Stream(ctx context.Context, t Trace, algorithm string, opts ...RunOption) (<-chan Event, func() (Result, error)) {
	ch := make(chan Event)
	bridge := &chanObserver{ch: ch, abandoned: make(chan struct{})}
	done := make(chan struct{})
	var (
		res Result
		err error
	)
	go func() {
		defer close(done)
		defer close(ch)
		res, err = Run(ctx, t, algorithm, append(opts, WithObserver(bridge))...)
	}()
	wait := func() (Result, error) {
		bridge.abandon() // unblock the producer if the consumer stopped reading
		<-done
		return res, err
	}
	return ch, wait
}

// chanObserver bridges observer callbacks onto an event channel. After
// abandon, events are discarded so the simulation can finish even when the
// consumer stopped reading.
type chanObserver struct {
	ch        chan Event
	abandoned chan struct{}
	once      sync.Once
}

func (c *chanObserver) abandon() {
	c.once.Do(func() { close(c.abandoned) })
}

func (c *chanObserver) send(e Event) {
	select {
	case c.ch <- e:
	case <-c.abandoned:
	}
}

// JobSubmitted implements Observer.
func (c *chanObserver) JobSubmitted(now float64, jid int) {
	c.send(Event{Kind: EvSubmitted, Time: now, JID: jid})
}

// JobStarted implements Observer.
func (c *chanObserver) JobStarted(now float64, jid int, nodes []int) {
	c.send(Event{Kind: EvStarted, Time: now, JID: jid, Nodes: nodes})
}

// JobPreempted implements Observer.
func (c *chanObserver) JobPreempted(now float64, jid int) {
	c.send(Event{Kind: EvPreempted, Time: now, JID: jid})
}

// JobMigrated implements Observer.
func (c *chanObserver) JobMigrated(now float64, jid int, nodes []int) {
	c.send(Event{Kind: EvMigrated, Time: now, JID: jid, Nodes: nodes})
}

// JobCompleted implements Observer.
func (c *chanObserver) JobCompleted(now float64, jid int, turnaround float64) {
	c.send(Event{Kind: EvCompleted, Time: now, JID: jid, Turnaround: turnaround})
}

// SchedulerInvoked implements Observer.
func (c *chanObserver) SchedulerInvoked(now float64, hook string, jobsInSystem int, elapsed time.Duration) {
	c.send(Event{Kind: EvSchedulerInvoked, Time: now, Hook: hook, JobsInSystem: jobsInSystem, Elapsed: elapsed})
}

// Algorithm returns the algorithm that produced this result.
func (r Result) Algorithm() string { return r.r.Algorithm }

// Makespan returns the completion time of the last job, in seconds.
func (r Result) Makespan() float64 { return r.r.Makespan }

// MaxStretch returns the maximum bounded stretch over all jobs, the
// paper's headline metric.
func (r Result) MaxStretch() float64 { return metrics.Summarize(r.r).MaxStretch }

// Utilization returns the fraction of cluster CPU capacity that delivered
// useful work over the makespan (Section II-B2's platform-utilization
// view).
func (r Result) Utilization() float64 { return r.r.Utilization() }

// AvgStretch returns the average bounded stretch over all jobs.
func (r Result) AvgStretch() float64 { return metrics.Summarize(r.r).AvgStretch }

// Events returns the number of simulation events processed.
func (r Result) Events() int { return r.r.Events }

// Preemptions returns the number of preemption operations charged to the
// run (Table II occurrences).
func (r Result) Preemptions() int { return r.r.PreemptionOps }

// Migrations returns the number of migration operations charged to the
// run.
func (r Result) Migrations() int { return r.r.MigrationOps }

// Jobs returns a copy of the per-job outcomes, ordered by job ID.
func (r Result) Jobs() []JobResult { return append([]JobResult(nil), r.r.Jobs...) }

// Timeline returns the recorded per-job scheduling transitions; empty
// unless the run used WithTimeline.
func (r Result) Timeline() []TimelineEvent {
	return append([]TimelineEvent(nil), r.r.Timeline...)
}

// JobSegments reconstructs job jid's life as contiguous
// waiting/running/frozen/paused segments from the recorded timeline; nil
// unless the run used WithTimeline.
func (r Result) JobSegments(jid int) []Segment { return r.r.JobSegments(jid) }

// JobStretches returns the bounded stretch of every job, indexed as in
// Trace.Jobs ordering by job ID.
func (r Result) JobStretches() []float64 {
	out := make([]float64, len(r.r.Jobs))
	for i, jr := range r.r.Jobs {
		out[i] = metrics.BoundedStretch(jr.Turnaround, jr.Job.ExecTime)
	}
	return out
}

// Cost returns the run's cost-weighted occupancy in price units: the
// hosting node's cost rate (see NodeSpec.Cost and the priced node mixes)
// times the occupied seconds, accrued once per task placement and summed
// over the run. Always 0 on unpriced platforms, including the paper's.
func (r Result) Cost() float64 { return r.r.NodeCostSeconds }

// Costs summarizes preemption/migration bandwidth and operation rates as in
// Table II, plus the cost accounting of priced platforms.
func (r Result) Costs() CostSummary {
	c := metrics.Costs(r.r)
	return CostSummary{
		PreemptionGBps:     c.PmtnGBps,
		MigrationGBps:      c.MigGBps,
		PreemptionsPerHour: c.PmtnPerHour,
		MigrationsPerHour:  c.MigPerHour,
		PreemptionsPerJob:  c.PmtnPerJob,
		MigrationsPerJob:   c.MigPerJob,
		NodeCost:           c.NodeCost,
		NodeCostPerJob:     c.NodeCostPerJob,
	}
}

// CostSummary mirrors one row of the paper's Table II for one run, plus
// the monetary cost accounting of priced platforms (NodeCost fields; zero
// on unpriced clusters).
type CostSummary struct {
	PreemptionGBps     float64
	MigrationGBps      float64
	PreemptionsPerHour float64
	MigrationsPerHour  float64
	PreemptionsPerJob  float64
	MigrationsPerJob   float64
	NodeCost           float64
	NodeCostPerJob     float64
}
