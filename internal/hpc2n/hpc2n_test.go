package hpc2n

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/swf"
)

func rec(job, submit, runtime, procs, memKB int64) swf.Record {
	return swf.Record{
		JobNumber: job, SubmitTime: submit, RunTime: runtime,
		AllocatedProcs: procs, RequestedProcs: procs,
		UsedMemoryKB: memKB, RequestedMemKB: memKB,
		WaitTime: -1, AvgCPUTimeUsed: -1, RequestedTime: -1, Status: 1,
		UserID: 1, GroupID: 1, ExecutableNum: -1, QueueNum: 0,
		PartitionNum: 0, PrecedingJob: -1, ThinkTime: -1,
	}
}

func TestPreprocessEvenLowMemory(t *testing.T) {
	// 4 processors, 10% per-processor memory: pairs into 2 multi-threaded
	// tasks with doubled memory and 100% CPU need.
	log := &swf.Log{Records: []swf.Record{rec(1, 0, 600, 4, 209715)}}
	tr, st, err := Preprocess(log, "t")
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != 1 {
		t.Fatalf("kept %d", st.Kept)
	}
	j := tr.Jobs[0]
	if j.Tasks != 2 || j.CPUNeed != 1.0 || math.Abs(j.MemReq-0.2) > 1e-3 {
		t.Errorf("job: %+v", j)
	}
}

func TestPreprocessOddProcs(t *testing.T) {
	log := &swf.Log{Records: []swf.Record{rec(1, 0, 600, 5, 209715)}}
	tr, _, err := Preprocess(log, "t")
	if err != nil {
		t.Fatal(err)
	}
	j := tr.Jobs[0]
	if j.Tasks != 5 || j.CPUNeed != 0.5 || math.Abs(j.MemReq-0.1) > 1e-3 {
		t.Errorf("odd-processor job: %+v", j)
	}
}

func TestPreprocessHighMemoryEven(t *testing.T) {
	// Even processors but 60% memory per processor: stays one task per
	// processor at 50% CPU.
	kb := int64(0.6 * nodeMemKBf)
	log := &swf.Log{Records: []swf.Record{rec(1, 0, 600, 4, kb)}}
	tr, _, err := Preprocess(log, "t")
	if err != nil {
		t.Fatal(err)
	}
	j := tr.Jobs[0]
	if j.Tasks != 4 || j.CPUNeed != 0.5 || math.Abs(j.MemReq-0.6) > 1e-3 {
		t.Errorf("high-memory job: %+v", j)
	}
}

func TestPreprocessMemoryRules(t *testing.T) {
	// Missing memory -> 10% floor; tiny memory -> floored at 10%; the
	// larger of used and requested wins.
	recs := []swf.Record{
		rec(1, 0, 60, 1, -1),   // missing
		rec(2, 1, 60, 1, 1024), // ~0.05% -> floor
	}
	withReq := rec(3, 2, 60, 1, 102400) // used 5%...
	withReq.RequestedMemKB = int64(0.3 * nodeMemKBf)
	recs = append(recs, withReq)
	tr, st, err := Preprocess(&swf.Log{Records: recs}, "t")
	if err != nil {
		t.Fatal(err)
	}
	if st.MissingMemory != 1 {
		t.Errorf("missing memory count = %d", st.MissingMemory)
	}
	if math.Abs(tr.Jobs[0].MemReq-0.1) > 1e-3 || math.Abs(tr.Jobs[1].MemReq-0.1) > 1e-3 {
		t.Errorf("floors not applied: %v, %v", tr.Jobs[0].MemReq, tr.Jobs[1].MemReq)
	}
	if math.Abs(tr.Jobs[2].MemReq-0.3) > 1e-3 {
		t.Errorf("requested memory not used: %v", tr.Jobs[2].MemReq)
	}
}

func TestPreprocessDrops(t *testing.T) {
	recs := []swf.Record{
		rec(1, 0, 0, 4, -1),    // zero runtime
		rec(2, 1, -1, 4, -1),   // missing runtime
		rec(3, 2, 60, 0, -1),   // zero procs
		rec(4, 3, 60, 241, -1), // 241 odd procs -> 241 tasks > 120 nodes
		rec(5, 4, 60, 2, -1),   // fine
	}
	tr, st, err := Preprocess(&swf.Log{Records: recs}, "t")
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != 1 || len(tr.Jobs) != 1 {
		t.Errorf("kept %d jobs (stats %+v)", len(tr.Jobs), st)
	}
	if st.DroppedRuntime != 2 || st.DroppedSize != 2 {
		t.Errorf("drop stats: %+v", st)
	}
}

func TestPreprocessSerialJob(t *testing.T) {
	// 1 processor (odd): 1 task at 50% CPU — a serial job on a dual-core
	// node uses one core.
	log := &swf.Log{Records: []swf.Record{rec(1, 0, 60, 1, -1)}}
	tr, _, err := Preprocess(log, "t")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Jobs[0].Tasks != 1 || tr.Jobs[0].CPUNeed != 0.5 {
		t.Errorf("serial job: %+v", tr.Jobs[0])
	}
}

func TestSynthesizeShape(t *testing.T) {
	p := DefaultSynthParams()
	p.Weeks = 2
	log, err := Synthesize(rng.New(1), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Records) != p.Weeks*p.JobsPerWeek {
		t.Fatalf("%d records", len(log.Records))
	}
	serial, missing := 0, 0
	prev := int64(-1)
	for _, r := range log.Records {
		if r.SubmitTime < prev {
			t.Fatal("arrivals not monotone")
		}
		prev = r.SubmitTime
		if r.AllocatedProcs == 1 {
			serial++
		}
		if r.UsedMemoryKB <= 0 {
			missing++
		}
		if r.RunTime < 1 {
			t.Fatalf("runtime %d", r.RunTime)
		}
	}
	serialFrac := float64(serial) / float64(len(log.Records))
	if serialFrac < 0.55 || serialFrac > 0.7 {
		t.Errorf("serial fraction = %v, want ~0.62", serialFrac)
	}
	missingFrac := float64(missing) / float64(len(log.Records))
	if missingFrac < 0.001 || missingFrac > 0.03 {
		t.Errorf("missing-memory fraction = %v, want ~0.01", missingFrac)
	}
}

func TestSynthesizeDeterminism(t *testing.T) {
	p := DefaultSynthParams()
	p.Weeks = 1
	a, err := Synthesize(rng.New(3), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(rng.New(3), p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("records diverge at %d", i)
		}
	}
}

func TestSynthesizeRejectsBadParams(t *testing.T) {
	if _, err := Synthesize(rng.New(1), SynthParams{}); err == nil {
		t.Error("zero params accepted")
	}
}

func TestWeeklyTraces(t *testing.T) {
	p := DefaultSynthParams()
	p.Weeks = 3
	weeks, st, err := WeeklyTraces(rng.New(2), p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept == 0 {
		t.Fatal("nothing kept")
	}
	if len(weeks) < 2 || len(weeks) > 5 {
		t.Errorf("%d weekly segments from a 3-week log", len(weeks))
	}
	for _, w := range weeks {
		if err := w.Validate(); err != nil {
			t.Errorf("week %s invalid: %v", w.Name, err)
		}
		if w.Nodes != Nodes || w.NodeMemGB != NodeMemGB {
			t.Errorf("week %s platform: %d nodes %v GB", w.Name, w.Nodes, w.NodeMemGB)
		}
		// Each 1-week segment's submissions fit within the week.
		for _, j := range w.Jobs {
			if j.Submit < 0 || j.Submit >= WeekSeconds {
				t.Errorf("week %s job submitted at %v", w.Name, j.Submit)
			}
		}
	}
}

// TestShortSerialJobsDominate checks the property the paper attributes to
// HPC2N ("a large number of short-duration serial jobs"), which drives the
// Table I real-world column.
func TestShortSerialJobsDominate(t *testing.T) {
	p := DefaultSynthParams()
	p.Weeks = 2
	log, err := Synthesize(rng.New(4), p)
	if err != nil {
		t.Fatal(err)
	}
	shortSerial := 0
	for _, r := range log.Records {
		if r.AllocatedProcs == 1 && r.RunTime < 600 {
			shortSerial++
		}
	}
	if frac := float64(shortSerial) / float64(len(log.Records)); frac < 0.15 {
		t.Errorf("short serial fraction = %v; the real-world leg needs plenty", frac)
	}
}
