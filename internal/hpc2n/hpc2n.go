// Package hpc2n provides the real-world workload leg of the paper's
// evaluation. The original study uses the HPC2N log from the Parallel
// Workloads Archive: 182 weeks, 202,876 jobs, a 120-node dual-core Linux
// cluster with 2 GB of memory per node. That log is not redistributable
// with this repository, so the package contains both
//
//   - Preprocess, which applies the paper's Section IV-C rules to any SWF
//     log (so a genuine HPC2N file can be dropped in), and
//   - Synthesize, which generates an SWF log with the characteristics the
//     paper's results depend on: a large population of short serial jobs,
//     power-of-two parallel jobs with heavy-tailed runtimes, per-processor
//     memory requests with a 10% floor, and ~1% of jobs missing memory
//     information.
//
// Preprocessing rules (quoted from the paper): per-processor memory is the
// maximum of requested and used memory as a fraction of the 2 GB node
// memory, floored at 10%, defaulting to 10% when both are unknown. Jobs
// with an even processor count and per-processor memory under 50% become
// multi-threaded: half as many tasks, 100% CPU need, doubled memory. Jobs
// with an odd processor count or >= 50% memory keep one task per processor
// with a 50% CPU need (one core of the dual-core node).
package hpc2n

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/swf"
	"repro/internal/workload"
)

// Platform constants of the HPC2N cluster.
const (
	Nodes         = 120
	CoresPerNode  = 2
	NodeMemGB     = 2.0
	nodeMemKB     = int64(NodeMemGB * 1024 * 1024)
	WeekSeconds   = 7 * 24 * 3600.0
	memFloorFrac  = 0.10
	threadMemFrac = 0.50
)

// nodeMemKBf is nodeMemKB as a float64 for fraction arithmetic.
var nodeMemKBf = float64(nodeMemKB)

// PreprocessStats reports what Preprocess kept and dropped.
type PreprocessStats struct {
	Total          int
	Kept           int
	MissingMemory  int // jobs with neither used nor requested memory
	DroppedRuntime int // non-positive runtimes
	DroppedSize    int // non-positive or cluster-exceeding sizes
}

// Preprocess converts an SWF log into a simulator trace using the paper's
// rules. Records with non-positive runtimes or processor counts, or that
// need more tasks than the cluster has nodes, are dropped (the paper's
// trace is clean in these respects; synthetic stand-ins are too).
func Preprocess(log *swf.Log, name string) (*workload.Trace, PreprocessStats, error) {
	var st PreprocessStats
	tr := &workload.Trace{Name: name, Nodes: Nodes, NodeMemGB: NodeMemGB}
	for _, rec := range log.Records {
		st.Total++
		procs := rec.AllocatedProcs
		if procs <= 0 {
			procs = rec.RequestedProcs
		}
		if procs <= 0 || rec.RunTime <= 0 {
			if rec.RunTime <= 0 {
				st.DroppedRuntime++
			} else {
				st.DroppedSize++
			}
			continue
		}
		memKB := rec.UsedMemoryKB
		if rec.RequestedMemKB > memKB {
			memKB = rec.RequestedMemKB
		}
		if memKB <= 0 {
			st.MissingMemory++
			memKB = int64(memFloorFrac * nodeMemKBf)
		}
		memFrac := float64(memKB) / float64(nodeMemKB)
		if memFrac < memFloorFrac {
			memFrac = memFloorFrac
		}
		if memFrac > 1 {
			memFrac = 1
		}
		var tasks int
		var cpuNeed, memReq float64
		if procs%2 == 0 && memFrac < threadMemFrac {
			tasks = int(procs / 2)
			cpuNeed = 1.0
			memReq = 2 * memFrac
		} else {
			tasks = int(procs)
			cpuNeed = 0.5
			memReq = memFrac
		}
		if tasks < 1 || tasks > Nodes {
			st.DroppedSize++
			continue
		}
		tr.Jobs = append(tr.Jobs, workload.Job{
			ID:       int(rec.JobNumber),
			Submit:   float64(rec.SubmitTime),
			Tasks:    tasks,
			CPUNeed:  cpuNeed,
			MemReq:   memReq,
			ExecTime: float64(rec.RunTime),
		})
		st.Kept++
	}
	tr.SortBySubmit()
	if err := tr.Validate(); err != nil {
		return nil, st, fmt.Errorf("hpc2n: preprocessed trace invalid: %v", err)
	}
	return tr, st, nil
}

// SynthParams tunes the synthetic stand-in log.
type SynthParams struct {
	Weeks       int     // log length
	JobsPerWeek int     // average arrival volume
	SerialFrac  float64 // fraction of one-processor jobs
	ShortFrac   float64 // fraction of short-lived (often failing) jobs
	MissingMem  float64 // fraction of jobs with no memory information
}

// DefaultSynthParams mirrors the HPC2N characteristics the paper calls out:
// the full log averages ~1,100 jobs/week and "contains a large number of
// short-duration serial jobs".
func DefaultSynthParams() SynthParams {
	return SynthParams{
		Weeks:       4,
		JobsPerWeek: 1100,
		SerialFrac:  0.62,
		ShortFrac:   0.35,
		MissingMem:  0.01,
	}
}

// Synthesize generates an SWF log with HPC2N-like characteristics.
func Synthesize(r *rng.Source, p SynthParams) (*swf.Log, error) {
	if p.Weeks < 1 || p.JobsPerWeek < 1 {
		return nil, fmt.Errorf("hpc2n: invalid synthesis parameters %+v", p)
	}
	njobs := p.Weeks * p.JobsPerWeek
	log := &swf.Log{Header: []string{
		"Computer: HPC2N-like synthetic cluster (see DESIGN.md section 4)",
		fmt.Sprintf("MaxNodes: %d", Nodes),
		fmt.Sprintf("MaxProcs: %d", Nodes*CoresPerNode),
		"Note: synthetic stand-in for the HPC2N log of the Parallel Workloads Archive",
	}}
	arr := r.Split("arrivals")
	shape := r.Split("shape")
	// Poisson-like arrivals with a weekday/weekend rhythm. The rhythm only
	// ever slows arrivals down, so compensate the base rate by the average
	// slowdown (weekday fraction x overnight fraction ~= 0.65) to keep the
	// log close to the requested number of weeks.
	const rhythmCompensation = 0.65
	span := float64(p.Weeks) * WeekSeconds
	meanGap := span / float64(njobs) * rhythmCompensation
	t := 0.0
	for i := 0; i < njobs; i++ {
		day := math.Mod(t/86400, 7)
		rate := 1.0
		if day >= 5 { // weekend lull
			rate = 0.45
		}
		hour := math.Mod(t/3600, 24)
		if hour < 7 || hour > 20 { // overnight lull
			rate *= 0.5
		}
		t += arr.Exp(rate / meanGap)

		procs := int64(1)
		if !shape.Bernoulli(p.SerialFrac) {
			// Parallel sizes: mostly small powers of two, a few large.
			exp := 1 + shape.Intn(7) // 2..128 processors
			procs = int64(1) << exp
			if procs > Nodes*CoresPerNode {
				procs = Nodes * CoresPerNode
			}
		}
		var runtime int64
		if shape.Bernoulli(p.ShortFrac) {
			// Short jobs, many of which fail within seconds.
			runtime = int64(shape.Lognormal(2.0, 1.2)) // median ~7s
			if runtime < 1 {
				runtime = 1
			}
		} else {
			runtime = int64(shape.Lognormal(8.0, 1.6)) // median ~50min, heavy tail
			if runtime < 60 {
				runtime = 60
			}
			if runtime > 14*24*3600 {
				runtime = 14 * 24 * 3600
			}
		}
		memKB := int64(-1)
		if !shape.Bernoulli(p.MissingMem) {
			// Per-processor memory request: floor-heavy with a tail.
			frac := memFloorFrac
			if shape.Bernoulli(0.4) {
				frac = memFloorFrac + shape.Float64()*0.7
			}
			memKB = int64(frac * float64(nodeMemKB))
		}
		log.Records = append(log.Records, swf.Record{
			JobNumber:      int64(i + 1),
			SubmitTime:     int64(t),
			WaitTime:       -1,
			RunTime:        runtime,
			AllocatedProcs: procs,
			AvgCPUTimeUsed: -1,
			UsedMemoryKB:   memKB,
			RequestedProcs: procs,
			RequestedTime:  -1,
			RequestedMemKB: memKB,
			Status:         1,
			UserID:         int64(shape.Intn(200)),
			GroupID:        -1,
			ExecutableNum:  -1,
			QueueNum:       0,
			PartitionNum:   0,
			PrecedingJob:   -1,
			ThinkTime:      -1,
		})
	}
	return log, nil
}

// WeeklyTraces synthesizes an HPC2N-like log, preprocesses it with the
// paper's rules, and splits it into 1-week instances, mirroring the paper's
// 182 one-week segments.
func WeeklyTraces(r *rng.Source, p SynthParams) ([]*workload.Trace, PreprocessStats, error) {
	log, err := Synthesize(r, p)
	if err != nil {
		return nil, PreprocessStats{}, err
	}
	tr, st, err := Preprocess(log, "hpc2n-like")
	if err != nil {
		return nil, st, err
	}
	weeks, err := tr.SplitSegments(WeekSeconds)
	if err != nil {
		return nil, st, err
	}
	return weeks, st, nil
}
