// Package cluster defines the shared cluster resource model: a set of
// nodes, each with its own CPU and memory capacity, expressed in units of
// the paper's reference node (capacity 1.0 x 1.0). Every layer of the
// reproduction — the vector-packing kernel, the DFRS allocation math, the
// discrete-event simulator and the scheduling algorithms — works against
// this model, so heterogeneous platforms are a first-class scenario axis
// rather than a special case.
//
// A homogeneous cluster (Homogeneous, or the "uniform" profile) reproduces
// the paper's platform exactly: capacities of 1.0 collapse every per-node
// capacity computation to the original unit-capacity arithmetic,
// bit-for-bit. Heterogeneous platforms come from explicit NodeSpec lists or
// from the named node-mix profiles (Profile): deterministic capacity
// layouts such as a bimodal fat/thin mix or a power-law tier mix, keyed
// only by profile name and node count so campaign results stay reproducible.
//
// Job resource requirements remain fractions of the reference node in
// (0, 1]; profiles therefore never shrink a node below 1.0 x 1.0, which
// guarantees that every workload valid on the paper's platform stays
// schedulable on every profile. Custom clusters built with New may include
// thin nodes (capacity below 1.0); the packing and placement layers treat
// such nodes correctly, but callers are responsible for workload
// feasibility.
package cluster

import "fmt"

// NodeSpec is the capacity of one node in units of the reference node.
type NodeSpec struct {
	// CPUCap is the node's CPU capacity; a task with CPU need c consumes
	// c*yield of it. The paper's reference node has CPUCap 1.0.
	CPUCap float64
	// MemCap is the node's memory capacity, a hard constraint on the sum of
	// the memory requirements of the tasks it hosts.
	MemCap float64
}

// Unit is the reference node of the paper's homogeneous platform.
var Unit = NodeSpec{CPUCap: 1, MemCap: 1}

// Cluster is an immutable-by-convention set of nodes. Construct one with
// New, Homogeneous or Profile; callers must not mutate Nodes afterwards.
type Cluster struct {
	// Nodes holds one spec per node, indexed by node id.
	Nodes []NodeSpec
}

// New builds a cluster from explicit node specs (the slice is copied).
func New(nodes []NodeSpec) *Cluster {
	return &Cluster{Nodes: append([]NodeSpec(nil), nodes...)}
}

// Homogeneous returns the paper's platform: n reference nodes of capacity
// 1.0 x 1.0.
func Homogeneous(n int) *Cluster {
	return &Cluster{Nodes: Uniform(n)}
}

// Uniform returns n reference node specs (capacity 1.0 x 1.0).
func Uniform(n int) []NodeSpec {
	nodes := make([]NodeSpec, n)
	for i := range nodes {
		nodes[i] = Unit
	}
	return nodes
}

// N returns the number of nodes.
func (c *Cluster) N() int { return len(c.Nodes) }

// CPUCap returns node i's CPU capacity.
func (c *Cluster) CPUCap(i int) float64 { return c.Nodes[i].CPUCap }

// MemCap returns node i's memory capacity.
func (c *Cluster) MemCap(i int) float64 { return c.Nodes[i].MemCap }

// TotalCPU returns the cluster's aggregate CPU capacity. For a homogeneous
// cluster this is exactly float64(n), matching the unit-capacity arithmetic
// the paper's formulas use.
func (c *Cluster) TotalCPU() float64 {
	var t float64
	for _, n := range c.Nodes {
		t += n.CPUCap
	}
	return t
}

// TotalMem returns the cluster's aggregate memory capacity.
func (c *Cluster) TotalMem() float64 {
	var t float64
	for _, n := range c.Nodes {
		t += n.MemCap
	}
	return t
}

// Homogeneous reports whether every node is the reference node.
func (c *Cluster) Homogeneous() bool {
	for _, n := range c.Nodes {
		if n != Unit {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (c *Cluster) Clone() *Cluster { return New(c.Nodes) }

// Validate checks that the cluster is non-empty with positive capacities.
func (c *Cluster) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("cluster: no nodes")
	}
	for i, n := range c.Nodes {
		if n.CPUCap <= 0 || n.MemCap <= 0 {
			return fmt.Errorf("cluster: node %d has non-positive capacity %+v", i, n)
		}
	}
	return nil
}
