// Package cluster defines the shared cluster resource model: a set of
// nodes, each with its own capacity vector over d named resource
// dimensions, expressed in units of the paper's reference node. Dimensions
// 0 and 1 are always CPU and memory — the paper's two resources — so the
// published DFRS platform is exactly the d=2 special case; further
// dimensions (GPU, network, disk, ...) are optional and rigid (hard
// constraints, like memory). Every layer of the reproduction — the
// vector-packing kernel, the DFRS allocation math, the discrete-event
// simulator and the scheduling algorithms — works against this model, so
// heterogeneous and multi-resource platforms are first-class scenario axes
// rather than special cases.
//
// A homogeneous cluster (Homogeneous, or the "uniform" profile) reproduces
// the paper's platform exactly: two dimensions, capacities of 1.0, which
// collapse every per-node per-dimension computation to the original
// unit-capacity arithmetic, bit-for-bit. Heterogeneous platforms come from
// explicit NodeSpec lists or from the named node-mix profiles (Profile):
// deterministic capacity layouts such as a bimodal fat/thin mix, a
// power-law tier mix, or the three-dimensional GPU mixes, keyed only by
// profile name and node count so campaign results stay reproducible.
//
// Job CPU and memory requirements remain fractions of the reference node in
// (0, 1]; profiles therefore never shrink those two dimensions below 1.0,
// which guarantees that every workload valid on the paper's platform stays
// schedulable on every profile. Extra dimensions may have zero capacity on
// some nodes (a node without GPUs); the packing and placement layers treat
// such nodes correctly, and the simulator rejects jobs whose demand exceeds
// every node eagerly.
package cluster

import "fmt"

// Dimension indices of the canonical resource vector. CPU is the only
// fluid dimension (consumption scales with the allocated yield); every
// other dimension is rigid — a hard constraint on the sum of demands of
// the tasks a node hosts, exactly like the paper's memory constraint.
const (
	// DimCPU is the CPU dimension, dimension 0.
	DimCPU = 0
	// DimMem is the memory dimension, dimension 1.
	DimMem = 1
)

// MinDims is the minimum number of dimensions of any node or cluster: the
// paper's (CPU, memory) pair.
const MinDims = 2

// Vec is a resource vector: one value per dimension, in units of the
// reference node.
type Vec []float64

// Clone returns a copy of the vector.
func (v Vec) Clone() Vec { return append(Vec(nil), v...) }

// Equal reports whether the vectors have identical length and values.
func (v Vec) Equal(o Vec) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// NodeSpec is the capacity vector of one node in units of the reference
// node. Caps[DimCPU] is the CPU capacity — a task with CPU need c consumes
// c*yield of it; Caps[DimMem] and every further dimension are rigid
// capacities, hard constraints on the sum of the demands of the tasks the
// node hosts. The paper's reference node is Unit(): capacity 1.0 in every
// dimension.
type NodeSpec struct {
	Caps Vec
	// Cost is the node's cost rate in abstract price units per second of
	// occupancy (per-node-type pricing). It never constrains scheduling —
	// the paper's model has no prices and its platform is the all-zero
	// special case — but the simulator accounts cost-weighted occupancy
	// (cost x seconds, accrued once per task the node hosts) and the cost
	// placement objective minimizes it.
	Cost float64
}

// Spec builds a node spec from explicit capacities; the first two are CPU
// and memory.
func Spec(caps ...float64) NodeSpec {
	return NodeSpec{Caps: append(Vec(nil), caps...)}
}

// Unit returns the reference node of the paper's homogeneous platform:
// capacity 1.0 x 1.0 over the two canonical dimensions.
func Unit() NodeSpec { return NodeSpec{Caps: Vec{1, 1}} }

// UnitD returns a reference node with d dimensions, capacity 1.0 in each.
func UnitD(d int) NodeSpec {
	caps := make(Vec, d)
	for i := range caps {
		caps[i] = 1
	}
	return NodeSpec{Caps: caps}
}

// Dims returns the node's dimension count.
func (n NodeSpec) Dims() int { return len(n.Caps) }

// Cap returns the capacity in dimension k, or 0 for dimensions beyond the
// node's vector (a node has none of a resource it does not declare).
func (n NodeSpec) Cap(k int) float64 {
	if k >= len(n.Caps) {
		return 0
	}
	return n.Caps[k]
}

// CPUCap returns the CPU capacity (dimension 0).
func (n NodeSpec) CPUCap() float64 { return n.Caps[DimCPU] }

// MemCap returns the memory capacity (dimension 1).
func (n NodeSpec) MemCap() float64 { return n.Caps[DimMem] }

// IsUnit reports whether the node is a d=2 reference node (capacity
// exactly 1.0 in CPU and memory and no further dimensions).
func (n NodeSpec) IsUnit() bool {
	return len(n.Caps) == MinDims && n.Caps[DimCPU] == 1 && n.Caps[DimMem] == 1
}

// Equal reports whether both specs have identical capacity vectors and
// cost rates.
func (n NodeSpec) Equal(o NodeSpec) bool { return n.Cost == o.Cost && n.Caps.Equal(o.Caps) }

// WithCost returns a copy of the spec with the given cost rate.
func (n NodeSpec) WithCost(cost float64) NodeSpec {
	n.Cost = cost
	return n
}

// WithDims returns a copy of the spec extended (or truncated — never below
// MinDims) to d dimensions; new dimensions receive capacity fill. The cost
// rate is preserved.
func (n NodeSpec) WithDims(d int, fill float64) NodeSpec {
	if d < MinDims {
		d = MinDims
	}
	caps := make(Vec, d)
	copy(caps, n.Caps)
	for i := len(n.Caps); i < d; i++ {
		caps[i] = fill
	}
	return NodeSpec{Caps: caps, Cost: n.Cost}
}

// CanonicalDimName returns the conventional name of dimension k: "cpu",
// "mem", "gpu" for the conventional third axis, and "res<k>" beyond it.
// It is the single source of the naming rule shared by cluster metadata,
// trace column headers and simulator error messages.
func CanonicalDimName(k int) string {
	switch k {
	case DimCPU:
		return "cpu"
	case DimMem:
		return "mem"
	case 2:
		return "gpu"
	}
	return fmt.Sprintf("res%d", k)
}

// DefaultDimNames returns the canonical names of the first d dimensions
// (see CanonicalDimName).
func DefaultDimNames(d int) []string {
	names := make([]string, d)
	for i := range names {
		names[i] = CanonicalDimName(i)
	}
	return names
}

// Cluster is an immutable-by-convention set of nodes sharing one dimension
// count. Construct one with New, NewWithDims, Homogeneous or Profile;
// callers must not mutate Nodes or DimNames afterwards.
type Cluster struct {
	// Nodes holds one capacity vector per node, indexed by node id. All
	// nodes of a cluster have the same dimension count.
	Nodes []NodeSpec
	// DimNames optionally names the dimensions ("cpu", "mem", "gpu", ...).
	// Nil means DefaultDimNames(D()). When set its length must equal the
	// node dimension count.
	DimNames []string
}

// New builds a cluster from explicit node specs (the slice is copied).
func New(nodes []NodeSpec) *Cluster {
	return &Cluster{Nodes: append([]NodeSpec(nil), nodes...)}
}

// NewWithDims builds a cluster with explicit dimension names.
func NewWithDims(dimNames []string, nodes []NodeSpec) *Cluster {
	return &Cluster{
		Nodes:    append([]NodeSpec(nil), nodes...),
		DimNames: append([]string(nil), dimNames...),
	}
}

// Homogeneous returns the paper's platform: n reference nodes of capacity
// 1.0 x 1.0 over the two canonical dimensions.
func Homogeneous(n int) *Cluster {
	return &Cluster{Nodes: Uniform(n)}
}

// Uniform returns n reference node specs (capacity 1.0 x 1.0).
func Uniform(n int) []NodeSpec {
	nodes := make([]NodeSpec, n)
	for i := range nodes {
		nodes[i] = Unit()
	}
	return nodes
}

// N returns the number of nodes.
func (c *Cluster) N() int { return len(c.Nodes) }

// D returns the cluster's dimension count (MinDims for an empty cluster).
func (c *Cluster) D() int {
	if len(c.Nodes) == 0 {
		return MinDims
	}
	return c.Nodes[0].Dims()
}

// DimName returns the name of dimension k.
func (c *Cluster) DimName(k int) string {
	if k < len(c.DimNames) {
		return c.DimNames[k]
	}
	return CanonicalDimName(k)
}

// Cap returns node i's capacity in dimension k (0 beyond the cluster's
// dimensions).
func (c *Cluster) Cap(i, k int) float64 { return c.Nodes[i].Cap(k) }

// CPUCap returns node i's CPU capacity.
func (c *Cluster) CPUCap(i int) float64 { return c.Nodes[i].Caps[DimCPU] }

// MemCap returns node i's memory capacity.
func (c *Cluster) MemCap(i int) float64 { return c.Nodes[i].Caps[DimMem] }

// Cost returns node i's cost rate (price units per second of occupancy;
// 0 on unpriced platforms).
func (c *Cluster) Cost(i int) float64 { return c.Nodes[i].Cost }

// Priced reports whether any node carries a non-zero cost rate; the
// simulator skips cost accounting entirely on unpriced platforms.
func (c *Cluster) Priced() bool {
	for _, n := range c.Nodes {
		if n.Cost != 0 {
			return true
		}
	}
	return false
}

// TotalCap returns the cluster's aggregate capacity in dimension k.
func (c *Cluster) TotalCap(k int) float64 {
	var t float64
	for _, n := range c.Nodes {
		t += n.Cap(k)
	}
	return t
}

// MeanCap returns the mean per-node capacity in dimension k (1.0 for an
// empty cluster, matching the reference node). The vector-packing kernel
// normalizes item requirements by it on heterogeneous platforms.
func (c *Cluster) MeanCap(k int) float64 {
	if len(c.Nodes) == 0 {
		return 1
	}
	return c.TotalCap(k) / float64(len(c.Nodes))
}

// TotalCPU returns the cluster's aggregate CPU capacity. For a homogeneous
// cluster this is exactly float64(n), matching the unit-capacity arithmetic
// the paper's formulas use.
func (c *Cluster) TotalCPU() float64 { return c.TotalCap(DimCPU) }

// TotalMem returns the cluster's aggregate memory capacity.
func (c *Cluster) TotalMem() float64 { return c.TotalCap(DimMem) }

// Homogeneous reports whether every node is the d=2 reference node.
func (c *Cluster) Homogeneous() bool {
	for _, n := range c.Nodes {
		if !n.IsUnit() {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (c *Cluster) Clone() *Cluster {
	return &Cluster{
		Nodes:    append([]NodeSpec(nil), c.Nodes...),
		DimNames: append([]string(nil), c.DimNames...),
	}
}

// WithDims returns a copy of the cluster extended to d dimensions; new
// dimensions receive capacity fill on every node and the given names (or
// the canonical defaults when names is nil). A cluster that already has at
// least d dimensions is returned unchanged (as a clone).
func (c *Cluster) WithDims(d int, fill float64, names []string) *Cluster {
	if d <= c.D() {
		return c.Clone()
	}
	out := &Cluster{Nodes: make([]NodeSpec, len(c.Nodes))}
	for i, n := range c.Nodes {
		out.Nodes[i] = n.WithDims(d, fill)
	}
	if names != nil {
		out.DimNames = append([]string(nil), names...)
	} else if c.DimNames != nil {
		out.DimNames = append(append([]string(nil), c.DimNames...), DefaultDimNames(d)[c.D():]...)
	}
	return out
}

// ExtendUnit returns the cluster extended to d dimensions with capacity
// 1.0 per node in each added dimension and the canonical dimension names —
// the shared rule by which the facade and the campaign engine make a
// demand axis (e.g. GPU jobs on a two-resource mix) satisfiable
// everywhere. A cluster already declaring at least d dimensions is
// returned as is.
func (c *Cluster) ExtendUnit(d int) *Cluster {
	if d <= c.D() {
		return c
	}
	return c.WithDims(d, 1, DefaultDimNames(d))
}

// Validate checks that the cluster is non-empty, that every node has the
// same dimension count (at least MinDims), that CPU and memory capacities
// are positive, that extra dimensions are non-negative, and that DimNames
// (when set) matches the dimension count.
func (c *Cluster) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("cluster: no nodes")
	}
	d := c.Nodes[0].Dims()
	if d < MinDims {
		return fmt.Errorf("cluster: nodes have %d dimensions, want at least %d (cpu, mem)", d, MinDims)
	}
	for i, n := range c.Nodes {
		if n.Dims() != d {
			return fmt.Errorf("cluster: node %d has %d dimensions, node 0 has %d", i, n.Dims(), d)
		}
		if n.Caps[DimCPU] <= 0 || n.Caps[DimMem] <= 0 {
			return fmt.Errorf("cluster: node %d has non-positive cpu/mem capacity %v", i, n.Caps)
		}
		for k := MinDims; k < d; k++ {
			if n.Caps[k] < 0 {
				return fmt.Errorf("cluster: node %d has negative %s capacity %g", i, c.DimName(k), n.Caps[k])
			}
		}
		if !(n.Cost >= 0) { // negated so NaN is rejected too
			return fmt.Errorf("cluster: node %d has invalid cost rate %g", i, n.Cost)
		}
	}
	if c.DimNames != nil && len(c.DimNames) != d {
		return fmt.Errorf("cluster: %d dimension names for %d dimensions", len(c.DimNames), d)
	}
	return nil
}
