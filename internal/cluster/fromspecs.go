package cluster

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// FromSpecs parses a node-inventory file: one capacity vector per line,
// whitespace-separated, in units of the reference node, with an optional
// trailing cost= field giving the node's cost rate. The first two values
// of every line are CPU and memory; further values are additional rigid
// dimensions (GPU, ...). An optional "# dims:" comment names the
// dimensions; other comment lines (#) and blank lines are ignored.
//
//	# dims: cpu mem gpu
//	2 2 0 cost=3
//	1 1 1
//	1 1 1 cost=0.5
//
// Every line must declare the same number of dimensions. Parse errors name
// the offending line. The returned dimension names are nil when no dims
// header is present (callers fall back to the canonical names); real
// cluster inventories are wired into the CLIs through the -resources @file
// flag, which registers the parsed inventory as a node-mix profile
// (RegisterProfile).
func FromSpecs(r io.Reader) (dims []string, specs []NodeSpec, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			meta := strings.TrimSpace(strings.TrimPrefix(line, "#"))
			if strings.HasPrefix(meta, "dims:") {
				names := strings.Fields(strings.TrimPrefix(meta, "dims:"))
				if len(names) < MinDims {
					return nil, nil, fmt.Errorf("cluster: line %d: %d dimension names, want at least %d (cpu, mem)", lineno, len(names), MinDims)
				}
				if names[DimCPU] != "cpu" || names[DimMem] != "mem" {
					return nil, nil, fmt.Errorf("cluster: line %d: dimensions must start with \"cpu\", \"mem\", got %v", lineno, names)
				}
				dims = names
			}
			continue
		}
		spec := NodeSpec{}
		sawCost := false
		for _, field := range strings.Fields(line) {
			if cv, ok := strings.CutPrefix(field, "cost="); ok {
				if sawCost {
					return nil, nil, fmt.Errorf("cluster: line %d: duplicate cost= field", lineno)
				}
				cost, perr := strconv.ParseFloat(cv, 64)
				if perr != nil {
					return nil, nil, fmt.Errorf("cluster: line %d: bad cost %q: %v", lineno, cv, perr)
				}
				if !(cost >= 0) { // negated so NaN is rejected too
					return nil, nil, fmt.Errorf("cluster: line %d: negative cost rate %g", lineno, cost)
				}
				spec.Cost = cost
				sawCost = true
				continue
			}
			if sawCost {
				return nil, nil, fmt.Errorf("cluster: line %d: capacity %q after the cost= field", lineno, field)
			}
			v, perr := strconv.ParseFloat(field, 64)
			if perr != nil {
				return nil, nil, fmt.Errorf("cluster: line %d: bad capacity %q: %v", lineno, field, perr)
			}
			spec.Caps = append(spec.Caps, v)
		}
		if len(spec.Caps) < MinDims {
			return nil, nil, fmt.Errorf("cluster: line %d: %d capacities, want at least %d (cpu, mem)", lineno, len(spec.Caps), MinDims)
		}
		if len(specs) > 0 && len(spec.Caps) != specs[0].Dims() {
			return nil, nil, fmt.Errorf("cluster: line %d: %d dimensions, previous nodes have %d", lineno, len(spec.Caps), specs[0].Dims())
		}
		if spec.Caps[DimCPU] <= 0 || spec.Caps[DimMem] <= 0 {
			return nil, nil, fmt.Errorf("cluster: line %d: non-positive cpu/mem capacity %v", lineno, spec.Caps)
		}
		for k := MinDims; k < len(spec.Caps); k++ {
			if spec.Caps[k] < 0 {
				return nil, nil, fmt.Errorf("cluster: line %d: negative capacity %g in dimension %d", lineno, spec.Caps[k], k)
			}
		}
		specs = append(specs, spec)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("cluster: %v", err)
	}
	if len(specs) == 0 {
		return nil, nil, fmt.Errorf("cluster: inventory declares no nodes")
	}
	if dims != nil && len(dims) != specs[0].Dims() {
		return nil, nil, fmt.Errorf("cluster: dims header names %d dimensions but nodes have %d", len(dims), specs[0].Dims())
	}
	return dims, specs, nil
}
