package cluster

import (
	"testing"
)

func TestHomogeneous(t *testing.T) {
	c := Homogeneous(4)
	if c.N() != 4 || !c.Homogeneous() {
		t.Fatalf("Homogeneous(4) = %+v", c)
	}
	if c.TotalCPU() != 4 || c.TotalMem() != 4 {
		t.Errorf("totals = %v/%v, want 4/4", c.TotalCPU(), c.TotalMem())
	}
	for i := 0; i < 4; i++ {
		if c.CPUCap(i) != 1 || c.MemCap(i) != 1 {
			t.Errorf("node %d = %v/%v, want 1/1", i, c.CPUCap(i), c.MemCap(i))
		}
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNewCopies(t *testing.T) {
	src := []NodeSpec{Spec(2, 2)}
	c := New(src)
	src[0] = Spec(99, 99)
	if c.CPUCap(0) != 2 {
		t.Error("New aliased the caller's slice")
	}
	d := c.Clone()
	d.Nodes[0] = Spec(5, 5)
	if c.MemCap(0) != 2 {
		t.Error("Clone aliased the original")
	}
}

func TestValidate(t *testing.T) {
	if err := (&Cluster{}).Validate(); err == nil {
		t.Error("empty cluster accepted")
	}
	if err := New([]NodeSpec{Spec(0, 1)}).Validate(); err == nil {
		t.Error("zero CPU capacity accepted")
	}
	if err := New([]NodeSpec{Spec(1, -1)}).Validate(); err == nil {
		t.Error("negative memory capacity accepted")
	}
}

func TestProfileUniformIsHomogeneous(t *testing.T) {
	for _, name := range []string{"", ProfileUniform} {
		c, err := Profile(name, 7)
		if err != nil {
			t.Fatalf("Profile(%q): %v", name, err)
		}
		if !c.Homogeneous() || c.N() != 7 {
			t.Errorf("Profile(%q) not homogeneous: %+v", name, c)
		}
	}
}

func TestProfileBimodal(t *testing.T) {
	c, err := Profile(ProfileBimodal, 6)
	if err != nil {
		t.Fatal(err)
	}
	fat := 0
	for i := 0; i < c.N(); i++ {
		if c.CPUCap(i) == 2 {
			fat++
		}
	}
	if fat != 3 {
		t.Errorf("bimodal over 6 nodes has %d fat nodes, want 3", fat)
	}
	if c.Homogeneous() {
		t.Error("bimodal reported homogeneous")
	}
}

func TestProfilePowerlaw(t *testing.T) {
	c, err := Profile(ProfilePowerlaw, 16)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[float64]int{}
	for i := 0; i < c.N(); i++ {
		counts[c.CPUCap(i)]++
	}
	if counts[4] != 2 || counts[2] != 2 || counts[1] != 12 {
		t.Errorf("powerlaw tiers over 16 nodes = %v, want 2x4.0, 2x2.0, 12x1.0", counts)
	}
}

// Every profile must keep nodes at or above the reference capacity so any
// workload valid on the homogeneous platform stays schedulable.
func TestProfilesNeverShrinkNodes(t *testing.T) {
	for _, name := range ProfileNames() {
		for _, n := range []int{1, 2, 3, 8, 128} {
			c, err := Profile(name, n)
			if err != nil {
				t.Fatalf("Profile(%q, %d): %v", name, n, err)
			}
			for i := 0; i < c.N(); i++ {
				if c.CPUCap(i) < 1 || c.MemCap(i) < 1 {
					t.Errorf("profile %q node %d below reference capacity: %v/%v",
						name, i, c.CPUCap(i), c.MemCap(i))
				}
			}
		}
	}
}

// Profiles are deterministic functions of (name, n).
func TestProfileDeterminism(t *testing.T) {
	for _, name := range ProfileNames() {
		a, _ := Profile(name, 32)
		b, _ := Profile(name, 32)
		for i := range a.Nodes {
			if !a.Nodes[i].Equal(b.Nodes[i]) {
				t.Fatalf("profile %q differs between calls at node %d", name, i)
			}
		}
	}
}

func TestProfileErrors(t *testing.T) {
	if _, err := Profile("no-such-mix", 4); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := Profile(ProfileBimodal, 0); err == nil {
		t.Error("zero node count accepted")
	}
}

func TestNormalizeProfile(t *testing.T) {
	if NormalizeProfile("") != "" || NormalizeProfile(ProfileUniform) != "" {
		t.Error("uniform aliases not canonicalized to empty")
	}
	if NormalizeProfile(ProfileBimodal) != ProfileBimodal {
		t.Error("non-uniform profile altered")
	}
}

func TestValidProfile(t *testing.T) {
	for _, name := range append(ProfileNames(), "") {
		if !ValidProfile(name) {
			t.Errorf("ValidProfile(%q) = false", name)
		}
	}
	if ValidProfile("bogus") {
		t.Error("ValidProfile accepted bogus name")
	}
}
