package cluster

import (
	"reflect"
	"strings"
	"testing"
)

func TestFromSpecs(t *testing.T) {
	in := `# a comment
# dims: cpu mem gpu

2 2 0 cost=3
1 1 1
1 1 1 cost=0.5
`
	dims, specs, err := FromSpecs(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dims, []string{"cpu", "mem", "gpu"}) {
		t.Fatalf("dims = %v", dims)
	}
	want := []NodeSpec{
		{Caps: Vec{2, 2, 0}, Cost: 3},
		{Caps: Vec{1, 1, 1}},
		{Caps: Vec{1, 1, 1}, Cost: 0.5},
	}
	if !reflect.DeepEqual(specs, want) {
		t.Fatalf("specs = %v, want %v", specs, want)
	}
	// No dims header: nil names (canonical defaults apply).
	dims, specs, err = FromSpecs(strings.NewReader("1 1\n4 2 cost=9\n"))
	if err != nil {
		t.Fatal(err)
	}
	if dims != nil || len(specs) != 2 || specs[1].Cost != 9 {
		t.Fatalf("headerless parse: dims %v specs %v", dims, specs)
	}
}

func TestFromSpecsErrorsNameLines(t *testing.T) {
	cases := []struct {
		in   string
		line string // expected line-number fragment
	}{
		{"1 1\nx 1\n", "line 2"},
		{"1 1\n1\n", "line 2"},
		{"1 1\n1 1 1\n", "line 2"},        // dimension count changes
		{"0 1\n", "line 1"},               // non-positive cpu
		{"1 1 cost=-2\n", "line 1"},       // negative cost
		{"1 1 cost=nan\n", "line 1"},      // NaN cost
		{"1 1 cost=1 cost=2\n", "line 1"}, // duplicate cost
		{"1 1 cost=1 2\n", "line 1"},      // capacity after cost
		{"# dims: cpu\n1 1\n", "line 1"},  // too few dim names
		{"# dims: mem cpu\n1 1\n", "line 1"} /* wrong canonical order */, {"", "no nodes"},
		{"# dims: cpu mem gpu\n1 1\n", "names 3 dimensions"},
	}
	for _, tc := range cases {
		_, _, err := FromSpecs(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("input %q accepted", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.line) {
			t.Errorf("input %q: error %q does not name %q", tc.in, err, tc.line)
		}
	}
}

func TestRegisterProfileTiles(t *testing.T) {
	specs := []NodeSpec{
		{Caps: Vec{2, 2}, Cost: 3},
		{Caps: Vec{1, 1}, Cost: 1},
		{Caps: Vec{1, 1}, Cost: 1},
	}
	if err := RegisterProfile("test-inventory", nil, specs); err != nil {
		t.Fatal(err)
	}
	if !ValidProfile("test-inventory") {
		t.Fatal("registered profile not valid")
	}
	cl, err := Profile("test-inventory", 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if !cl.Nodes[i].Equal(specs[i%3]) {
			t.Fatalf("node %d = %v, want tiled %v", i, cl.Nodes[i], specs[i%3])
		}
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
	if !cl.Priced() {
		t.Fatal("priced inventory reports unpriced")
	}
	// Duplicate and invalid registrations fail.
	if err := RegisterProfile("test-inventory", nil, specs); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := RegisterProfile("", nil, specs); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := RegisterProfile("x-empty", nil, nil); err == nil {
		t.Fatal("empty inventory accepted")
	}
	if err := RegisterProfile("x-ragged", nil, []NodeSpec{{Caps: Vec{1, 1}}, {Caps: Vec{1, 1, 1}}}); err == nil {
		t.Fatal("ragged inventory accepted")
	}
	if err := RegisterProfile("x-dims", []string{"cpu"}, specs); err == nil {
		t.Fatal("mismatched dim names accepted")
	}
}

func TestBimodalPricedProfile(t *testing.T) {
	cl, err := Profile(ProfileBimodalPriced, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, n := range cl.Nodes {
		if i%2 == 0 {
			if !n.Equal(Spec(2, 2).WithCost(3)) {
				t.Fatalf("node %d = %v, want fat cost-3", i, n)
			}
		} else if !n.Equal(Unit().WithCost(1)) {
			t.Fatalf("node %d = %v, want unit cost-1", i, n)
		}
	}
	if !cl.Priced() {
		t.Fatal("bimodal-priced reports unpriced")
	}
	// The unpriced profiles stay unpriced (pre-pricing behaviour intact).
	for _, name := range []string{"", ProfileBimodal, ProfilePowerlaw, ProfileGPUUniform, ProfileGPUBimodal} {
		cl, err := Profile(name, 4)
		if err != nil {
			t.Fatal(err)
		}
		if cl.Priced() {
			t.Fatalf("profile %q unexpectedly priced", name)
		}
	}
}
