package cluster

import (
	"fmt"
	"sort"
)

// Named node-mix profiles. A profile is a deterministic function of
// (name, node count): no randomness, so campaign cells using a profile stay
// byte-reproducible. Every profile keeps each node at or above the
// reference CPU and memory capacity 1.0 x 1.0, guaranteeing that any
// workload valid on the paper's homogeneous platform remains schedulable;
// three-dimensional profiles additionally declare a GPU capacity, which may
// be zero on some nodes (a GPU-demanding job then only fits the GPU nodes).
const (
	// ProfileUniform is the paper's homogeneous platform (all nodes
	// 1.0 x 1.0). The empty string is an accepted alias.
	ProfileUniform = "uniform"
	// ProfileBimodal is a fat/thin mix: every other node is a double
	// capacity (2.0 x 2.0) "fat" node, the rest are reference nodes.
	ProfileBimodal = "bimodal"
	// ProfilePowerlaw is a power-law tier mix: 1/8 of the nodes are 4.0x,
	// a further 1/8 are 2.0x, and the remaining 3/4 are reference nodes —
	// few very fat nodes, many thin ones.
	ProfilePowerlaw = "powerlaw"
	// ProfileGPUUniform is the three-dimensional reference platform: every
	// node is 1.0 x 1.0 with one GPU unit (dimensions cpu, mem, gpu).
	ProfileGPUUniform = "gpu-uniform"
	// ProfileGPUBimodal is a GPU-partitioned mix: every fourth node is a
	// double-GPU accelerator node (1.0 x 1.0 x 2.0), the rest carry no GPU
	// (1.0 x 1.0 x 0.0) — GPU-demanding jobs compete for a quarter of the
	// cluster while CPU/memory stay uniform.
	ProfileGPUBimodal = "gpu-bimodal"
)

// gpuDims is the dimension-name set of the three-dimensional profiles.
var gpuDims = []string{"cpu", "mem", "gpu"}

// profile is one named node-mix layout: its dimension names (nil = the
// canonical d=2 pair) and the per-node capacity function.
type profile struct {
	dims  []string
	build func(i int) NodeSpec
}

// profileBuilders maps canonical profile names to their layouts.
var profileBuilders = map[string]profile{
	ProfileUniform: {build: func(int) NodeSpec { return Unit() }},
	ProfileBimodal: {build: func(i int) NodeSpec {
		if i%2 == 0 {
			return Spec(2, 2)
		}
		return Unit()
	}},
	ProfilePowerlaw: {build: func(i int) NodeSpec {
		switch {
		case i%8 == 0:
			return Spec(4, 4)
		case i%8 == 4:
			return Spec(2, 2)
		default:
			return Unit()
		}
	}},
	ProfileGPUUniform: {dims: gpuDims, build: func(int) NodeSpec { return Spec(1, 1, 1) }},
	ProfileGPUBimodal: {dims: gpuDims, build: func(i int) NodeSpec {
		if i%4 == 0 {
			return Spec(1, 1, 2)
		}
		return Spec(1, 1, 0)
	}},
}

// ProfileNames lists the canonical profile names, sorted.
func ProfileNames() []string {
	names := make([]string, 0, len(profileBuilders))
	for n := range profileBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NormalizeProfile maps a profile name to its canonical form: the empty
// string and "uniform" both canonicalize to "" (the homogeneous default, so
// campaign cell keys for homogeneous runs are identical with and without
// the heterogeneity axis); any other name is returned unchanged.
func NormalizeProfile(name string) string {
	if name == ProfileUniform {
		return ""
	}
	return name
}

// ValidProfile reports whether name denotes a known profile ("" counts as
// uniform).
func ValidProfile(name string) bool {
	if name == "" {
		return true
	}
	_, ok := profileBuilders[name]
	return ok
}

// Profile builds the named node-mix over n nodes. The empty name is the
// uniform (homogeneous) profile.
func Profile(name string, n int) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: profile %q needs a positive node count, got %d", name, n)
	}
	if name == "" {
		name = ProfileUniform
	}
	p, ok := profileBuilders[name]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown node-mix profile %q (known: %v)", name, ProfileNames())
	}
	nodes := make([]NodeSpec, n)
	for i := range nodes {
		nodes[i] = p.build(i)
	}
	c := &Cluster{Nodes: nodes}
	if p.dims != nil {
		c.DimNames = append([]string(nil), p.dims...)
	}
	return c, nil
}
