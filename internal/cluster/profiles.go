package cluster

import (
	"fmt"
	"sort"
)

// Named node-mix profiles. A profile is a deterministic function of
// (name, node count): no randomness, so campaign cells using a profile stay
// byte-reproducible. Every profile keeps each node at or above the
// reference capacity 1.0 x 1.0, guaranteeing that any workload valid on the
// paper's homogeneous platform remains schedulable.
const (
	// ProfileUniform is the paper's homogeneous platform (all nodes
	// 1.0 x 1.0). The empty string is an accepted alias.
	ProfileUniform = "uniform"
	// ProfileBimodal is a fat/thin mix: every other node is a double
	// capacity (2.0 x 2.0) "fat" node, the rest are reference nodes.
	ProfileBimodal = "bimodal"
	// ProfilePowerlaw is a power-law tier mix: 1/8 of the nodes are 4.0x,
	// a further 1/8 are 2.0x, and the remaining 3/4 are reference nodes —
	// few very fat nodes, many thin ones.
	ProfilePowerlaw = "powerlaw"
)

// profileBuilders maps canonical profile names to their layout functions.
var profileBuilders = map[string]func(i int) NodeSpec{
	ProfileUniform: func(int) NodeSpec { return Unit },
	ProfileBimodal: func(i int) NodeSpec {
		if i%2 == 0 {
			return NodeSpec{CPUCap: 2, MemCap: 2}
		}
		return Unit
	},
	ProfilePowerlaw: func(i int) NodeSpec {
		switch {
		case i%8 == 0:
			return NodeSpec{CPUCap: 4, MemCap: 4}
		case i%8 == 4:
			return NodeSpec{CPUCap: 2, MemCap: 2}
		default:
			return Unit
		}
	},
}

// ProfileNames lists the canonical profile names, sorted.
func ProfileNames() []string {
	names := make([]string, 0, len(profileBuilders))
	for n := range profileBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NormalizeProfile maps a profile name to its canonical form: the empty
// string and "uniform" both canonicalize to "" (the homogeneous default, so
// campaign cell keys for homogeneous runs are identical with and without
// the heterogeneity axis); any other name is returned unchanged.
func NormalizeProfile(name string) string {
	if name == ProfileUniform {
		return ""
	}
	return name
}

// ValidProfile reports whether name denotes a known profile ("" counts as
// uniform).
func ValidProfile(name string) bool {
	if name == "" {
		return true
	}
	_, ok := profileBuilders[name]
	return ok
}

// Profile builds the named node-mix over n nodes. The empty name is the
// uniform (homogeneous) profile.
func Profile(name string, n int) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: profile %q needs a positive node count, got %d", name, n)
	}
	if name == "" {
		name = ProfileUniform
	}
	build, ok := profileBuilders[name]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown node-mix profile %q (known: %v)", name, ProfileNames())
	}
	nodes := make([]NodeSpec, n)
	for i := range nodes {
		nodes[i] = build(i)
	}
	return &Cluster{Nodes: nodes}, nil
}
