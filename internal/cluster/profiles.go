package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// Named node-mix profiles. A profile is a deterministic function of
// (name, node count): no randomness, so campaign cells using a profile stay
// byte-reproducible. Every profile keeps each node at or above the
// reference CPU and memory capacity 1.0 x 1.0, guaranteeing that any
// workload valid on the paper's homogeneous platform remains schedulable;
// three-dimensional profiles additionally declare a GPU capacity, which may
// be zero on some nodes (a GPU-demanding job then only fits the GPU nodes),
// and priced profiles declare per-node cost rates (NodeSpec.Cost) for the
// cost-aware placement objectives.
const (
	// ProfileUniform is the paper's homogeneous platform (all nodes
	// 1.0 x 1.0). The empty string is an accepted alias.
	ProfileUniform = "uniform"
	// ProfileBimodal is a fat/thin mix: every other node is a double
	// capacity (2.0 x 2.0) "fat" node, the rest are reference nodes.
	ProfileBimodal = "bimodal"
	// ProfilePowerlaw is a power-law tier mix: 1/8 of the nodes are 4.0x,
	// a further 1/8 are 2.0x, and the remaining 3/4 are reference nodes —
	// few very fat nodes, many thin ones.
	ProfilePowerlaw = "powerlaw"
	// ProfileGPUUniform is the three-dimensional reference platform: every
	// node is 1.0 x 1.0 with one GPU unit (dimensions cpu, mem, gpu).
	ProfileGPUUniform = "gpu-uniform"
	// ProfileGPUBimodal is a GPU-partitioned mix: every fourth node is a
	// double-GPU accelerator node (1.0 x 1.0 x 2.0), the rest carry no GPU
	// (1.0 x 1.0 x 0.0) — GPU-demanding jobs compete for a quarter of the
	// cluster while CPU/memory stay uniform.
	ProfileGPUBimodal = "gpu-bimodal"
	// ProfileBimodalPriced is the bimodal fat/thin capacity mix with
	// super-linear per-node-type pricing: fat 2.0 x 2.0 nodes cost 3.0 per
	// second of occupancy, reference nodes cost 1.0 — double the capacity
	// at triple the price, the classic premium-tier trade-off that makes
	// cost-aware placement objectives bite (a cost-minimizing scheduler
	// keeps the fat nodes idle unless capacity forces their use).
	ProfileBimodalPriced = "bimodal-priced"
)

// gpuDims is the dimension-name set of the three-dimensional profiles.
var gpuDims = []string{"cpu", "mem", "gpu"}

// profile is one named node-mix layout: its dimension names (nil = the
// canonical d=2 pair) and the per-node capacity function.
type profile struct {
	dims  []string
	build func(i int) NodeSpec
}

// profileBuilders maps canonical profile names to their layouts. Built-ins
// are installed here; RegisterProfile adds named inventories at run time,
// so all access goes through profileMu.
var (
	profileMu       sync.RWMutex
	profileBuilders = map[string]profile{
		ProfileUniform: {build: func(int) NodeSpec { return Unit() }},
		ProfileBimodal: {build: func(i int) NodeSpec {
			if i%2 == 0 {
				return Spec(2, 2)
			}
			return Unit()
		}},
		ProfilePowerlaw: {build: func(i int) NodeSpec {
			switch {
			case i%8 == 0:
				return Spec(4, 4)
			case i%8 == 4:
				return Spec(2, 2)
			default:
				return Unit()
			}
		}},
		ProfileGPUUniform: {dims: gpuDims, build: func(int) NodeSpec { return Spec(1, 1, 1) }},
		ProfileGPUBimodal: {dims: gpuDims, build: func(i int) NodeSpec {
			if i%4 == 0 {
				return Spec(1, 1, 2)
			}
			return Spec(1, 1, 0)
		}},
		ProfileBimodalPriced: {build: func(i int) NodeSpec {
			if i%2 == 0 {
				return Spec(2, 2).WithCost(3)
			}
			return Unit().WithCost(1)
		}},
	}
)

// RegisterProfile adds a named node-mix profile built from an explicit
// node inventory (e.g. one parsed by FromSpecs): the profile lays the
// specs out cyclically over any requested node count (node i receives
// specs[i mod len(specs)]), so an inventory describes a node-type pattern
// rather than one fixed cluster size, exactly like the built-in profiles.
// dims optionally names the dimensions (nil means the canonical names).
// Registration fails on an empty name, an empty inventory, a duplicate
// name, or specs of unequal dimension counts.
func RegisterProfile(name string, dims []string, specs []NodeSpec) error {
	if name == "" {
		return fmt.Errorf("cluster: empty profile name")
	}
	if len(specs) == 0 {
		return fmt.Errorf("cluster: profile %q has no node specs", name)
	}
	d := specs[0].Dims()
	for i, s := range specs {
		if s.Dims() != d {
			return fmt.Errorf("cluster: profile %q: node %d has %d dimensions, node 0 has %d", name, i, s.Dims(), d)
		}
	}
	if dims != nil && len(dims) != d {
		return fmt.Errorf("cluster: profile %q: %d dimension names for %d dimensions", name, len(dims), d)
	}
	owned := append([]NodeSpec(nil), specs...)
	var ownedDims []string
	if dims != nil {
		ownedDims = append([]string(nil), dims...)
	}
	profileMu.Lock()
	defer profileMu.Unlock()
	if _, dup := profileBuilders[name]; dup {
		return fmt.Errorf("cluster: duplicate registration of profile %q", name)
	}
	profileBuilders[name] = profile{
		dims:  ownedDims,
		build: func(i int) NodeSpec { return owned[i%len(owned)] },
	}
	return nil
}

// ProfileNames lists the canonical profile names, sorted.
func ProfileNames() []string {
	profileMu.RLock()
	defer profileMu.RUnlock()
	names := make([]string, 0, len(profileBuilders))
	for n := range profileBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NormalizeProfile maps a profile name to its canonical form: the empty
// string and "uniform" both canonicalize to "" (the homogeneous default, so
// campaign cell keys for homogeneous runs are identical with and without
// the heterogeneity axis); any other name is returned unchanged.
func NormalizeProfile(name string) string {
	if name == ProfileUniform {
		return ""
	}
	return name
}

// ValidProfile reports whether name denotes a known profile ("" counts as
// uniform).
func ValidProfile(name string) bool {
	if name == "" {
		return true
	}
	profileMu.RLock()
	defer profileMu.RUnlock()
	_, ok := profileBuilders[name]
	return ok
}

// Profile builds the named node-mix over n nodes. The empty name is the
// uniform (homogeneous) profile.
func Profile(name string, n int) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: profile %q needs a positive node count, got %d", name, n)
	}
	if name == "" {
		name = ProfileUniform
	}
	profileMu.RLock()
	p, ok := profileBuilders[name]
	profileMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cluster: unknown node-mix profile %q (known: %v)", name, ProfileNames())
	}
	nodes := make([]NodeSpec, n)
	for i := range nodes {
		nodes[i] = p.build(i)
	}
	c := &Cluster{Nodes: nodes}
	if p.dims != nil {
		c.DimNames = append([]string(nil), p.dims...)
	}
	return c, nil
}
