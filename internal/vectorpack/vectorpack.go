// Package vectorpack implements bi-dimensional vector packing heuristics for
// the DFRS resource-allocation problem: place tasks, each with a CPU
// requirement and a memory requirement (both fractions of one node), onto
// homogeneous nodes of capacity 1.0 x 1.0.
//
// The primary algorithm is MCB8, the multi-capacity bin-packing heuristic of
// Leinberger, Karypis and Kumar ("Multi-capacity bin packing algorithms with
// applications to job scheduling under multiple constraints", ICPP 1999) as
// used by Stillwell et al.: tasks are split into a CPU-heavy and a
// memory-heavy list, each sorted by non-increasing largest requirement, and
// nodes are filled one at a time, always picking the first fitting task from
// the list that goes against the node's current resource imbalance.
//
// First-fit-decreasing and best-fit-decreasing packers are provided as
// ablation baselines.
package vectorpack

import (
	"fmt"
	"sort"

	"repro/internal/floats"
)

// Item is one task to pack. CPU and Mem are fractions of a node in [0, 1].
// Items are identified by index so callers can map assignments back to
// (job, task) pairs.
type Item struct {
	CPU float64
	Mem float64
}

// Packer places items onto n unit-capacity nodes. Pack returns, for each
// item, the node index it was assigned to, and reports whether every item
// was placed. A failed pack returns a nil assignment.
type Packer interface {
	Name() string
	Pack(items []Item, n int) (assign []int, ok bool)
}

// Validate checks that an assignment respects both node capacities; it is
// used by tests and the simulator's paranoia mode. A nil error means the
// assignment is feasible.
func Validate(items []Item, assign []int, n int) error {
	if len(assign) != len(items) {
		return fmt.Errorf("vectorpack: %d assignments for %d items", len(assign), len(items))
	}
	cpu := make([]float64, n)
	mem := make([]float64, n)
	for i, node := range assign {
		if node < 0 || node >= n {
			return fmt.Errorf("vectorpack: item %d assigned to node %d of %d", i, node, n)
		}
		cpu[node] += items[i].CPU
		mem[node] += items[i].Mem
	}
	for node := 0; node < n; node++ {
		if floats.Greater(cpu[node], 1) {
			return fmt.Errorf("vectorpack: node %d CPU %.6f > 1", node, cpu[node])
		}
		if floats.Greater(mem[node], 1) {
			return fmt.Errorf("vectorpack: node %d memory %.6f > 1", node, mem[node])
		}
	}
	return nil
}

// MCB8 is the multi-capacity bin-packing heuristic used by every DYNMCB8
// scheduler variant. The zero value is ready to use.
type MCB8 struct{}

// Name returns "mcb8".
func (MCB8) Name() string { return "mcb8" }

// chain is a singly linked list over a sorted item order; placed items are
// unlinked in O(1) so repeated first-fit scans never revisit them.
type chain struct {
	order []int // item indices in sorted order
	next  []int // next[k] = position after k in the chain, len(order) = end
	head  int
}

func newChain(order []int) *chain {
	c := &chain{order: order, next: make([]int, len(order)), head: 0}
	for k := range c.next {
		c.next[k] = k + 1
	}
	return c
}

// headItem returns the first item index in the chain, or -1 if empty.
func (c *chain) headItem() int {
	if c.head >= len(c.order) {
		return -1
	}
	return c.order[c.head]
}

// firstFit finds the first chained item fitting (cpuFree, memFree), unlinks
// it and returns its item index, or -1.
func (c *chain) firstFit(items []Item, cpuFree, memFree float64) int {
	prev := -1
	for k := c.head; k < len(c.order); k = c.next[k] {
		idx := c.order[k]
		if floats.LessEq(items[idx].CPU, cpuFree) && floats.LessEq(items[idx].Mem, memFree) {
			if prev < 0 {
				c.head = c.next[k]
			} else {
				c.next[prev] = c.next[k]
			}
			return idx
		}
		prev = k
	}
	return -1
}

// unlinkHead removes the chain's first element.
func (c *chain) unlinkHead() {
	if c.head < len(c.order) {
		c.head = c.next[c.head]
	}
}

// Pack implements Packer.
func (MCB8) Pack(items []Item, n int) ([]int, bool) {
	if len(items) == 0 {
		return []int{}, true
	}
	// Split into CPU-heavy and memory-heavy lists; ties go to the CPU list
	// (arbitrary but fixed for determinism).
	var cpuHeavy, memHeavy []int
	for i, it := range items {
		if it.CPU >= it.Mem {
			cpuHeavy = append(cpuHeavy, i)
		} else {
			memHeavy = append(memHeavy, i)
		}
	}
	// Sort each list by non-increasing largest requirement; break ties by
	// index for determinism.
	byMaxReq := func(list []int) {
		sort.SliceStable(list, func(a, b int) bool {
			ma := max2(items[list[a]].CPU, items[list[a]].Mem)
			mb := max2(items[list[b]].CPU, items[list[b]].Mem)
			if ma != mb {
				return ma > mb
			}
			return list[a] < list[b]
		})
	}
	byMaxReq(cpuHeavy)
	byMaxReq(memHeavy)
	cpuChain := newChain(cpuHeavy)
	memChain := newChain(memHeavy)

	assign := make([]int, len(items))
	for i := range assign {
		assign[i] = -1
	}
	placed := 0
	for node := 0; node < n && placed < len(items); node++ {
		cpuFree, memFree := 1.0, 1.0
		// Seed the node with the head of either list, preferring the one
		// with the overall largest requirement (the original algorithm
		// picks arbitrarily; this choice is deterministic and matches
		// the sort order). Every item fits on an empty node.
		ch, cm := cpuChain.headItem(), memChain.headItem()
		var seed int
		var seedChain *chain
		switch {
		case ch < 0 && cm < 0:
			continue
		case cm < 0 || (ch >= 0 && max2(items[ch].CPU, items[ch].Mem) >= max2(items[cm].CPU, items[cm].Mem)):
			seed, seedChain = ch, cpuChain
		default:
			seed, seedChain = cm, memChain
		}
		seedChain.unlinkHead()
		assign[seed] = node
		cpuFree -= items[seed].CPU
		memFree -= items[seed].Mem
		placed++
		// Keep filling: pick from the list that goes against the node's
		// current imbalance.
		for {
			var primary, secondary *chain
			if cpuFree >= memFree {
				// More CPU headroom than memory: prefer a CPU-heavy task.
				primary, secondary = cpuChain, memChain
			} else {
				primary, secondary = memChain, cpuChain
			}
			idx := primary.firstFit(items, cpuFree, memFree)
			if idx < 0 {
				idx = secondary.firstFit(items, cpuFree, memFree)
			}
			if idx < 0 {
				break
			}
			assign[idx] = node
			cpuFree -= items[idx].CPU
			memFree -= items[idx].Mem
			placed++
		}
	}
	if placed < len(items) {
		return nil, false
	}
	return assign, true
}

// FirstFitDecreasing packs items in non-increasing order of their largest
// requirement onto the first node with room. Ablation baseline A3.
type FirstFitDecreasing struct{}

// Name returns "ffd".
func (FirstFitDecreasing) Name() string { return "ffd" }

// Pack implements Packer.
func (FirstFitDecreasing) Pack(items []Item, n int) ([]int, bool) {
	order := sortedByMaxReq(items)
	assign := make([]int, len(items))
	for i := range assign {
		assign[i] = -1
	}
	cpuFree := fullNodes(n)
	memFree := fullNodes(n)
	for _, idx := range order {
		placedNode := -1
		for node := 0; node < n; node++ {
			if floats.LessEq(items[idx].CPU, cpuFree[node]) && floats.LessEq(items[idx].Mem, memFree[node]) {
				placedNode = node
				break
			}
		}
		if placedNode < 0 {
			return nil, false
		}
		assign[idx] = placedNode
		cpuFree[placedNode] -= items[idx].CPU
		memFree[placedNode] -= items[idx].Mem
	}
	return assign, true
}

// BestFitDecreasing packs items in non-increasing order of largest
// requirement onto the feasible node with the least remaining slack
// (CPU+memory). Ablation baseline A3.
type BestFitDecreasing struct{}

// Name returns "bfd".
func (BestFitDecreasing) Name() string { return "bfd" }

// Pack implements Packer.
func (BestFitDecreasing) Pack(items []Item, n int) ([]int, bool) {
	order := sortedByMaxReq(items)
	assign := make([]int, len(items))
	for i := range assign {
		assign[i] = -1
	}
	cpuFree := fullNodes(n)
	memFree := fullNodes(n)
	for _, idx := range order {
		best := -1
		bestSlack := 3.0
		for node := 0; node < n; node++ {
			if !floats.LessEq(items[idx].CPU, cpuFree[node]) || !floats.LessEq(items[idx].Mem, memFree[node]) {
				continue
			}
			slack := cpuFree[node] - items[idx].CPU + memFree[node] - items[idx].Mem
			if slack < bestSlack {
				bestSlack = slack
				best = node
			}
		}
		if best < 0 {
			return nil, false
		}
		assign[idx] = best
		cpuFree[best] -= items[idx].CPU
		memFree[best] -= items[idx].Mem
	}
	return assign, true
}

// ByName returns the packer registered under name ("mcb8", "ffd", "bfd").
func ByName(name string) (Packer, error) {
	switch name {
	case "mcb8":
		return MCB8{}, nil
	case "ffd":
		return FirstFitDecreasing{}, nil
	case "bfd":
		return BestFitDecreasing{}, nil
	}
	return nil, fmt.Errorf("vectorpack: unknown packer %q", name)
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func sortedByMaxReq(items []Item) []int {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ma := max2(items[order[a]].CPU, items[order[a]].Mem)
		mb := max2(items[order[b]].CPU, items[order[b]].Mem)
		if ma != mb {
			return ma > mb
		}
		return order[a] < order[b]
	})
	return order
}

func fullNodes(n int) []float64 {
	f := make([]float64, n)
	for i := range f {
		f[i] = 1
	}
	return f
}
