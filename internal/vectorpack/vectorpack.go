// Package vectorpack implements d-dimensional vector packing heuristics for
// the DFRS resource-allocation problem: place tasks, each with a
// requirement vector over the cluster's resource dimensions (CPU, memory,
// and optionally GPU or further rigid resources, as fractions of the
// reference node), onto a cluster of nodes with individual capacity
// vectors (internal/cluster.NodeSpec). On the paper's homogeneous
// two-resource platform every bin is the 1.0 x 1.0 reference node and the
// heuristics reduce exactly to their published form; heterogeneous or
// higher-dimensional clusters simply present unequal, longer bins.
//
// The primary algorithm is MCB8, the multi-capacity bin-packing heuristic
// of Leinberger, Karypis and Kumar ("Multi-capacity bin packing algorithms
// with applications to job scheduling under multiple constraints", ICPP
// 1999) as used by Stillwell et al., generalized from two lists to d:
// every item is classified by its dominant dimension (the corner of the
// capacity space its requirement vector leans into), each of the d lists
// is sorted by non-increasing largest requirement, and nodes are filled
// one at a time, always trying lists in the order of the node's current
// per-dimension headroom so that the chosen item goes against the node's
// resource imbalance (the imbalance window). With d=2 this is exactly the
// published CPU-heavy/memory-heavy two-list scheme.
//
// On heterogeneous clusters all classification and sorting uses
// capacity-normalized requirements — each dimension divided by the
// cluster's mean per-node capacity in that dimension — so that "large" is
// judged relative to what the platform can hold, not in absolute reference
// units (absolute sorting misorders items when bins are unequal). On any
// cluster whose mean capacities are 1.0 — in particular the paper's
// homogeneous platform — normalization is exact identity and the packing
// is bit-for-bit the published one.
//
// First-fit-decreasing and best-fit-decreasing packers are provided as
// ablation baselines.
//
// Node choice is split from feasibility through the placement-objective
// layer (internal/placement): with an objective configured,
// FirstFitDecreasing and BestFitDecreasing route every bin choice through
// placement.Pick, and MCB8 opens bins in objective order (the within-bin
// imbalance-window fill is part of the algorithm and never delegated) — a
// cost objective therefore makes every packer fill cheap nodes first on
// priced inventories. With no objective the published loops run inlined;
// they are exactly the First (FFD) and BestFit (BFD, under the packers'
// mean-capacity normalization) objectives and the index bin order (MCB8),
// locked bit-for-bit by the frozen-copy tests.
//
// # Warm-start repacking
//
// DFRS schedulers call MCB8 on almost the same item set event after event:
// one arrival or completion perturbs a live set that otherwise repeats,
// and within one scheduler invocation the yield-optimization probes repack
// the identical set several times under different yields. RepackState
// exploits this. It caches the per-dimension sorted group orders of the
// previous pack and, on the next one, classifies the new groups, patches
// the cached orders in place when few groups changed (binary
// insertion/removal instead of a full sort), replays the previous
// assignment outright when the inputs are bitwise identical, and falls
// back to a full rebuild otherwise. Every patched order is verified
// against the sort invariant before use, so MCB8.PackWarm returns exactly
// the assignment MCB8.PackBuf would have — warm-starting is a pure
// time-for-memory trade, pinned by a differential property test and by
// the campaign-level byte-identity checks. The fill phase itself walks
// per-dimension block-skip lists (group chains with 64-group blocks
// carrying component minima and live bitmaps), so a node that cannot hold
// any group of a block skips the whole block, and the sorted-key jump
// proves the own dimension fits before any member test.
package vectorpack

import (
	"fmt"
	"math"
	"math/bits"
	"slices"
	"sort"

	"repro/internal/cluster"
	"repro/internal/floats"
	"repro/internal/placement"
)

// Item is one task to pack. Req holds one requirement per cluster
// dimension (Req[cluster.DimCPU], Req[cluster.DimMem], ...), as fractions
// of the reference node. Items are identified by index so callers can map
// assignments back to (job, task) pairs; items of one job may share the
// same backing Req vector.
type Item struct {
	Req cluster.Vec
}

// NewItem builds an item from explicit requirements; the first two are CPU
// and memory.
func NewItem(req ...float64) Item {
	return Item{Req: append(cluster.Vec(nil), req...)}
}

// Packer places items onto the given nodes (one NodeSpec per bin). Pack
// returns, for each item, the node index it was assigned to, and reports
// whether every item was placed. A failed pack returns a nil assignment.
// Every item's Req must have exactly the nodes' dimension count.
type Packer interface {
	Name() string
	Pack(items []Item, nodes []cluster.NodeSpec) (assign []int, ok bool)
}

// Validate checks that an assignment respects every node's capacities in
// every dimension; it is used by tests and the simulator's paranoia mode.
// A nil error means the assignment is feasible.
func Validate(items []Item, assign []int, nodes []cluster.NodeSpec) error {
	if len(assign) != len(items) {
		return fmt.Errorf("vectorpack: %d assignments for %d items", len(assign), len(items))
	}
	n := len(nodes)
	d := dims(nodes)
	used := make([]float64, n*d)
	for i, node := range assign {
		if node < 0 || node >= n {
			return fmt.Errorf("vectorpack: item %d assigned to node %d of %d", i, node, n)
		}
		if len(items[i].Req) != d {
			return fmt.Errorf("vectorpack: item %d has %d dimensions, nodes have %d", i, len(items[i].Req), d)
		}
		for k := 0; k < d; k++ {
			used[node*d+k] += items[i].Req[k]
		}
	}
	for node := 0; node < n; node++ {
		for k := 0; k < d; k++ {
			if floats.Greater(used[node*d+k], nodes[node].Caps[k]) {
				return fmt.Errorf("vectorpack: node %d dimension %d usage %.6f > capacity %.6f",
					node, k, used[node*d+k], nodes[node].Caps[k])
			}
		}
	}
	return nil
}

// dims returns the dimension count of the bin set (cluster.MinDims when
// empty).
func dims(nodes []cluster.NodeSpec) int {
	if len(nodes) == 0 {
		return cluster.MinDims
	}
	return nodes[0].Dims()
}

// meanCaps returns the per-dimension mean node capacity, the normalization
// the heuristics sort by. Dimensions with non-positive mean capacity (a
// resource no node has) normalize by 1 so zero demands stay zero instead
// of NaN. On the paper's homogeneous platform every entry is exactly 1.0
// and normalization is the identity.
func meanCaps(nodes []cluster.NodeSpec) cluster.Vec {
	return meanCapsInto(nodes, make(cluster.Vec, dims(nodes)))
}

// meanCapsInto is meanCaps computing into a caller-provided d-sized vector.
func meanCapsInto(nodes []cluster.NodeSpec, norm cluster.Vec) cluster.Vec {
	d := len(norm)
	for k := range norm {
		norm[k] = 0
	}
	for _, n := range nodes {
		for k := 0; k < d; k++ {
			norm[k] += n.Caps[k]
		}
	}
	for k := 0; k < d; k++ {
		norm[k] /= float64(len(nodes))
		if !(norm[k] > 0) {
			norm[k] = 1
		}
	}
	return norm
}

// normMax returns the item's largest capacity-normalized requirement, the
// sort key of every heuristic, and the dimension attaining it (ties go to
// the lowest dimension index, keeping the d=2 tie rule "CPU-heavy wins").
func normMax(req, norm cluster.Vec) (float64, int) {
	best, bestDim := math.Inf(-1), 0
	for k := range req {
		if v := req[k] / norm[k]; v > best {
			best, bestDim = v, k
		}
	}
	return best, bestDim
}

// fits reports whether the requirement vector fits the free vector in
// every dimension. The d=2 case — the paper's platform, and the packing
// hot path — is unrolled.
func fits(req cluster.Vec, free []float64) bool {
	if len(req) == 2 {
		return floats.LessEq(req[0], free[0]) && floats.LessEq(req[1], free[1])
	}
	for k := range req {
		if !floats.LessEq(req[k], free[k]) {
			return false
		}
	}
	return true
}

// fitsExcept is fits with one dimension already proven to fit (the chain
// scan's own dimension, established by the sorted-key jump in findFit).
func fitsExcept(req, free []float64, skip int) bool {
	if len(req) == 2 {
		o := 1 - skip
		return floats.LessEq(req[o], free[o])
	}
	for k := range req {
		if k != skip && !floats.LessEq(req[k], free[k]) {
			return false
		}
	}
	return true
}

// ObjectiveAware is implemented by packers whose node choice can be
// steered by a placement objective; the DYNMCB8 schedulers use it to
// thread the run's configured objective into their packer.
type ObjectiveAware interface {
	// WithObjective returns a copy of the packer applying the objective
	// (nil restores the published default).
	WithObjective(placement.Objective) Packer
}

// packState adapts a packer's free-capacity matrix (row-major, stride d)
// to placement.State. Cap returns the packing normalization — the
// cluster's mean per-dimension capacity, the same normalization the
// decreasing-order sorts use — so bestfit/worstfit slack is measured in
// the packers' canonical units; on the paper's homogeneous platform the
// normalization is the identity and Cap is the true node capacity.
type packState struct {
	d     int
	specs []cluster.NodeSpec
	free  []float64
	norm  cluster.Vec
}

// Dims implements placement.State.
func (s packState) Dims() int { return s.d }

// Cap implements placement.State (see packState).
func (s packState) Cap(node, k int) float64 { return s.norm[k] }

// Free implements placement.State.
func (s packState) Free(node, k int) float64 { return s.free[node*s.d+k] }

// CPULoad implements placement.State: the CPU already packed into the bin.
func (s packState) CPULoad(node int) float64 { return s.specs[node].Cap(0) - s.free[node*s.d] }

// Cost implements placement.State.
func (s packState) Cost(node int) float64 { return s.specs[node].Cost }

// vecDemand adapts a requirement vector to placement.Demand.
func vecDemand(req cluster.Vec) placement.Demand {
	return func(k int) float64 { return req[k] }
}

// MCB8 is the multi-capacity bin-packing heuristic used by every DYNMCB8
// scheduler variant, generalized to d dimensions. The zero value is ready
// to use. Objective, when non-nil, selects the order in which bins are
// opened (ascending score on the empty bin, ties by index); the default is
// the published index order.
type MCB8 struct {
	Objective placement.Objective
}

// Name returns "mcb8".
func (MCB8) Name() string { return "mcb8" }

// WithObjective implements ObjectiveAware.
func (m MCB8) WithObjective(obj placement.Objective) Packer {
	m.Objective = obj
	return m
}

// PackBuffer holds the scratch state of one MCB8.PackBuf call so repeated
// packings — the min-yield binary search runs dozens per scheduling event —
// reuse their allocations. The zero value is ready; a buffer must not be
// shared between concurrent packings. The assignment returned by PackBuf
// aliases the buffer and is only valid until the next PackBuf call with the
// same buffer.
type PackBuffer struct {
	assign   []int
	norm     cluster.Vec
	gFirst   []int // group -> index of its first (lowest) item
	gCount   []int // group -> number of items
	gUsed    []int // group -> items already placed this packing
	gMax     []float64
	gHeavy   []int
	listMem  []int // backing for the d per-dimension group lists
	listLen  []int
	listOff  []int
	listFill []int
	chains   []groupChain
	free     []float64
	dimOrder []int
}

// chainBlock is the block size of groupChain's skip structure; a power of
// two so position→block is a shift.
const (
	chainShift = 6
	chainBlock = 1 << chainShift
)

// groupChain walks a sorted group order in blocks of chainBlock
// positions. Each block keeps the component-wise minimum requirement over
// its groups (computed once at reset — exhausting a group can only raise
// the true minimum, so the cached value stays a valid lower bound) and a
// bitmap of non-exhausted groups, so a first-fit scan skips a whole block
// in O(1) when the block's minimum cannot fit the free vector or no group
// in it is live, and within a visited block only live groups are touched.
// The scan resumes from a per-node mark: a node's free vector only
// shrinks while it is being filled, so positions that failed under a
// larger free vector can never fit it again and are never revisited
// (startNode rewinds the mark when a fresh node is opened). Every prune
// is exact — it only skips groups proven unable to fit — so the walk
// returns precisely the first fitting group of the published scan order.
type groupChain struct {
	order []int     // group ids in sorted order
	keys  []float64 // raw requirement in the list's own dimension, per position (non-increasing)
	bMin  []float64 // per block, stride d: min requirement over the block's groups
	bBits []uint64  // per block: bit q set = group at position blk*64+q live
	d     int
	dim   int // the dimension this list is sorted by
	mark  int
}

func (c *groupChain) reset(order []int, b *PackBuffer, items []Item, d, dim int) {
	c.order = order
	c.d = d
	c.dim = dim
	c.mark = 0
	if cap(c.keys) < len(order) {
		c.keys = make([]float64, len(order))
	}
	c.keys = c.keys[:len(order)]
	for q, g := range order {
		c.keys[q] = items[b.gFirst[g]].Req[dim]
	}
	nb := (len(order) + chainBlock - 1) >> chainShift
	if cap(c.bMin) < nb*d {
		c.bMin = make([]float64, nb*d)
	}
	c.bMin = c.bMin[:nb*d]
	if cap(c.bBits) < nb {
		c.bBits = make([]uint64, nb)
	}
	c.bBits = c.bBits[:nb]
	for blk := 0; blk < nb; blk++ {
		lo, hi := blk<<chainShift, (blk+1)<<chainShift
		if hi > len(order) {
			hi = len(order)
		}
		if hi-lo == chainBlock {
			c.bBits[blk] = ^uint64(0)
		} else {
			c.bBits[blk] = (uint64(1) << (hi - lo)) - 1
		}
		mn := c.bMin[blk*d : (blk+1)*d]
		copy(mn, items[b.gFirst[order[lo]]].Req)
		for q := lo + 1; q < hi; q++ {
			req := items[b.gFirst[order[q]]].Req
			for j := 0; j < d; j++ {
				if req[j] < mn[j] {
					mn[j] = req[j]
				}
			}
		}
	}
}

// startNode rewinds the scan mark to the start of the order for a freshly
// opened node.
func (c *groupChain) startNode() { c.mark = 0 }

// findFit returns the position of the first live group fitting the free
// vector, or -1. All items of a group share one requirement vector, so
// one fits test covers the whole group. The list is sorted non-increasing
// in its own dimension, so every position before the first one whose key
// fits free in that dimension provably fails; a binary search jumps the
// scan straight to that suffix. Past the jump every key fits the own
// dimension (the keys only decrease), so the scan tests only the other
// d-1 dimensions.
func (c *groupChain) findFit(b *PackBuffer, items []Item, free []float64) int {
	n := len(c.order)
	d := c.d
	q := c.mark
	if q < n && !floats.LessEq(c.keys[q], free[c.dim]) {
		q += sort.Search(n-q, func(i int) bool {
			return floats.LessEq(c.keys[q+i], free[c.dim])
		})
		c.mark = q // the skipped prefix can never fit this node again
	}
	for q < n {
		blk := q >> chainShift
		w := c.bBits[blk] &^ ((uint64(1) << (q & (chainBlock - 1))) - 1)
		if w == 0 || !fitsExcept(c.bMin[blk*d:(blk+1)*d], free, c.dim) {
			q = (blk + 1) << chainShift
			continue
		}
		for w != 0 {
			pos := blk<<chainShift + bits.TrailingZeros64(w)
			if fitsExcept(items[b.gFirst[c.order[pos]]].Req, free, c.dim) {
				c.mark = pos
				return pos
			}
			w &= w - 1
		}
		q = (blk + 1) << chainShift
	}
	c.mark = n
	return -1
}

// take consumes the next item of the group at position pos (items of a
// group are handed out in ascending index order, exactly the tie-by-index
// order of the per-item formulation) and clears the group's live bit once
// empty.
func (b *PackBuffer) take(list, pos int) int {
	c := &b.chains[list]
	g := c.order[pos]
	item := b.gFirst[g] + b.gUsed[g]
	b.gUsed[g]++
	if b.gUsed[g] == b.gCount[g] {
		c.bBits[pos>>chainShift] &^= uint64(1) << (pos & (chainBlock - 1))
	}
	return item
}

// Pack implements Packer.
func (m MCB8) Pack(items []Item, nodes []cluster.NodeSpec) ([]int, bool) {
	var b PackBuffer
	assign, ok := m.PackBuf(items, nodes, &b)
	if !ok {
		return nil, false
	}
	return assign, ok
}

// PackBuf is Pack with caller-provided scratch. Runs of consecutive items
// sharing one requirement vector (all tasks of one job, as built by the
// core allocators) are collapsed into a single group, so the classify/sort/
// first-fit machinery works on O(jobs) groups instead of O(tasks) items;
// items that share nothing degrade to singleton groups and reproduce the
// per-item algorithm exactly. The returned assignment aliases buf.
func (m MCB8) PackBuf(items []Item, nodes []cluster.NodeSpec, b *PackBuffer) ([]int, bool) {
	if len(items) == 0 {
		return []int{}, true
	}
	if len(nodes) == 0 {
		return nil, false
	}
	d := dims(nodes)
	norm := meanCapsInto(nodes, b.normBuf(d))
	// Collapse adjacent items with the same backing requirement vector
	// into groups, classify every group by its dominant (largest
	// capacity-normalized) dimension — the corner of the capacity space it
	// leans into — and remember its sort key. Ties go to the lowest
	// dimension, so with d=2 an equal-requirement group counts as
	// CPU-heavy, as published.
	b.gFirst, b.gCount, b.gUsed, b.gMax = b.gFirst[:0], b.gCount[:0], b.gUsed[:0], b.gMax[:0]
	b.gHeavy = b.gHeavy[:0]
	if cap(b.listLen) < d {
		b.listLen = make([]int, d)
		b.listOff = make([]int, d+1)
		b.listFill = make([]int, d)
	}
	b.listLen, b.listOff, b.listFill = b.listLen[:d], b.listOff[:d+1], b.listFill[:d]
	for k := range b.listLen {
		b.listLen[k] = 0
	}
	for i := 0; i < len(items); {
		req := items[i].Req
		j := i + 1
		if len(req) > 0 {
			for j < len(items) && len(items[j].Req) == len(req) && &items[j].Req[0] == &req[0] {
				j++
			}
		}
		mx, heavy := normMax(req, norm)
		b.gFirst = append(b.gFirst, i)
		b.gCount = append(b.gCount, j-i)
		b.gUsed = append(b.gUsed, 0)
		b.gMax = append(b.gMax, mx)
		b.gHeavy = append(b.gHeavy, heavy)
		b.listLen[heavy]++
		i = j
	}
	// Bucket the groups into the d per-dimension lists (one shared backing
	// array, offsets from the counts) and sort each list by non-increasing
	// largest normalized requirement, ties by first item index — the exact
	// expansion of the per-item (key desc, index asc) order, since a
	// group's items occupy consecutive indices.
	if cap(b.listMem) < len(b.gFirst) {
		b.listMem = make([]int, len(b.gFirst))
	}
	b.listMem = b.listMem[:len(b.gFirst)]
	off := b.listOff
	off[0] = 0
	for k := 0; k < d; k++ {
		off[k+1] = off[k] + b.listLen[k]
		b.listFill[k] = off[k]
	}
	for g, heavy := range b.gHeavy {
		b.listMem[b.listFill[heavy]] = g
		b.listFill[heavy]++
	}
	if cap(b.chains) < d {
		b.chains = make([]groupChain, d)
	}
	b.chains = b.chains[:d]
	for k := 0; k < d; k++ {
		list := b.listMem[off[k]:off[k+1]]
		slices.SortFunc(list, func(ga, gb int) int {
			if b.gMax[ga] != b.gMax[gb] {
				if b.gMax[ga] > b.gMax[gb] {
					return -1
				}
				return 1
			}
			return b.gFirst[ga] - b.gFirst[gb]
		})
		b.chains[k].reset(list, b, items, d, k)
	}
	return m.fill(items, nodes, d, norm, b)
}

// fill runs the bin-filling phase shared by PackBuf and PackWarm: the
// chains in b hold each dimension's group list in (key desc, first-item
// asc) order, and the loop below is the only consumer of that order, so
// any preparation that reproduces the same sorted lists reproduces the
// same assignment.
func (m MCB8) fill(items []Item, nodes []cluster.NodeSpec, d int, norm cluster.Vec, b *PackBuffer) ([]int, bool) {
	if cap(b.assign) < len(items) {
		b.assign = make([]int, len(items))
	}
	assign := b.assign[:len(items)]
	for i := range assign {
		assign[i] = -1
	}
	if cap(b.free) < d {
		b.free = make([]float64, d)
		b.dimOrder = make([]int, d)
	}
	free, dimOrder := b.free[:d], b.dimOrder[:d]
	placed := 0
	// The published kernel opens bins in index order; only a configured
	// objective pays for an explicit order (Pack sits inside the min-yield
	// binary search, so the nil path must not allocate in steady state).
	var order []int
	if m.Objective != nil {
		order = binOrder(m.Objective, nodes, d, norm)
	}
	for bi := 0; bi < len(nodes) && placed < len(items); bi++ {
		node := bi
		if order != nil {
			node = order[bi]
		}
		caps := nodes[node].Caps
		copy(free, caps)
		for k := 0; k < d; k++ {
			b.chains[k].startNode()
		}
		// Seed the node with the first fitting item of any list,
		// preferring the one with the overall largest normalized
		// requirement (the original algorithm picks arbitrarily; this
		// choice is deterministic and matches the sort order — ties go to
		// the lowest list, the published CPU-first rule). On a reference
		// node every item fits, so each list's candidate is its head and
		// the behaviour is identical to the homogeneous algorithm; a thin
		// node may have to skip items too large for it.
		seedList, seedPos := -1, -1
		best := math.Inf(-1)
		for k := 0; k < d; k++ {
			pos := b.chains[k].findFit(b, items, free)
			if pos < 0 {
				continue
			}
			if g := b.chains[k].order[pos]; b.gMax[g] > best {
				best = b.gMax[g]
				seedList, seedPos = k, pos
			}
		}
		if seedList < 0 {
			continue
		}
		seed := b.take(seedList, seedPos)
		assign[seed] = node
		for k := 0; k < d; k++ {
			free[k] -= items[seed].Req[k]
		}
		placed++
		// Keep filling: try the lists in order of the node's remaining
		// per-dimension headroom, measured relative to the node's own
		// capacities, so the chosen item goes against the current
		// imbalance (on equal-ratio nodes — every built-in d=2 profile and
		// the reference node — this is exactly the absolute comparison of
		// the published algorithm; ties keep the lower dimension first,
		// the published CPU-primary rule).
		for {
			headroomOrder(free, caps, dimOrder)
			idx := -1
			for _, k := range dimOrder {
				if pos := b.chains[k].findFit(b, items, free); pos >= 0 {
					idx = b.take(k, pos)
					break
				}
			}
			if idx < 0 {
				break
			}
			assign[idx] = node
			for k := 0; k < d; k++ {
				free[k] -= items[idx].Req[k]
			}
			placed++
		}
	}
	if placed < len(items) {
		return nil, false
	}
	return assign, true
}

// normBuf returns the buffer's d-sized normalization scratch.
func (b *PackBuffer) normBuf(d int) cluster.Vec {
	if cap(b.norm) < d {
		b.norm = make(cluster.Vec, d)
	}
	b.norm = b.norm[:d]
	return b.norm
}

// binIndices is the identity bin order of the published kernels.
func binIndices(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// binOrder returns the order in which a packer opens bins: the published
// index order when obj is nil, otherwise ascending objective score on the
// empty bin (zero demand), ties by index — so a cost objective opens cheap
// bins first while score-uniform objectives keep the published order.
func binOrder(obj placement.Objective, nodes []cluster.NodeSpec, d int, norm cluster.Vec) []int {
	if obj == nil {
		return binIndices(len(nodes))
	}
	st := packState{d: d, specs: nodes, free: freeCaps(nodes, d), norm: norm}
	return placement.Rank(binIndices(len(nodes)), placement.ZeroDemand, st, obj)
}

// headroomOrder fills order with the dimension indices sorted by
// non-increasing relative headroom free[k]/caps[k]; ties keep the lower
// dimension first (insertion sort with strict comparison — d is small).
// Zero-capacity dimensions (a node without that resource) have no headroom
// and sort last.
func headroomOrder(free []float64, caps cluster.Vec, order []int) {
	ratio := func(k int) float64 {
		if caps[k] > 0 {
			return free[k] / caps[k]
		}
		return math.Inf(-1)
	}
	for k := range order {
		order[k] = k
	}
	for i := 1; i < len(order); i++ {
		k := order[i]
		r := ratio(k)
		j := i - 1
		for j >= 0 && ratio(order[j]) < r {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = k
	}
}

// FirstFitDecreasing packs items in non-increasing order of their largest
// capacity-normalized requirement onto the first node with room in every
// dimension. Ablation baseline A3. The node choice routes through the
// placement layer: the published first-fit rule is exactly the First
// objective (the zero value's default), and a configured objective (cost,
// bestfit, ...) replaces it under the same feasibility filter.
type FirstFitDecreasing struct {
	Objective placement.Objective
}

// Name returns "ffd".
func (FirstFitDecreasing) Name() string { return "ffd" }

// WithObjective implements ObjectiveAware.
func (p FirstFitDecreasing) WithObjective(obj placement.Objective) Packer {
	p.Objective = obj
	return p
}

// Pack implements Packer. The nil-objective path is the published
// first-fit loop inlined (it sits inside DYNMCB8 binary searches, where
// the scoring indirection is measurable); it is exactly the First
// objective, locked bit-for-bit by TestPackersMatchFrozenPR4Copies.
func (p FirstFitDecreasing) Pack(items []Item, nodes []cluster.NodeSpec) ([]int, bool) {
	if p.Objective != nil {
		return packDecreasing(items, nodes, p.Objective)
	}
	d := dims(nodes)
	norm := meanCaps(nodes)
	order := sortedByNormMax(items, norm)
	assign := make([]int, len(items))
	for i := range assign {
		assign[i] = -1
	}
	free := freeCaps(nodes, d)
	for _, idx := range order {
		placedNode := -1
		for node := range nodes {
			if fits(items[idx].Req, free[node*d:(node+1)*d]) {
				placedNode = node
				break
			}
		}
		if placedNode < 0 {
			return nil, false
		}
		assign[idx] = placedNode
		for k := 0; k < d; k++ {
			free[placedNode*d+k] -= items[idx].Req[k]
		}
	}
	return assign, true
}

// BestFitDecreasing packs items in non-increasing order of largest
// capacity-normalized requirement onto the feasible node with the least
// remaining slack (the normalized sum of leftover capacities). Ablation
// baseline A3. The node choice routes through the placement layer: the
// published slack rule is exactly the BestFit objective under the packers'
// mean-capacity normalization (the zero value's default), and a configured
// objective replaces it under the same feasibility filter.
type BestFitDecreasing struct {
	Objective placement.Objective
}

// Name returns "bfd".
func (BestFitDecreasing) Name() string { return "bfd" }

// WithObjective implements ObjectiveAware.
func (p BestFitDecreasing) WithObjective(obj placement.Objective) Packer {
	p.Objective = obj
	return p
}

// Pack implements Packer. The nil-objective path is the published
// best-fit loop inlined (see FirstFitDecreasing.Pack); it is exactly the
// BestFit objective under the packers' mean-capacity normalization, locked
// bit-for-bit by TestPackersMatchFrozenPR4Copies.
func (p BestFitDecreasing) Pack(items []Item, nodes []cluster.NodeSpec) ([]int, bool) {
	if p.Objective != nil {
		return packDecreasing(items, nodes, p.Objective)
	}
	d := dims(nodes)
	norm := meanCaps(nodes)
	order := sortedByNormMax(items, norm)
	assign := make([]int, len(items))
	for i := range assign {
		assign[i] = -1
	}
	free := freeCaps(nodes, d)
	for _, idx := range order {
		best := -1
		bestSlack := math.Inf(1)
		for node := range nodes {
			nodeFree := free[node*d : (node+1)*d]
			if !fits(items[idx].Req, nodeFree) {
				continue
			}
			slack := 0.0
			for k := 0; k < d; k++ {
				slack += (nodeFree[k] - items[idx].Req[k]) / norm[k]
			}
			if slack < bestSlack {
				bestSlack = slack
				best = node
			}
		}
		if best < 0 {
			return nil, false
		}
		assign[idx] = best
		for k := 0; k < d; k++ {
			free[best*d+k] -= items[idx].Req[k]
		}
	}
	return assign, true
}

// packDecreasing is the shared decreasing-order packing loop of FFD/BFD:
// items in non-increasing largest-normalized-requirement order, each
// placed on the feasible node minimizing the objective score (ties to the
// lowest index).
func packDecreasing(items []Item, nodes []cluster.NodeSpec, obj placement.Objective) ([]int, bool) {
	d := dims(nodes)
	norm := meanCaps(nodes)
	order := sortedByNormMax(items, norm)
	assign := make([]int, len(items))
	for i := range assign {
		assign[i] = -1
	}
	st := packState{d: d, specs: nodes, free: freeCaps(nodes, d), norm: norm}
	for _, idx := range order {
		req := items[idx].Req
		feasible := func(node int) bool {
			return fits(req, st.free[node*d:(node+1)*d])
		}
		best := placement.Pick(len(nodes), vecDemand(req), st, feasible, obj)
		if best < 0 {
			return nil, false
		}
		assign[idx] = best
		for k := 0; k < d; k++ {
			st.free[best*d+k] -= req[k]
		}
	}
	return assign, true
}

// ByName returns the packer registered under name ("mcb8", "ffd", "bfd").
func ByName(name string) (Packer, error) {
	switch name {
	case "mcb8":
		return MCB8{}, nil
	case "ffd":
		return FirstFitDecreasing{}, nil
	case "bfd":
		return BestFitDecreasing{}, nil
	}
	return nil, fmt.Errorf("vectorpack: unknown packer %q", name)
}

// sortedByNormMax returns item indices by non-increasing largest
// normalized requirement, ties by index.
func sortedByNormMax(items []Item, norm cluster.Vec) []int {
	keys := make([]float64, len(items))
	for i, it := range items {
		keys[i], _ = normMax(it.Req, norm)
	}
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if keys[order[a]] != keys[order[b]] {
			return keys[order[a]] > keys[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// freeCaps returns the per-node free-capacity matrix (row-major, stride d)
// initialized to each node's capacities.
func freeCaps(nodes []cluster.NodeSpec, d int) []float64 {
	free := make([]float64, len(nodes)*d)
	for i, n := range nodes {
		copy(free[i*d:(i+1)*d], n.Caps)
	}
	return free
}
