// Package vectorpack implements bi-dimensional vector packing heuristics for
// the DFRS resource-allocation problem: place tasks, each with a CPU
// requirement and a memory requirement (fractions of the reference node),
// onto a cluster of nodes with individual CPU and memory capacities
// (internal/cluster.NodeSpec). On the paper's homogeneous platform every
// bin is the 1.0 x 1.0 reference node and the heuristics reduce exactly to
// their published form; heterogeneous clusters simply present unequal bins.
//
// The primary algorithm is MCB8, the multi-capacity bin-packing heuristic of
// Leinberger, Karypis and Kumar ("Multi-capacity bin packing algorithms with
// applications to job scheduling under multiple constraints", ICPP 1999) as
// used by Stillwell et al.: tasks are split into a CPU-heavy and a
// memory-heavy list, each sorted by non-increasing largest requirement, and
// nodes are filled one at a time, always picking the first fitting task from
// the list that goes against the node's current resource imbalance.
//
// First-fit-decreasing and best-fit-decreasing packers are provided as
// ablation baselines.
package vectorpack

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/floats"
)

// Item is one task to pack. CPU and Mem are fractions of the reference node
// in [0, 1]. Items are identified by index so callers can map assignments
// back to (job, task) pairs.
type Item struct {
	CPU float64
	Mem float64
}

// Packer places items onto the given nodes (one NodeSpec per bin). Pack
// returns, for each item, the node index it was assigned to, and reports
// whether every item was placed. A failed pack returns a nil assignment.
type Packer interface {
	Name() string
	Pack(items []Item, nodes []cluster.NodeSpec) (assign []int, ok bool)
}

// Validate checks that an assignment respects every node's capacities; it
// is used by tests and the simulator's paranoia mode. A nil error means the
// assignment is feasible.
func Validate(items []Item, assign []int, nodes []cluster.NodeSpec) error {
	if len(assign) != len(items) {
		return fmt.Errorf("vectorpack: %d assignments for %d items", len(assign), len(items))
	}
	n := len(nodes)
	cpu := make([]float64, n)
	mem := make([]float64, n)
	for i, node := range assign {
		if node < 0 || node >= n {
			return fmt.Errorf("vectorpack: item %d assigned to node %d of %d", i, node, n)
		}
		cpu[node] += items[i].CPU
		mem[node] += items[i].Mem
	}
	for node := 0; node < n; node++ {
		if floats.Greater(cpu[node], nodes[node].CPUCap) {
			return fmt.Errorf("vectorpack: node %d CPU %.6f > capacity %.6f", node, cpu[node], nodes[node].CPUCap)
		}
		if floats.Greater(mem[node], nodes[node].MemCap) {
			return fmt.Errorf("vectorpack: node %d memory %.6f > capacity %.6f", node, mem[node], nodes[node].MemCap)
		}
	}
	return nil
}

// MCB8 is the multi-capacity bin-packing heuristic used by every DYNMCB8
// scheduler variant. The zero value is ready to use.
type MCB8 struct{}

// Name returns "mcb8".
func (MCB8) Name() string { return "mcb8" }

// chain is a singly linked list over a sorted item order; placed items are
// unlinked in O(1) so repeated first-fit scans never revisit them.
type chain struct {
	order []int // item indices in sorted order
	next  []int // next[k] = position after k in the chain, len(order) = end
	head  int
}

func newChain(order []int) *chain {
	c := &chain{order: order, next: make([]int, len(order)), head: 0}
	for k := range c.next {
		c.next[k] = k + 1
	}
	return c
}

// findFit returns the chain position (and its predecessor) of the first
// chained item fitting (cpuFree, memFree), or (-1, -1).
func (c *chain) findFit(items []Item, cpuFree, memFree float64) (pos, prev int) {
	prev = -1
	for k := c.head; k < len(c.order); k = c.next[k] {
		idx := c.order[k]
		if floats.LessEq(items[idx].CPU, cpuFree) && floats.LessEq(items[idx].Mem, memFree) {
			return k, prev
		}
		prev = k
	}
	return -1, -1
}

// unlink removes position pos (whose predecessor is prev, -1 for the head)
// from the chain.
func (c *chain) unlink(pos, prev int) {
	if prev < 0 {
		c.head = c.next[pos]
	} else {
		c.next[prev] = c.next[pos]
	}
}

// firstFit finds the first chained item fitting (cpuFree, memFree), unlinks
// it and returns its item index, or -1.
func (c *chain) firstFit(items []Item, cpuFree, memFree float64) int {
	pos, prev := c.findFit(items, cpuFree, memFree)
	if pos < 0 {
		return -1
	}
	c.unlink(pos, prev)
	return c.order[pos]
}

// Pack implements Packer.
func (MCB8) Pack(items []Item, nodes []cluster.NodeSpec) ([]int, bool) {
	if len(items) == 0 {
		return []int{}, true
	}
	// Split into CPU-heavy and memory-heavy lists; ties go to the CPU list
	// (arbitrary but fixed for determinism).
	var cpuHeavy, memHeavy []int
	for i, it := range items {
		if it.CPU >= it.Mem {
			cpuHeavy = append(cpuHeavy, i)
		} else {
			memHeavy = append(memHeavy, i)
		}
	}
	// Sort each list by non-increasing largest requirement; break ties by
	// index for determinism.
	byMaxReq := func(list []int) {
		sort.SliceStable(list, func(a, b int) bool {
			ma := max2(items[list[a]].CPU, items[list[a]].Mem)
			mb := max2(items[list[b]].CPU, items[list[b]].Mem)
			if ma != mb {
				return ma > mb
			}
			return list[a] < list[b]
		})
	}
	byMaxReq(cpuHeavy)
	byMaxReq(memHeavy)
	cpuChain := newChain(cpuHeavy)
	memChain := newChain(memHeavy)

	assign := make([]int, len(items))
	for i := range assign {
		assign[i] = -1
	}
	placed := 0
	for node := 0; node < len(nodes) && placed < len(items); node++ {
		cpuFree, memFree := nodes[node].CPUCap, nodes[node].MemCap
		// Seed the node with the first item of either list that fits its
		// capacities, preferring the one with the overall largest
		// requirement (the original algorithm picks arbitrarily; this choice
		// is deterministic and matches the sort order). On a reference node
		// every item fits, so the first fitting item is the list head and
		// the behaviour is identical to the homogeneous algorithm; a thin
		// node may have to skip items too large for it.
		cPos, cPrev := cpuChain.findFit(items, cpuFree, memFree)
		mPos, mPrev := memChain.findFit(items, cpuFree, memFree)
		var seed int
		switch {
		case cPos < 0 && mPos < 0:
			continue
		case mPos < 0 || (cPos >= 0 && itemMax(items, cpuChain, cPos) >= itemMax(items, memChain, mPos)):
			seed = cpuChain.order[cPos]
			cpuChain.unlink(cPos, cPrev)
		default:
			seed = memChain.order[mPos]
			memChain.unlink(mPos, mPrev)
		}
		assign[seed] = node
		cpuFree -= items[seed].CPU
		memFree -= items[seed].Mem
		placed++
		// Keep filling: pick from the list that goes against the node's
		// current imbalance, measured relative to the node's own capacities
		// (on equal-ratio nodes — every built-in profile and the reference
		// node — this is exactly the absolute comparison of the published
		// algorithm).
		for {
			var primary, secondary *chain
			if cpuFree/nodes[node].CPUCap >= memFree/nodes[node].MemCap {
				// More CPU headroom than memory: prefer a CPU-heavy task.
				primary, secondary = cpuChain, memChain
			} else {
				primary, secondary = memChain, cpuChain
			}
			idx := primary.firstFit(items, cpuFree, memFree)
			if idx < 0 {
				idx = secondary.firstFit(items, cpuFree, memFree)
			}
			if idx < 0 {
				break
			}
			assign[idx] = node
			cpuFree -= items[idx].CPU
			memFree -= items[idx].Mem
			placed++
		}
	}
	if placed < len(items) {
		return nil, false
	}
	return assign, true
}

// itemMax returns the largest requirement of the item at chain position pos.
func itemMax(items []Item, c *chain, pos int) float64 {
	it := items[c.order[pos]]
	return max2(it.CPU, it.Mem)
}

// FirstFitDecreasing packs items in non-increasing order of their largest
// requirement onto the first node with room. Ablation baseline A3.
type FirstFitDecreasing struct{}

// Name returns "ffd".
func (FirstFitDecreasing) Name() string { return "ffd" }

// Pack implements Packer.
func (FirstFitDecreasing) Pack(items []Item, nodes []cluster.NodeSpec) ([]int, bool) {
	order := sortedByMaxReq(items)
	assign := make([]int, len(items))
	for i := range assign {
		assign[i] = -1
	}
	cpuFree, memFree := freeCaps(nodes)
	for _, idx := range order {
		placedNode := -1
		for node := range nodes {
			if floats.LessEq(items[idx].CPU, cpuFree[node]) && floats.LessEq(items[idx].Mem, memFree[node]) {
				placedNode = node
				break
			}
		}
		if placedNode < 0 {
			return nil, false
		}
		assign[idx] = placedNode
		cpuFree[placedNode] -= items[idx].CPU
		memFree[placedNode] -= items[idx].Mem
	}
	return assign, true
}

// BestFitDecreasing packs items in non-increasing order of largest
// requirement onto the feasible node with the least remaining slack
// (CPU+memory). Ablation baseline A3.
type BestFitDecreasing struct{}

// Name returns "bfd".
func (BestFitDecreasing) Name() string { return "bfd" }

// Pack implements Packer.
func (BestFitDecreasing) Pack(items []Item, nodes []cluster.NodeSpec) ([]int, bool) {
	order := sortedByMaxReq(items)
	assign := make([]int, len(items))
	for i := range assign {
		assign[i] = -1
	}
	cpuFree, memFree := freeCaps(nodes)
	for _, idx := range order {
		best := -1
		bestSlack := math.Inf(1)
		for node := range nodes {
			if !floats.LessEq(items[idx].CPU, cpuFree[node]) || !floats.LessEq(items[idx].Mem, memFree[node]) {
				continue
			}
			slack := cpuFree[node] - items[idx].CPU + memFree[node] - items[idx].Mem
			if slack < bestSlack {
				bestSlack = slack
				best = node
			}
		}
		if best < 0 {
			return nil, false
		}
		assign[idx] = best
		cpuFree[best] -= items[idx].CPU
		memFree[best] -= items[idx].Mem
	}
	return assign, true
}

// ByName returns the packer registered under name ("mcb8", "ffd", "bfd").
func ByName(name string) (Packer, error) {
	switch name {
	case "mcb8":
		return MCB8{}, nil
	case "ffd":
		return FirstFitDecreasing{}, nil
	case "bfd":
		return BestFitDecreasing{}, nil
	}
	return nil, fmt.Errorf("vectorpack: unknown packer %q", name)
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func sortedByMaxReq(items []Item) []int {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ma := max2(items[order[a]].CPU, items[order[a]].Mem)
		mb := max2(items[order[b]].CPU, items[order[b]].Mem)
		if ma != mb {
			return ma > mb
		}
		return order[a] < order[b]
	})
	return order
}

// freeCaps returns per-node free CPU and memory initialized to capacity.
func freeCaps(nodes []cluster.NodeSpec) (cpu, mem []float64) {
	cpu = make([]float64, len(nodes))
	mem = make([]float64, len(nodes))
	for i, n := range nodes {
		cpu[i] = n.CPUCap
		mem[i] = n.MemCap
	}
	return cpu, mem
}
