package vectorpack

// Frozen-copy locks for the placement-objective refactor: the PR 4
// first-fit-decreasing and best-fit-decreasing packing loops, kept here
// verbatim, must match the refactored packers (which route node choice
// through placement.Pick under their default objectives) bit-for-bit over
// random instances in 2-4 dimensions on equal and unequal bins — the
// ddim_test.go pattern applied to this PR's refactor. MCB8's default bin
// order is locked by asserting the nil-objective path is bypassed
// (binOrder identity) plus the cross-checks below.

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/placement"
)

// legacyFFDPack is the PR 4 FirstFitDecreasing.Pack, frozen verbatim.
func legacyFFDPack(items []Item, nodes []cluster.NodeSpec) ([]int, bool) {
	d := dims(nodes)
	norm := meanCaps(nodes)
	order := sortedByNormMax(items, norm)
	assign := make([]int, len(items))
	for i := range assign {
		assign[i] = -1
	}
	free := freeCaps(nodes, d)
	for _, idx := range order {
		placedNode := -1
		for node := range nodes {
			if fits(items[idx].Req, free[node*d:(node+1)*d]) {
				placedNode = node
				break
			}
		}
		if placedNode < 0 {
			return nil, false
		}
		assign[idx] = placedNode
		for k := 0; k < d; k++ {
			free[placedNode*d+k] -= items[idx].Req[k]
		}
	}
	return assign, true
}

// legacyBFDPack is the PR 4 BestFitDecreasing.Pack, frozen verbatim.
func legacyBFDPack(items []Item, nodes []cluster.NodeSpec) ([]int, bool) {
	d := dims(nodes)
	norm := meanCaps(nodes)
	order := sortedByNormMax(items, norm)
	assign := make([]int, len(items))
	for i := range assign {
		assign[i] = -1
	}
	free := freeCaps(nodes, d)
	for _, idx := range order {
		best := -1
		bestSlack := math.Inf(1)
		for node := range nodes {
			nodeFree := free[node*d : (node+1)*d]
			if !fits(items[idx].Req, nodeFree) {
				continue
			}
			slack := 0.0
			for k := 0; k < d; k++ {
				slack += (nodeFree[k] - items[idx].Req[k]) / norm[k]
			}
			if slack < bestSlack {
				bestSlack = slack
				best = node
			}
		}
		if best < 0 {
			return nil, false
		}
		assign[idx] = best
		for k := 0; k < d; k++ {
			free[best*d+k] -= items[idx].Req[k]
		}
	}
	return assign, true
}

// randomLockInstance draws a random packing instance with d in 2..4 and a
// mix of reference, fat and partially-equipped nodes.
func randomLockInstance(r *rand.Rand) ([]Item, []cluster.NodeSpec) {
	d := 2 + r.Intn(3)
	n := 2 + r.Intn(12)
	nodes := make([]cluster.NodeSpec, n)
	for i := range nodes {
		caps := make(cluster.Vec, d)
		caps[0] = 1 + float64(r.Intn(3))
		caps[1] = 1 + float64(r.Intn(3))
		for k := 2; k < d; k++ {
			caps[k] = float64(r.Intn(3)) // may be zero: node lacks the resource
		}
		nodes[i] = cluster.NodeSpec{Caps: caps, Cost: float64(r.Intn(4))}
	}
	items := make([]Item, r.Intn(3*n))
	for i := range items {
		req := make(cluster.Vec, d)
		req[0] = 0.05 + 0.95*r.Float64()
		req[1] = 0.05 + 0.95*r.Float64()
		for k := 2; k < d; k++ {
			if r.Intn(2) == 0 {
				req[k] = r.Float64()
			}
		}
		items[i] = Item{Req: req}
	}
	return items, nodes
}

func TestPackersMatchFrozenPR4Copies(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		items, nodes := randomLockInstance(r)
		for _, tc := range []struct {
			name   string
			packer Packer
			legacy func([]Item, []cluster.NodeSpec) ([]int, bool)
		}{
			// Both the inlined nil-objective paths and the
			// placement-routed paths under the explicit default
			// objectives must match the frozen PR 4 loops.
			{"ffd", FirstFitDecreasing{}, legacyFFDPack},
			{"ffd-first", FirstFitDecreasing{Objective: placement.First{}}, legacyFFDPack},
			{"bfd", BestFitDecreasing{}, legacyBFDPack},
			{"bfd-bestfit", BestFitDecreasing{Objective: placement.BestFit{}}, legacyBFDPack},
		} {
			gotAssign, gotOK := tc.packer.Pack(items, nodes)
			wantAssign, wantOK := tc.legacy(items, nodes)
			if gotOK != wantOK || !reflect.DeepEqual(gotAssign, wantAssign) {
				t.Fatalf("trial %d: %s diverged from its frozen PR 4 copy:\n got %v (%v)\nwant %v (%v)",
					trial, tc.name, gotAssign, gotOK, wantAssign, wantOK)
			}
			if gotOK {
				if err := Validate(items, gotAssign, nodes); err != nil {
					t.Fatalf("trial %d: %s: %v", trial, tc.name, err)
				}
			}
		}
		// MCB8's nil-objective bin order must be the identity (the
		// published kernel is bypassed entirely), and a uniform-score
		// objective must reproduce it bit-for-bit.
		plain, plainOK := MCB8{}.Pack(items, nodes)
		viaFirst, firstOK := MCB8{Objective: placement.First{}}.Pack(items, nodes)
		if plainOK != firstOK || !reflect.DeepEqual(plain, viaFirst) {
			t.Fatalf("trial %d: MCB8 under the First objective diverged from the published bin order", trial)
		}
	}
}

// TestBinOrderCost: the cost objective opens cheap bins first with id
// tie-breaks, and the nil objective is the identity.
func TestBinOrderCost(t *testing.T) {
	nodes := []cluster.NodeSpec{
		cluster.Spec(1, 1).WithCost(2),
		cluster.Spec(1, 1).WithCost(0.5),
		cluster.Spec(1, 1).WithCost(2),
		cluster.Spec(1, 1).WithCost(0.5),
	}
	norm := meanCaps(nodes)
	if got := binOrder(nil, nodes, 2, norm); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("nil objective bin order %v, want identity", got)
	}
	if got := binOrder(placement.Cost{}, nodes, 2, norm); !reflect.DeepEqual(got, []int{1, 3, 0, 2}) {
		t.Fatalf("cost objective bin order %v, want cheap bins first", got)
	}
}
