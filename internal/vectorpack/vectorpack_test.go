package vectorpack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
)

var allPackers = []Packer{MCB8{}, FirstFitDecreasing{}, BestFitDecreasing{}}

func TestPackEmpty(t *testing.T) {
	for _, p := range allPackers {
		assign, ok := p.Pack(nil, cluster.Uniform(3))
		if !ok || len(assign) != 0 {
			t.Errorf("%s: empty pack failed", p.Name())
		}
	}
}

func TestPackSingleItem(t *testing.T) {
	for _, p := range allPackers {
		assign, ok := p.Pack([]Item{NewItem(0.5, 0.5)}, cluster.Uniform(1))
		if !ok || assign[0] != 0 {
			t.Errorf("%s: single item pack: %v %v", p.Name(), assign, ok)
		}
	}
}

func TestPackInfeasible(t *testing.T) {
	// Three items of 0.6 memory cannot share two nodes.
	items := []Item{NewItem(0.1, 0.6), NewItem(0.1, 0.6), NewItem(0.1, 0.6)}
	for _, p := range allPackers {
		if _, ok := p.Pack(items, cluster.Uniform(2)); ok {
			t.Errorf("%s: infeasible instance packed", p.Name())
		}
	}
}

func TestPackZeroNodes(t *testing.T) {
	items := []Item{NewItem(0.1, 0.1)}
	for _, p := range allPackers {
		if _, ok := p.Pack(items, nil); ok {
			t.Errorf("%s: packed onto zero nodes", p.Name())
		}
		// Zero items onto zero nodes is trivially feasible.
		if _, ok := p.Pack(nil, nil); !ok {
			t.Errorf("%s: empty instance on zero nodes failed", p.Name())
		}
	}
}

func TestPackItemLargerThanAnyNode(t *testing.T) {
	// A 0.9 x 0.9 item cannot fit a cluster of 0.5-capacity thin nodes.
	thin := []cluster.NodeSpec{cluster.Spec(0.5, 0.5), cluster.Spec(0.5, 0.5)}
	items := []Item{NewItem(0.9, 0.9)}
	for _, p := range allPackers {
		if _, ok := p.Pack(items, thin); ok {
			t.Errorf("%s: oversized item placed on thin nodes", p.Name())
		}
	}
	// The same item fits as soon as one node is fat enough.
	mixed := append([]cluster.NodeSpec{}, thin...)
	mixed = append(mixed, cluster.Spec(1, 1))
	for _, p := range allPackers {
		assign, ok := p.Pack(items, mixed)
		if !ok || assign[0] != 2 {
			t.Errorf("%s: oversized item not routed to the fat node: %v %v", p.Name(), assign, ok)
		}
	}
}

func TestPackExactFit(t *testing.T) {
	// Four 0.5x0.5 items exactly fill two nodes.
	items := []Item{
		NewItem(0.5, 0.5), NewItem(0.5, 0.5),
		NewItem(0.5, 0.5), NewItem(0.5, 0.5),
	}
	for _, p := range allPackers {
		assign, ok := p.Pack(items, cluster.Uniform(2))
		if !ok {
			t.Errorf("%s: exact fit failed", p.Name())
			continue
		}
		if err := Validate(items, assign, cluster.Uniform(2)); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}

// TestPackUnequalBins: six 0.5x0.5 items fit one 2.0 fat node plus one
// reference node (4 + 2 tasks) but not two reference nodes.
func TestPackUnequalBins(t *testing.T) {
	items := make([]Item, 6)
	for i := range items {
		items[i] = NewItem(0.5, 0.5)
	}
	het := []cluster.NodeSpec{cluster.Spec(2, 2), cluster.Spec(1, 1)}
	for _, p := range allPackers {
		if _, ok := p.Pack(items, cluster.Uniform(2)); ok {
			t.Errorf("%s: six half-items packed into two reference nodes", p.Name())
		}
		assign, ok := p.Pack(items, het)
		if !ok {
			t.Errorf("%s: heterogeneous exact fit failed", p.Name())
			continue
		}
		if err := Validate(items, assign, het); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}

// TestMCB8Balancing checks the defining property of MCB8: it packs
// complementary (CPU-heavy + memory-heavy) items together where a naive
// first fit would fragment. Two nodes, two CPU-heavy and two memory-heavy
// items that only fit pairwise complementary.
func TestMCB8Balancing(t *testing.T) {
	items := []Item{
		NewItem(0.9, 0.1), // cpu-heavy
		NewItem(0.9, 0.1),
		NewItem(0.1, 0.9), // mem-heavy
		NewItem(0.1, 0.9),
	}
	assign, ok := MCB8{}.Pack(items, cluster.Uniform(2))
	if !ok {
		t.Fatal("MCB8 failed a feasible complementary instance")
	}
	if err := Validate(items, assign, cluster.Uniform(2)); err != nil {
		t.Fatal(err)
	}
	// Each node must hold one of each kind.
	if assign[0] == assign[1] {
		t.Errorf("both CPU-heavy items on node %d: %v", assign[0], assign)
	}
	if assign[2] == assign[3] {
		t.Errorf("both memory-heavy items on node %d: %v", assign[2], assign)
	}
}

func TestValidate(t *testing.T) {
	items := []Item{NewItem(0.7, 0.2), NewItem(0.5, 0.2)}
	if err := Validate(items, []int{0, 0}, cluster.Uniform(1)); err == nil {
		t.Error("CPU oversubscription not detected")
	}
	if err := Validate(items, []int{0, 1}, cluster.Uniform(2)); err != nil {
		t.Errorf("valid assignment rejected: %v", err)
	}
	if err := Validate(items, []int{0}, cluster.Uniform(2)); err == nil {
		t.Error("length mismatch not detected")
	}
	if err := Validate(items, []int{0, 5}, cluster.Uniform(2)); err == nil {
		t.Error("out-of-range node not detected")
	}
	memItems := []Item{NewItem(0.1, 0.8), NewItem(0.1, 0.8)}
	if err := Validate(memItems, []int{0, 0}, cluster.Uniform(1)); err == nil {
		t.Error("memory oversubscription not detected")
	}
	// Per-node capacities: the same two items that oversubscribe a
	// reference node are fine on a fat node.
	fat := []cluster.NodeSpec{cluster.Spec(2, 2)}
	if err := Validate(items, []int{0, 0}, fat); err != nil {
		t.Errorf("fat-node assignment rejected: %v", err)
	}
}

// randomItems draws n items with requirements in (0, maxReq].
func randomItems(r *rand.Rand, n int, maxReq float64) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = NewItem(
			r.Float64()*maxReq,
			0.01+r.Float64()*(maxReq-0.01),
		)
	}
	return items
}

// randomNodes draws n node specs with capacities in [0.5, 2.5).
func randomNodes(r *rand.Rand, n int) []cluster.NodeSpec {
	nodes := make([]cluster.NodeSpec, n)
	for i := range nodes {
		nodes[i] = cluster.Spec(
			0.5+2*r.Float64(),
			0.5+2*r.Float64(),
		)
	}
	return nodes
}

// Property: whenever a packer reports success, the assignment is valid —
// on homogeneous and heterogeneous clusters alike.
func TestPackSoundnessProperty(t *testing.T) {
	f := func(seed int64, nItems, nNodes uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(nNodes%16)
		items := randomItems(r, int(nItems%64), 0.8)
		for _, nodes := range [][]cluster.NodeSpec{cluster.Uniform(n), randomNodes(r, n)} {
			for _, p := range allPackers {
				assign, ok := p.Pack(items, nodes)
				if ok {
					if err := Validate(items, assign, nodes); err != nil {
						t.Logf("%s: %v", p.Name(), err)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: an instance where every item fits on its own node and there are
// enough nodes must always pack.
func TestPackTrivialFeasibilityProperty(t *testing.T) {
	f := func(seed int64, nItems uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nItems % 32)
		items := randomItems(r, n, 0.99)
		for _, p := range allPackers {
			if _, ok := p.Pack(items, cluster.Uniform(len(items))); n > 0 && !ok {
				t.Logf("%s failed with one node per item", p.Name())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"mcb8", "ffd", "bfd"} {
		p, err := ByName(name)
		if err != nil || p.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown packer accepted")
	}
}

// TestMCB8Determinism: identical inputs give identical assignments.
func TestMCB8Determinism(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	items := randomItems(r, 40, 0.5)
	for _, nodes := range [][]cluster.NodeSpec{cluster.Uniform(10), randomNodes(r, 10)} {
		a1, ok1 := MCB8{}.Pack(items, nodes)
		a2, ok2 := MCB8{}.Pack(items, nodes)
		if ok1 != ok2 {
			t.Fatal("determinism: ok flags differ")
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatalf("determinism: assignments differ at %d", i)
			}
		}
	}
}

func BenchmarkMCB8Pack(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	items := randomItems(r, 500, 0.3)
	nodes := cluster.Uniform(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := (MCB8{}).Pack(items, nodes); !ok {
			b.Fatal("bench instance infeasible")
		}
	}
}

func BenchmarkMCB8PackHeterogeneous(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	items := randomItems(r, 500, 0.3)
	c, err := cluster.Profile(cluster.ProfileBimodal, 128)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := (MCB8{}).Pack(items, c.Nodes); !ok {
			b.Fatal("bench instance infeasible")
		}
	}
}
