package vectorpack

import (
	"slices"

	"repro/internal/cluster"
)

// repackMaxDelta bounds how many group insertions plus removals the warm
// path absorbs incrementally; a larger structural change re-sorts from
// scratch (one event rarely changes more than a handful of jobs, and past
// a few dozen the incremental bookkeeping costs more than the sort).
const repackMaxDelta = 32

// RepackState carries one MCB8 packing instance's sorted group orders and
// cached normalization across PackWarm calls, so consecutive packings —
// which differ by one arrival or completion, or only by a rescaled yield
// inside the min-yield binary search — skip the full classify-and-sort
// phase. The state is advisory: PackWarm verifies every cached order
// against the current requirement values before using it and falls back
// to a fresh sort on any divergence, so its result is always identical to
// PackBuf on the same inputs (pinned by the differential property test).
//
// A state is keyed to one packer configuration and one PackBuffer: reuse
// it only for the same MCB8 value, and call Invalidate (or let the
// verification fallback absorb it) when the instance it tracks changes
// wholesale. The zero value is ready to use.
type RepackState struct {
	// Cached normalization, keyed on the identity of the nodes slice
	// (node sets are immutable for a simulation run, so pointer+length
	// equality means the per-dimension means are unchanged).
	nodesPtr *cluster.NodeSpec
	nodesLen int
	norm     cluster.Vec

	// Previous instance's group structure: per-group item count and a
	// copy of the full requirement vector (stride d). Rigid dimensions
	// (1..d-1) identify a group across packings — the CPU entry is
	// rewritten by every yield probe — and the full vector backs the
	// exact-repeat fast path.
	valid  bool
	d      int
	gCount []int
	gReq   []float64

	// orders[k] holds all group ids sorted by requirement in dimension k
	// (descending, ties by first item index) as of the last time the
	// order was sorted or incrementally patched. PackWarm re-verifies an
	// order against current values whenever dimension k's list is
	// non-empty.
	orders [][]int

	// Previous pack's outcome for the exact-repeat fast path (a repeated
	// probe of the same instance, e.g. a periodic reschedule with an
	// unchanged job set replays the previous event's probe sequence).
	prevValid  bool
	prevOK     bool
	prevAssign []int

	// Counters for tests and benchmarks: full sorts taken (per
	// dimension), structural rebuilds, exact-repeat hits, total packs.
	Sorts, Rebuilds, Repeats, Packs int
}

// Invalidate drops all cached state; the next PackWarm re-sorts from
// scratch.
func (st *RepackState) Invalidate() {
	st.valid, st.prevValid = false, false
	st.nodesPtr, st.nodesLen = nil, 0
}

// normFor returns the cached mean-capacity normalization for nodes,
// recomputing it (and dropping order/repeat caches, which are scaled by
// it) when the node set changes.
func (st *RepackState) normFor(nodes []cluster.NodeSpec, d int) cluster.Vec {
	if st.nodesLen == len(nodes) && st.nodesPtr == &nodes[0] && len(st.norm) == d {
		return st.norm
	}
	if cap(st.norm) < d {
		st.norm = make(cluster.Vec, d)
	}
	st.norm = st.norm[:d]
	meanCapsInto(nodes, st.norm)
	st.nodesPtr, st.nodesLen = &nodes[0], len(nodes)
	st.valid, st.prevValid = false, false
	return st.norm
}

// groupEq reports whether old group oi matches new group ni: same item
// count and identical rigid requirements (dimensions 1..d-1; the CPU
// entry changes with every yield probe and does not identify a group).
func (st *RepackState) groupEq(oi, ni int, items []Item, b *PackBuffer) bool {
	if st.gCount[oi] != b.gCount[ni] {
		return false
	}
	req := items[b.gFirst[ni]].Req
	old := st.gReq[oi*st.d : oi*st.d+st.d]
	for k := 1; k < st.d; k++ {
		if old[k] != req[k] {
			return false
		}
	}
	return true
}

// exactRepeat reports whether the instance is identical to the previous
// pack — same groups, bitwise-equal requirement vectors in every
// dimension, same node set — so the previous outcome can be replayed.
func (st *RepackState) exactRepeat(items []Item, nodes []cluster.NodeSpec, b *PackBuffer, d int) bool {
	if !st.prevValid || !st.valid || st.d != d ||
		st.nodesLen != len(nodes) || st.nodesPtr != &nodes[0] ||
		len(st.gCount) != len(b.gCount) {
		return false
	}
	for g := range b.gCount {
		if st.gCount[g] != b.gCount[g] {
			return false
		}
		req := items[b.gFirst[g]].Req
		old := st.gReq[g*d : g*d+d]
		for k := 0; k < d; k++ {
			if old[k] != req[k] {
				return false
			}
		}
	}
	return true
}

// rebuildOrders sorts every dimension's full group order from scratch
// (descending requirement, ties by first item index) and snapshots the
// group structure.
func (st *RepackState) rebuildOrders(items []Item, b *PackBuffer, norm cluster.Vec, d int) {
	st.Rebuilds++
	G := len(b.gFirst)
	if cap(st.orders) < d {
		st.orders = append(st.orders[:cap(st.orders)], make([][]int, d-cap(st.orders))...)
	}
	st.orders = st.orders[:d]
	for k := 0; k < d; k++ {
		ord := st.orders[k][:0]
		for g := 0; g < G; g++ {
			ord = append(ord, g)
		}
		st.sortOrder(ord, k, items, b, norm)
		st.orders[k] = ord
	}
	st.d, st.valid = d, true
}

// sortOrder sorts one dimension's group order by the batch kernel's exact
// key — the capacity-normalized requirement, descending, ties by first
// item index — so a filtered order reproduces PackBuf's sorted list
// bit-for-bit.
func (st *RepackState) sortOrder(ord []int, k int, items []Item, b *PackBuffer, norm cluster.Vec) {
	st.Sorts++
	slices.SortFunc(ord, func(ga, gb int) int {
		ka := items[b.gFirst[ga]].Req[k] / norm[k]
		kb := items[b.gFirst[gb]].Req[k] / norm[k]
		if ka != kb {
			if ka > kb {
				return -1
			}
			return 1
		}
		return b.gFirst[ga] - b.gFirst[gb]
	})
}

// applyDelta aligns the previous group structure with the current one and
// patches every cached order in place: unchanged prefix and suffix groups
// are renumbered, removed groups dropped, and inserted groups placed at
// their sorted position. Returns false when the structural change exceeds
// repackMaxDelta (the caller then rebuilds from scratch).
func (st *RepackState) applyDelta(items []Item, b *PackBuffer, norm cluster.Vec) bool {
	oldG, newG := len(st.gCount), len(b.gCount)
	p := 0
	for p < oldG && p < newG && st.groupEq(p, p, items, b) {
		p++
	}
	if p == oldG && p == newG {
		return true // same structure, ids unchanged
	}
	s := 0
	for s < oldG-p && s < newG-p && st.groupEq(oldG-1-s, newG-1-s, items, b) {
		s++
	}
	removed, added := oldG-p-s, newG-p-s
	if removed+added > repackMaxDelta {
		return false
	}
	shift := newG - oldG
	for k := range st.orders {
		ord := st.orders[k]
		w := 0
		for _, g := range ord {
			switch {
			case g < p:
				ord[w] = g
				w++
			case g >= oldG-s:
				ord[w] = g + shift
				w++
			}
		}
		st.orders[k] = ord[:w]
	}
	// Insert each new group at its sorted position under the current
	// values. A stale order (the CPU dimension is rescaled every probe)
	// may misplace the insertion; the per-use verification in PackWarm
	// catches that and re-sorts, so correctness never depends on it.
	for g := p; g < p+added; g++ {
		first := b.gFirst[g]
		for k := range st.orders {
			key := items[first].Req[k] / norm[k]
			pos, _ := slices.BinarySearchFunc(st.orders[k], 0, func(gb, _ int) int {
				kb := items[b.gFirst[gb]].Req[k] / norm[k]
				if kb != key {
					if kb > key {
						return -1
					}
					return 1
				}
				return b.gFirst[gb] - first
			})
			st.orders[k] = slices.Insert(st.orders[k], pos, g)
		}
	}
	return true
}

// snapshot records the group structure, requirement values and pack
// outcome for the next call's delta alignment and exact-repeat check.
func (st *RepackState) snapshot(items []Item, b *PackBuffer, d int, assign []int, ok bool) {
	G := len(b.gFirst)
	st.gCount = append(st.gCount[:0], b.gCount...)
	if cap(st.gReq) < G*d {
		st.gReq = make([]float64, G*d)
	}
	st.gReq = st.gReq[:G*d]
	for g := 0; g < G; g++ {
		copy(st.gReq[g*d:(g+1)*d], items[b.gFirst[g]].Req)
	}
	st.prevOK = ok
	if ok {
		st.prevAssign = append(st.prevAssign[:0], assign...)
	}
	st.prevValid = true
}

// PackWarm is PackBuf with warm-start state: it produces the identical
// assignment (the sorted group lists it feeds the shared fill phase are
// verified against the batch kernel's exact sort keys, and any divergence
// falls back to a fresh sort), but skips the per-pack normalization,
// comparator sorts and — on an exact repeat of the previous instance —
// the whole packing. The returned assignment aliases b, like PackBuf.
func (m MCB8) PackWarm(items []Item, nodes []cluster.NodeSpec, b *PackBuffer, st *RepackState) ([]int, bool) {
	st.Packs++
	if len(items) == 0 {
		st.valid, st.prevValid = false, false
		return []int{}, true
	}
	if len(nodes) == 0 {
		st.valid, st.prevValid = false, false
		return nil, false
	}
	d := dims(nodes)
	norm := st.normFor(nodes, d)

	// Collapse adjacent items sharing one backing requirement vector into
	// groups, exactly as PackBuf does (classification is deferred: the
	// exact-repeat check only needs the group structure).
	b.gFirst, b.gCount, b.gUsed = b.gFirst[:0], b.gCount[:0], b.gUsed[:0]
	for i := 0; i < len(items); {
		req := items[i].Req
		j := i + 1
		if len(req) > 0 {
			for j < len(items) && len(items[j].Req) == len(req) && &items[j].Req[0] == &req[0] {
				j++
			}
		}
		b.gFirst = append(b.gFirst, i)
		b.gCount = append(b.gCount, j-i)
		b.gUsed = append(b.gUsed, 0)
		i = j
	}

	// Exact repeat of the previous pack: replay its outcome. The kernel
	// is deterministic, so identical groups, requirement values and nodes
	// reproduce the identical assignment (or the identical failure).
	if st.exactRepeat(items, nodes, b, d) {
		st.Repeats++
		if !st.prevOK {
			return nil, false
		}
		if cap(b.assign) < len(items) {
			b.assign = make([]int, len(items))
		}
		assign := b.assign[:len(items)]
		copy(assign, st.prevAssign)
		return assign, true
	}

	// Classify every group by its dominant normalized dimension — the
	// same per-group work as PackBuf's combined loop.
	G := len(b.gFirst)
	b.gMax, b.gHeavy = b.gMax[:0], b.gHeavy[:0]
	if cap(b.listLen) < d {
		b.listLen = make([]int, d)
		b.listOff = make([]int, d+1)
		b.listFill = make([]int, d)
	}
	b.listLen, b.listOff, b.listFill = b.listLen[:d], b.listOff[:d+1], b.listFill[:d]
	for k := range b.listLen {
		b.listLen[k] = 0
	}
	for g := 0; g < G; g++ {
		mx, heavy := normMax(items[b.gFirst[g]].Req, norm)
		b.gMax = append(b.gMax, mx)
		b.gHeavy = append(b.gHeavy, heavy)
		b.listLen[heavy]++
	}

	// Bring the cached per-dimension orders up to date with the group
	// structure.
	if !st.valid || st.d != d || !st.applyDelta(items, b, norm) {
		st.rebuildOrders(items, b, norm, d)
	}

	// Build each dimension's sorted list by filtering its full order down
	// to the groups classified into it, verifying the batch sort
	// invariant — non-increasing key, ties by ascending first item — on
	// the way. Dimensions with no members skip verification entirely
	// (the stale CPU order after a zero-yield probe is simply unused).
	if cap(b.listMem) < G {
		b.listMem = make([]int, G)
	}
	b.listMem = b.listMem[:G]
	off := b.listOff
	off[0] = 0
	for k := 0; k < d; k++ {
		off[k+1] = off[k] + b.listLen[k]
	}
	if cap(b.chains) < d {
		b.chains = make([]groupChain, d)
	}
	b.chains = b.chains[:d]
	for k := 0; k < d; k++ {
		list := b.listMem[off[k]:off[k+1]]
		if len(list) == 0 {
			b.chains[k].reset(list, b, items, d, k)
			continue
		}
		if !st.filterOrder(k, list, b) {
			st.sortOrder(st.orders[k], k, items, b, norm)
			if !st.filterOrder(k, list, b) {
				// The order is not a permutation of the groups (cannot
				// happen unless the state was corrupted externally);
				// rebuild everything and refilter.
				st.rebuildOrders(items, b, norm, d)
				st.filterOrder(k, list, b)
			}
		}
		b.chains[k].reset(list, b, items, d, k)
	}

	assign, ok := m.fill(items, nodes, d, norm, b)
	st.snapshot(items, b, d, assign, ok)
	return assign, ok
}

// filterOrder writes the groups classified into dimension k, in cached
// order, into list, verifying the exact batch sort invariant. Returns
// false when the cached order is stale (keys out of order) or
// inconsistent (wrong member count).
func (st *RepackState) filterOrder(k int, list []int, b *PackBuffer) bool {
	n := 0
	lastKey := 0.0
	lastFirst := -1
	for _, g := range st.orders[k] {
		if b.gHeavy[g] != k {
			continue
		}
		if n == len(list) {
			return false
		}
		key := b.gMax[g]
		if n > 0 && (key > lastKey || (key == lastKey && b.gFirst[g] < lastFirst)) {
			return false
		}
		lastKey, lastFirst = key, b.gFirst[g]
		list[n] = g
		n++
	}
	return n == len(list)
}
