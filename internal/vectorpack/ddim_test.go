package vectorpack

// Tests for the d-dimensional generalization of the packing kernel:
//
//   - a frozen copy of the historical two-list MCB8 (exactly the PR 3
//     implementation) pins the d=2 behaviour on reference nodes — the
//     generalized kernel must reproduce its assignments bit-for-bit;
//   - property tests drive random items and node vectors through every
//     packer in 2, 3 and 4 dimensions: every successful Pack must satisfy
//     Validate;
//   - directed tests cover the capacity-normalized sorting bugfix and the
//     GPU-dimension routing.

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/floats"
)

// chain is the historical per-item singly linked list over a sorted item
// order (the production kernel now chains same-requirement groups); it is
// kept here verbatim as part of the frozen PR 3 reference below.
type chain struct {
	order []int // item indices in sorted order
	next  []int // next[k] = position after k in the chain, len(order) = end
	head  int
}

func newChain(order []int) *chain {
	c := &chain{order: order, next: make([]int, len(order)), head: 0}
	for k := range c.next {
		c.next[k] = k + 1
	}
	return c
}

// unlink removes position pos (whose predecessor is prev, -1 for the head)
// from the chain.
func (c *chain) unlink(pos, prev int) {
	if prev < 0 {
		c.head = c.next[pos]
	} else {
		c.next[prev] = c.next[pos]
	}
}

// legacyMCB8Pack is the historical two-resource MCB8 exactly as shipped in
// PR 3 (absolute-requirement sorting, CPU/memory lists), kept verbatim as
// the reference for the d=2 equivalence lock below.
func legacyMCB8Pack(items []Item, nodes []cluster.NodeSpec) ([]int, bool) {
	if len(items) == 0 {
		return []int{}, true
	}
	itemCPU := func(i int) float64 { return items[i].Req[0] }
	itemMem := func(i int) float64 { return items[i].Req[1] }
	max2 := func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	var cpuHeavy, memHeavy []int
	for i := range items {
		if itemCPU(i) >= itemMem(i) {
			cpuHeavy = append(cpuHeavy, i)
		} else {
			memHeavy = append(memHeavy, i)
		}
	}
	byMaxReq := func(list []int) {
		sort.SliceStable(list, func(a, b int) bool {
			ma := max2(itemCPU(list[a]), itemMem(list[a]))
			mb := max2(itemCPU(list[b]), itemMem(list[b]))
			if ma != mb {
				return ma > mb
			}
			return list[a] < list[b]
		})
	}
	byMaxReq(cpuHeavy)
	byMaxReq(memHeavy)
	cpuChain := newChain(cpuHeavy)
	memChain := newChain(memHeavy)

	findFit2 := func(c *chain, cpuFree, memFree float64) (pos, prev int) {
		prev = -1
		for k := c.head; k < len(c.order); k = c.next[k] {
			idx := c.order[k]
			if floats.LessEq(itemCPU(idx), cpuFree) && floats.LessEq(itemMem(idx), memFree) {
				return k, prev
			}
			prev = k
		}
		return -1, -1
	}
	firstFit2 := func(c *chain, cpuFree, memFree float64) int {
		pos, prev := findFit2(c, cpuFree, memFree)
		if pos < 0 {
			return -1
		}
		c.unlink(pos, prev)
		return c.order[pos]
	}
	itemMax := func(c *chain, pos int) float64 {
		return max2(itemCPU(c.order[pos]), itemMem(c.order[pos]))
	}

	assign := make([]int, len(items))
	for i := range assign {
		assign[i] = -1
	}
	placed := 0
	for node := 0; node < len(nodes) && placed < len(items); node++ {
		cpuFree, memFree := nodes[node].CPUCap(), nodes[node].MemCap()
		cPos, cPrev := findFit2(cpuChain, cpuFree, memFree)
		mPos, mPrev := findFit2(memChain, cpuFree, memFree)
		var seed int
		switch {
		case cPos < 0 && mPos < 0:
			continue
		case mPos < 0 || (cPos >= 0 && itemMax(cpuChain, cPos) >= itemMax(memChain, mPos)):
			seed = cpuChain.order[cPos]
			cpuChain.unlink(cPos, cPrev)
		default:
			seed = memChain.order[mPos]
			memChain.unlink(mPos, mPrev)
		}
		assign[seed] = node
		cpuFree -= itemCPU(seed)
		memFree -= itemMem(seed)
		placed++
		for {
			var primary, secondary *chain
			if cpuFree/nodes[node].CPUCap() >= memFree/nodes[node].MemCap() {
				primary, secondary = cpuChain, memChain
			} else {
				primary, secondary = memChain, cpuChain
			}
			idx := firstFit2(primary, cpuFree, memFree)
			if idx < 0 {
				idx = firstFit2(secondary, cpuFree, memFree)
			}
			if idx < 0 {
				break
			}
			assign[idx] = node
			cpuFree -= itemCPU(idx)
			memFree -= itemMem(idx)
			placed++
		}
	}
	if placed < len(items) {
		return nil, false
	}
	return assign, true
}

// TestMCB8MatchesLegacyOnReferenceNodes is the d=2 equivalence lock:
// on clusters of reference nodes the generalized kernel must return
// exactly the assignments of the historical two-list implementation, item
// by item, over a large randomized corpus.
func TestMCB8MatchesLegacyOnReferenceNodes(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(24)
		items := randomItems(r, r.Intn(80), 0.9)
		nodes := cluster.Uniform(n)
		want, wantOK := legacyMCB8Pack(items, nodes)
		got, gotOK := MCB8{}.Pack(items, nodes)
		if wantOK != gotOK {
			t.Fatalf("trial %d: ok=%v, legacy ok=%v", trial, gotOK, wantOK)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: item %d on node %d, legacy packs node %d",
					trial, i, got[i], want[i])
			}
		}
	}
}

// randomItemsD draws n items with d-dimensional requirements; dimensions
// beyond CPU/memory may be zero (a job without GPU demand).
func randomItemsD(r *rand.Rand, n, d int, maxReq float64) []Item {
	items := make([]Item, n)
	for i := range items {
		req := make(cluster.Vec, d)
		req[0] = r.Float64() * maxReq
		req[1] = 0.01 + r.Float64()*(maxReq-0.01)
		for k := 2; k < d; k++ {
			if r.Intn(2) == 0 {
				req[k] = r.Float64() * maxReq
			}
		}
		items[i] = Item{Req: req}
	}
	return items
}

// randomNodesD draws n node specs with d dimensions: CPU/memory in
// [0.5, 2.5), extra dimensions in [0, 2) with occasional zero-capacity
// nodes (no GPU).
func randomNodesD(r *rand.Rand, n, d int) []cluster.NodeSpec {
	nodes := make([]cluster.NodeSpec, n)
	for i := range nodes {
		caps := make(cluster.Vec, d)
		caps[0] = 0.5 + 2*r.Float64()
		caps[1] = 0.5 + 2*r.Float64()
		for k := 2; k < d; k++ {
			if r.Intn(3) > 0 {
				caps[k] = 2 * r.Float64()
			}
		}
		nodes[i] = cluster.NodeSpec{Caps: caps}
	}
	return nodes
}

// Property: in every dimension count, whenever a packer reports success
// the assignment respects every node's capacity vector.
func TestPackSoundnessPropertyDDim(t *testing.T) {
	f := func(seed int64, nItems, nNodes, dd uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(nNodes%12)
		d := 2 + int(dd%3) // 2, 3 or 4 dimensions
		items := randomItemsD(r, int(nItems%48), d, 0.8)
		for _, nodes := range [][]cluster.NodeSpec{
			{cluster.UnitD(d)}, // degenerate single node
			randomNodesD(r, n, d),
		} {
			for _, p := range allPackers {
				assign, ok := p.Pack(items, nodes)
				if !ok {
					continue
				}
				if err := Validate(items, assign, nodes); err != nil {
					t.Logf("%s d=%d: %v", p.Name(), d, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a d-dimensional instance with one dedicated unit node per item
// always packs (every item fits alone on a reference node).
func TestPackTrivialFeasibilityPropertyDDim(t *testing.T) {
	f := func(seed int64, nItems, dd uint8) bool {
		r := rand.New(rand.NewSource(seed))
		d := 2 + int(dd%3)
		n := int(nItems % 24)
		items := randomItemsD(r, n, d, 0.99)
		nodes := make([]cluster.NodeSpec, n)
		for i := range nodes {
			nodes[i] = cluster.UnitD(d)
		}
		for _, p := range allPackers {
			if _, ok := p.Pack(items, nodes); n > 0 && !ok {
				t.Logf("%s failed with one unit node per item (d=%d)", p.Name(), d)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPackGPURouting: items with a GPU demand must land on the GPU nodes;
// GPU-less items may go anywhere. One 2-GPU node plus two GPU-less nodes.
func TestPackGPURouting(t *testing.T) {
	nodes := []cluster.NodeSpec{
		cluster.Spec(1, 1, 0),
		cluster.Spec(1, 1, 2),
		cluster.Spec(1, 1, 0),
	}
	items := []Item{
		NewItem(0.2, 0.2, 1.0), // gpu task
		NewItem(0.2, 0.2, 1.0), // gpu task
		NewItem(0.2, 0.2, 0),
		NewItem(0.2, 0.2, 0),
	}
	for _, p := range allPackers {
		assign, ok := p.Pack(items, nodes)
		if !ok {
			t.Fatalf("%s: feasible gpu instance failed", p.Name())
		}
		if err := Validate(items, assign, nodes); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if assign[0] != 1 || assign[1] != 1 {
			t.Errorf("%s: gpu tasks on nodes %d,%d, want the gpu node 1", p.Name(), assign[0], assign[1])
		}
	}
	// Three GPU tasks exceed the single 2-GPU node.
	over := append(items[:2:2], NewItem(0.1, 0.1, 1.0))
	for _, p := range allPackers {
		if _, ok := p.Pack(over, nodes); ok {
			t.Errorf("%s: packed 3 gpu units onto a 2-gpu cluster", p.Name())
		}
	}
}

// TestNormalizedSortingOnUnequalBins pins the heterogeneity bugfix: on
// unequal bins items are ordered by capacity-normalized requirement, so a
// memory-demand that is large relative to the platform is placed before an
// absolutely-larger CPU demand on a CPU-rich cluster.
func TestNormalizedSortingOnUnequalBins(t *testing.T) {
	// Mean caps: cpu 4, mem 1. Item A (cpu 0.9) normalizes to 0.225;
	// item B (mem 0.8) normalizes to 0.8 and must sort first.
	nodes := []cluster.NodeSpec{cluster.Spec(6, 1), cluster.Spec(2, 1)}
	items := []Item{NewItem(0.9, 0.1), NewItem(0.1, 0.8)}
	norm := meanCaps(nodes)
	if norm[0] != 4 || norm[1] != 1 {
		t.Fatalf("meanCaps = %v", norm)
	}
	order := sortedByNormMax(items, norm)
	if order[0] != 1 || order[1] != 0 {
		t.Fatalf("normalized order = %v, want the memory-heavy item first", order)
	}
	// And on the reference platform the normalization is the identity:
	// the absolutely-larger item keeps first place.
	unitOrder := sortedByNormMax(items, meanCaps(cluster.Uniform(2)))
	if unitOrder[0] != 0 {
		t.Fatalf("unit-cluster order = %v, want the 0.9-CPU item first", unitOrder)
	}
}

// TestMeanCapsZeroDimension: a dimension no node provides normalizes by 1
// (not 0), so zero demands stay zero instead of NaN.
func TestMeanCapsZeroDimension(t *testing.T) {
	nodes := []cluster.NodeSpec{cluster.Spec(1, 1, 0), cluster.Spec(1, 1, 0)}
	norm := meanCaps(nodes)
	if norm[2] != 1 {
		t.Fatalf("zero-capacity dimension normalizes by %g, want 1", norm[2])
	}
	items := []Item{NewItem(0.5, 0.5, 0)}
	for _, p := range allPackers {
		assign, ok := p.Pack(items, nodes)
		if !ok || assign[0] < 0 {
			t.Fatalf("%s: gpu-less item failed on a gpu-less 3-dim cluster", p.Name())
		}
	}
}
