package vectorpack

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
)

// BenchmarkMCB8RepackSteadyState measures one steady-state scheduling
// event at scale: a single-job delta (one completion, one arrival) in a
// large live set, followed by the min-yield probe sweep the DYNMCB8
// schedulers run per event. "cold" re-packs each probe from scratch with
// the batch kernel; "warm" reuses a RepackState across probes and events.
func BenchmarkMCB8RepackSteadyState(b *testing.B) {
	const liveJobs = 4096
	const nNodes = 4096
	rng := rand.New(rand.NewSource(99))
	nodes := make([]cluster.NodeSpec, nNodes)
	for i := range nodes {
		nodes[i] = cluster.NodeSpec{Caps: cluster.Vec{1, 1}}
	}
	in := &repackInstance{d: 2}
	for i := 0; i < liveJobs; i++ {
		in.jobs = append(in.jobs, repackJob{
			tasks:   1,
			cpuNeed: 0.05 + 0.9*rng.Float64(),
			rigid:   []float64{0.02 + 0.28*rng.Float64()},
		})
	}
	in.rebuild()
	probes := []float64{0, 1, 0.5, 0.25, 0.375, 0.4375, 0.40625, 0.40625}
	var m MCB8

	step := func(rng *rand.Rand) {
		at := rng.Intn(len(in.jobs))
		in.jobs[at] = repackJob{
			tasks:   1,
			cpuNeed: 0.05 + 0.9*rng.Float64(),
			rigid:   []float64{0.02 + 0.28*rng.Float64()},
		}
		in.rebuild()
	}

	b.Run("cold", func(b *testing.B) {
		rng := rand.New(rand.NewSource(7))
		var buf PackBuffer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			step(rng)
			for _, y := range probes {
				in.setYield(y)
				if _, ok := m.PackBuf(in.items, nodes, &buf); !ok {
					b.Fatal("pack failed")
				}
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		rng := rand.New(rand.NewSource(7))
		var buf PackBuffer
		var st RepackState
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			step(rng)
			for _, y := range probes {
				in.setYield(y)
				if _, ok := m.PackWarm(in.items, nodes, &buf, &st); !ok {
					b.Fatal("pack failed")
				}
			}
		}
	})
}
