package vectorpack

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/placement"
)

// repackInstance models one live packing instance the way core.packProbe
// builds it: a flat backing array (stride d, one row per job), items of a
// job aliasing the job's row, and a per-probe rewrite of the CPU entry.
type repackInstance struct {
	d       int
	backing []float64
	jobs    []repackJob // live jobs, in item order
	items   []Item
}

type repackJob struct {
	tasks   int
	cpuNeed float64
	rigid   []float64 // dims 1..d-1
}

func (in *repackInstance) rebuild() {
	in.backing = in.backing[:0]
	in.items = in.items[:0]
	for _, j := range in.jobs {
		row := len(in.backing)
		in.backing = append(in.backing, 0) // CPU, written per probe
		in.backing = append(in.backing, j.rigid...)
		_ = row
	}
	// Items alias their job's row, so tasks of one job collapse into one
	// group — the exact aliasing core.packProbe produces.
	for ji, j := range in.jobs {
		req := cluster.Vec(in.backing[ji*in.d : (ji+1)*in.d])
		for t := 0; t < j.tasks; t++ {
			in.items = append(in.items, Item{Req: req})
		}
	}
}

func (in *repackInstance) setYield(y float64) {
	for ji, j := range in.jobs {
		cpu := j.cpuNeed * y
		if cpu > 1 {
			cpu = 1
		}
		in.backing[ji*in.d] = cpu
	}
}

// TestPackWarmMatchesBatch is the differential property test pinning the
// warm-start kernel to the frozen batch kernel: over randomized
// arrival/completion sequences, each followed by a min-yield-style probe
// sweep, PackWarm must produce the identical assignment (and the
// identical failure verdict) to a fresh PackBuf on the same instance.
func TestPackWarmMatchesBatch(t *testing.T) {
	const sequences = 60
	const eventsPerSeq = 10 // 600 randomized events, ~3600 differential packs
	for seq := 0; seq < sequences; seq++ {
		seq := seq
		rng := rand.New(rand.NewSource(int64(1000 + seq)))
		d := 2 + seq%3 // 2, 3, 4 dimensions
		nodes := randomRepackNodes(rng, 4+rng.Intn(29), d)
		var m MCB8
		if seq%5 == 4 {
			m.Objective = placement.BestFit{}
		}
		in := &repackInstance{d: d}
		var warmBuf PackBuffer
		var st RepackState
		packs := 0
		for ev := 0; ev < eventsPerSeq; ev++ {
			// One scheduling event: a random arrival or completion...
			if len(in.jobs) == 0 || rng.Float64() < 0.6 {
				rigid := make([]float64, d-1)
				for k := range rigid {
					rigid[k] = 0.05 + 0.9*rng.Float64()
					if k > 0 && rng.Float64() < 0.5 {
						rigid[k] = 0 // higher dims often absent (GPU-less jobs)
					}
				}
				at := rng.Intn(len(in.jobs) + 1)
				in.jobs = append(in.jobs[:at], append([]repackJob{{
					tasks:   1 + rng.Intn(4),
					cpuNeed: 0.05 + 0.95*rng.Float64(),
					rigid:   rigid,
				}}, in.jobs[at:]...)...)
			} else {
				at := rng.Intn(len(in.jobs))
				in.jobs = append(in.jobs[:at], in.jobs[at+1:]...)
			}
			in.rebuild()
			// ...followed by a probe sweep over yields, mimicking
			// MaxMinYield: 0, 1, then bisection midpoints, then an
			// exact repeat of the last probe.
			yields := []float64{0, 1, 0.5, 0.75, 0.625, 0.625}
			for _, y := range yields {
				in.setYield(y)
				warm, wok := m.PackWarm(in.items, nodes, &warmBuf, &st)
				var batchBuf PackBuffer
				batch, bok := m.PackBuf(in.items, nodes, &batchBuf)
				packs++
				if wok != bok {
					t.Fatalf("seq %d event %d yield %g: warm ok=%v batch ok=%v", seq, ev, y, wok, bok)
				}
				if !wok {
					continue
				}
				for i := range batch {
					if warm[i] != batch[i] {
						t.Fatalf("seq %d event %d yield %g: item %d warm node %d batch node %d",
							seq, ev, y, i, warm[i], batch[i])
					}
				}
			}
		}
		if packs < 50 {
			t.Fatalf("seq %d: only %d packs exercised", seq, packs)
		}
	}
}

// TestPackWarmClusterChangeInvalidates pins that switching node sets
// mid-state recomputes the normalization instead of reusing the stale one.
func TestPackWarmClusterChangeInvalidates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := 2
	small := randomRepackNodes(rng, 4, d)
	big := randomRepackNodes(rng, 24, d)
	in := &repackInstance{d: d}
	for i := 0; i < 12; i++ {
		in.jobs = append(in.jobs, repackJob{tasks: 1 + i%3, cpuNeed: 0.1 + 0.05*float64(i), rigid: []float64{0.1 + 0.06*float64(i)}})
	}
	in.rebuild()
	var m MCB8
	var buf PackBuffer
	var st RepackState
	for _, nodes := range [][]cluster.NodeSpec{small, big, small, big} {
		for _, y := range []float64{0, 1, 0.5} {
			in.setYield(y)
			warm, wok := m.PackWarm(in.items, nodes, &buf, &st)
			var bb PackBuffer
			batch, bok := m.PackBuf(in.items, nodes, &bb)
			if wok != bok {
				t.Fatalf("nodes=%d yield %g: warm ok=%v batch ok=%v", len(nodes), y, wok, bok)
			}
			if wok {
				for i := range batch {
					if warm[i] != batch[i] {
						t.Fatalf("nodes=%d yield %g: item %d warm %d batch %d", len(nodes), y, i, warm[i], batch[i])
					}
				}
			}
		}
	}
}

// TestPackWarmLargeDelta pins the fallback when an event replaces more
// groups than the incremental window absorbs.
func TestPackWarmLargeDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := 2
	nodes := randomRepackNodes(rng, 64, d)
	in := &repackInstance{d: d}
	var m MCB8
	var buf PackBuffer
	var st RepackState
	for round := 0; round < 4; round++ {
		in.jobs = in.jobs[:0]
		for i := 0; i < 2*repackMaxDelta+10; i++ {
			in.jobs = append(in.jobs, repackJob{
				tasks:   1,
				cpuNeed: 0.05 + 0.9*rng.Float64(),
				rigid:   []float64{0.05 + 0.4*rng.Float64()},
			})
		}
		in.rebuild()
		for _, y := range []float64{0, 1, 0.33} {
			in.setYield(y)
			warm, wok := m.PackWarm(in.items, nodes, &buf, &st)
			var bb PackBuffer
			batch, bok := m.PackBuf(in.items, nodes, &bb)
			if wok != bok {
				t.Fatalf("round %d yield %g: warm ok=%v batch ok=%v", round, y, wok, bok)
			}
			if wok {
				for i := range batch {
					if warm[i] != batch[i] {
						t.Fatalf("round %d yield %g: item %d warm %d batch %d", round, y, i, warm[i], batch[i])
					}
				}
			}
		}
	}
	if st.Rebuilds < 4 {
		t.Fatalf("expected a rebuild per wholesale replacement, got %d", st.Rebuilds)
	}
}

// TestPackWarmExactRepeatHits pins that a repeated probe of an unchanged
// instance takes the replay fast path.
func TestPackWarmExactRepeatHits(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := 2
	nodes := randomRepackNodes(rng, 16, d)
	in := &repackInstance{d: d}
	for i := 0; i < 20; i++ {
		in.jobs = append(in.jobs, repackJob{tasks: 1 + i%2, cpuNeed: 0.1 + 0.04*float64(i), rigid: []float64{0.05 + 0.04*float64(i)}})
	}
	in.rebuild()
	var m MCB8
	var buf PackBuffer
	var st RepackState
	in.setYield(0.5)
	a1, ok1 := m.PackWarm(in.items, nodes, &buf, &st)
	if !ok1 {
		t.Fatal("first pack failed")
	}
	saved := append([]int(nil), a1...)
	a2, ok2 := m.PackWarm(in.items, nodes, &buf, &st)
	if !ok2 || st.Repeats == 0 {
		t.Fatalf("repeat probe: ok=%v repeats=%d", ok2, st.Repeats)
	}
	for i := range saved {
		if a2[i] != saved[i] {
			t.Fatalf("replayed assignment diverges at item %d: %d vs %d", i, a2[i], saved[i])
		}
	}
}

func randomRepackNodes(rng *rand.Rand, n, d int) []cluster.NodeSpec {
	nodes := make([]cluster.NodeSpec, n)
	for i := range nodes {
		caps := make(cluster.Vec, d)
		caps[0] = 0.5 + 1.5*rng.Float64()
		caps[1] = 0.5 + 1.5*rng.Float64()
		for k := 2; k < d; k++ {
			if rng.Float64() < 0.5 {
				caps[k] = rng.Float64()
			}
		}
		nodes[i] = cluster.NodeSpec{Caps: caps}
	}
	return nodes
}
