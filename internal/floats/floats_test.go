package floats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{1, 1, true},
		{1, 1 + Eps/2, true},
		{1, 1 + 2*Eps, false},
		{0, 0, true},
		{-1, 1, false},
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b); got != c.want {
			t.Errorf("AlmostEqual(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestOrderingHelpers(t *testing.T) {
	if !LessEq(1, 1) || !LessEq(1, 1+Eps/2) || LessEq(1+2*Eps, 1) {
		t.Error("LessEq boundary behaviour wrong")
	}
	if !GreaterEq(1, 1) || GreaterEq(1, 1+2*Eps) {
		t.Error("GreaterEq boundary behaviour wrong")
	}
	if Less(1, 1) || !Less(1, 1+2*Eps) {
		t.Error("Less boundary behaviour wrong")
	}
	if Greater(1, 1) || !Greater(1+2*Eps, 1) {
		t.Error("Greater boundary behaviour wrong")
	}
	if !IsZero(Eps/2) || IsZero(2*Eps) {
		t.Error("IsZero boundary behaviour wrong")
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %v", got)
	}
	if got := Clamp01(1.5); got != 1 {
		t.Errorf("Clamp01(1.5) = %v", got)
	}
}

func TestNonNeg(t *testing.T) {
	if got := NonNeg(-Eps / 2); got != 0 {
		t.Errorf("NonNeg(-Eps/2) = %v, want 0", got)
	}
	if got := NonNeg(-1); got != -1 {
		t.Errorf("NonNeg(-1) = %v, want -1 (genuine errors stay visible)", got)
	}
	if got := NonNeg(2); got != 2 {
		t.Errorf("NonNeg(2) = %v", got)
	}
}

// Property: Clamp always lands inside [lo, hi] and is idempotent.
func TestClampProperty(t *testing.T) {
	f := func(v, a, b float64) bool {
		if math.IsNaN(v) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		c := Clamp(v, lo, hi)
		return c >= lo && c <= hi && Clamp(c, lo, hi) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the ordering helpers are consistent — for any pair exactly one
// of Less / AlmostEqual-ish overlap / Greater classifications applies.
func TestOrderingConsistencyProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if Less(a, b) && Greater(a, b) {
			return false
		}
		if Less(a, b) && !LessEq(a, b) {
			return false
		}
		if Greater(a, b) && !GreaterEq(a, b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
