// Package floats provides tolerant floating-point comparison helpers used
// throughout the simulator. Simulation time and resource fractions are
// float64 values accumulated over many events, so direct equality tests are
// unreliable; every comparison in the scheduler and simulator goes through
// this package with a shared absolute tolerance.
package floats

import "math"

// Eps is the shared absolute tolerance for resource and time comparisons.
const Eps = 1e-9

// AlmostEqual reports whether a and b differ by at most Eps.
func AlmostEqual(a, b float64) bool {
	return math.Abs(a-b) <= Eps
}

// AlmostEqualTol reports whether a and b differ by at most tol.
func AlmostEqualTol(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// LessEq reports whether a <= b up to Eps.
func LessEq(a, b float64) bool {
	return a <= b+Eps
}

// Less reports whether a < b by more than Eps.
func Less(a, b float64) bool {
	return a < b-Eps
}

// GreaterEq reports whether a >= b up to Eps.
func GreaterEq(a, b float64) bool {
	return a >= b-Eps
}

// Greater reports whether a > b by more than Eps.
func Greater(a, b float64) bool {
	return a > b+Eps
}

// IsZero reports whether a is within Eps of zero.
func IsZero(a float64) bool {
	return math.Abs(a) <= Eps
}

// Clamp returns v restricted to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Clamp01 returns v restricted to [0, 1].
func Clamp01(v float64) float64 { return Clamp(v, 0, 1) }

// NonNeg returns v, snapping tiny negative rounding residue to exactly zero.
// Values below -Eps are returned unchanged so genuine sign errors stay
// visible to invariant checks.
func NonNeg(v float64) float64 {
	if v < 0 && v >= -Eps {
		return 0
	}
	return v
}
