package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical draws", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Errorf("zero seed produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Split("alpha")
	b := parent.Split("beta")
	a2 := New(7).Split("alpha")
	// Same label: identical stream. Different label: different stream.
	if a.Uint64() != a2.Uint64() {
		t.Error("Split is not deterministic by label")
	}
	if a.Uint64() == b.Uint64() {
		t.Error("differently labelled splits coincide")
	}
	// Splitting must not advance the parent.
	p1 := New(7)
	_ = p1.Split("x")
	p2 := New(7)
	if p1.Uint64() != p2.Uint64() {
		t.Error("Split advanced the parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v outside [0,1)", v)
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := New(4)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform(-3,5) = %v", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	for i := 0; i < 7000; i++ {
		counts[r.Intn(7)]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("Intn(7) value %d drawn %d times of 7000 (expected ~1000)", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

// moments estimates the sample mean and variance of n draws.
func moments(n int, draw func() float64) (mean, variance float64) {
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := draw()
		sum += v
		sumSq += v * v
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return mean, variance
}

func TestExpMoments(t *testing.T) {
	r := New(11)
	mean, variance := moments(200000, func() float64 { return r.Exp(2) })
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Exp(2) mean = %v, want 0.5", mean)
	}
	if math.Abs(variance-0.25) > 0.02 {
		t.Errorf("Exp(2) variance = %v, want 0.25", variance)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(12)
	mean, variance := moments(200000, r.Normal)
	if math.Abs(mean) > 0.01 {
		t.Errorf("Normal mean = %v, want 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Normal variance = %v, want 1", variance)
	}
}

func TestGammaMoments(t *testing.T) {
	cases := []struct{ shape, scale float64 }{
		{4.2, 0.94},     // Lublin short-runtime component
		{312, 0.03},     // Lublin long-runtime component
		{0.5, 2.0},      // shape < 1 boost path
		{10.23, 0.4871}, // Lublin inter-arrival
	}
	r := New(13)
	for _, c := range cases {
		wantMean := c.shape * c.scale
		wantVar := c.shape * c.scale * c.scale
		mean, variance := moments(200000, func() float64 { return r.Gamma(c.shape, c.scale) })
		if math.Abs(mean-wantMean) > 0.02*wantMean+0.01 {
			t.Errorf("Gamma(%v,%v) mean = %v, want %v", c.shape, c.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.1*wantVar+0.02 {
			t.Errorf("Gamma(%v,%v) variance = %v, want %v", c.shape, c.scale, variance, wantVar)
		}
	}
}

func TestGammaPositive(t *testing.T) {
	r := New(14)
	for i := 0; i < 10000; i++ {
		if v := r.Gamma(0.3, 1); v < 0 {
			t.Fatalf("Gamma(0.3,1) = %v < 0", v)
		}
	}
}

func TestHyperGammaMixture(t *testing.T) {
	r := New(15)
	// With p=1 only the first component is drawn; with p=0 only the second.
	mean1, _ := moments(100000, func() float64 { return r.HyperGamma(2, 1, 100, 1, 1) })
	mean2, _ := moments(100000, func() float64 { return r.HyperGamma(2, 1, 100, 1, 0) })
	if math.Abs(mean1-2) > 0.1 {
		t.Errorf("HyperGamma p=1 mean = %v, want 2", mean1)
	}
	if math.Abs(mean2-100) > 1 {
		t.Errorf("HyperGamma p=0 mean = %v, want 100", mean2)
	}
	// p=0.5: mean of mixture.
	meanMix, _ := moments(200000, func() float64 { return r.HyperGamma(2, 1, 100, 1, 0.5) })
	if math.Abs(meanMix-51) > 1 {
		t.Errorf("HyperGamma p=0.5 mean = %v, want 51", meanMix)
	}
}

func TestLognormalMoments(t *testing.T) {
	r := New(16)
	mu, sigma := 1.0, 0.5
	wantMean := math.Exp(mu + sigma*sigma/2)
	mean, _ := moments(300000, func() float64 { return r.Lognormal(mu, sigma) })
	if math.Abs(mean-wantMean) > 0.03*wantMean {
		t.Errorf("Lognormal(1,0.5) mean = %v, want %v", mean, wantMean)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(17)
	hits := 0
	for i := 0; i < 100000; i++ {
		if r.Bernoulli(0.244) {
			hits++
		}
	}
	freq := float64(hits) / 100000
	if math.Abs(freq-0.244) > 0.01 {
		t.Errorf("Bernoulli(0.244) frequency = %v", freq)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(18)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := map[int]bool{}
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 10 {
		t.Errorf("Shuffle lost elements: %v", xs)
	}
}

func TestPanicsOnBadParams(t *testing.T) {
	for name, fn := range map[string]func(){
		"Exp(0)":       func() { New(1).Exp(0) },
		"Gamma(0,1)":   func() { New(1).Gamma(0, 1) },
		"Gamma(1,0)":   func() { New(1).Gamma(1, 0) },
		"Gamma(-1,-1)": func() { New(1).Gamma(-1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
