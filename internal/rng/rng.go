// Package rng provides a deterministic, splittable pseudo-random number
// generator plus the distribution samplers needed by the workload models:
// uniform, exponential, gamma (Marsaglia–Tsang), hyper-gamma and lognormal.
//
// Everything in this repository that consumes randomness takes an explicit
// *rng.Source so that experiments are reproducible from a single seed. The
// generator is SplitMix64-seeded xoshiro256**, which is fast, has a 256-bit
// state and passes BigCrush; the standard library's math/rand/v2 uses a
// close relative, but we implement our own so that streams can be split
// deterministically by label.
package rng

import (
	"hash/fnv"
	"math"
)

// Source is a deterministic pseudo-random number generator. It is not safe
// for concurrent use; split independent streams with Split instead of
// sharing one Source across goroutines.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via SplitMix64, which guarantees a
// well-mixed non-zero initial state for any seed, including zero.
func New(seed uint64) *Source {
	r := &Source{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent stream labelled by name. Two Sources split
// from the same parent with different labels produce uncorrelated streams;
// splitting is deterministic and does not advance the parent.
func (r *Source) Split(name string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return New(r.s[0] ^ h.Sum64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits (xoshiro256**).
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform value in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bernoulli returns true with probability p.
func (r *Source) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate).
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp requires positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Normal returns a standard normal deviate using the polar Box–Muller
// transform.
func (r *Source) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Lognormal returns exp(N(mu, sigma^2)).
func (r *Source) Lognormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Normal())
}

// Gamma returns a gamma-distributed value with shape alpha and scale beta
// (mean alpha*beta), using the Marsaglia–Tsang squeeze method, with the
// standard alpha<1 boost.
func (r *Source) Gamma(alpha, beta float64) float64 {
	if alpha <= 0 || beta <= 0 {
		panic("rng: Gamma requires positive shape and scale")
	}
	if alpha < 1 {
		// Boost: gamma(a) = gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(alpha+1, beta) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return beta * d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return beta * d * v
		}
	}
}

// HyperGamma samples from a two-component gamma mixture: with probability p
// the value comes from Gamma(a1, b1), otherwise from Gamma(a2, b2). This is
// the distribution family used by the Lublin–Feitelson workload model for
// log-runtimes.
func (r *Source) HyperGamma(a1, b1, a2, b2, p float64) float64 {
	if r.Bernoulli(p) {
		return r.Gamma(a1, b1)
	}
	return r.Gamma(a2, b2)
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher–Yates).
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
