package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"

	"repro/internal/campaign"
)

// maxGridBytes bounds a grid submission body; a grid is a small JSON
// declaration, so anything past this is a client error.
const maxGridBytes = 1 << 20

// maxTraceBytes bounds a trace upload body.
const maxTraceBytes = 1 << 30

// Handler returns the daemon's HTTP API over this manager:
//
//	GET  /healthz                  liveness probe
//	POST /v1/campaigns             submit a grid (JSON body) -> 202 {id, cells}
//	POST /v1/runs?alg=...          submit a trace run (body = trace) -> 202 {id}
//	GET  /v1/jobs                  list job statuses
//	GET  /v1/jobs/{id}             one job's status + live snapshot
//	GET  /v1/jobs/{id}/events      SSE stream: status/record/event/snapshot
//	GET  /v1/jobs/{id}/records     the JSONL checkpoint (grid jobs)
//	GET  /v1/jobs/{id}/summary     final summary (live or from disk)
//
// /v1/runs accepts query parameters alg (required), penalty, load
// (target offered load), node_mix and objective.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSONResp(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /v1/campaigns", m.handleSubmitGrid)
	mux.HandleFunc("POST /v1/runs", m.handleSubmitTrace)
	mux.HandleFunc("GET /v1/jobs", m.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", m.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", m.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/records", m.handleRecords)
	mux.HandleFunc("GET /v1/jobs/{id}/summary", m.handleSummary)
	return mux
}

func (m *Manager) handleSubmitGrid(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxGridBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	g, err := campaign.ParseGrid(data)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	j, err := m.SubmitGrid(g)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSONResp(w, http.StatusAccepted, map[string]any{
		"id": j.ID(), "cells": len(g.Cells()),
	})
}

func (m *Manager) handleSubmitTrace(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	ts := TraceSpec{
		Algorithm: q.Get("alg"),
		NodeMix:   q.Get("node_mix"),
		Objective: q.Get("objective"),
	}
	if ts.Algorithm == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("serve: alg query parameter is required"))
		return
	}
	var err error
	if v := q.Get("penalty"); v != "" {
		if ts.Penalty, err = strconv.ParseFloat(v, 64); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad penalty: %w", err))
			return
		}
	}
	if v := q.Get("load"); v != "" {
		if ts.TargetLoad, err = strconv.ParseFloat(v, 64); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad load: %w", err))
			return
		}
	}
	j, err := m.SubmitTrace(ts, http.MaxBytesReader(w, r.Body, maxTraceBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSONResp(w, http.StatusAccepted, map[string]any{"id": j.ID()})
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := m.List()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSONResp(w, http.StatusOK, out)
}

func (m *Manager) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := m.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", r.PathValue("id")))
		return
	}
	writeJSONResp(w, http.StatusOK, j.Status())
}

// handleEvents streams the job live as Server-Sent Events: an initial
// status frame, then record/event/snapshot frames as they happen, then a
// final status frame when the job ends. The stream also ends when the
// client disconnects; frames the client is too slow to take are dropped,
// not buffered without bound.
func (m *Manager) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := m.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", r.PathValue("id")))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("serve: response writer cannot stream"))
		return
	}
	// Subscribe before the initial status read so no frame between the two
	// is missed (at worst a frame is duplicated into a fresher status).
	ch, cancel := j.Subscribe(1024)
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	if !writeSSE(w, fl, Event{Type: EventStatus, Data: j.Status()}) {
		return
	}
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				// Hub closed: the job finished. One final authoritative
				// status so clients need not poll after the stream ends.
				writeSSE(w, fl, Event{Type: EventStatus, Data: j.Status()})
				return
			}
			if !writeSSE(w, fl, e) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (m *Manager) handleRecords(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := m.Get(id); !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", id))
		return
	}
	f, err := os.Open(m.RecordsPath(id))
	if err != nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: job %q has no records", id))
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	io.Copy(w, f)
}

// handleSummary serves the final summary: from the in-memory job when
// known, else from the persisted summary document — so jobs completed
// before a restart (which Resume does not re-load) still answer.
func (m *Manager) handleSummary(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if j, ok := m.Get(id); ok {
		st := j.Status()
		if st.State != StateDone {
			httpError(w, http.StatusConflict, fmt.Errorf("serve: job %q is %s", id, st.State))
			return
		}
		writeJSONResp(w, http.StatusOK, st)
		return
	}
	data, err := os.ReadFile(m.SummaryPath(id))
	if err != nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// writeSSE emits one frame in SSE wire form; a marshal or write failure
// ends the stream.
func writeSSE(w http.ResponseWriter, fl http.Flusher, e Event) bool {
	data, err := json.Marshal(e.Data)
	if err != nil {
		return false
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data); err != nil {
		return false
	}
	fl.Flush()
	return true
}

func writeJSONResp(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSONResp(w, code, map[string]string{"error": err.Error()})
}
