package serve

import "sync"

// Event frame types published on a job's hub. Each maps to one SSE event
// type on the wire.
const (
	// EventStatus frames carry a Status — sent when the job starts running
	// and again when it reaches a terminal state.
	EventStatus = "status"
	// EventRecord frames carry a campaign.Record, one per finished cell
	// (grid jobs).
	EventRecord = "record"
	// EventSim frames carry a TraceEvent, one per scheduling transition
	// (trace jobs).
	EventSim = "event"
	// EventSnapshot frames carry an online.Snapshot — after every finished
	// cell for grid jobs, every SnapshotEvery transitions for trace jobs.
	EventSnapshot = "snapshot"
)

// Event is one frame on a job's live stream.
type Event struct {
	Type string
	Data any
}

// hub is a close-once broadcast channel set. Publishing never blocks the
// simulation: a subscriber whose buffer is full loses that frame (counted
// in dropped) rather than stalling the producer — live streams are a view,
// the JSONL checkpoint is the record.
type hub struct {
	mu      sync.Mutex
	subs    map[chan Event]struct{}
	closed  bool
	dropped int64
}

func newHub() *hub {
	return &hub{subs: map[chan Event]struct{}{}}
}

// subscribe registers a consumer with the given buffer size. After the hub
// closes (job finished), the returned channel is closed once buffered
// frames drain. The cancel function is idempotent.
func (h *hub) subscribe(buf int) (<-chan Event, func()) {
	if buf <= 0 {
		buf = 64
	}
	ch := make(chan Event, buf)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			if _, ok := h.subs[ch]; ok {
				delete(h.subs, ch)
				close(ch)
			}
			h.mu.Unlock()
		})
	}
	return ch, cancel
}

// publish fans the frame out to every subscriber, dropping it for any
// whose buffer is full.
func (h *hub) publish(e Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	for ch := range h.subs {
		select {
		case ch <- e:
		default:
			h.dropped++
		}
	}
}

// close ends the stream: every subscriber channel closes after its
// buffered frames drain, and later subscribes get an already-closed
// channel.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		close(ch)
	}
	h.subs = map[chan Event]struct{}{}
}

// Dropped reports how many frames were lost to slow subscribers.
func (h *hub) Dropped() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}
