package serve

// End-to-end coverage of the daemon layer: HTTP submit -> SSE stream ->
// summary; kill/restart checkpoint resume (byte-identical for clean
// interruptions, record-equivalent for torn final lines); concurrent
// submissions sharing one pool (run with -race); online snapshots
// agreeing with a post-hoc fold of the same records.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	dfrs "repro"
	"repro/internal/campaign"
	"repro/internal/metrics/online"
)

// testGridJSON expands to algorithms x traces cells of small lublin runs.
func testGridJSON(name string, algorithms []string, traces, jobs int) []byte {
	g := map[string]any{
		"name":           name,
		"algorithms":     algorithms,
		"families":       []map[string]any{{"kind": "lublin", "count": traces}},
		"loads":          []float64{0.7},
		"nodes":          []int{16},
		"jobs_per_trace": jobs,
	}
	data, err := json.Marshal(g)
	if err != nil {
		panic(err)
	}
	return data
}

func newTestManager(t *testing.T, opt Options) *Manager {
	t.Helper()
	if opt.Dir == "" {
		opt.Dir = t.TempDir()
	}
	m, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// waitDone blocks until the job leaves the pool and returns its status.
func waitDone(t *testing.T, j *Job) Status {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish", j.ID())
	}
	return j.Status()
}

// submitJSON posts a body and decodes the JSON response into out.
func submitJSON(t *testing.T, url string, body []byte, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestGridEndToEndHTTP(t *testing.T) {
	m := newTestManager(t, Options{})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	var sub struct {
		ID    string `json:"id"`
		Cells int    `json:"cells"`
	}
	code := submitJSON(t, srv.URL+"/v1/campaigns", testGridJSON("e2e", []string{"fcfs", "greedy"}, 3, 60), &sub)
	if code != http.StatusAccepted || sub.ID == "" || sub.Cells != 6 {
		t.Fatalf("submit: code=%d id=%q cells=%d", code, sub.ID, sub.Cells)
	}
	j, ok := m.Get(sub.ID)
	if !ok {
		t.Fatalf("submitted job %s unknown to manager", sub.ID)
	}
	st := waitDone(t, j)
	if st.State != StateDone || st.DoneCells != 6 || st.TotalCells != 6 {
		t.Fatalf("final status: %+v", st)
	}
	if st.Snapshot.Cells != 6 || st.Snapshot.Jobs != 6*60 {
		t.Fatalf("snapshot folded %d cells, %d jobs; want 6 cells, 360 jobs", st.Snapshot.Cells, st.Snapshot.Jobs)
	}

	// The summary endpoint agrees with the in-memory status.
	var sum Status
	resp, err := http.Get(srv.URL + "/v1/jobs/" + sub.ID + "/summary")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sum.State != StateDone || sum.Snapshot != st.Snapshot {
		t.Fatalf("summary %+v disagrees with status %+v", sum, st)
	}

	// The served records fold to the same record-level aggregates the
	// job's own aggregator reports — and the quantile sketch is sane.
	resp, err = http.Get(srv.URL + "/v1/jobs/" + sub.ID + "/records")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := campaign.ReadRecords(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("served %d records, want 6", len(recs))
	}
	fold := online.New()
	for _, rec := range recs {
		fold.ObserveRecord(rec)
	}
	fs, ss := fold.Snapshot(), st.Snapshot
	if fs.Cells != ss.Cells || fs.FinishedJobs != ss.FinishedJobs ||
		fs.Cost != ss.Cost || fs.Utilization != ss.Utilization {
		t.Errorf("record fold %+v disagrees with live snapshot %+v", fs, ss)
	}
	if !(ss.StretchP50 >= 1 && ss.StretchP50 <= ss.StretchP95 &&
		ss.StretchP95 <= ss.StretchP99 && ss.StretchP99 <= ss.MaxStretch) {
		t.Errorf("quantiles not monotone: p50=%g p95=%g p99=%g max=%g",
			ss.StretchP50, ss.StretchP95, ss.StretchP99, ss.MaxStretch)
	}
}

func TestTraceEndToEndHTTP(t *testing.T) {
	tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 7, Nodes: 16, Jobs: 90, Name: "serve-trace"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	encoded := buf.Bytes()

	m := newTestManager(t, Options{SnapshotEvery: 16})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	var sub struct {
		ID string `json:"id"`
	}
	code := submitJSON(t, srv.URL+"/v1/runs?alg=greedy-pmtn&penalty=300&load=0.8", encoded, &sub)
	if code != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit: code=%d id=%q", code, sub.ID)
	}
	j, _ := m.Get(sub.ID)
	st := waitDone(t, j)
	if st.State != StateDone {
		t.Fatalf("final status: %+v", st)
	}

	// The served run is deterministic, so its snapshot must be identical
	// to a direct RunStream with the same aggregator wiring.
	want := dfrs.NewOnlineAggregator()
	_, err = dfrs.RunStream(context.Background(), bytes.NewReader(encoded), "greedy-pmtn",
		dfrs.WithPenalty(300), dfrs.WithOnlineMetrics(want),
		dfrs.WithTargetLoad(0.8), dfrs.WithCurrentLoad(mustMeasure(t, encoded)))
	if err != nil {
		t.Fatal(err)
	}
	if ws := want.Snapshot(); st.Snapshot != ws {
		t.Errorf("served snapshot %+v != direct run snapshot %+v", st.Snapshot, ws)
	}
	if st.Snapshot.Jobs != 90 || st.Snapshot.Submitted != 90 {
		t.Errorf("snapshot saw %d/%d jobs, want 90/90", st.Snapshot.Jobs, st.Snapshot.Submitted)
	}
}

func mustMeasure(t *testing.T, encoded []byte) float64 {
	t.Helper()
	cur, _, err := dfrs.MeasureStreamLoad(bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	return cur
}

func TestSubmitValidationHTTP(t *testing.T) {
	m := newTestManager(t, Options{})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	cases := []struct {
		name string
		url  string
		body []byte
	}{
		{"malformed grid", "/v1/campaigns", []byte("{not json")},
		{"unknown grid field", "/v1/campaigns", []byte(`{"name":"x","algorithms":["fcfs"],"families":[{"kind":"lublin","count":1}],"loadz":[0.7]}`)},
		{"unknown algorithm grid", "/v1/campaigns", testGridJSON("bad", []string{"no-such-alg"}, 1, 10)},
		{"missing alg", "/v1/runs", []byte("id submit\n")},
		{"unknown alg", "/v1/runs?alg=no-such-alg", []byte("id submit\n")},
		{"bad trace body", "/v1/runs?alg=fcfs", []byte("not a trace\n")},
		{"bad penalty", "/v1/runs?alg=fcfs&penalty=abc", []byte("")},
	}
	for _, tc := range cases {
		if code := submitJSON(t, srv.URL+tc.url, tc.body, nil); code != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400", tc.name, code)
		}
	}
	if len(m.List()) != 0 {
		t.Errorf("rejected submissions left %d jobs behind", len(m.List()))
	}
	resp, err := http.Get(srv.URL + "/v1/jobs/deadbeef0000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status: got %d, want 404", resp.StatusCode)
	}
}

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	event string
	data  []byte
}

func readSSE(t *testing.T, url string) []sseFrame {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if cur.event != "" {
				frames = append(frames, cur)
			}
			cur = sseFrame{}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return frames
}

func TestSSELiveStream(t *testing.T) {
	// One pool slot: a blocker campaign holds it, so the target job is
	// still pending when the SSE client connects and every frame of its
	// run reaches the wire.
	m := newTestManager(t, Options{Jobs: 1})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	var blocker, target struct {
		ID string `json:"id"`
	}
	submitJSON(t, srv.URL+"/v1/campaigns", testGridJSON("blocker", []string{"fcfs", "greedy"}, 4, 2000), &blocker)
	// Submit the target only once the blocker holds the pool slot, so the
	// target cannot start before the SSE client attaches.
	bj, _ := m.Get(blocker.ID)
	for bj.Status().State == StatePending {
		time.Sleep(time.Millisecond)
	}
	submitJSON(t, srv.URL+"/v1/campaigns", testGridJSON("target", []string{"fcfs"}, 2, 40), &target)

	frames := readSSE(t, srv.URL+"/v1/jobs/"+target.ID+"/events")
	if len(frames) < 4 {
		t.Fatalf("SSE delivered %d frames, want at least initial status + records + final status", len(frames))
	}
	counts := map[string]int{}
	for _, f := range frames {
		counts[f.event]++
	}
	if counts[EventRecord] != 2 {
		t.Errorf("SSE carried %d record frames, want 2 (one per cell)", counts[EventRecord])
	}
	if counts[EventSnapshot] != 2 {
		t.Errorf("SSE carried %d snapshot frames, want 2", counts[EventSnapshot])
	}
	first, last := frames[0], frames[len(frames)-1]
	if first.event != EventStatus || last.event != EventStatus {
		t.Fatalf("stream not status-framed: first=%s last=%s", first.event, last.event)
	}
	var lastSt Status
	if err := json.Unmarshal(last.data, &lastSt); err != nil {
		t.Fatal(err)
	}
	if lastSt.State != StateDone || lastSt.DoneCells != 2 {
		t.Errorf("final SSE status %+v, want done with 2 cells", lastSt)
	}
}

// runGridToCompletion runs one grid submission to done and returns the
// manager's state dir, the job's spec file name, and the checkpoint bytes.
func runGridToCompletion(t *testing.T, gridJSON []byte) (dir, specName string, checkpoint []byte, st Status) {
	t.Helper()
	dir = t.TempDir()
	m := newTestManager(t, Options{Dir: dir})
	g, err := campaign.ParseGrid(gridJSON)
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.SubmitGrid(g)
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, j)
	if st.State != StateDone {
		t.Fatalf("reference run: %+v", st)
	}
	checkpoint, err = os.ReadFile(m.RecordsPath(j.ID()))
	if err != nil {
		t.Fatal(err)
	}
	return dir, j.ID() + ".spec.json", checkpoint, st
}

// seedInterruptedState fabricates a state dir holding the given spec and a
// partial checkpoint with no summary — exactly what a killed daemon leaves.
func seedInterruptedState(t *testing.T, srcDir, specName string, partial []byte) string {
	t.Helper()
	dir := t.TempDir()
	spec, err := os.ReadFile(srcDir + "/" + specName)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir+"/"+specName, spec, 0o644); err != nil {
		t.Fatal(err)
	}
	id := strings.TrimSuffix(specName, ".spec.json")
	if err := os.WriteFile(dir+"/"+id+".jsonl", partial, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestResumeByteIdenticalCheckpoint(t *testing.T) {
	grid := testGridJSON("resume", []string{"fcfs", "greedy"}, 3, 50)
	srcDir, specName, full, refSt := runGridToCompletion(t, grid)

	// A context-cancelled kill stops between cells: the checkpoint ends at
	// a line boundary. Keep the first two records and resume the rest.
	lines := bytes.SplitAfter(full, []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("reference checkpoint has %d lines", len(lines))
	}
	partial := bytes.Join(lines[:2], nil)

	dir := seedInterruptedState(t, srcDir, specName, partial)
	m := newTestManager(t, Options{Dir: dir})
	resumed, err := m.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 1 {
		t.Fatalf("resumed %v, want exactly the interrupted job", resumed)
	}
	j, _ := m.Get(resumed[0])
	st := waitDone(t, j)
	if st.State != StateDone || st.DoneCells != st.TotalCells {
		t.Fatalf("resumed run: %+v", st)
	}
	got, err := os.ReadFile(m.RecordsPath(j.ID()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full) {
		t.Errorf("resumed checkpoint differs from uninterrupted run:\n got %d bytes\nwant %d bytes", len(got), len(full))
	}
	// Record-level aggregates keep full history across the restart; the
	// snapshot's cell folds must match the uninterrupted run's.
	if st.Snapshot.Cells != refSt.Snapshot.Cells || st.Snapshot.Cost != refSt.Snapshot.Cost ||
		st.Snapshot.Utilization != refSt.Snapshot.Utilization {
		t.Errorf("resumed cell folds %+v != reference %+v", st.Snapshot, refSt.Snapshot)
	}
	if _, err := os.Stat(m.SummaryPath(j.ID())); err != nil {
		t.Errorf("resumed job wrote no summary: %v", err)
	}
}

func TestResumeRepairsTornLine(t *testing.T) {
	grid := testGridJSON("torn", []string{"fcfs", "greedy"}, 2, 50)
	srcDir, specName, full, _ := runGridToCompletion(t, grid)

	// A hard kill mid-write tears the final line. The torn cell must be
	// recomputed: the record set after resume equals the reference set.
	lines := bytes.SplitAfter(full, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("reference checkpoint has %d lines", len(lines))
	}
	torn := append(bytes.Join(lines[:1], nil), lines[1][:len(lines[1])/2]...)

	dir := seedInterruptedState(t, srcDir, specName, torn)
	m := newTestManager(t, Options{Dir: dir})
	resumed, err := m.Resume()
	if err != nil {
		t.Fatal(err)
	}
	j, _ := m.Get(resumed[0])
	if st := waitDone(t, j); st.State != StateDone {
		t.Fatalf("resumed run: %+v", st)
	}
	got, err := os.ReadFile(m.RecordsPath(j.ID()))
	if err != nil {
		t.Fatal(err)
	}
	wantRecs, err := campaign.ReadRecords(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	gotRecs, err := campaign.ReadRecords(bytes.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	campaign.SortRecords(wantRecs)
	campaign.SortRecords(gotRecs)
	if !reflect.DeepEqual(gotRecs, wantRecs) {
		t.Errorf("resumed records differ from reference: got %d, want %d", len(gotRecs), len(wantRecs))
	}
}

func TestResumeSkipsCompletedJobs(t *testing.T) {
	dir, _, _, _ := runGridToCompletion(t, testGridJSON("completed", []string{"fcfs"}, 1, 30))
	m := newTestManager(t, Options{Dir: dir})
	resumed, err := m.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 0 {
		t.Errorf("resume re-enqueued completed jobs: %v", resumed)
	}
}

func TestCloseInterruptsAndResumes(t *testing.T) {
	dir := t.TempDir()
	m, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	g, err := campaign.ParseGrid(testGridJSON("interrupt", []string{"fcfs", "greedy", "easy"}, 4, 80))
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.SubmitGrid(g)
	if err != nil {
		t.Fatal(err)
	}
	// Let some work land, then drain — the SIGTERM path.
	ch, cancel := j.Subscribe(64)
	for e := range ch {
		if e.Type == EventRecord {
			break
		}
	}
	cancel()
	m.Close()
	st := j.Status()
	if st.State != StateInterrupted && st.State != StateDone {
		t.Fatalf("state after Close: %+v", st)
	}

	// A fresh manager over the same dir finishes exactly the missing cells.
	m2 := newTestManager(t, Options{Dir: dir})
	resumed, err := m2.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if st.State == StateInterrupted {
		if len(resumed) != 1 {
			t.Fatalf("resumed %v, want the interrupted job", resumed)
		}
		j2, _ := m2.Get(resumed[0])
		if st2 := waitDone(t, j2); st2.State != StateDone || st2.DoneCells != 12 {
			t.Fatalf("resumed run: %+v", st2)
		}
	}
	f, err := os.Open(m2.RecordsPath(j.ID()))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := campaign.ReadRecords(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 12 {
		t.Errorf("final checkpoint holds %d records, want 12", len(recs))
	}
}

func TestConcurrentSubmissionsSharePool(t *testing.T) {
	m := newTestManager(t, Options{Jobs: 2})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	const n = 4
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sub struct {
				ID string `json:"id"`
			}
			code := submitJSON(t, srv.URL+"/v1/campaigns",
				testGridJSON(fmt.Sprintf("conc%d", i), []string{"fcfs", "greedy"}, 2, 40), &sub)
			if code != http.StatusAccepted {
				t.Errorf("submit %d: code %d", i, code)
				return
			}
			ids[i] = sub.ID
		}(i)
	}
	// Hammer the read endpoints while the pool churns.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(srv.URL + "/v1/jobs")
			if err == nil {
				var sts []Status
				json.NewDecoder(resp.Body).Decode(&sts)
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()
	for i, id := range ids {
		if id == "" {
			continue
		}
		j, ok := m.Get(id)
		if !ok {
			t.Errorf("job %d (%s) unknown", i, id)
			continue
		}
		if st := waitDone(t, j); st.State != StateDone || st.Snapshot.Cells != 4 {
			t.Errorf("job %d: %+v", i, st)
		}
	}
	close(stop)
	readers.Wait()
}

func TestHubDropsSlowSubscribers(t *testing.T) {
	h := newHub()
	ch, cancel := h.subscribe(1)
	defer cancel()
	h.publish(Event{Type: "a"})
	h.publish(Event{Type: "b"}) // buffer full: dropped, not blocking
	if d := h.Dropped(); d != 1 {
		t.Errorf("dropped %d frames, want 1", d)
	}
	if e := <-ch; e.Type != "a" {
		t.Errorf("got %q, want first frame", e.Type)
	}
	h.close()
	if _, ok := <-ch; ok {
		t.Error("subscriber channel not closed after hub close")
	}
	// Late subscribers see an immediately closed stream.
	late, lateCancel := h.subscribe(1)
	defer lateCancel()
	if _, ok := <-late; ok {
		t.Error("late subscriber channel not closed")
	}
}
