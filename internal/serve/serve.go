// Package serve is the simulation-as-a-service layer: a job manager that
// accepts campaign-grid and single-trace submissions, executes them on a
// bounded worker pool, aggregates metrics online while they run
// (internal/metrics/online), and persists enough state that a killed and
// restarted daemon resumes incomplete campaigns at cell granularity.
//
// # State directory
//
// Every submission gets an ID and up to four files under Options.Dir:
//
//	<id>.spec.json    the submission (grid or trace parameters); written first
//	<id>.trace        the uploaded trace body (trace submissions only)
//	<id>.jsonl        the campaign record checkpoint (grid submissions only)
//	<id>.summary.json the final status; its presence marks the job complete
//
// On restart, Resume scans the directory for specs without a summary and
// re-enqueues them. Grid jobs reopen their JSONL checkpoint, fold the
// already-finished records back into the online aggregator, and run only
// the missing cells; with the default single cell-worker, records land in
// deterministic cell order, so the checkpoint of an interrupted-and-resumed
// campaign is byte-identical to an uninterrupted run. Trace jobs have no
// intermediate checkpoint and re-run from the stored trace.
//
// # Live metrics
//
// Each job owns an online.Aggregator fed from the campaign per-job tap
// (CampaignOptions.OnJob) and record stream, or — for trace runs — from
// WithOnlineMetrics. Snapshots are safe to read while the job runs; after
// a resume, the stretch quantiles cover the cells run since the restart
// (per-job outcomes of pre-restart cells are not re-derivable from
// records), while cell-level folds (cost, utilization, degradation)
// retain full history.
//
// The HTTP front-end over this manager lives in http.go; cmd/dfrs-serve
// wires it to a listener and signal-driven graceful shutdown.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	dfrs "repro"
	"repro/internal/campaign"
	"repro/internal/metrics/online"
	"repro/internal/workload"
)

// Submission kinds.
const (
	KindGrid  = "grid"
	KindTrace = "trace"
)

// State is a job's lifecycle phase.
type State string

const (
	// StatePending jobs wait for a pool slot.
	StatePending State = "pending"
	// StateRunning jobs hold a pool slot.
	StateRunning State = "running"
	// StateDone jobs finished and wrote their summary.
	StateDone State = "done"
	// StateFailed jobs hit a non-cancellation error; they do not resume.
	StateFailed State = "failed"
	// StateInterrupted jobs were stopped by shutdown; Resume re-enqueues
	// them on the next boot.
	StateInterrupted State = "interrupted"
)

// Options configures a Manager.
type Options struct {
	// Dir is the state directory (required; created if missing).
	Dir string
	// Jobs bounds concurrently executing submissions; <=0 means 2.
	Jobs int
	// CellWorkers bounds concurrent cells within one campaign; <=0 means
	// 1, which keeps records in deterministic cell order — the property
	// behind byte-identical checkpoint resume. Raise it only for
	// throughput-over-reproducibility deployments.
	CellWorkers int
	// SnapshotEvery is the number of scheduling events between snapshot
	// frames on a trace job's event stream; <=0 means 256. Campaign jobs
	// snapshot after every finished cell instead.
	SnapshotEvery int
}

// TraceSpec holds the run parameters of a trace submission.
type TraceSpec struct {
	Algorithm string  `json:"algorithm"`
	Penalty   float64 `json:"penalty"`
	// TargetLoad, when positive, rescales the trace to this offered load
	// (two-pass: the stored trace is measured, then replayed scaled).
	TargetLoad float64 `json:"target_load,omitempty"`
	NodeMix    string  `json:"node_mix,omitempty"`
	Objective  string  `json:"objective,omitempty"`
}

// Spec is the persisted submission: what to run, not how far it got.
type Spec struct {
	ID          string         `json:"id"`
	Kind        string         `json:"kind"`
	SubmittedAt time.Time      `json:"submitted_at"`
	Grid        *campaign.Grid `json:"grid,omitempty"`
	Trace       *TraceSpec     `json:"trace,omitempty"`
}

// Status is a point-in-time view of a job, also the summary document
// persisted at completion.
type Status struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// TotalCells/DoneCells track campaign progress (grid jobs only);
	// DoneCells includes cells satisfied by the checkpoint on resume.
	TotalCells int `json:"total_cells,omitempty"`
	DoneCells  int `json:"done_cells,omitempty"`
	// Snapshot is the live online-metrics view; see online.Snapshot for
	// the sketch tolerance on the quantile fields.
	Snapshot online.Snapshot `json:"snapshot"`
}

// Job is one submission in flight (or finished).
type Job struct {
	spec   Spec
	agg    *online.Aggregator
	hub    *hub
	cancel context.CancelFunc
	done   chan struct{}

	mu         sync.Mutex
	state      State
	errMsg     string
	totalCells int
	doneCells  int
}

// ID returns the job's submission ID.
func (j *Job) ID() string { return j.spec.ID }

// Spec returns the persisted submission.
func (j *Job) Spec() Spec { return j.spec }

// Done is closed when the job leaves the pool (done, failed or
// interrupted).
func (j *Job) Done() <-chan struct{} { return j.done }

// Status returns the job's current state and live metric snapshot.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID: j.spec.ID, Kind: j.spec.Kind, State: j.state, Error: j.errMsg,
		TotalCells: j.totalCells, DoneCells: j.doneCells,
		Snapshot: j.agg.Snapshot(),
	}
}

// Subscribe attaches a live event consumer (see Event); slow consumers
// drop frames rather than stall the simulation. The returned cancel is
// idempotent and must be called when done.
func (j *Job) Subscribe(buf int) (<-chan Event, func()) { return j.hub.subscribe(buf) }

func (j *Job) setState(s State, msg string) {
	j.mu.Lock()
	j.state, j.errMsg = s, msg
	j.mu.Unlock()
}

func (j *Job) setCells(done, total int) {
	j.mu.Lock()
	j.doneCells, j.totalCells = done, total
	j.mu.Unlock()
}

// Manager owns the job table, the state directory and the worker pool.
type Manager struct {
	opt    Options
	ctx    context.Context
	cancel context.CancelFunc
	slots  chan struct{}
	wg     sync.WaitGroup

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string
}

// New creates a Manager over the state directory, creating it if needed.
func New(opt Options) (*Manager, error) {
	if opt.Dir == "" {
		return nil, errors.New("serve: Options.Dir is required")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, err
	}
	if opt.Jobs <= 0 {
		opt.Jobs = 2
	}
	if opt.CellWorkers <= 0 {
		opt.CellWorkers = 1
	}
	if opt.SnapshotEvery <= 0 {
		opt.SnapshotEvery = 256
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		opt: opt, ctx: ctx, cancel: cancel,
		slots: make(chan struct{}, opt.Jobs),
		jobs:  map[string]*Job{},
	}, nil
}

// Close stops every running job (their checkpoints stay valid and
// resumable) and waits for the workers to unwind — the SIGTERM drain path.
func (m *Manager) Close() {
	m.cancel()
	m.wg.Wait()
}

// Get returns the job with the given ID, if the manager knows it.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns every known job in submission order.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// SubmitGrid validates and enqueues a campaign grid. The spec is persisted
// before the job is visible, so a submission either survives restarts or
// never existed.
func (m *Manager) SubmitGrid(g *campaign.Grid) (*Job, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	// Grid validation leaves algorithm names to the runner (the CLI wants
	// its error at run time); a service wants it at submission time.
	for _, alg := range g.Algorithms {
		if !dfrs.KnownAlgorithm(alg) {
			return nil, fmt.Errorf("serve: unknown algorithm %q", alg)
		}
	}
	id, err := newID()
	if err != nil {
		return nil, err
	}
	spec := Spec{ID: id, Kind: KindGrid, SubmittedAt: time.Now().UTC(), Grid: g}
	if err := m.writeJSON(m.path(id, ".spec.json"), spec); err != nil {
		return nil, err
	}
	j := m.add(spec)
	m.start(j)
	return j, nil
}

// SubmitTrace stores the uploaded trace body and enqueues a single
// streaming run over it. The trace header is validated eagerly so a
// malformed upload fails the submission, not the run.
func (m *Manager) SubmitTrace(ts TraceSpec, trace io.Reader) (*Job, error) {
	if !dfrs.KnownAlgorithm(ts.Algorithm) {
		return nil, fmt.Errorf("serve: unknown algorithm %q", ts.Algorithm)
	}
	if ts.Penalty < 0 {
		return nil, fmt.Errorf("serve: negative penalty %g", ts.Penalty)
	}
	if ts.NodeMix != "" && !dfrs.ValidNodeMix(ts.NodeMix) {
		return nil, fmt.Errorf("serve: unknown node mix %q", ts.NodeMix)
	}
	if ts.Objective != "" && !dfrs.KnownObjective(ts.Objective) {
		return nil, fmt.Errorf("serve: unknown objective %q", ts.Objective)
	}
	id, err := newID()
	if err != nil {
		return nil, err
	}
	tracePath := m.path(id, ".trace")
	f, err := os.Create(tracePath)
	if err != nil {
		return nil, err
	}
	if _, err := io.Copy(f, trace); err != nil {
		f.Close()
		os.Remove(tracePath)
		return nil, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tracePath)
		return nil, err
	}
	if err := m.validateTraceFile(tracePath); err != nil {
		os.Remove(tracePath)
		return nil, err
	}
	spec := Spec{ID: id, Kind: KindTrace, SubmittedAt: time.Now().UTC(), Trace: &ts}
	if err := m.writeJSON(m.path(id, ".spec.json"), spec); err != nil {
		os.Remove(tracePath)
		return nil, err
	}
	j := m.add(spec)
	m.start(j)
	return j, nil
}

// validateTraceFile checks the stored upload parses as a trace header.
func (m *Manager) validateTraceFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := workload.StreamTrace(f); err != nil {
		return fmt.Errorf("serve: bad trace upload: %w", err)
	}
	return nil
}

// Resume scans the state directory for submissions without a summary and
// re-enqueues them in submission order, returning their IDs. Call it once,
// before serving traffic.
func (m *Manager) Resume() ([]string, error) {
	entries, err := os.ReadDir(m.opt.Dir)
	if err != nil {
		return nil, err
	}
	var specs []Spec
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".spec.json") {
			continue
		}
		id := strings.TrimSuffix(name, ".spec.json")
		if _, err := os.Stat(m.path(id, ".summary.json")); err == nil {
			continue // completed before the restart
		}
		data, err := os.ReadFile(filepath.Join(m.opt.Dir, name))
		if err != nil {
			return nil, err
		}
		var spec Spec
		if err := json.Unmarshal(data, &spec); err != nil {
			return nil, fmt.Errorf("serve: corrupt spec %s: %w", name, err)
		}
		if spec.ID != id {
			return nil, fmt.Errorf("serve: spec %s declares ID %q", name, spec.ID)
		}
		specs = append(specs, spec)
	}
	sort.Slice(specs, func(i, k int) bool {
		if !specs[i].SubmittedAt.Equal(specs[k].SubmittedAt) {
			return specs[i].SubmittedAt.Before(specs[k].SubmittedAt)
		}
		return specs[i].ID < specs[k].ID
	})
	ids := make([]string, 0, len(specs))
	for _, spec := range specs {
		j := m.add(spec)
		m.start(j)
		ids = append(ids, spec.ID)
	}
	return ids, nil
}

func (m *Manager) add(spec Spec) *Job {
	j := &Job{
		spec: spec, agg: online.New(), hub: newHub(),
		done: make(chan struct{}), state: StatePending,
	}
	m.mu.Lock()
	m.jobs[spec.ID] = j
	m.order = append(m.order, spec.ID)
	m.mu.Unlock()
	return j
}

// start runs the job on the bounded pool: acquire a slot, execute, write
// the summary, publish the terminal status.
func (m *Manager) start(j *Job) {
	ctx, cancel := context.WithCancel(m.ctx)
	j.cancel = cancel
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer close(j.done)
		defer j.hub.close()
		defer cancel()
		select {
		case m.slots <- struct{}{}:
		case <-ctx.Done():
			j.setState(StateInterrupted, "shut down before starting; resumes on restart")
			return
		}
		defer func() { <-m.slots }()
		j.setState(StateRunning, "")
		j.hub.publish(Event{Type: EventStatus, Data: j.Status()})

		var err error
		switch j.spec.Kind {
		case KindGrid:
			err = m.runGrid(ctx, j)
		case KindTrace:
			err = m.runTrace(ctx, j)
		default:
			err = fmt.Errorf("serve: unknown submission kind %q", j.spec.Kind)
		}
		switch {
		case err == nil:
			if werr := m.writeJSON(m.path(j.spec.ID, ".summary.json"), finalStatus(j)); werr != nil {
				j.setState(StateFailed, werr.Error())
			} else {
				j.setState(StateDone, "")
			}
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			j.setState(StateInterrupted, "interrupted; resumes on restart")
		default:
			j.setState(StateFailed, err.Error())
		}
		j.hub.publish(Event{Type: EventStatus, Data: j.Status()})
	}()
}

// finalStatus is the job's status stamped done, the summary document.
func finalStatus(j *Job) Status {
	st := j.Status()
	st.State = StateDone
	return st
}

// runGrid executes (or resumes) a campaign submission against its JSONL
// checkpoint.
func (m *Manager) runGrid(ctx context.Context, j *Job) error {
	ckptPath := m.path(j.spec.ID, ".jsonl")
	// Fold the already-checkpointed records back into the aggregator so a
	// resumed campaign's record-level metrics keep full history.
	skip := map[string]bool{}
	if f, err := os.Open(ckptPath); err == nil {
		recs, rerr := campaign.ReadRecords(f)
		f.Close()
		if rerr != nil {
			return rerr
		}
		for _, rec := range recs {
			j.agg.ObserveRecord(rec)
			skip[rec.Key] = true
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	total := len(j.spec.Grid.Cells())
	prior := total - j.spec.Grid.Remaining(skip)
	j.setCells(prior, total)

	run, err := dfrs.Campaign(ctx, *j.spec.Grid, dfrs.CampaignOptions{
		Workers:    m.opt.CellWorkers,
		Checkpoint: ckptPath,
		Resume:     true,
		OnJob: func(_ dfrs.CampaignCell, jr dfrs.JobResult) {
			j.agg.ObserveJob(jr)
		},
		Progress: func(done, _ int, rec dfrs.CampaignRecord) {
			j.agg.ObserveRecord(rec)
			j.setCells(prior+done, total)
			j.hub.publish(Event{Type: EventRecord, Data: rec})
			j.hub.publish(Event{Type: EventSnapshot, Data: j.agg.Snapshot()})
		},
	})
	if err != nil {
		return err
	}
	_, err = run.Wait()
	return err
}

// runTrace executes a trace submission as one streaming simulation.
func (m *Manager) runTrace(ctx context.Context, j *Job) error {
	ts := j.spec.Trace
	tracePath := m.path(j.spec.ID, ".trace")
	opts := []dfrs.RunOption{
		dfrs.WithPenalty(ts.Penalty),
		dfrs.WithOnlineMetrics(j.agg),
		dfrs.WithObserver(&traceEvents{j: j, every: m.opt.SnapshotEvery}),
	}
	if ts.NodeMix != "" {
		opts = append(opts, dfrs.WithNodeMix(ts.NodeMix))
	}
	if ts.Objective != "" {
		opts = append(opts, dfrs.WithObjective(ts.Objective))
	}
	if ts.TargetLoad > 0 {
		// The stored upload is seekable, so the two-pass scheme applies:
		// measure the natural load, then replay scaled.
		mf, err := os.Open(tracePath)
		if err != nil {
			return err
		}
		cur, _, err := dfrs.MeasureStreamLoad(mf)
		mf.Close()
		if err != nil {
			return err
		}
		if cur <= 0 {
			return fmt.Errorf("serve: trace has zero measured offered load")
		}
		opts = append(opts, dfrs.WithTargetLoad(ts.TargetLoad), dfrs.WithCurrentLoad(cur))
	}
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = dfrs.RunStream(ctx, f, ts.Algorithm, opts...)
	return err
}

// traceEvents publishes a trace run's scheduling transitions to the job's
// subscribers, with a snapshot frame every `every` events. It runs on the
// simulator goroutine, so the counter needs no lock; publishing never
// blocks (slow subscribers drop frames).
type traceEvents struct {
	j     *Job
	every int
	n     int
}

// TraceEvent is the wire form of one scheduling transition.
type TraceEvent struct {
	Kind       string  `json:"kind"`
	Time       float64 `json:"time"`
	JID        int     `json:"jid"`
	Nodes      []int   `json:"nodes,omitempty"`
	Turnaround float64 `json:"turnaround,omitempty"`
}

func (t *traceEvents) emit(e TraceEvent) {
	t.j.hub.publish(Event{Type: EventSim, Data: e})
	t.n++
	if t.n%t.every == 0 {
		t.j.hub.publish(Event{Type: EventSnapshot, Data: t.j.agg.Snapshot()})
	}
}

// JobSubmitted implements dfrs.Observer.
func (t *traceEvents) JobSubmitted(now float64, jid int) {
	t.emit(TraceEvent{Kind: "submitted", Time: now, JID: jid})
}

// JobStarted implements dfrs.Observer.
func (t *traceEvents) JobStarted(now float64, jid int, nodes []int) {
	t.emit(TraceEvent{Kind: "started", Time: now, JID: jid, Nodes: nodes})
}

// JobPreempted implements dfrs.Observer.
func (t *traceEvents) JobPreempted(now float64, jid int) {
	t.emit(TraceEvent{Kind: "preempted", Time: now, JID: jid})
}

// JobMigrated implements dfrs.Observer.
func (t *traceEvents) JobMigrated(now float64, jid int, nodes []int) {
	t.emit(TraceEvent{Kind: "migrated", Time: now, JID: jid, Nodes: nodes})
}

// JobCompleted implements dfrs.Observer.
func (t *traceEvents) JobCompleted(now float64, jid int, turnaround float64) {
	t.emit(TraceEvent{Kind: "completed", Time: now, JID: jid, Turnaround: turnaround})
}

// SchedulerInvoked implements dfrs.Observer; invocation timing is not
// streamed.
func (t *traceEvents) SchedulerInvoked(float64, string, int, time.Duration) {}

// path returns the state file for a job ID and extension.
func (m *Manager) path(id, ext string) string {
	return filepath.Join(m.opt.Dir, id+ext)
}

// RecordsPath returns the JSONL checkpoint path of a grid job.
func (m *Manager) RecordsPath(id string) string { return m.path(id, ".jsonl") }

// SummaryPath returns the persisted summary path of a job.
func (m *Manager) SummaryPath(id string) string { return m.path(id, ".summary.json") }

// writeJSON persists v atomically (temp file + rename), so readers and
// restarts never observe a torn document.
func (m *Manager) writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// newID draws a 12-hex-char random job ID.
func newID() (string, error) {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}
