package lublin

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams(128).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultParams(0).Validate(); err == nil {
		t.Error("zero-node params accepted")
	}
	bad := DefaultParams(128)
	bad.ULow = 10
	if err := bad.Validate(); err == nil {
		t.Error("uLow > uHi accepted")
	}
}

func TestGenerateRawDeterminism(t *testing.T) {
	p := DefaultParams(128)
	a, err := p.GenerateRaw(rng.New(5), 200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.GenerateRaw(rng.New(5), 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at job %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateRawShapes(t *testing.T) {
	p := DefaultParams(128)
	jobs, err := p.GenerateRaw(rng.New(1), 5000)
	if err != nil {
		t.Fatal(err)
	}
	serial := 0
	prevSubmit := -1.0
	short := 0
	for _, j := range jobs {
		if j.Size < 1 || j.Size > 128 {
			t.Fatalf("size %d out of range", j.Size)
		}
		if j.Size == 1 {
			serial++
		}
		if j.Runtime < 1 || j.Runtime > p.MaxRuntime {
			t.Fatalf("runtime %v out of range", j.Runtime)
		}
		if j.Runtime < 600 {
			short++
		}
		if j.Submit < prevSubmit {
			t.Fatal("arrivals not monotone")
		}
		prevSubmit = j.Submit
	}
	// Serial probability is 0.244; allow generous sampling slack.
	frac := float64(serial) / float64(len(jobs))
	if frac < 0.20 || frac > 0.29 {
		t.Errorf("serial fraction = %v, want ~0.244", frac)
	}
	// The hyper-gamma runtime mixture is bimodal: a substantial share of
	// jobs under 10 minutes AND a substantial share of long jobs.
	shortFrac := float64(short) / float64(len(jobs))
	if shortFrac < 0.2 || shortFrac > 0.95 {
		t.Errorf("short-job fraction = %v; runtime mixture looks wrong", shortFrac)
	}
}

func TestSizesPreferPowersOfTwo(t *testing.T) {
	p := DefaultParams(128)
	jobs, err := p.GenerateRaw(rng.New(2), 5000)
	if err != nil {
		t.Fatal(err)
	}
	pow2 := 0
	parallel := 0
	for _, j := range jobs {
		if j.Size == 1 {
			continue
		}
		parallel++
		if j.Size&(j.Size-1) == 0 {
			pow2++
		}
	}
	frac := float64(pow2) / float64(parallel)
	// At least the rounded 57.6% plus natural hits.
	if frac < 0.55 {
		t.Errorf("power-of-two fraction among parallel jobs = %v, want >= 0.55", frac)
	}
}

func TestRuntimeGrowsWithSize(t *testing.T) {
	// The p = PA*size + PB coupling makes large jobs longer on average.
	p := DefaultParams(128)
	r := rng.New(3)
	var smallSum, largeSum float64
	const n = 3000
	for i := 0; i < n; i++ {
		smallSum += p.sampleRuntime(r, 1)
		largeSum += p.sampleRuntime(r, 128)
	}
	if largeSum <= smallSum {
		t.Errorf("mean runtime small=%v large=%v; expected growth with size",
			smallSum/n, largeSum/n)
	}
}

func TestCycleWeight(t *testing.T) {
	p := DefaultParams(128)
	// The daily cycle must be positive everywhere, bounded by 1, and
	// higher at midday than in the dead of night.
	for h := 0.0; h < 24; h += 0.5 {
		w := p.cycleWeight(h)
		if w <= 0 || w > 1+1e-9 {
			t.Fatalf("cycleWeight(%v) = %v", h, w)
		}
	}
	if p.cycleWeight(12) <= p.cycleWeight(3) {
		t.Errorf("midday weight %v not above 3am weight %v", p.cycleWeight(12), p.cycleWeight(3))
	}
}

func TestAnnotateJob(t *testing.T) {
	r := rng.New(4)
	seq := AnnotateJob(r, RawJob{Submit: 5, Size: 1, Runtime: 60}, 0)
	if seq.CPUNeed != SequentialCPUNeed {
		t.Errorf("sequential CPU need = %v, want %v", seq.CPUNeed, SequentialCPUNeed)
	}
	par := AnnotateJob(r, RawJob{Submit: 6, Size: 8, Runtime: 60}, 1)
	if par.CPUNeed != ParallelCPUNeed {
		t.Errorf("parallel CPU need = %v, want %v", par.CPUNeed, ParallelCPUNeed)
	}
	// Memory distribution over many draws: 10% requirement with
	// probability 0.55, otherwise multiples of 10% from 20% to 100%.
	base := 0
	const n = 20000
	for i := 0; i < n; i++ {
		j := AnnotateJob(r, RawJob{Submit: 1, Size: 2, Runtime: 1}, i)
		frac := j.MemReq
		if frac < 0.1-1e-9 || frac > 1+1e-9 {
			t.Fatalf("memory requirement %v out of range", frac)
		}
		tenths := math.Round(frac * 10)
		if math.Abs(frac*10-tenths) > 1e-9 {
			t.Fatalf("memory requirement %v is not a multiple of 10%%", frac)
		}
		if frac < 0.15 {
			base++
		}
	}
	if got := float64(base) / n; got < 0.52 || got > 0.58 {
		t.Errorf("10%%-memory fraction = %v, want ~0.55", got)
	}
}

func TestGenerateTrace(t *testing.T) {
	tr, err := GenerateTrace(rng.New(7), DefaultParams(64), 300, "test-trace")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "test-trace" || tr.Nodes != 64 || tr.NodeMemGB != NodeMemGB {
		t.Errorf("trace metadata: %+v", tr)
	}
	if len(tr.Jobs) != 300 {
		t.Fatalf("%d jobs", len(tr.Jobs))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.OfferedLoad() <= 0 {
		t.Error("zero offered load")
	}
}

func TestGenerateTraceLoadIsScalable(t *testing.T) {
	tr, err := GenerateTrace(rng.New(8), DefaultParams(128), 400, "x")
	if err != nil {
		t.Fatal(err)
	}
	for _, load := range []float64{0.1, 0.9} {
		scaled, err := tr.ScaleToLoad(load)
		if err != nil {
			t.Fatal(err)
		}
		if got := scaled.OfferedLoad(); math.Abs(got-load) > 1e-9 {
			t.Errorf("scaled load = %v, want %v", got, load)
		}
	}
}

func TestGenerateRawRejectsNegativeCount(t *testing.T) {
	if _, err := DefaultParams(4).GenerateRaw(rng.New(1), -1); err == nil {
		t.Error("negative job count accepted")
	}
}
