// Package lublin reimplements the Lublin–Feitelson synthetic workload model
// ("The workload on parallel supercomputers: modeling the characteristics
// of rigid jobs", JPDC 63(11), 2003) for batch jobs, plus the CPU-need and
// memory-requirement annotations of the paper's Section IV-C, producing
// traces ready for the DFRS simulator.
//
// Model summary (published batch-partition parameters):
//
//   - Job size: serial with probability 0.244; otherwise a two-stage
//     log-uniform ("uniform on log2 of size": U[uLow, uMed] with
//     probability 0.86, else U[uMed, uHi]), rounded to a power of two with
//     probability 0.576.
//   - Runtime: exp of a hyper-gamma sample with gamma components
//     (4.2, 0.94) for short jobs and (312, 0.03) for long jobs; the short
//     component's probability decreases with job size as
//     p = -0.0054*size + 0.78.
//   - Inter-arrival times: exp of a gamma(10.23, 0.4871) sample, stretched
//     by a 48-slot daily cycle derived from a gamma(8.1, 0.46) time-of-day
//     density peaking near midday. (The original model's arrival process
//     has more structure; since the paper rescales every trace to exact
//     offered-load targets by multiplying inter-arrival times, only the
//     cycle shape matters here. The simplification is recorded in
//     DESIGN.md.)
//
// Annotations (paper Section IV-C, deliberately pessimistic for DFRS):
// nodes are quad-core, so a one-task (sequential) job has a CPU need of
// 25% and all multi-task jobs are CPU-bound with 100% need; 55% of jobs
// have a per-task memory requirement of 10%, the rest 10x% with x uniform
// on {2,...,10}.
package lublin

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/workload"
)

// Params holds the model parameters. Zero values are invalid; start from
// DefaultParams.
type Params struct {
	Nodes int // cluster size; job sizes fall in [1, Nodes]

	SerialProb float64 // probability of a one-task job
	Pow2Prob   float64 // probability a parallel size is rounded to a power of two
	ULow       float64 // log2 size range, two-stage uniform
	UMed       float64
	UHi        float64
	UProb      float64 // probability of the [ULow, UMed] stage

	A1, B1 float64 // gamma component of short log-runtimes
	A2, B2 float64 // gamma component of long log-runtimes
	PA, PB float64 // p = PA*size + PB selects the short component

	AArr, BArr float64 // gamma of log inter-arrival seconds (peak rate)

	CycleShape float64 // daily-cycle gamma shape (time-of-day density)
	CycleScale float64 // daily-cycle gamma scale, in hours
	CycleBase  float64 // hour of day where the cycle density starts

	MaxRuntime float64 // cap on sampled runtimes, seconds
}

// DefaultParams returns the published batch-partition parameters for a
// cluster of the given size.
func DefaultParams(nodes int) Params {
	uhi := math.Log2(float64(nodes))
	return Params{
		Nodes:      nodes,
		SerialProb: 0.244,
		Pow2Prob:   0.576,
		ULow:       0.8,
		UMed:       uhi - 2.0,
		UHi:        uhi,
		UProb:      0.86,
		A1:         4.2, B1: 0.94,
		A2: 312, B2: 0.03,
		PA: -0.0054, PB: 0.78,
		AArr: 10.23, BArr: 0.4871,
		CycleShape: 8.1,
		CycleScale: 0.46,
		CycleBase:  5, // density support starts at 05:00
		MaxRuntime: 5 * 24 * 3600,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	switch {
	case p.Nodes < 1:
		return fmt.Errorf("lublin: %d nodes", p.Nodes)
	case p.SerialProb < 0 || p.SerialProb > 1:
		return fmt.Errorf("lublin: serial probability %g", p.SerialProb)
	case p.ULow > p.UHi:
		return fmt.Errorf("lublin: uLow %g > uHi %g", p.ULow, p.UHi)
	case p.MaxRuntime <= 0:
		return fmt.Errorf("lublin: max runtime %g", p.MaxRuntime)
	}
	return nil
}

// RawJob is a job drawn from the model before CPU/memory annotation.
type RawJob struct {
	Submit  float64 // seconds from trace start
	Size    int     // number of tasks
	Runtime float64 // seconds at full speed
}

// sampleSize draws a job size following the two-stage log-uniform model.
func (p Params) sampleSize(r *rng.Source) int {
	if r.Bernoulli(p.SerialProb) {
		return 1
	}
	var u float64
	if r.Bernoulli(p.UProb) {
		u = r.Uniform(p.ULow, p.UMed)
	} else {
		u = r.Uniform(p.UMed, p.UHi)
	}
	size := math.Pow(2, u)
	if r.Bernoulli(p.Pow2Prob) {
		size = math.Pow(2, math.Round(u))
	}
	s := int(math.Round(size))
	if s < 2 {
		s = 2
	}
	if s > p.Nodes {
		s = p.Nodes
	}
	return s
}

// sampleRuntime draws a runtime (seconds) for a job of the given size.
func (p Params) sampleRuntime(r *rng.Source, size int) float64 {
	prob := p.PA*float64(size) + p.PB
	if prob < 0 {
		prob = 0
	}
	if prob > 1 {
		prob = 1
	}
	rt := math.Exp(r.HyperGamma(p.A1, p.B1, p.A2, p.B2, prob))
	if rt < 1 {
		rt = 1
	}
	if rt > p.MaxRuntime {
		rt = p.MaxRuntime
	}
	return rt
}

// cycleWeight returns the relative arrival intensity at the given hour of
// day in [0, 24), normalized so the peak is 1. The gamma density's mode
// sits (shape-1)*scale hours after CycleBase; with the default parameters
// (shape 8.1, scale 0.46 x 2 hours, base 05:00) the peak lands near 11:30,
// matching the daytime rush of the Lublin model's daily cycle.
func (p Params) cycleWeight(hour float64) float64 {
	scale := p.CycleScale * 2
	x := math.Mod(hour-p.CycleBase+24, 24)
	pdf := gammaPDF(x, p.CycleShape, scale)
	peak := gammaPDF((p.CycleShape-1)*scale, p.CycleShape, scale)
	w := pdf / peak
	const nightFloor = 0.05 // arrivals never stop completely overnight
	if w < nightFloor {
		w = nightFloor
	}
	return w
}

func gammaPDF(x, shape, scale float64) float64 {
	if x <= 0 {
		return 0
	}
	lg, _ := math.Lgamma(shape)
	logp := (shape-1)*math.Log(x) - x/scale - lg - shape*math.Log(scale)
	return math.Exp(logp)
}

// RawStream draws raw jobs one at a time, consuming variates in exactly
// the order GenerateRaw does, so a job-by-job pipeline (generate, annotate,
// encode, discard) produces the same jobs as batch generation without ever
// holding the whole trace. Submits are nondecreasing by construction.
type RawStream struct {
	p Params
	r *rng.Source
	t float64
}

// Stream validates p and returns a per-job generator over r.
func (p Params) Stream(r *rng.Source) (*RawStream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &RawStream{p: p, r: r}, nil
}

// Next draws the next raw job.
func (s *RawStream) Next() RawJob {
	base := math.Exp(s.r.Gamma(s.p.AArr, s.p.BArr))
	hour := math.Mod(s.t/3600, 24)
	s.t += base / s.p.cycleWeight(hour)
	size := s.p.sampleSize(s.r)
	return RawJob{Submit: s.t, Size: size, Runtime: s.p.sampleRuntime(s.r, size)}
}

// GenerateRaw draws njobs jobs (sizes, runtimes, arrival times) from the
// model.
func (p Params) GenerateRaw(r *rng.Source, njobs int) ([]RawJob, error) {
	s, err := p.Stream(r)
	if err != nil {
		return nil, err
	}
	if njobs < 0 {
		return nil, fmt.Errorf("lublin: %d jobs requested", njobs)
	}
	jobs := make([]RawJob, njobs)
	for i := range jobs {
		jobs[i] = s.Next()
	}
	return jobs, nil
}

// Annotation constants of Section IV-C.
const (
	// SequentialCPUNeed is a sequential task's CPU need on a quad-core
	// node: one core out of four.
	SequentialCPUNeed = 0.25
	// ParallelCPUNeed is the pessimistic CPU-bound need of multi-threaded
	// tasks.
	ParallelCPUNeed = 1.0
	// BaseMemProb is the fraction of jobs with the 10% memory requirement.
	BaseMemProb = 0.55
	// NodeMemGB is the assumed node memory of the synthetic platform; the
	// paper's footnote on migration costs implies 8 GB per task at 100%
	// node memory.
	NodeMemGB = 8.0
)

// AnnotateJob assigns the Section IV-C CPU need and memory requirement to
// one raw job.
func AnnotateJob(r *rng.Source, raw RawJob, id int) workload.Job {
	cpu := ParallelCPUNeed
	if raw.Size == 1 {
		cpu = SequentialCPUNeed
	}
	mem := 0.10
	if !r.Bernoulli(BaseMemProb) {
		mem = 0.10 * float64(2+r.Intn(9)) // 10x%, x uniform on {2..10}
	}
	return workload.Job{
		ID:       id,
		Submit:   raw.Submit,
		Tasks:    raw.Size,
		CPUNeed:  cpu,
		MemReq:   mem,
		ExecTime: raw.Runtime,
	}
}

// GenerateTrace draws a complete annotated trace of njobs jobs for a
// cluster of p.Nodes nodes.
func GenerateTrace(r *rng.Source, p Params, njobs int, name string) (*workload.Trace, error) {
	raw, err := p.GenerateRaw(r.Split("arrivals"), njobs)
	if err != nil {
		return nil, err
	}
	ar := r.Split("annotations")
	tr := &workload.Trace{Name: name, Nodes: p.Nodes, NodeMemGB: NodeMemGB}
	tr.Jobs = make([]workload.Job, njobs)
	for i, rj := range raw {
		tr.Jobs[i] = AnnotateJob(ar, rj, i)
	}
	tr.SortBySubmit()
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
