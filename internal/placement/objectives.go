package placement

// Built-in objectives. First and LoadBalance are the paper's hard-coded
// rules factored out of the scheduler families; Cost, BestFit and WorstFit
// open the cost/packing axis over the capacity vector.

// First scores every node identically, so selection degenerates to the
// lowest-id (first) feasible node. It is the default objective of the
// batch family (FCFS/EASY/conservative take eligible free nodes in id
// order), of gang row filling, and of the packing kernels' bin order —
// exactly the published behaviour.
type First struct{}

// Name returns "first".
func (First) Name() string { return "first" }

// Score implements Objective: all nodes tie, so ties resolve to the
// lowest id.
func (First) Score(Demand, int, State) float64 { return 0 }

// LoadBalance scores a node by its relative CPU load — CPU load divided by
// the node's CPU capacity, the paper's Section III-A greedy rule (on the
// unit-capacity platform exactly the raw load). It is the default
// objective of the greedy family and of DYNMCB8-ASAP's immediate
// placement.
type LoadBalance struct{}

// Name returns "loadbalance".
func (LoadBalance) Name() string { return "loadbalance" }

// Score implements Objective.
func (LoadBalance) Score(_ Demand, node int, st State) float64 {
	return st.CPULoad(node) / st.Cap(node, 0)
}

// Cost scores a node by its cost rate (cluster.NodeSpec.Cost), so tasks
// concentrate on the cheapest feasible nodes and priced capacity stays
// idle: the per-node-type pricing objective over heterogeneous
// inventories. Within one price tier (equal cost) it spreads tasks by
// relative CPU load (see TieBreaker) — without that, every tier would pile
// onto its lowest-id node and the collapsed yields would stretch occupancy
// far enough to raise total cost, defeating the objective. On an unpriced
// platform (all costs zero) Cost therefore degenerates to LoadBalance.
// Cost also ranks jobs for the average-yield improvement tie-break (see
// JobRanker): leftover CPU goes to the jobs hosted on the most expensive
// nodes first, finishing them sooner and releasing the priced capacity.
type Cost struct{}

// Name returns "cost".
func (Cost) Name() string { return "cost" }

// Score implements Objective.
func (Cost) Score(_ Demand, node int, st State) float64 { return st.Cost(node) }

// Secondary implements TieBreaker: relative CPU load, the published greedy
// spreading rule, applied within a price tier.
func (Cost) Secondary(_ Demand, node int, st State) float64 {
	return st.CPULoad(node) / st.Cap(node, 0)
}

// RanksJobs implements JobRanker.
func (Cost) RanksJobs() bool { return true }

// BestFit scores a node by its normalized leftover capacity after the
// placement — the sum over resource dimensions of (free - demand) divided
// by the node's capacity in that dimension (dimensions the node lacks are
// skipped). Minimizing leftover packs tasks densely, the packing-density
// end of the packing-vs-spreading axis; it is also exactly the slack rule
// of the best-fit-decreasing packer, which routes through this objective
// with its own capacity normalization (the platform's mean capacities, as
// documented there).
type BestFit struct{}

// Name returns "bestfit".
func (BestFit) Name() string { return "bestfit" }

// Score implements Objective.
func (BestFit) Score(dem Demand, node int, st State) float64 {
	return slack(dem, node, st)
}

// WorstFit is BestFit negated: it places every task on the feasible node
// with the most normalized leftover capacity, spreading load across the
// platform — the classical worst-fit rule that trades consolidation for
// per-node headroom.
type WorstFit struct{}

// Name returns "worstfit".
func (WorstFit) Name() string { return "worstfit" }

// Score implements Objective.
func (WorstFit) Score(dem Demand, node int, st State) float64 {
	return -slack(dem, node, st)
}

// slack is the shared normalized-leftover measure of BestFit/WorstFit.
func slack(dem Demand, node int, st State) float64 {
	var s float64
	for k := 0; k < st.Dims(); k++ {
		cap := st.Cap(node, k)
		if cap <= 0 {
			continue
		}
		s += (st.Free(node, k) - dem(k)) / cap
	}
	return s
}
