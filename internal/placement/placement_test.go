package placement

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// fakeState is an explicit-matrix State for tests: caps/free are row-major
// per node, load and cost per node.
type fakeState struct {
	d          int
	caps, free []float64
	load, cost []float64
}

func (s fakeState) Dims() int                { return s.d }
func (s fakeState) Cap(node, k int) float64  { return s.caps[node*s.d+k] }
func (s fakeState) Free(node, k int) float64 { return s.free[node*s.d+k] }
func (s fakeState) CPULoad(node int) float64 { return s.load[node] }
func (s fakeState) Cost(node int) float64    { return s.cost[node] }

func demandOf(v []float64) Demand {
	return func(k int) float64 {
		if k < len(v) {
			return v[k]
		}
		return 0
	}
}

func unitState(n int) fakeState {
	s := fakeState{d: 2, caps: make([]float64, 2*n), free: make([]float64, 2*n),
		load: make([]float64, n), cost: make([]float64, n)}
	for i := range s.caps {
		s.caps[i] = 1
		s.free[i] = 1
	}
	return s
}

func allFeasible(int) bool { return true }

func TestPickFirstTakesLowestID(t *testing.T) {
	st := unitState(5)
	if got := Pick(5, ZeroDemand, st, allFeasible, First{}); got != 0 {
		t.Fatalf("First picked node %d, want 0", got)
	}
	infeasible := func(node int) bool { return node >= 2 }
	if got := Pick(5, ZeroDemand, st, infeasible, First{}); got != 2 {
		t.Fatalf("First picked node %d with nodes 0-1 filtered, want 2", got)
	}
	none := func(int) bool { return false }
	if got := Pick(5, ZeroDemand, st, none, First{}); got != -1 {
		t.Fatalf("Pick with no feasible node returned %d, want -1", got)
	}
}

func TestPickLoadBalance(t *testing.T) {
	st := unitState(4)
	st.load = []float64{0.9, 0.2, 0.2, 0.5}
	// Lowest relative load wins; the tie between nodes 1 and 2 resolves to
	// the lower id.
	if got := Pick(4, ZeroDemand, st, allFeasible, LoadBalance{}); got != 1 {
		t.Fatalf("LoadBalance picked node %d, want 1", got)
	}
	// Relative load: a double-capacity node with the same absolute load is
	// less loaded.
	st.load = []float64{0.4, 0.4, 0.4, 0.4}
	st.caps[2*2+0] = 2 // node 2 has CPU capacity 2
	if got := Pick(4, ZeroDemand, st, allFeasible, LoadBalance{}); got != 2 {
		t.Fatalf("LoadBalance picked node %d, want the fat node 2", got)
	}
}

func TestPickCost(t *testing.T) {
	st := unitState(4)
	st.cost = []float64{2, 0.5, 0.5, 1}
	if got := Pick(4, ZeroDemand, st, allFeasible, Cost{}); got != 1 {
		t.Fatalf("Cost picked node %d, want cheapest node 1", got)
	}
	// Unpriced platform: all costs zero degenerates to First.
	st.cost = make([]float64, 4)
	if got := Pick(4, ZeroDemand, st, allFeasible, Cost{}); got != 0 {
		t.Fatalf("Cost on unpriced platform picked node %d, want 0", got)
	}
}

func TestBestFitWorstFit(t *testing.T) {
	st := unitState(3)
	// Node 1 is the tightest fit for a (0.3, 0.3) task.
	st.free = []float64{1, 1, 0.4, 0.4, 0.8, 0.8}
	dem := demandOf([]float64{0.3, 0.3})
	if got := Pick(3, dem, st, allFeasible, BestFit{}); got != 1 {
		t.Fatalf("BestFit picked node %d, want tightest node 1", got)
	}
	if got := Pick(3, dem, st, allFeasible, WorstFit{}); got != 0 {
		t.Fatalf("WorstFit picked node %d, want emptiest node 0", got)
	}
	// A zero-capacity dimension is skipped, not a division by zero.
	gpu := fakeState{d: 3,
		caps: []float64{1, 1, 0, 1, 1, 2},
		free: []float64{1, 1, 0, 1, 1, 2},
		load: []float64{0, 0}, cost: []float64{0, 0}}
	if got := Pick(2, ZeroDemand, gpu, allFeasible, BestFit{}); got != 0 {
		t.Fatalf("BestFit with zero-capacity dim picked %d, want 0", got)
	}
}

func TestRankOrdersByScoreThenID(t *testing.T) {
	st := unitState(5)
	st.cost = []float64{3, 1, 2, 1, 0}
	got := Rank([]int{0, 1, 2, 3, 4}, ZeroDemand, st, Cost{})
	want := []int{4, 1, 3, 2, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Rank = %v, want %v", got, want)
	}
	// Candidates slice must not be modified.
	cands := []int{2, 0, 4}
	_ = Rank(cands, ZeroDemand, st, Cost{})
	if !reflect.DeepEqual(cands, []int{2, 0, 4}) {
		t.Fatalf("Rank mutated its input: %v", cands)
	}
	// All-constant scores (First): ids ascending, whatever the input order.
	got = Rank([]int{4, 2, 0, 3, 1}, ZeroDemand, st, First{})
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("Rank with First = %v, want ascending ids", got)
	}
}

// TestRankAgreesWithSort cross-checks Rank against a direct sort over
// random scores.
func TestRankAgreesWithSort(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(20)
		st := unitState(n)
		cands := make([]int, n)
		for i := range cands {
			cands[i] = i
			st.cost[i] = float64(r.Intn(4))
		}
		r.Shuffle(n, func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		got := Rank(cands, ZeroDemand, st, Cost{})
		want := append([]int(nil), cands...)
		sort.SliceStable(want, func(a, b int) bool {
			if st.cost[want[a]] != st.cost[want[b]] {
				return st.cost[want[a]] < st.cost[want[b]]
			}
			return want[a] < want[b]
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Rank = %v, want %v (costs %v)", trial, got, want, st.cost)
		}
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"first", "loadbalance", "cost", "bestfit", "worstfit"} {
		if !Known(name) {
			t.Fatalf("built-in objective %q not registered", name)
		}
		obj, err := ByName(name)
		if err != nil || obj == nil {
			t.Fatalf("ByName(%q) = %v, %v", name, obj, err)
		}
		if obj.Name() != name {
			t.Fatalf("objective %q reports name %q", name, obj.Name())
		}
	}
	// The empty name is the per-family default: valid, resolves to nil.
	if !Known("") {
		t.Fatal("empty objective name should be valid (family default)")
	}
	if obj, err := ByName(""); obj != nil || err != nil {
		t.Fatalf("ByName(\"\") = %v, %v, want nil, nil", obj, err)
	}
	if _, err := ByName("no-such-objective"); err == nil {
		t.Fatal("ByName accepted an unknown objective")
	}
	if err := Register("", func() Objective { return First{} }); err == nil {
		t.Fatal("Register accepted an empty name")
	}
	if err := Register("x-nil", nil); err == nil {
		t.Fatal("Register accepted a nil factory")
	}
	if err := Register("cost", func() Objective { return Cost{} }); err == nil {
		t.Fatal("Register accepted a duplicate name")
	}
	if err := Register("custom-test-objective", func() Objective { return WorstFit{} }); err != nil {
		t.Fatalf("Register failed for a fresh name: %v", err)
	}
	if !Known("custom-test-objective") {
		t.Fatal("registered objective not known")
	}
	// Only the Cost objective opts into job ranking.
	if _, ok := interface{}(Cost{}).(JobRanker); !ok {
		t.Fatal("Cost must implement JobRanker")
	}
	for _, obj := range []Objective{First{}, LoadBalance{}, BestFit{}, WorstFit{}} {
		if jr, ok := obj.(JobRanker); ok && jr.RanksJobs() {
			t.Fatalf("objective %q unexpectedly ranks jobs", obj.Name())
		}
	}
}
