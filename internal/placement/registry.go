package placement

import (
	"fmt"
	"sort"
	"sync"
)

// Factory builds a fresh objective instance. The built-in objectives are
// stateless, but out-of-tree objectives may carry per-run state, so every
// simulation resolves its own instance — mirroring the scheduler registry.
type Factory func() Objective

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

func init() {
	// The built-in objectives; First and LoadBalance are the families'
	// defaults factored out, registered so a sweep can force one family's
	// rule onto another.
	for _, f := range []Factory{
		func() Objective { return First{} },
		func() Objective { return LoadBalance{} },
		func() Objective { return Cost{} },
		func() Objective { return BestFit{} },
		func() Objective { return WorstFit{} },
	} {
		if err := Register(f().Name(), f); err != nil {
			panic(err.Error())
		}
	}
}

// Register adds a named objective constructor, returning an error on an
// empty name, a nil factory, or a duplicate registration. It is the
// non-panicking form behind the public dfrs.RegisterObjective entry point.
func Register(name string, f Factory) error {
	if name == "" {
		return fmt.Errorf("placement: empty objective name")
	}
	if f == nil {
		return fmt.Errorf("placement: nil factory for objective %q", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("placement: duplicate registration of %q", name)
	}
	registry[name] = f
	return nil
}

// Known reports whether an objective name is registered. The empty name is
// always valid: it selects every family's default (the paper's published
// rules).
func Known(name string) bool {
	if name == "" {
		return true
	}
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// ByName returns a fresh instance of the named objective. The empty name
// returns (nil, nil): a nil Objective means "use each family's default".
func ByName(name string) (Objective, error) {
	if name == "" {
		return nil, nil
	}
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("placement: unknown objective %q (known: %v)", name, Names())
	}
	return f(), nil
}

// Names lists all registered objective names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
