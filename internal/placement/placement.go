// Package placement is the pluggable placement-objective layer shared by
// every scheduling family in this repository. It separates the question
// "which nodes *can* host this task?" (feasibility filtering, which stays
// with each scheduler — memory, GPU and CPU constraints are part of the
// paper's model) from "which of the feasible nodes *should* host it?"
// (scoring), the same filter/score split production schedulers such as the
// Kubernetes scheduler use for their priority plugins.
//
// An Objective scores one candidate node for one task given the task's
// demand vector and the node's current state; selection minimizes the
// score, breaking ties toward the lowest node id so every choice is
// deterministic. The paper's DFRS algorithms each hard-code one objective —
// greedy places on the least relatively CPU-loaded node, batch baselines
// take eligible free nodes in id order, the MCB8 packing kernel fills bins
// in index order — and those rules are expressed here as the built-in
// LoadBalance and First objectives, which every family uses by default:
// with no objective configured, behaviour is exactly the published one.
//
// Beyond the defaults, the built-in objectives open the cost axis over the
// N-dimensional capacity vector of internal/cluster:
//
//   - Cost places tasks on the cheapest nodes (cluster.NodeSpec.Cost,
//     per-node-type pricing), minimizing cost-weighted occupancy on
//     price-heterogeneous platforms;
//   - BestFit packs tasks densely (least normalized leftover capacity
//     across all resource dimensions), trading yield for consolidation;
//   - WorstFit spreads tasks (most leftover capacity), trading
//     consolidation for headroom.
//
// Out-of-tree objectives register through Register (the facade re-exports
// it as dfrs.RegisterObjective, mirroring dfrs.RegisterAlgorithm) and are
// then accepted everywhere a built-in objective name is: dfrs.WithObjective,
// the campaign grid's Objectives axis, and the -objective CLI flags.
package placement

import "sort"

// State is the objective's read-only view of the platform during one
// selection scan. Implementations wrap whatever usage bookkeeping the
// caller maintains — simulator state plus an in-event placement plan for
// the greedy family, a gang row, a batch free pool, or a packer's free
// matrix — so scores always reflect placements planned earlier in the same
// scheduling event.
type State interface {
	// Dims returns the number of resource dimensions (at least 2: CPU and
	// memory; see internal/cluster).
	Dims() int
	// Cap returns the node's capacity in dimension k, in units of the
	// reference node (0 for a resource the node does not have).
	Cap(node, k int) float64
	// Free returns the node's free capacity in dimension k. For rigid
	// dimensions (k >= 1) this is capacity minus allocated demand; for the
	// fluid CPU dimension (k == 0) it is capacity minus CPU load, which may
	// be negative under DFRS time-sharing (load may exceed capacity).
	Free(node, k int) float64
	// CPULoad returns the node's current CPU load: the sum of the CPU
	// needs of the tasks it hosts (the paper's per-node load, before yield
	// scaling), including placements planned earlier in the same event.
	CPULoad(node int) float64
	// Cost returns the node's cost rate (cluster.NodeSpec.Cost; 0 on
	// unpriced platforms).
	Cost(node int) float64
}

// Demand is the per-task demand-vector view handed to an objective:
// Demand(k) is the task's requirement in resource dimension k (CPU need
// for k = 0, memory for k = 1, further rigid demands beyond), as a
// fraction of the reference node.
type Demand func(k int) float64

// ZeroDemand is the empty demand vector, used when a caller scores nodes
// independently of any particular task (e.g. the MCB8 kernel ordering its
// bins before packing).
func ZeroDemand(int) float64 { return 0 }

// Objective scores a candidate node for hosting one task of a job. Lower
// scores are better; selection picks the feasible node with the minimum
// score, breaking ties toward the lowest node id. Score must be a pure
// function of its arguments so that simulations stay deterministic and
// campaign records are byte-identical for any worker count.
type Objective interface {
	// Name identifies the objective in results, cell keys and CLI flags.
	Name() string
	// Score rates placing one task with the given demand vector on node,
	// given the platform's current state. Lower is better.
	Score(dem Demand, node int, st State) float64
}

// TieBreaker is an optional interface an Objective may implement to order
// nodes whose primary scores are exactly equal: the lower Secondary score
// wins, and only then does the node-id tie-break apply. The Cost objective
// uses it to balance relative CPU load among equal-cost nodes — strict
// price priority between tiers, the published load spreading within one —
// without which every task of a price tier would pile onto its lowest-id
// node and collapse yields.
type TieBreaker interface {
	// Secondary rates a node among primary-score ties; lower is better.
	Secondary(dem Demand, node int, st State) float64
}

// JobRanker is an optional interface an Objective may implement to extend
// its preference from node selection to the average-yield improvement
// heuristic of Section III-A: when RanksJobs reports true, jobs whose
// hosting nodes score higher under the objective receive leftover CPU
// first (ties in total CPU need only; the primary ascending-total-need
// order of the paper is never altered). The Cost objective ranks jobs —
// raising the yield of jobs on expensive nodes finishes them sooner and
// releases the priced capacity — while the default objectives do not, so
// the published tie-break by job ID is preserved exactly.
type JobRanker interface {
	// RanksJobs reports whether the improvement heuristic should consult
	// this objective for tie-breaking.
	RanksJobs() bool
}

// Pick returns the node in [0, n) that is feasible and minimizes
// obj.Score — ties by the objective's Secondary score when it implements
// TieBreaker, then toward the lowest node id — or -1 when no node is
// feasible. feasible must be non-nil; it implements the scheduler's own
// hard constraints (the filter half of the filter/score split).
func Pick(n int, dem Demand, st State, feasible func(node int) bool, obj Objective) int {
	tb, _ := obj.(TieBreaker)
	best := -1
	var bestScore, bestSec float64
	for node := 0; node < n; node++ {
		if !feasible(node) {
			continue
		}
		s := obj.Score(dem, node, st)
		if best >= 0 && s > bestScore {
			continue
		}
		if best < 0 || s < bestScore {
			best, bestScore = node, s
			if tb != nil {
				bestSec = tb.Secondary(dem, node, st)
			}
			continue
		}
		// Primary tie: consult the secondary score (strict improvement
		// only, so remaining ties keep the lowest id).
		if tb != nil {
			if sec := tb.Secondary(dem, node, st); sec < bestSec {
				best, bestSec = node, sec
			}
		}
	}
	return best
}

// Rank orders the candidate node ids by ascending (score, secondary, id) —
// the same comparison as Pick — and returns them in a new slice;
// candidates is not modified. It is the k-node counterpart of Pick used by
// schedulers that take several nodes in one decision (batch baselines
// allocating whole nodes). With an all-constant objective (First) the
// result is simply the candidates sorted by id.
func Rank(candidates []int, dem Demand, st State, obj Objective) []int {
	tb, _ := obj.(TieBreaker)
	perm := make([]int, len(candidates))
	scores := make([]float64, len(candidates))
	var secs []float64
	if tb != nil {
		secs = make([]float64, len(candidates))
	}
	for i, node := range candidates {
		perm[i] = i
		scores[i] = obj.Score(dem, node, st)
		if tb != nil {
			secs[i] = tb.Secondary(dem, node, st)
		}
	}
	sort.SliceStable(perm, func(a, b int) bool {
		pa, pb := perm[a], perm[b]
		if scores[pa] != scores[pb] {
			return scores[pa] < scores[pb]
		}
		if tb != nil && secs[pa] != secs[pb] {
			return secs[pa] < secs[pb]
		}
		return candidates[pa] < candidates[pb]
	})
	out := make([]int, len(candidates))
	for i, p := range perm {
		out[i] = candidates[p]
	}
	return out
}
