package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func validJob(id int, submit float64, tasks int, exec float64) Job {
	return Job{ID: id, Submit: submit, Tasks: tasks, CPUNeed: 0.5, MemReq: 0.25, ExecTime: exec}
}

func sampleTrace() *Trace {
	return &Trace{
		Name:      "sample",
		Nodes:     4,
		NodeMemGB: 8,
		Jobs: []Job{
			validJob(0, 0, 2, 100),
			validJob(1, 50, 1, 200),
			validJob(2, 120, 4, 50),
		},
	}
}

func TestJobValidate(t *testing.T) {
	good := validJob(1, 0, 2, 10)
	if err := good.Validate(4); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Job)
	}{
		{"zero tasks", func(j *Job) { j.Tasks = 0 }},
		{"too many tasks", func(j *Job) { j.Tasks = 5 }},
		{"negative submit", func(j *Job) { j.Submit = -1 }},
		{"zero cpu", func(j *Job) { j.CPUNeed = 0 }},
		{"cpu above 1", func(j *Job) { j.CPUNeed = 1.5 }},
		{"zero mem", func(j *Job) { j.MemReq = 0 }},
		{"mem above 1", func(j *Job) { j.MemReq = 1.01 }},
		{"zero exec", func(j *Job) { j.ExecTime = 0 }},
	}
	for _, c := range cases {
		j := good
		c.mut(&j)
		if err := j.Validate(4); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestTraceValidate(t *testing.T) {
	tr := sampleTrace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	unsorted := sampleTrace()
	unsorted.Jobs[0].Submit = 1000
	if err := unsorted.Validate(); err == nil {
		t.Error("out-of-order submissions accepted")
	}
	empty := &Trace{Nodes: 0}
	if err := empty.Validate(); err == nil {
		t.Error("zero-node trace accepted")
	}
}

func TestSpanAndWork(t *testing.T) {
	tr := sampleTrace()
	if got := tr.Span(); got != 120 {
		t.Errorf("Span = %v, want 120", got)
	}
	// 2*100 + 1*200 + 4*50 = 600 node-seconds.
	if got := tr.TotalWork(); got != 600 {
		t.Errorf("TotalWork = %v, want 600", got)
	}
	// load = 600 / (120 * 4) = 1.25
	if got := tr.OfferedLoad(); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("OfferedLoad = %v, want 1.25", got)
	}
	if got := (&Trace{Nodes: 4, Jobs: []Job{validJob(0, 0, 1, 10)}}).OfferedLoad(); got != 0 {
		t.Errorf("single-job load = %v, want 0", got)
	}
}

func TestScaleInterarrival(t *testing.T) {
	tr := sampleTrace()
	scaled, err := tr.ScaleInterarrival(2)
	if err != nil {
		t.Fatal(err)
	}
	wantSubmits := []float64{0, 100, 240}
	for i, w := range wantSubmits {
		if got := scaled.Jobs[i].Submit; math.Abs(got-w) > 1e-9 {
			t.Errorf("job %d submit = %v, want %v", i, got, w)
		}
	}
	// Original untouched.
	if tr.Jobs[1].Submit != 50 {
		t.Error("ScaleInterarrival mutated the original trace")
	}
	if _, err := tr.ScaleInterarrival(0); err == nil {
		t.Error("zero factor accepted")
	}
}

func TestScaleToLoad(t *testing.T) {
	tr := sampleTrace()
	for _, target := range []float64{0.1, 0.5, 0.9, 2.0} {
		scaled, err := tr.ScaleToLoad(target)
		if err != nil {
			t.Fatalf("ScaleToLoad(%v): %v", target, err)
		}
		if got := scaled.OfferedLoad(); math.Abs(got-target) > 1e-9 {
			t.Errorf("ScaleToLoad(%v) produced load %v", target, got)
		}
		if len(scaled.Jobs) != len(tr.Jobs) {
			t.Error("job mix changed")
		}
	}
	if _, err := tr.ScaleToLoad(-1); err == nil {
		t.Error("negative target accepted")
	}
}

// Property: rescaling preserves job identity and ordering and hits the
// target load for any positive target.
func TestScaleToLoadProperty(t *testing.T) {
	f := func(gaps []uint8, target8 uint8) bool {
		if len(gaps) < 2 {
			return true
		}
		target := 0.05 + float64(target8%90)/100
		tr := &Trace{Name: "p", Nodes: 8, NodeMemGB: 8}
		sub := 0.0
		for i, g := range gaps {
			sub += float64(g%50) + 1
			tr.Jobs = append(tr.Jobs, validJob(i, sub, 1+i%8, float64(1+g)))
		}
		scaled, err := tr.ScaleToLoad(target)
		if err != nil {
			return false
		}
		if math.Abs(scaled.OfferedLoad()-target) > 1e-6 {
			return false
		}
		for i := range scaled.Jobs {
			if scaled.Jobs[i].ExecTime != tr.Jobs[i].ExecTime ||
				scaled.Jobs[i].Tasks != tr.Jobs[i].Tasks {
				return false
			}
			if i > 0 && scaled.Jobs[i].Submit < scaled.Jobs[i-1].Submit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitSegments(t *testing.T) {
	tr := &Trace{Name: "w", Nodes: 2, NodeMemGB: 8}
	for i, sub := range []float64{0, 10, 90, 110, 250} {
		tr.Jobs = append(tr.Jobs, validJob(i, sub, 1, 5))
	}
	segs, err := tr.SplitSegments(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("got %d segments, want 3", len(segs))
	}
	if len(segs[0].Jobs) != 3 || len(segs[1].Jobs) != 1 || len(segs[2].Jobs) != 1 {
		t.Errorf("segment sizes: %d %d %d", len(segs[0].Jobs), len(segs[1].Jobs), len(segs[2].Jobs))
	}
	// Submissions re-based inside each segment.
	if segs[1].Jobs[0].Submit != 10 {
		t.Errorf("second segment submit = %v, want 10", segs[1].Jobs[0].Submit)
	}
	if segs[2].Jobs[0].Submit != 50 {
		t.Errorf("third segment submit = %v, want 50", segs[2].Jobs[0].Submit)
	}
	if _, err := tr.SplitSegments(0); err == nil {
		t.Error("zero duration accepted")
	}
	if got, _ := (&Trace{Nodes: 1}).SplitSegments(10); got != nil {
		t.Error("empty trace should split to nil")
	}
}

func TestSortBySubmit(t *testing.T) {
	tr := &Trace{Nodes: 4, Jobs: []Job{
		validJob(0, 30, 1, 1),
		validJob(1, 10, 1, 1),
		validJob(2, 10, 1, 1),
	}}
	tr.SortBySubmit()
	if tr.Jobs[0].ID != 1 || tr.Jobs[1].ID != 2 || tr.Jobs[2].ID != 0 {
		t.Errorf("sort not stable by submit: %v", tr.Jobs)
	}
}

func TestEncodeReadRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != tr.Name || back.Nodes != tr.Nodes || back.NodeMemGB != tr.NodeMemGB {
		t.Errorf("metadata lost: %+v", back)
	}
	if len(back.Jobs) != len(tr.Jobs) {
		t.Fatalf("job count %d, want %d", len(back.Jobs), len(tr.Jobs))
	}
	for i := range tr.Jobs {
		a, b := tr.Jobs[i], back.Jobs[i]
		if a.ID != b.ID || a.Tasks != b.Tasks ||
			math.Abs(a.Submit-b.Submit) > 1e-6 ||
			math.Abs(a.CPUNeed-b.CPUNeed) > 1e-6 ||
			math.Abs(a.MemReq-b.MemReq) > 1e-6 ||
			math.Abs(a.ExecTime-b.ExecTime) > 1e-6 {
			t.Errorf("job %d changed: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := map[string]string{
		"missing header": "0 1 1 0.5 0.5 10\n",
		"bad fields":     "id submit tasks cpu_need mem_req exec_time\n0 1 1 0.5\n",
		"bad number":     "id submit tasks cpu_need mem_req exec_time\nx 1 1 0.5 0.5 10\n",
		"bad nodes":      "# nodes: zap\nid submit tasks cpu_need mem_req exec_time\n",
	}
	for name, doc := range cases {
		if _, err := ReadTrace(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
	// Invalid trace content (no nodes declared) must fail validation.
	doc := "id submit tasks cpu_need mem_req exec_time\n0 1 1 0.5 0.5 10\n"
	if _, err := ReadTrace(strings.NewReader(doc)); err == nil {
		t.Error("trace without nodes accepted")
	}
}

func TestClone(t *testing.T) {
	tr := sampleTrace()
	c := tr.Clone()
	c.Jobs[0].Submit = 999
	if tr.Jobs[0].Submit == 999 {
		t.Error("Clone shares job storage")
	}
}
