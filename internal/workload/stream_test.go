package workload

// Tests for the incremental trace reader behind StreamTrace: it must see
// exactly the jobs ReadTrace sees, report errors with line numbers, and
// guard against unbounded lines.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func encodeSample(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStreamTraceMatchesReadTrace(t *testing.T) {
	traces := []*Trace{
		sampleTrace(),
		{
			Name: "weighted-extra", Nodes: 8, NodeMemGB: 16,
			Jobs: []Job{
				{ID: 0, Submit: 0, Tasks: 2, CPUNeed: 0.5, MemReq: 0.25, ExecTime: 30, Weight: 2, Extra: []float64{0.1}},
				{ID: 1, Submit: 5, Tasks: 1, CPUNeed: 1, MemReq: 0.5, ExecTime: 10, Weight: 1, Extra: []float64{0}},
			},
		},
	}
	for _, tr := range traces {
		enc := encodeSample(t, tr)
		want, err := ReadTrace(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("%s: ReadTrace: %v", tr.Name, err)
		}
		sr, err := StreamTrace(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("%s: StreamTrace: %v", tr.Name, err)
		}
		if sr.Meta().Name != want.Name || sr.Meta().Nodes != want.Nodes || sr.Meta().NodeMemGB != want.NodeMemGB {
			t.Errorf("%s: meta mismatch: %+v", tr.Name, sr.Meta())
		}
		if wd := want.Dims(); sr.Dims() != wd {
			t.Errorf("%s: dims %d, want %d", tr.Name, sr.Dims(), wd)
		}
		var got []Job
		for {
			j, ok, err := sr.Next()
			if err != nil {
				t.Fatalf("%s: Next: %v", tr.Name, err)
			}
			if !ok {
				break
			}
			got = append(got, j)
		}
		if len(got) != len(want.Jobs) {
			t.Fatalf("%s: streamed %d jobs, want %d", tr.Name, len(got), len(want.Jobs))
		}
		for i := range got {
			a, b := got[i], want.Jobs[i]
			// Extra slices alias different backings; compare contents.
			if a.ID != b.ID || a.Submit != b.Submit || a.Tasks != b.Tasks ||
				a.CPUNeed != b.CPUNeed || a.MemReq != b.MemReq ||
				a.ExecTime != b.ExecTime || a.Weight != b.Weight ||
				len(a.Extra) != len(b.Extra) {
				t.Errorf("%s: job %d: %+v vs %+v", tr.Name, i, a, b)
				continue
			}
			for k := range a.Extra {
				if a.Extra[k] != b.Extra[k] {
					t.Errorf("%s: job %d dim %d: %g vs %g", tr.Name, i, k, a.Extra[k], b.Extra[k])
				}
			}
		}
	}
}

func TestStreamTraceErrorsCarryLineNumbers(t *testing.T) {
	header := "# trace: t\n# nodes: 4\n# node_mem_gb: 8\nid submit tasks cpu_need mem_req exec_time\n"
	cases := []struct {
		name, doc, frag string
	}{
		{"bad field count", header + "0 1 1 0.5\n", "line 5"},
		{"bad number", header + "0 1 1 0.5 0.5 10\nx 2 1 0.5 0.5 10\n", "line 6"},
		{"invalid job", header + "0 1 0 0.5 0.5 10\n", "line 5"},
		{"submit disorder", header + "0 9 1 0.5 0.5 10\n1 2 1 0.5 0.5 10\n", "line 6"},
	}
	for _, c := range cases {
		sr, err := StreamTrace(strings.NewReader(c.doc))
		if err != nil {
			t.Fatalf("%s: header rejected: %v", c.name, err)
		}
		var got error
		for {
			_, ok, err := sr.Next()
			if err != nil {
				got = err
				break
			}
			if !ok {
				break
			}
		}
		if got == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(got.Error(), c.frag) {
			t.Errorf("%s: error %q lacks %q", c.name, got, c.frag)
		}
	}
}

func TestStreamTraceHeaderErrors(t *testing.T) {
	if _, err := StreamTrace(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := StreamTrace(strings.NewReader("0 1 1 0.5 0.5 10\n")); err == nil {
		t.Error("headerless input accepted")
	}
	// A header without a nodes declaration is unusable for streaming.
	if _, err := StreamTrace(strings.NewReader("id submit tasks cpu_need mem_req exec_time\n")); err == nil {
		t.Error("nodeless header accepted")
	}
}

func TestStreamTraceLineTooLong(t *testing.T) {
	doc := "# nodes: 4\nid submit tasks cpu_need mem_req exec_time\n" +
		"0 1 1 0.5 0.5 10 " + strings.Repeat("x", maxLineBytes+16) + "\n"
	sr, err := StreamTrace(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	var got error
	for {
		_, ok, err := sr.Next()
		if err != nil {
			got = err
			break
		}
		if !ok {
			break
		}
	}
	if got == nil {
		t.Fatal("oversized line accepted")
	}
	want := fmt.Sprintf("line 3: line too long (over %d bytes)", maxLineBytes)
	if !strings.Contains(got.Error(), want) {
		t.Errorf("error %q lacks %q", got, want)
	}
}

// TestReadTraceLongLineGuard pins that the materialized reader shares the
// enlarged scanner buffer: lines under the cap parse, over the cap fail.
func TestReadTraceLongLineGuard(t *testing.T) {
	pad := strings.Repeat(" ", 80000)
	doc := "# nodes: 4\nid submit tasks cpu_need mem_req exec_time\n0 1 1 0.5 0.5" + pad + " 10\n"
	tr, err := ReadTrace(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("64KiB+ line rejected: %v", err)
	}
	if len(tr.Jobs) != 1 {
		t.Fatalf("parsed %d jobs, want 1", len(tr.Jobs))
	}
}
