package workload

// Tests for streaming load scaling: ScaledSource must replay the exact
// submission times of the materialized ScaleInterarrival/ScaleToLoad path,
// MeasureSourceLoad must agree with Trace.OfferedLoad bit-for-bit, and the
// "# offered_load:" preamble metadata must round-trip through the encoder
// and reader without disturbing traces that never declare one.

import (
	"bytes"
	"math"
	"testing"
)

// irregularTrace builds a trace with uneven gaps and mixed job sizes so
// scaling exercises non-trivial arithmetic.
func irregularTrace() *Trace {
	return &Trace{
		Name:      "irregular",
		Nodes:     8,
		NodeMemGB: 8,
		Jobs: []Job{
			{ID: 0, Submit: 10.25, Tasks: 2, CPUNeed: 0.5, MemReq: 0.25, ExecTime: 300},
			{ID: 1, Submit: 10.25, Tasks: 1, CPUNeed: 1.0, MemReq: 0.5, ExecTime: 120},
			{ID: 2, Submit: 33.7, Tasks: 4, CPUNeed: 0.75, MemReq: 0.125, ExecTime: 900},
			{ID: 3, Submit: 100.01, Tasks: 3, CPUNeed: 0.25, MemReq: 0.25, ExecTime: 60},
			{ID: 4, Submit: 450.5, Tasks: 8, CPUNeed: 0.9, MemReq: 0.5, ExecTime: 1800},
		},
	}
}

func drain(t *testing.T, src JobSource) []Job {
	t.Helper()
	var jobs []Job
	for {
		j, ok, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return jobs
		}
		jobs = append(jobs, j)
	}
}

func TestScaledSourceMatchesScaleInterarrival(t *testing.T) {
	tr := irregularTrace()
	for _, factor := range []float64{0.37, 1.0, 2.5} {
		want, err := tr.ScaleInterarrival(factor)
		if err != nil {
			t.Fatal(err)
		}
		src, err := NewScaledSource(NewSliceSource(tr), factor)
		if err != nil {
			t.Fatal(err)
		}
		got := drain(t, src)
		if len(got) != len(want.Jobs) {
			t.Fatalf("factor %g: %d jobs, want %d", factor, len(got), len(want.Jobs))
		}
		for i, j := range got {
			w := want.Jobs[i]
			// Bit-identical, not approximately equal: the streaming gap
			// walk is the same arithmetic as the materialized one.
			if j.Submit != w.Submit {
				t.Errorf("factor %g job %d: submit %v, want %v", factor, i, j.Submit, w.Submit)
			}
			if j.ID != w.ID || j.Tasks != w.Tasks || j.CPUNeed != w.CPUNeed ||
				j.MemReq != w.MemReq || j.ExecTime != w.ExecTime {
				t.Errorf("factor %g job %d: payload changed: %+v vs %+v", factor, i, j, w)
			}
		}
	}
	if _, err := NewScaledSource(NewSliceSource(tr), 0); err == nil {
		t.Error("zero factor accepted")
	}
}

func TestMeasureSourceLoadMatchesOfferedLoad(t *testing.T) {
	tr := irregularTrace()
	load, jobs, err := MeasureSourceLoad(NewSliceSource(tr), tr.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	if jobs != len(tr.Jobs) {
		t.Fatalf("measured %d jobs, want %d", jobs, len(tr.Jobs))
	}
	if want := tr.OfferedLoad(); load != want {
		t.Fatalf("measured load %v, want OfferedLoad %v (must be bit-identical)", load, want)
	}
	// Degenerate inputs measure as zero load, never an error.
	if load, _, err = MeasureSourceLoad(NewSliceSource(&Trace{Jobs: tr.Jobs[:1]}), tr.Nodes); err != nil || load != 0 {
		t.Fatalf("single-job stream: load %v err %v, want 0/nil", load, err)
	}
}

// TestScaledSourceHitsTargetLoad closes the loop: measure, rescale by
// measured/target, re-measure, and land on the target within float error.
func TestScaledSourceHitsTargetLoad(t *testing.T) {
	tr := irregularTrace()
	const target = 0.6
	cur, _, err := MeasureSourceLoad(NewSliceSource(tr), tr.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewScaledSource(NewSliceSource(tr), cur/target)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := MeasureSourceLoad(src, tr.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-target) > 1e-12 {
		t.Fatalf("rescaled load %v, want %v", got, target)
	}
}

func TestOfferedLoadMetaRoundTrip(t *testing.T) {
	tr := irregularTrace()
	var buf bytes.Buffer
	enc := NewTraceEncoder(&buf, tr, false, 0)
	if err := enc.SetOfferedLoad(0.42); err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if err := enc.Write(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	// Declaring after the preamble is on the wire must fail loudly.
	if err := enc.SetOfferedLoad(0.9); err == nil {
		t.Error("SetOfferedLoad accepted after first Write")
	}
	sr, err := StreamTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if load, ok := sr.DeclaredLoad(); !ok || load != 0.42 {
		t.Fatalf("DeclaredLoad = %v/%v, want 0.42/true", load, ok)
	}
	if got := drain(t, sr); len(got) != len(tr.Jobs) {
		t.Fatalf("round-tripped %d jobs, want %d", len(got), len(tr.Jobs))
	}

	// A trace that never declares a load encodes byte-identically to the
	// pre-metadata format and reads back with ok=false.
	plain := encodeSample(t, tr)
	if bytes.Contains(plain, []byte("offered_load")) {
		t.Fatal("undeclared trace grew an offered_load line")
	}
	sr2, err := StreamTrace(bytes.NewReader(plain))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sr2.DeclaredLoad(); ok {
		t.Fatal("undeclared trace reports a declared load")
	}

	// Bad declarations are line-numbered parse errors.
	bad := "# dfrs-trace v1\n# nodes: 4\n# offered_load: -1\nid submit tasks cpu_need mem_req exec_time\n"
	if _, err := StreamTrace(bytes.NewReader([]byte(bad))); err == nil {
		t.Fatal("negative declared load accepted")
	}
}

// TestEncoderEmptyFlush pins the lazy-preamble refactor: an encoder that
// is flushed without writing any jobs still emits a well-formed header.
func TestEncoderEmptyFlush(t *testing.T) {
	tr := irregularTrace()
	var buf bytes.Buffer
	enc := NewTraceEncoder(&buf, tr, false, 0)
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := StreamTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("header-only trace does not stream: %v", err)
	}
}
