package workload

import "fmt"

// This file is the streaming counterpart of ScaleInterarrival/ScaleToLoad:
// load scaling for job sources that are never materialized. The pieces
// compose into two schemes, both used by dfrs-sim -stream -load:
//
//   - metadata-carried: a generator that knows its offered load stamps it
//     into the trace preamble (TraceEncoder.SetOfferedLoad); the reader
//     surfaces it (TraceReader.DeclaredLoad) and a ScaledSource with
//     factor declared/target hits the target in a single pass.
//   - two-pass: MeasureSourceLoad drains the stream once in O(1) memory to
//     measure the load, then the (seekable) input is reopened and replayed
//     through a ScaledSource.

// ScaledSource rescales a job stream's inter-arrival times by a constant
// factor, preserving the first submission instant. The gap walk is
// arithmetically identical to Trace.ScaleInterarrival, so a scaled stream
// replays the exact submission times of scaling the materialized trace —
// streaming and materialized runs of the same scaled workload stay
// bit-identical. Job IDs, sizes and runtimes pass through untouched: only
// the offered load changes, as in the paper's scaled trace sets.
type ScaledSource struct {
	src     JobSource
	factor  float64
	prevOld float64
	prevNew float64
	any     bool
}

// NewScaledSource wraps src, multiplying every inter-arrival gap by factor
// (> 0). A factor below 1 compresses arrivals (raising offered load); above
// 1 stretches them.
func NewScaledSource(src JobSource, factor float64) (*ScaledSource, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("workload: inter-arrival scale factor %g must be positive", factor)
	}
	return &ScaledSource{src: src, factor: factor}, nil
}

// Next implements JobSource.
func (s *ScaledSource) Next() (Job, bool, error) {
	j, ok, err := s.src.Next()
	if !ok || err != nil {
		return j, ok, err
	}
	if !s.any {
		s.any = true
		s.prevOld = j.Submit
		s.prevNew = j.Submit
		return j, true, nil
	}
	gap := j.Submit - s.prevOld
	s.prevOld = j.Submit
	s.prevNew += gap * s.factor
	j.Submit = s.prevNew
	return j, true, nil
}

// MeasureSourceLoad drains a job source and returns its offered load on a
// cluster of the given node count — total work over the capacity available
// across the submission span, the same definition (and summation order) as
// Trace.OfferedLoad — in O(1) memory, plus the number of jobs seen. Spans
// of zero, fewer than two jobs, or a non-positive node count measure as
// load 0. The source is consumed; reopen a seekable input to replay it
// (the two-pass scheme of dfrs-sim -stream -load).
func MeasureSourceLoad(src JobSource, nodes int) (load float64, jobs int, err error) {
	var work, first, last float64
	for {
		j, ok, err := src.Next()
		if err != nil {
			return 0, jobs, err
		}
		if !ok {
			break
		}
		if jobs == 0 {
			first = j.Submit
		}
		last = j.Submit
		work += j.Work()
		jobs++
	}
	span := last - first
	if jobs < 2 || span <= 0 || nodes <= 0 {
		return 0, jobs, nil
	}
	return work / (span * float64(nodes)), jobs, nil
}
