// Package workload defines the job and trace model shared by every
// scheduler, workload generator and experiment in this repository, together
// with the trace transformations used by the paper's evaluation: offered-load
// computation, inter-arrival scaling to a target load, and splitting a long
// trace into fixed-length segments.
//
// The model follows Section II-B1 of the paper: a job is a set of identical
// tasks submitted at one instant; each task has a CPU need (the fraction of
// one node's CPU required to run at full speed) and a memory requirement
// (fraction of one node's memory, a hard constraint); the execution time is
// the duration of the job when every task receives its full CPU need.
package workload

import (
	"errors"
	"fmt"
	"sort"
)

// Job describes one job of a trace.
type Job struct {
	// ID is the job's unique identifier within its trace.
	ID int
	// Submit is the submission time in seconds from trace start.
	Submit float64
	// Tasks is the number of parallel tasks (>= 1). Batch schedulers
	// allocate this many whole nodes; DFRS schedulers place each task in a
	// VM instance on some node.
	Tasks int
	// CPUNeed is the per-task CPU need as a fraction of one node's CPU
	// resource, in (0, 1].
	CPUNeed float64
	// MemReq is the per-task memory requirement as a fraction of one
	// node's memory, in (0, 1]. Node memory is never oversubscribed.
	MemReq float64
	// ExecTime is the execution time in seconds when the job runs with
	// yield 1.0 (every task receiving its full CPU need).
	ExecTime float64
	// Weight implements the user-priority extension the paper's
	// conclusion calls for: under contention a job's yield is
	// proportional to its weight (capped at 1.0). Zero means the default
	// weight of 1; the paper's own evaluation is unweighted.
	Weight float64
	// Extra holds per-task rigid demands for resource dimensions beyond
	// CPU and memory (Extra[0] is dimension 2, conventionally GPU), as
	// fractions of the reference node in [0, 1]. Rigid demands are hard
	// constraints like memory: never oversubscribed, never scaled by
	// yield. Nil means no demand beyond the paper's (CPU, mem) pair, so
	// legacy traces run unchanged on any cluster.
	Extra []float64
}

// Dims returns the number of resource dimensions the job demands (at least
// 2: CPU and memory).
func (j Job) Dims() int { return 2 + len(j.Extra) }

// Demand returns the per-task demand in resource dimension k: CPU need for
// dimension 0, memory for dimension 1, Extra beyond (0 when the job does
// not reach dimension k).
func (j Job) Demand(k int) float64 {
	switch {
	case k == 0:
		return j.CPUNeed
	case k == 1:
		return j.MemReq
	case k-2 < len(j.Extra):
		return j.Extra[k-2]
	}
	return 0
}

// EffectiveWeight returns the job's weight, defaulting to 1.
func (j Job) EffectiveWeight() float64 {
	if j.Weight <= 0 {
		return 1
	}
	return j.Weight
}

// Work returns the job's total CPU work in node-seconds, the quantity used
// by the offered-load computation: tasks x execution time.
func (j Job) Work() float64 { return float64(j.Tasks) * j.ExecTime }

// Validate checks that the job is well-formed for a cluster of the given
// node count.
func (j Job) Validate(nodes int) error {
	switch {
	case j.Tasks < 1:
		return fmt.Errorf("workload: job %d has %d tasks", j.ID, j.Tasks)
	case nodes > 0 && j.Tasks > nodes:
		return fmt.Errorf("workload: job %d needs %d tasks on %d nodes", j.ID, j.Tasks, nodes)
	case j.Submit < 0:
		return fmt.Errorf("workload: job %d has negative submit time %g", j.ID, j.Submit)
	case j.CPUNeed <= 0 || j.CPUNeed > 1:
		return fmt.Errorf("workload: job %d has CPU need %g outside (0,1]", j.ID, j.CPUNeed)
	case j.MemReq <= 0 || j.MemReq > 1:
		return fmt.Errorf("workload: job %d has memory requirement %g outside (0,1]", j.ID, j.MemReq)
	case j.ExecTime <= 0:
		return fmt.Errorf("workload: job %d has execution time %g", j.ID, j.ExecTime)
	case j.Weight < 0:
		return fmt.Errorf("workload: job %d has negative weight %g", j.ID, j.Weight)
	}
	for k, x := range j.Extra {
		if x < 0 || x > 1 {
			return fmt.Errorf("workload: job %d has demand %g outside [0,1] in dimension %d", j.ID, x, 2+k)
		}
	}
	return nil
}

// Trace is a workload: an ordered list of jobs destined for a cluster of
// Nodes homogeneous nodes with NodeMemGB gigabytes of memory each. NodeMemGB
// only matters for bandwidth accounting (Table II); the scheduling model
// works in fractions.
type Trace struct {
	Name      string
	Nodes     int
	NodeMemGB float64
	Jobs      []Job
}

// Validate checks every job and that submissions are sorted.
func (t *Trace) Validate() error {
	if t.Nodes < 1 {
		return errors.New("workload: trace has no nodes")
	}
	for i, j := range t.Jobs {
		if err := j.Validate(t.Nodes); err != nil {
			return err
		}
		if i > 0 && j.Submit < t.Jobs[i-1].Submit {
			return fmt.Errorf("workload: job %d submitted before its predecessor", j.ID)
		}
	}
	return nil
}

// SortBySubmit orders jobs by submission time (stable, preserving relative
// order of simultaneous submissions).
func (t *Trace) SortBySubmit() {
	sort.SliceStable(t.Jobs, func(a, b int) bool { return t.Jobs[a].Submit < t.Jobs[b].Submit })
}

// Span returns the time between the first and last submission, in seconds.
// A trace with fewer than two jobs has span 0.
func (t *Trace) Span() float64 {
	if len(t.Jobs) < 2 {
		return 0
	}
	return t.Jobs[len(t.Jobs)-1].Submit - t.Jobs[0].Submit
}

// Dims returns the number of resource dimensions the trace's jobs demand
// (at least 2: CPU and memory).
func (t *Trace) Dims() int {
	d := 2
	for _, j := range t.Jobs {
		if j.Dims() > d {
			d = j.Dims()
		}
	}
	return d
}

// TotalWork returns the total CPU work of the trace in node-seconds.
func (t *Trace) TotalWork() float64 {
	var w float64
	for _, j := range t.Jobs {
		w += j.Work()
	}
	return w
}

// OfferedLoad returns the trace's offered load: total work divided by the
// cluster capacity available over the submission span. This is the load
// definition the paper uses when scaling traces to levels 0.1 through 0.9.
// It returns 0 for traces whose span is zero.
func (t *Trace) OfferedLoad() float64 {
	span := t.Span()
	if span <= 0 || t.Nodes == 0 {
		return 0
	}
	return t.TotalWork() / (span * float64(t.Nodes))
}

// Clone returns a deep copy of the trace, including each job's extra
// demand vector (so in-place edits on a clone never reach the original —
// the campaign engine caches base traces and derives cells from clones).
func (t *Trace) Clone() *Trace {
	c := *t
	c.Jobs = append([]Job(nil), t.Jobs...)
	for i := range c.Jobs {
		if c.Jobs[i].Extra != nil {
			c.Jobs[i].Extra = append([]float64(nil), c.Jobs[i].Extra...)
		}
	}
	return &c
}

// ScaleInterarrival returns a copy of the trace with every inter-arrival
// time multiplied by factor (> 0), preserving the first submission instant.
// Job IDs, sizes and runtimes are untouched, so the job mix is identical and
// only the offered load changes, exactly as in the paper's construction of
// the 9 scaled trace sets.
func (t *Trace) ScaleInterarrival(factor float64) (*Trace, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("workload: inter-arrival scale factor %g must be positive", factor)
	}
	c := t.Clone()
	if len(c.Jobs) == 0 {
		return c, nil
	}
	base := c.Jobs[0].Submit
	prevOld := base
	prevNew := base
	for i := range c.Jobs {
		if i == 0 {
			continue
		}
		gap := c.Jobs[i].Submit - prevOld
		prevOld = c.Jobs[i].Submit
		prevNew += gap * factor
		c.Jobs[i].Submit = prevNew
	}
	return c, nil
}

// ScaleToLoad returns a copy of the trace rescaled so that its offered load
// equals target. It fails for empty or zero-span traces or non-positive
// targets.
func (t *Trace) ScaleToLoad(target float64) (*Trace, error) {
	if target <= 0 {
		return nil, fmt.Errorf("workload: target load %g must be positive", target)
	}
	cur := t.OfferedLoad()
	if cur <= 0 {
		return nil, errors.New("workload: cannot rescale a trace with zero offered load")
	}
	scaled, err := t.ScaleInterarrival(cur / target)
	if err != nil {
		return nil, err
	}
	scaled.Name = fmt.Sprintf("%s-load%.2f", t.Name, target)
	return scaled, nil
}

// SplitSegments cuts the trace into consecutive segments of the given
// duration (seconds), re-basing submission times inside each segment to
// start at 0. Empty segments are omitted. This mirrors the paper's split of
// the 182-week HPC2N log into 1-week instances.
func (t *Trace) SplitSegments(duration float64) ([]*Trace, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("workload: segment duration %g must be positive", duration)
	}
	if len(t.Jobs) == 0 {
		return nil, nil
	}
	var segs []*Trace
	var cur []Job
	segIdx := 0
	segStart := t.Jobs[0].Submit
	flush := func() {
		if len(cur) == 0 {
			return
		}
		seg := &Trace{
			Name:      fmt.Sprintf("%s-week%03d", t.Name, segIdx),
			Nodes:     t.Nodes,
			NodeMemGB: t.NodeMemGB,
			Jobs:      cur,
		}
		segs = append(segs, seg)
		cur = nil
	}
	for _, j := range t.Jobs {
		for j.Submit >= segStart+duration {
			flush()
			segIdx++
			segStart += duration
		}
		j.Submit -= segStart
		cur = append(cur, j)
	}
	flush()
	return segs, nil
}
