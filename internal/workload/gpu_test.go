package workload

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/rng"
)

func gpuBaseTrace() *Trace {
	jobs := make([]Job, 20)
	for i := range jobs {
		jobs[i] = Job{ID: i, Submit: float64(i), Tasks: 1 + i%3,
			CPUNeed: 0.5, MemReq: 0.25, ExecTime: 100}
	}
	return &Trace{Name: "gpu-base", Nodes: 8, NodeMemGB: 4, Jobs: jobs}
}

func TestAttachGPUDemand(t *testing.T) {
	base := gpuBaseTrace()
	got, err := AttachGPUDemand(base, rng.New(3).Split("gpu"), 0.5, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	gpuJobs := 0
	for i, j := range got.Jobs {
		if len(base.Jobs[i].Extra) != 0 {
			t.Fatal("base trace mutated")
		}
		if len(j.Extra) == 0 {
			continue
		}
		gpuJobs++
		if j.Extra[0] < 0.1 || j.Extra[0] > 0.5 {
			t.Errorf("job %d gpu demand %g outside [0.1,0.5]", j.ID, j.Extra[0])
		}
	}
	if gpuJobs == 0 || gpuJobs == len(got.Jobs) {
		t.Errorf("%d of %d jobs decorated, want a strict subset", gpuJobs, len(got.Jobs))
	}
	// Determinism: an identical substream reproduces the identical trace.
	again, err := AttachGPUDemand(base, rng.New(3).Split("gpu"), 0.5, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Jobs, again.Jobs) {
		t.Error("AttachGPUDemand is not deterministic")
	}
	// frac 0 is the identity.
	plain, err := AttachGPUDemand(base, rng.New(3), 0, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Jobs, base.Jobs) {
		t.Error("frac=0 changed the trace")
	}
}

func TestAttachGPUDemandErrors(t *testing.T) {
	base := gpuBaseTrace()
	if _, err := AttachGPUDemand(base, rng.New(1), 1.5, 0.1, 0.5); err == nil {
		t.Error("fraction above 1 accepted")
	}
	if _, err := AttachGPUDemand(base, rng.New(1), 0.5, 0.6, 0.5); err == nil {
		t.Error("inverted demand range accepted")
	}
	if _, err := AttachGPUDemand(base, rng.New(1), 0.5, 0.1, 1.5); err == nil {
		t.Error("demand above 1 accepted")
	}
}

// TestEncodeReadRoundTripGPU: traces with a GPU column survive the trace
// format round trip, and traces without one encode byte-identically to the
// historical two-resource format.
func TestEncodeReadRoundTripGPU(t *testing.T) {
	tr, err := AttachGPUDemand(gpuBaseTrace(), rng.New(3).Split("gpu"), 0.5, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != len(tr.Jobs) {
		t.Fatalf("%d jobs read back, want %d", len(back.Jobs), len(tr.Jobs))
	}
	for i, j := range back.Jobs {
		want := tr.Jobs[i]
		if len(j.Extra) != len(want.Extra) {
			// Zero-demand jobs may round-trip to an explicit zero column.
			if len(want.Extra) == 0 && len(j.Extra) == 1 && j.Extra[0] == 0 {
				continue
			}
			t.Fatalf("job %d extras %v, want %v", j.ID, j.Extra, want.Extra)
		}
		for k := range j.Extra {
			if diff := j.Extra[k] - want.Extra[k]; diff > 1e-6 || diff < -1e-6 {
				t.Errorf("job %d extra[%d] = %v, want %v", j.ID, k, j.Extra[k], want.Extra[k])
			}
		}
	}
	// Two-resource traces keep the exact historical encoding (no weight or
	// gpu columns).
	var plain bytes.Buffer
	if err := gpuBaseTrace().Encode(&plain); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(plain.Bytes(), []byte("id submit tasks cpu_need mem_req exec_time\n")) {
		t.Error("two-resource trace does not keep the historical column header")
	}
}
