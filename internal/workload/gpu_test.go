package workload

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/rng"
)

func gpuBaseTrace() *Trace {
	jobs := make([]Job, 20)
	for i := range jobs {
		jobs[i] = Job{ID: i, Submit: float64(i), Tasks: 1 + i%3,
			CPUNeed: 0.5, MemReq: 0.25, ExecTime: 100}
	}
	return &Trace{Name: "gpu-base", Nodes: 8, NodeMemGB: 4, Jobs: jobs}
}

func TestAttachGPUDemand(t *testing.T) {
	base := gpuBaseTrace()
	got, err := AttachGPUDemand(base, rng.New(3).Split("gpu"), 0.5, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	gpuJobs := 0
	for i, j := range got.Jobs {
		if len(base.Jobs[i].Extra) != 0 {
			t.Fatal("base trace mutated")
		}
		if len(j.Extra) == 0 {
			continue
		}
		gpuJobs++
		if j.Extra[0] < 0.1 || j.Extra[0] > 0.5 {
			t.Errorf("job %d gpu demand %g outside [0.1,0.5]", j.ID, j.Extra[0])
		}
	}
	if gpuJobs == 0 || gpuJobs == len(got.Jobs) {
		t.Errorf("%d of %d jobs decorated, want a strict subset", gpuJobs, len(got.Jobs))
	}
	// Determinism: an identical substream reproduces the identical trace.
	again, err := AttachGPUDemand(base, rng.New(3).Split("gpu"), 0.5, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Jobs, again.Jobs) {
		t.Error("AttachGPUDemand is not deterministic")
	}
	// frac 0 is the identity.
	plain, err := AttachGPUDemand(base, rng.New(3), 0, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Jobs, base.Jobs) {
		t.Error("frac=0 changed the trace")
	}
}

// gpuVariedTrace has per-job memory spread over (0, 1] so correlation is
// measurable.
func gpuVariedTrace() *Trace {
	jobs := make([]Job, 400)
	for i := range jobs {
		jobs[i] = Job{ID: i, Submit: float64(i), Tasks: 1 + i%3,
			CPUNeed: 0.5, MemReq: 0.05 + 0.9*float64(i%100)/99, ExecTime: 100}
	}
	return &Trace{Name: "gpu-varied", Nodes: 8, NodeMemGB: 4, Jobs: jobs}
}

// pearson computes the sample correlation between memory and GPU demand of
// the decorated jobs.
func pearson(tr *Trace) float64 {
	var xs, ys []float64
	for _, j := range tr.Jobs {
		if len(j.Extra) == 1 {
			xs = append(xs, j.MemReq)
			ys = append(ys, j.Extra[0])
		}
	}
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i] / n
		my += ys[i] / n
	}
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	return sxy / (math.Sqrt(sxx) * math.Sqrt(syy))
}

func TestAttachGPUDemandCorrelated(t *testing.T) {
	base := gpuVariedTrace()
	// corr = 0 is bit-for-bit the independent decorator (same variates,
	// same values), so existing GPU campaigns are unchanged.
	indep, err := AttachGPUDemand(base, rng.New(7).Split("gpu"), 0.5, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := AttachGPUDemandCorrelated(base, rng.New(7).Split("gpu"), 0.5, 0, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(indep.Jobs, zero.Jobs) {
		t.Fatal("corr=0 differs from the independent decorator")
	}
	// Positive correlation raises the memory-GPU correlation, negative
	// lowers it; corr=1 is a deterministic affine function of memory.
	r0 := pearson(zero)
	pos, err := AttachGPUDemandCorrelated(base, rng.New(7).Split("gpu"), 0.5, 0.8, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rPos := pearson(pos)
	neg, err := AttachGPUDemandCorrelated(base, rng.New(7).Split("gpu"), 0.5, -0.8, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rNeg := pearson(neg)
	if !(rPos > 0.6) || !(rPos > r0+0.3) {
		t.Errorf("corr=0.8 yields sample correlation %.3f (independent %.3f), want strongly positive", rPos, r0)
	}
	if !(rNeg < -0.6) {
		t.Errorf("corr=-0.8 yields sample correlation %.3f, want strongly negative", rNeg)
	}
	full, err := AttachGPUDemandCorrelated(base, rng.New(7).Split("gpu"), 0.5, 1, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range full.Jobs {
		if len(j.Extra) != 1 {
			continue
		}
		want := 0.1 + 0.4*j.MemReq
		if math.Abs(j.Extra[0]-want) > 1e-12 {
			t.Fatalf("corr=1: job %d gpu %g, want affine %g of mem %g", j.ID, j.Extra[0], want, j.MemReq)
		}
	}
	// Demands stay inside [lo, hi] for every corr, and the same set of
	// jobs is selected regardless of corr (the Bernoulli stream is
	// unchanged).
	for i := range pos.Jobs {
		if (len(pos.Jobs[i].Extra) == 1) != (len(zero.Jobs[i].Extra) == 1) ||
			(len(neg.Jobs[i].Extra) == 1) != (len(zero.Jobs[i].Extra) == 1) {
			t.Fatal("correlation changed which jobs are selected")
		}
		if len(pos.Jobs[i].Extra) == 1 {
			if v := pos.Jobs[i].Extra[0]; v < 0.1-1e-12 || v > 0.5+1e-12 {
				t.Fatalf("job %d gpu demand %g outside [0.1,0.5]", i, v)
			}
		}
	}
	// Determinism under the same substream.
	again, err := AttachGPUDemandCorrelated(base, rng.New(7).Split("gpu"), 0.5, 0.8, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pos.Jobs, again.Jobs) {
		t.Error("AttachGPUDemandCorrelated is not deterministic")
	}
	if _, err := AttachGPUDemandCorrelated(base, rng.New(7), 0.5, 1.5, 0.1, 0.5); err == nil {
		t.Error("correlation above 1 accepted")
	}
	if _, err := AttachGPUDemandCorrelated(base, rng.New(7), 0.5, math.NaN(), 0.1, 0.5); err == nil {
		t.Error("NaN correlation accepted")
	}
}

func TestAttachGPUDemandErrors(t *testing.T) {
	base := gpuBaseTrace()
	if _, err := AttachGPUDemand(base, rng.New(1), 1.5, 0.1, 0.5); err == nil {
		t.Error("fraction above 1 accepted")
	}
	if _, err := AttachGPUDemand(base, rng.New(1), 0.5, 0.6, 0.5); err == nil {
		t.Error("inverted demand range accepted")
	}
	if _, err := AttachGPUDemand(base, rng.New(1), 0.5, 0.1, 1.5); err == nil {
		t.Error("demand above 1 accepted")
	}
}

// TestEncodeReadRoundTripGPU: traces with a GPU column survive the trace
// format round trip, and traces without one encode byte-identically to the
// historical two-resource format.
func TestEncodeReadRoundTripGPU(t *testing.T) {
	tr, err := AttachGPUDemand(gpuBaseTrace(), rng.New(3).Split("gpu"), 0.5, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != len(tr.Jobs) {
		t.Fatalf("%d jobs read back, want %d", len(back.Jobs), len(tr.Jobs))
	}
	for i, j := range back.Jobs {
		want := tr.Jobs[i]
		if len(j.Extra) != len(want.Extra) {
			// Zero-demand jobs may round-trip to an explicit zero column.
			if len(want.Extra) == 0 && len(j.Extra) == 1 && j.Extra[0] == 0 {
				continue
			}
			t.Fatalf("job %d extras %v, want %v", j.ID, j.Extra, want.Extra)
		}
		for k := range j.Extra {
			if diff := j.Extra[k] - want.Extra[k]; diff > 1e-6 || diff < -1e-6 {
				t.Errorf("job %d extra[%d] = %v, want %v", j.ID, k, j.Extra[k], want.Extra[k])
			}
		}
	}
	// Two-resource traces keep the exact historical encoding (no weight or
	// gpu columns).
	var plain bytes.Buffer
	if err := gpuBaseTrace().Encode(&plain); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(plain.Bytes(), []byte("id submit tasks cpu_need mem_req exec_time\n")) {
		t.Error("two-resource trace does not keep the historical column header")
	}
}
