package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cluster"
)

// The trace file format is a small line-oriented text format so generated
// workloads can be stored and replayed by the command-line tools:
//
//	# dfrs-trace v1
//	# name: lublin-000
//	# nodes: 128
//	# nodemem_gb: 8
//	id submit tasks cpu_need mem_req exec_time
//	0 12.5 4 1.0 0.10 3600
//	...
//
// Comment lines start with '#'; the single header row is required.

// Encode serializes the trace in the dfrs trace format. When any job
// carries a non-default weight, the optional seventh column is emitted.
// When any job carries demands beyond CPU and memory, the weight column
// and one column per extra dimension follow (so column positions stay
// unambiguous); traces without extras encode byte-identically to the
// original two-resource format.
func (t *Trace) Encode(w io.Writer) error {
	weighted := false
	extraDims := 0
	for _, j := range t.Jobs {
		if j.Weight > 0 && j.Weight != 1 {
			weighted = true
		}
		if len(j.Extra) > extraDims {
			extraDims = len(j.Extra)
		}
	}
	if extraDims > 0 {
		weighted = true
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# dfrs-trace v1\n")
	fmt.Fprintf(bw, "# name: %s\n", t.Name)
	fmt.Fprintf(bw, "# nodes: %d\n", t.Nodes)
	fmt.Fprintf(bw, "# nodemem_gb: %g\n", t.NodeMemGB)
	fmt.Fprintf(bw, "id submit tasks cpu_need mem_req exec_time")
	if weighted {
		fmt.Fprintf(bw, " weight")
	}
	for k := 0; k < extraDims; k++ {
		fmt.Fprintf(bw, " %s", extraDimName(k))
	}
	fmt.Fprintf(bw, "\n")
	for _, j := range t.Jobs {
		fmt.Fprintf(bw, "%d %.6f %d %.6f %.6f %.6f",
			j.ID, j.Submit, j.Tasks, j.CPUNeed, j.MemReq, j.ExecTime)
		if weighted {
			fmt.Fprintf(bw, " %.6f", j.EffectiveWeight())
		}
		for k := 0; k < extraDims; k++ {
			fmt.Fprintf(bw, " %.6f", j.Demand(2+k))
		}
		fmt.Fprintf(bw, "\n")
	}
	return bw.Flush()
}

// extraDimName returns the conventional column name of extra dimension k
// (dimension 2+k of the resource vector; see cluster.CanonicalDimName).
func extraDimName(k int) string {
	return cluster.CanonicalDimName(2 + k)
}

// ReadTrace parses a trace file written by Encode.
func ReadTrace(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	sawHeader := false
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			meta := strings.TrimSpace(strings.TrimPrefix(line, "#"))
			switch {
			case strings.HasPrefix(meta, "name:"):
				t.Name = strings.TrimSpace(strings.TrimPrefix(meta, "name:"))
			case strings.HasPrefix(meta, "nodes:"):
				v, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(meta, "nodes:")))
				if err != nil {
					return nil, fmt.Errorf("workload: line %d: bad nodes: %v", lineno, err)
				}
				t.Nodes = v
			case strings.HasPrefix(meta, "nodemem_gb:"):
				v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(meta, "nodemem_gb:")), 64)
				if err != nil {
					return nil, fmt.Errorf("workload: line %d: bad nodemem_gb: %v", lineno, err)
				}
				t.NodeMemGB = v
			}
			continue
		}
		if !sawHeader {
			if !strings.HasPrefix(line, "id ") {
				return nil, fmt.Errorf("workload: line %d: missing column header", lineno)
			}
			sawHeader = true
			continue
		}
		f := strings.Fields(line)
		if len(f) < 6 {
			return nil, fmt.Errorf("workload: line %d: %d fields, want at least 6", lineno, len(f))
		}
		var j Job
		var err error
		if j.ID, err = strconv.Atoi(f[0]); err != nil {
			return nil, fmt.Errorf("workload: line %d: id: %v", lineno, err)
		}
		if j.Submit, err = strconv.ParseFloat(f[1], 64); err != nil {
			return nil, fmt.Errorf("workload: line %d: submit: %v", lineno, err)
		}
		if j.Tasks, err = strconv.Atoi(f[2]); err != nil {
			return nil, fmt.Errorf("workload: line %d: tasks: %v", lineno, err)
		}
		if j.CPUNeed, err = strconv.ParseFloat(f[3], 64); err != nil {
			return nil, fmt.Errorf("workload: line %d: cpu_need: %v", lineno, err)
		}
		if j.MemReq, err = strconv.ParseFloat(f[4], 64); err != nil {
			return nil, fmt.Errorf("workload: line %d: mem_req: %v", lineno, err)
		}
		if j.ExecTime, err = strconv.ParseFloat(f[5], 64); err != nil {
			return nil, fmt.Errorf("workload: line %d: exec_time: %v", lineno, err)
		}
		if len(f) >= 7 {
			if j.Weight, err = strconv.ParseFloat(f[6], 64); err != nil {
				return nil, fmt.Errorf("workload: line %d: weight: %v", lineno, err)
			}
		}
		if len(f) > 7 {
			j.Extra = make([]float64, len(f)-7)
			for k, field := range f[7:] {
				if j.Extra[k], err = strconv.ParseFloat(field, 64); err != nil {
					return nil, fmt.Errorf("workload: line %d: %s: %v", lineno, extraDimName(k), err)
				}
			}
		}
		t.Jobs = append(t.Jobs, j)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: %v", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
