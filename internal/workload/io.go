package workload

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cluster"
)

// The trace file format is a small line-oriented text format so generated
// workloads can be stored and replayed by the command-line tools:
//
//	# dfrs-trace v1
//	# name: lublin-000
//	# nodes: 128
//	# nodemem_gb: 8
//	id submit tasks cpu_need mem_req exec_time
//	0 12.5 4 1.0 0.10 3600
//	...
//
// Comment lines start with '#'; the single header row is required.
//
// The format can be both written and read as a stream: TraceEncoder emits
// one job at a time (dfrs-gen generates million-job traces without
// materializing them) and TraceReader parses one job at a time (the
// simulator's streaming mode admits jobs as virtual time reaches them, so
// memory is bounded by jobs-in-system, not trace length).

// maxLineBytes bounds a single trace line. A line of the format is a few
// dozen bytes; the guard exists so a corrupt or non-trace input fails with
// a line-numbered error instead of a silent scanner stop.
const maxLineBytes = 1 << 20

// JobSource is a lazily-consumed stream of jobs in nondecreasing
// submission order — the simulator's streaming input. Next returns the
// next job with ok=true; ok=false ends the stream, with err nil on normal
// exhaustion.
type JobSource interface {
	Next() (j Job, ok bool, err error)
}

// SliceSource adapts a materialized job list to JobSource. The slice is
// not copied; it must already be in nondecreasing submission order (as
// Trace.Validate requires).
type SliceSource struct {
	jobs []Job
	pos  int
}

// NewSliceSource returns a JobSource replaying the trace's jobs in order.
func NewSliceSource(t *Trace) *SliceSource { return &SliceSource{jobs: t.Jobs} }

// Next implements JobSource.
func (s *SliceSource) Next() (Job, bool, error) {
	if s.pos >= len(s.jobs) {
		return Job{}, false, nil
	}
	j := s.jobs[s.pos]
	s.pos++
	return j, true, nil
}

// TraceEncoder writes the trace format one job at a time. The caller fixes
// the column layout up front (whether the weight column and how many extra
// columns are emitted) because a streaming writer cannot scan the whole
// job list first; Encode, which can, chooses the minimal layout.
type TraceEncoder struct {
	bw          *bufio.Writer
	meta        Trace
	weighted    bool
	extraDims   int
	offeredLoad float64
	started     bool
}

// NewTraceEncoder returns an encoder that writes the metadata comments and
// the column header for meta (whose Jobs are ignored) followed by the job
// rows. If weighted is true, or extraDims > 0, the weight column is
// emitted; extraDims fixes the number of extra-dimension columns. The
// preamble is deferred until the first Write (or Flush), so optional
// metadata like SetOfferedLoad can still be attached after construction;
// output bytes are unchanged from when the preamble was written eagerly.
func NewTraceEncoder(w io.Writer, meta *Trace, weighted bool, extraDims int) *TraceEncoder {
	if extraDims > 0 {
		weighted = true
	}
	m := Trace{Name: meta.Name, Nodes: meta.Nodes, NodeMemGB: meta.NodeMemGB}
	return &TraceEncoder{bw: bufio.NewWriter(w), meta: m, weighted: weighted, extraDims: extraDims}
}

// SetOfferedLoad declares the stream's offered load in the preamble
// ("# offered_load: v"), letting a single-pass consumer rescale to a
// target load without draining the stream first (TraceReader.DeclaredLoad,
// dfrs-sim -stream -load). It must be called before the first Write;
// non-positive values are rejected. Traces that never declare a load
// encode byte-identically to the pre-metadata format.
func (e *TraceEncoder) SetOfferedLoad(load float64) error {
	if e.started {
		return errors.New("workload: SetOfferedLoad after first Write")
	}
	if !(load > 0) {
		return fmt.Errorf("workload: declared offered load %g must be positive", load)
	}
	e.offeredLoad = load
	return nil
}

// preamble writes the metadata comments and column header once.
func (e *TraceEncoder) preamble() {
	if e.started {
		return
	}
	e.started = true
	fmt.Fprintf(e.bw, "# dfrs-trace v1\n")
	fmt.Fprintf(e.bw, "# name: %s\n", e.meta.Name)
	fmt.Fprintf(e.bw, "# nodes: %d\n", e.meta.Nodes)
	fmt.Fprintf(e.bw, "# nodemem_gb: %g\n", e.meta.NodeMemGB)
	if e.offeredLoad > 0 {
		fmt.Fprintf(e.bw, "# offered_load: %g\n", e.offeredLoad)
	}
	fmt.Fprintf(e.bw, "id submit tasks cpu_need mem_req exec_time")
	if e.weighted {
		fmt.Fprintf(e.bw, " weight")
	}
	for k := 0; k < e.extraDims; k++ {
		fmt.Fprintf(e.bw, " %s", extraDimName(k))
	}
	fmt.Fprintf(e.bw, "\n")
}

// Write emits one job row.
func (e *TraceEncoder) Write(j Job) error {
	e.preamble()
	fmt.Fprintf(e.bw, "%d %.6f %d %.6f %.6f %.6f",
		j.ID, j.Submit, j.Tasks, j.CPUNeed, j.MemReq, j.ExecTime)
	if e.weighted {
		fmt.Fprintf(e.bw, " %.6f", j.EffectiveWeight())
	}
	for k := 0; k < e.extraDims; k++ {
		fmt.Fprintf(e.bw, " %.6f", j.Demand(2+k))
	}
	_, err := fmt.Fprintf(e.bw, "\n")
	return err
}

// Flush flushes the encoder's buffer; call it once after the last Write.
// An encoder flushed without any Write still emits the preamble, so an
// empty trace file remains well-formed.
func (e *TraceEncoder) Flush() error {
	e.preamble()
	return e.bw.Flush()
}

// Encode serializes the trace in the dfrs trace format. When any job
// carries a non-default weight, the optional seventh column is emitted.
// When any job carries demands beyond CPU and memory, the weight column
// and one column per extra dimension follow (so column positions stay
// unambiguous); traces without extras encode byte-identically to the
// original two-resource format.
func (t *Trace) Encode(w io.Writer) error {
	weighted := false
	extraDims := 0
	for _, j := range t.Jobs {
		if j.Weight > 0 && j.Weight != 1 {
			weighted = true
		}
		if len(j.Extra) > extraDims {
			extraDims = len(j.Extra)
		}
	}
	e := NewTraceEncoder(w, t, weighted, extraDims)
	for _, j := range t.Jobs {
		if err := e.Write(j); err != nil {
			return err
		}
	}
	return e.Flush()
}

// extraDimName returns the conventional column name of extra dimension k
// (dimension 2+k of the resource vector; see cluster.CanonicalDimName).
func extraDimName(k int) string {
	return cluster.CanonicalDimName(2 + k)
}

// TraceReader streams jobs from a trace file written by Encode or a
// TraceEncoder. It implements JobSource. A reader created by StreamTrace
// has parsed the metadata comments and column header, so Meta is valid
// before the first job is read, and validates each job (including
// submission ordering) as it is produced, with line-numbered errors.
type TraceReader struct {
	sc          *bufio.Scanner
	meta        Trace
	lineno      int
	headerCols  int
	sawHeader   bool
	strict      bool
	lastSubmit  float64
	any         bool
	declLoad    float64
	hasDeclLoad bool
}

// StreamTrace opens a trace for streaming: it parses the leading metadata
// comments and the column header (erroring if the input has none) and
// returns a TraceReader positioned before the first job. Metadata
// comments after the header — which Encode never writes — are still
// applied as they are passed, but are not visible in Meta before then.
func StreamTrace(r io.Reader) (*TraceReader, error) {
	tr := newTraceReader(r)
	tr.strict = true
	for !tr.sawHeader {
		line, err := tr.scan()
		if err != nil {
			return nil, err
		}
		if line == nil {
			return nil, errors.New("workload: missing column header")
		}
		if err := tr.headerLine(string(line)); err != nil {
			return nil, err
		}
	}
	if tr.meta.Nodes < 1 {
		return nil, errors.New("workload: trace has no nodes")
	}
	return tr, nil
}

func newTraceReader(r io.Reader) *TraceReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	return &TraceReader{sc: sc}
}

// Meta returns the trace metadata (Name, Nodes, NodeMemGB; Jobs is nil).
func (tr *TraceReader) Meta() *Trace {
	m := tr.meta
	return &m
}

// DeclaredLoad returns the offered load the trace preamble declares
// ("# offered_load:", written by TraceEncoder.SetOfferedLoad), with
// ok=false when the trace carries none. A declared load lets a single-pass
// consumer rescale the stream to a target load (NewScaledSource with
// factor declared/target) without draining it first.
func (tr *TraceReader) DeclaredLoad() (load float64, ok bool) {
	return tr.declLoad, tr.hasDeclLoad
}

// Dims returns the trace's resource dimensionality as declared by the
// column header (2 for the paper's cpu+mem pair, 2+k when the header
// carries k extra-dimension columns after the weight column) — the
// streaming stand-in for Trace.Dims, which scans the jobs.
func (tr *TraceReader) Dims() int {
	if tr.headerCols > 7 {
		return 2 + (tr.headerCols - 7)
	}
	return 2
}

// scan returns the next line, nil at EOF. A scanner failure on an
// over-long line is turned into a line-numbered error instead of the bare
// bufio.ErrTooLong.
func (tr *TraceReader) scan() ([]byte, error) {
	if !tr.sc.Scan() {
		if err := tr.sc.Err(); err != nil {
			if errors.Is(err, bufio.ErrTooLong) {
				return nil, fmt.Errorf("workload: line %d: line too long (over %d bytes)", tr.lineno+1, maxLineBytes)
			}
			return nil, fmt.Errorf("workload: %v", err)
		}
		return nil, nil
	}
	tr.lineno++
	return tr.sc.Bytes(), nil
}

// headerLine consumes one pre-header line: blank, metadata comment, or the
// column header itself.
func (tr *TraceReader) headerLine(raw string) error {
	line := strings.TrimSpace(raw)
	switch {
	case line == "":
		return nil
	case strings.HasPrefix(line, "#"):
		return tr.applyMeta(line)
	case strings.HasPrefix(line, "id "):
		tr.sawHeader = true
		tr.headerCols = len(strings.Fields(line))
		return nil
	default:
		return fmt.Errorf("workload: line %d: missing column header", tr.lineno)
	}
}

// applyMeta parses one '#' comment line, updating the metadata when it is
// one of the known keys.
func (tr *TraceReader) applyMeta(line string) error {
	meta := strings.TrimSpace(strings.TrimPrefix(line, "#"))
	switch {
	case strings.HasPrefix(meta, "name:"):
		tr.meta.Name = strings.TrimSpace(strings.TrimPrefix(meta, "name:"))
	case strings.HasPrefix(meta, "nodes:"):
		v, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(meta, "nodes:")))
		if err != nil {
			return fmt.Errorf("workload: line %d: bad nodes: %v", tr.lineno, err)
		}
		tr.meta.Nodes = v
	case strings.HasPrefix(meta, "nodemem_gb:"):
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(meta, "nodemem_gb:")), 64)
		if err != nil {
			return fmt.Errorf("workload: line %d: bad nodemem_gb: %v", tr.lineno, err)
		}
		tr.meta.NodeMemGB = v
	case strings.HasPrefix(meta, "offered_load:"):
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(meta, "offered_load:")), 64)
		if err != nil {
			return fmt.Errorf("workload: line %d: bad offered_load: %v", tr.lineno, err)
		}
		if !(v > 0) {
			return fmt.Errorf("workload: line %d: declared offered load %g must be positive", tr.lineno, v)
		}
		tr.declLoad, tr.hasDeclLoad = v, true
	}
	return nil
}

// Next implements JobSource: it parses lines until the next job row. In
// strict (StreamTrace) mode each job is validated as it is produced and
// out-of-order submissions fail with a line-numbered error; ReadTrace
// defers whole-trace validation to the end instead, preserving its
// original semantics.
func (tr *TraceReader) Next() (Job, bool, error) {
	for {
		raw, err := tr.scan()
		if err != nil {
			return Job{}, false, err
		}
		if raw == nil {
			return Job{}, false, nil
		}
		line := strings.TrimSpace(string(raw))
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := tr.applyMeta(line); err != nil {
				return Job{}, false, err
			}
			continue
		}
		if !tr.sawHeader {
			if !strings.HasPrefix(line, "id ") {
				return Job{}, false, fmt.Errorf("workload: line %d: missing column header", tr.lineno)
			}
			tr.sawHeader = true
			tr.headerCols = len(strings.Fields(line))
			continue
		}
		j, err := parseJobLine(line, tr.lineno)
		if err != nil {
			return Job{}, false, err
		}
		if tr.strict {
			if err := j.Validate(tr.meta.Nodes); err != nil {
				return Job{}, false, fmt.Errorf("line %d: %w", tr.lineno, err)
			}
			if tr.any && j.Submit < tr.lastSubmit {
				return Job{}, false, fmt.Errorf("workload: line %d: job %d submitted before its predecessor", tr.lineno, j.ID)
			}
		}
		tr.lastSubmit, tr.any = j.Submit, true
		return j, true, nil
	}
}

// parseJobLine parses one job row of the trace format.
func parseJobLine(line string, lineno int) (Job, error) {
	f := strings.Fields(line)
	if len(f) < 6 {
		return Job{}, fmt.Errorf("workload: line %d: %d fields, want at least 6", lineno, len(f))
	}
	var j Job
	var err error
	if j.ID, err = strconv.Atoi(f[0]); err != nil {
		return Job{}, fmt.Errorf("workload: line %d: id: %v", lineno, err)
	}
	if j.Submit, err = strconv.ParseFloat(f[1], 64); err != nil {
		return Job{}, fmt.Errorf("workload: line %d: submit: %v", lineno, err)
	}
	if j.Tasks, err = strconv.Atoi(f[2]); err != nil {
		return Job{}, fmt.Errorf("workload: line %d: tasks: %v", lineno, err)
	}
	if j.CPUNeed, err = strconv.ParseFloat(f[3], 64); err != nil {
		return Job{}, fmt.Errorf("workload: line %d: cpu_need: %v", lineno, err)
	}
	if j.MemReq, err = strconv.ParseFloat(f[4], 64); err != nil {
		return Job{}, fmt.Errorf("workload: line %d: mem_req: %v", lineno, err)
	}
	if j.ExecTime, err = strconv.ParseFloat(f[5], 64); err != nil {
		return Job{}, fmt.Errorf("workload: line %d: exec_time: %v", lineno, err)
	}
	if len(f) >= 7 {
		if j.Weight, err = strconv.ParseFloat(f[6], 64); err != nil {
			return Job{}, fmt.Errorf("workload: line %d: weight: %v", lineno, err)
		}
	}
	if len(f) > 7 {
		j.Extra = make([]float64, len(f)-7)
		for k, field := range f[7:] {
			if j.Extra[k], err = strconv.ParseFloat(field, 64); err != nil {
				return Job{}, fmt.Errorf("workload: line %d: %s: %v", lineno, extraDimName(k), err)
			}
		}
	}
	return j, nil
}

// ReadTrace parses a trace file written by Encode, materializing every
// job. For inputs too large to hold in memory, StreamTrace reads the same
// format one job at a time.
func ReadTrace(r io.Reader) (*Trace, error) {
	tr := newTraceReader(r)
	for {
		j, ok, err := tr.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		tr.meta.Jobs = append(tr.meta.Jobs, j)
	}
	if !tr.sawHeader {
		return nil, errors.New("workload: missing column header")
	}
	t := tr.meta
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}
