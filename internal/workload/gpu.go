package workload

import (
	"fmt"

	"repro/internal/rng"
)

// Default GPU demand bounds shared by every GPU-axis generator (the
// campaign engine, the facade's SyntheticTrace and the dfrs-gen CLI):
// demands are drawn uniformly from [GPUDemandLo, GPUDemandHi] of a
// reference GPU node, so several GPU tasks can share one accelerator but
// demand still binds under load.
const (
	GPUDemandLo = 0.1
	GPUDemandHi = 0.5
)

// AttachGPUDemand returns a copy of the trace in which each job
// independently receives, with probability frac, a per-task GPU demand
// (resource dimension 2) drawn uniformly from [lo, hi]; the remaining jobs
// keep a zero GPU demand. The draw order is the job order, so the result
// is a deterministic function of the trace and the RNG substream — exactly
// two variates are consumed per selected job and one per unselected job,
// keeping downstream substreams stable. The paper's two-resource workloads
// are the frac = 0 special case.
func AttachGPUDemand(t *Trace, r *rng.Source, frac, lo, hi float64) (*Trace, error) {
	if !(frac >= 0 && frac <= 1) { // negated so NaN is rejected too
		return nil, fmt.Errorf("workload: gpu demand fraction %g outside [0,1]", frac)
	}
	if !(lo >= 0 && hi <= 1 && lo <= hi) {
		return nil, fmt.Errorf("workload: gpu demand range [%g,%g] outside [0,1]", lo, hi)
	}
	c := t.Clone()
	if frac == 0 {
		return c, nil
	}
	for i := range c.Jobs {
		if !r.Bernoulli(frac) {
			continue
		}
		c.Jobs[i].Extra = []float64{r.Uniform(lo, hi)}
	}
	return c, nil
}
