package workload

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Default GPU demand bounds shared by every GPU-axis generator (the
// campaign engine, the facade's SyntheticTrace and the dfrs-gen CLI):
// demands are drawn uniformly from [GPUDemandLo, GPUDemandHi] of a
// reference GPU node, so several GPU tasks can share one accelerator but
// demand still binds under load.
const (
	GPUDemandLo = 0.1
	GPUDemandHi = 0.5
)

// AttachGPUDemand returns a copy of the trace in which each job
// independently receives, with probability frac, a per-task GPU demand
// (resource dimension 2) drawn uniformly from [lo, hi]; the remaining jobs
// keep a zero GPU demand. The draw order is the job order, so the result
// is a deterministic function of the trace and the RNG substream — exactly
// two variates are consumed per selected job and one per unselected job,
// keeping downstream substreams stable. The paper's two-resource workloads
// are the frac = 0 special case.
func AttachGPUDemand(t *Trace, r *rng.Source, frac, lo, hi float64) (*Trace, error) {
	return AttachGPUDemandCorrelated(t, r, frac, 0, lo, hi)
}

// AttachGPUDemandCorrelated is AttachGPUDemand with a dimension-correlated
// demand model: instead of an independent uniform draw, a selected job's
// per-task GPU demand mixes its per-task memory requirement into the
// variate, so memory-hungry jobs tend to be GPU-hungry too (memory sizing
// tracks accelerator sizing on real GPU clusters). corr in [-1, 1] is the
// mixing weight: the uniform variate u is replaced by
//
//	|corr| * m + (1 - |corr|) * u,  m = MemReq (corr >= 0) or 1 - MemReq (corr < 0),
//
// and the demand is lo + (hi-lo) times that mix, so corr = 0 is exactly
// the independent AttachGPUDemand model, corr = 1 makes GPU demand a
// deterministic affine function of memory, and corr = -1 anticorrelates
// them. Variate consumption is identical to AttachGPUDemand for every
// corr — one per unselected job, two per selected job — so downstream
// substreams are unaffected by the correlation axis, and the whole
// transformation is deterministic under internal/rng substreams.
func AttachGPUDemandCorrelated(t *Trace, r *rng.Source, frac, corr, lo, hi float64) (*Trace, error) {
	if !(frac >= 0 && frac <= 1) { // negated so NaN is rejected too
		return nil, fmt.Errorf("workload: gpu demand fraction %g outside [0,1]", frac)
	}
	if !(corr >= -1 && corr <= 1) {
		return nil, fmt.Errorf("workload: gpu demand correlation %g outside [-1,1]", corr)
	}
	if !(lo >= 0 && hi <= 1 && lo <= hi) {
		return nil, fmt.Errorf("workload: gpu demand range [%g,%g] outside [0,1]", lo, hi)
	}
	c := t.Clone()
	if frac == 0 {
		return c, nil
	}
	w := math.Abs(corr)
	for i := range c.Jobs {
		if !r.Bernoulli(frac) {
			continue
		}
		u := r.Float64()
		m := c.Jobs[i].MemReq
		if corr < 0 {
			m = 1 - m
		}
		c.Jobs[i].Extra = []float64{lo + (hi-lo)*(w*m+(1-w)*u)}
	}
	return c, nil
}
