// Package metrics computes the paper's evaluation quantities from raw
// simulation results: the bounded stretch of Section II-B2, per-instance
// maximum/average stretch, the degradation factor of Section V (ratio to
// the best algorithm on the same instance), and the preemption/migration
// cost summaries of Table II.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/stats"
)

// StretchBound is the 30-second threshold of the bounded stretch.
const StretchBound = 30.0

// BoundedStretch returns max(turnaround, 30) / max(execTime, 30), the
// bounded-slowdown variant the paper adopts so that short (often failing)
// jobs do not dominate the metric. It is always >= 1 for feasible
// schedules (turnaround >= execTime).
func BoundedStretch(turnaround, execTime float64) float64 {
	return math.Max(turnaround, StretchBound) / math.Max(execTime, StretchBound)
}

// InstanceSummary aggregates one simulation run.
type InstanceSummary struct {
	Algorithm  string
	Trace      string
	MaxStretch float64
	AvgStretch float64
	Makespan   float64
	Jobs       int
}

// Summarize computes per-instance stretch statistics. A result with zero
// finished jobs yields zero stretches rather than the NaN an empty stream
// would produce — NaN is unmarshalable by encoding/json and would poison
// any JSONL record sink mid-run; callers that must distinguish "no jobs"
// from "stretch 0" check the Jobs count.
func Summarize(res *sim.Result) InstanceSummary {
	sum := InstanceSummary{
		Algorithm: res.Algorithm,
		Trace:     res.Trace,
		Makespan:  res.Makespan,
		Jobs:      len(res.Jobs),
	}
	if len(res.Jobs) == 0 {
		return sum
	}
	var s stats.Stream
	for _, jr := range res.Jobs {
		s.Add(BoundedStretch(jr.Turnaround, jr.Job.ExecTime))
	}
	sum.MaxStretch = s.Max()
	sum.AvgStretch = s.Mean()
	return sum
}

// DegradationFactors converts per-algorithm maximum stretches on one
// instance into degradation factors: each value divided by the instance's
// best (smallest) maximum stretch. The best algorithm scores exactly 1.
// A NaN input is rejected with an error naming the offending algorithm
// (NaN would otherwise slip through every comparison and surface much
// later as an unmarshalable record).
func DegradationFactors(maxStretch map[string]float64) (map[string]float64, error) {
	if len(maxStretch) == 0 {
		return nil, fmt.Errorf("metrics: no algorithms to compare")
	}
	best := math.Inf(1)
	for alg, v := range maxStretch {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("metrics: algorithm %q reports NaN maximum stretch", alg)
		}
		if v < best {
			best = v
		}
	}
	if !(best > 0) || math.IsInf(best, 1) {
		return nil, fmt.Errorf("metrics: invalid best maximum stretch %g", best)
	}
	out := make(map[string]float64, len(maxStretch))
	for alg, v := range maxStretch {
		out[alg] = v / best
	}
	return out, nil
}

// CostSummary is one row of Table II for one instance: bandwidth in GB/s,
// occurrences per hour, and occurrences per job, split between preemptions
// and migrations — plus, beyond the paper, the monetary cost accounting of
// priced platforms.
type CostSummary struct {
	Algorithm   string
	Trace       string
	PmtnGBps    float64
	MigGBps     float64
	PmtnPerHour float64
	MigPerHour  float64
	PmtnPerJob  float64
	MigPerJob   float64
	// NodeCost is the run's cost-weighted occupancy in price units
	// (hosting node's cost rate x occupied seconds, accrued once per task
	// placement; see sim.Result.NodeCostSeconds). Always 0 on unpriced
	// clusters, where the paper's model is the exact special case.
	NodeCost float64
	// NodeCostPerJob is NodeCost divided by the number of finished jobs —
	// the average price of running one job under the schedule.
	NodeCostPerJob float64
}

// Costs derives Table II quantities from a run. Rates use the instance
// makespan; per-job counts use the job population.
func Costs(res *sim.Result) CostSummary {
	c := CostSummary{Algorithm: res.Algorithm, Trace: res.Trace, NodeCost: res.NodeCostSeconds}
	if res.Makespan > 0 {
		c.PmtnGBps = res.PreemptionGB / res.Makespan
		c.MigGBps = res.MigrationGB / res.Makespan
		hours := res.Makespan / 3600
		c.PmtnPerHour = float64(res.PreemptionOps) / hours
		c.MigPerHour = float64(res.MigrationOps) / hours
	}
	if n := len(res.Jobs); n > 0 {
		var pmtn, mig int
		for _, jr := range res.Jobs {
			pmtn += jr.Pauses
			mig += jr.Migrations
		}
		c.PmtnPerJob = float64(pmtn) / float64(n)
		c.MigPerJob = float64(mig) / float64(n)
		c.NodeCostPerJob = res.NodeCostSeconds / float64(n)
	}
	return c
}

// Validate sanity-checks a result against the scheduling model: every job
// finished after submission, no job finished before its dedicated execution
// time, and counters are non-negative. Tests run it on every simulation.
func Validate(res *sim.Result) error {
	for _, jr := range res.Jobs {
		if jr.Finish < jr.Job.Submit {
			return fmt.Errorf("metrics: job %d finished before submission", jr.Job.ID)
		}
		// A job cannot run faster than with yield 1.0 from submission.
		if jr.Turnaround < jr.Job.ExecTime-1e-6 {
			return fmt.Errorf("metrics: job %d turnaround %.3f below execution time %.3f",
				jr.Job.ID, jr.Turnaround, jr.Job.ExecTime)
		}
		if jr.Pauses < 0 || jr.Migrations < 0 {
			return fmt.Errorf("metrics: job %d has negative operation counts", jr.Job.ID)
		}
	}
	if res.PreemptionOps < 0 || res.MigrationOps < 0 ||
		res.PreemptionGB < -1e-9 || res.MigrationGB < -1e-9 {
		return fmt.Errorf("metrics: negative cost accounting in %s/%s", res.Algorithm, res.Trace)
	}
	if res.NodeCostSeconds < -1e-9 || math.IsNaN(res.NodeCostSeconds) {
		return fmt.Errorf("metrics: invalid node-cost accounting %g in %s/%s", res.NodeCostSeconds, res.Algorithm, res.Trace)
	}
	return nil
}
