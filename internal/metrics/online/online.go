// Package online computes the paper's evaluation quantities as streaming
// aggregates, without post-hoc Result walks: rolling bounded-stretch
// quantiles (p50/p95/p99) over per-job outcomes the moment each job
// completes, event counters (submissions, dispatches, preemptions,
// migrations) over sim.Observer streams, and campaign-level folds (cells,
// cost burn, utilization, provisional degradation factors) over
// campaign.Record streams.
//
// The package exists for the serving layer (internal/serve, cmd/dfrs-serve)
// and for -summary-only CLI runs: both need "how is this run doing right
// now?" answered while millions of jobs stream through bounded memory, so
// nothing here retains per-job state. One Aggregator accepts concurrent
// writers (several campaign workers feeding one aggregator) and concurrent
// readers (Snapshot is safe to call from HTTP handlers mid-run).
//
// Quantiles come from a fixed log-spaced binning sketch (Quantile): O(bins)
// memory, deterministic, and exact to within one bin. With the default
// 2048 bins over [1, 1e6] a bin spans a ratio of 1e6^(1/2048) ≈ 1.0068, so
// a reported quantile is within ~0.7% (relative) of the empirical
// nearest-rank quantile — the documented sketch tolerance against the
// post-hoc metrics.Summarize / stats.Percentile numbers. Mean, max, min and
// all counters are exact (the mean is summed in completion order, so it can
// differ from a sorted post-hoc fold in the last float bits).
package online

import (
	"math"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Quantile sketch defaults: the stretch range [1, 1e6) covers every
// bounded stretch this simulator can produce short of a livelock (the
// bounded stretch of a 30-second job waiting 50 simulated years is ~5e7;
// values beyond the range clamp into the edge bins and are still bracketed
// by the exact min/max).
const (
	defaultLo   = 1.0
	defaultHi   = 1e6
	defaultBins = 2048
)

// Quantile is a fixed log-spaced binning quantile sketch: values are
// counted into bins whose edges grow geometrically from Lo to Hi, so a
// quantile query walks the cumulative counts and reports the geometric
// midpoint of the target bin. Memory is O(bins), independent of the number
// of observations; the reported value is within one bin — a relative error
// of (Hi/Lo)^(1/bins) — of the empirical nearest-rank quantile. Values
// outside [Lo, Hi) clamp into the edge bins, and the exact min/max are
// tracked so clamped quantiles never leave the observed range.
//
// Quantile is not safe for concurrent use; Aggregator serialises access.
type Quantile struct {
	lo, hi      float64
	invWidth    float64 // bins / ln(hi/lo)
	counts      []int64
	under, over int64 // observations below lo / at or above hi
	n           int64
	min, max    float64
}

// NewQuantile returns a sketch with the given number of log-spaced bins
// over [lo, hi). It panics if lo <= 0, hi <= lo, or bins <= 0 (programming
// errors, like stats.NewHistogram).
func NewQuantile(lo, hi float64, bins int) *Quantile {
	if lo <= 0 || hi <= lo || bins <= 0 {
		panic("online: NewQuantile requires 0 < lo < hi and bins > 0")
	}
	return &Quantile{
		lo:       lo,
		hi:       hi,
		invWidth: float64(bins) / math.Log(hi/lo),
		counts:   make([]int64, bins),
	}
}

// Add records one observation. NaN observations are dropped (they carry no
// rank); infinities clamp into the edge bins.
func (q *Quantile) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if q.n == 0 {
		q.min, q.max = x, x
	} else if x < q.min {
		q.min = x
	} else if x > q.max {
		q.max = x
	}
	switch {
	case x >= q.hi:
		q.over++
	case x < q.lo:
		q.under++
	default:
		idx := int(math.Log(x/q.lo) * q.invWidth)
		if idx >= len(q.counts) { // float round-up at the top edge
			idx = len(q.counts) - 1
		}
		q.counts[idx]++
	}
	q.n++
}

// N returns the number of observations recorded.
func (q *Quantile) N() int64 { return q.n }

// Value returns the p-quantile (0 <= p <= 1) as the geometric midpoint of
// the bin holding the nearest-rank order statistic, clamped to the exact
// observed [min, max]. With no observations it returns 0 (not NaN — the
// snapshot is JSON-marshalled mid-run, and encoding/json rejects NaN).
func (q *Quantile) Value(p float64) float64 {
	if q.n == 0 || math.IsNaN(p) || p < 0 || p > 1 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(q.n)))
	if rank < 1 {
		rank = 1
	}
	// Observations outside [lo, hi) carry no in-range position; quantiles
	// landing among them report the exact observed extremum, the tightest
	// bound the sketch has.
	if rank <= q.under {
		return q.min
	}
	if rank > q.n-q.over {
		return q.max
	}
	cum := q.under
	for i, c := range q.counts {
		cum += c
		if cum >= rank {
			// Geometric midpoint of bin i: lo * ratio^(i+1/2).
			v := q.lo * math.Exp((float64(i)+0.5)/q.invWidth)
			if v < q.min {
				v = q.min
			}
			if v > q.max {
				v = q.max
			}
			return v
		}
	}
	return q.max
}

// Snapshot is a point-in-time view of an Aggregator, safe to hand to
// concurrent readers and to marshal as JSON (no NaN: empty aggregates
// report zeros, distinguished by the Jobs/Cells counts). The stretch
// quantiles carry the sketch tolerance documented on Quantile (~0.7%
// relative with the default binning); everything else is exact.
type Snapshot struct {
	// Jobs is the number of completed jobs folded into the stretch
	// aggregates (ObserveJob calls).
	Jobs int64 `json:"jobs"`
	// MaxStretch and AvgStretch are the exact running max/mean bounded
	// stretch over those jobs.
	MaxStretch float64 `json:"max_stretch"`
	AvgStretch float64 `json:"avg_stretch"`
	// StretchP50/P95/P99 are sketched bounded-stretch quantiles.
	StretchP50 float64 `json:"stretch_p50"`
	StretchP95 float64 `json:"stretch_p95"`
	StretchP99 float64 `json:"stretch_p99"`

	// Event counters, fed by the sim.Observer returned by Observer.
	// Preemptions counts raw JobPreempted transitions, which can exceed
	// the net Table II accounting (see sim.Observer).
	Submitted   int64 `json:"submitted"`
	Started     int64 `json:"started"`
	Preemptions int64 `json:"preemptions"`
	Migrations  int64 `json:"migrations"`

	// Campaign-level folds, fed by ObserveRecord.
	Cells int64 `json:"cells"`
	// FinishedJobs is the total finished-job count summed over records
	// (available even when per-job outcomes were not streamed).
	FinishedJobs int64 `json:"finished_jobs"`
	// Cost is the cost burn so far: the sum of cost-weighted occupancy
	// over finished cells, in price units (0 on unpriced platforms).
	Cost float64 `json:"cost"`
	// Utilization is the makespan-weighted mean utilization over finished
	// cells (a per-record simulated-time weighting, so long cells count
	// proportionally).
	Utilization float64 `json:"utilization"`
	// DegradationP50/P99/Max summarise provisional degradation factors:
	// each record's MaxStretch divided by the best MaxStretch seen so far
	// on the same instance (Cell.InstanceKey grouping). Factors are
	// provisional upper bounds — the instance's true best may not have
	// completed yet — and tighten as the campaign fills in; after all of
	// an instance's algorithms finish they match the post-hoc
	// metrics.DegradationFactors of the arrival order.
	DegradationP50 float64 `json:"degradation_p50"`
	DegradationP99 float64 `json:"degradation_p99"`
	DegradationMax float64 `json:"degradation_max"`
}

// Aggregator folds per-job outcomes, scheduling events and campaign
// records into a Snapshot. All methods are safe for concurrent use; one
// aggregator can be shared by several campaign workers and read by HTTP
// handlers mid-run. The zero value is not ready — use New.
type Aggregator struct {
	mu sync.Mutex

	stretch    *Quantile
	jobs       int64
	stretchSum float64
	stretchMax float64

	submitted, started, preempted, migrated int64

	cells        int64
	finishedJobs int64
	cost         float64
	utilWeighted float64 // sum of utilization x makespan over records
	makespanSum  float64
	degr         *Quantile
	degrMax      float64
	bestStretch  map[string]float64 // instance key -> best max stretch so far
}

// New returns an empty aggregator with the default stretch binning (2048
// log-spaced bins over [1, 1e6), ~0.7% relative tolerance).
func New() *Aggregator {
	return &Aggregator{
		stretch:     NewQuantile(defaultLo, defaultHi, defaultBins),
		degr:        NewQuantile(defaultLo, defaultHi, defaultBins),
		bestStretch: map[string]float64{},
	}
}

// ObserveJob folds one completed job's bounded stretch into the rolling
// aggregates. Its signature matches sim.Config.JobSink (and the facade's
// WithJobSink), so an aggregator plugs directly into streaming runs.
func (a *Aggregator) ObserveJob(jr sim.JobResult) {
	s := metrics.BoundedStretch(jr.Turnaround, jr.Job.ExecTime)
	a.mu.Lock()
	a.jobs++
	a.stretchSum += s
	if s > a.stretchMax {
		a.stretchMax = s
	}
	a.stretch.Add(s)
	a.mu.Unlock()
}

// ObserveRecord folds one finished campaign cell: cell count, finished
// jobs, cost burn, makespan-weighted utilization, and a provisional
// degradation factor against the best max stretch seen so far on the
// record's instance.
func (a *Aggregator) ObserveRecord(rec campaign.Record) {
	a.mu.Lock()
	a.cells++
	a.finishedJobs += int64(rec.Finished)
	a.cost += rec.Cost
	a.utilWeighted += rec.Utilization * rec.Makespan
	a.makespanSum += rec.Makespan
	if rec.MaxStretch > 0 {
		key := rec.InstanceKey()
		best, ok := a.bestStretch[key]
		if !ok || rec.MaxStretch < best {
			best = rec.MaxStretch
			a.bestStretch[key] = best
		}
		f := rec.MaxStretch / best
		a.degr.Add(f)
		if f > a.degrMax {
			a.degrMax = f
		}
	}
	a.mu.Unlock()
}

// Observer returns a sim.Observer that feeds the event counters. Completed
// jobs are not counted here — ObserveJob owns completions, so wiring both
// (as the facade's WithOnlineMetrics does) never double-counts.
func (a *Aggregator) Observer() sim.Observer { return (*eventCounter)(a) }

// Snapshot returns a consistent point-in-time view of every aggregate.
func (a *Aggregator) Snapshot() Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := Snapshot{
		Jobs:        a.jobs,
		MaxStretch:  a.stretchMax,
		StretchP50:  a.stretch.Value(0.50),
		StretchP95:  a.stretch.Value(0.95),
		StretchP99:  a.stretch.Value(0.99),
		Submitted:   a.submitted,
		Started:     a.started,
		Preemptions: a.preempted,
		Migrations:  a.migrated,

		Cells:          a.cells,
		FinishedJobs:   a.finishedJobs,
		Cost:           a.cost,
		DegradationP50: a.degr.Value(0.50),
		DegradationP99: a.degr.Value(0.99),
		DegradationMax: a.degrMax,
	}
	if a.jobs > 0 {
		s.AvgStretch = a.stretchSum / float64(a.jobs)
	}
	if a.makespanSum > 0 {
		s.Utilization = a.utilWeighted / a.makespanSum
	}
	return s
}

// eventCounter adapts the aggregator to sim.Observer. It is the same
// struct under a second type so the Observer methods do not pollute the
// Aggregator API surface.
type eventCounter Aggregator

func (c *eventCounter) lock() *sync.Mutex { return &(*Aggregator)(c).mu }

// JobSubmitted implements sim.Observer.
func (c *eventCounter) JobSubmitted(now float64, jid int) {
	mu := c.lock()
	mu.Lock()
	c.submitted++
	mu.Unlock()
}

// JobStarted implements sim.Observer.
func (c *eventCounter) JobStarted(now float64, jid int, nodes []int) {
	mu := c.lock()
	mu.Lock()
	c.started++
	mu.Unlock()
}

// JobPreempted implements sim.Observer.
func (c *eventCounter) JobPreempted(now float64, jid int) {
	mu := c.lock()
	mu.Lock()
	c.preempted++
	mu.Unlock()
}

// JobMigrated implements sim.Observer.
func (c *eventCounter) JobMigrated(now float64, jid int, nodes []int) {
	mu := c.lock()
	mu.Lock()
	c.migrated++
	mu.Unlock()
}

// JobCompleted implements sim.Observer. Completions are counted by
// ObserveJob (which also sees the stretch); counting them here too would
// double-report when both hooks are wired.
func (c *eventCounter) JobCompleted(now float64, jid int, turnaround float64) {}

// SchedulerInvoked implements sim.Observer.
func (c *eventCounter) SchedulerInvoked(now float64, hook string, jobsInSystem int, elapsed time.Duration) {
}
