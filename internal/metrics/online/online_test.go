package online

import (
	"math"
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/lublin"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"

	// Register schedulers for the end-to-end agreement test.
	_ "repro/internal/sched/greedy"
	_ "repro/internal/sched/mcb"
)

// quantileTol is the test tolerance against exact percentiles: one sketch
// bin (~0.7% relative with the default binning) plus slack for the
// difference between nearest-rank and interpolated percentile definitions
// on small samples.
const quantileTol = 0.02

// TestQuantileAgainstExact checks the sketch against stats.Percentile on a
// deterministic heavy-tailed sample, the shape stretch distributions take.
func TestQuantileAgainstExact(t *testing.T) {
	r := rng.New(99)
	q := NewQuantile(1, 1e6, 2048)
	xs := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-normal-ish: 1 + exp(3u) spans [2, ~21] with a long tail.
		x := 1 + math.Exp(3*r.Float64())
		q.Add(x)
		xs = append(xs, x)
	}
	for _, p := range []float64{0.50, 0.95, 0.99} {
		got := q.Value(p)
		want := stats.Percentile(xs, p*100)
		if rel := math.Abs(got-want) / want; rel > quantileTol {
			t.Errorf("p%g: sketch %.4f vs exact %.4f (rel err %.4f > %.4f)", 100*p, got, want, rel, quantileTol)
		}
	}
}

// TestQuantileEdges pins the empty, single-value, and clamping behaviour.
func TestQuantileEdges(t *testing.T) {
	q := NewQuantile(1, 1e6, 64)
	if v := q.Value(0.5); v != 0 {
		t.Fatalf("empty sketch quantile = %g, want 0", v)
	}
	q.Add(3.5)
	for _, p := range []float64{0, 0.5, 1} {
		if v := q.Value(p); v != 3.5 {
			t.Fatalf("single-value sketch p%g = %g, want exactly 3.5 (min/max clamp)", p, v)
		}
	}
	// Out-of-range values clamp into the edge bins but quantiles stay
	// inside the observed range.
	q2 := NewQuantile(1, 10, 8)
	q2.Add(0.25)
	q2.Add(1e9)
	if lo := q2.Value(0.25); lo != 0.25 {
		t.Fatalf("below-range quantile = %g, want exact min 0.25", lo)
	}
	if hi := q2.Value(1.0); hi != 1e9 {
		t.Fatalf("above-range quantile = %g, want exact max 1e9", hi)
	}
	q2.Add(math.NaN())
	if q2.N() != 2 {
		t.Fatalf("NaN was counted: n=%d, want 2", q2.N())
	}
}

// runOnce simulates one contended synthetic trace, returning the retained
// per-job results.
func runOnce(t *testing.T) *sim.Result {
	t.Helper()
	tr, err := lublin.GenerateTrace(rng.New(5), lublin.DefaultParams(32), 250, "online-test")
	if err != nil {
		t.Fatal(err)
	}
	if tr, err = tr.ScaleToLoad(0.8); err != nil {
		t.Fatal(err)
	}
	s, err := sched.New("greedy-pmtn")
	if err != nil {
		t.Fatal(err)
	}
	simulator, err := sim.New(sim.Config{
		Trace:   tr,
		Cluster: cluster.Homogeneous(tr.Nodes),
		Penalty: 300,
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulator.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAggregatorMatchesSummarize is the acceptance check: the online
// aggregates must match the post-hoc metrics.Summarize fold exactly for
// mean/max (modulo summation order) and within the documented sketch
// tolerance for quantiles.
func TestAggregatorMatchesSummarize(t *testing.T) {
	res := runOnce(t)
	a := New()
	stretches := make([]float64, 0, len(res.Jobs))
	for _, jr := range res.Jobs {
		a.ObserveJob(jr)
		stretches = append(stretches, metrics.BoundedStretch(jr.Turnaround, jr.Job.ExecTime))
	}
	snap := a.Snapshot()
	sum := metrics.Summarize(res)

	if snap.Jobs != int64(sum.Jobs) {
		t.Fatalf("jobs: online %d vs post-hoc %d", snap.Jobs, sum.Jobs)
	}
	if snap.MaxStretch != sum.MaxStretch {
		t.Errorf("max stretch: online %g vs post-hoc %g (must be exact)", snap.MaxStretch, sum.MaxStretch)
	}
	if rel := math.Abs(snap.AvgStretch-sum.AvgStretch) / sum.AvgStretch; rel > 1e-9 {
		t.Errorf("avg stretch: online %g vs post-hoc %g (rel err %g)", snap.AvgStretch, sum.AvgStretch, rel)
	}
	for _, c := range []struct {
		name string
		got  float64
		p    float64
	}{
		{"p50", snap.StretchP50, 50},
		{"p95", snap.StretchP95, 95},
		{"p99", snap.StretchP99, 99},
	} {
		want := stats.Percentile(stretches, c.p)
		if rel := math.Abs(c.got-want) / want; rel > quantileTol {
			t.Errorf("%s: online %.4f vs post-hoc %.4f (rel err %.4f > %.4f)", c.name, c.got, want, rel, quantileTol)
		}
	}
}

// TestObserverCounters checks the event-counting observer against the
// run's own accounting, and that completions are not double-counted.
func TestObserverCounters(t *testing.T) {
	tr, err := lublin.GenerateTrace(rng.New(5), lublin.DefaultParams(32), 150, "online-obs")
	if err != nil {
		t.Fatal(err)
	}
	if tr, err = tr.ScaleToLoad(0.8); err != nil {
		t.Fatal(err)
	}
	s, err := sched.New("greedy-pmtn-migr")
	if err != nil {
		t.Fatal(err)
	}
	a := New()
	simulator, err := sim.New(sim.Config{
		Trace:    tr,
		Cluster:  cluster.Homogeneous(tr.Nodes),
		Penalty:  300,
		Observer: a.Observer(),
		JobSink:  a.ObserveJob,
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simulator.Run(); err != nil {
		t.Fatal(err)
	}
	snap := a.Snapshot()
	if snap.Submitted != int64(len(tr.Jobs)) {
		t.Errorf("submitted %d, want %d", snap.Submitted, len(tr.Jobs))
	}
	if snap.Jobs != int64(len(tr.Jobs)) {
		t.Errorf("completed %d jobs, want %d", snap.Jobs, len(tr.Jobs))
	}
	if snap.Started < snap.Jobs {
		t.Errorf("started %d below completions %d", snap.Started, snap.Jobs)
	}
	// Raw preemption transitions can exceed the net Table II accounting
	// (same-event refunds) but never undercount it.
	if snap.Preemptions == 0 {
		t.Error("contended preempting run reported zero preemption events")
	}
}

// TestObserveRecordFolds checks the campaign-level folds: cells, cost,
// weighted utilization, and provisional degradation grouping by instance.
func TestObserveRecordFolds(t *testing.T) {
	a := New()
	mk := func(alg string, maxStretch, makespan, util, cost float64) campaign.Record {
		c := campaign.Cell{Seed: 1, Family: campaign.FamilyLublin, Load: 0.7, Nodes: 16, Jobs: 100, Penalty: 0, Algorithm: alg}
		return campaign.Record{
			Key: c.Key(), Seed: c.Seed, Family: c.Family, Load: c.Load, Nodes: c.Nodes,
			Jobs: c.Jobs, Algorithm: alg, MaxStretch: maxStretch, Makespan: makespan,
			Utilization: util, Finished: 100, Cost: cost,
		}
	}
	// Worst algorithm first: its provisional factor is 1 until the better
	// run lands, then new factors divide by the improved best.
	a.ObserveRecord(mk("fcfs", 40, 1000, 0.5, 3))
	a.ObserveRecord(mk("greedy", 10, 3000, 0.7, 1))
	snap := a.Snapshot()
	if snap.Cells != 2 || snap.FinishedJobs != 200 {
		t.Fatalf("cells=%d finished=%d, want 2/200", snap.Cells, snap.FinishedJobs)
	}
	if snap.Cost != 4 {
		t.Errorf("cost burn %g, want 4", snap.Cost)
	}
	wantUtil := (0.5*1000 + 0.7*3000) / 4000
	if math.Abs(snap.Utilization-wantUtil) > 1e-12 {
		t.Errorf("weighted utilization %g, want %g", snap.Utilization, wantUtil)
	}
	// Both records scored factor 1 at arrival (each was the best seen on
	// its instance so far); a third, worse run now scores 40/10 = 4.
	a.ObserveRecord(mk("easy", 40, 1000, 0.5, 0))
	if snap = a.Snapshot(); snap.DegradationMax != 4 {
		t.Errorf("degradation max %g, want 4", snap.DegradationMax)
	}
}

// TestConcurrentReaders exercises Snapshot under concurrent writers — the
// serving layer's access pattern — and relies on -race for the verdict.
func TestConcurrentReaders(t *testing.T) {
	a := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				a.ObserveJob(sim.JobResult{Turnaround: float64(100 + i), Job: jobWithExec(50)})
				if i%100 == 0 {
					a.ObserveRecord(campaign.Record{Key: "k", MaxStretch: 2, Makespan: 1, Utilization: 0.5, Finished: 1})
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			snap := a.Snapshot()
			if snap.MaxStretch < 0 || snap.StretchP95 < 0 {
				t.Error("negative aggregate")
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if snap := a.Snapshot(); snap.Jobs != 8000 {
		t.Fatalf("jobs %d, want 8000", snap.Jobs)
	}
}

func jobWithExec(exec float64) workload.Job {
	return workload.Job{Tasks: 1, CPUNeed: 0.5, MemReq: 0.5, ExecTime: exec}
}
