package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/workload"
)

func TestBoundedStretch(t *testing.T) {
	cases := []struct{ turn, exec, want float64 }{
		{7200, 3600, 2},
		{10, 5, 1},          // both under the bound
		{300, 10, 10},       // bounded denominator
		{40, 10, 40.0 / 30}, // numerator above, denominator below
		{30, 30, 1},
	}
	for _, c := range cases {
		if got := BoundedStretch(c.turn, c.exec); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("BoundedStretch(%v, %v) = %v, want %v", c.turn, c.exec, got, c.want)
		}
	}
}

// Property: bounded stretch is >= 1 whenever turnaround >= execTime, and
// monotone in the turnaround.
func TestBoundedStretchProperties(t *testing.T) {
	f := func(exec16, wait16 uint16) bool {
		exec := 1 + float64(exec16)
		turn := exec + float64(wait16)
		s := BoundedStretch(turn, exec)
		if s < 1-1e-12 {
			return false
		}
		return BoundedStretch(turn+10, exec) >= s-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mkResult() *sim.Result {
	return &sim.Result{
		Algorithm: "test-alg",
		Trace:     "test-trace",
		Nodes:     4,
		Makespan:  7200,
		Jobs: []sim.JobResult{
			{Job: workload.Job{ID: 0, ExecTime: 3600, Tasks: 2, MemReq: 0.5}, Start: 0, Finish: 3600, Turnaround: 3600, Pauses: 1, Migrations: 0},
			{Job: workload.Job{ID: 1, ExecTime: 1800, Tasks: 1, MemReq: 0.25}, Start: 100, Finish: 7200, Turnaround: 7200, Pauses: 1, Migrations: 2},
		},
		PreemptionOps: 2,
		MigrationOps:  2,
		PreemptionGB:  36,
		MigrationGB:   72,
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(mkResult())
	if s.Algorithm != "test-alg" || s.Trace != "test-trace" || s.Jobs != 2 {
		t.Errorf("summary metadata: %+v", s)
	}
	// Stretches: 3600/3600 = 1; 7200/1800 = 4.
	if s.MaxStretch != 4 {
		t.Errorf("MaxStretch = %v, want 4", s.MaxStretch)
	}
	if math.Abs(s.AvgStretch-2.5) > 1e-12 {
		t.Errorf("AvgStretch = %v, want 2.5", s.AvgStretch)
	}
}

// TestSummarizeZeroJobs is the regression test for the NaN defect: a
// result with no finished jobs must summarize to zero stretches (an empty
// stats stream yields NaN, which encoding/json cannot marshal, so one
// zero-job cell used to poison a campaign's JSONL sink mid-run).
func TestSummarizeZeroJobs(t *testing.T) {
	s := Summarize(&sim.Result{Algorithm: "a", Trace: "t"})
	if s.Jobs != 0 {
		t.Fatalf("Jobs = %d, want 0", s.Jobs)
	}
	if math.IsNaN(s.MaxStretch) || math.IsNaN(s.AvgStretch) {
		t.Fatalf("zero-job summary carries NaN: %+v", s)
	}
	if s.MaxStretch != 0 || s.AvgStretch != 0 {
		t.Errorf("zero-job stretches = %v/%v, want 0/0", s.MaxStretch, s.AvgStretch)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Errorf("zero-job summary is unmarshalable: %v", err)
	}
}

// TestDegradationFactorsNaN: a NaN maximum stretch is rejected with an
// error naming the offending algorithm.
func TestDegradationFactorsNaN(t *testing.T) {
	_, err := DegradationFactors(map[string]float64{"good": 3, "bad-alg": math.NaN()})
	if err == nil {
		t.Fatal("NaN input accepted")
	}
	if !strings.Contains(err.Error(), "bad-alg") {
		t.Errorf("error %q does not name the offending algorithm", err)
	}
}

func TestDegradationFactors(t *testing.T) {
	deg, err := DegradationFactors(map[string]float64{"x": 3, "y": 12, "z": 3})
	if err != nil {
		t.Fatal(err)
	}
	if deg["x"] != 1 || deg["z"] != 1 || deg["y"] != 4 {
		t.Errorf("degradation: %v", deg)
	}
	if _, err := DegradationFactors(map[string]float64{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := DegradationFactors(map[string]float64{"a": 0}); err == nil {
		t.Error("zero best accepted")
	}
	if _, err := DegradationFactors(map[string]float64{"a": math.Inf(1)}); err == nil {
		t.Error("infinite best accepted")
	}
}

// Property: the minimum degradation factor is exactly 1 and all factors
// are >= 1.
func TestDegradationFactorsProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		in := map[string]float64{}
		for i, v := range vals {
			in[string(rune('a'+i%26))+string(rune('0'+i/26))] = 1 + float64(v)
		}
		deg, err := DegradationFactors(in)
		if err != nil {
			return false
		}
		min := math.Inf(1)
		for _, d := range deg {
			if d < 1-1e-12 {
				return false
			}
			if d < min {
				min = d
			}
		}
		return math.Abs(min-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCosts(t *testing.T) {
	c := Costs(mkResult())
	// Makespan 7200s = 2h.
	if math.Abs(c.PmtnGBps-36.0/7200) > 1e-12 {
		t.Errorf("PmtnGBps = %v", c.PmtnGBps)
	}
	if math.Abs(c.MigGBps-72.0/7200) > 1e-12 {
		t.Errorf("MigGBps = %v", c.MigGBps)
	}
	if math.Abs(c.PmtnPerHour-1) > 1e-12 {
		t.Errorf("PmtnPerHour = %v, want 1", c.PmtnPerHour)
	}
	if math.Abs(c.MigPerHour-1) > 1e-12 {
		t.Errorf("MigPerHour = %v, want 1", c.MigPerHour)
	}
	if math.Abs(c.PmtnPerJob-1) > 1e-12 {
		t.Errorf("PmtnPerJob = %v, want 1", c.PmtnPerJob)
	}
	if math.Abs(c.MigPerJob-1) > 1e-12 {
		t.Errorf("MigPerJob = %v, want 1", c.MigPerJob)
	}
}

func TestCostsEmptyResult(t *testing.T) {
	c := Costs(&sim.Result{Algorithm: "x", Trace: "y"})
	if c.PmtnGBps != 0 || c.MigPerJob != 0 {
		t.Errorf("empty result costs: %+v", c)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(mkResult()); err != nil {
		t.Errorf("valid result rejected: %v", err)
	}
	tooFast := mkResult()
	tooFast.Jobs[0].Turnaround = 100 // below its 3600s execution time
	if err := Validate(tooFast); err == nil {
		t.Error("impossibly fast job accepted")
	}
	negOps := mkResult()
	negOps.PreemptionOps = -1
	if err := Validate(negOps); err == nil {
		t.Error("negative ops accepted")
	}
	early := mkResult()
	early.Jobs[0].Finish = -5
	early.Jobs[0].Job.Submit = 0
	if err := Validate(early); err == nil {
		t.Error("finish before submission accepted")
	}
}
