package experiments

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func sampleFigure1() *Figure1Result {
	mk := func(vals ...float64) []float64 { return vals }
	return &Figure1Result{
		Penalty:    300,
		Loads:      []float64{0.1, 0.5, 0.9},
		Algorithms: []string{"easy", "dynmcb8-asap-per"},
		Mean: map[string][]float64{
			"easy":             mk(100, 200, 300),
			"dynmcb8-asap-per": mk(2, 1.5, 1.1),
		},
	}
}

func TestFigure1CSV(t *testing.T) {
	var b strings.Builder
	if err := sampleFigure1().RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "algorithm,0.1,0.5,0.9\n") {
		t.Errorf("CSV header wrong: %q", out)
	}
	if !strings.Contains(out, "easy,100.00,200.00,300.00") {
		t.Errorf("CSV row missing: %q", out)
	}
}

func TestTableICSV(t *testing.T) {
	res := &TableIResult{
		Algorithms: []string{"easy"},
		Scaled:     map[string]stats.Summary{"easy": {Mean: 195.5, Std: 216.6, Max: 1100.9}},
		Unscaled:   map[string]stats.Summary{"easy": {Mean: 312.4, Std: 425.7, Max: 1061.6}},
		RealWorld:  map[string]stats.Summary{"easy": {Mean: 650.3, Std: 896.8, Max: 2225.9}},
	}
	var b strings.Builder
	if err := res.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "easy,195.50,216.60,1100.90,312.40") {
		t.Errorf("Table I CSV wrong: %q", b.String())
	}
}

func TestTableIICSV(t *testing.T) {
	res := &TableIIResult{
		Algorithms: []string{"dynmcb8-per"},
		Streams: map[string][6]stats.Summary{
			"dynmcb8-per": {
				{Mean: 0.60, Max: 1.31}, {Mean: 0.26, Max: 0.77},
				{Mean: 45.58, Max: 110.16}, {Mean: 48.80, Max: 141.84},
				{Mean: 7.63, Max: 32.32}, {Mean: 6.18, Max: 20.77},
			},
		},
	}
	var b strings.Builder
	if err := res.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "dynmcb8-per,0.60 (1.31)") {
		t.Errorf("Table II CSV wrong: %q", b.String())
	}
}

func TestAblationCSV(t *testing.T) {
	res := &AblationResult{
		Title:      "A1",
		Penalty:    300,
		Algorithms: []string{"a", "b"},
		Stats: map[string]stats.Summary{
			"a": {Mean: 1.1, Std: 0.3, Max: 2.7},
			"b": {Mean: 4.8, Std: 9.3, Max: 43.4},
		},
	}
	var b strings.Builder
	if err := res.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "a,1.10,0.30,2.70") || !strings.Contains(out, "b,4.80,9.30,43.40") {
		t.Errorf("ablation CSV wrong: %q", out)
	}
}

func TestTimingCSV(t *testing.T) {
	res := &TimingResult{
		Algorithm:     "dynmcb8",
		Observations:  100,
		SmallFastFrac: 0.67,
		All:           stats.Summary{Mean: 0.00025, Max: 0.0045},
		Large:         stats.Summary{Mean: 0.0003},
		MaxJobs:       102,
	}
	var b strings.Builder
	if err := res.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "scheduling events observed,100") {
		t.Errorf("timing CSV wrong: %q", out)
	}
	if !strings.Contains(out, "67.00%") {
		t.Errorf("timing CSV fraction wrong: %q", out)
	}
}
