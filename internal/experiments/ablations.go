package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/sched/mcb"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vectorpack"
)

// AblationResult compares a set of algorithm variants by degradation
// factor over the scaled synthetic traces at the given penalty.
type AblationResult struct {
	Title      string
	Penalty    float64
	Algorithms []string
	Stats      map[string]stats.Summary
}

// runAblation executes the named variants as one campaign grid over the
// scaled traces and aggregates degradation factors. The named algorithms
// must be registered; ablation-only variants register themselves via
// registerVariants.
func runAblation(ctx context.Context, cfg Config, title string, algs []string, penalty float64) (*AblationResult, error) {
	recs, err := cfg.run(ctx, cfg.grid("ablation", algs, cfg.Loads, penalty))
	if err != nil {
		return nil, err
	}
	st, err := degradationStats(recs, algs)
	if err != nil {
		return nil, err
	}
	return &AblationResult{Title: title, Penalty: penalty, Algorithms: algs, Stats: st}, nil
}

// AblationPriorityPower compares the paper's squared-virtual-time priority
// against the linear variant the authors report as markedly inferior
// (experiment A1).
func AblationPriorityPower(ctx context.Context, cfg Config) (*AblationResult, error) {
	return runAblation(ctx, cfg, "A1: priority function power (squared vs linear virtual time)",
		[]string{"greedy-pmtn", "greedy-pmtn-linprio"}, PaperPenalty)
}

// AblationPeriod sweeps the scheduling period T over {60, 600, 3600} for
// DYNMCB8-ASAP-PER (experiment A2; the paper reports T=600 as the sweet
// spot against the 5-minute penalty).
func AblationPeriod(ctx context.Context, cfg Config) (*AblationResult, error) {
	ensurePeriodVariants()
	return runAblation(ctx, cfg, "A2: scheduling period sweep for DYNMCB8-ASAP-PER",
		[]string{"dynmcb8-asap-per-60", "dynmcb8-asap-per", "dynmcb8-asap-per-3600"}, PaperPenalty)
}

// AblationPacker swaps MCB8 for first-fit-decreasing and
// best-fit-decreasing inside DYNMCB8-PER (experiment A3).
func AblationPacker(ctx context.Context, cfg Config) (*AblationResult, error) {
	ensurePackerVariants()
	return runAblation(ctx, cfg, "A3: packing heuristic inside DYNMCB8-PER",
		[]string{"dynmcb8-per", "dynmcb8-per-ffd", "dynmcb8-per-bfd"}, PaperPenalty)
}

// ExtensionFairness evaluates the Section VII future-work idea: excluding
// long-running jobs from the average-yield improvement (experiment A4).
func ExtensionFairness(ctx context.Context, cfg Config) (*AblationResult, error) {
	return runAblation(ctx, cfg, "A4: fairness extension (yield decay for long-running jobs)",
		[]string{"dynmcb8-per", "dynmcb8-per-fair"}, PaperPenalty)
}

var variantOnce sync.Once

func ensurePeriodVariants() {
	variantOnce.Do(registerVariants)
}

func ensurePackerVariants() {
	variantOnce.Do(registerVariants)
}

// registerMCB registers an ablation-only DYNMCB8 variant under a custom
// name.
func registerMCB(name string, opt mcb.Options) {
	sched.Register(name, func() sim.Scheduler { return mcb.New(opt) })
}

func registerVariants() {
	registerMCB("dynmcb8-asap-per-60", mcb.Options{Period: 60, ASAP: true, NameOverride: "dynmcb8-asap-per-60"})
	registerMCB("dynmcb8-asap-per-3600", mcb.Options{Period: 3600, ASAP: true, NameOverride: "dynmcb8-asap-per-3600"})
	registerMCB("dynmcb8-per-ffd", mcb.Options{Period: mcb.DefaultPeriod, Packer: vectorpack.FirstFitDecreasing{}, NameOverride: "dynmcb8-per-ffd"})
	registerMCB("dynmcb8-per-bfd", mcb.Options{Period: mcb.DefaultPeriod, Packer: vectorpack.BestFitDecreasing{}, NameOverride: "dynmcb8-per-bfd"})
}

// Table builds the ablation comparison table.
func (a *AblationResult) Table() *report.Table {
	tbl := &report.Table{
		Title:   fmt.Sprintf("%s (penalty %.0fs)", a.Title, a.Penalty),
		Headers: []string{"variant", "deg avg", "deg std", "deg max"},
	}
	for _, alg := range a.Algorithms {
		s := a.Stats[alg]
		tbl.AddRow(alg, f2(s.Mean), f2(s.Std), f2(s.Max))
	}
	return tbl
}

// Render writes the ablation comparison as a fixed-width table.
func (a *AblationResult) Render(w io.Writer) error { return a.Table().Render(w) }

// RenderCSV writes the ablation comparison as CSV.
func (a *AblationResult) RenderCSV(w io.Writer) error { return a.Table().RenderCSV(w) }
