package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/report"
	"repro/internal/stats"
)

// HeterogeneityMixes are the node-mix profiles swept by the heterogeneity
// study: the paper's homogeneous platform plus the two heterogeneous
// presets.
var HeterogeneityMixes = []string{
	cluster.ProfileUniform,
	cluster.ProfileBimodal,
	cluster.ProfilePowerlaw,
}

// HeterogeneityResult holds the heterogeneity study: for each algorithm and
// node-mix profile, the mean maximum bounded stretch across the scaled
// instances, plus the mean degradation factor within each (instance, mix)
// group. It answers the question the homogeneous paper cannot: does an
// algorithm's ranking survive unequal nodes?
type HeterogeneityResult struct {
	Penalty    float64
	Loads      []float64
	Mixes      []string
	Algorithms []string
	// MeanStretch[alg][mi] is the mean max-stretch on Mixes[mi].
	MeanStretch map[string][]float64
	// MeanDegradation[alg][mi] is the mean per-instance degradation factor
	// (ratio to the instance's best algorithm) on Mixes[mi].
	MeanDegradation map[string][]float64
}

// HeterogeneityStudy runs every configured algorithm over every scaled
// synthetic trace on each node-mix profile — a single campaign grid with
// the node-mix axis — and aggregates stretch and degradation per mix.
func HeterogeneityStudy(ctx context.Context, cfg Config) (*HeterogeneityResult, error) {
	g := cfg.grid("heterogeneity", cfg.Algorithms, cfg.Loads, PaperPenalty)
	g.NodeMixes = HeterogeneityMixes
	recs, err := cfg.run(ctx, g)
	if err != nil {
		return nil, err
	}
	res := &HeterogeneityResult{
		Penalty:         PaperPenalty,
		Loads:           cfg.Loads,
		Mixes:           HeterogeneityMixes,
		Algorithms:      cfg.Algorithms,
		MeanStretch:     map[string][]float64{},
		MeanDegradation: map[string][]float64{},
	}
	// Group records by instance (trace x load x mix x ...) to compute
	// degradation factors against the instance's best algorithm.
	byInstance := map[string][]campaign.Record{}
	for _, rec := range recs {
		k := rec.InstanceKey()
		byInstance[k] = append(byInstance[k], rec)
	}
	type agg struct{ stretch, degr stats.Stream }
	cells := map[string]map[string]*agg{} // alg -> canonical mix -> agg
	for _, alg := range cfg.Algorithms {
		cells[alg] = map[string]*agg{}
		for _, mix := range HeterogeneityMixes {
			cells[alg][cluster.NormalizeProfile(mix)] = &agg{}
		}
	}
	for _, group := range byInstance {
		best := 0.0
		for i, rec := range group {
			if i == 0 || rec.MaxStretch < best {
				best = rec.MaxStretch
			}
		}
		for _, rec := range group {
			a, ok := cells[rec.Algorithm][rec.NodeMix]
			if !ok {
				continue
			}
			a.stretch.Add(rec.MaxStretch)
			if best > 0 {
				a.degr.Add(rec.MaxStretch / best)
			}
		}
	}
	for _, alg := range cfg.Algorithms {
		res.MeanStretch[alg] = make([]float64, len(HeterogeneityMixes))
		res.MeanDegradation[alg] = make([]float64, len(HeterogeneityMixes))
		for mi, mix := range HeterogeneityMixes {
			a := cells[alg][cluster.NormalizeProfile(mix)]
			res.MeanStretch[alg][mi] = a.stretch.Mean()
			res.MeanDegradation[alg][mi] = a.degr.Mean()
		}
	}
	return res, nil
}

// Table builds the heterogeneity study table: one row per algorithm, one
// column pair (mean degradation, mean max-stretch) per node mix.
func (r *HeterogeneityResult) Table() *report.Table {
	headers := []string{"algorithm"}
	for _, mix := range r.Mixes {
		headers = append(headers, mix+" degr", mix+" stretch")
	}
	tbl := &report.Table{
		Title:   fmt.Sprintf("Heterogeneity study: degradation and max stretch per node mix (penalty %.0fs)", r.Penalty),
		Headers: headers,
	}
	for _, alg := range r.Algorithms {
		row := []string{alg}
		for mi := range r.Mixes {
			row = append(row,
				fmt.Sprintf("%.2f", r.MeanDegradation[alg][mi]),
				fmt.Sprintf("%.1f", r.MeanStretch[alg][mi]))
		}
		tbl.AddRow(row...)
	}
	return tbl
}

// Render writes the study as an aligned text table.
func (r *HeterogeneityResult) Render(w io.Writer) error { return r.Table().Render(w) }

// RenderCSV writes the study as CSV.
func (r *HeterogeneityResult) RenderCSV(w io.Writer) error { return r.Table().RenderCSV(w) }
