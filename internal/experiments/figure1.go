package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/report"
	"repro/internal/stats"
)

// Figure1Result holds the Figure 1 curves: for each algorithm, the average
// degradation factor at each load level.
type Figure1Result struct {
	Penalty    float64
	Loads      []float64
	Algorithms []string
	// Mean[alg][i] is the average degradation factor at Loads[i].
	Mean map[string][]float64
	// Summary[alg][i] carries the full per-load statistics.
	Summary   map[string][]stats.Summary
	Instances []*Instance
}

// Figure1 runs experiment E1 (penalty 0) or E2 (penalty 300): every
// configured algorithm over every scaled synthetic trace, averaging
// degradation factors per load level. The campaign is one grid —
// algorithms x traces x loads — on the campaign engine.
func Figure1(ctx context.Context, cfg Config, penalty float64) (*Figure1Result, error) {
	g := cfg.grid(fmt.Sprintf("figure1-pen%.0f", penalty), cfg.Algorithms, cfg.Loads, penalty)
	recs, err := cfg.run(ctx, g)
	if err != nil {
		return nil, err
	}
	instances, err := instancesFromRecords(recs, cfg.Algorithms)
	if err != nil {
		return nil, err
	}
	res := &Figure1Result{
		Penalty:    penalty,
		Loads:      cfg.Loads,
		Algorithms: cfg.Algorithms,
		Mean:       map[string][]float64{},
		Summary:    map[string][]stats.Summary{},
		Instances:  instances,
	}
	for _, alg := range cfg.Algorithms {
		res.Mean[alg] = make([]float64, len(cfg.Loads))
		res.Summary[alg] = make([]stats.Summary, len(cfg.Loads))
		for li, load := range cfg.Loads {
			var s stats.Stream
			for _, inst := range instances {
				if inst.Load == load {
					s.Add(inst.Degradation[alg])
				}
			}
			res.Mean[alg][li] = s.Mean()
			res.Summary[alg][li] = s.Summary()
		}
	}
	return res, nil
}

// Table builds the Figure 1 data table.
func (r *Figure1Result) Table() *report.Table {
	tbl := &report.Table{
		Title:   fmt.Sprintf("Figure 1: average degradation factor vs load (penalty %.0fs)", r.Penalty),
		Headers: append([]string{"algorithm"}, loadHeaders(r.Loads)...),
	}
	for _, alg := range r.Algorithms {
		row := []string{alg}
		for li := range r.Loads {
			row = append(row, fmt.Sprintf("%.2f", r.Mean[alg][li]))
		}
		tbl.AddRow(row...)
	}
	return tbl
}

// RenderCSV writes the Figure 1 data as CSV.
func (r *Figure1Result) RenderCSV(w io.Writer) error { return r.Table().RenderCSV(w) }

// Render writes the Figure 1 data as a table plus an ASCII log-scale chart
// matching the paper's presentation.
func (r *Figure1Result) Render(w io.Writer) error {
	if err := r.Table().Render(w); err != nil {
		return err
	}
	chart := &report.Chart{
		Title:  "degradation factor vs load",
		XLabel: "load",
		YLabel: "avg degradation factor",
		LogY:   true,
	}
	for _, alg := range r.Algorithms {
		s := report.Series{Label: alg}
		for li, load := range r.Loads {
			s.Points = append(s.Points, report.Point{X: load, Y: r.Mean[alg][li]})
		}
		chart.Series = append(chart.Series, s)
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	return chart.Render(w)
}

func loadHeaders(loads []float64) []string {
	hs := make([]string, len(loads))
	for i, l := range loads {
		hs[i] = fmt.Sprintf("%.1f", l)
	}
	return hs
}
