package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"repro/internal/campaign"
	"repro/internal/report"
	"repro/internal/stats"
)

// TimingResult reproduces the Section V timing study: how long DYNMCB8
// takes to compute an allocation per scheduling event, as a function of the
// number of jobs in the system. The paper reports that 67.25% of events had
// at most 10 jobs and completed in under 1 ms, with a ~0.25 s average and a
// <4.5 s maximum over 100 unscaled traces on 2008 hardware.
type TimingResult struct {
	Algorithm     string
	Observations  int
	SmallFastFrac float64 // fraction of events with <=10 jobs and <1ms
	All           stats.Summary
	Large         stats.Summary // events with more than 10 jobs
	MaxJobs       int
}

// TimingStudy runs experiment E5 on the unscaled synthetic traces: a
// one-algorithm grid with per-cell timing aggregates enabled, merged into
// campaign-wide statistics. Timing numbers are wall-clock and therefore the
// only nondeterministic output of the harness.
func TimingStudy(ctx context.Context, cfg Config, algorithm string) (*TimingResult, error) {
	if algorithm == "" {
		algorithm = "dynmcb8"
	}
	g := cfg.grid("timing", []string{algorithm}, []float64{campaign.Unscaled}, PaperPenalty)
	g.Timing = true
	recs, err := cfg.run(ctx, g)
	if err != nil {
		return nil, err
	}
	out := &TimingResult{Algorithm: algorithm}
	var smallFast int
	var all, large mergedStream
	for _, rec := range recs {
		agg := rec.Timing
		if agg == nil {
			return nil, fmt.Errorf("experiments: record %s carries no timing aggregate", rec.Key)
		}
		all.merge(agg.Samples, agg.Sum, agg.SumSq, agg.Min, agg.Max)
		large.merge(agg.LargeN, agg.LargeSum, agg.LargeSqSm, agg.LargeMin, agg.LargeMax)
		smallFast += agg.SmallFast
		if agg.MaxJobs > out.MaxJobs {
			out.MaxJobs = agg.MaxJobs
		}
	}
	out.Observations = all.n
	out.All = all.summary()
	out.Large = large.summary()
	if all.n > 0 {
		out.SmallFastFrac = float64(smallFast) / float64(all.n)
	}
	return out, nil
}

// mergedStream reconstructs exact summary statistics from per-cell moment
// aggregates (count, sum, sum of squares, extrema).
type mergedStream struct {
	n          int
	sum, sumSq float64
	min, max   float64
	any        bool
}

func (m *mergedStream) merge(n int, sum, sumSq, min, max float64) {
	if n == 0 {
		return
	}
	if !m.any {
		m.min, m.max = min, max
		m.any = true
	} else {
		m.min = math.Min(m.min, min)
		m.max = math.Max(m.max, max)
	}
	m.n += n
	m.sum += sum
	m.sumSq += sumSq
}

func (m *mergedStream) summary() stats.Summary {
	if m.n == 0 {
		return stats.Summary{Mean: math.NaN(), Std: math.NaN(), Min: math.NaN(), Max: math.NaN()}
	}
	mean := m.sum / float64(m.n)
	std := 0.0
	if m.n > 1 {
		variance := (m.sumSq - float64(m.n)*mean*mean) / float64(m.n-1)
		if variance > 0 {
			std = math.Sqrt(variance)
		}
	}
	return stats.Summary{N: m.n, Mean: mean, Std: std, Min: m.min, Max: m.max, Sum: m.sum}
}

// Table builds the timing study summary table.
func (t *TimingResult) Table() *report.Table {
	tbl := &report.Table{
		Title:   fmt.Sprintf("Section V timing study: %s allocation compute time", t.Algorithm),
		Headers: []string{"metric", "value"},
	}
	tbl.AddRow("scheduling events observed", fmt.Sprintf("%d", t.Observations))
	tbl.AddRow("events with <=10 jobs finishing <1ms", fmt.Sprintf("%.2f%%", 100*t.SmallFastFrac))
	tbl.AddRow("mean compute time (all events)", fmt.Sprintf("%.6fs", t.All.Mean))
	tbl.AddRow("max compute time (all events)", fmt.Sprintf("%.6fs", t.All.Max))
	tbl.AddRow("mean compute time (>10 jobs)", fmt.Sprintf("%.6fs", t.Large.Mean))
	tbl.AddRow("max jobs in system", fmt.Sprintf("%d", t.MaxJobs))
	return tbl
}

// Render writes the timing study summary as a fixed-width table.
func (t *TimingResult) Render(w io.Writer) error { return t.Table().Render(w) }

// RenderCSV writes the timing study summary as CSV.
func (t *TimingResult) RenderCSV(w io.Writer) error { return t.Table().RenderCSV(w) }
