package experiments

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TimingResult reproduces the Section V timing study: how long DYNMCB8
// takes to compute an allocation per scheduling event, as a function of the
// number of jobs in the system. The paper reports that 67.25% of events had
// at most 10 jobs and completed in under 1 ms, with a ~0.25 s average and a
// <4.5 s maximum over 100 unscaled traces on 2008 hardware.
type TimingResult struct {
	Algorithm     string
	Observations  int
	SmallFastFrac float64 // fraction of events with <=10 jobs and <1ms
	All           stats.Summary
	Large         stats.Summary // events with more than 10 jobs
	MaxJobs       int
}

// TimingStudy runs experiment E5 on the unscaled synthetic traces.
func TimingStudy(cfg Config, algorithm string) (*TimingResult, error) {
	if algorithm == "" {
		algorithm = "dynmcb8"
	}
	base, err := cfg.BaseTraces()
	if err != nil {
		return nil, err
	}
	var (
		mu        sync.Mutex
		all       stats.Stream
		large     stats.Stream
		smallFast int
		total     int
		maxJobs   int
	)
	err = parallelFor(len(base), cfg.workers(), func(i int) error {
		s, err := sched.New(algorithm)
		if err != nil {
			return err
		}
		simulator, err := sim.New(sim.Config{
			Trace:            base[i],
			Penalty:          PaperPenalty,
			RecordSchedTimes: true,
			MaxSimTime:       50 * 365 * 24 * 3600,
		}, s)
		if err != nil {
			return err
		}
		res, err := simulator.Run()
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		for _, sample := range res.SchedSamples {
			total++
			all.Add(sample.Seconds)
			if sample.JobsInSystem <= 10 {
				if sample.Seconds < 1e-3 {
					smallFast++
				}
			} else {
				large.Add(sample.Seconds)
			}
			if sample.JobsInSystem > maxJobs {
				maxJobs = sample.JobsInSystem
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &TimingResult{
		Algorithm:    algorithm,
		Observations: total,
		All:          all.Summary(),
		Large:        large.Summary(),
		MaxJobs:      maxJobs,
	}
	if total > 0 {
		out.SmallFastFrac = float64(smallFast) / float64(total)
	}
	return out, nil
}

// Table builds the timing study summary table.
func (t *TimingResult) Table() *report.Table {
	tbl := &report.Table{
		Title:   fmt.Sprintf("Section V timing study: %s allocation compute time", t.Algorithm),
		Headers: []string{"metric", "value"},
	}
	tbl.AddRow("scheduling events observed", fmt.Sprintf("%d", t.Observations))
	tbl.AddRow("events with <=10 jobs finishing <1ms", fmt.Sprintf("%.2f%%", 100*t.SmallFastFrac))
	tbl.AddRow("mean compute time (all events)", fmt.Sprintf("%.6fs", t.All.Mean))
	tbl.AddRow("max compute time (all events)", fmt.Sprintf("%.6fs", t.All.Max))
	tbl.AddRow("mean compute time (>10 jobs)", fmt.Sprintf("%.6fs", t.Large.Mean))
	tbl.AddRow("max jobs in system", fmt.Sprintf("%d", t.MaxJobs))
	return tbl
}

// Render writes the timing study summary as a fixed-width table.
func (t *TimingResult) Render(w io.Writer) error { return t.Table().Render(w) }

// RenderCSV writes the timing study summary as CSV.
func (t *TimingResult) RenderCSV(w io.Writer) error { return t.Table().RenderCSV(w) }
