package experiments

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/campaign"
)

// tinyConfig keeps experiment tests fast while still exercising the full
// pipeline: trace generation, scaling, all algorithms, aggregation and
// rendering.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Traces = 1
	cfg.JobsPerTrace = 40
	cfg.Nodes = 32
	cfg.Loads = []float64{0.3, 0.7}
	cfg.HPC2NWeeks = 1
	cfg.Check = true
	return cfg
}

func TestBaseTracesDeterministic(t *testing.T) {
	cfg := tinyConfig()
	a, err := cfg.BaseTraces()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.BaseTraces()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if len(a[i].Jobs) != len(b[i].Jobs) {
			t.Fatal("trace sizes differ across generations")
		}
		for j := range a[i].Jobs {
			if !reflect.DeepEqual(a[i].Jobs[j], b[i].Jobs[j]) {
				t.Fatalf("trace %d job %d differs", i, j)
			}
		}
	}
}

func TestScaledTracesHitTargets(t *testing.T) {
	cfg := tinyConfig()
	base, err := cfg.BaseTraces()
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := cfg.ScaledTraces(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, load := range cfg.Loads {
		for _, tr := range scaled[load] {
			if got := tr.OfferedLoad(); math.Abs(got-load) > 1e-9 {
				t.Errorf("trace %s load %v, want %v", tr.Name, got, load)
			}
		}
	}
}

func TestRunInstance(t *testing.T) {
	cfg := tinyConfig()
	base, err := cfg.BaseTraces()
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := base[0].ScaleToLoad(0.7)
	if err != nil {
		t.Fatal(err)
	}
	algs := []string{"easy", "greedy-pmtn", "dynmcb8-asap-per"}
	inst, err := RunInstance(context.Background(), scaled, algs, PaperPenalty, true, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	for _, alg := range algs {
		if inst.MaxStretch[alg] <= 0 {
			t.Errorf("%s max stretch = %v", alg, inst.MaxStretch[alg])
		}
		if inst.Degradation[alg] < 1-1e-12 {
			t.Errorf("%s degradation = %v < 1", alg, inst.Degradation[alg])
		}
		if inst.Degradation[alg] < best {
			best = inst.Degradation[alg]
		}
	}
	if math.Abs(best-1) > 1e-12 {
		t.Errorf("no algorithm scored 1.0: %v", inst.Degradation)
	}
}

func TestFigure1EndToEnd(t *testing.T) {
	cfg := tinyConfig()
	cfg.Algorithms = []string{"easy", "greedy-pmtn", "dynmcb8-per"}
	res, err := Figure1(context.Background(), cfg, PaperPenalty)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != len(cfg.Loads)*cfg.Traces {
		t.Errorf("%d instances", len(res.Instances))
	}
	for _, alg := range cfg.Algorithms {
		if len(res.Mean[alg]) != len(cfg.Loads) {
			t.Errorf("%s has %d points", alg, len(res.Mean[alg]))
		}
		for i, m := range res.Mean[alg] {
			if math.IsNaN(m) || m < 1-1e-9 {
				t.Errorf("%s mean degradation at load %v = %v", alg, cfg.Loads[i], m)
			}
		}
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "greedy-pmtn") {
		t.Errorf("render output incomplete:\n%s", out)
	}
}

func TestTableIEndToEnd(t *testing.T) {
	cfg := tinyConfig()
	cfg.Algorithms = []string{"easy", "dynmcb8-asap-per"}
	res, err := TableI(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range cfg.Algorithms {
		if res.Scaled[alg].N == 0 || res.Unscaled[alg].N == 0 || res.RealWorld[alg].N == 0 {
			t.Errorf("%s missing observations: %+v %+v %+v",
				alg, res.Scaled[alg], res.Unscaled[alg], res.RealWorld[alg])
		}
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Table I") {
		t.Error("render output missing title")
	}
}

func TestTableIIEndToEnd(t *testing.T) {
	cfg := tinyConfig()
	cfg.Algorithms = []string{"greedy-pmtn", "dynmcb8-per"}
	res, err := TableII(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range cfg.Algorithms {
		row := res.Streams[alg]
		for k := range row {
			if row[k].N == 0 {
				t.Errorf("%s column %d has no observations", alg, k)
			}
			if row[k].Mean < 0 {
				t.Errorf("%s column %d mean %v < 0", alg, k, row[k].Mean)
			}
		}
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Table II") {
		t.Error("render output missing title")
	}
}

func TestTableIIRequiresHighLoads(t *testing.T) {
	cfg := tinyConfig()
	cfg.Loads = []float64{0.1, 0.2}
	if _, err := TableII(context.Background(), cfg); err == nil {
		t.Error("Table II without >=0.7 loads should fail")
	}
}

func TestTimingStudy(t *testing.T) {
	cfg := tinyConfig()
	res, err := TimingStudy(context.Background(), cfg, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "dynmcb8" {
		t.Errorf("default algorithm = %q", res.Algorithm)
	}
	if res.Observations == 0 {
		t.Error("no timing observations")
	}
	if res.All.Mean < 0 {
		t.Errorf("negative mean time %v", res.All.Mean)
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "timing study") {
		t.Error("render output missing title")
	}
}

func TestAblations(t *testing.T) {
	cfg := tinyConfig()
	cfg.Loads = []float64{0.7}
	for name, run := range map[string]func(context.Context, Config) (*AblationResult, error){
		"priority": AblationPriorityPower,
		"period":   AblationPeriod,
		"packer":   AblationPacker,
		"fairness": ExtensionFairness,
	} {
		res, err := run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, alg := range res.Algorithms {
			if res.Stats[alg].N == 0 {
				t.Errorf("%s: %s has no observations", name, alg)
			}
		}
		var b strings.Builder
		if err := res.Render(&b); err != nil {
			t.Fatalf("%s render: %v", name, err)
		}
	}
}

// TestInstancesFromRecords checks the record-to-instance reconstruction
// that every table builds on: grouping by instance key, degradation
// derivation, and the missing-algorithm error path.
func TestInstancesFromRecords(t *testing.T) {
	mk := func(alg string, trace int, load, maxStretch float64) campaign.Record {
		c := campaign.Cell{Seed: 1, Family: campaign.FamilyLublin, TraceIdx: trace,
			Load: load, Nodes: 32, Jobs: 10, Penalty: 300, Algorithm: alg}
		return campaign.Record{Key: c.Key(), Seed: 1, Family: c.Family, TraceIdx: trace,
			Load: load, Nodes: 32, Jobs: 10, Penalty: 300, Algorithm: alg, MaxStretch: maxStretch}
	}
	algs := []string{"a", "b"}
	recs := []campaign.Record{
		mk("a", 0, 0.5, 10), mk("b", 0, 0.5, 5),
		mk("a", 1, 0.5, 4), mk("b", 1, 0.5, 8),
	}
	instances, err := instancesFromRecords(recs, algs)
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) != 2 {
		t.Fatalf("%d instances, want 2", len(instances))
	}
	if d := instances[0].Degradation["a"]; math.Abs(d-2) > 1e-12 {
		t.Errorf("instance 0 degradation[a] = %v, want 2", d)
	}
	if d := instances[1].Degradation["b"]; math.Abs(d-2) > 1e-12 {
		t.Errorf("instance 1 degradation[b] = %v, want 2", d)
	}
	if _, err := instancesFromRecords(recs[:1], algs); err == nil {
		t.Error("instance missing an algorithm should be rejected")
	}
}
