package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/campaign"
	"repro/internal/report"
	"repro/internal/stats"
)

// TableIResult reproduces Table I: degradation-factor statistics
// (avg/std/max) per algorithm for the three workload families, all with the
// 5-minute rescheduling penalty.
type TableIResult struct {
	Algorithms []string
	Scaled     map[string]stats.Summary // scaled synthetic traces
	Unscaled   map[string]stats.Summary // unscaled synthetic traces
	RealWorld  map[string]stats.Summary // HPC2N-like weekly traces
}

// TableI runs experiment E3 as a single grid spanning the three workload
// legs: load-scaled synthetic traces, the same traces unscaled, and the
// HPC2N-like weekly segments. The records partition by family and load.
func TableI(ctx context.Context, cfg Config) (*TableIResult, error) {
	g := cfg.grid("table1", cfg.Algorithms, cfg.Loads, PaperPenalty)
	g.Families = []campaign.Family{
		{Kind: campaign.FamilyLublin, Count: cfg.Traces},                                         // scaled (grid loads)
		{Kind: campaign.FamilyLublin, Count: cfg.Traces, Loads: []float64{campaign.Unscaled}},    // unscaled
		{Kind: campaign.FamilyHPC2N, Count: cfg.HPC2NWeeks, Loads: []float64{campaign.Unscaled}}, // real-world stand-in
	}
	recs, err := cfg.run(ctx, g)
	if err != nil {
		return nil, err
	}
	var scaled, unscaled, real []campaign.Record
	for _, rec := range recs {
		switch {
		case rec.Family == campaign.FamilyHPC2N:
			real = append(real, rec)
		case rec.Load == campaign.Unscaled:
			unscaled = append(unscaled, rec)
		default:
			scaled = append(scaled, rec)
		}
	}
	res := &TableIResult{Algorithms: cfg.Algorithms}
	if res.Scaled, err = degradationStats(scaled, cfg.Algorithms); err != nil {
		return nil, err
	}
	if res.Unscaled, err = degradationStats(unscaled, cfg.Algorithms); err != nil {
		return nil, err
	}
	if res.RealWorld, err = degradationStats(real, cfg.Algorithms); err != nil {
		return nil, err
	}
	return res, nil
}

// Table builds Table I in the paper's layout.
func (t *TableIResult) Table() *report.Table {
	tbl := &report.Table{
		Title: "Table I: degradation factor, 5-minute rescheduling penalty",
		Headers: []string{"algorithm",
			"scaled avg", "scaled std", "scaled max",
			"unscaled avg", "unscaled std", "unscaled max",
			"real avg", "real std", "real max"},
	}
	for _, alg := range t.Algorithms {
		s, u, r := t.Scaled[alg], t.Unscaled[alg], t.RealWorld[alg]
		tbl.AddRow(alg,
			f2(s.Mean), f2(s.Std), f2(s.Max),
			f2(u.Mean), f2(u.Std), f2(u.Max),
			f2(r.Mean), f2(r.Std), f2(r.Max))
	}
	return tbl
}

// Render writes Table I as a fixed-width table.
func (t *TableIResult) Render(w io.Writer) error { return t.Table().Render(w) }

// RenderCSV writes Table I as CSV.
func (t *TableIResult) RenderCSV(w io.Writer) error { return t.Table().RenderCSV(w) }

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// TableIIResult reproduces Table II: preemption and migration costs over
// the scaled synthetic traces with load >= 0.7 and the 5-minute penalty.
// Each entry holds the average over instances with the per-trace maximum in
// Max.
type TableIIResult struct {
	Algorithms []string
	// Streams[alg] aggregates the six cost columns per instance:
	// pmtn GB/s, mig GB/s, pmtn/h, mig/h, pmtn/job, mig/job.
	Streams map[string][6]stats.Summary
}

// tableIIMinLoad is the paper's load cutoff for Table II.
const tableIIMinLoad = 0.7

// TableII runs experiment E4: the preempting algorithms over the high-load
// scaled traces, aggregating the six cost columns directly from the
// campaign records.
func TableII(ctx context.Context, cfg Config) (*TableIIResult, error) {
	var loads []float64
	for _, l := range cfg.Loads {
		if l >= tableIIMinLoad {
			loads = append(loads, l)
		}
	}
	if len(loads) == 0 {
		return nil, fmt.Errorf("experiments: Table II needs load levels >= %.1f", tableIIMinLoad)
	}
	algs := cfg.Algorithms
	if len(algs) == 0 {
		algs = PreemptingAlgorithms
	}
	recs, err := cfg.run(ctx, cfg.grid("table2", algs, loads, PaperPenalty))
	if err != nil {
		return nil, err
	}
	type accum struct{ streams [6]*stats.Stream }
	acc := map[string]*accum{}
	for _, alg := range algs {
		a := &accum{}
		for i := range a.streams {
			a.streams[i] = &stats.Stream{}
		}
		acc[alg] = a
	}
	for _, rec := range recs {
		cols := [6]float64{rec.PmtnGBps, rec.MigGBps, rec.PmtnPerHour, rec.MigPerHour, rec.PmtnPerJob, rec.MigPerJob}
		for k := range cols {
			acc[rec.Algorithm].streams[k].Add(cols[k])
		}
	}
	out := &TableIIResult{Algorithms: algs, Streams: map[string][6]stats.Summary{}}
	for _, alg := range algs {
		var row [6]stats.Summary
		for k := range row {
			row[k] = acc[alg].streams[k].Summary()
		}
		out.Streams[alg] = row
	}
	return out, nil
}

// Table builds Table II in the paper's layout: average values with maxima
// in parentheses.
func (t *TableIIResult) Table() *report.Table {
	tbl := &report.Table{
		Title: "Table II: preemption/migration costs, scaled traces with load >= 0.7, 5-minute penalty",
		Headers: []string{"algorithm",
			"pmtn GB/s", "mig GB/s",
			"pmtn /hour", "mig /hour",
			"pmtn /job", "mig /job"},
	}
	for _, alg := range t.Algorithms {
		row := t.Streams[alg]
		cells := []string{alg}
		for k := 0; k < 6; k++ {
			cells = append(cells, fmt.Sprintf("%.2f (%.2f)", row[k].Mean, row[k].Max))
		}
		tbl.AddRow(cells...)
	}
	return tbl
}

// Render writes Table II as a fixed-width table.
func (t *TableIIResult) Render(w io.Writer) error { return t.Table().Render(w) }

// RenderCSV writes Table II as CSV.
func (t *TableIIResult) RenderCSV(w io.Writer) error { return t.Table().RenderCSV(w) }
