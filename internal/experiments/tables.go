package experiments

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/hpc2n"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TableIResult reproduces Table I: degradation-factor statistics
// (avg/std/max) per algorithm for the three workload families, all with the
// 5-minute rescheduling penalty.
type TableIResult struct {
	Algorithms []string
	Scaled     map[string]stats.Summary // scaled synthetic traces
	Unscaled   map[string]stats.Summary // unscaled synthetic traces
	RealWorld  map[string]stats.Summary // HPC2N-like weekly traces
}

// TableI runs experiment E3.
func TableI(cfg Config) (*TableIResult, error) {
	base, err := cfg.BaseTraces()
	if err != nil {
		return nil, err
	}
	scaled, err := cfg.ScaledTraces(base)
	if err != nil {
		return nil, err
	}
	var scaledList []*workload.Trace
	for _, load := range cfg.Loads {
		scaledList = append(scaledList, scaled[load]...)
	}
	synth := hpc2n.DefaultSynthParams()
	synth.Weeks = cfg.HPC2NWeeks
	weeks, _, err := hpc2n.WeeklyTraces(rng.New(cfg.Seed).Split("hpc2n"), synth)
	if err != nil {
		return nil, err
	}
	res := &TableIResult{Algorithms: cfg.Algorithms}
	res.Scaled, err = degradationStats(cfg, scaledList, PaperPenalty)
	if err != nil {
		return nil, err
	}
	res.Unscaled, err = degradationStats(cfg, base, PaperPenalty)
	if err != nil {
		return nil, err
	}
	res.RealWorld, err = degradationStats(cfg, weeks, PaperPenalty)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// degradationStats runs every algorithm on every trace and aggregates the
// degradation factors per algorithm.
func degradationStats(cfg Config, traces []*workload.Trace, penalty float64) (map[string]stats.Summary, error) {
	streams := map[string]*stats.Stream{}
	for _, alg := range cfg.Algorithms {
		streams[alg] = &stats.Stream{}
	}
	var mu sync.Mutex
	err := parallelFor(len(traces), cfg.workers(), func(i int) error {
		inst, err := RunInstance(traces[i], cfg.Algorithms, penalty, cfg.Check, 0)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		for _, alg := range cfg.Algorithms {
			streams[alg].Add(inst.Degradation[alg])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := map[string]stats.Summary{}
	for alg, s := range streams {
		out[alg] = s.Summary()
	}
	return out, nil
}

// Table builds Table I in the paper's layout.
func (t *TableIResult) Table() *report.Table {
	tbl := &report.Table{
		Title: "Table I: degradation factor, 5-minute rescheduling penalty",
		Headers: []string{"algorithm",
			"scaled avg", "scaled std", "scaled max",
			"unscaled avg", "unscaled std", "unscaled max",
			"real avg", "real std", "real max"},
	}
	for _, alg := range t.Algorithms {
		s, u, r := t.Scaled[alg], t.Unscaled[alg], t.RealWorld[alg]
		tbl.AddRow(alg,
			f2(s.Mean), f2(s.Std), f2(s.Max),
			f2(u.Mean), f2(u.Std), f2(u.Max),
			f2(r.Mean), f2(r.Std), f2(r.Max))
	}
	return tbl
}

// Render writes Table I as a fixed-width table.
func (t *TableIResult) Render(w io.Writer) error { return t.Table().Render(w) }

// RenderCSV writes Table I as CSV.
func (t *TableIResult) RenderCSV(w io.Writer) error { return t.Table().RenderCSV(w) }

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// TableIIResult reproduces Table II: preemption and migration costs over
// the scaled synthetic traces with load >= 0.7 and the 5-minute penalty.
// Each entry holds the average over instances with the per-trace maximum in
// Max.
type TableIIResult struct {
	Algorithms []string
	// Streams[alg] aggregates the six cost columns per instance:
	// pmtn GB/s, mig GB/s, pmtn/h, mig/h, pmtn/job, mig/job.
	Streams map[string][6]stats.Summary
}

// tableIIMinLoad is the paper's load cutoff for Table II.
const tableIIMinLoad = 0.7

// TableII runs experiment E4.
func TableII(cfg Config) (*TableIIResult, error) {
	base, err := cfg.BaseTraces()
	if err != nil {
		return nil, err
	}
	var loads []float64
	for _, l := range cfg.Loads {
		if l >= tableIIMinLoad {
			loads = append(loads, l)
		}
	}
	if len(loads) == 0 {
		return nil, fmt.Errorf("experiments: Table II needs load levels >= %.1f", tableIIMinLoad)
	}
	hiCfg := cfg
	hiCfg.Loads = loads
	scaled, err := hiCfg.ScaledTraces(base)
	if err != nil {
		return nil, err
	}
	var traces []*workload.Trace
	for _, l := range loads {
		traces = append(traces, scaled[l]...)
	}
	algs := cfg.Algorithms
	if len(algs) == 0 {
		algs = PreemptingAlgorithms
	}
	type accum struct{ streams [6]*stats.Stream }
	acc := map[string]*accum{}
	for _, alg := range algs {
		a := &accum{}
		for i := range a.streams {
			a.streams[i] = &stats.Stream{}
		}
		acc[alg] = a
	}
	var mu sync.Mutex
	err = parallelFor(len(traces), cfg.workers(), func(i int) error {
		for _, alg := range algs {
			res, err := RunOne(traces[i], alg, PaperPenalty, cfg.Check)
			if err != nil {
				return fmt.Errorf("%s on %s: %w", alg, traces[i].Name, err)
			}
			c := costsOf(res)
			mu.Lock()
			for k := range c {
				acc[alg].streams[k].Add(c[k])
			}
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &TableIIResult{Algorithms: algs, Streams: map[string][6]stats.Summary{}}
	for _, alg := range algs {
		var row [6]stats.Summary
		for k := range row {
			row[k] = acc[alg].streams[k].Summary()
		}
		out.Streams[alg] = row
	}
	return out, nil
}

// costsOf flattens a run's Table II quantities into column order.
func costsOf(res *sim.Result) [6]float64 {
	c := metrics.Costs(res)
	return [6]float64{c.PmtnGBps, c.MigGBps, c.PmtnPerHour, c.MigPerHour, c.PmtnPerJob, c.MigPerJob}
}

// Table builds Table II in the paper's layout: average values with maxima
// in parentheses.
func (t *TableIIResult) Table() *report.Table {
	tbl := &report.Table{
		Title: "Table II: preemption/migration costs, scaled traces with load >= 0.7, 5-minute penalty",
		Headers: []string{"algorithm",
			"pmtn GB/s", "mig GB/s",
			"pmtn /hour", "mig /hour",
			"pmtn /job", "mig /job"},
	}
	for _, alg := range t.Algorithms {
		row := t.Streams[alg]
		cells := []string{alg}
		for k := 0; k < 6; k++ {
			cells = append(cells, fmt.Sprintf("%.2f (%.2f)", row[k].Mean, row[k].Max))
		}
		tbl.AddRow(cells...)
	}
	return tbl
}

// Render writes Table II as a fixed-width table.
func (t *TableIIResult) Render(w io.Writer) error { return t.Table().Render(w) }

// RenderCSV writes Table II as CSV.
func (t *TableIIResult) RenderCSV(w io.Writer) error { return t.Table().RenderCSV(w) }
