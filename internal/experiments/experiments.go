// Package experiments defines the paper's evaluation campaigns (Figure 1,
// Table I, Table II, the Section V timing study) and the ablation studies
// listed in DESIGN.md as thin grid definitions over the public campaign
// API (dfrs.Campaign): each experiment declares a campaign.Grid, runs it
// on the engine's worker pool, and aggregates the resulting records into
// the paper's tables and figures. Every experiment takes a context —
// cancellation stops the campaign within one cell per worker — and is
// deterministic given its seed, scaling from quick smoke runs to the
// paper's full 100-trace campaigns via Config.
package experiments

import (
	"context"
	"fmt"

	dfrs "repro"
	"repro/internal/campaign"
	"repro/internal/lublin"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Algorithms is the paper's nine algorithms in the order of Figure 1's
// legend and Table I's rows.
var Algorithms = []string{
	"fcfs",
	"easy",
	"greedy",
	"greedy-pmtn",
	"greedy-pmtn-migr",
	"dynmcb8",
	"dynmcb8-per",
	"dynmcb8-asap-per",
	"dynmcb8-stretch-per",
}

// PreemptingAlgorithms are the six Table II rows (algorithms that pause or
// migrate).
var PreemptingAlgorithms = []string{
	"greedy-pmtn",
	"greedy-pmtn-migr",
	"dynmcb8",
	"dynmcb8-per",
	"dynmcb8-asap-per",
	"dynmcb8-stretch-per",
}

// PaperPenalty is the 5-minute rescheduling penalty in seconds.
const PaperPenalty = 300.0

// Config sets the scale of an experiment campaign.
type Config struct {
	Seed         uint64
	Traces       int       // number of base synthetic traces (paper: 100)
	JobsPerTrace int       // jobs per synthetic trace (paper: 1000)
	Nodes        int       // cluster size (paper: 128)
	Loads        []float64 // offered-load levels (paper: 0.1..0.9)
	Algorithms   []string
	Workers      int  // parallel simulations; <=0 means GOMAXPROCS
	Check        bool // enable simulator invariant checking
	HPC2NWeeks   int  // weekly segments for the real-world leg (paper: 182)
}

// DefaultConfig returns a laptop-scale campaign that preserves the paper's
// platform (128 nodes, loads 0.1–0.9, all nine algorithms) while keeping
// trace counts small enough for CI; scale Traces/JobsPerTrace up to the
// paper's 100/1000 for the full reproduction.
func DefaultConfig() Config {
	return Config{
		Seed:         42,
		Traces:       3,
		JobsPerTrace: 150,
		Nodes:        128,
		Loads:        []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
		Algorithms:   Algorithms,
		HPC2NWeeks:   4,
	}
}

// grid translates the config into a campaign grid over the synthetic
// family with the given loads and penalty; pass campaign.Unscaled as the
// only load for unscaled runs.
func (c Config) grid(name string, algs []string, loads []float64, penalty float64) *campaign.Grid {
	return &campaign.Grid{
		Name:         name,
		Seeds:        []uint64{c.Seed},
		Algorithms:   algs,
		Families:     []campaign.Family{{Kind: campaign.FamilyLublin, Count: c.Traces}},
		Loads:        loads,
		Penalties:    []float64{penalty},
		Nodes:        []int{c.Nodes},
		JobsPerTrace: c.JobsPerTrace,
		Check:        c.Check,
	}
}

// run executes the grid through the public campaign API with the config's
// worker budget; cancelling the context stops within one cell per worker.
func (c Config) run(ctx context.Context, g *campaign.Grid) ([]campaign.Record, error) {
	run, err := dfrs.Campaign(ctx, *g, dfrs.CampaignOptions{Workers: c.Workers})
	if err != nil {
		return nil, err
	}
	return run.Wait()
}

// BaseTraces generates the campaign's synthetic traces (the "unscaled"
// traces of Table I's middle column). The campaign engine materialises the
// identical traces from the same substream labels.
func (c Config) BaseTraces() ([]*workload.Trace, error) {
	root := rng.New(c.Seed)
	traces := make([]*workload.Trace, c.Traces)
	for i := range traces {
		r := root.Split(fmt.Sprintf("trace-%d", i))
		tr, err := lublin.GenerateTrace(r, lublin.DefaultParams(c.Nodes), c.JobsPerTrace,
			fmt.Sprintf("lublin-%03d", i))
		if err != nil {
			return nil, err
		}
		traces[i] = tr
	}
	return traces, nil
}

// ScaledTraces rescales every base trace to every configured load level,
// reproducing the paper's 900 scaled instances (100 traces x 9 loads) at
// the configured scale. The returned map is load -> traces.
func (c Config) ScaledTraces(base []*workload.Trace) (map[float64][]*workload.Trace, error) {
	out := make(map[float64][]*workload.Trace, len(c.Loads))
	for _, load := range c.Loads {
		for _, tr := range base {
			scaled, err := tr.ScaleToLoad(load)
			if err != nil {
				return nil, err
			}
			out[load] = append(out[load], scaled)
		}
	}
	return out, nil
}

// RunOne simulates one named algorithm over one trace; the context cancels
// at event granularity.
func RunOne(ctx context.Context, tr *workload.Trace, alg string, penalty float64, check bool) (*sim.Result, error) {
	s, err := sched.New(alg)
	if err != nil {
		return nil, err
	}
	simulator, err := sim.New(sim.Config{
		Trace:           tr,
		Penalty:         penalty,
		CheckInvariants: check,
		MaxSimTime:      50 * 365 * 24 * 3600, // livelock guard
	}, s)
	if err != nil {
		return nil, err
	}
	res, err := simulator.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	if err := metrics.Validate(res); err != nil {
		return nil, err
	}
	return res, nil
}

// Instance is the outcome of running a set of algorithms on one trace: the
// per-algorithm maximum bounded stretch, the derived degradation factors,
// and the Table II cost summaries.
type Instance struct {
	Trace       string
	Load        float64
	MaxStretch  map[string]float64
	Degradation map[string]float64
	Costs       map[string]metrics.CostSummary
}

// RunInstance executes every algorithm on the trace and computes
// per-instance degradation factors.
func RunInstance(ctx context.Context, tr *workload.Trace, algs []string, penalty float64, check bool, load float64) (*Instance, error) {
	inst := &Instance{
		Trace:       tr.Name,
		Load:        load,
		MaxStretch:  map[string]float64{},
		Degradation: map[string]float64{},
		Costs:       map[string]metrics.CostSummary{},
	}
	for _, alg := range algs {
		res, err := RunOne(ctx, tr, alg, penalty, check)
		if err != nil {
			return nil, fmt.Errorf("%s on %s: %w", alg, tr.Name, err)
		}
		sum := metrics.Summarize(res)
		if sum.Jobs == 0 {
			return nil, fmt.Errorf("%s on %s produced no finished jobs", alg, tr.Name)
		}
		inst.MaxStretch[alg] = sum.MaxStretch
		inst.Costs[alg] = metrics.Costs(res)
	}
	deg, err := metrics.DegradationFactors(inst.MaxStretch)
	if err != nil {
		return nil, err
	}
	inst.Degradation = deg
	return inst, nil
}

// instancesFromRecords groups flat campaign records by instance (same
// trace, load, penalty — every algorithm ran the identical workload) and
// derives per-instance degradation factors. Records must cover every
// algorithm in algs for every instance.
func instancesFromRecords(recs []campaign.Record, algs []string) ([]*Instance, error) {
	byInstance := map[string]*Instance{}
	var order []string
	for _, rec := range recs {
		key := rec.InstanceKey()
		inst, ok := byInstance[key]
		if !ok {
			inst = &Instance{
				Trace:       rec.Trace,
				Load:        rec.Load,
				MaxStretch:  map[string]float64{},
				Degradation: map[string]float64{},
				Costs:       map[string]metrics.CostSummary{},
			}
			byInstance[key] = inst
			order = append(order, key)
		}
		inst.MaxStretch[rec.Algorithm] = rec.MaxStretch
		inst.Costs[rec.Algorithm] = metrics.CostSummary{
			Algorithm: rec.Algorithm, Trace: rec.Trace,
			PmtnGBps: rec.PmtnGBps, MigGBps: rec.MigGBps,
			PmtnPerHour: rec.PmtnPerHour, MigPerHour: rec.MigPerHour,
			PmtnPerJob: rec.PmtnPerJob, MigPerJob: rec.MigPerJob,
		}
	}
	out := make([]*Instance, 0, len(byInstance))
	for _, key := range order {
		inst := byInstance[key]
		for _, alg := range algs {
			if _, ok := inst.MaxStretch[alg]; !ok {
				return nil, fmt.Errorf("experiments: instance %s missing algorithm %s", key, alg)
			}
		}
		deg, err := metrics.DegradationFactors(inst.MaxStretch)
		if err != nil {
			return nil, err
		}
		inst.Degradation = deg
		out = append(out, inst)
	}
	return out, nil
}

// degradationStats folds a record set into per-algorithm degradation
// statistics, the aggregation behind Table I and the ablations.
func degradationStats(recs []campaign.Record, algs []string) (map[string]stats.Summary, error) {
	instances, err := instancesFromRecords(recs, algs)
	if err != nil {
		return nil, err
	}
	streams := map[string]*stats.Stream{}
	for _, alg := range algs {
		streams[alg] = &stats.Stream{}
	}
	for _, inst := range instances {
		for _, alg := range algs {
			streams[alg].Add(inst.Degradation[alg])
		}
	}
	out := map[string]stats.Summary{}
	for alg, s := range streams {
		out[alg] = s.Summary()
	}
	return out, nil
}
