package core

import (
	"math"
	"testing"

	"repro/internal/vectorpack"
)

// TestWeightedYields verifies the Section VII user-priority extension: two
// otherwise identical CPU-bound jobs on one node, one with weight 2, split
// the CPU 2:1 under max-min weighted yield.
func TestWeightedYields(t *testing.T) {
	js := []JobSpec{
		{ID: 0, Tasks: 1, CPUNeed: 1.0, MemReq: 0.2, Weight: 2},
		{ID: 1, Tasks: 1, CPUNeed: 1.0, MemReq: 0.2, Weight: 1},
	}
	alloc, ok := MaxMinYield(js, nodes(1), vectorpack.MCB8{})
	if !ok {
		t.Fatal("feasible instance failed")
	}
	// Base yield Y with 2Y + Y <= 1: Y ~ 1/3, so yields ~2/3 and ~1/3
	// within the 0.01 search accuracy.
	if y := alloc.YieldOf[0]; math.Abs(y-2.0/3) > 0.03 {
		t.Errorf("weighted job yield = %v, want ~0.667", y)
	}
	if y := alloc.YieldOf[1]; math.Abs(y-1.0/3) > 0.03 {
		t.Errorf("unit job yield = %v, want ~0.333", y)
	}
	if err := ValidateAllocation(js, alloc, nodes(1)); err != nil {
		t.Error(err)
	}
}

// TestWeightCapsAtFullYield: a huge weight never pushes a yield above 1.
func TestWeightCapsAtFullYield(t *testing.T) {
	js := []JobSpec{
		{ID: 0, Tasks: 1, CPUNeed: 0.5, MemReq: 0.2, Weight: 100},
		{ID: 1, Tasks: 1, CPUNeed: 0.5, MemReq: 0.2},
	}
	alloc, ok := MaxMinYield(js, nodes(1), vectorpack.MCB8{})
	if !ok {
		t.Fatal("feasible instance failed")
	}
	if alloc.YieldOf[0] > 1+1e-9 {
		t.Errorf("yield above 1: %v", alloc.YieldOf[0])
	}
	// Both jobs fit at full speed here (0.5+0.5 = 1), so weights change
	// nothing.
	if alloc.YieldOf[1] < 0.99 {
		t.Errorf("unit job starved at %v despite full-speed feasibility", alloc.YieldOf[1])
	}
}

// TestZeroWeightMeansDefault: Weight 0 behaves exactly like weight 1, so
// the paper's unweighted experiments are untouched by the extension.
func TestZeroWeightMeansDefault(t *testing.T) {
	unweighted := []JobSpec{
		{ID: 0, Tasks: 1, CPUNeed: 1.0, MemReq: 0.2},
		{ID: 1, Tasks: 1, CPUNeed: 1.0, MemReq: 0.2},
	}
	explicit := []JobSpec{
		{ID: 0, Tasks: 1, CPUNeed: 1.0, MemReq: 0.2, Weight: 1},
		{ID: 1, Tasks: 1, CPUNeed: 1.0, MemReq: 0.2, Weight: 1},
	}
	a, ok := MaxMinYield(unweighted, nodes(1), vectorpack.MCB8{})
	if !ok {
		t.Fatal("unweighted failed")
	}
	b, ok := MaxMinYield(explicit, nodes(1), vectorpack.MCB8{})
	if !ok {
		t.Fatal("explicit failed")
	}
	for id := 0; id <= 1; id++ {
		if a.YieldOf[id] != b.YieldOf[id] {
			t.Errorf("job %d: zero-weight yield %v != weight-1 yield %v",
				id, a.YieldOf[id], b.YieldOf[id])
		}
	}
}
