package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/vectorpack"
)

func TestPriority(t *testing.T) {
	// A job that never ran has infinite priority (must not be paused).
	if p := Priority(100, 0); !math.IsInf(p, 1) {
		t.Errorf("Priority(100, 0) = %v, want +Inf", p)
	}
	// The paper's example: flow 60s, virtual time 25s -> 60/625.
	if p := Priority(60, 25); math.Abs(p-60.0/625) > 1e-12 {
		t.Errorf("Priority(60, 25) = %v, want %v", p, 60.0/625)
	}
	// The 30-second numerator floor.
	if p := Priority(5, 10); math.Abs(p-30.0/100) > 1e-12 {
		t.Errorf("Priority(5, 10) = %v, want 0.3", p)
	}
	// Squared virtual time: doubling virtual time quarters priority.
	if a, b := Priority(1000, 10), Priority(1000, 20); math.Abs(a/b-4) > 1e-9 {
		t.Errorf("priority ratio = %v, want 4", a/b)
	}
	// Linear ablation: doubling virtual time halves priority.
	if a, b := PriorityLinear(1000, 10), PriorityLinear(1000, 20); math.Abs(a/b-2) > 1e-9 {
		t.Errorf("linear priority ratio = %v, want 2", a/b)
	}
}

// Property: priority decreases with virtual time and increases with flow
// time beyond the bound.
func TestPriorityMonotonicityProperty(t *testing.T) {
	f := func(flow8, vt8 uint16) bool {
		flow := 31 + float64(flow8)
		vt := 1 + float64(vt8)
		if Priority(flow, vt) < Priority(flow, vt+1) {
			return false
		}
		return Priority(flow+1, vt) >= Priority(flow, vt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func specs(jobs ...JobSpec) []JobSpec { return jobs }

// nodes builds the homogeneous n-node cluster used throughout these tests.
func nodes(n int) *cluster.Cluster { return cluster.Homogeneous(n) }

func TestMaxMinYieldSingleJob(t *testing.T) {
	// One job fitting alone runs at full yield.
	alloc, ok := MaxMinYield(specs(JobSpec{ID: 0, Tasks: 2, CPUNeed: 0.4, MemReq: 0.3}), nodes(2), vectorpack.MCB8{})
	if !ok {
		t.Fatal("feasible instance failed")
	}
	if alloc.YieldOf[0] != 1 {
		t.Errorf("yield = %v, want 1", alloc.YieldOf[0])
	}
	if len(alloc.NodesOf[0]) != 2 {
		t.Errorf("placements = %v", alloc.NodesOf[0])
	}
}

func TestMaxMinYieldOversubscribed(t *testing.T) {
	// Two 1-task jobs, each needing the full CPU of the single node: the
	// optimal uniform yield is 0.5 (each gets half).
	js := specs(
		JobSpec{ID: 0, Tasks: 1, CPUNeed: 1.0, MemReq: 0.2},
		JobSpec{ID: 1, Tasks: 1, CPUNeed: 1.0, MemReq: 0.2},
	)
	alloc, ok := MaxMinYield(js, nodes(1), vectorpack.MCB8{})
	if !ok {
		t.Fatal("feasible instance failed")
	}
	if y := alloc.MinYield; y < 0.49 || y > 0.5+1e-9 {
		t.Errorf("min yield = %v, want ~0.5 (binary search accuracy 0.01)", y)
	}
	if err := ValidateAllocation(js, alloc, nodes(1)); err != nil {
		t.Error(err)
	}
}

func TestMaxMinYieldMemoryInfeasible(t *testing.T) {
	js := specs(
		JobSpec{ID: 0, Tasks: 1, CPUNeed: 0.1, MemReq: 0.8},
		JobSpec{ID: 1, Tasks: 1, CPUNeed: 0.1, MemReq: 0.8},
	)
	if _, ok := MaxMinYield(js, nodes(1), vectorpack.MCB8{}); ok {
		t.Error("memory-infeasible instance reported feasible")
	}
}

func TestMaxMinYieldEmpty(t *testing.T) {
	alloc, ok := MaxMinYield(nil, nodes(4), vectorpack.MCB8{})
	if !ok || alloc.MinYield != 0 || len(alloc.NodesOf) != 0 {
		t.Errorf("empty instance: %+v, %v", alloc, ok)
	}
}

// Property: MaxMinYield allocations always satisfy the hard constraints and
// the claimed minimum yield, on random feasible-by-memory instances.
func TestMaxMinYieldSoundnessProperty(t *testing.T) {
	f := func(seed int64, nJobs uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4
		var js []JobSpec
		for i := 0; i < int(nJobs%12); i++ {
			js = append(js, JobSpec{
				ID:      i,
				Tasks:   1 + r.Intn(3),
				CPUNeed: 0.05 + r.Float64()*0.95,
				MemReq:  0.05 + r.Float64()*0.45,
			})
		}
		alloc, ok := MaxMinYield(js, nodes(n), vectorpack.MCB8{})
		if !ok {
			return true // memory-bound: nothing to check
		}
		if err := ValidateAllocation(js, alloc, nodes(n)); err != nil {
			t.Log(err)
			return false
		}
		for _, j := range js {
			if alloc.YieldOf[j.ID] < alloc.MinYield-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestImproveAverageYieldFillsLeftover(t *testing.T) {
	// Two jobs on separate nodes at yield 0.5: improvement should push
	// both back to 1 since each node has headroom.
	js := specs(
		JobSpec{ID: 0, Tasks: 1, CPUNeed: 0.6, MemReq: 0.2},
		JobSpec{ID: 1, Tasks: 1, CPUNeed: 0.6, MemReq: 0.2},
	)
	alloc := NewAllocation()
	alloc.NodesOf[0] = []int{0}
	alloc.NodesOf[1] = []int{1}
	alloc.YieldOf[0] = 0.5
	alloc.YieldOf[1] = 0.5
	ImproveAverageYield(js, alloc, nodes(2), nil)
	if alloc.YieldOf[0] != 1 || alloc.YieldOf[1] != 1 {
		t.Errorf("yields = %v, want both 1", alloc.YieldOf)
	}
}

func TestImproveAverageYieldPrefersCheapJobs(t *testing.T) {
	// Shared node, leftover 0.4 CPU. The cheap job (total need 0.2) is
	// raised first and fully; the expensive one gets the remainder.
	js := specs(
		JobSpec{ID: 0, Tasks: 1, CPUNeed: 0.2, MemReq: 0.1}, // cheap
		JobSpec{ID: 1, Tasks: 1, CPUNeed: 0.8, MemReq: 0.1}, // expensive
	)
	alloc := NewAllocation()
	alloc.NodesOf[0] = []int{0}
	alloc.NodesOf[1] = []int{0}
	alloc.YieldOf[0] = 0.5
	alloc.YieldOf[1] = 0.5
	// Used: 0.2*0.5 + 0.8*0.5 = 0.5, headroom 0.5.
	ImproveAverageYield(js, alloc, nodes(1), nil)
	if alloc.YieldOf[0] != 1 {
		t.Errorf("cheap job yield = %v, want 1", alloc.YieldOf[0])
	}
	// After raising job 0 to 1: used = 0.2 + 0.4 = 0.6; headroom 0.4
	// raises job 1 by 0.4/0.8 = 0.5 -> but cap at... 0.5+0.5 = 1.0 exactly.
	if math.Abs(alloc.YieldOf[1]-1) > 1e-9 {
		t.Errorf("expensive job yield = %v, want 1", alloc.YieldOf[1])
	}
}

func TestImproveAverageYieldRespectsEligibility(t *testing.T) {
	js := specs(
		JobSpec{ID: 0, Tasks: 1, CPUNeed: 0.5, MemReq: 0.1},
		JobSpec{ID: 1, Tasks: 1, CPUNeed: 0.5, MemReq: 0.1},
	)
	alloc := NewAllocation()
	alloc.NodesOf[0] = []int{0}
	alloc.NodesOf[1] = []int{0}
	alloc.YieldOf[0] = 0.5
	alloc.YieldOf[1] = 0.5
	// Only job 1 may be raised; headroom is 0.5 so job 1 reaches 1.0 and
	// job 0 stays put.
	ImproveAverageYield(js, alloc, nodes(1), func(j JobSpec) bool { return j.ID == 1 })
	if alloc.YieldOf[0] != 0.5 {
		t.Errorf("ineligible job raised to %v", alloc.YieldOf[0])
	}
	if alloc.YieldOf[1] != 1 {
		t.Errorf("eligible job yield = %v, want 1", alloc.YieldOf[1])
	}
}

// Property: improvement never lowers a yield, never exceeds 1, and keeps
// every node within CPU capacity.
func TestImproveAverageYieldSoundnessProperty(t *testing.T) {
	f := func(seed int64, nJobs uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3
		var js []JobSpec
		for i := 0; i < 1+int(nJobs%10); i++ {
			js = append(js, JobSpec{
				ID:      i,
				Tasks:   1 + r.Intn(2),
				CPUNeed: 0.05 + r.Float64()*0.9,
				MemReq:  0.05 + r.Float64()*0.3,
			})
		}
		alloc, ok := MaxMinYield(js, nodes(n), vectorpack.MCB8{})
		if !ok {
			return true
		}
		before := map[int]float64{}
		for id, y := range alloc.YieldOf {
			before[id] = y
		}
		ImproveAverageYield(js, alloc, nodes(n), nil)
		for id, y := range alloc.YieldOf {
			if y < before[id]-1e-12 || y > 1+1e-9 {
				return false
			}
		}
		return ValidateAllocation(js, alloc, nodes(n)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestYieldForStretchTarget(t *testing.T) {
	s := StretchState{FlowTime: 600, VirtualTime: 300}
	// Target equal to current estimate sustained: (600+T)/S = 300+yT.
	// With T=600, S=2: y = ((1200)/2 - 300)/600 = 0.5.
	if y := YieldForStretchTarget(s, 600, 2); math.Abs(y-0.5) > 1e-12 {
		t.Errorf("y = %v, want 0.5", y)
	}
	// Very generous target: negative solution clamps to the floor.
	if y := YieldForStretchTarget(s, 600, 100); y != MinProgressYield {
		t.Errorf("y = %v, want floor %v", y, MinProgressYield)
	}
	// Impossible target: clamps to 1.
	if y := YieldForStretchTarget(s, 600, 1.0001); y != 1 {
		t.Errorf("y = %v, want 1", y)
	}
	// New job (vt=0): some finite yield in range.
	y := YieldForStretchTarget(StretchState{FlowTime: 0, VirtualTime: 0}, 600, 2)
	if y < MinProgressYield || y > 1 {
		t.Errorf("new-job yield = %v outside [0.01, 1]", y)
	}
}

// Property: the stretch solver's output, fed back into the stretch
// recurrence, achieves at most the target (up to clamping at 1).
func TestYieldForStretchTargetAlgebraProperty(t *testing.T) {
	f := func(flow16, vt16, target8 uint16) bool {
		s := StretchState{FlowTime: float64(flow16), VirtualTime: 1 + float64(vt16)}
		T := 600.0
		target := 1 + float64(target8%50)
		y := YieldForStretchTarget(s, T, target)
		if y < MinProgressYield || y > 1 {
			return false
		}
		achieved := (s.FlowTime + T) / (s.VirtualTime + y*T)
		// If the solver clamped at 1 the target is unreachable; otherwise
		// the achieved estimate must not exceed the target.
		return y == 1 || y == MinProgressYield || achieved <= target*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinEstimatedStretch(t *testing.T) {
	states := []StretchState{
		{JobSpec: JobSpec{ID: 0, Tasks: 1, CPUNeed: 1.0, MemReq: 0.2}, FlowTime: 600, VirtualTime: 100},
		{JobSpec: JobSpec{ID: 1, Tasks: 1, CPUNeed: 1.0, MemReq: 0.2}, FlowTime: 1200, VirtualTime: 100},
	}
	alloc, ok := MinEstimatedStretch(states, nodes(1), vectorpack.MCB8{}, 600)
	if !ok {
		t.Fatal("feasible instance failed")
	}
	// Job 1 has worse current stretch (12 vs 6), so it must receive at
	// least as much yield as job 0.
	if alloc.YieldOf[1] < alloc.YieldOf[0]-1e-9 {
		t.Errorf("worse-off job got less yield: %v", alloc.YieldOf)
	}
	sp := []JobSpec{states[0].JobSpec, states[1].JobSpec}
	if err := ValidateAllocation(sp, alloc, nodes(1)); err != nil {
		t.Error(err)
	}
}

func TestMinEstimatedStretchMemoryBound(t *testing.T) {
	states := []StretchState{
		{JobSpec: JobSpec{ID: 0, Tasks: 1, CPUNeed: 0.1, MemReq: 0.9}, FlowTime: 60, VirtualTime: 10},
		{JobSpec: JobSpec{ID: 1, Tasks: 1, CPUNeed: 0.1, MemReq: 0.9}, FlowTime: 60, VirtualTime: 10},
	}
	if _, ok := MinEstimatedStretch(states, nodes(1), vectorpack.MCB8{}, 600); ok {
		t.Error("memory-bound instance reported feasible")
	}
}

func TestEstStretch(t *testing.T) {
	if s := (StretchState{FlowTime: 100, VirtualTime: 0}).EstStretch(); !math.IsInf(s, 1) {
		t.Errorf("zero virtual time stretch = %v, want +Inf", s)
	}
	if s := (StretchState{FlowTime: 100, VirtualTime: 50}).EstStretch(); s != 2 {
		t.Errorf("stretch = %v, want 2", s)
	}
}

func TestValidateAllocationCatchesViolations(t *testing.T) {
	js := specs(JobSpec{ID: 0, Tasks: 2, CPUNeed: 0.8, MemReq: 0.6})
	alloc := NewAllocation()
	alloc.NodesOf[0] = []int{0, 0} // both tasks on one node: memory 1.2
	alloc.YieldOf[0] = 0.5
	if err := ValidateAllocation(js, alloc, nodes(2)); err == nil {
		t.Error("memory violation not detected")
	}
	alloc.NodesOf[0] = []int{0}
	if err := ValidateAllocation(js, alloc, nodes(2)); err == nil {
		t.Error("missing placement not detected")
	}
	alloc.NodesOf[0] = []int{0, 7}
	if err := ValidateAllocation(js, alloc, nodes(2)); err == nil {
		t.Error("node out of range not detected")
	}
	alloc.NodesOf[0] = []int{0, 1}
	alloc.YieldOf[0] = 1.5
	if err := ValidateAllocation(js, alloc, nodes(2)); err == nil {
		t.Error("yield out of range not detected")
	}
	missing := NewAllocation()
	if err := ValidateAllocation(js, missing, nodes(2)); err == nil {
		t.Error("absent job not detected")
	}
}

func TestTotalCPUNeed(t *testing.T) {
	j := JobSpec{Tasks: 4, CPUNeed: 0.25}
	if got := j.TotalCPUNeed(); got != 1 {
		t.Errorf("TotalCPUNeed = %v, want 1", got)
	}
}
