// Package core implements the paper's primary contribution: the DFRS
// (dynamic fractional resource scheduling) allocation machinery that every
// scheduler in this repository builds on.
//
// It provides:
//
//   - the yield model (Section II-B2): the yield of a job is the CPU
//     fraction allocated to each of its tasks divided by the task's CPU
//     need; all tasks of a job receive identical yields;
//   - minimum-yield maximization by binary search over vector-packing
//     feasibility (Section III-B);
//   - the average-yield improvement heuristic that hands out leftover CPU
//     to jobs in ascending order of total CPU need (Section III-A);
//   - the preemption priority function max(30, flowTime)/virtualTime^2
//     (Section III-A);
//   - the estimated-stretch solver used by DYNMCB8-STRETCH-PER
//     (Section III-B).
package core

import (
	"fmt"
	"math"
	"reflect"
	"slices"

	"repro/internal/cluster"
	"repro/internal/floats"
	"repro/internal/vectorpack"
)

// StretchBound is the 30-second threshold shared by the bounded-stretch
// metric and the priority function (Sections II-B2 and III-A).
const StretchBound = 30.0

// YieldAccuracy is the absolute accuracy of the minimum-yield binary search
// (the paper uses 0.01).
const YieldAccuracy = 0.01

// MinProgressYield is the floor yield handed to jobs by the stretch-driven
// allocator so that no job holds memory without making progress.
const MinProgressYield = 0.01

// JobSpec is the scheduler-facing description of a job's resource shape.
// All tasks of a job are identical (Section II-B1).
type JobSpec struct {
	ID      int
	Tasks   int
	CPUNeed float64 // per-task CPU need, fraction of a node in (0, 1]
	MemReq  float64 // per-task memory requirement, fraction of a node in (0, 1]
	// Extra holds per-task rigid demands for resource dimensions beyond
	// CPU and memory (Extra[0] is dimension 2, e.g. GPU), as fractions of
	// the reference node. Nil means no demand beyond the paper's pair.
	Extra []float64
	// Weight scales the job's yield under contention (user-priority
	// extension, paper Section VII); 0 means the default weight 1.
	Weight float64
}

// effectiveWeight returns the weight, defaulting to 1.
func (j JobSpec) effectiveWeight() float64 {
	if j.Weight <= 0 {
		return 1
	}
	return j.Weight
}

// TotalCPUNeed returns the job's CPU need summed over its tasks, the
// quantity the average-yield heuristic sorts by.
func (j JobSpec) TotalCPUNeed() float64 { return float64(j.Tasks) * j.CPUNeed }

// Allocation maps every job to the nodes hosting its tasks and the common
// yield of those tasks.
type Allocation struct {
	// NodesOf[jobID][k] is the node hosting task k. A node may host
	// several tasks of the same job.
	NodesOf map[int][]int
	// YieldOf[jobID] is the job's yield in [0, 1].
	YieldOf map[int]float64
	// MinYield is the smallest yield across jobs (0 for an empty
	// allocation).
	MinYield float64
}

// NewAllocation returns an empty allocation.
func NewAllocation() *Allocation {
	return &Allocation{NodesOf: map[int][]int{}, YieldOf: map[int]float64{}}
}

// Priority returns the preemption priority of a job: max(30, flowTime)
// divided by the square of its virtual time. Jobs with zero virtual time
// have infinite priority (they have never run and must not be paused or
// passed over for resumption). Higher priority means "keep running /
// resume first"; jobs are paused in increasing priority order.
func Priority(flowTime, virtualTime float64) float64 {
	if virtualTime <= 0 {
		return math.Inf(1)
	}
	return math.Max(StretchBound, flowTime) / (virtualTime * virtualTime)
}

// PriorityLinear is the ablation variant without the square (paper
// Section III-A notes it performs markedly worse).
func PriorityLinear(flowTime, virtualTime float64) float64 {
	if virtualTime <= 0 {
		return math.Inf(1)
	}
	return math.Max(StretchBound, flowTime) / virtualTime
}

// packProbe is the reusable d-dimensional vector-packing instance behind
// one allocator call (MaxMinYield, MinEstimatedStretch). It is built once
// per call — one item per task, all tasks of one job sharing a single
// requirement vector in a flat backing array — and every binary-search
// probe then only rewrites the per-job CPU requirement (dimension 0) for
// the probe's yields; the rigid dimensions (memory, Extra) never change.
// Job demands beyond the cluster's dimensions are rejected by the
// simulator up front and are not represented here.
type packProbe struct {
	jobs    []JobSpec
	c       *cluster.Cluster
	packer  vectorpack.Packer
	mcb     vectorpack.MCB8 // buffered packing path (used when isMCB)
	isMCB   bool
	d       int
	its     []vectorpack.Item
	owner   []int // item index -> index into jobs
	backing []float64
	yields  []float64 // per-job yield of the current probe
	totals  []float64
	// rigidTotals caches the per-dimension demand sums for dimensions >= 1,
	// which are invariant across the probes of one instance (only the CPU
	// dimension changes with the yields). Accumulated in item order, exactly
	// as pack's per-probe loop would.
	rigidTotals []float64
	buf         vectorpack.PackBuffer
	repack      vectorpack.RepackState // warm-start state for the MCB path
	best        []int                  // assignment of the last feasible probe

	alloc     *Allocation // reused result object, rebuilt by allocation()
	nodesBack []int       // flat backing for the per-job node lists
	prevTasks []int       // task counts of the instance the items were built for
}

// Workspace carries the scratch buffers of the packing allocators across
// calls, so a scheduler invoking MaxMinYield or MinEstimatedStretch on
// every event reuses one set of allocations for the lifetime of a run. The
// zero value is ready; a workspace must not be used concurrently.
type Workspace struct {
	probe packProbe
	specs []JobSpec
}

// samePacker reports whether two packer values are interchangeable for
// warm-start purposes. Incomparable packer types (none exist in this
// repository) conservatively report false, which only costs a cache
// rebuild, never correctness.
func samePacker(a, b vectorpack.Packer) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	if va.Type() != vb.Type() || !va.Comparable() || !vb.Comparable() {
		return false
	}
	return a == b
}

// reset rebinds the probe to a new instance, reusing every buffer. When the
// new instance has the same shape as the previous one — same dimension
// count and, job for job, the same task count and rigid requirements — the
// item array and its backing are reused as-is: pack rewrites the CPU
// dimension on every probe anyway, so only the rigid dimensions (already
// equal) carry over. Successive repacks of a mostly-stable job set hit this
// path, which skips the write-barrier-heavy item rebuild.
func (p *packProbe) reset(jobs []JobSpec, c *cluster.Cluster, packer vectorpack.Packer) {
	d := c.D()
	same := d == p.d && len(jobs) == len(p.prevTasks) && len(p.backing) == len(jobs)*d
	if same {
	compare:
		for ji := range jobs {
			j := &jobs[ji]
			if p.prevTasks[ji] != j.Tasks || p.backing[ji*d+cluster.DimMem] != j.MemReq {
				same = false
				break
			}
			for k := 0; k < d-cluster.MinDims; k++ {
				want := 0.0
				if k < len(j.Extra) {
					want = j.Extra[k]
				}
				if p.backing[ji*d+cluster.MinDims+k] != want {
					same = false
					break compare
				}
			}
		}
	}
	if !samePacker(packer, p.packer) {
		// The warm-start replay is only valid for the packer configuration
		// that produced it (the sorted orders are packer-independent, but
		// the exact-repeat fast path replays a full prior assignment).
		p.repack.Invalidate()
	}
	p.jobs, p.c, p.packer, p.d = jobs, c, packer, d
	p.mcb, p.isMCB = vectorpack.MCB8{}, false
	if m, ok := packer.(vectorpack.MCB8); ok {
		p.mcb, p.isMCB = m, true
	}
	if same {
		return
	}
	nItems := 0
	for ji := range jobs {
		nItems += jobs[ji].Tasks
	}
	if cap(p.its) < nItems {
		p.its = make([]vectorpack.Item, nItems)
	}
	p.its = p.its[:nItems]
	if cap(p.owner) < nItems {
		p.owner = make([]int, nItems)
	}
	p.owner = p.owner[:nItems]
	if cap(p.backing) < len(jobs)*d {
		p.backing = make([]float64, len(jobs)*d)
	}
	p.backing = p.backing[:len(jobs)*d]
	if cap(p.yields) < len(jobs) {
		p.yields = make([]float64, len(jobs))
	}
	p.yields = p.yields[:len(jobs)]
	if cap(p.totals) < d {
		p.totals = make([]float64, d)
	}
	p.totals = p.totals[:d]
	if cap(p.prevTasks) < len(jobs) {
		p.prevTasks = make([]int, len(jobs))
	}
	p.prevTasks = p.prevTasks[:len(jobs)]
	idx := 0
	for ji := range jobs {
		j := &jobs[ji]
		p.prevTasks[ji] = j.Tasks
		req := cluster.Vec(p.backing[ji*d : (ji+1)*d : (ji+1)*d])
		req[cluster.DimCPU] = 0
		req[cluster.DimMem] = j.MemReq
		for k := cluster.MinDims; k < d; k++ {
			req[k] = 0
		}
		for k := 0; k < d-cluster.MinDims && k < len(j.Extra); k++ {
			req[cluster.MinDims+k] = j.Extra[k]
		}
		for k := 0; k < j.Tasks; k++ {
			// Items whose Req already aliases this job's backing row (a
			// stable prefix across resets) are left untouched: the Item
			// write carries a pointer and thus a write barrier, and those
			// barriers dominate the rebuild on large instances.
			if it := &p.its[idx]; len(it.Req) != d || &it.Req[0] != &req[0] {
				it.Req = req
			}
			p.owner[idx] = ji
			idx++
		}
	}
	p.refreshRigidTotals()
}

// refreshRigidTotals recomputes the cached demand sums of the rigid
// dimensions (>= 1) in item order — the same accumulation sequence as a
// per-probe loop over the flat backing, so pack's capacity bound sees
// bit-identical sums.
func (p *packProbe) refreshRigidTotals() {
	d := p.d
	if cap(p.rigidTotals) < d {
		p.rigidTotals = make([]float64, d)
	}
	p.rigidTotals = p.rigidTotals[:d]
	for k := 1; k < d; k++ {
		p.rigidTotals[k] = 0
	}
	if d == 2 {
		// Two-resource hot path: one rigid dimension, no inner loop.
		total := 0.0
		for ji := range p.jobs {
			v := p.backing[2*ji+1]
			for t := 0; t < p.jobs[ji].Tasks; t++ {
				total += v
			}
		}
		p.rigidTotals[1] = total
		return
	}
	for ji := range p.jobs {
		base := ji * d
		for t := 0; t < p.jobs[ji].Tasks; t++ {
			for k := 1; k < d; k++ {
				p.rigidTotals[k] += p.backing[base+k]
			}
		}
	}
}

// pack refreshes the CPU dimension from the current per-job yields, applies
// the capacity bound — the O(T) necessary condition for packability: the
// total requirement in every dimension cannot exceed the cluster's
// aggregate capacity in that dimension, pruning hopeless probes before the
// expensive packing — and runs the packer. On success the assignment is
// remembered as the probe's best.
func (p *packProbe) pack() bool {
	d := p.d
	// Only the CPU dimension changes between probes; the rigid-dimension
	// sums are cached by reset. The CPU sum runs in item order (tasks of a
	// job are consecutive), keeping the accumulation order of a per-item
	// loop.
	cpuTotal := 0.0
	for ji := range p.jobs {
		cpu := p.jobs[ji].CPUNeed * p.yields[ji]
		if cpu > 1 {
			cpu = 1
		}
		p.backing[ji*d+cluster.DimCPU] = cpu
		for t := 0; t < p.jobs[ji].Tasks; t++ {
			cpuTotal += cpu
		}
	}
	copy(p.totals[1:], p.rigidTotals[1:])
	p.totals[0] = cpuTotal
	for k := 0; k < d; k++ {
		if p.totals[k] > p.c.TotalCap(k)+floats.Eps {
			return false
		}
	}
	var assign []int
	var ok bool
	if p.isMCB {
		assign, ok = p.mcb.PackWarm(p.its, p.c.Nodes, &p.buf, &p.repack)
	} else {
		assign, ok = p.packer.Pack(p.its, p.c.Nodes)
	}
	if !ok {
		return false
	}
	p.best = append(p.best[:0], assign...)
	return true
}

// allocation converts the best assignment back to per-job node lists at the
// current per-job yields. The returned Allocation and its node lists are
// owned by the probe and overwritten by the next allocator call on the same
// workspace.
func (p *packProbe) allocation() *Allocation {
	if p.alloc == nil {
		p.alloc = NewAllocation()
	}
	alloc := p.alloc
	clear(alloc.NodesOf)
	clear(alloc.YieldOf)
	alloc.MinYield = 0
	if cap(p.nodesBack) < len(p.its) {
		p.nodesBack = make([]int, len(p.its))
	}
	off := 0
	for ji := range p.jobs {
		j := &p.jobs[ji]
		alloc.NodesOf[j.ID] = p.nodesBack[off : off : off+j.Tasks]
		off += j.Tasks
		y := p.yields[ji]
		alloc.YieldOf[j.ID] = y
		if alloc.MinYield == 0 || y < alloc.MinYield {
			alloc.MinYield = y
		}
	}
	for item, node := range p.best {
		id := p.jobs[p.owner[item]].ID
		alloc.NodesOf[id] = append(alloc.NodesOf[id], node)
	}
	if len(p.jobs) == 0 {
		alloc.MinYield = 0
	}
	return alloc
}

// MaxMinYield searches for the largest base yield Y such that all jobs fit
// on the cluster when every job receives yield min(1, weight*Y) — for the
// paper's unweighted workloads this is exactly the uniform-yield
// maximization of Section III-B; with per-job weights it implements the
// user-priority extension of Section VII. The binary search has absolute
// accuracy YieldAccuracy. On success it returns an allocation giving every
// job its weighted yield. It fails only when even Y -> 0 is infeasible,
// i.e. the jobs' memory requirements alone cannot be packed.
func MaxMinYield(jobs []JobSpec, c *cluster.Cluster, packer vectorpack.Packer) (*Allocation, bool) {
	var w Workspace
	return w.MaxMinYield(jobs, c, packer)
}

// MaxMinYield is the workspace-backed form of the package-level function;
// repeated calls reuse the workspace's buffers.
func (w *Workspace) MaxMinYield(jobs []JobSpec, c *cluster.Cluster, packer vectorpack.Packer) (*Allocation, bool) {
	if len(jobs) == 0 {
		return NewAllocation(), true
	}
	p := &w.probe
	p.reset(jobs, c, packer)
	feasible := func(y float64) bool {
		for ji := range jobs {
			w := y * jobs[ji].effectiveWeight()
			if w > 1 {
				w = 1
			}
			p.yields[ji] = w
		}
		return p.pack()
	}
	// Memory-only feasibility first: with Y = 0 CPU vanishes.
	if !feasible(0) {
		return nil, false
	}
	bestY := 0.0
	if feasible(1) {
		return p.allocation(), true
	}
	lo, hi := 0.0, 1.0
	for hi-lo > YieldAccuracy {
		mid := (lo + hi) / 2
		if feasible(mid) {
			lo, bestY = mid, mid
		} else {
			hi = mid
		}
	}
	// Degenerate overload: the optimum lies below the search accuracy.
	// Refine geometrically so the returned yield is positive whenever any
	// positive yield is feasible; a zero yield would let jobs hold memory
	// without ever progressing.
	for bestY == 0 && hi > 1e-9 {
		mid := hi / 2
		if feasible(mid) {
			bestY = mid
		} else {
			hi = mid
		}
	}
	// Restore the winning probe's yields (the last probe may have failed)
	// before converting its saved assignment.
	for ji := range jobs {
		w := bestY * jobs[ji].effectiveWeight()
		if w > 1 {
			w = 1
		}
		p.yields[ji] = w
	}
	return p.allocation(), true
}

// ImproveAverageYield implements the average-yield improvement heuristic of
// Section III-A: repeatedly select the job with the lowest total CPU need
// whose yield can still be increased and raise its yield as much as the CPU
// headroom of its nodes allows (never beyond 1.0). Yields are never
// decreased. The allocation is modified in place; headroom is measured
// against each hosting node's own CPU capacity.
//
// jobs must list every job of the allocation — node usage is computed from
// all of them. eligible, when non-nil, restricts which jobs may be raised
// (the fairness extension excludes long-running jobs); nil means all.
func ImproveAverageYield(jobs []JobSpec, alloc *Allocation, c *cluster.Cluster, eligible func(JobSpec) bool) {
	ImproveAverageYieldRanked(jobs, alloc, c, eligible, nil)
}

// ImproveAverageYieldRanked is ImproveAverageYield with an optional
// placement-objective tie-break: rank, when non-nil, holds one secondary
// key per job (parallel to jobs), and jobs with equal total CPU need are
// visited in descending rank order before the ID tie-break. The paper's
// primary ascending-total-need order is never altered; a nil rank is
// exactly the published ties-by-ID rule. The greedy and DYNMCB8 families
// derive rank from the run's objective via sched.ImproveRank (the cost
// objective ranks jobs by the cost of their hosting nodes, so leftover CPU
// drains priced capacity first).
func ImproveAverageYieldRanked(jobs []JobSpec, alloc *Allocation, c *cluster.Cluster, eligible func(JobSpec) bool, rank []float64) {
	var sc ImproveScratch
	sc.ImproveAverageYieldRanked(jobs, alloc, c, eligible, rank)
}

// nodeCnt is a (node, task count) pair of one job's placement.
type nodeCnt struct {
	node, cnt int
}

// ImproveScratch carries the buffers of the average-yield improvement
// heuristic across calls; the zero value is ready. The heuristic runs on
// every scheduling event of the greedy and DYNMCB8 families, so per-call
// allocation of its node bookkeeping is measurable at scale.
type ImproveScratch struct {
	used  []float64
	pairs []nodeCnt
	off   []int
	order []int
}

// ImproveAverageYieldRanked is the scratch-backed form of the package-level
// function.
func (sc *ImproveScratch) ImproveAverageYieldRanked(jobs []JobSpec, alloc *Allocation, c *cluster.Cluster, eligible func(JobSpec) bool, rank []float64) {
	if cap(sc.used) < c.N() {
		sc.used = make([]float64, c.N())
	}
	used := sc.used[:c.N()]
	for i := range used {
		used[i] = 0
	}
	// Per-job (node, task count) pairs, flattened into one slice with
	// offsets — the per-job map this used to be was the dominant allocation
	// of every scheduling event. Pair order is first-occurrence order;
	// every per-node quantity below is accumulated independently per node,
	// so the order does not affect the arithmetic.
	pairs := sc.pairs[:0]
	if cap(sc.off) < len(jobs)+1 {
		sc.off = make([]int, len(jobs)+1)
	}
	off := sc.off[:len(jobs)+1]
	off[0] = 0
	for ji := range jobs {
		j := &jobs[ji]
		start := len(pairs)
		for _, node := range alloc.NodesOf[j.ID] {
			found := false
			for k := start; k < len(pairs); k++ {
				if pairs[k].node == node {
					pairs[k].cnt++
					found = true
					break
				}
			}
			if !found {
				pairs = append(pairs, nodeCnt{node, 1})
			}
			used[node] += j.CPUNeed * alloc.YieldOf[j.ID]
		}
		off[ji+1] = len(pairs)
	}
	sc.pairs = pairs
	// Ascending total CPU need, ties by descending rank (when given), then
	// by ID for determinism. IDs are unique, so the comparator is a total
	// order and the unstable sort is deterministic.
	if cap(sc.order) < len(jobs) {
		sc.order = make([]int, len(jobs))
	}
	order := sc.order[:len(jobs)]
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		ta, tb := jobs[a].TotalCPUNeed(), jobs[b].TotalCPUNeed()
		if ta < tb {
			return -1
		}
		if ta > tb {
			return 1
		}
		if rank != nil {
			if rank[a] > rank[b] {
				return -1
			}
			if rank[b] > rank[a] {
				return 1
			}
		}
		return jobs[a].ID - jobs[b].ID
	})
	// active is the order with permanently-finished jobs compacted away:
	// ineligible jobs stay so, and a yield never decreases, so a job at 1.0
	// is done for good and need not be rescanned on every restart. Jobs
	// merely out of headroom stay active (an improvement elsewhere never
	// frees headroom, but the original scan retried them, so keep the same
	// visit sequence). Compaction preserves relative order, so each restart
	// still finds the same first improvable job as a scan of the full order.
	active := order
	for {
		improvedAny := false
		w := 0
		r := 0
		for ; r < len(active); r++ {
			ji := active[r]
			j := &jobs[ji]
			if eligible != nil && !eligible(*j) {
				continue
			}
			y := alloc.YieldOf[j.ID]
			if floats.GreaterEq(y, 1) {
				continue
			}
			active[w] = ji
			w++
			// Maximum extra yield limited by the tightest node.
			delta := math.Inf(1)
			for _, nc := range pairs[off[ji]:off[ji+1]] {
				head := c.CPUCap(nc.node) - used[nc.node]
				if head < 0 {
					head = 0
				}
				d := head / (j.CPUNeed * float64(nc.cnt))
				if d < delta {
					delta = d
				}
			}
			if delta > 1-y {
				delta = 1 - y
			}
			if !floats.Greater(delta, 0) {
				continue
			}
			alloc.YieldOf[j.ID] = y + delta
			for _, nc := range pairs[off[ji]:off[ji+1]] {
				used[nc.node] += j.CPUNeed * float64(nc.cnt) * delta
			}
			improvedAny = true
			// The paper re-selects the cheapest improvable job after
			// every increase; restart the scan.
			break
		}
		if !improvedAny {
			return
		}
		// Keep the unvisited tail after the improved job, then restart.
		if r+1 < len(active) {
			w += copy(active[w:], active[r+1:])
		}
		active = active[:w]
	}
}

// StretchState carries the history a stretch-driven allocation needs about
// one job: its flow time (time since submission) and accumulated virtual
// time at the current scheduling event.
type StretchState struct {
	JobSpec
	FlowTime    float64
	VirtualTime float64
}

// EstStretch returns the job's current estimated stretch, flow time divided
// by virtual time (infinite for jobs that have not progressed).
func (s StretchState) EstStretch() float64 {
	if s.VirtualTime <= 0 {
		return math.Inf(1)
	}
	return s.FlowTime / s.VirtualTime
}

// YieldForStretchTarget returns the yield a job must receive over the next
// period of length T for its estimated stretch at the next event to equal
// target: solving (flow+T)/(vt + y*T) = target for y. Results are clamped
// to [MinProgressYield, 1] as in the paper: negative solutions (the target
// is met even when paused) become the 0.01 floor, and solutions above 1 are
// capped since a job cannot use more than its need.
func YieldForStretchTarget(s StretchState, T, target float64) float64 {
	if T <= 0 || target <= 0 {
		return 1
	}
	y := ((s.FlowTime+T)/target - s.VirtualTime) / T
	if math.IsNaN(y) || y < MinProgressYield {
		return MinProgressYield
	}
	if y > 1 {
		return 1
	}
	return y
}

// MinEstimatedStretch finds the smallest achievable estimated maximum
// stretch at the next scheduling event (period T) by binary search over
// packing feasibility, mirroring MaxMinYield but for the stretch-driven
// variant (Section III-B, DYNMCB8-STRETCH-PER). It returns the per-job
// yields realizing the best found target. Feasibility is monotone: larger
// targets need smaller yields. The search stops at 1% relative accuracy.
// It fails only when the memory requirements alone cannot be packed.
func MinEstimatedStretch(jobs []StretchState, c *cluster.Cluster, packer vectorpack.Packer, T float64) (*Allocation, bool) {
	var w Workspace
	return w.MinEstimatedStretch(jobs, c, packer, T)
}

// MinEstimatedStretch is the workspace-backed form of the package-level
// function; repeated calls reuse the workspace's buffers.
func (w *Workspace) MinEstimatedStretch(jobs []StretchState, c *cluster.Cluster, packer vectorpack.Packer, T float64) (*Allocation, bool) {
	if len(jobs) == 0 {
		return NewAllocation(), true
	}
	if cap(w.specs) < len(jobs) {
		w.specs = make([]JobSpec, len(jobs))
	}
	specs := w.specs[:len(jobs)]
	for i := range jobs {
		specs[i] = jobs[i].JobSpec
	}
	p := &w.probe
	p.reset(specs, c, packer)
	try := func(target float64) bool {
		for i := range jobs {
			p.yields[i] = YieldForStretchTarget(jobs[i], T, target)
		}
		return p.pack()
	}
	// Even an infinite target leaves every job its 0.01 floor yield; if
	// that is infeasible the instance is memory-bound and the caller must
	// shed a job.
	const maxTarget = 1e12
	if !try(maxTarget) {
		return nil, false
	}
	bestTarget := maxTarget
	lo := 1.0
	if try(lo) {
		return p.allocation(), true
	}
	hi := 2.0
	for hi < maxTarget {
		if try(hi) {
			bestTarget = hi
			break
		}
		lo = hi
		hi *= 2
	}
	for (hi-lo)/lo > 0.01 {
		mid := (lo + hi) / 2
		if try(mid) {
			hi, bestTarget = mid, mid
		} else {
			lo = mid
		}
	}
	// Restore the winning probe's yields before converting its saved
	// assignment.
	for i := range jobs {
		p.yields[i] = YieldForStretchTarget(jobs[i], T, bestTarget)
	}
	return p.allocation(), true
}

// ImproveAverageStretch is the stretch-driven counterpart of
// ImproveAverageYield: leftover CPU is granted to jobs in ascending total
// CPU need, which raises their yields and therefore lowers their estimated
// stretch at the next event. The mechanics are identical; only the
// motivation differs, so it simply delegates.
func ImproveAverageStretch(jobs []StretchState, alloc *Allocation, c *cluster.Cluster) {
	specs := make([]JobSpec, len(jobs))
	for i, s := range jobs {
		specs[i] = s.JobSpec
	}
	ImproveAverageYield(specs, alloc, c, nil)
}

// ValidateAllocation checks an allocation against the hard constraints of
// Section II-B1, generalized to per-node capacity vectors: each node's
// allocated CPU and every rigid dimension (memory, GPU, ...) stay within
// its own capacity, yields lie within [0, 1], and every job owns exactly
// Tasks placements.
func ValidateAllocation(jobs []JobSpec, alloc *Allocation, c *cluster.Cluster) error {
	n := c.N()
	d := c.D()
	used := make([]float64, n*d)
	for _, j := range jobs {
		nodes, ok := alloc.NodesOf[j.ID]
		if !ok {
			return fmt.Errorf("core: job %d missing from allocation", j.ID)
		}
		if len(nodes) != j.Tasks {
			return fmt.Errorf("core: job %d has %d placements for %d tasks", j.ID, len(nodes), j.Tasks)
		}
		y := alloc.YieldOf[j.ID]
		if y < 0 || floats.Greater(y, 1) {
			return fmt.Errorf("core: job %d yield %g outside [0,1]", j.ID, y)
		}
		for _, node := range nodes {
			if node < 0 || node >= n {
				return fmt.Errorf("core: job %d placed on node %d of %d", j.ID, node, n)
			}
			used[node*d+cluster.DimCPU] += j.CPUNeed * y
			used[node*d+cluster.DimMem] += j.MemReq
			for k := 0; k < d-cluster.MinDims && k < len(j.Extra); k++ {
				used[node*d+cluster.MinDims+k] += j.Extra[k]
			}
		}
	}
	for node := 0; node < n; node++ {
		for k := 0; k < d; k++ {
			if floats.Greater(used[node*d+k], c.Cap(node, k)) {
				return fmt.Errorf("core: node %d %s usage %.6f > capacity %.6f",
					node, c.DimName(k), used[node*d+k], c.Cap(node, k))
			}
		}
	}
	return nil
}
