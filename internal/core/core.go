// Package core implements the paper's primary contribution: the DFRS
// (dynamic fractional resource scheduling) allocation machinery that every
// scheduler in this repository builds on.
//
// It provides:
//
//   - the yield model (Section II-B2): the yield of a job is the CPU
//     fraction allocated to each of its tasks divided by the task's CPU
//     need; all tasks of a job receive identical yields;
//   - minimum-yield maximization by binary search over vector-packing
//     feasibility (Section III-B);
//   - the average-yield improvement heuristic that hands out leftover CPU
//     to jobs in ascending order of total CPU need (Section III-A);
//   - the preemption priority function max(30, flowTime)/virtualTime^2
//     (Section III-A);
//   - the estimated-stretch solver used by DYNMCB8-STRETCH-PER
//     (Section III-B).
package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/floats"
	"repro/internal/vectorpack"
)

// StretchBound is the 30-second threshold shared by the bounded-stretch
// metric and the priority function (Sections II-B2 and III-A).
const StretchBound = 30.0

// YieldAccuracy is the absolute accuracy of the minimum-yield binary search
// (the paper uses 0.01).
const YieldAccuracy = 0.01

// MinProgressYield is the floor yield handed to jobs by the stretch-driven
// allocator so that no job holds memory without making progress.
const MinProgressYield = 0.01

// JobSpec is the scheduler-facing description of a job's resource shape.
// All tasks of a job are identical (Section II-B1).
type JobSpec struct {
	ID      int
	Tasks   int
	CPUNeed float64 // per-task CPU need, fraction of a node in (0, 1]
	MemReq  float64 // per-task memory requirement, fraction of a node in (0, 1]
	// Extra holds per-task rigid demands for resource dimensions beyond
	// CPU and memory (Extra[0] is dimension 2, e.g. GPU), as fractions of
	// the reference node. Nil means no demand beyond the paper's pair.
	Extra []float64
	// Weight scales the job's yield under contention (user-priority
	// extension, paper Section VII); 0 means the default weight 1.
	Weight float64
}

// effectiveWeight returns the weight, defaulting to 1.
func (j JobSpec) effectiveWeight() float64 {
	if j.Weight <= 0 {
		return 1
	}
	return j.Weight
}

// TotalCPUNeed returns the job's CPU need summed over its tasks, the
// quantity the average-yield heuristic sorts by.
func (j JobSpec) TotalCPUNeed() float64 { return float64(j.Tasks) * j.CPUNeed }

// Allocation maps every job to the nodes hosting its tasks and the common
// yield of those tasks.
type Allocation struct {
	// NodesOf[jobID][k] is the node hosting task k. A node may host
	// several tasks of the same job.
	NodesOf map[int][]int
	// YieldOf[jobID] is the job's yield in [0, 1].
	YieldOf map[int]float64
	// MinYield is the smallest yield across jobs (0 for an empty
	// allocation).
	MinYield float64
}

// NewAllocation returns an empty allocation.
func NewAllocation() *Allocation {
	return &Allocation{NodesOf: map[int][]int{}, YieldOf: map[int]float64{}}
}

// Priority returns the preemption priority of a job: max(30, flowTime)
// divided by the square of its virtual time. Jobs with zero virtual time
// have infinite priority (they have never run and must not be paused or
// passed over for resumption). Higher priority means "keep running /
// resume first"; jobs are paused in increasing priority order.
func Priority(flowTime, virtualTime float64) float64 {
	if virtualTime <= 0 {
		return math.Inf(1)
	}
	return math.Max(StretchBound, flowTime) / (virtualTime * virtualTime)
}

// PriorityLinear is the ablation variant without the square (paper
// Section III-A notes it performs markedly worse).
func PriorityLinear(flowTime, virtualTime float64) float64 {
	if virtualTime <= 0 {
		return math.Inf(1)
	}
	return math.Max(StretchBound, flowTime) / virtualTime
}

// items builds the d-dimensional vector-packing instance for the given
// per-job yields: one item per task with CPU requirement need*yield
// (dimension 0) and the fixed rigid demands (memory in dimension 1, Extra
// beyond). All tasks of one job share a single requirement vector, so a
// probe allocates O(jobs) vectors, not O(tasks). Job demands beyond the
// cluster's dimensions are rejected by the simulator up front and are not
// represented here.
func items(jobs []JobSpec, d int, yieldOf func(JobSpec) float64) ([]vectorpack.Item, []int) {
	total := 0
	for _, j := range jobs {
		total += j.Tasks
	}
	its := make([]vectorpack.Item, 0, total)
	owner := make([]int, 0, total) // item index -> index into jobs
	backing := make([]float64, len(jobs)*d)
	for ji, j := range jobs {
		cpu := j.CPUNeed * yieldOf(j)
		if cpu > 1 {
			cpu = 1
		}
		req := cluster.Vec(backing[ji*d : (ji+1)*d : (ji+1)*d])
		req[cluster.DimCPU] = cpu
		req[cluster.DimMem] = j.MemReq
		for k := 0; k < d-cluster.MinDims && k < len(j.Extra); k++ {
			req[cluster.MinDims+k] = j.Extra[k]
		}
		for k := 0; k < j.Tasks; k++ {
			its = append(its, vectorpack.Item{Req: req})
			owner = append(owner, ji)
		}
	}
	return its, owner
}

// capacityBound is the O(T) necessary condition for packability: the total
// requirement in every dimension cannot exceed the cluster's aggregate
// capacity in that dimension. It prunes hopeless binary-search probes
// before the expensive packing.
func capacityBound(its []vectorpack.Item, c *cluster.Cluster) bool {
	d := c.D()
	totals := make([]float64, d)
	for _, it := range its {
		for k := 0; k < d; k++ {
			totals[k] += it.Req[k]
		}
	}
	for k := 0; k < d; k++ {
		if totals[k] > c.TotalCap(k)+floats.Eps {
			return false
		}
	}
	return true
}

// buildAllocation converts a packing assignment back to per-job node lists.
func buildAllocation(jobs []JobSpec, owner, assign []int, yieldOf func(JobSpec) float64) *Allocation {
	alloc := NewAllocation()
	for ji, j := range jobs {
		alloc.NodesOf[j.ID] = make([]int, 0, j.Tasks)
		y := yieldOf(jobs[ji])
		alloc.YieldOf[j.ID] = y
		if alloc.MinYield == 0 || y < alloc.MinYield {
			alloc.MinYield = y
		}
	}
	for item, node := range assign {
		j := jobs[owner[item]]
		alloc.NodesOf[j.ID] = append(alloc.NodesOf[j.ID], node)
	}
	if len(jobs) == 0 {
		alloc.MinYield = 0
	}
	return alloc
}

// MaxMinYield searches for the largest base yield Y such that all jobs fit
// on the cluster when every job receives yield min(1, weight*Y) — for the
// paper's unweighted workloads this is exactly the uniform-yield
// maximization of Section III-B; with per-job weights it implements the
// user-priority extension of Section VII. The binary search has absolute
// accuracy YieldAccuracy. On success it returns an allocation giving every
// job its weighted yield. It fails only when even Y -> 0 is infeasible,
// i.e. the jobs' memory requirements alone cannot be packed.
func MaxMinYield(jobs []JobSpec, c *cluster.Cluster, packer vectorpack.Packer) (*Allocation, bool) {
	if len(jobs) == 0 {
		return NewAllocation(), true
	}
	yieldAt := func(y float64) func(JobSpec) float64 {
		return func(j JobSpec) float64 {
			w := y * j.effectiveWeight()
			if w > 1 {
				return 1
			}
			return w
		}
	}
	d := c.D()
	feasible := func(y float64) ([]int, []int, bool) {
		its, owner := items(jobs, d, yieldAt(y))
		if !capacityBound(its, c) {
			return nil, nil, false
		}
		assign, ok := packer.Pack(its, c.Nodes)
		return assign, owner, ok
	}
	// Memory-only feasibility first: with Y = 0 CPU vanishes.
	bestAssign, bestOwner, ok := feasible(0)
	if !ok {
		return nil, false
	}
	bestY := 0.0
	if assign, owner, ok := feasible(1); ok {
		return buildAllocation(jobs, owner, assign, yieldAt(1)), true
	}
	lo, hi := 0.0, 1.0
	for hi-lo > YieldAccuracy {
		mid := (lo + hi) / 2
		if assign, owner, ok := feasible(mid); ok {
			lo, bestY = mid, mid
			bestAssign, bestOwner = assign, owner
		} else {
			hi = mid
		}
	}
	// Degenerate overload: the optimum lies below the search accuracy.
	// Refine geometrically so the returned yield is positive whenever any
	// positive yield is feasible; a zero yield would let jobs hold memory
	// without ever progressing.
	for bestY == 0 && hi > 1e-9 {
		mid := hi / 2
		if assign, owner, ok := feasible(mid); ok {
			bestY = mid
			bestAssign, bestOwner = assign, owner
		} else {
			hi = mid
		}
	}
	return buildAllocation(jobs, bestOwner, bestAssign, yieldAt(bestY)), true
}

// ImproveAverageYield implements the average-yield improvement heuristic of
// Section III-A: repeatedly select the job with the lowest total CPU need
// whose yield can still be increased and raise its yield as much as the CPU
// headroom of its nodes allows (never beyond 1.0). Yields are never
// decreased. The allocation is modified in place; headroom is measured
// against each hosting node's own CPU capacity.
//
// jobs must list every job of the allocation — node usage is computed from
// all of them. eligible, when non-nil, restricts which jobs may be raised
// (the fairness extension excludes long-running jobs); nil means all.
func ImproveAverageYield(jobs []JobSpec, alloc *Allocation, c *cluster.Cluster, eligible func(JobSpec) bool) {
	ImproveAverageYieldRanked(jobs, alloc, c, eligible, nil)
}

// ImproveAverageYieldRanked is ImproveAverageYield with an optional
// placement-objective tie-break: rank, when non-nil, holds one secondary
// key per job (parallel to jobs), and jobs with equal total CPU need are
// visited in descending rank order before the ID tie-break. The paper's
// primary ascending-total-need order is never altered; a nil rank is
// exactly the published ties-by-ID rule. The greedy and DYNMCB8 families
// derive rank from the run's objective via sched.ImproveRank (the cost
// objective ranks jobs by the cost of their hosting nodes, so leftover CPU
// drains priced capacity first).
func ImproveAverageYieldRanked(jobs []JobSpec, alloc *Allocation, c *cluster.Cluster, eligible func(JobSpec) bool, rank []float64) {
	used := make([]float64, c.N())
	// tasksOn[jobIdx][node] = number of that job's tasks on node.
	tasksOn := make([]map[int]int, len(jobs))
	for ji, j := range jobs {
		tasksOn[ji] = map[int]int{}
		for _, node := range alloc.NodesOf[j.ID] {
			tasksOn[ji][node]++
			used[node] += j.CPUNeed * alloc.YieldOf[j.ID]
		}
	}
	// Ascending total CPU need, ties by descending rank (when given), then
	// by ID for determinism.
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ta, tb := jobs[order[a]].TotalCPUNeed(), jobs[order[b]].TotalCPUNeed()
		if ta != tb {
			return ta < tb
		}
		if rank != nil && rank[order[a]] != rank[order[b]] {
			return rank[order[a]] > rank[order[b]]
		}
		return jobs[order[a]].ID < jobs[order[b]].ID
	})
	for {
		improvedAny := false
		for _, ji := range order {
			j := jobs[ji]
			if eligible != nil && !eligible(j) {
				continue
			}
			y := alloc.YieldOf[j.ID]
			if floats.GreaterEq(y, 1) {
				continue
			}
			// Maximum extra yield limited by the tightest node.
			delta := math.Inf(1)
			for node, cnt := range tasksOn[ji] {
				head := c.CPUCap(node) - used[node]
				if head < 0 {
					head = 0
				}
				d := head / (j.CPUNeed * float64(cnt))
				if d < delta {
					delta = d
				}
			}
			if delta > 1-y {
				delta = 1 - y
			}
			if !floats.Greater(delta, 0) {
				continue
			}
			alloc.YieldOf[j.ID] = y + delta
			for node, cnt := range tasksOn[ji] {
				used[node] += j.CPUNeed * float64(cnt) * delta
			}
			improvedAny = true
			// The paper re-selects the cheapest improvable job after
			// every increase; restart the scan.
			break
		}
		if !improvedAny {
			return
		}
	}
}

// StretchState carries the history a stretch-driven allocation needs about
// one job: its flow time (time since submission) and accumulated virtual
// time at the current scheduling event.
type StretchState struct {
	JobSpec
	FlowTime    float64
	VirtualTime float64
}

// EstStretch returns the job's current estimated stretch, flow time divided
// by virtual time (infinite for jobs that have not progressed).
func (s StretchState) EstStretch() float64 {
	if s.VirtualTime <= 0 {
		return math.Inf(1)
	}
	return s.FlowTime / s.VirtualTime
}

// YieldForStretchTarget returns the yield a job must receive over the next
// period of length T for its estimated stretch at the next event to equal
// target: solving (flow+T)/(vt + y*T) = target for y. Results are clamped
// to [MinProgressYield, 1] as in the paper: negative solutions (the target
// is met even when paused) become the 0.01 floor, and solutions above 1 are
// capped since a job cannot use more than its need.
func YieldForStretchTarget(s StretchState, T, target float64) float64 {
	if T <= 0 || target <= 0 {
		return 1
	}
	y := ((s.FlowTime+T)/target - s.VirtualTime) / T
	if math.IsNaN(y) || y < MinProgressYield {
		return MinProgressYield
	}
	if y > 1 {
		return 1
	}
	return y
}

// MinEstimatedStretch finds the smallest achievable estimated maximum
// stretch at the next scheduling event (period T) by binary search over
// packing feasibility, mirroring MaxMinYield but for the stretch-driven
// variant (Section III-B, DYNMCB8-STRETCH-PER). It returns the per-job
// yields realizing the best found target. Feasibility is monotone: larger
// targets need smaller yields. The search stops at 1% relative accuracy.
// It fails only when the memory requirements alone cannot be packed.
func MinEstimatedStretch(jobs []StretchState, c *cluster.Cluster, packer vectorpack.Packer, T float64) (*Allocation, bool) {
	if len(jobs) == 0 {
		return NewAllocation(), true
	}
	specs := make([]JobSpec, len(jobs))
	for i, s := range jobs {
		specs[i] = s.JobSpec
	}
	yieldAt := func(target float64) func(JobSpec) float64 {
		byID := make(map[int]float64, len(jobs))
		for _, s := range jobs {
			byID[s.ID] = YieldForStretchTarget(s, T, target)
		}
		return func(j JobSpec) float64 { return byID[j.ID] }
	}
	d := c.D()
	try := func(target float64) ([]int, []int, bool) {
		its, owner := items(specs, d, yieldAt(target))
		if !capacityBound(its, c) {
			return nil, nil, false
		}
		assign, ok := packer.Pack(its, c.Nodes)
		return assign, owner, ok
	}
	// Even an infinite target leaves every job its 0.01 floor yield; if
	// that is infeasible the instance is memory-bound and the caller must
	// shed a job.
	const maxTarget = 1e12
	bestAssign, bestOwner, ok := try(maxTarget)
	if !ok {
		return nil, false
	}
	bestTarget := maxTarget
	lo := 1.0
	if assign, owner, ok := try(lo); ok {
		return buildAllocation(specs, owner, assign, yieldAt(lo)), true
	}
	hi := 2.0
	for hi < maxTarget {
		if assign, owner, ok := try(hi); ok {
			bestTarget = hi
			bestAssign, bestOwner = assign, owner
			break
		}
		lo = hi
		hi *= 2
	}
	for (hi-lo)/lo > 0.01 {
		mid := (lo + hi) / 2
		if assign, owner, ok := try(mid); ok {
			hi, bestTarget = mid, mid
			bestAssign, bestOwner = assign, owner
		} else {
			lo = mid
		}
	}
	return buildAllocation(specs, bestOwner, bestAssign, yieldAt(bestTarget)), true
}

// ImproveAverageStretch is the stretch-driven counterpart of
// ImproveAverageYield: leftover CPU is granted to jobs in ascending total
// CPU need, which raises their yields and therefore lowers their estimated
// stretch at the next event. The mechanics are identical; only the
// motivation differs, so it simply delegates.
func ImproveAverageStretch(jobs []StretchState, alloc *Allocation, c *cluster.Cluster) {
	specs := make([]JobSpec, len(jobs))
	for i, s := range jobs {
		specs[i] = s.JobSpec
	}
	ImproveAverageYield(specs, alloc, c, nil)
}

// ValidateAllocation checks an allocation against the hard constraints of
// Section II-B1, generalized to per-node capacity vectors: each node's
// allocated CPU and every rigid dimension (memory, GPU, ...) stay within
// its own capacity, yields lie within [0, 1], and every job owns exactly
// Tasks placements.
func ValidateAllocation(jobs []JobSpec, alloc *Allocation, c *cluster.Cluster) error {
	n := c.N()
	d := c.D()
	used := make([]float64, n*d)
	for _, j := range jobs {
		nodes, ok := alloc.NodesOf[j.ID]
		if !ok {
			return fmt.Errorf("core: job %d missing from allocation", j.ID)
		}
		if len(nodes) != j.Tasks {
			return fmt.Errorf("core: job %d has %d placements for %d tasks", j.ID, len(nodes), j.Tasks)
		}
		y := alloc.YieldOf[j.ID]
		if y < 0 || floats.Greater(y, 1) {
			return fmt.Errorf("core: job %d yield %g outside [0,1]", j.ID, y)
		}
		for _, node := range nodes {
			if node < 0 || node >= n {
				return fmt.Errorf("core: job %d placed on node %d of %d", j.ID, node, n)
			}
			used[node*d+cluster.DimCPU] += j.CPUNeed * y
			used[node*d+cluster.DimMem] += j.MemReq
			for k := 0; k < d-cluster.MinDims && k < len(j.Extra); k++ {
				used[node*d+cluster.MinDims+k] += j.Extra[k]
			}
		}
	}
	for node := 0; node < n; node++ {
		for k := 0; k < d; k++ {
			if floats.Greater(used[node*d+k], c.Cap(node, k)) {
				return fmt.Errorf("core: node %d %s usage %.6f > capacity %.6f",
					node, c.DimName(k), used[node*d+k], c.Cap(node, k))
			}
		}
	}
	return nil
}
