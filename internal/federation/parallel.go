package federation

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/sim"
)

// This file is the parallel federation loop: a conservative-lookahead
// (Chandy–Misra style) executor that advances all members concurrently
// between dispatch points. Members only interact at arrival instants, so
// every member event strictly before the next arrival is independent of
// the routing decision; the loop runs those events on a worker pool, then
// barriers so the dispatcher samples member state at the arrival instant.
// The per-member event sequence is identical to the serial loop's, which
// is what makes parallel results byte-identical (pinned by test).

const (
	// stepChunk bounds how many events a worker processes between
	// cancellation checks.
	stepChunk = 1024
	// dispatchBatch bounds how many arrivals a stateless dispatcher
	// routes ahead of the members between barriers — enough to amortize
	// the barrier, small enough to keep a streamed feed's read-ahead
	// memory bounded.
	dispatchBatch = 512
)

// errCancelled is the sentinel a worker returns when it observes context
// cancellation mid-round; the main loop converts it to the federation's
// standard cancellation error.
var errCancelled = errors.New("federation: cancelled")

// lockedObserver serializes one member observer behind the lock shared by
// every member's callbacks, so parallel rounds never run user callbacks
// concurrently. Per-member callback order is unchanged; interleaving
// across members is not deterministic.
type lockedObserver struct {
	mu *sync.Mutex
	o  sim.Observer
}

func (l *lockedObserver) JobSubmitted(now float64, jid int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.o.JobSubmitted(now, jid)
}

func (l *lockedObserver) JobStarted(now float64, jid int, nodes []int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.o.JobStarted(now, jid, nodes)
}

func (l *lockedObserver) JobPreempted(now float64, jid int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.o.JobPreempted(now, jid)
}

func (l *lockedObserver) JobMigrated(now float64, jid int, nodes []int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.o.JobMigrated(now, jid, nodes)
}

func (l *lockedObserver) JobCompleted(now float64, jid int, turnaround float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.o.JobCompleted(now, jid, turnaround)
}

func (l *lockedObserver) SchedulerInvoked(now float64, hook string, jobsInSystem int, elapsed time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.o.SchedulerInvoked(now, hook, jobsInSystem, elapsed)
}

// parTask asks a worker to advance one member: to the lookahead horizon
// (events strictly before it), or through its remaining jobs when the
// feed is exhausted (drain).
type parTask struct {
	member  int
	horizon float64
	drain   bool
}

func (f *Federation) runParallel(ctx context.Context, workers int) (*Result, error) {
	done := ctx.Done()
	tasks := make(chan parTask)
	var wg sync.WaitGroup
	errs := make([]error, len(f.members))
	var poolWG sync.WaitGroup
	poolWG.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer poolWG.Done()
			for t := range tasks {
				errs[t.member] = f.advanceMember(t.member, t.horizon, t.drain, done)
				wg.Done()
			}
		}()
	}
	defer func() {
		close(tasks)
		poolWG.Wait()
	}()

	// round advances every eligible member concurrently and barriers.
	// A member is eligible when it has an event strictly before the
	// horizon (or any unfinished job, in a drain round); no other member
	// can arm such an event for it, so eligibility sampled at the barrier
	// is exact. Errors surface lowest-member-first, matching the serial
	// loop's index-order deadlock probe.
	elig := make([]int, 0, len(f.members))
	round := func(horizon float64, drain bool) error {
		elig = elig[:0]
		for i, m := range f.members {
			if drain {
				if m.sim.HasPendingJobs() {
					elig = append(elig, i)
				}
			} else if t, ok := m.sim.PeekNextEventTime(); ok && t < horizon {
				elig = append(elig, i)
			}
		}
		switch len(elig) {
		case 0:
			return nil
		case 1:
			// A single busy member needs no barrier: advance it inline.
			i := elig[0]
			errs[i] = f.advanceMember(i, horizon, drain, done)
		default:
			wg.Add(len(elig))
			for _, i := range elig {
				tasks <- parTask{member: i, horizon: horizon, drain: drain}
			}
			wg.Wait()
		}
		for _, i := range elig {
			if err := errs[i]; err != nil {
				if errors.Is(err, errCancelled) {
					return f.cancelErr(ctx)
				}
				return fmt.Errorf("federation: member %s: %w", f.members[i].spec.Name, err)
			}
		}
		return nil
	}

	// Stateless dispatchers route independently of dynamic member state,
	// so whole arrival batches can be dispatched ahead of the members,
	// stretching the lookahead horizon across many arrivals; stateful
	// policies sample live views and barrier on every arrival.
	batch := 1
	if s, ok := f.disp.(StatelessDispatcher); ok && s.Stateless() {
		batch = dispatchBatch
	}
	advancedTo := math.Inf(-1)
	for {
		if done != nil {
			select {
			case <-done:
				return nil, f.cancelErr(ctx)
			default:
			}
		}
		if err := f.peek(); err != nil {
			return nil, err
		}
		if f.next == nil {
			// Feed exhausted: members no longer interact at all, so each
			// drains its remaining jobs independently. Trailing timer
			// events after a member's last completion stay unprocessed
			// and a member with jobs but no events reports its own
			// deadlock — both exactly as in the serial loop.
			if err := round(0, true); err != nil {
				return nil, err
			}
			return f.finalize()
		}
		// Advance everyone through the lookahead window: member events
		// strictly before the next arrival run now, ties defer to the
		// arrival (arrivals outrank coincident member events, as in the
		// serial loop and inside each simulator).
		if T := f.next.Submit; T > advancedTo {
			if err := round(T, false); err != nil {
				return nil, err
			}
			advancedTo = T
		}
		for n := 0; n < batch && f.next != nil; n++ {
			j := *f.next
			f.next = nil
			if _, err := f.dispatch(j); err != nil {
				return nil, err
			}
			if err := f.peek(); err != nil {
				return nil, err
			}
		}
	}
}

// advanceMember runs one member's share of a round. Horizon rounds
// process events strictly before the horizon; drain rounds process events
// while the member has unfinished jobs. Both check for cancellation every
// stepChunk events.
func (f *Federation) advanceMember(i int, horizon float64, drain bool, done <-chan struct{}) error {
	m := f.members[i]
	for {
		if done != nil {
			select {
			case <-done:
				return errCancelled
			default:
			}
		}
		if drain {
			for n := 0; n < stepChunk; n++ {
				if !m.sim.HasPendingJobs() {
					return nil
				}
				if err := m.sim.ProcessNextEvent(); err != nil {
					return err
				}
			}
			continue
		}
		n, err := m.sim.StepUntil(horizon, stepChunk)
		if err != nil {
			return err
		}
		if n < stepChunk {
			return nil
		}
	}
}
