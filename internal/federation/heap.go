package federation

// eventHeap is a positional binary min-heap over member next-event times,
// ordered by (time, member index) so ties resolve to the lowest member —
// the same winner as a linear sweep with a strict less-than comparison.
// Each member has at most one entry; pos tracks where it sits (-1 when
// absent) so a member can be re-keyed or removed in O(log N).
type eventHeap struct {
	time []float64
	mem  []int
	pos  []int
}

func newEventHeap(n int) *eventHeap {
	h := &eventHeap{pos: make([]int, n)}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Min returns the earliest (member, time) entry without removing it.
func (h *eventHeap) Min() (member int, t float64, ok bool) {
	if len(h.mem) == 0 {
		return -1, 0, false
	}
	return h.mem[0], h.time[0], true
}

// Set inserts member m at time t, or moves its existing entry there.
func (h *eventHeap) Set(m int, t float64) {
	if i := h.pos[m]; i >= 0 {
		old := h.time[i]
		h.time[i] = t
		if t < old {
			h.up(i)
		} else {
			h.down(i)
		}
		return
	}
	h.time = append(h.time, t)
	h.mem = append(h.mem, m)
	h.pos[m] = len(h.mem) - 1
	h.up(len(h.mem) - 1)
}

// Remove drops member m's entry if present.
func (h *eventHeap) Remove(m int) {
	i := h.pos[m]
	if i < 0 {
		return
	}
	last := len(h.mem) - 1
	h.swap(i, last)
	h.pos[m] = -1
	h.time = h.time[:last]
	h.mem = h.mem[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
}

func (h *eventHeap) less(i, j int) bool {
	return h.time[i] < h.time[j] || (h.time[i] == h.time[j] && h.mem[i] < h.mem[j])
}

func (h *eventHeap) swap(i, j int) {
	h.time[i], h.time[j] = h.time[j], h.time[i]
	h.mem[i], h.mem[j] = h.mem[j], h.mem[i]
	h.pos[h.mem[i]] = i
	h.pos[h.mem[j]] = j
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			return
		}
		h.swap(i, p)
		i = p
	}
}

func (h *eventHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(h.mem) && h.less(l, s) {
			s = l
		}
		if r < len(h.mem) && h.less(r, s) {
			s = r
		}
		if s == i {
			return
		}
		h.swap(i, s)
		i = s
	}
}
