// Package federation promotes the single-cluster DFRS simulator to an
// N-cluster orchestrator advancing under one shared clock, with a
// pluggable dispatch layer routing arriving jobs across the members.
//
// A Federation owns N independent sim.Simulator instances — each with its
// own node mix, scheduler family and placement objective — and drives them
// event-by-event in global timestamp order through the simulator's step
// API (Start / PeekNextEventTime / ProcessNextEvent / Finalize). Job
// admission is lifted out of per-simulator trace or Source ownership into
// a federation-level arrival feed: one workload.JobSource supplies the
// global arrival stream, and at each arrival instant a Dispatcher
// inspects a live ClusterView per member (queue depth, free capacity,
// mean node cost) and picks the member the job enters, which then admits
// it through the exact streaming-mode admission path.
//
// The orchestrator only decides which member advances next — it never
// reaches into member state — so single-cluster behavior is locked by
// construction: a 1-member federation processes the identical event
// sequence as a plain run of the same trace, and its member Result is
// byte-identical to dfrs.Run's (pinned by test). Per-member Results merge
// into a federated Result with both per-cluster and aggregate metrics.
//
// Three dispatch policies ship behind a registry mirroring the scheduler
// and placement layers: roundrobin (cycle the feasible members),
// queuedepth (join the shortest queue) and costaware (cheapest member
// with free capacity, falling back to the cheapest feasible — cloud
// bursting over priced inventories, reusing cluster.NodeSpec.Cost).
//
// # Parallel execution
//
// Members only interact at dispatch instants, which makes the federation
// a conservative parallel-discrete-event simulation with the next arrival
// as the lookahead horizon: every member event strictly before the next
// arrival is independent of the routing decision, so Spec.Workers > 1
// runs a worker pool that advances all members concurrently up to that
// horizon (ties defer to the arrival, exactly as in the serial loop),
// then barriers so the Dispatcher samples every ClusterView at the
// arrival instant before routing. Dispatchers that implement the
// StatelessDispatcher capability — routing independent of dynamic member
// state, like roundrobin — let the loop dispatch whole arrival batches
// ahead of the members, extending the horizon across many arrivals;
// queuedepth and costaware read live views and keep per-arrival
// barriers. Either way the parallel run processes the identical
// per-member event sequence as the serial one, so results — merged and
// per-cluster, streamed and materialized — are byte-identical under
// every dispatcher (pinned by test). Observer and JobSink callbacks are
// serialized behind one shared lock in parallel mode; per-member
// ordering is preserved, but interleaving across members is not
// deterministic.
package federation

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// MemberSpec declares one member cluster of a federation.
type MemberSpec struct {
	// Name identifies the member in results and errors; empty derives
	// "c<i>" or "c<i>-<mix>" from the position and mix.
	Name string
	// Mix is the node-mix profile name (internal/cluster); empty is the
	// uniform (homogeneous) profile.
	Mix string
	// Nodes is the member's node count; must be positive.
	Nodes int
	// Algorithm overrides the federation-level default scheduler for
	// this member when non-empty.
	Algorithm string
	// Objective overrides the federation-level default placement
	// objective for this member when non-empty ("" keeps the paper's
	// per-family rules unless the federation sets one).
	Objective string
}

// Spec configures a Federation.
type Spec struct {
	// TraceName labels results; NodeMemGB and Dims describe the global
	// workload (Dims < cluster.MinDims is raised to it; member clusters
	// are extended with unit capacity to cover Dims, exactly as a single
	// run extends its cluster to the trace's dimensionality).
	TraceName string
	NodeMemGB float64
	Dims      int
	// Members are the clusters; at least one is required.
	Members []MemberSpec
	// Dispatcher names the routing policy; empty means
	// DefaultDispatcher.
	Dispatcher string
	// Algorithm is the default scheduler family for members that do not
	// set their own.
	Algorithm string
	// Objective is the default placement objective for members that do
	// not set their own; empty keeps per-family defaults.
	Objective string
	// Penalty is the rescheduling penalty in seconds, applied in every
	// member.
	Penalty float64
	// MaxSimTime aborts members whose clock passes this value (0
	// disables).
	MaxSimTime float64
	// CheckInvariants enables full per-event state validation in every
	// member (tests only; expensive).
	CheckInvariants bool
	// RecordSchedTimes samples scheduler wall-clock time per invocation
	// in every member; the merged Result concatenates member samples in
	// member order.
	RecordSchedTimes bool
	// Workers selects the execution mode: values above 1 advance members
	// concurrently on that many goroutines between dispatch points (see
	// the package doc's Parallel execution section), capped at the member
	// count; 0 or 1 runs the serial loop. Results are byte-identical
	// either way.
	Workers int
	// Observer, when non-nil, returns the per-member observer wired into
	// member i's simulator (nil return = no observer for that member).
	// Job ids in observer callbacks are member-local. In parallel mode
	// all member observers share one lock, so callbacks never run
	// concurrently.
	Observer func(member int) sim.Observer
	// JobSink, when non-nil, receives every completed job as
	// (member index, result) and per-member Result.Jobs stay empty —
	// the bounded-memory path, mirroring sim.Config.JobSink.
	JobSink func(member int, jr sim.JobResult)
}

// ClusterResult is one member's share of a federated run.
type ClusterResult struct {
	// Name and Nodes echo the member spec; Algorithm is the resolved
	// scheduler family.
	Name      string
	Algorithm string
	Nodes     int
	// Dispatched counts the jobs routed to this member.
	Dispatched int
	// Result is the member simulator's own full result.
	Result *sim.Result
	// Summary and Costs are the member's post-hoc metrics.
	Summary metrics.InstanceSummary
	Costs   metrics.CostSummary
}

// Result is the outcome of a federated run: every member's own result
// plus the merged whole-federation view.
type Result struct {
	// Dispatcher is the routing policy that ran.
	Dispatcher string
	// Clusters holds one entry per member, in member order.
	Clusters []ClusterResult
	// Merged aggregates the members into one sim.Result — jobs
	// concatenated and sorted by workload id, makespan the maximum,
	// capacities, delivered work, cost and operation counts summed —
	// labeled "federated-<dispatcher>" so it flows through
	// internal/metrics like any single-cluster result.
	Merged *sim.Result
	// Summary summarizes Merged.
	Summary metrics.InstanceSummary
	// Costs summarizes Merged's cost and bandwidth quantities.
	Costs metrics.CostSummary
}

// member is one cluster's runtime: its simulator plus the static facts
// the dispatcher's views are built from.
type member struct {
	spec       MemberSpec
	algorithm  string
	cl         *cluster.Cluster
	sim        *sim.Simulator
	meanCost   float64
	priced     bool
	dispatched int
}

// closedSource is the always-exhausted JobSource members are configured
// with: it switches them into streaming mode (lazy admission, recycled
// runtime records) while the federation feeds every job through
// InjectJob.
type closedSource struct{}

func (closedSource) Next() (workload.Job, bool, error) { return workload.Job{}, false, nil }

// Federation drives N member simulators under one shared clock, routing
// the global arrival feed across them. Construct with New, run with Run.
type Federation struct {
	spec    Spec
	disp    Dispatcher
	members []*member
	src     workload.JobSource
	next    *workload.Job
	nextBuf workload.Job
	srcDone bool
	views   []ClusterView
}

// New builds a federation: the dispatcher and every member's scheduler,
// objective and cluster are resolved eagerly so configuration errors
// surface before any event runs. src is the global arrival feed — jobs in
// nondecreasing submission order, consumed lazily.
func New(spec Spec, src workload.JobSource) (*Federation, error) {
	if len(spec.Members) == 0 {
		return nil, fmt.Errorf("federation: no member clusters")
	}
	if src == nil {
		return nil, fmt.Errorf("federation: nil job source")
	}
	if spec.Penalty < 0 {
		return nil, fmt.Errorf("federation: negative penalty %g", spec.Penalty)
	}
	disp, err := ByName(spec.Dispatcher)
	if err != nil {
		return nil, err
	}
	dims := spec.Dims
	if dims < cluster.MinDims {
		dims = cluster.MinDims
	}
	f := &Federation{
		spec:    spec,
		disp:    disp,
		src:     src,
		members: make([]*member, len(spec.Members)),
		views:   make([]ClusterView, len(spec.Members)),
	}
	// In parallel mode member simulators run concurrently, so their
	// callbacks must be serialized behind one shared lock.
	var cbMu *sync.Mutex
	if spec.Workers > 1 && len(spec.Members) > 1 &&
		(spec.Observer != nil || spec.JobSink != nil) {
		cbMu = new(sync.Mutex)
	}
	for i, ms := range spec.Members {
		m, err := newMember(i, ms, spec, dims, cbMu)
		if err != nil {
			return nil, err
		}
		f.members[i] = m
	}
	return f, nil
}

func newMember(i int, ms MemberSpec, spec Spec, dims int, cbMu *sync.Mutex) (*member, error) {
	name := ms.Name
	if name == "" {
		name = fmt.Sprintf("c%d", i)
		if mix := cluster.NormalizeProfile(ms.Mix); mix != "" {
			name += "-" + mix
		}
	}
	if ms.Nodes <= 0 {
		return nil, fmt.Errorf("federation: member %s: node count %d", name, ms.Nodes)
	}
	algorithm := ms.Algorithm
	if algorithm == "" {
		algorithm = spec.Algorithm
	}
	if algorithm == "" {
		return nil, fmt.Errorf("federation: member %s: no algorithm (set MemberSpec.Algorithm or Spec.Algorithm)", name)
	}
	sch, err := sched.New(algorithm)
	if err != nil {
		return nil, fmt.Errorf("federation: member %s: %w", name, err)
	}
	objective := ms.Objective
	if objective == "" {
		objective = spec.Objective
	}
	obj, err := placement.ByName(objective)
	if err != nil {
		return nil, fmt.Errorf("federation: member %s: %w", name, err)
	}
	cl, err := cluster.Profile(ms.Mix, ms.Nodes)
	if err != nil {
		return nil, fmt.Errorf("federation: member %s: %w", name, err)
	}
	cl = cl.ExtendUnit(dims)
	cfg := sim.Config{
		Trace: &workload.Trace{
			Name:      spec.TraceName,
			Nodes:     ms.Nodes,
			NodeMemGB: spec.NodeMemGB,
		},
		Source:           closedSource{},
		Cluster:          cl,
		Penalty:          spec.Penalty,
		MaxSimTime:       spec.MaxSimTime,
		CheckInvariants:  spec.CheckInvariants,
		RecordSchedTimes: spec.RecordSchedTimes,
		Objective:        obj,
	}
	if spec.Observer != nil {
		if obs := spec.Observer(i); obs != nil {
			if cbMu != nil {
				obs = &lockedObserver{mu: cbMu, o: obs}
			}
			cfg.Observer = obs
		}
	}
	if spec.JobSink != nil {
		idx := i
		if cbMu != nil {
			cfg.JobSink = func(jr sim.JobResult) {
				cbMu.Lock()
				spec.JobSink(idx, jr)
				cbMu.Unlock()
			}
		} else {
			cfg.JobSink = func(jr sim.JobResult) { spec.JobSink(idx, jr) }
		}
	}
	s, err := sim.New(cfg, sch)
	if err != nil {
		return nil, fmt.Errorf("federation: member %s: %w", name, err)
	}
	m := &member{spec: ms, algorithm: algorithm, cl: cl, sim: s, priced: cl.Priced()}
	m.spec.Name = name
	for node := 0; node < cl.N(); node++ {
		m.meanCost += cl.Cost(node)
	}
	m.meanCost /= float64(cl.N())
	return m, nil
}

// peek maintains the one-job lookahead into the global feed.
func (f *Federation) peek() error {
	if f.next != nil || f.srcDone {
		return nil
	}
	j, ok, err := f.src.Next()
	if err != nil {
		f.srcDone = true
		return fmt.Errorf("federation: arrival feed: %w", err)
	}
	if !ok {
		f.srcDone = true
		return nil
	}
	f.nextBuf = j
	f.next = &f.nextBuf
	return nil
}

// dispatch routes one arriving job: views are rebuilt from live member
// state, the policy picks a member, and the job is injected through the
// member's streaming admission path. It returns the member index the job
// entered.
func (f *Federation) dispatch(j workload.Job) (int, error) {
	for i, m := range f.members {
		v := ClusterView{
			Index:        i,
			Name:         m.spec.Name,
			Nodes:        m.cl.N(),
			MeanCost:     m.meanCost,
			Priced:       m.priced,
			JobsInSystem: m.sim.JobsInSystem(),
			Dispatched:   m.dispatched,
		}
		if err := m.sim.CanAdmit(j); err == nil {
			v.CanRun = true
			v.FreeSlots = m.sim.FreeTaskSlots(j)
		}
		f.views[i] = v
	}
	target := f.disp.Dispatch(j, f.views)
	if target < 0 {
		return -1, fmt.Errorf("federation: dispatcher %s found no feasible cluster for job %d (%d tasks)",
			f.disp.Name(), j.ID, j.Tasks)
	}
	if target >= len(f.members) {
		return -1, fmt.Errorf("federation: dispatcher %s returned member %d of %d for job %d",
			f.disp.Name(), target, len(f.members), j.ID)
	}
	m := f.members[target]
	if err := m.sim.InjectJob(j); err != nil {
		return -1, fmt.Errorf("federation: dispatch job %d to %s: %w", j.ID, m.spec.Name, err)
	}
	m.dispatched++
	return target, nil
}

// Run drives the federation to completion: at every step the earliest
// pending instant across the global feed and all member event queues is
// selected — feed arrivals outrank coincident member events, exactly as
// arrivals outrank coincident queue events inside one simulator — and
// either the arriving job is dispatched or the owning member (lowest
// index on ties) processes its next event. The context is checked between
// steps. On success every member is finalized and the results merged.
//
// Spec.Workers > 1 selects the parallel loop, which processes the
// identical per-member event sequence concurrently between dispatch
// points and returns byte-identical results; see the package doc.
func (f *Federation) Run(ctx context.Context) (*Result, error) {
	if w := f.parWorkers(); w > 1 {
		return f.runParallel(ctx, w)
	}
	return f.runSerial(ctx)
}

// parWorkers resolves the effective parallel worker count: Spec.Workers
// capped at the member count (extra workers would only idle); anything
// at or below 1 selects the serial loop.
func (f *Federation) parWorkers() int {
	w := f.spec.Workers
	if w > len(f.members) {
		w = len(f.members)
	}
	return w
}

func (f *Federation) runSerial(ctx context.Context) (*Result, error) {
	done := ctx.Done()
	// Member next-event times are indexed in a positional min-heap keyed
	// by (time, member index) — the same winner as the former O(N) sweep,
	// at O(log N) per event. Only the member that just processed an event
	// or received a job can change its next-event time, so exactly one
	// entry is re-keyed per step.
	h := newEventHeap(len(f.members))
	for i, m := range f.members {
		if t, ok := m.sim.PeekNextEventTime(); ok {
			h.Set(i, t)
		}
	}
	// A member is eligible to advance while it has unfinished jobs — or
	// while the feed is open, since the next arrival may be dispatched to
	// it (this keeps periodic scheduler timers firing through idle gaps,
	// exactly as a single streaming run does). Once the feed closes and a
	// member's last job completes, its trailing timer events are left
	// unprocessed, matching the single-cluster run loop, which stops at
	// the last completion.
	feedClosed := false
	for {
		if done != nil {
			select {
			case <-done:
				return nil, f.cancelErr(ctx)
			default:
			}
		}
		if err := f.peek(); err != nil {
			return nil, err
		}
		if f.next == nil && !feedClosed {
			// The feed just closed: members with no unfinished jobs drop
			// out of the index, leaving their trailing timers unprocessed.
			feedClosed = true
			for i, m := range f.members {
				if !m.sim.HasPendingJobs() {
					h.Remove(i)
				}
			}
		}
		best, tBest, ok := h.Min()
		switch {
		case f.next != nil && (!ok || f.next.Submit <= tBest):
			j := *f.next
			f.next = nil
			target, err := f.dispatch(j)
			if err != nil {
				return nil, err
			}
			f.rekey(h, target, feedClosed)
		case ok:
			m := f.members[best]
			if err := m.sim.ProcessNextEvent(); err != nil {
				return nil, fmt.Errorf("federation: member %s: %w", m.spec.Name, err)
			}
			f.rekey(h, best, feedClosed)
		default:
			// No arrivals left and no member has an armed event. Any
			// remaining job means a member scheduler deadlocked; let it
			// report with its own diagnostics. Otherwise the run is
			// complete.
			for _, m := range f.members {
				if m.sim.HasPendingJobs() {
					if err := m.sim.ProcessNextEvent(); err != nil {
						return nil, fmt.Errorf("federation: member %s: %w", m.spec.Name, err)
					}
				}
			}
			return f.finalize()
		}
	}
}

// rekey refreshes member i's heap entry after it processed an event or
// received a job; no other member's next-event time can have changed.
func (f *Federation) rekey(h *eventHeap, i int, feedClosed bool) {
	m := f.members[i]
	if feedClosed && !m.sim.HasPendingJobs() {
		h.Remove(i)
		return
	}
	if t, ok := m.sim.PeekNextEventTime(); ok {
		h.Set(i, t)
	} else {
		h.Remove(i)
	}
}

// cancelErr formats the context-cancellation error common to both loops.
func (f *Federation) cancelErr(ctx context.Context) error {
	return fmt.Errorf("federation: %s stopped at t=%.1f with %d jobs unfinished: %w",
		f.disp.Name(), f.clock(), f.jobsInSystem(), ctx.Err())
}

// clock returns the maximum member clock, the federation's notion of
// elapsed simulated time (used only for error reporting).
func (f *Federation) clock() float64 {
	t := 0.0
	for _, m := range f.members {
		if now := m.sim.Now(); now > t {
			t = now
		}
	}
	return t
}

func (f *Federation) jobsInSystem() int {
	n := 0
	for _, m := range f.members {
		n += m.sim.JobsInSystem()
	}
	return n
}

// finalize collects every member's Result, validates them, and merges
// them into the federated view.
func (f *Federation) finalize() (*Result, error) {
	res := &Result{
		Dispatcher: f.disp.Name(),
		Clusters:   make([]ClusterResult, len(f.members)),
		Merged: &sim.Result{
			Algorithm: "federated-" + f.disp.Name(),
			Trace:     f.spec.TraceName,
			Penalty:   f.spec.Penalty,
		},
	}
	mg := res.Merged
	for i, m := range f.members {
		r := m.sim.Finalize()
		if err := metrics.Validate(r); err != nil {
			return nil, fmt.Errorf("federation: member %s: %w", m.spec.Name, err)
		}
		res.Clusters[i] = ClusterResult{
			Name:       m.spec.Name,
			Algorithm:  m.algorithm,
			Nodes:      m.cl.N(),
			Dispatched: m.dispatched,
			Result:     r,
			Summary:    metrics.Summarize(r),
			Costs:      metrics.Costs(r),
		}
		mg.Nodes += r.Nodes
		mg.TotalCPUCap += r.TotalCPUCap
		mg.Jobs = append(mg.Jobs, r.Jobs...)
		if r.Makespan > mg.Makespan {
			mg.Makespan = r.Makespan
		}
		mg.PreemptionOps += r.PreemptionOps
		mg.MigrationOps += r.MigrationOps
		mg.PreemptionGB += r.PreemptionGB
		mg.MigrationGB += r.MigrationGB
		mg.DeliveredCPUSeconds += r.DeliveredCPUSeconds
		mg.NodeCostSeconds += r.NodeCostSeconds
		mg.SchedSamples = append(mg.SchedSamples, r.SchedSamples...)
		mg.Events += r.Events
	}
	sort.Slice(mg.Jobs, func(a, b int) bool { return mg.Jobs[a].Job.ID < mg.Jobs[b].Job.ID })
	if err := metrics.Validate(mg); err != nil {
		return nil, fmt.Errorf("federation: merged result: %w", err)
	}
	res.Summary = metrics.Summarize(mg)
	res.Costs = metrics.Costs(mg)
	return res, nil
}
