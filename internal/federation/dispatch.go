package federation

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/workload"
)

// ClusterView is the dispatcher's snapshot of one member cluster at the
// instant a job arrives at the federation. Views are recomputed for every
// arrival from live simulator state, always in member order, so any
// deterministic policy over them yields a deterministic routing.
type ClusterView struct {
	// Index is the member's position in the federation; Dispatch returns
	// one of these.
	Index int
	// Name is the member's display name.
	Name string
	// Nodes is the member's node count.
	Nodes int
	// MeanCost is the mean node cost rate of the member's inventory
	// (price units per node-second; 0 on unpriced mixes).
	MeanCost float64
	// Priced reports whether any node of the member carries a nonzero
	// cost rate.
	Priced bool
	// JobsInSystem is the member's current number of admitted,
	// uncompleted jobs — the queue-depth signal.
	JobsInSystem int
	// CanRun reports whether the member could ever admit the arriving
	// job (cluster-size, per-dimension and aggregate-capacity checks).
	// Dispatching to a member with CanRun false fails the run.
	CanRun bool
	// FreeSlots is how many of the job's tasks the member could host on
	// currently unallocated rigid capacity, capped at the task count; 0
	// when CanRun is false. FreeSlots == Tasks means the job fits without
	// waiting — the bursting signal.
	FreeSlots int
	// Dispatched is how many jobs this federation has routed to the
	// member so far.
	Dispatched int
}

// Dispatcher decides which member cluster each arriving job enters. It is
// consulted once per arrival, in global submission order, with one view
// per member; it returns the chosen member index, or a negative value when
// no member can take the job (which fails the run with a descriptive
// error). Implementations may keep state (e.g. a round-robin cursor) —
// each Federation owns a fresh instance — but must be deterministic
// functions of their state and the views.
type Dispatcher interface {
	Name() string
	Dispatch(j workload.Job, clusters []ClusterView) int
}

// StatelessDispatcher is an optional capability a Dispatcher can declare:
// Stateless() returning true promises that Dispatch never reads the
// dynamic view fields (JobsInSystem, FreeSlots, Dispatched) — only the
// configuration-derived ones (Index, Name, Nodes, MeanCost, Priced, and
// CanRun, which depends on the member's inventory and the job alone) and
// the dispatcher's own internal state. The parallel federation loop
// exploits the promise by routing whole batches of consecutive arrivals
// ahead of the members, extending the lookahead horizon across many
// dispatch points instead of barriering on every one. Declaring
// statelessness while reading dynamic fields breaks the
// parallel-equals-serial guarantee; policies that sample live state
// (queuedepth, costaware) must not implement it, and keep per-arrival
// barriers.
type StatelessDispatcher interface {
	Dispatcher
	Stateless() bool
}

// Factory constructs a fresh Dispatcher. Each federation gets its own
// instance, so policy state is never shared between runs.
type Factory func() Dispatcher

// DefaultDispatcher is the policy ByName resolves the empty name to.
const DefaultDispatcher = "roundrobin"

var (
	regMu      sync.RWMutex
	dispatchFs = map[string]Factory{}
)

func init() {
	for name, f := range map[string]Factory{
		"roundrobin": func() Dispatcher { return &RoundRobin{} },
		"queuedepth": func() Dispatcher { return QueueDepth{} },
		"costaware":  func() Dispatcher { return CostAware{} },
	} {
		if err := Register(name, f); err != nil {
			panic(err)
		}
	}
}

// Register adds a dispatch policy under a unique name, making it available
// to ByName, the campaign dispatcher axis and the CLIs' -dispatch flag.
func Register(name string, f Factory) error {
	if name == "" {
		return fmt.Errorf("federation: empty dispatcher name")
	}
	if f == nil {
		return fmt.Errorf("federation: nil factory for dispatcher %q", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := dispatchFs[name]; dup {
		return fmt.Errorf("federation: dispatcher %q already registered", name)
	}
	dispatchFs[name] = f
	return nil
}

// Known reports whether name denotes a registered dispatcher ("" counts as
// the default).
func Known(name string) bool {
	if name == "" {
		return true
	}
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := dispatchFs[name]
	return ok
}

// ByName returns a fresh instance of the named dispatch policy; the empty
// name resolves to DefaultDispatcher.
func ByName(name string) (Dispatcher, error) {
	if name == "" {
		name = DefaultDispatcher
	}
	regMu.RLock()
	f, ok := dispatchFs[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("federation: unknown dispatcher %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names returns the registered dispatcher names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(dispatchFs))
	for name := range dispatchFs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RoundRobin cycles arrivals across the members that can run each job,
// skipping infeasible ones without losing its place.
type RoundRobin struct{ next int }

// Name implements Dispatcher.
func (d *RoundRobin) Name() string { return "roundrobin" }

// Stateless implements StatelessDispatcher: the cursor walks CanRun flags
// only, never dynamic member state, so arrivals can be routed arbitrarily
// far ahead of the members.
func (d *RoundRobin) Stateless() bool { return true }

// Dispatch implements Dispatcher.
func (d *RoundRobin) Dispatch(_ workload.Job, clusters []ClusterView) int {
	n := len(clusters)
	for k := 0; k < n; k++ {
		i := (d.next + k) % n
		if clusters[i].CanRun {
			d.next = (i + 1) % n
			return i
		}
	}
	return -1
}

// QueueDepth routes each job to the feasible member with the fewest jobs
// in system (ties to the lowest member index) — the classic
// join-the-shortest-queue policy.
type QueueDepth struct{}

// Name implements Dispatcher.
func (QueueDepth) Name() string { return "queuedepth" }

// Dispatch implements Dispatcher.
func (QueueDepth) Dispatch(_ workload.Job, clusters []ClusterView) int {
	best := -1
	for i, v := range clusters {
		if v.CanRun && (best < 0 || v.JobsInSystem < clusters[best].JobsInSystem) {
			best = i
		}
	}
	return best
}

// CostAware implements cloud bursting over priced inventories: each job
// goes to the cheapest member (lowest mean node cost rate, reusing
// cluster.NodeSpec.Cost; ties to the lowest index) that can host every
// task on free rigid capacity right now. When no member has room, the job
// queues on the cheapest feasible member instead — an on-prem mix at cost
// 0 therefore absorbs jobs until it is full, overflow bursts to the priced
// remote, and the backlog drains on-prem once the remote would also queue.
type CostAware struct{}

// Name implements Dispatcher.
func (CostAware) Name() string { return "costaware" }

// Dispatch implements Dispatcher.
func (CostAware) Dispatch(j workload.Job, clusters []ClusterView) int {
	cheapest := func(fits func(ClusterView) bool) int {
		best := -1
		for i, v := range clusters {
			if v.CanRun && fits(v) && (best < 0 || v.MeanCost < clusters[best].MeanCost) {
				best = i
			}
		}
		return best
	}
	if i := cheapest(func(v ClusterView) bool { return v.FreeSlots >= j.Tasks }); i >= 0 {
		return i
	}
	return cheapest(func(ClusterView) bool { return true })
}
