package federation

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cluster"
)

// ParseTopology parses the compact cluster-topology notation shared by
// the -clusters CLI flag and the campaign federation axis. Two forms:
//
//   - a bare integer "N": N identical members of defNodes nodes of the
//     defMix profile — "-clusters 2" duplicates the single-cluster
//     platform;
//   - a "+"-separated member list, each member "mix", "mix:nodes" or
//     ":nodes" — e.g. "uniform:128+bimodal-priced:64" for an on-prem mix
//     plus a priced remote. An omitted mix or node count falls back to
//     defMix / defNodes.
//
// Mix names are validated against the registered profiles and normalized
// ("uniform" and "" are the same profile); node counts must be positive.
func ParseTopology(spec string, defNodes int, defMix string) ([]MemberSpec, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("federation: empty topology spec")
	}
	if defNodes <= 0 {
		return nil, fmt.Errorf("federation: default node count %d", defNodes)
	}
	if n, err := strconv.Atoi(spec); err == nil {
		if n < 1 {
			return nil, fmt.Errorf("federation: topology %q: cluster count must be positive", spec)
		}
		members := make([]MemberSpec, n)
		for i := range members {
			members[i] = MemberSpec{Mix: cluster.NormalizeProfile(defMix), Nodes: defNodes}
		}
		return members, nil
	}
	parts := strings.Split(spec, "+")
	members := make([]MemberSpec, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		mix, nodes := part, defNodes
		if at := strings.IndexByte(part, ':'); at >= 0 {
			mix = strings.TrimSpace(part[:at])
			count := strings.TrimSpace(part[at+1:])
			n, err := strconv.Atoi(count)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("federation: topology %q: bad node count %q", spec, count)
			}
			nodes = n
		}
		if mix == "" && part == "" {
			return nil, fmt.Errorf("federation: topology %q: empty member", spec)
		}
		if !cluster.ValidProfile(mix) {
			return nil, fmt.Errorf("federation: topology %q: unknown node mix %q (have %v)",
				spec, mix, cluster.ProfileNames())
		}
		members = append(members, MemberSpec{Mix: cluster.NormalizeProfile(mix), Nodes: nodes})
	}
	return members, nil
}

// FormatTopology renders members back into the notation ParseTopology
// accepts, always in the explicit "mix:nodes" form.
func FormatTopology(members []MemberSpec) string {
	parts := make([]string, len(members))
	for i, m := range members {
		mix := m.Mix
		if mix == "" {
			mix = cluster.ProfileUniform
		}
		parts[i] = fmt.Sprintf("%s:%d", mix, m.Nodes)
	}
	return strings.Join(parts, "+")
}
