package federation

import (
	"math/rand"
	"testing"
)

// TestEventHeapMatchesScan drives the heap with random Set/Remove traffic
// and checks its minimum against a reference linear scan using the serial
// loop's original tie rule (strict less-than, first member wins ties).
func TestEventHeapMatchesScan(t *testing.T) {
	const n = 17
	rng := rand.New(rand.NewSource(42))
	h := newEventHeap(n)
	ref := make([]float64, n)
	present := make([]bool, n)

	scanMin := func() (int, float64, bool) {
		best, tBest := -1, 0.0
		for i := 0; i < n; i++ {
			if present[i] && (best < 0 || ref[i] < tBest) {
				best, tBest = i, ref[i]
			}
		}
		return best, tBest, best >= 0
	}

	for step := 0; step < 5000; step++ {
		m := rng.Intn(n)
		switch {
		case rng.Intn(4) == 0:
			h.Remove(m)
			present[m] = false
		default:
			// Coarse values force frequent timestamp ties.
			v := float64(rng.Intn(40))
			h.Set(m, v)
			ref[m], present[m] = v, true
		}
		gm, gt, gok := h.Min()
		wm, wt, wok := scanMin()
		if gok != wok || (gok && (gm != wm || gt != wt)) {
			t.Fatalf("step %d: heap min (%d, %g, %v), scan min (%d, %g, %v)",
				step, gm, gt, gok, wm, wt, wok)
		}
	}
}

// TestDispatcherStatelessCapability pins which built-ins declare the
// stateless capability: roundrobin batches ahead of the members, while the
// view-sampling policies must not.
func TestDispatcherStatelessCapability(t *testing.T) {
	rr, err := ByName("roundrobin")
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := rr.(StatelessDispatcher); !ok || !s.Stateless() {
		t.Error("roundrobin does not declare the stateless capability")
	}
	for _, name := range []string{"queuedepth", "costaware"} {
		d, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s, ok := d.(StatelessDispatcher); ok && s.Stateless() {
			t.Errorf("%s declares statelessness but samples live views", name)
		}
	}
}
