// Package cli holds the small amount of machinery shared by every command
// in cmd/: signal-driven context cancellation for graceful shutdown, and a
// context-aware writer that aborts long encodes when the user interrupts.
package cli

import (
	"context"
	"io"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context cancelled on SIGINT or SIGTERM. The
// first signal cancels the context so the command can shut down gracefully
// (flushing checkpoints, closing files); a second signal kills the process
// via the restored default handler.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// Writer wraps w so every Write first checks the context, turning
// cancellation into a write error that unwinds encoders and generators at
// write granularity.
func Writer(ctx context.Context, w io.Writer) io.Writer {
	return &ctxWriter{ctx: ctx, w: w}
}

type ctxWriter struct {
	ctx context.Context
	w   io.Writer
}

func (c *ctxWriter) Write(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.w.Write(p)
}
