package sched

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/sim"
)

// Factory builds a fresh scheduler instance. Schedulers carry per-run state
// (queues, timers), so every simulation must use a new instance.
type Factory func() sim.Scheduler

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a named scheduler constructor. It panics on duplicates;
// registration happens in package init functions, where a duplicate is a
// programming error.
func Register(name string, f Factory) {
	if err := RegisterFactory(name, f); err != nil {
		panic(err.Error())
	}
}

// RegisterFactory adds a named scheduler constructor, returning an error
// on an empty name, a nil factory, or a duplicate registration. It is the
// non-panicking form behind the public dfrs.RegisterAlgorithm entry point,
// where out-of-tree callers register schedulers at run time rather than in
// package init functions.
func RegisterFactory(name string, f Factory) error {
	if name == "" {
		return fmt.Errorf("sched: empty algorithm name")
	}
	if f == nil {
		return fmt.Errorf("sched: nil factory for algorithm %q", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("sched: duplicate registration of %q", name)
	}
	registry[name] = f
	return nil
}

// Registered reports whether an algorithm name is registered.
func Registered(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// New returns a fresh instance of the named scheduler.
func New(name string) (sim.Scheduler, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sched: unknown algorithm %q (known: %v)", name, Names())
	}
	return f(), nil
}

// Names lists all registered algorithm names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
