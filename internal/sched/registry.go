package sched

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/sim"
)

// Factory builds a fresh scheduler instance. Schedulers carry per-run state
// (queues, timers), so every simulation must use a new instance.
type Factory func() sim.Scheduler

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a named scheduler constructor. It panics on duplicates;
// registration happens in package init functions, where a duplicate is a
// programming error.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sched: duplicate registration of %q", name))
	}
	registry[name] = f
}

// New returns a fresh instance of the named scheduler.
func New(name string) (sim.Scheduler, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sched: unknown algorithm %q (known: %v)", name, Names())
	}
	return f(), nil
}

// Names lists all registered algorithm names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
