package gang

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

func jb(id int, submit float64, tasks int, cpu, mem, exec float64) workload.Job {
	return workload.Job{ID: id, Submit: submit, Tasks: tasks, CPUNeed: cpu, MemReq: mem, ExecTime: exec}
}

func run(t *testing.T, quantum float64, nodes int, jobs ...workload.Job) *sim.Result {
	t.Helper()
	tr := &workload.Trace{Name: "gang-test", Nodes: nodes, NodeMemGB: 8, Jobs: jobs}
	simulator, err := sim.New(sim.Config{Trace: tr, CheckInvariants: true}, New(quantum))
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulator.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.Validate(res); err != nil {
		t.Fatal(err)
	}
	return res
}

func byID(res *sim.Result) map[int]sim.JobResult {
	out := map[int]sim.JobResult{}
	for _, jr := range res.Jobs {
		out[jr.Job.ID] = jr
	}
	return out
}

func TestSingleJobRunsAtFullSpeed(t *testing.T) {
	res := run(t, 60, 2, jb(0, 0, 1, 1.0, 0.2, 100))
	jr := byID(res)
	if math.Abs(jr[0].Turnaround-100) > 1e-6 {
		t.Errorf("turnaround = %v, want 100 (only row always current)", jr[0].Turnaround)
	}
}

func TestTwoRowsAlternate(t *testing.T) {
	// Two CPU-bound jobs that cannot share a row on one node: they time-
	// slice 50/50, so each takes ~2x its execution time.
	res := run(t, 60, 1,
		jb(0, 0, 1, 1.0, 0.2, 600),
		jb(1, 0, 1, 1.0, 0.2, 600),
	)
	for _, jr := range res.Jobs {
		// Alternating 60s slices: each job accrues 600s of virtual time
		// in roughly 1200s of wall clock (plus at most one quantum skew).
		if jr.Turnaround < 1100 || jr.Turnaround > 1300 {
			t.Errorf("job %d turnaround %v, want ~1200", jr.Job.ID, jr.Turnaround)
		}
	}
}

func TestRowSharingWithinSlice(t *testing.T) {
	// Two half-CPU jobs fit in ONE row on one node: no alternation, both
	// run at full need simultaneously.
	res := run(t, 60, 1,
		jb(0, 0, 1, 0.5, 0.2, 100),
		jb(1, 0, 1, 0.5, 0.2, 100),
	)
	for _, jr := range res.Jobs {
		if math.Abs(jr.Turnaround-100) > 1e-6 {
			t.Errorf("job %d turnaround %v, want 100 (same row)", jr.Job.ID, jr.Turnaround)
		}
	}
}

func TestMemoryPressureBlocksAdmission(t *testing.T) {
	// Section VI: gang scheduling is limited by memory. Two 0.7-memory
	// jobs cannot stack on one node even in different rows; the second
	// waits for the first to complete.
	res := run(t, 60, 1,
		jb(0, 0, 1, 1.0, 0.7, 120),
		jb(1, 10, 1, 1.0, 0.7, 120),
	)
	jr := byID(res)
	if jr[1].Start < jr[0].Finish-1e-9 {
		t.Errorf("job 1 started at %v before job 0 finished at %v despite memory",
			jr[1].Start, jr[0].Finish)
	}
}

func TestGangNeverPausesOrMigrates(t *testing.T) {
	// Context switches are yield changes, not VM save/restore cycles: the
	// Table II counters stay zero even with many slices.
	res := run(t, 30, 2,
		jb(0, 0, 2, 1.0, 0.3, 300),
		jb(1, 15, 1, 1.0, 0.3, 300),
		jb(2, 45, 2, 1.0, 0.3, 300),
	)
	if res.PreemptionOps != 0 || res.MigrationOps != 0 {
		t.Errorf("gang charged pause/migration ops: %d/%d", res.PreemptionOps, res.MigrationOps)
	}
}

func TestMultiTaskGang(t *testing.T) {
	// A 3-task job and a 2-task job on 3 nodes, both CPU-bound: they land
	// in different rows and alternate; a 1-task light job shares a row.
	res := run(t, 60, 3,
		jb(0, 0, 3, 1.0, 0.2, 300),
		jb(1, 0, 2, 1.0, 0.2, 300),
		jb(2, 0, 1, 0.5, 0.2, 60),
	)
	if len(res.Jobs) != 3 {
		t.Fatalf("%d jobs finished", len(res.Jobs))
	}
	for _, jr := range res.Jobs {
		if jr.Turnaround < jr.Job.ExecTime-1e-9 {
			t.Errorf("job %d impossibly fast", jr.Job.ID)
		}
	}
}

func TestQuantumNaming(t *testing.T) {
	if got := New(60).Name(); got != "gang" {
		t.Errorf("default name = %q", got)
	}
	if got := New(120).Name(); got != "gang-120" {
		t.Errorf("custom name = %q", got)
	}
	if got := New(-5).Name(); got != "gang" {
		t.Errorf("invalid quantum name = %q (should fall back to default)", got)
	}
}

func TestRowCompaction(t *testing.T) {
	// Jobs arriving and completing must not leave ghost rows: after a
	// heavy churn, everything still completes.
	var jobs []workload.Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, jb(i, float64(i*20), 1+i%3, 1.0, 0.2, 100+float64(i%5)*40))
	}
	res := run(t, 30, 4, jobs...)
	if len(res.Jobs) != 12 {
		t.Fatalf("%d of 12 jobs finished", len(res.Jobs))
	}
}
