// Package gang implements a gang scheduler, the classical time-sharing
// alternative that Section VI of the paper contrasts DFRS against: tasks of
// a parallel job execute in the same synchronized time slices across the
// cluster's nodes, with distributed context switches at every slice
// boundary.
//
// The implementation uses an Ousterhout-style matrix: rows are time slices,
// columns are nodes; each job occupies one row on as many columns as it has
// tasks. During its slice a job runs at full speed (yield 1); otherwise it
// is suspended. The per-node memory constraint applies to the *sum over
// rows* of a column's tasks, modelling the memory pressure that Section VI
// identifies as gang scheduling's weakness — jobs whose memory does not fit
// under the jobs already stacked on a column must wait, exactly the
// behaviour the DFRS memory constraint was designed to preserve.
//
// The simulator cannot context-switch for free: changing the set of running
// jobs is done through yield changes (zero-cost, as in real gang schedulers
// where switching is seconds against multi-second slices), not through
// pause/resume (which would charge the rescheduling penalty meant for
// VM save/restore cycles). The quantum is configurable; the package
// registers "gang" with a 60-second quantum (gang schedulers need slices
// long against context-switch costs; Section VI).
package gang

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/floats"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// DefaultQuantum is the registered variant's time slice in seconds.
const DefaultQuantum = 60.0

const tickTag int64 = -2

func init() {
	sched.Register("gang", func() sim.Scheduler { return New(DefaultQuantum) })
}

// Scheduler is the gang scheduler.
type Scheduler struct {
	quantum float64
	name    string

	rows    []row
	current int // row currently executing
	// rigidUse[r][node] is the cumulative demand in rigid dimension r+1
	// (rigidUse[0] is memory) across all rows — suspended jobs keep their
	// VM-resident footprint, the memory pressure Section VI identifies.
	rigidUse [][]float64
	// placed[jid] = row index.
	placed map[int]int
	queue  []int
}

type row struct {
	jobs  []int
	nodes map[int][]int // jid -> node per task
	load  []float64     // per-node CPU need in this row
}

// New builds a gang scheduler with the given time quantum in seconds.
func New(quantum float64) *Scheduler {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	return &Scheduler{quantum: quantum, name: fmt.Sprintf("gang-%.0f", quantum)}
}

// Name implements sim.Scheduler. The registered default is named "gang".
func (g *Scheduler) Name() string {
	if g.quantum == DefaultQuantum {
		return "gang"
	}
	return g.name
}

// CheckJob implements sim.CapacityChecker: a gang row runs at yield 1, so
// within one row a node hosts at most floor(cpuCap/need) of the job's
// tasks on top of the rigid limits. A job whose tasks exceed even a fresh
// row on an empty cluster can never be admitted — without this veto it
// would sit queued while the quantum timer re-arms forever. On the paper's
// platform (unit nodes, need and demands in (0,1], tasks <= nodes) every
// node holds at least one task and the check never fires; it bites on
// partially-equipped mixes (a CPU-hungry multi-task GPU job with fewer
// GPU nodes than tasks).
func (g *Scheduler) CheckJob(cl *cluster.Cluster, j workload.Job) error {
	slots := sim.TaskSlots(cl.N(), j.Tasks, 0, cl.D(), j.Demand, cl.Cap)
	if slots < j.Tasks {
		return fmt.Errorf("gang: job %d needs %d tasks in one time slice but a fresh row on the empty cluster holds at most %d",
			j.ID, j.Tasks, slots)
	}
	return nil
}

// Init implements sim.Scheduler.
func (g *Scheduler) Init(ctl *sim.Controller) {
	g.rows = nil
	g.current = 0
	g.rigidUse = make([][]float64, ctl.NumDims()-1)
	for r := range g.rigidUse {
		g.rigidUse[r] = make([]float64, ctl.NumNodes())
	}
	g.placed = map[int]int{}
	g.queue = nil
	ctl.SetTimer(ctl.Now()+g.quantum, tickTag)
}

// OnArrival implements sim.Scheduler.
func (g *Scheduler) OnArrival(ctl *sim.Controller, jid int) {
	if !g.tryPlace(ctl, jid) {
		g.queue = append(g.queue, jid)
		return
	}
	g.applySlice(ctl)
}

// OnCompletion implements sim.Scheduler.
func (g *Scheduler) OnCompletion(ctl *sim.Controller, jid int) {
	g.remove(ctl, jid)
	g.admitQueued(ctl)
	g.applySlice(ctl)
}

// OnTimer implements sim.Scheduler: advance to the next time slice.
func (g *Scheduler) OnTimer(ctl *sim.Controller, tag int64) {
	if tag != tickTag {
		return
	}
	if len(g.rows) > 0 {
		g.current = (g.current + 1) % len(g.rows)
	}
	g.admitQueued(ctl)
	g.applySlice(ctl)
	ctl.SetTimer(ctl.Now()+g.quantum, tickTag)
}

// tryPlace finds (or creates) a row with CPU room on enough columns whose
// cumulative memory (across all rows) can take the job's tasks. Returns
// false when the memory constraint blocks admission.
func (g *Scheduler) tryPlace(ctl *sim.Controller, jid int) bool {
	ji := ctl.Job(jid)
	n := ctl.NumNodes()
	for ri := range g.rows {
		if nodes, ok := g.fitInRow(ctl, ji, &g.rows[ri], n); ok {
			g.commit(ctl, jid, ri, nodes)
			return true
		}
	}
	// Open a fresh row.
	fresh := row{nodes: map[int][]int{}, load: make([]float64, n)}
	if nodes, ok := g.fitInRow(ctl, ji, &fresh, n); ok {
		g.rows = append(g.rows, fresh)
		g.commit(ctl, jid, len(g.rows)-1, nodes)
		return true
	}
	return false
}

// rowState adapts one gang row (plus the in-call placement plan) to
// placement.State: CPU load is the row's per-slice load, rigid usage is
// the cumulative footprint across all rows — the same quantities the
// feasibility filter checks.
type rowState struct {
	g         *Scheduler
	ctl       *sim.Controller
	r         *row
	planLoad  []float64
	planRigid [][]float64
}

// Dims implements placement.State.
func (s rowState) Dims() int { return s.ctl.NumDims() }

// Cap implements placement.State.
func (s rowState) Cap(node, k int) float64 { return s.ctl.ResCap(node, k) }

// Free implements placement.State.
func (s rowState) Free(node, k int) float64 {
	if k == 0 {
		return s.ctl.CPUCap(node) - s.CPULoad(node)
	}
	return s.ctl.ResCap(node, k) - s.g.rigidUse[k-1][node] - s.planRigid[k-1][node]
}

// CPULoad implements placement.State: the row's CPU load on the node.
func (s rowState) CPULoad(node int) float64 { return s.r.load[node] + s.planLoad[node] }

// Cost implements placement.State.
func (s rowState) Cost(node int) float64 { return s.ctl.NodeCost(node) }

// fitInRow plans one node per task: the node must have CPU headroom within
// the row (need sums to at most the node's CPU capacity per slice, so the
// row can run at yield 1) and global headroom in every rigid dimension
// (memory, GPU, ...) across all rows. On a homogeneous cluster both
// capacities are 1.0, the published formulation. With no objective
// configured each task takes the first feasible node in id order (the
// First objective, inlined); a configured objective picks the feasible
// node with the best score instead.
func (g *Scheduler) fitInRow(ctl *sim.Controller, ji sim.JobInfo, r *row, n int) ([]int, bool) {
	obj := ctl.Objective()
	nodes := make([]int, 0, ji.Job.Tasks)
	planLoad := make([]float64, n)
	planRigid := make([][]float64, len(g.rigidUse))
	for ri := range planRigid {
		planRigid[ri] = make([]float64, n)
	}
	feasible := func(node int) bool {
		if !floats.LessEq(r.load[node]+planLoad[node]+ji.Job.CPUNeed, ctl.CPUCap(node)) {
			return false
		}
		for ri := range g.rigidUse {
			if !floats.LessEq(g.rigidUse[ri][node]+planRigid[ri][node]+ji.Job.Demand(ri+1), ctl.ResCap(node, ri+1)) {
				return false
			}
		}
		return true
	}
	st := rowState{g: g, ctl: ctl, r: r, planLoad: planLoad, planRigid: planRigid}
	dem := placement.Demand(ji.Job.Demand)
	for task := 0; task < ji.Job.Tasks; task++ {
		found := -1
		if obj != nil {
			found = placement.Pick(n, dem, st, feasible, obj)
		} else {
			for node := 0; node < n; node++ {
				if feasible(node) {
					found = node
					break
				}
			}
		}
		if found < 0 {
			return nil, false
		}
		nodes = append(nodes, found)
		planLoad[found] += ji.Job.CPUNeed
		for ri := range planRigid {
			planRigid[ri][found] += ji.Job.Demand(ri + 1)
		}
	}
	return nodes, true
}

func (g *Scheduler) commit(ctl *sim.Controller, jid, ri int, nodes []int) {
	r := &g.rows[ri]
	r.jobs = append(r.jobs, jid)
	r.nodes[jid] = nodes
	ji := ctl.Job(jid)
	for _, node := range nodes {
		r.load[node] += ji.Job.CPUNeed
		for k := range g.rigidUse {
			g.rigidUse[k][node] += ji.Job.Demand(k + 1)
		}
	}
	g.placed[jid] = ri
	ctl.Start(jid, nodes)
}

func (g *Scheduler) remove(ctl *sim.Controller, jid int) {
	ri, ok := g.placed[jid]
	if !ok {
		return
	}
	delete(g.placed, jid)
	r := &g.rows[ri]
	ji := ctl.Job(jid)
	for _, node := range r.nodes[jid] {
		r.load[node] -= ji.Job.CPUNeed
		r.load[node] = floats.NonNeg(r.load[node])
		for k := range g.rigidUse {
			g.rigidUse[k][node] = floats.NonNeg(g.rigidUse[k][node] - ji.Job.Demand(k+1))
		}
	}
	delete(r.nodes, jid)
	for i, j := range r.jobs {
		if j == jid {
			r.jobs = append(r.jobs[:i], r.jobs[i+1:]...)
			break
		}
	}
	g.compactRows()
}

// compactRows drops empty trailing rows and clamps the current slice index.
func (g *Scheduler) compactRows() {
	out := g.rows[:0]
	remap := make([]int, len(g.rows))
	for ri := range g.rows {
		if len(g.rows[ri].jobs) == 0 {
			remap[ri] = -1
			continue
		}
		remap[ri] = len(out)
		out = append(out, g.rows[ri])
	}
	for jid, ri := range g.placed {
		g.placed[jid] = remap[ri]
	}
	g.rows = out
	if g.current >= len(g.rows) {
		g.current = 0
	}
}

func (g *Scheduler) admitQueued(ctl *sim.Controller) {
	remaining := g.queue[:0]
	for _, jid := range g.queue {
		if ctl.Job(jid).State != sim.Pending || !g.tryPlace(ctl, jid) {
			remaining = append(remaining, jid)
		}
	}
	g.queue = remaining
}

// applySlice gives yield 1 to every job in the current row and 0 to all
// other running jobs — the synchronized context switch. Jobs that completed
// in the current event but whose OnCompletion has not fired yet still sit
// in placed; they are skipped.
func (g *Scheduler) applySlice(ctl *sim.Controller) {
	yields := map[int]float64{}
	for jid, ri := range g.placed {
		if ctl.Job(jid).State != sim.Running {
			continue
		}
		if len(g.rows) > 0 && ri == g.current {
			yields[jid] = 1
		} else {
			yields[jid] = 0
		}
	}
	sched.ApplyYields(ctl, yields)
}
