// Package greedy implements the paper's three greedy DFRS algorithms
// (Section III-A):
//
//   - GREEDY places each task of an incoming job on the least CPU-loaded
//     node with enough free memory, postponing the job with bounded
//     exponential backoff when memory is short; running jobs all receive
//     yield 1/max(1, maxLoad) followed by the average-yield improvement
//     heuristic.
//   - GREEDY-PMTN never postpones: when memory is short it pauses running
//     jobs in increasing priority order (after unmarking, in decreasing
//     priority order, any candidate that can stay), starts the incoming
//     job, and resumes paused jobs at later events in decreasing priority
//     order.
//   - GREEDY-PMTN-MIGR additionally allows jobs paused during an event to
//     be resumed on different nodes within that same event, which amounts
//     to a migration.
package greedy

import (
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	sched.Register("greedy", func() sim.Scheduler {
		return &Greedy{name: "greedy"}
	})
	sched.Register("greedy-pmtn", func() sim.Scheduler {
		return &Greedy{name: "greedy-pmtn", preempt: true, priority: core.Priority}
	})
	sched.Register("greedy-pmtn-migr", func() sim.Scheduler {
		return &Greedy{name: "greedy-pmtn-migr", preempt: true, migrate: true, priority: core.Priority}
	})
	// Ablation A1: preemptive greedy with the linear (un-squared)
	// priority function.
	sched.Register("greedy-pmtn-linprio", func() sim.Scheduler {
		return &Greedy{name: "greedy-pmtn-linprio", preempt: true, priority: core.PriorityLinear}
	})
}

// Greedy implements all three greedy variants; preempt and migrate select
// the behaviour described in the package comment.
type Greedy struct {
	name     string
	preempt  bool
	migrate  bool
	priority sched.PriorityFunc

	yields sched.YieldScratch // yield-rule buffers, reused across events
}

// Name implements sim.Scheduler.
func (g *Greedy) Name() string { return g.name }

// Init implements sim.Scheduler.
func (g *Greedy) Init(*sim.Controller) {}

// OnArrival implements sim.Scheduler.
func (g *Greedy) OnArrival(ctl *sim.Controller, jid int) {
	g.admit(ctl, jid)
	if g.preempt {
		g.resumePaused(ctl)
	}
	g.yields.Apply(ctl)
}

// OnCompletion implements sim.Scheduler.
func (g *Greedy) OnCompletion(ctl *sim.Controller, _ int) {
	if g.preempt {
		g.resumePaused(ctl)
	}
	g.yields.Apply(ctl)
}

// OnTimer implements sim.Scheduler: the tag is the jid of a postponed job
// to reconsider (plain GREEDY only).
func (g *Greedy) OnTimer(ctl *sim.Controller, tag int64) {
	jid := int(tag)
	if ctl.Job(jid).State != sim.Pending {
		return
	}
	g.admit(ctl, jid)
	g.yields.Apply(ctl)
}

// admit places job jid, by plain greedy placement when possible and through
// forced admission with preemption otherwise (preemptive variants), or
// postpones it with backoff (plain GREEDY).
func (g *Greedy) admit(ctl *sim.Controller, jid int) {
	if nodes, ok := sched.GreedyPlace(ctl, jid); ok {
		ctl.Start(jid, nodes)
		return
	}
	if !g.preempt {
		count := ctl.IncrementAttempts(jid)
		ctl.SetTimer(ctl.Now()+sched.BackoffDelay(count), int64(jid))
		return
	}
	g.forceAdmission(ctl, jid)
}

// rigidFeasible reports whether the job's task count fits on the cluster
// given per-node free capacity in every rigid dimension (freeRigid[r][node]
// is dimension r+1). A node's task capacity is the minimum over the
// dimensions the job actually demands; on the paper's platform this is
// exactly the memory-only count of Section III-A.
func rigidFeasible(freeRigid [][]float64, j workload.Job) bool {
	free := func(node, k int) float64 { return freeRigid[k-1][node] }
	return sim.TaskSlots(len(freeRigid[0]), j.Tasks, 1, len(freeRigid)+1, j.Demand, free) >= j.Tasks
}

// forceAdmission implements the GREEDY-PMTN admission procedure: mark
// running jobs as pause candidates in increasing priority order until the
// incoming job would fit, unmark candidates in decreasing priority order
// when the job still fits without pausing them, then pause the remaining
// marked jobs and start the incoming job.
func (g *Greedy) forceAdmission(ctl *sim.Controller, jid int) {
	ji := ctl.Job(jid)
	now := ctl.Now()
	n := ctl.NumNodes()
	d := ctl.NumDims()
	freeRigid := make([][]float64, d-1)
	for r := range freeRigid {
		freeRigid[r] = make([]float64, n)
		for node := 0; node < n; node++ {
			freeRigid[r][node] = ctl.FreeRes(node, r+1)
		}
	}
	// addRigid adds (sign = +1) or removes (sign = -1) the job's rigid
	// demands on its hosting nodes from the hypothetical free state.
	addRigid := func(cj sim.JobInfo, sign float64) {
		for _, node := range cj.Nodes {
			for r := range freeRigid {
				freeRigid[r][node] += sign * cj.Job.Demand(r+1)
			}
		}
	}
	running := sched.ByPriority(ctl, ctl.JobsInState(sim.Running), now, g.priority, true)

	marked := map[int]bool{}
	var markOrder []int
	for _, cand := range running {
		if rigidFeasible(freeRigid, ji.Job) {
			break
		}
		addRigid(ctl.Job(cand), +1)
		marked[cand] = true
		markOrder = append(markOrder, cand)
	}
	if !rigidFeasible(freeRigid, ji.Job) {
		// Even pausing everything is not enough; cannot happen for valid
		// traces (tasks <= nodes, demands <= 1) but keep the job pending
		// rather than panicking on a malformed workload.
		return
	}
	// Unmark in decreasing priority order whatever can stay running.
	for i := len(markOrder) - 1; i >= 0; i-- {
		cand := markOrder[i]
		cj := ctl.Job(cand)
		addRigid(cj, -1)
		if rigidFeasible(freeRigid, ji.Job) {
			delete(marked, cand)
			continue
		}
		addRigid(cj, +1)
	}
	for _, cand := range markOrder {
		if marked[cand] {
			ctl.Pause(cand)
		}
	}
	nodes, ok := sched.GreedyPlace(ctl, jid)
	if !ok {
		// The feasibility arithmetic above guarantees placement; reaching
		// this branch indicates an internal inconsistency.
		panic("greedy: forced admission found no placement after pausing candidates")
	}
	ctl.Start(jid, nodes)
}

// resumePaused tries to resume paused jobs in decreasing priority order.
// GREEDY-PMTN skips jobs paused during the current event (they may resume
// at any future event); GREEDY-PMTN-MIGR includes them, and the simulator
// reclassifies a same-event pause+resume to different nodes as a migration.
func (g *Greedy) resumePaused(ctl *sim.Controller) {
	now := ctl.Now()
	paused := sched.ByPriority(ctl, ctl.JobsInState(sim.Paused), now, g.priority, false)
	for _, jid := range paused {
		if !g.migrate && ctl.Job(jid).LastPause == now {
			// Without the migration capability a job paused at this very
			// event must wait for a future event.
			continue
		}
		nodes, ok := sched.GreedyPlace(ctl, jid)
		if !ok {
			continue
		}
		ctl.Resume(jid, nodes)
	}
}
