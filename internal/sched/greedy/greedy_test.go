package greedy

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func jb(id int, submit float64, tasks int, cpu, mem, exec float64) workload.Job {
	return workload.Job{ID: id, Submit: submit, Tasks: tasks, CPUNeed: cpu, MemReq: mem, ExecTime: exec}
}

func run(t *testing.T, name string, penalty float64, nodes int, jobs ...workload.Job) *sim.Result {
	t.Helper()
	alg, err := sched.New(name)
	if err != nil {
		t.Fatal(err)
	}
	tr := &workload.Trace{Name: "greedy-test", Nodes: nodes, NodeMemGB: 8, Jobs: jobs}
	simulator, err := sim.New(sim.Config{Trace: tr, Penalty: penalty, CheckInvariants: true}, alg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulator.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.Validate(res); err != nil {
		t.Fatal(err)
	}
	return res
}

func byID(res *sim.Result) map[int]sim.JobResult {
	out := map[int]sim.JobResult{}
	for _, jr := range res.Jobs {
		out[jr.Job.ID] = jr
	}
	return out
}

func TestGreedySharesCPUFractionally(t *testing.T) {
	// Two CPU-bound jobs on one node: each runs at yield 0.5 and takes
	// 200s — the core DFRS behaviour batch scheduling cannot produce.
	res := run(t, "greedy", 0, 1,
		jb(0, 0, 1, 1.0, 0.3, 100),
		jb(1, 0, 1, 1.0, 0.3, 100),
	)
	for _, jr := range res.Jobs {
		if math.Abs(jr.Turnaround-200) > 1e-6 {
			t.Errorf("job %d turnaround %v, want 200", jr.Job.ID, jr.Turnaround)
		}
	}
}

func TestGreedyAverageYieldHeuristic(t *testing.T) {
	// Memory forces jobs 0 and 2 to share node 0 (load 2.0) while job 1
	// sits alone on node 1 (load 1.0). The uniform minimum yield is 0.5,
	// but the improvement heuristic must give job 1 its node's idle CPU:
	// job 1 finishes in ~100s, the sharing jobs in ~200s.
	res := run(t, "greedy", 0, 2,
		jb(0, 0, 1, 1.0, 0.8, 100),
		jb(1, 0, 1, 1.0, 0.8, 100),
		jb(2, 0, 1, 1.0, 0.2, 100),
	)
	jr := byID(res)
	if math.Abs(jr[1].Turnaround-100) > 1e-6 {
		t.Errorf("solo job turnaround = %v, want 100 (average-yield heuristic)", jr[1].Turnaround)
	}
	if math.Abs(jr[0].Turnaround-200) > 1e-6 || math.Abs(jr[2].Turnaround-200) > 1e-6 {
		t.Errorf("sharing jobs turnarounds = %v, %v, want 200", jr[0].Turnaround, jr[2].Turnaround)
	}
}

func TestGreedyPostponesOnMemoryPressure(t *testing.T) {
	// Job 0 fills the node's memory for 100s; job 1 must wait (backoff)
	// and start only after job 0 finishes. Plain GREEDY never preempts.
	res := run(t, "greedy", 0, 1,
		jb(0, 0, 1, 0.5, 0.9, 100),
		jb(1, 10, 1, 0.5, 0.5, 10),
	)
	jr := byID(res)
	if jr[1].Start < 100 {
		t.Errorf("job 1 started at %v despite full memory", jr[1].Start)
	}
	if res.PreemptionOps != 0 {
		t.Error("plain GREEDY preempted")
	}
	// Backoff: retries at +1, +2, +4, ... after t=10; first success is the
	// retry following t=100, so start <= 138 (10+1+2+4+8+16+32+64 = 137).
	if jr[1].Start > 138+1e-9 {
		t.Errorf("job 1 start %v implies broken backoff", jr[1].Start)
	}
}

func TestGreedyPmtnForcesAdmission(t *testing.T) {
	// Same memory-pressure instance: GREEDY-PMTN pauses the running job
	// to admit the newcomer immediately.
	res := run(t, "greedy-pmtn", 0, 1,
		jb(0, 0, 1, 0.5, 0.9, 100),
		jb(1, 10, 1, 0.5, 0.5, 10),
	)
	jr := byID(res)
	if jr[1].Start != 10 {
		t.Errorf("job 1 start = %v, want 10 (forced admission)", jr[1].Start)
	}
	if jr[0].Pauses == 0 {
		t.Error("running job was not paused")
	}
	// Job 0 resumes after job 1 completes and still finishes.
	if jr[0].Finish <= jr[1].Finish {
		t.Errorf("paused job finished at %v before newcomer at %v", jr[0].Finish, jr[1].Finish)
	}
}

func TestGreedyPmtnSparesHighPriorityJobs(t *testing.T) {
	// Two running jobs: an old one with much virtual time (low priority)
	// and a fresh one (infinite priority, vt=0 at its own admission...).
	// Give the fresh one a tiny head start so it has small vt -> high
	// priority. The incoming job needs one of them paused: it must be the
	// old one.
	res := run(t, "greedy-pmtn", 0, 2,
		jb(0, 0, 1, 0.2, 0.8, 1000),   // old, low priority by t=500
		jb(1, 490, 1, 0.2, 0.8, 1000), // fresh, high priority
		jb(2, 500, 1, 0.2, 0.8, 50),   // incoming, needs a full node's memory
	)
	jr := byID(res)
	if jr[0].Pauses == 0 {
		t.Error("old job (lowest priority) was not the one paused")
	}
	if jr[1].Pauses != 0 {
		t.Error("fresh job (highest priority) was paused")
	}
	if jr[2].Start != 500 {
		t.Errorf("incoming start = %v, want 500", jr[2].Start)
	}
}

func TestGreedyPmtnMigrSameEventMigration(t *testing.T) {
	// GREEDY-PMTN-MIGR may resume a just-paused job elsewhere in the same
	// event. Cluster: 2 nodes. Job 0 (mem 0.6) on node A; job 1 (mem 0.6)
	// on node B; job 2 arrives needing 0.8 memory -> pause one, place job
	// 2; the paused job fits on the other node only if memory allows:
	// 0.6+0.6 > 1, so it cannot migrate here. Use 0.4-memory jobs instead:
	// job0 0.4@A, job1 0.4@B, job2 needs 0.9: pause job0 (say), start
	// job2 on A, resume job0 on B (0.4+0.4 <= 1): a migration.
	res := run(t, "greedy-pmtn-migr", 0, 2,
		jb(0, 0, 1, 0.3, 0.4, 500),
		jb(1, 0, 1, 0.3, 0.4, 500),
		jb(2, 100, 1, 0.3, 0.9, 50),
	)
	if res.MigrationOps == 0 {
		t.Error("expected a same-event migration")
	}
	jr := byID(res)
	if jr[2].Start != 100 {
		t.Errorf("incoming start = %v, want 100", jr[2].Start)
	}
}

func TestGreedyPmtnNoSameEventResume(t *testing.T) {
	// Identical instance under plain GREEDY-PMTN: the paused job may not
	// be resumed within the pausing event, so a migration is impossible
	// and the pause count must be positive.
	res := run(t, "greedy-pmtn", 0, 2,
		jb(0, 0, 1, 0.3, 0.4, 500),
		jb(1, 0, 1, 0.3, 0.4, 500),
		jb(2, 100, 1, 0.3, 0.9, 50),
	)
	if res.MigrationOps != 0 {
		t.Errorf("GREEDY-PMTN migrated %d times; it has no migration capability", res.MigrationOps)
	}
	if res.PreemptionOps == 0 {
		t.Error("expected a preemption")
	}
}

func TestGreedyPmtnResumesInPriorityOrder(t *testing.T) {
	// Three paused jobs with distinct virtual times; when memory frees,
	// the one with the highest priority (least virtual time) resumes
	// first. We approximate by checking that every job eventually
	// finishes and the most-recently-started job resumes earliest.
	res := run(t, "greedy-pmtn", 0, 1,
		jb(0, 0, 1, 0.5, 0.6, 300),
		jb(1, 50, 1, 0.5, 0.6, 300),
		jb(2, 100, 1, 0.5, 0.6, 300),
		jb(3, 150, 1, 0.5, 0.6, 300),
	)
	if len(res.Jobs) != 4 {
		t.Fatalf("only %d jobs finished", len(res.Jobs))
	}
	for _, jr := range res.Jobs {
		if jr.Turnaround < jr.Job.ExecTime-1e-9 {
			t.Errorf("job %d impossibly fast", jr.Job.ID)
		}
	}
}

func TestGreedyPenaltyDelaysResume(t *testing.T) {
	resNoPen := run(t, "greedy-pmtn", 0, 1,
		jb(0, 0, 1, 0.5, 0.9, 100),
		jb(1, 10, 1, 0.5, 0.5, 10),
	)
	resPen := run(t, "greedy-pmtn", 300, 1,
		jb(0, 0, 1, 0.5, 0.9, 100),
		jb(1, 10, 1, 0.5, 0.5, 10),
	)
	a, b := byID(resNoPen), byID(resPen)
	if b[0].Finish <= a[0].Finish {
		t.Errorf("penalty run finished at %v, no-penalty at %v; penalty must delay",
			b[0].Finish, a[0].Finish)
	}
	// The newcomer is unaffected (it never pauses).
	if b[1].Finish != a[1].Finish {
		t.Errorf("newcomer affected by penalty: %v vs %v", b[1].Finish, a[1].Finish)
	}
}

func TestLinprioVariantRuns(t *testing.T) {
	res := run(t, "greedy-pmtn-linprio", 300, 2,
		jb(0, 0, 1, 0.5, 0.6, 100),
		jb(1, 10, 1, 0.5, 0.6, 100),
		jb(2, 20, 1, 0.5, 0.6, 100),
	)
	if len(res.Jobs) != 3 {
		t.Fatalf("only %d jobs finished", len(res.Jobs))
	}
}

func TestRigidFeasible(t *testing.T) {
	free := [][]float64{{0.5, 1.0, 0.25}}
	job := func(tasks int, mem float64, extra ...float64) workload.Job {
		return workload.Job{Tasks: tasks, MemReq: mem, Extra: extra}
	}
	if !rigidFeasible(free, job(3, 0.5)) {
		t.Error("3 tasks of 0.5 fit in (0.5, 1.0): one + two")
	}
	if rigidFeasible(free, job(4, 0.5)) {
		t.Error("4 tasks of 0.5 cannot fit")
	}
	if !rigidFeasible(free, job(1, 0.25)) {
		t.Error("1 task of 0.25 fits")
	}
	if rigidFeasible([][]float64{{}}, job(1, 0.1)) {
		t.Error("no nodes, no fit")
	}
	// A second rigid dimension binds independently: memory would admit two
	// tasks, the GPU row only one.
	twoDim := [][]float64{{1.0, 1.0}, {0.5, 0}}
	if !rigidFeasible(twoDim, job(1, 0.5, 0.5)) {
		t.Error("1 gpu task fits the gpu node")
	}
	if rigidFeasible(twoDim, job(2, 0.5, 0.5)) {
		t.Error("2 gpu tasks cannot fit a single 0.5-gpu node")
	}
	if !rigidFeasible(twoDim, job(2, 0.5)) {
		t.Error("gpu-less job unaffected by the gpu row")
	}
}
