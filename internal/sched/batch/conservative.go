package batch

import (
	"math"
	"sort"

	"repro/internal/sched"
	"repro/internal/sim"
)

func init() {
	sched.Register("conservative", func() sim.Scheduler { return &Conservative{} })
}

// Conservative implements conservative backfilling, the classical
// alternative to EASY in the batch-scheduling literature the paper builds
// its baselines from: *every* queued job holds a reservation (not just the
// head), and a job may only backfill when it delays no reservation at all.
// Like EASY it receives perfect execution-time estimates. It is not part of
// the paper's evaluation but is the natural third batch comparator, and the
// experiment harness accepts it anywhere "fcfs" or "easy" appear.
type Conservative struct {
	wholeNodeAdmission
	pool    *nodePool
	queue   []int
	holding map[int][]int
}

// Name implements sim.Scheduler.
func (c *Conservative) Name() string { return "conservative" }

// Init implements sim.Scheduler.
func (c *Conservative) Init(ctl *sim.Controller) {
	c.pool = newNodePool(ctl.Cluster(), ctl.Objective())
	c.queue = nil
	c.holding = map[int][]int{}
}

// OnArrival implements sim.Scheduler.
func (c *Conservative) OnArrival(ctl *sim.Controller, jid int) {
	c.queue = append(c.queue, jid)
	c.dispatch(ctl)
}

// OnCompletion implements sim.Scheduler.
func (c *Conservative) OnCompletion(ctl *sim.Controller, jid int) {
	c.pool.give(c.holding[jid])
	delete(c.holding, jid)
	c.dispatch(ctl)
}

// OnTimer implements sim.Scheduler; no timers are used.
func (c *Conservative) OnTimer(*sim.Controller, int64) {}

// dispatch runs the conservative scheduling pass: simulate the future node
// availability profile with perfect estimates, give every queued job its
// earliest start in queue order, and start those whose reserved start is
// now.
func (c *Conservative) dispatch(ctl *sim.Controller) {
	for {
		started := c.dispatchOnce(ctl)
		if !started {
			return
		}
	}
}

// dispatchOnce plans reservations for the whole queue and starts at most
// the first job whose reservation is the current instant. Restarting the
// planning after every start keeps the profile exact.
func (c *Conservative) dispatchOnce(ctl *sim.Controller) bool {
	if len(c.queue) == 0 {
		return false
	}
	now := ctl.Now()
	// Build the availability profile from running jobs' exact finish
	// times.
	type release struct {
		t     float64
		tasks int
	}
	var rel []release
	for _, jid := range ctl.JobsInState(sim.Running) {
		rel = append(rel, release{t: ctl.EarliestFinish(jid), tasks: ctl.Job(jid).Job.Tasks})
	}
	sort.Slice(rel, func(a, b int) bool { return rel[a].t < rel[b].t })

	// profile is a step function of available nodes over time, starting
	// with the currently free pool and gaining nodes at each release. As
	// jobs are (virtually) placed, capacity is subtracted from the
	// affected steps.
	times := []float64{now}
	avail := []int{c.pool.freeCount()}
	for _, r := range rel {
		times = append(times, r.t)
		avail = append(avail, avail[len(avail)-1]+r.tasks)
	}
	// earliestStart finds the first time at which `tasks` nodes are
	// available continuously for `duration`.
	earliestStart := func(tasks int, duration float64) (float64, int) {
		for i := 0; i < len(times); i++ {
			if avail[i] < tasks {
				continue
			}
			end := times[i] + duration
			feasible := true
			for k := i + 1; k < len(times) && times[k] < end; k++ {
				if avail[k] < tasks {
					feasible = false
					break
				}
			}
			if feasible {
				return times[i], i
			}
		}
		// The profile ends with the full cluster free; always feasible at
		// its last step.
		return times[len(times)-1], len(times) - 1
	}
	// reserve subtracts capacity from every step the job overlaps,
	// inserting a new step at its end so later steps regain the nodes.
	reserve := func(startIdx int, tasks int, start, duration float64) {
		end := start + duration
		// Insert an end step if needed.
		insertAt := len(times)
		for k := startIdx; k < len(times); k++ {
			if times[k] == end {
				insertAt = -1
				break
			}
			if times[k] > end {
				insertAt = k
				break
			}
		}
		if insertAt >= 0 {
			prev := avail[insertAt-1]
			times = append(times[:insertAt], append([]float64{end}, times[insertAt:]...)...)
			avail = append(avail[:insertAt], append([]int{prev}, avail[insertAt:]...)...)
		}
		for k := startIdx; k < len(times) && times[k] < end; k++ {
			avail[k] -= tasks
		}
	}

	for qi, jid := range c.queue {
		ji := ctl.Job(jid)
		start, idx := earliestStart(ji.Job.Tasks, ji.Job.ExecTime)
		if start <= now+1e-9 {
			// Starts now: take real nodes and dispatch. On a heterogeneous
			// cluster the profile is advisory; the eligibility check here is
			// what keeps every start within per-node capacities.
			if ji.Job.Tasks <= c.pool.freeFor(&ji.Job) {
				nodes := c.pool.takeFor(&ji.Job, ji.Job.Tasks)
				ctl.Start(jid, nodes)
				ctl.SetYield(jid, 1)
				c.holding[jid] = nodes
				c.queue = append(c.queue[:qi], c.queue[qi+1:]...)
				return true
			}
		}
		reserve(idx, ji.Job.Tasks, math.Max(start, now), ji.Job.ExecTime)
	}
	return false
}
