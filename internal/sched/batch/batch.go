// Package batch implements the paper's two baseline batch-scheduling
// algorithms (Section IV-B): FCFS, which starts queued jobs strictly in
// submission order as whole nodes free up, and EASY backfilling, which
// additionally lets later jobs jump ahead when doing so does not delay the
// reservation of the queue's head job. As in the paper, EASY is granted
// perfect knowledge of job execution times, while the DFRS algorithms get
// none.
//
// Batch allocations are integral and exclusive: each task receives a whole
// node and the job runs with yield 1.0 from start to finish; batch
// schedulers never preempt or migrate. On a heterogeneous cluster a node is
// eligible for a job only if its capacities cover the per-task CPU need and
// memory requirement at full speed; on the paper's homogeneous platform
// every node is eligible for every valid job, reproducing the published
// algorithms exactly.
package batch

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/sim/index"
	"repro/internal/workload"
)

func init() {
	sched.Register("fcfs", func() sim.Scheduler { return &FCFS{} })
	sched.Register("easy", func() sim.Scheduler { return &EASY{} })
}

// nodePool tracks which nodes are exclusively held by batch jobs and which
// of them can host a given job's tasks at yield 1.0. The CPU and memory
// capacities are cached as flat arrays because the eligibility predicate
// sits in the dispatch and reservation hot loops. Nodes are additionally
// grouped into capacity classes (identical capacity vectors): eligibility
// depends only on a node's capacities, so the eligible-free count collapses
// to one fits check per class against a running per-class free count —
// O(classes) instead of O(free nodes) per query, with one or two classes on
// the paper's platforms. The objective, when non-nil, selects which
// eligible free nodes a job takes (see takeFor); nil is the published rule
// — node-id order, the First objective.
type nodePool struct {
	cl             *cluster.Cluster
	cpuCap, memCap []float64 // per-node caches of dimensions 0/1
	multiDim       bool      // cluster has dimensions beyond (cpu, mem)
	free           []int     // sorted free node ids
	obj            placement.Objective

	classOf   []int  // node -> capacity class
	reps      []int  // class -> lowest-numbered member node
	classFree []int  // class -> number of free nodes
	classFits []bool // scratch: class -> fits result for one job
}

func newNodePool(cl *cluster.Cluster, obj placement.Objective) *nodePool {
	n := cl.N()
	p := &nodePool{
		cl:       cl,
		cpuCap:   make([]float64, n),
		memCap:   make([]float64, n),
		multiDim: cl.D() > cluster.MinDims,
		free:     make([]int, n),
		obj:      obj,
	}
	for i := range p.free {
		p.free[i] = i
		p.cpuCap[i] = cl.CPUCap(i)
		p.memCap[i] = cl.MemCap(i)
	}
	p.classOf, p.reps = index.Classes(cl.Nodes)
	p.classFree = make([]int, len(p.reps))
	p.classFits = make([]bool, len(p.reps))
	for _, node := range p.free {
		p.classFree[p.classOf[node]]++
	}
	return p
}

// poolState adapts the pool to placement.State. Batch allocations are
// integral and exclusive, so every candidate (free) node is fully idle:
// free capacity is the node's own capacity and the CPU load is zero.
type poolState struct{ p *nodePool }

// Dims implements placement.State.
func (s poolState) Dims() int { return s.p.cl.D() }

// Cap implements placement.State.
func (s poolState) Cap(node, k int) float64 { return s.p.cl.Cap(node, k) }

// Free implements placement.State.
func (s poolState) Free(node, k int) float64 { return s.p.cl.Cap(node, k) }

// CPULoad implements placement.State.
func (s poolState) CPULoad(int) float64 { return 0 }

// Cost implements placement.State.
func (s poolState) Cost(node int) float64 { return s.p.cl.Nodes[node].Cost }

// nodeFits reports whether a node can exclusively host one task of the job
// at full speed: its capacity covers the per-task demand in every resource
// dimension (a job demanding a dimension the cluster lacks fits nowhere).
func nodeFits(cl *cluster.Cluster, node int, j *workload.Job) bool {
	caps := cl.Nodes[node].Caps
	if caps[cluster.DimCPU] < j.CPUNeed || caps[cluster.DimMem] < j.MemReq {
		return false
	}
	return nodeFitsExtra(cl, node, j)
}

// nodeFitsExtra checks only the dimensions beyond the (cpu, mem) pair —
// the node's extra capacities and any job demand past the cluster's
// dimensions.
func nodeFitsExtra(cl *cluster.Cluster, node int, j *workload.Job) bool {
	caps := cl.Nodes[node].Caps
	for k := cluster.MinDims; k < len(caps); k++ {
		if caps[k] < j.Demand(k) {
			return false
		}
	}
	for k := len(caps); k < j.Dims(); k++ {
		if j.Demand(k) > 0 {
			return false
		}
	}
	return true
}

// fits reports whether a node can exclusively host one task of the job.
// The CPU/memory comparisons run against the pool's flat caches — this
// predicate sits in the dispatch and reservation hot loops — and only the
// dimensions beyond the pair go through the generic path.
func (p *nodePool) fits(node int, j *workload.Job) bool {
	if p.cpuCap[node] < j.CPUNeed || p.memCap[node] < j.MemReq {
		return false
	}
	if !p.multiDim && len(j.Extra) == 0 {
		return true
	}
	return nodeFitsExtra(p.cl, node, j)
}

// wholeNodeAdmission implements sim.CapacityChecker for the batch family:
// allocations are integral and exclusive, so a job is only ever served
// when at least Tasks distinct nodes are eligible for it. On platforms
// where eligibility is partial — a GPU job on a cluster where only some
// nodes carry GPUs — a job with more tasks than eligible nodes would
// otherwise block the FIFO queue forever; the simulator rejects such
// (scheduler, trace, cluster) combinations eagerly instead.
type wholeNodeAdmission struct{}

// CheckJob implements sim.CapacityChecker.
func (wholeNodeAdmission) CheckJob(cl *cluster.Cluster, j workload.Job) error {
	eligible := 0
	for node := 0; node < cl.N(); node++ {
		if nodeFits(cl, node, &j) {
			eligible++
			if eligible >= j.Tasks {
				return nil
			}
		}
	}
	return fmt.Errorf("batch: job %d needs %d exclusive nodes but only %d of %d nodes can host its tasks",
		j.ID, j.Tasks, eligible, cl.N())
}

// freeCount counts all free nodes regardless of eligibility (used by the
// conservative planner's availability profile, which is exact on a
// homogeneous cluster and advisory on a heterogeneous one).
func (p *nodePool) freeCount() int { return len(p.free) }

// fitsFor evaluates the eligibility predicate once per capacity class into
// the classFits scratch. fits depends only on a node's capacities, so the
// representative's answer holds for every member of its class.
func (p *nodePool) fitsFor(j *workload.Job) []bool {
	for c, rep := range p.reps {
		p.classFits[c] = p.fits(rep, j)
	}
	return p.classFits
}

// freeFor counts the free nodes eligible for the job: the sum of the
// per-class free counts over eligible classes.
func (p *nodePool) freeFor(j *workload.Job) int {
	n := 0
	for c, rep := range p.reps {
		if p.classFree[c] > 0 && p.fits(rep, j) {
			n += p.classFree[c]
		}
	}
	return n
}

// takeFor removes and returns k free nodes eligible for the job: the
// first k in node-id order (deterministic, the published rule) with no
// objective configured, or the k best under the objective's score (ties by
// id) otherwise. The caller must have checked freeFor(j) >= k.
func (p *nodePool) takeFor(j *workload.Job, k int) []int {
	if p.obj != nil {
		return p.takeForObjective(j, k)
	}
	nodes := make([]int, 0, k)
	kept := p.free[:0]
	for _, node := range p.free {
		if len(nodes) < k && p.fits(node, j) {
			nodes = append(nodes, node)
			p.classFree[p.classOf[node]]--
			continue
		}
		kept = append(kept, node)
	}
	p.free = kept
	return nodes
}

// takeForObjective is the objective-scored variant of takeFor: rank the
// eligible free nodes by ascending (score, id) and take the k best.
func (p *nodePool) takeForObjective(j *workload.Job, k int) []int {
	eligible := make([]int, 0, len(p.free))
	for _, node := range p.free {
		if p.fits(node, j) {
			eligible = append(eligible, node)
		}
	}
	ranked := placement.Rank(eligible, j.Demand, poolState{p}, p.obj)
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	taken := make(map[int]bool, len(ranked))
	for _, node := range ranked {
		taken[node] = true
	}
	kept := p.free[:0]
	for _, node := range p.free {
		if !taken[node] {
			kept = append(kept, node)
		} else {
			p.classFree[p.classOf[node]]--
		}
	}
	p.free = kept
	return ranked
}

// give returns nodes to the pool, keeping it sorted for determinism.
func (p *nodePool) give(nodes []int) {
	p.free = append(p.free, nodes...)
	sort.Ints(p.free)
	for _, node := range nodes {
		p.classFree[p.classOf[node]]++
	}
}

// FCFS is the First-Come-First-Serve baseline: a strict FIFO queue with no
// backfilling. The head of the queue blocks all later jobs until enough
// nodes are free.
type FCFS struct {
	wholeNodeAdmission
	pool    *nodePool
	queue   []int
	holding map[int][]int // jid -> nodes held (the simulator clears a job's
	// node list on completion, so batch schedulers do their own bookkeeping)
}

// Name implements sim.Scheduler.
func (f *FCFS) Name() string { return "fcfs" }

// Init implements sim.Scheduler.
func (f *FCFS) Init(ctl *sim.Controller) {
	f.pool = newNodePool(ctl.Cluster(), ctl.Objective())
	f.queue = nil
	f.holding = map[int][]int{}
}

// OnArrival implements sim.Scheduler.
func (f *FCFS) OnArrival(ctl *sim.Controller, jid int) {
	f.queue = append(f.queue, jid)
	f.dispatch(ctl)
}

// OnCompletion implements sim.Scheduler.
func (f *FCFS) OnCompletion(ctl *sim.Controller, jid int) {
	f.pool.give(f.holding[jid])
	delete(f.holding, jid)
	f.dispatch(ctl)
}

// OnTimer implements sim.Scheduler; FCFS arms no timers.
func (f *FCFS) OnTimer(*sim.Controller, int64) {}

func (f *FCFS) dispatch(ctl *sim.Controller) {
	for len(f.queue) > 0 {
		jid := f.queue[0]
		head := ctl.JobRef(jid)
		if head.Tasks > f.pool.freeFor(head) {
			return
		}
		nodes := f.pool.takeFor(head, head.Tasks)
		ctl.Start(jid, nodes)
		ctl.SetYield(jid, 1)
		f.holding[jid] = nodes
		f.queue = f.queue[1:]
	}
}

// EASY is the EASY-backfilling baseline: FCFS plus backfilling of later
// queued jobs whenever they cannot delay the earliest-possible start of the
// queue's head job, computed from perfect execution-time estimates.
type EASY struct {
	wholeNodeAdmission
	pool    *nodePool
	queue   []int
	holding map[int][]int

	runBuf []int     // scratch: running jobs, reused across reservations
	rel    []release // scratch: pending releases, reused across reservations
}

// release is one running job's contribution to the head reservation: at
// time t it frees tasks head-eligible nodes.
type release struct {
	t     float64
	tasks int
}

// Name implements sim.Scheduler.
func (e *EASY) Name() string { return "easy" }

// Init implements sim.Scheduler.
func (e *EASY) Init(ctl *sim.Controller) {
	e.pool = newNodePool(ctl.Cluster(), ctl.Objective())
	e.queue = nil
	e.holding = map[int][]int{}
}

// OnArrival implements sim.Scheduler.
func (e *EASY) OnArrival(ctl *sim.Controller, jid int) {
	e.queue = append(e.queue, jid)
	e.dispatch(ctl)
}

// OnCompletion implements sim.Scheduler.
func (e *EASY) OnCompletion(ctl *sim.Controller, jid int) {
	e.pool.give(e.holding[jid])
	delete(e.holding, jid)
	e.dispatch(ctl)
}

// OnTimer implements sim.Scheduler; EASY arms no timers.
func (e *EASY) OnTimer(*sim.Controller, int64) {}

func (e *EASY) start(ctl *sim.Controller, jid int) {
	j := ctl.JobRef(jid)
	nodes := e.pool.takeFor(j, j.Tasks)
	ctl.Start(jid, nodes)
	ctl.SetYield(jid, 1)
	e.holding[jid] = nodes
}

func (e *EASY) dispatch(ctl *sim.Controller) {
	// Start jobs in FIFO order while they fit.
	for len(e.queue) > 0 {
		j := ctl.JobRef(e.queue[0])
		if j.Tasks > e.pool.freeFor(j) {
			break
		}
		e.start(ctl, e.queue[0])
		e.queue = e.queue[1:]
	}
	if len(e.queue) == 0 {
		return
	}
	// The head cannot start: give it a reservation at the earliest time
	// enough eligible nodes will be free, then backfill later jobs that do
	// not interfere with that reservation.
	for i := 1; i < len(e.queue); {
		jid := e.queue[i]
		j := ctl.JobRef(jid)
		if j.Tasks > e.pool.freeFor(j) {
			i++
			continue
		}
		shadow, extra := e.reservation(ctl)
		finish := ctl.Now() + j.ExecTime
		if finish <= shadow || j.Tasks <= extra {
			e.start(ctl, jid)
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			// A started job changes the free pool (and possibly the
			// reservation); rescan from the front of the backfill
			// candidates.
			i = 1
			continue
		}
		i++
	}
}

// reservation computes, with perfect estimates, the shadow time at which
// the head job can start (when cumulative releases of head-eligible nodes
// plus currently free head-eligible nodes first cover its size) and the
// number of extra nodes: head-eligible nodes free at the shadow time beyond
// what the head job needs. A backfill job that finishes before the shadow
// time, or that is small enough to fit in the extra nodes, cannot delay the
// head. On a homogeneous cluster every node is head-eligible and this is
// exactly classical EASY backfilling.
func (e *EASY) reservation(ctl *sim.Controller) (shadow float64, extra int) {
	head := ctl.JobRef(e.queue[0])
	need := head.Tasks
	avail := e.pool.freeFor(head)
	if avail >= need {
		return ctl.Now(), avail - need
	}
	// Head eligibility depends only on node capacities: resolve it once per
	// capacity class, then count each running job's held nodes by class.
	classFits := e.pool.fitsFor(head)
	classOf := e.pool.classOf
	rel := e.rel[:0]
	e.runBuf = ctl.AppendJobsInState(e.runBuf[:0], sim.Running)
	for _, jid := range e.runBuf {
		eligible := 0
		for _, node := range e.holding[jid] {
			if classFits[classOf[node]] {
				eligible++
			}
		}
		if eligible > 0 {
			rel = append(rel, release{t: ctl.EarliestFinish(jid), tasks: eligible})
		}
	}
	e.rel = rel
	sort.Slice(rel, func(a, b int) bool { return rel[a].t < rel[b].t })
	for _, r := range rel {
		avail += r.tasks
		if avail >= need {
			return r.t, avail - need
		}
	}
	// Unreachable for valid traces (job size <= cluster size), but keep a
	// safe fallback: no backfilling allowed.
	return ctl.Now(), 0
}
