// Package batch implements the paper's two baseline batch-scheduling
// algorithms (Section IV-B): FCFS, which starts queued jobs strictly in
// submission order as whole nodes free up, and EASY backfilling, which
// additionally lets later jobs jump ahead when doing so does not delay the
// reservation of the queue's head job. As in the paper, EASY is granted
// perfect knowledge of job execution times, while the DFRS algorithms get
// none.
//
// Batch allocations are integral and exclusive: each task receives a whole
// node and the job runs with yield 1.0 from start to finish; batch
// schedulers never preempt or migrate.
package batch

import (
	"sort"

	"repro/internal/sched"
	"repro/internal/sim"
)

func init() {
	sched.Register("fcfs", func() sim.Scheduler { return &FCFS{} })
	sched.Register("easy", func() sim.Scheduler { return &EASY{} })
}

// nodePool tracks which nodes are exclusively held by batch jobs.
type nodePool struct {
	free []int // sorted free node ids
}

func newNodePool(n int) *nodePool {
	p := &nodePool{free: make([]int, n)}
	for i := range p.free {
		p.free[i] = i
	}
	return p
}

func (p *nodePool) freeCount() int { return len(p.free) }

// take removes and returns k nodes from the pool.
func (p *nodePool) take(k int) []int {
	nodes := append([]int(nil), p.free[:k]...)
	p.free = p.free[k:]
	return nodes
}

// give returns nodes to the pool, keeping it sorted for determinism.
func (p *nodePool) give(nodes []int) {
	p.free = append(p.free, nodes...)
	sort.Ints(p.free)
}

// FCFS is the First-Come-First-Serve baseline: a strict FIFO queue with no
// backfilling. The head of the queue blocks all later jobs until enough
// nodes are free.
type FCFS struct {
	pool    *nodePool
	queue   []int
	holding map[int][]int // jid -> nodes held (the simulator clears a job's
	// node list on completion, so batch schedulers do their own bookkeeping)
}

// Name implements sim.Scheduler.
func (f *FCFS) Name() string { return "fcfs" }

// Init implements sim.Scheduler.
func (f *FCFS) Init(ctl *sim.Controller) {
	f.pool = newNodePool(ctl.NumNodes())
	f.queue = nil
	f.holding = map[int][]int{}
}

// OnArrival implements sim.Scheduler.
func (f *FCFS) OnArrival(ctl *sim.Controller, jid int) {
	f.queue = append(f.queue, jid)
	f.dispatch(ctl)
}

// OnCompletion implements sim.Scheduler.
func (f *FCFS) OnCompletion(ctl *sim.Controller, jid int) {
	f.pool.give(f.holding[jid])
	delete(f.holding, jid)
	f.dispatch(ctl)
}

// OnTimer implements sim.Scheduler; FCFS arms no timers.
func (f *FCFS) OnTimer(*sim.Controller, int64) {}

func (f *FCFS) dispatch(ctl *sim.Controller) {
	for len(f.queue) > 0 {
		head := ctl.Job(f.queue[0])
		if head.Job.Tasks > f.pool.freeCount() {
			return
		}
		nodes := f.pool.take(head.Job.Tasks)
		ctl.Start(head.JID, nodes)
		ctl.SetYield(head.JID, 1)
		f.holding[head.JID] = nodes
		f.queue = f.queue[1:]
	}
}

// EASY is the EASY-backfilling baseline: FCFS plus backfilling of later
// queued jobs whenever they cannot delay the earliest-possible start of the
// queue's head job, computed from perfect execution-time estimates.
type EASY struct {
	pool    *nodePool
	queue   []int
	holding map[int][]int
}

// Name implements sim.Scheduler.
func (e *EASY) Name() string { return "easy" }

// Init implements sim.Scheduler.
func (e *EASY) Init(ctl *sim.Controller) {
	e.pool = newNodePool(ctl.NumNodes())
	e.queue = nil
	e.holding = map[int][]int{}
}

// OnArrival implements sim.Scheduler.
func (e *EASY) OnArrival(ctl *sim.Controller, jid int) {
	e.queue = append(e.queue, jid)
	e.dispatch(ctl)
}

// OnCompletion implements sim.Scheduler.
func (e *EASY) OnCompletion(ctl *sim.Controller, jid int) {
	e.pool.give(e.holding[jid])
	delete(e.holding, jid)
	e.dispatch(ctl)
}

// OnTimer implements sim.Scheduler; EASY arms no timers.
func (e *EASY) OnTimer(*sim.Controller, int64) {}

func (e *EASY) start(ctl *sim.Controller, jid int) {
	nodes := e.pool.take(ctl.Job(jid).Job.Tasks)
	ctl.Start(jid, nodes)
	ctl.SetYield(jid, 1)
	e.holding[jid] = nodes
}

func (e *EASY) dispatch(ctl *sim.Controller) {
	// Start jobs in FIFO order while they fit.
	for len(e.queue) > 0 && ctl.Job(e.queue[0]).Job.Tasks <= e.pool.freeCount() {
		e.start(ctl, e.queue[0])
		e.queue = e.queue[1:]
	}
	if len(e.queue) == 0 {
		return
	}
	// The head cannot start: give it a reservation at the earliest time
	// enough nodes will be free, then backfill later jobs that do not
	// interfere with that reservation.
	for i := 1; i < len(e.queue); {
		jid := e.queue[i]
		ji := ctl.Job(jid)
		if ji.Job.Tasks > e.pool.freeCount() {
			i++
			continue
		}
		shadow, extra := e.reservation(ctl)
		finish := ctl.Now() + ji.Job.ExecTime
		if finish <= shadow || ji.Job.Tasks <= extra {
			e.start(ctl, jid)
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			// A started job changes the free pool (and possibly the
			// reservation); rescan from the front of the backfill
			// candidates.
			i = 1
			continue
		}
		i++
	}
}

// reservation computes, with perfect estimates, the shadow time at which
// the head job can start (when cumulative releases plus currently free
// nodes first cover its size) and the number of extra nodes: nodes free at
// the shadow time beyond what the head job needs. A backfill job that
// finishes before the shadow time, or that is small enough to fit in the
// extra nodes, cannot delay the head.
func (e *EASY) reservation(ctl *sim.Controller) (shadow float64, extra int) {
	need := ctl.Job(e.queue[0]).Job.Tasks
	avail := e.pool.freeCount()
	if avail >= need {
		return ctl.Now(), avail - need
	}
	type release struct {
		t     float64
		tasks int
	}
	var rel []release
	for _, jid := range ctl.JobsInState(sim.Running) {
		rel = append(rel, release{t: ctl.EarliestFinish(jid), tasks: ctl.Job(jid).Job.Tasks})
	}
	sort.Slice(rel, func(a, b int) bool { return rel[a].t < rel[b].t })
	for _, r := range rel {
		avail += r.tasks
		if avail >= need {
			return r.t, avail - need
		}
	}
	// Unreachable for valid traces (job size <= cluster size), but keep a
	// safe fallback: no backfilling allowed.
	return ctl.Now(), 0
}
