package batch

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

func jb(id int, submit float64, tasks int, exec float64) workload.Job {
	return workload.Job{ID: id, Submit: submit, Tasks: tasks, CPUNeed: 1.0, MemReq: 0.1, ExecTime: exec}
}

func run(t *testing.T, alg sim.Scheduler, nodes int, jobs ...workload.Job) *sim.Result {
	t.Helper()
	tr := &workload.Trace{Name: "batch-test", Nodes: nodes, NodeMemGB: 8, Jobs: jobs}
	simulator, err := sim.New(sim.Config{Trace: tr, CheckInvariants: true}, alg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulator.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.Validate(res); err != nil {
		t.Fatal(err)
	}
	return res
}

func byID(res *sim.Result) map[int]sim.JobResult {
	out := map[int]sim.JobResult{}
	for _, jr := range res.Jobs {
		out[jr.Job.ID] = jr
	}
	return out
}

func TestFCFSSequencing(t *testing.T) {
	// 2 nodes. Job 0 takes both for 100s; jobs 1 and 2 (1 node each)
	// queue and start together at t=100.
	res := run(t, &FCFS{}, 2,
		jb(0, 0, 2, 100),
		jb(1, 10, 1, 50),
		jb(2, 20, 1, 50),
	)
	jr := byID(res)
	if jr[0].Start != 0 || jr[0].Finish != 100 {
		t.Errorf("job 0: %+v", jr[0])
	}
	if jr[1].Start != 100 || jr[2].Start != 100 {
		t.Errorf("queued jobs started at %v and %v, want 100", jr[1].Start, jr[2].Start)
	}
}

func TestFCFSHeadOfLineBlocking(t *testing.T) {
	// 2 nodes. Job 0 uses one node for 100s. Job 1 needs both nodes and
	// blocks job 2, which needs only the free node — strict FCFS must NOT
	// let job 2 jump ahead.
	res := run(t, &FCFS{}, 2,
		jb(0, 0, 1, 100),
		jb(1, 10, 2, 50),
		jb(2, 20, 1, 10),
	)
	jr := byID(res)
	if jr[1].Start != 100 {
		t.Errorf("job 1 start = %v, want 100", jr[1].Start)
	}
	if jr[2].Start < jr[1].Start {
		t.Errorf("FCFS let job 2 (start %v) pass job 1 (start %v)", jr[2].Start, jr[1].Start)
	}
}

func TestEASYBackfills(t *testing.T) {
	// Same instance as the blocking test: EASY backfills job 2 into the
	// idle node because it finishes (t=30) before job 1's reservation
	// (t=100).
	res := run(t, &EASY{}, 2,
		jb(0, 0, 1, 100),
		jb(1, 10, 2, 50),
		jb(2, 20, 1, 10),
	)
	jr := byID(res)
	if jr[2].Start != 20 {
		t.Errorf("job 2 start = %v, want 20 (backfilled)", jr[2].Start)
	}
	if jr[1].Start != 100 {
		t.Errorf("job 1 start = %v, want 100 (reservation honored)", jr[1].Start)
	}
}

func TestEASYDoesNotDelayReservation(t *testing.T) {
	// Backfill candidate would run past the reservation and needs the
	// reserved node: it must wait.
	res := run(t, &EASY{}, 2,
		jb(0, 0, 1, 100),  // node until t=100
		jb(1, 10, 2, 50),  // reservation at t=100 for both nodes
		jb(2, 20, 1, 500), // would block the reservation until t=520
	)
	jr := byID(res)
	if jr[1].Start != 100 {
		t.Errorf("job 1 start = %v, want 100", jr[1].Start)
	}
	if jr[2].Start < jr[1].Start {
		t.Errorf("job 2 (start %v) delayed the reservation", jr[2].Start)
	}
}

func TestEASYBackfillsOnExtraNodes(t *testing.T) {
	// 3 nodes. Job 0 holds 1 node for 100s; job 1 needs 2 nodes -> it can
	// start immediately... make job 0 hold 2 nodes instead. Job 1 needs 2
	// nodes, reservation at t=100 using the freed nodes plus the spare;
	// the spare count at reservation time is 1, so a long 1-node job 2
	// may backfill onto the extra node even though it outlives the
	// reservation.
	res := run(t, &EASY{}, 3,
		jb(0, 0, 2, 100),
		jb(1, 10, 2, 50),
		jb(2, 20, 1, 500),
	)
	jr := byID(res)
	if jr[2].Start != 20 {
		t.Errorf("job 2 start = %v, want 20 (fits in extra nodes)", jr[2].Start)
	}
	if jr[1].Start != 100 {
		t.Errorf("job 1 start = %v, want 100", jr[1].Start)
	}
}

func TestBatchNeverPreempts(t *testing.T) {
	res := run(t, &EASY{}, 2,
		jb(0, 0, 2, 50), jb(1, 5, 1, 30), jb(2, 9, 2, 40), jb(3, 11, 1, 20),
	)
	if res.PreemptionOps != 0 || res.MigrationOps != 0 {
		t.Errorf("batch scheduler preempted/migrated: %d/%d", res.PreemptionOps, res.MigrationOps)
	}
	for _, jr := range res.Jobs {
		// Exclusive nodes at yield 1: runtime equals execution time.
		if math.Abs((jr.Finish-jr.Start)-jr.Job.ExecTime) > 1e-9 {
			t.Errorf("job %d ran %v, want %v", jr.Job.ID, jr.Finish-jr.Start, jr.Job.ExecTime)
		}
	}
}

func TestFCFSFullClusterJob(t *testing.T) {
	res := run(t, &FCFS{}, 4,
		jb(0, 0, 4, 10),
		jb(1, 1, 4, 10),
	)
	jr := byID(res)
	if jr[0].Start != 0 || jr[1].Start != 10 {
		t.Errorf("starts: %v, %v", jr[0].Start, jr[1].Start)
	}
}

func TestNodePool(t *testing.T) {
	p := newNodePool(cluster.Homogeneous(4), nil)
	j := workload.Job{Tasks: 3, CPUNeed: 0.5, MemReq: 0.5}
	if p.freeCount() != 4 || p.freeFor(&j) != 4 {
		t.Fatalf("freeCount = %d, freeFor = %d", p.freeCount(), p.freeFor(&j))
	}
	taken := p.takeFor(&j, 3)
	if len(taken) != 3 || p.freeCount() != 1 {
		t.Fatalf("take: %v, free %d", taken, p.freeCount())
	}
	p.give(taken[1:2])
	if p.freeCount() != 2 {
		t.Fatalf("give: free %d", p.freeCount())
	}
	// Pool stays sorted for determinism.
	if p.free[0] > p.free[1] {
		t.Errorf("pool unsorted: %v", p.free)
	}
}

// TestNodePoolEligibility: a thin node is skipped for jobs its capacities
// cannot host at full speed, while still counting as free for others.
func TestNodePoolEligibility(t *testing.T) {
	p := newNodePool(cluster.New([]cluster.NodeSpec{
		cluster.Spec(0.5, 0.5),
		cluster.Spec(1, 1),
		cluster.Spec(2, 2),
	}), nil)
	big := workload.Job{Tasks: 1, CPUNeed: 0.8, MemReq: 0.8}
	small := workload.Job{Tasks: 1, CPUNeed: 0.3, MemReq: 0.3}
	if p.freeFor(&big) != 2 || p.freeFor(&small) != 3 {
		t.Fatalf("freeFor: big %d small %d", p.freeFor(&big), p.freeFor(&small))
	}
	// takeFor skips the ineligible thin node 0.
	taken := p.takeFor(&big, 2)
	if len(taken) != 2 || taken[0] != 1 || taken[1] != 2 {
		t.Fatalf("takeFor(&big, 2) = %v, want [1 2]", taken)
	}
	if p.freeCount() != 1 || p.freeFor(&big) != 0 {
		t.Errorf("after take: free %d, freeFor(&big) %d", p.freeCount(), p.freeFor(&big))
	}
}
