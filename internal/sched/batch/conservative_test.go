package batch

import "testing"

func TestConservativeBasicSequencing(t *testing.T) {
	res := run(t, &Conservative{}, 2,
		jb(0, 0, 2, 100),
		jb(1, 10, 1, 50),
		jb(2, 20, 1, 50),
	)
	jr := byID(res)
	if jr[0].Start != 0 {
		t.Errorf("job 0 start = %v", jr[0].Start)
	}
	if jr[1].Start != 100 || jr[2].Start != 100 {
		t.Errorf("queued jobs started at %v and %v, want 100", jr[1].Start, jr[2].Start)
	}
}

func TestConservativeBackfills(t *testing.T) {
	// job 0: 1 node until 100. job 1: 2 nodes, reserved at 100. job 2:
	// 1 node for 10s fits before the reservation.
	res := run(t, &Conservative{}, 2,
		jb(0, 0, 1, 100),
		jb(1, 10, 2, 50),
		jb(2, 20, 1, 10),
	)
	jr := byID(res)
	if jr[2].Start != 20 {
		t.Errorf("job 2 start = %v, want 20 (backfilled)", jr[2].Start)
	}
	if jr[1].Start != 100 {
		t.Errorf("job 1 start = %v, want 100", jr[1].Start)
	}
}

func TestConservativeProtectsAllReservations(t *testing.T) {
	// Unlike EASY, conservative backfilling must not delay the *second*
	// queued job either. Setup: 2 nodes.
	//   job 0: 2 nodes, 0-100.
	//   job 1: 2 nodes, reserved 100-200.
	//   job 2: 1 node, reserved 200-300 (after job 1).
	//   job 3: 1 node, 150s long, arrives last.
	// EASY would backfill job 3 at t=200 alongside job 2 — fine. But
	// conservative gives job 3 a reservation honoring jobs 1 and 2; the
	// key assertion is that neither job 1 nor job 2 starts later than its
	// reservation because of job 3.
	res := run(t, &Conservative{}, 2,
		jb(0, 0, 2, 100),
		jb(1, 10, 2, 100),
		jb(2, 20, 1, 100),
		jb(3, 30, 1, 150),
	)
	jr := byID(res)
	if jr[1].Start != 100 {
		t.Errorf("job 1 start = %v, want 100", jr[1].Start)
	}
	if jr[2].Start != 200 {
		t.Errorf("job 2 start = %v, want 200", jr[2].Start)
	}
	// Job 3 can share the window with job 2 (both 1-node): start 200 too.
	if jr[3].Start != 200 {
		t.Errorf("job 3 start = %v, want 200", jr[3].Start)
	}
}

func TestConservativeNeverPreempts(t *testing.T) {
	res := run(t, &Conservative{}, 3,
		jb(0, 0, 2, 60), jb(1, 5, 3, 30), jb(2, 9, 1, 45), jb(3, 11, 2, 20),
	)
	if res.PreemptionOps != 0 || res.MigrationOps != 0 {
		t.Errorf("conservative preempted/migrated: %d/%d", res.PreemptionOps, res.MigrationOps)
	}
	if len(res.Jobs) != 4 {
		t.Fatalf("%d jobs finished", len(res.Jobs))
	}
}
