package batch

// Frozen-copy lock for the batch family's eligible-node choice: the PR 4
// takeFor loop (first k eligible free nodes in id order), kept here
// verbatim, must match both the refactored nil-objective path and the
// placement-routed path under the First objective over random pools.

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/placement"
	"repro/internal/workload"
)

// legacyTakeFor is the PR 4 nodePool.takeFor, frozen verbatim (operating
// on a copy of the free list so the pool can be reused).
func legacyTakeFor(p *nodePool, j *workload.Job, k int) (nodes, kept []int) {
	free := append([]int(nil), p.free...)
	nodes = make([]int, 0, k)
	kept = free[:0]
	for _, node := range free {
		if len(nodes) < k && p.fits(node, j) {
			nodes = append(nodes, node)
			continue
		}
		kept = append(kept, node)
	}
	return nodes, kept
}

// randomPool builds a pool over a random heterogeneous cluster with a
// random subset of nodes free.
func randomPool(r *rand.Rand, obj placement.Objective) *nodePool {
	n := 3 + r.Intn(12)
	specs := make([]cluster.NodeSpec, n)
	for i := range specs {
		caps := cluster.Vec{1 + float64(r.Intn(2)), 1 + float64(r.Intn(2)), float64(r.Intn(2))}
		specs[i] = cluster.NodeSpec{Caps: caps, Cost: float64(r.Intn(3))}
	}
	p := newNodePool(cluster.New(specs), obj)
	// Hold a random subset.
	kept := p.free[:0]
	for _, node := range p.free {
		if r.Intn(3) != 0 {
			kept = append(kept, node)
		}
	}
	p.free = kept
	return p
}

func randomBatchJob(r *rand.Rand) workload.Job {
	j := workload.Job{
		Tasks:   1 + r.Intn(4),
		CPUNeed: 0.1 + 1.4*r.Float64(),
		MemReq:  0.1 + 1.4*r.Float64(),
	}
	if r.Intn(2) == 0 {
		j.Extra = []float64{r.Float64()}
	}
	return j
}

func TestTakeForMatchesFrozenPR4Copy(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 300; trial++ {
		seed := r.Int63()
		j := randomBatchJob(rand.New(rand.NewSource(seed)))
		for _, obj := range []placement.Objective{nil, placement.First{}} {
			rr := rand.New(rand.NewSource(seed))
			_ = randomBatchJob(rr) // re-sync the stream
			p := randomPool(rr, obj)
			wantNodes, wantKept := legacyTakeFor(p, &j, j.Tasks)
			if len(wantNodes) < j.Tasks {
				continue // not enough eligible nodes; takeFor contract not met
			}
			gotNodes := p.takeFor(&j, j.Tasks)
			if !reflect.DeepEqual(gotNodes, wantNodes) {
				t.Fatalf("trial %d obj %v: takeFor = %v, frozen copy = %v", trial, obj, gotNodes, wantNodes)
			}
			if !reflect.DeepEqual(p.free, wantKept) {
				t.Fatalf("trial %d obj %v: remaining pool %v, frozen copy %v", trial, obj, p.free, wantKept)
			}
		}
	}
}

// TestTakeForCostObjective: with the cost objective the pool hands out the
// cheapest eligible nodes.
func TestTakeForCostObjective(t *testing.T) {
	specs := []cluster.NodeSpec{
		cluster.Spec(1, 1).WithCost(3),
		cluster.Spec(1, 1).WithCost(1),
		cluster.Spec(1, 1).WithCost(2),
		cluster.Spec(1, 1).WithCost(1),
	}
	p := newNodePool(cluster.New(specs), placement.Cost{})
	j := workload.Job{Tasks: 2, CPUNeed: 0.5, MemReq: 0.5}
	got := p.takeFor(&j, 2)
	if !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("cost objective took %v, want the two cost-1 nodes [1 3]", got)
	}
	if !reflect.DeepEqual(p.free, []int{0, 2}) {
		t.Fatalf("pool left with %v, want [0 2]", p.free)
	}
}
