// Package sched provides the machinery shared by every scheduling
// algorithm: greedy task placement, the pause/resume priority ordering of
// Section III-A, uniform-yield application with the average-yield
// improvement heuristic, and a registry mapping the paper's algorithm names
// to constructors.
//
// Node selection is split into feasibility filtering (the paper's hard
// memory/GPU constraints, implemented here) and scoring (which feasible
// node to prefer), the placement-objective layer of internal/placement.
// With no objective configured (Controller.Objective() == nil) placement
// uses the inlined Section III-A rule — the least relatively CPU-loaded
// feasible node, exactly the published GREEDY — which coincides with the
// placement.LoadBalance objective; a configured objective (cost, bestfit,
// worstfit, ...) replaces the scoring half while the feasibility filter
// stays untouched.
package sched

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/floats"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/workload"
)

// PriorityFunc computes a job's preemption priority from its flow time and
// virtual time. The default is core.Priority; core.PriorityLinear is the
// ablation variant.
type PriorityFunc func(flowTime, virtualTime float64) float64

// Spec converts a job snapshot into the DFRS core's resource description.
func Spec(ji sim.JobInfo) core.JobSpec {
	return core.JobSpec{
		ID:      ji.JID,
		Tasks:   ji.Job.Tasks,
		CPUNeed: ji.Job.CPUNeed,
		MemReq:  ji.Job.MemReq,
		Extra:   ji.Job.Extra,
		Weight:  ji.Job.Weight,
	}
}

// SpecOf is Spec straight off the controller, reading the job record in
// place instead of copying a JobInfo snapshot first.
func SpecOf(ctl *sim.Controller, jid int) core.JobSpec {
	j := ctl.JobRef(jid)
	return core.JobSpec{
		ID:      jid,
		Tasks:   j.Tasks,
		CPUNeed: j.CPUNeed,
		MemReq:  j.MemReq,
		Extra:   j.Extra,
		Weight:  j.Weight,
	}
}

// GreedyPlace computes the GREEDY placement of Section III-A for job jid:
// each task in turn goes to the node with the lowest relative CPU load
// (load divided by the node's CPU capacity — on the paper's unit-capacity
// platform exactly the raw load) among nodes with enough free capacity in
// every rigid dimension (memory, and GPU etc. on multi-resource clusters;
// tasks already placed in this call are taken into account). It returns
// one node per task, or ok=false if some task cannot be placed. Cluster
// state is not modified.
func GreedyPlace(ctl *sim.Controller, jid int) (nodes []int, ok bool) {
	return GreedyPlaceExtra(ctl, jid, nil)
}

// GreedyPlaceExtra is GreedyPlace with additional hypothetical usage: the
// plan's extra rigid demands and load (indexed by node, may be nil) are
// added on top of the simulator's current state. This lets callers plan
// multi-job placements (e.g. resuming several paused jobs in one event)
// without mutating the cluster between decisions. When the run configures
// a placement objective, the relative-load score is replaced by the
// objective's score over the same feasibility filter.
func GreedyPlaceExtra(ctl *sim.Controller, jid int, extra *Plan) ([]int, bool) {
	ji := ctl.JobLite(jid)
	n := ctl.NumNodes()
	d := ctl.NumDims()
	if d == 2 && extra == nil && ctl.Objective() == nil {
		// The paper's two-resource platform with no hypothetical usage is
		// the placement hot path (every greedy admission and every
		// DYNMCB8-ASAP arrival): answer each task's least-loaded-feasible
		// query from the node index in O(log n) instead of scanning.
		return greedyPlace2Indexed(ctl, ji)
	}
	plan := NewPlan(n, d)
	if extra != nil {
		copy(plan.Load, extra.Load)
		for r := range plan.Rigid {
			copy(plan.Rigid[r], extra.Rigid[r])
		}
	}
	if obj := ctl.Objective(); obj != nil {
		return greedyPlaceObjective(ctl, ji, plan, obj)
	}
	if d == 2 {
		// The paper's two-resource platform is the placement hot path
		// (every greedy admission and every DYNMCB8-ASAP arrival); keep it
		// on the memory-only scan. The general path below computes exactly
		// this for d == 2, and both are the inlined placement.LoadBalance
		// objective (locked equivalent by TestGreedyDefaultObjectiveLock).
		return greedyPlace2(ctl, ji, plan)
	}
	// Hoist the per-dimension demands out of the scan loops.
	dems := make([]float64, d-1)
	for r := range dems {
		dems[r] = ji.Job.Demand(r + 1)
	}
	nodes := make([]int, 0, ji.Job.Tasks)
	for task := 0; task < ji.Job.Tasks; task++ {
		best := -1
		bestLoad := math.Inf(1)
		for node := 0; node < n; node++ {
			fit := true
			for r, dem := range dems {
				if !floats.LessEq(dem, ctl.FreeRes(node, r+1)-plan.Rigid[r][node]) {
					fit = false
					break
				}
			}
			if !fit {
				continue
			}
			load := (ctl.CPULoad(node) + plan.Load[node]) / ctl.CPUCap(node)
			if load < bestLoad {
				bestLoad = load
				best = node
			}
		}
		if best < 0 {
			return nil, false
		}
		nodes = append(nodes, best)
		plan.Load[best] += ji.Job.CPUNeed
		for r, dem := range dems {
			plan.Rigid[r][best] += dem
		}
	}
	return nodes, true
}

// greedyPlace2 is the two-resource specialization of the placement scan.
func greedyPlace2(ctl *sim.Controller, ji sim.JobInfo, plan *Plan) ([]int, bool) {
	n := ctl.NumNodes()
	memReq := ji.Job.MemReq
	planMem := plan.Rigid[0]
	nodes := make([]int, 0, ji.Job.Tasks)
	for task := 0; task < ji.Job.Tasks; task++ {
		best := -1
		bestLoad := math.Inf(1)
		for node := 0; node < n; node++ {
			if !floats.LessEq(memReq, ctl.FreeMem(node)-planMem[node]) {
				continue
			}
			load := (ctl.CPULoad(node) + plan.Load[node]) / ctl.CPUCap(node)
			if load < bestLoad {
				bestLoad = load
				best = node
			}
		}
		if best < 0 {
			return nil, false
		}
		nodes = append(nodes, best)
		planMem[best] += memReq
		plan.Load[best] += ji.Job.CPUNeed
	}
	return nodes, true
}

// greedyPlace2Indexed answers the two-resource placement scan from the
// simulator's node index. Tasks already placed in this call are overlaid
// onto the touched leaves with exactly the expressions of the linear scan
// — free memory minus accumulated plan memory, (load plus accumulated plan
// load) over capacity — and every touched leaf is restored to its live
// values before returning, on success and on failure alike. Untouched
// leaves already hold the scan's values (a zero plan term only flips the
// sign of a zero, which no comparison observes), and ArgminLoad applies the
// same strict-improvement, ascending-node-order selection as the scan, so
// the chosen nodes are identical bit for bit.
func greedyPlace2Indexed(ctl *sim.Controller, ji sim.JobInfo) ([]int, bool) {
	t := ctl.NodeIndex()
	memReq := ji.Job.MemReq
	cpuNeed := ji.Job.CPUNeed
	nodes := make([]int, 0, ji.Job.Tasks)
	var touched []int
	var planMem, planLoad []float64 // parallel to touched
	ok := true
	for task := 0; task < ji.Job.Tasks; task++ {
		node := t.ArgminLoad(memReq)
		if node < 0 {
			ok = false
			break
		}
		nodes = append(nodes, node)
		ti := -1
		for i, tn := range touched {
			if tn == node {
				ti = i
				break
			}
		}
		if ti < 0 {
			ti = len(touched)
			touched = append(touched, node)
			planMem = append(planMem, 0)
			planLoad = append(planLoad, 0)
		}
		planMem[ti] += memReq
		planLoad[ti] += cpuNeed
		t.Set(node,
			(ctl.CPULoad(node)+planLoad[ti])/ctl.CPUCap(node),
			ctl.FreeMem(node)-planMem[ti])
	}
	for _, node := range touched {
		t.Set(node, ctl.CPULoad(node)/ctl.CPUCap(node), ctl.FreeMem(node))
	}
	if !ok {
		return nil, false
	}
	return nodes, true
}

// planState adapts the simulator's live usage plus an in-event placement
// plan to placement.State, so objectives score nodes as if the plan's
// placements had already happened.
type planState struct {
	ctl  *sim.Controller
	plan *Plan
}

// Dims implements placement.State.
func (s planState) Dims() int { return s.ctl.NumDims() }

// Cap implements placement.State.
func (s planState) Cap(node, k int) float64 { return s.ctl.ResCap(node, k) }

// Free implements placement.State: free capacity net of the plan. For the
// fluid CPU dimension this is capacity minus load (possibly negative under
// time-sharing).
func (s planState) Free(node, k int) float64 {
	if k == 0 {
		return s.ctl.CPUCap(node) - s.CPULoad(node)
	}
	free := s.ctl.FreeRes(node, k)
	if s.plan != nil && k-1 < len(s.plan.Rigid) {
		free -= s.plan.Rigid[k-1][node]
	}
	return free
}

// CPULoad implements placement.State.
func (s planState) CPULoad(node int) float64 {
	load := s.ctl.CPULoad(node)
	if s.plan != nil {
		load += s.plan.Load[node]
	}
	return load
}

// Cost implements placement.State.
func (s planState) Cost(node int) float64 { return s.ctl.NodeCost(node) }

// greedyPlaceObjective is the objective-scored placement scan: the same
// per-task feasibility filter as the default paths (free capacity in every
// rigid dimension, plan-aware), with the node choice delegated to
// placement.Pick under the configured objective.
func greedyPlaceObjective(ctl *sim.Controller, ji sim.JobInfo, plan *Plan, obj placement.Objective) ([]int, bool) {
	n := ctl.NumNodes()
	d := ctl.NumDims()
	dems := make([]float64, d-1)
	for r := range dems {
		dems[r] = ji.Job.Demand(r + 1)
	}
	st := planState{ctl: ctl, plan: plan}
	dem := placement.Demand(ji.Job.Demand)
	feasible := func(node int) bool {
		for r, dm := range dems {
			if !floats.LessEq(dm, ctl.FreeRes(node, r+1)-plan.Rigid[r][node]) {
				return false
			}
		}
		return true
	}
	nodes := make([]int, 0, ji.Job.Tasks)
	for task := 0; task < ji.Job.Tasks; task++ {
		best := placement.Pick(n, dem, st, feasible, obj)
		if best < 0 {
			return nil, false
		}
		nodes = append(nodes, best)
		plan.Load[best] += ji.Job.CPUNeed
		for r, dm := range dems {
			plan.Rigid[r][best] += dm
		}
	}
	return nodes, true
}

// ImproveRank returns the per-job secondary sort keys the average-yield
// improvement heuristic uses for tie-breaking under the run's objective:
// the sum of the objective's static node scores (zero demand) over each
// job's hosting nodes. It returns nil — the paper's tie-break by job ID —
// unless the configured objective opts in through placement.JobRanker (the
// cost objective does: granting leftover CPU to jobs on expensive nodes
// first finishes them sooner and releases the priced capacity).
func ImproveRank(ctl *sim.Controller, specs []core.JobSpec, alloc *core.Allocation) []float64 {
	obj := ctl.Objective()
	if obj == nil {
		return nil
	}
	jr, ok := obj.(placement.JobRanker)
	if !ok || !jr.RanksJobs() {
		return nil
	}
	st := planState{ctl: ctl}
	rank := make([]float64, len(specs))
	for i, spec := range specs {
		for _, node := range alloc.NodesOf[spec.ID] {
			rank[i] += obj.Score(placement.ZeroDemand, node, st)
		}
	}
	return rank
}

// Plan accumulates hypothetical extra rigid demands and CPU load per node
// across a sequence of placement decisions within one scheduling event.
type Plan struct {
	// Rigid[r][node] is the planned extra demand in rigid dimension r+1
	// (Rigid[0] is memory).
	Rigid [][]float64
	// Load[node] is the planned extra CPU load.
	Load []float64
}

// NewPlan returns an empty plan for n nodes and d resource dimensions.
func NewPlan(n, d int) *Plan {
	if d < 2 {
		d = 2
	}
	p := &Plan{Load: make([]float64, n), Rigid: make([][]float64, d-1)}
	for r := range p.Rigid {
		p.Rigid[r] = make([]float64, n)
	}
	return p
}

// Mem returns the plan's memory row (rigid dimension 1).
func (p *Plan) Mem() []float64 { return p.Rigid[0] }

// Commit adds a placement with the given memory and CPU shape to the plan
// (the d=2 case; use CommitJob for jobs with further demands).
func (p *Plan) Commit(nodes []int, memReq, cpuNeed float64) {
	for _, node := range nodes {
		p.Rigid[0][node] += memReq
		p.Load[node] += cpuNeed
	}
}

// CommitJob adds a placement of one of the job's tasks per listed node to
// the plan, covering every rigid dimension the plan tracks.
func (p *Plan) CommitJob(nodes []int, j workload.Job) {
	for _, node := range nodes {
		p.Load[node] += j.CPUNeed
		for r := range p.Rigid {
			p.Rigid[r][node] += j.Demand(r + 1)
		}
	}
}

// ByPriority returns jids sorted by the priority function evaluated at now:
// ascending (pause candidates first) when asc is true, descending (resume
// candidates first) otherwise. Infinite priorities sort last in ascending
// order and first in descending order; ties break by jid for determinism.
func ByPriority(ctl *sim.Controller, jids []int, now float64, pf PriorityFunc, asc bool) []int {
	type jidPrio struct {
		jid int
		p   float64
	}
	pairs := make([]jidPrio, len(jids))
	for i, jid := range jids {
		pairs[i] = jidPrio{jid: jid, p: pf(now-ctl.JobRef(jid).Submit, ctl.VirtualTime(jid))}
	}
	sort.SliceStable(pairs, func(a, b int) bool {
		pa, pb := pairs[a].p, pairs[b].p
		if pa != pb {
			if asc {
				return pa < pb
			}
			return pa > pb
		}
		return pairs[a].jid < pairs[b].jid
	})
	out := make([]int, len(pairs))
	for i, pr := range pairs {
		out[i] = pr.jid
	}
	return out
}

// YieldScratch holds the buffers of the GREEDY yield computation so
// schedulers invoking it on every event can reuse them. The zero value is
// ready to use.
type YieldScratch struct {
	running []int
	specs   []core.JobSpec
	vals    []float64
	alloc   *core.Allocation
	imp     core.ImproveScratch
}

// Apply implements the GREEDY yield rule of Section III-A on the current
// set of running jobs: every job receives the uniform yield
// 1/max(1, maxLoad) — maxLoad being the maximum relative (capacity-scaled)
// CPU load, which maximizes the minimum yield for the current placement and
// keeps every node within its own CPU capacity — and the average-yield
// improvement heuristic then distributes leftover CPU. Yields are applied
// through a zero-first two-phase update so no node ever transiently exceeds
// capacity.
func (ys *YieldScratch) Apply(ctl *sim.Controller) {
	ys.running = ctl.AppendJobsInState(ys.running[:0], sim.Running)
	running := ys.running
	if len(running) == 0 {
		return
	}
	base := 1.0 / math.Max(1, ctl.MaxCPULoad())
	if ys.alloc == nil {
		ys.alloc = core.NewAllocation()
	}
	alloc := ys.alloc
	clear(alloc.NodesOf)
	clear(alloc.YieldOf)
	ys.specs = ys.specs[:0]
	for _, jid := range running {
		ys.specs = append(ys.specs, SpecOf(ctl, jid))
		alloc.NodesOf[jid] = ctl.JobNodes(jid)
		alloc.YieldOf[jid] = base
	}
	alloc.MinYield = base
	ys.imp.ImproveAverageYieldRanked(ys.specs, alloc, ctl.Cluster(), nil, ImproveRank(ctl, ys.specs, alloc))
	ys.vals = ys.vals[:0]
	for _, jid := range running {
		ys.vals = append(ys.vals, alloc.YieldOf[jid])
	}
	ApplyYieldsList(ctl, running, ys.vals)
}

// ApplyGreedyYields is YieldScratch.Apply with one-shot buffers, for
// callers off the hot path.
func ApplyGreedyYields(ctl *sim.Controller) {
	var ys YieldScratch
	ys.Apply(ctl)
}

// ApplyYields sets each listed running job's yield, zeroing all of them
// first so that no intermediate state oversubscribes a node's CPU.
func ApplyYields(ctl *sim.Controller, yields map[int]float64) {
	jids := make([]int, 0, len(yields))
	for jid := range yields {
		jids = append(jids, jid)
	}
	sort.Ints(jids)
	for _, jid := range jids {
		ctl.SetYield(jid, 0)
	}
	for _, jid := range jids {
		ctl.SetYield(jid, floats.Clamp01(yields[jid]))
	}
}

// ApplyYieldsList is ApplyYields over parallel slices: jids must be in
// ascending order with yields[i] the yield of jids[i]. It performs the same
// zero-first two-phase update without building a map.
func ApplyYieldsList(ctl *sim.Controller, jids []int, yields []float64) {
	for _, jid := range jids {
		ctl.SetYield(jid, 0)
	}
	for i, jid := range jids {
		ctl.SetYield(jid, floats.Clamp01(yields[i]))
	}
}

// BackoffDelay returns the bounded exponential backoff of Section III-A for
// the given number of failed scheduling attempts: min(2^12, 2^count)
// seconds.
func BackoffDelay(count int) float64 {
	const cap = 1 << 12
	if count >= 12 {
		return cap
	}
	return float64(int(1) << count)
}
