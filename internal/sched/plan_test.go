package sched

// Tests for the multi-job planning path: GreedyPlaceExtra with a Plan
// carrying hypothetical usage from earlier placement decisions in the same
// scheduling event, and for capacity-aware greedy placement on
// heterogeneous clusters.

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

// buildSimCluster is buildSim with an explicit cluster model.
func buildSimCluster(t *testing.T, tr *workload.Trace, cl *cluster.Cluster, body func(ctl *sim.Controller)) {
	t.Helper()
	done := false
	s := &probe{onArrival: func(ctl *sim.Controller, jid int) {
		if jid == 0 && !done {
			done = true
			body(ctl)
		}
		if ctl.Job(jid).State == sim.Pending {
			if nodes, ok := GreedyPlace(ctl, jid); ok {
				ctl.Start(jid, nodes)
			}
		}
		ApplyGreedyYields(ctl)
	}}
	simulator, err := sim.New(sim.Config{Trace: tr, Cluster: cl, CheckInvariants: true}, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simulator.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("probe body never ran")
	}
}

// TestGreedyPlaceExtraAccountsPlannedMemory: a plan holding one node's
// memory forces the next placement onto the other node, even though the
// simulator still sees both nodes as free.
func TestGreedyPlaceExtraAccountsPlannedMemory(t *testing.T) {
	tr := &workload.Trace{Name: "plan", Nodes: 2, NodeMemGB: 8, Jobs: []workload.Job{
		jb(0, 0, 1, 0.2, 0.6, 100),
		jb(1, 0, 1, 0.2, 0.6, 100),
	}}
	buildSim(t, tr, func(ctl *sim.Controller) {
		plan := NewPlan(ctl.NumNodes(), ctl.NumDims())
		nodes0, ok := GreedyPlaceExtra(ctl, 0, plan)
		if !ok {
			t.Fatal("job 0 placement failed")
		}
		plan.Commit(nodes0, 0.6, 0.2)
		nodes1, ok := GreedyPlaceExtra(ctl, 1, plan)
		if !ok {
			t.Fatal("job 1 placement failed under plan")
		}
		if nodes1[0] == nodes0[0] {
			t.Errorf("planned memory ignored: both 0.6-mem tasks on node %d", nodes0[0])
		}
	})
}

// TestGreedyPlaceExtraAccountsPlannedLoad: planned CPU load steers the next
// task to the other node even with ample memory everywhere.
func TestGreedyPlaceExtraAccountsPlannedLoad(t *testing.T) {
	tr := &workload.Trace{Name: "plan", Nodes: 2, NodeMemGB: 8, Jobs: []workload.Job{
		jb(0, 0, 1, 0.8, 0.1, 100),
		jb(1, 0, 1, 0.8, 0.1, 100),
	}}
	buildSim(t, tr, func(ctl *sim.Controller) {
		plan := NewPlan(ctl.NumNodes(), ctl.NumDims())
		nodes0, _ := GreedyPlaceExtra(ctl, 0, plan)
		plan.Commit(nodes0, 0.1, 0.8)
		nodes1, ok := GreedyPlaceExtra(ctl, 1, plan)
		if !ok {
			t.Fatal("job 1 placement failed under plan")
		}
		if nodes1[0] == nodes0[0] {
			t.Errorf("planned load ignored: both 0.8-need tasks on node %d", nodes0[0])
		}
	})
}

// TestGreedyPlaceExtraPlanFillsMemory: once the plan has consumed all
// memory, further placements must fail rather than oversubscribe.
func TestGreedyPlaceExtraPlanFillsMemory(t *testing.T) {
	tr := &workload.Trace{Name: "plan", Nodes: 2, NodeMemGB: 8, Jobs: []workload.Job{
		jb(0, 0, 2, 0.1, 0.7, 100),
		// Submitted after job 0 completes so the probe's generic finisher
		// can start it on an empty cluster; the planning probe below runs
		// at t=0.
		jb(1, 200, 1, 0.1, 0.7, 100),
	}}
	buildSim(t, tr, func(ctl *sim.Controller) {
		plan := NewPlan(ctl.NumNodes(), ctl.NumDims())
		nodes0, ok := GreedyPlaceExtra(ctl, 0, plan)
		if !ok {
			t.Fatal("job 0 placement failed")
		}
		plan.Commit(nodes0, 0.7, 0.1)
		if _, ok := GreedyPlaceExtra(ctl, 1, plan); ok {
			t.Error("placement succeeded although the plan holds all memory")
		}
	})
}

// TestGreedyPlacePrefersFatNodesRelativeLoad: on a fat/thin cluster the
// greedy rule compares *relative* load, so a fat node carrying more
// absolute load than a reference node can still be the least-loaded choice.
func TestGreedyPlacePrefersFatNodesRelativeLoad(t *testing.T) {
	tr := &workload.Trace{Name: "het", Nodes: 2, NodeMemGB: 8, Jobs: []workload.Job{
		jb(0, 0, 1, 0.6, 0.1, 100),
		jb(1, 0, 1, 0.4, 0.1, 100),
	}}
	cl := cluster.New([]cluster.NodeSpec{
		cluster.Spec(2, 2),
		cluster.Spec(1, 1),
	})
	buildSimCluster(t, tr, cl, func(ctl *sim.Controller) {
		// Load the fat node with 0.6: relative load 0.3 versus 0 on the
		// reference node, so job 1 goes to the reference node.
		ctl.Start(0, []int{0})
		ctl.SetYield(0, 1)
		nodes, ok := GreedyPlace(ctl, 1)
		if !ok {
			t.Fatal("placement failed")
		}
		if nodes[0] != 1 {
			t.Errorf("picked node %d, want the idle reference node 1", nodes[0])
		}
		// Load the reference node with 0.4 too (relative 0.4 > 0.3): the
		// next placement must prefer the fat node again.
		ctl.Start(1, []int{1})
		ctl.SetYield(1, 1)
		plan := NewPlan(ctl.NumNodes(), ctl.NumDims())
		nodes2, ok := GreedyPlaceExtra(ctl, 1, plan)
		if !ok {
			t.Fatal("hypothetical placement failed")
		}
		if nodes2[0] != 0 {
			t.Errorf("relative load ignored: picked node %d, want fat node 0", nodes2[0])
		}
	})
}

// TestGreedyPlaceRespectsThinNodeMemory: a task whose memory requirement
// exceeds a thin node's capacity must never be placed there.
func TestGreedyPlaceRespectsThinNodeMemory(t *testing.T) {
	tr := &workload.Trace{Name: "thin", Nodes: 2, NodeMemGB: 8, Jobs: []workload.Job{
		jb(0, 0, 1, 0.1, 0.8, 100),
	}}
	cl := cluster.New([]cluster.NodeSpec{
		cluster.Spec(0.5, 0.5),
		cluster.Spec(1, 1),
	})
	buildSimCluster(t, tr, cl, func(ctl *sim.Controller) {
		nodes, ok := GreedyPlace(ctl, 0)
		if !ok {
			t.Fatal("placement failed")
		}
		if nodes[0] != 1 {
			t.Errorf("0.8-memory task on 0.5-capacity node: %v", nodes)
		}
	})
}
