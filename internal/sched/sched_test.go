package sched

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestBackoffDelay(t *testing.T) {
	cases := []struct {
		count int
		want  float64
	}{
		{0, 1}, {1, 2}, {3, 8}, {10, 1024}, {12, 4096}, {13, 4096}, {30, 4096},
	}
	for _, c := range cases {
		if got := BackoffDelay(c.count); got != c.want {
			t.Errorf("BackoffDelay(%d) = %v, want %v", c.count, got, c.want)
		}
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("definitely-not-registered"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

// buildSim constructs a simulator with a scripted scheduler that exposes
// the controller for direct helper testing. The returned run function
// executes the script inside the simulation's first arrival.
func buildSim(t *testing.T, tr *workload.Trace, body func(ctl *sim.Controller)) {
	t.Helper()
	done := false
	s := &probe{onArrival: func(ctl *sim.Controller, jid int) {
		if jid == 0 && !done {
			done = true
			body(ctl)
		}
		// Finish every job so the simulation terminates: greedy placement
		// plus the greedy yield rule keep all invariants satisfied.
		if ctl.Job(jid).State == sim.Pending {
			if nodes, ok := GreedyPlace(ctl, jid); ok {
				ctl.Start(jid, nodes)
			}
		}
		ApplyGreedyYields(ctl)
	}}
	simulator, err := sim.New(sim.Config{Trace: tr, CheckInvariants: true}, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simulator.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("probe body never ran")
	}
}

type probe struct {
	onArrival func(ctl *sim.Controller, jid int)
}

func (p *probe) Name() string                           { return "probe" }
func (p *probe) Init(*sim.Controller)                   {}
func (p *probe) OnArrival(ctl *sim.Controller, jid int) { p.onArrival(ctl, jid) }
func (p *probe) OnCompletion(*sim.Controller, int)      {}
func (p *probe) OnTimer(*sim.Controller, int64)         {}

func jb(id int, submit float64, tasks int, cpu, mem, exec float64) workload.Job {
	return workload.Job{ID: id, Submit: submit, Tasks: tasks, CPUNeed: cpu, MemReq: mem, ExecTime: exec}
}

func TestGreedyPlacePicksLowestLoad(t *testing.T) {
	tr := &workload.Trace{Name: "g", Nodes: 3, NodeMemGB: 8, Jobs: []workload.Job{
		jb(0, 0, 1, 0.8, 0.2, 100), // occupies one node first
		jb(1, 0, 1, 0.4, 0.2, 100),
	}}
	buildSim(t, tr, func(ctl *sim.Controller) {
		// Start job 0 on node 2 to load it.
		ctl.Start(0, []int{2})
		ctl.SetYield(0, 1)
		// Job 1 must avoid node 2 (load 0.8) and pick node 0 (first
		// zero-load node).
		nodes, ok := GreedyPlace(ctl, 1)
		if !ok {
			t.Fatal("placement failed")
		}
		if nodes[0] == 2 {
			t.Errorf("picked the loaded node: %v", nodes)
		}
	})
}

func TestGreedyPlaceRespectsMemory(t *testing.T) {
	tr := &workload.Trace{Name: "g", Nodes: 2, NodeMemGB: 8, Jobs: []workload.Job{
		jb(0, 0, 2, 0.1, 0.9, 100), // fills both nodes' memory
		// Job 1 is submitted only after job 0 completes so the generic
		// finisher can start it on an empty cluster; the placement probe
		// below runs at t=0 while memory is still full.
		jb(1, 200, 1, 0.1, 0.2, 100),
	}}
	buildSim(t, tr, func(ctl *sim.Controller) {
		ctl.Start(0, []int{0, 1})
		ctl.SetYield(0, 1)
		if _, ok := GreedyPlace(ctl, 1); ok {
			t.Error("placement succeeded despite full memory")
		}
	})
}

func TestGreedyPlaceMultiTaskSpreads(t *testing.T) {
	// A 3-task job with 60% memory per task: one task per node.
	tr := &workload.Trace{Name: "g", Nodes: 3, NodeMemGB: 8, Jobs: []workload.Job{
		jb(0, 0, 3, 0.5, 0.6, 100),
	}}
	buildSim(t, tr, func(ctl *sim.Controller) {
		nodes, ok := GreedyPlace(ctl, 0)
		if !ok {
			t.Fatal("placement failed")
		}
		seen := map[int]bool{}
		for _, n := range nodes {
			if seen[n] {
				t.Errorf("two 0.6-memory tasks on node %d", n)
			}
			seen[n] = true
		}
	})
}

func TestGreedyPlaceStacksWhenMemoryAllows(t *testing.T) {
	// With nodes 1..3 pre-loaded at 0.9, a 4-task 0.4-need job stacks
	// three tasks on the idle node 0 (0, 0.4, 0.8 all below 0.9) before
	// spilling the fourth onto a loaded node.
	tr := &workload.Trace{Name: "g", Nodes: 4, NodeMemGB: 8, Jobs: []workload.Job{
		jb(0, 0, 3, 0.9, 0.1, 100),
		jb(1, 200, 4, 0.4, 0.1, 100),
	}}
	buildSim(t, tr, func(ctl *sim.Controller) {
		ctl.Start(0, []int{1, 2, 3})
		ctl.SetYield(0, 1)
		nodes, ok := GreedyPlace(ctl, 1)
		if !ok {
			t.Fatal("placement failed")
		}
		count := map[int]int{}
		for _, n := range nodes {
			count[n]++
		}
		if count[0] != 3 {
			t.Errorf("expected 3 tasks stacked on the idle node, got %v", count)
		}
	})
}

func TestByPriority(t *testing.T) {
	tr := &workload.Trace{Name: "p", Nodes: 4, NodeMemGB: 8, Jobs: []workload.Job{
		jb(0, 0, 1, 0.5, 0.1, 1000),
		jb(1, 0, 1, 0.5, 0.1, 1000),
		jb(2, 0, 1, 0.5, 0.1, 1000),
	}}
	buildSim(t, tr, func(ctl *sim.Controller) {
		// Give the jobs different virtual times by running them at
		// different yields... instead, exercise the ordering function
		// directly with known (flow, vt) combinations through Start and
		// progress: here all virtual times are zero, so all priorities
		// are infinite and the order must fall back to jid.
		got := ByPriority(ctl, []int{2, 0, 1}, ctl.Now(), core.Priority, true)
		if got[0] != 0 || got[1] != 1 || got[2] != 2 {
			t.Errorf("infinite-priority tie-break by jid failed: %v", got)
		}
	})
}

func TestApplyGreedyYields(t *testing.T) {
	tr := &workload.Trace{Name: "y", Nodes: 2, NodeMemGB: 8, Jobs: []workload.Job{
		jb(0, 0, 1, 1.0, 0.1, 100),
		jb(1, 0, 1, 1.0, 0.1, 100),
		jb(2, 0, 1, 0.5, 0.1, 100),
	}}
	buildSim(t, tr, func(ctl *sim.Controller) {
		// Node 0: jobs 0 and 1 (load 2.0); node 1: job 2 (load 0.5).
		ctl.Start(0, []int{0})
		ctl.Start(1, []int{0})
		ctl.Start(2, []int{1})
		ApplyGreedyYields(ctl)
		// Uniform base yield = 1/max(1, 2.0) = 0.5. Jobs 0 and 1 fill
		// node 0 exactly; job 2 is cheapest and is raised to 1.0.
		if y := ctl.Job(0).Yield; math.Abs(y-0.5) > 1e-9 {
			t.Errorf("job 0 yield = %v, want 0.5", y)
		}
		if y := ctl.Job(1).Yield; math.Abs(y-0.5) > 1e-9 {
			t.Errorf("job 1 yield = %v, want 0.5", y)
		}
		if y := ctl.Job(2).Yield; math.Abs(y-1.0) > 1e-9 {
			t.Errorf("job 2 yield = %v, want 1.0 (average-yield heuristic)", y)
		}
	})
}

func TestPlanCommit(t *testing.T) {
	p := NewPlan(3, 2)
	p.Commit([]int{0, 0, 2}, 0.3, 0.5)
	if math.Abs(p.Mem()[0]-0.6) > 1e-12 || math.Abs(p.Load[0]-1.0) > 1e-12 {
		t.Errorf("node 0 plan: mem %v load %v", p.Mem()[0], p.Load[0])
	}
	if p.Mem()[1] != 0 || p.Load[1] != 0 {
		t.Error("untouched node changed")
	}
	if math.Abs(p.Mem()[2]-0.3) > 1e-12 {
		t.Errorf("node 2 mem %v", p.Mem()[2])
	}
}

func TestPlanCommitJobRigidDims(t *testing.T) {
	p := NewPlan(2, 3)
	p.CommitJob([]int{1}, workload.Job{CPUNeed: 0.4, MemReq: 0.2, Extra: []float64{0.7}})
	if math.Abs(p.Rigid[0][1]-0.2) > 1e-12 || math.Abs(p.Rigid[1][1]-0.7) > 1e-12 {
		t.Errorf("rigid plan = %v", p.Rigid)
	}
	if math.Abs(p.Load[1]-0.4) > 1e-12 {
		t.Errorf("load plan = %v", p.Load)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register("sched-test-dup", func() sim.Scheduler { return &probe{} })
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register("sched-test-dup", func() sim.Scheduler { return &probe{} })
}

func TestSpec(t *testing.T) {
	ji := sim.JobInfo{JID: 7, Job: jb(7, 0, 3, 0.25, 0.5, 10)}
	spec := Spec(ji)
	if spec.ID != 7 || spec.Tasks != 3 || spec.CPUNeed != 0.25 || spec.MemReq != 0.5 {
		t.Errorf("Spec = %+v", spec)
	}
}
