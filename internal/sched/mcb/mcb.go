// Package mcb implements the paper's global DFRS algorithms built on
// multi-capacity bin packing (Section III-B):
//
//   - DYNMCB8 repacks all jobs in the system at every event, maximizing the
//     minimum yield by binary search over MCB8 feasibility;
//   - DYNMCB8-PER-T does the same but only every T seconds, queueing
//     arrivals until the next scheduling event;
//   - DYNMCB8-ASAP-PER-T additionally starts arrivals immediately by greedy
//     placement when memory allows;
//   - DYNMCB8-STRETCH-PER-T replaces min-yield maximization with
//     minimization of the estimated maximum stretch at the next event.
//
// Whenever no allocation exists however small the yield (a memory-bound
// instance), the job with the smallest priority is removed from
// consideration — paused if it was running — and the packing is retried.
//
// The package also provides the fairness extension sketched in the paper's
// conclusion (Section VII): long-running jobs are excluded from the
// average-yield improvement so that leftover CPU flows to short jobs.
package mcb

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/vectorpack"
)

// DefaultPeriod is the paper's scheduling period for the periodic variants
// (10 minutes; Section III-B reports T=600 balances overhead and
// reactivity against T=60 and T=3600).
const DefaultPeriod = 600.0

// tickTag is the timer tag used for periodic scheduling events.
const tickTag int64 = -1

func init() {
	sched.Register("dynmcb8", func() sim.Scheduler { return New(Options{}) })
	sched.Register("dynmcb8-per", func() sim.Scheduler {
		return New(Options{Period: DefaultPeriod})
	})
	sched.Register("dynmcb8-asap-per", func() sim.Scheduler {
		return New(Options{Period: DefaultPeriod, ASAP: true})
	})
	sched.Register("dynmcb8-stretch-per", func() sim.Scheduler {
		return New(Options{Period: DefaultPeriod, Stretch: true})
	})
	// A4 extension: periodic variant with the fairness decay of
	// Section VII's future-work discussion.
	sched.Register("dynmcb8-per-fair", func() sim.Scheduler {
		return New(Options{Period: DefaultPeriod, FairnessAge: 2 * 3600})
	})
}

// Options selects a DYNMCB8 variant.
type Options struct {
	// Period is the scheduling period in seconds; 0 means schedule at
	// every event (plain DYNMCB8).
	Period float64
	// ASAP starts arrivals immediately via greedy placement when memory
	// allows instead of queueing them until the next period.
	ASAP bool
	// Stretch switches the optimization from maximizing the minimum yield
	// to minimizing the estimated maximum stretch.
	Stretch bool
	// Packer selects the bin-packing heuristic; nil means MCB8. Used by
	// ablation A3.
	Packer vectorpack.Packer
	// Priority selects the removal priority function; nil means
	// core.Priority.
	Priority sched.PriorityFunc
	// FairnessAge, when positive, enables the Section VII extension: jobs
	// with more than this much virtual time are excluded from the
	// average-yield improvement heuristic, so spare CPU is reserved for
	// young jobs.
	FairnessAge float64
	// NameOverride sets a custom Name (for ablation variants).
	NameOverride string
}

// Scheduler is the DYNMCB8 family implementation. The trailing fields are
// scratch buffers reused across scheduling events — repacks run at every
// event (or tick), so per-event allocations dominate without them.
type Scheduler struct {
	opt    Options
	packer vectorpack.Packer
	prio   sched.PriorityFunc
	name   string

	ws      core.Workspace
	imp     core.ImproveScratch
	states  []core.StretchState
	specs   []core.JobSpec
	cands   []int
	runBuf  []int
	yields  []float64
	prioBuf []float64
	memBuf  []float64
	greedy  sched.YieldScratch
}

// New builds a DYNMCB8-family scheduler from options.
func New(opt Options) *Scheduler {
	s := &Scheduler{opt: opt, packer: opt.Packer, prio: opt.Priority}
	if s.packer == nil {
		s.packer = vectorpack.MCB8{}
	}
	if s.prio == nil {
		s.prio = core.Priority
	}
	s.name = opt.NameOverride
	if s.name == "" {
		switch {
		case opt.Period <= 0:
			s.name = "dynmcb8"
		case opt.Stretch:
			s.name = fmt.Sprintf("dynmcb8-stretch-per-%.0f", opt.Period)
		case opt.ASAP:
			s.name = fmt.Sprintf("dynmcb8-asap-per-%.0f", opt.Period)
		case opt.FairnessAge > 0:
			s.name = fmt.Sprintf("dynmcb8-per-fair-%.0f", opt.Period)
		default:
			s.name = fmt.Sprintf("dynmcb8-per-%.0f", opt.Period)
		}
	}
	return s
}

// Name implements sim.Scheduler.
func (s *Scheduler) Name() string { return s.name }

// Init implements sim.Scheduler: periodic variants arm the first tick, and
// the run's placement objective (if any) is threaded into the packing
// kernel so repacks fill bins in objective order (e.g. cheap nodes first
// under the cost objective). Scheduler instances are per-run, so the
// packer swap never leaks across simulations.
func (s *Scheduler) Init(ctl *sim.Controller) {
	if obj := ctl.Objective(); obj != nil {
		if oa, ok := s.packer.(vectorpack.ObjectiveAware); ok {
			s.packer = oa.WithObjective(obj)
		}
	}
	if s.opt.Period > 0 {
		ctl.SetTimer(ctl.Now()+s.opt.Period, tickTag)
	}
}

// OnArrival implements sim.Scheduler.
func (s *Scheduler) OnArrival(ctl *sim.Controller, jid int) {
	if s.opt.Period <= 0 {
		s.reschedule(ctl)
		return
	}
	if s.opt.ASAP {
		if nodes, ok := sched.GreedyPlace(ctl, jid); ok {
			ctl.Start(jid, nodes)
			s.greedy.Apply(ctl)
		}
	}
	// Otherwise the job waits in the queue until the next tick.
}

// OnCompletion implements sim.Scheduler.
func (s *Scheduler) OnCompletion(ctl *sim.Controller, _ int) {
	if s.opt.Period <= 0 {
		s.reschedule(ctl)
	}
	// Periodic variants let freed resources sit until the next tick
	// (Section III-B); the ASAP variant only accelerates *arrivals*.
}

// OnTimer implements sim.Scheduler: a periodic scheduling event.
func (s *Scheduler) OnTimer(ctl *sim.Controller, tag int64) {
	if tag != tickTag {
		return
	}
	s.reschedule(ctl)
	ctl.SetTimer(ctl.Now()+s.opt.Period, tickTag)
}

// reschedule runs the global repack over every job in the system.
func (s *Scheduler) reschedule(ctl *sim.Controller) {
	now := ctl.Now()
	s.cands = ctl.AppendActiveJobs(s.cands[:0])
	candidates := s.cands
	if len(candidates) == 0 {
		return
	}
	var alloc *core.Allocation
	var inSet []int
	var prios, mems []float64 // removal keys, parallel to candidates
	for {
		inSet = candidates
		var ok bool
		alloc, ok = s.solve(ctl, inSet, now)
		if ok {
			break
		}
		// Memory-bound: drop the smallest-priority job and retry. Ties
		// break toward the job with the largest memory footprint (fastest
		// route back to feasibility), then by jid. The keys depend only on
		// the event time, so they are computed once and filtered alongside
		// the candidate list across retries; nothing retains the unfiltered
		// list, so the removal is in place.
		if prios == nil {
			prios, mems = s.removalKeys(ctl, candidates, now)
		}
		di := pickRemoval(candidates, prios, mems)
		candidates = append(candidates[:di], candidates[di+1:]...)
		prios = append(prios[:di], prios[di+1:]...)
		mems = append(mems[:di], mems[di+1:]...)
		if len(candidates) == 0 {
			alloc = core.NewAllocation()
			inSet = nil
			break
		}
	}
	s.apply(ctl, inSet, alloc)
}

// solve computes the optimal allocation for the given job set under the
// variant's objective.
func (s *Scheduler) solve(ctl *sim.Controller, jids []int, now float64) (*core.Allocation, bool) {
	if s.opt.Stretch {
		states := s.states[:0]
		for _, jid := range jids {
			states = append(states, core.StretchState{
				JobSpec:     sched.SpecOf(ctl, jid),
				FlowTime:    now - ctl.JobRef(jid).Submit,
				VirtualTime: ctl.VirtualTime(jid),
			})
		}
		s.states = states
		alloc, ok := s.ws.MinEstimatedStretch(states, ctl.Cluster(), s.packer, s.opt.Period)
		if !ok {
			return nil, false
		}
		core.ImproveAverageStretch(states, alloc, ctl.Cluster())
		return alloc, true
	}
	specs := s.specs[:0]
	for _, jid := range jids {
		specs = append(specs, sched.SpecOf(ctl, jid))
	}
	s.specs = specs
	alloc, ok := s.ws.MaxMinYield(specs, ctl.Cluster(), s.packer)
	if !ok {
		return nil, false
	}
	var eligible func(core.JobSpec) bool
	if s.opt.FairnessAge > 0 {
		eligible = func(spec core.JobSpec) bool {
			return ctl.VirtualTime(spec.ID) <= s.opt.FairnessAge
		}
	}
	s.imp.ImproveAverageYieldRanked(specs, alloc, ctl.Cluster(), eligible, sched.ImproveRank(ctl, specs, alloc))
	return alloc, true
}

// removalKeys computes each candidate's removal priority and memory
// footprint into the scheduler's scratch buffers.
func (s *Scheduler) removalKeys(ctl *sim.Controller, jids []int, now float64) (prios, mems []float64) {
	prios, mems = s.prioBuf[:0], s.memBuf[:0]
	for _, jid := range jids {
		j := ctl.JobRef(jid)
		prios = append(prios, s.prio(now-j.Submit, ctl.VirtualTime(jid)))
		mems = append(mems, float64(j.Tasks)*j.MemReq)
	}
	s.prioBuf, s.memBuf = prios, mems
	return prios, mems
}

// pickRemoval selects the job to drop from a memory-bound instance and
// returns its index in jids.
func pickRemoval(jids []int, prios, mems []float64) int {
	best := -1
	bi := -1
	bestPrio := math.Inf(1)
	bestMem := -1.0
	for i, jid := range jids {
		p, mem := prios[i], mems[i]
		switch {
		case best < 0,
			p < bestPrio,
			p == bestPrio && mem > bestMem,
			p == bestPrio && mem == bestMem && jid < best:
			best, bi, bestPrio, bestMem = jid, i, p, mem
		}
	}
	return bi
}

// apply transitions the cluster from its current allocation to alloc:
// running jobs that fell out of the set are paused; running jobs whose node
// multiset changed are paused and immediately resumed at the new location
// (the simulator reclassifies this as a migration); pending and paused jobs
// in the set are started/resumed; finally yields are applied through the
// two-phase update.
func (s *Scheduler) apply(ctl *sim.Controller, inSet []int, alloc *core.Allocation) {
	// inSet descends from ActiveJobs with jobs filtered out in place, so it
	// is sorted ascending: membership is a binary search, no keep-map.
	inKeptSet := func(jid int) bool {
		i := sort.SearchInts(inSet, jid)
		return i < len(inSet) && inSet[i] == jid
	}
	// Phase 1: release everything that leaves or moves. Pausing mutates the
	// running set, so iterate a snapshot.
	s.runBuf = ctl.AppendJobsInState(s.runBuf[:0], sim.Running)
	for _, jid := range s.runBuf {
		if !inKeptSet(jid) {
			ctl.Pause(jid)
			continue
		}
		if !sim.SameMultiset(ctl.JobNodes(jid), alloc.NodesOf[jid]) {
			ctl.Pause(jid)
		}
	}
	// Phase 2: occupy new placements (deterministic ascending-jid order).
	s.yields = s.yields[:0]
	for _, jid := range inSet {
		nodes := alloc.NodesOf[jid]
		switch ctl.JobState(jid) {
		case sim.Pending:
			ctl.Start(jid, nodes)
		case sim.Paused:
			ctl.Resume(jid, nodes)
		case sim.Running:
			// Unchanged multiset; nothing to move.
		}
		s.yields = append(s.yields, alloc.YieldOf[jid])
	}
	sched.ApplyYieldsList(ctl, inSet, s.yields)
}
