package mcb

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/vectorpack"
	"repro/internal/workload"
)

func jb(id int, submit float64, tasks int, cpu, mem, exec float64) workload.Job {
	return workload.Job{ID: id, Submit: submit, Tasks: tasks, CPUNeed: cpu, MemReq: mem, ExecTime: exec}
}

func run(t *testing.T, opt Options, penalty float64, nodes int, jobs ...workload.Job) *sim.Result {
	t.Helper()
	tr := &workload.Trace{Name: "mcb-test", Nodes: nodes, NodeMemGB: 8, Jobs: jobs}
	simulator, err := sim.New(sim.Config{Trace: tr, Penalty: penalty, CheckInvariants: true}, New(opt))
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulator.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.Validate(res); err != nil {
		t.Fatal(err)
	}
	return res
}

func byID(res *sim.Result) map[int]sim.JobResult {
	out := map[int]sim.JobResult{}
	for _, jr := range res.Jobs {
		out[jr.Job.ID] = jr
	}
	return out
}

func TestNames(t *testing.T) {
	cases := map[string]Options{
		"dynmcb8":                 {},
		"dynmcb8-per-600":         {Period: 600},
		"dynmcb8-asap-per-600":    {Period: 600, ASAP: true},
		"dynmcb8-stretch-per-600": {Period: 600, Stretch: true},
		"dynmcb8-per-fair-600":    {Period: 600, FairnessAge: 3600},
		"custom":                  {Period: 600, NameOverride: "custom"},
	}
	for want, opt := range cases {
		if got := New(opt).Name(); got != want {
			t.Errorf("New(%+v).Name() = %q, want %q", opt, got, want)
		}
	}
}

func TestDynMCB8StartsImmediately(t *testing.T) {
	// Plain DYNMCB8 reschedules at every event: a job arriving on an
	// empty cluster starts at its submit time with yield 1.
	res := run(t, Options{}, 0, 2, jb(0, 5, 1, 0.5, 0.2, 100))
	jr := byID(res)
	if jr[0].Start != 5 || math.Abs(jr[0].Turnaround-100) > 1e-6 {
		t.Errorf("job: %+v", jr[0])
	}
}

func TestDynMCB8SharesOptimally(t *testing.T) {
	// Two CPU-bound single-task jobs, two nodes: the vector packer puts
	// them on separate nodes at yield 1 — no sharing needed.
	res := run(t, Options{}, 0, 2,
		jb(0, 0, 1, 1.0, 0.2, 100),
		jb(1, 0, 1, 1.0, 0.2, 100),
	)
	for _, jr := range res.Jobs {
		if math.Abs(jr.Turnaround-100) > 1e-6 {
			t.Errorf("job %d turnaround %v, want 100 (separate nodes)", jr.Job.ID, jr.Turnaround)
		}
	}
}

func TestDynMCB8BinarySearchYield(t *testing.T) {
	// Three CPU-bound jobs on one node (memory allows): max-min yield is
	// 1/3, so each takes ~300s (within the 0.01 search accuracy).
	res := run(t, Options{}, 0, 1,
		jb(0, 0, 1, 1.0, 0.2, 100),
		jb(1, 0, 1, 1.0, 0.2, 100),
		jb(2, 0, 1, 1.0, 0.2, 100),
	)
	for _, jr := range res.Jobs {
		if jr.Turnaround < 290 || jr.Turnaround > 310 {
			t.Errorf("job %d turnaround %v, want ~300", jr.Job.ID, jr.Turnaround)
		}
	}
}

func TestPeriodicQueuesUntilTick(t *testing.T) {
	// DYNMCB8-PER-600: a job arriving at t=5 waits for the first tick at
	// t=600.
	res := run(t, Options{Period: 600}, 0, 2, jb(0, 5, 1, 0.5, 0.2, 100))
	jr := byID(res)
	if jr[0].Start != 600 {
		t.Errorf("start = %v, want 600 (first tick)", jr[0].Start)
	}
}

func TestASAPStartsBetweenTicks(t *testing.T) {
	res := run(t, Options{Period: 600, ASAP: true}, 0, 2, jb(0, 5, 1, 0.5, 0.2, 100))
	jr := byID(res)
	if jr[0].Start != 5 {
		t.Errorf("start = %v, want 5 (ASAP admission)", jr[0].Start)
	}
}

func TestASAPFallsBackToTickOnMemoryPressure(t *testing.T) {
	// Node full of memory until t=700: the ASAP arrival at t=5 cannot be
	// placed greedily and waits for a tick after memory frees.
	res := run(t, Options{Period: 600, ASAP: true}, 0, 1,
		jb(0, 0, 1, 0.5, 0.9, 700),
		jb(1, 5, 1, 0.5, 0.5, 10),
	)
	jr := byID(res)
	if jr[1].Start < 600 {
		t.Errorf("start = %v; expected to wait for a scheduling event", jr[1].Start)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("only %d jobs finished", len(res.Jobs))
	}
}

func TestStretchVariantProtectsLaggards(t *testing.T) {
	// Stretch-driven allocation gives more CPU to the job with the worse
	// flow/virtual-time ratio. Start one job late so it lags, then check
	// it is not starved relative to the min-yield variant.
	jobs := []workload.Job{
		jb(0, 0, 1, 1.0, 0.2, 2000),
		jb(1, 0, 1, 1.0, 0.2, 2000),
		jb(2, 1200, 1, 1.0, 0.2, 2000),
	}
	res := run(t, Options{Period: 600, Stretch: true}, 0, 1, jobs...)
	if len(res.Jobs) != 3 {
		t.Fatalf("only %d jobs finished", len(res.Jobs))
	}
	for _, jr := range res.Jobs {
		if jr.Turnaround < jr.Job.ExecTime-1e-6 {
			t.Errorf("job %d impossibly fast: %v", jr.Job.ID, jr.Turnaround)
		}
	}
}

func TestMemoryBoundRemovesLowestPriority(t *testing.T) {
	// One node; two jobs each needing 0.9 memory cannot coexist. The
	// repack must shed one (the lowest-priority) and still finish both
	// eventually.
	res := run(t, Options{}, 0, 1,
		jb(0, 0, 1, 0.5, 0.9, 100),
		jb(1, 10, 1, 0.5, 0.9, 100),
	)
	if len(res.Jobs) != 2 {
		t.Fatalf("only %d jobs finished", len(res.Jobs))
	}
	jr := byID(res)
	// Hand-computed schedule: job 0 runs 0-10 (vt=10, finite priority);
	// job 1 arrives at t=10 with infinite priority (vt=0), so job 0 is
	// shed and paused. Job 1 runs 10-110; job 0 resumes and finishes its
	// remaining 90 virtual seconds by t=200.
	if jr[0].Pauses == 0 {
		t.Error("job 0 (lowest priority) was not shed")
	}
	if math.Abs(jr[1].Finish-110) > 1e-6 {
		t.Errorf("job 1 finish = %v, want 110", jr[1].Finish)
	}
	if math.Abs(jr[0].Finish-200) > 1e-6 {
		t.Errorf("job 0 finish = %v, want 200", jr[0].Finish)
	}
}

func TestRepackMigrationAccounting(t *testing.T) {
	// Force a migration: job 0 alone, then job 1 arrives whose packing
	// displaces job 0's task. With every-event repacks and MCB8's
	// deterministic order, node assignments can change; we only assert
	// consistency: any migration implies the counters agree.
	res := run(t, Options{}, 300, 2,
		jb(0, 0, 1, 0.6, 0.5, 400),
		jb(1, 100, 1, 0.9, 0.7, 400),
		jb(2, 200, 1, 0.3, 0.4, 400),
	)
	var pauses, migs int
	for _, jr := range res.Jobs {
		pauses += jr.Pauses
		migs += jr.Migrations
	}
	if pauses != res.PreemptionOps || migs != res.MigrationOps {
		t.Errorf("per-job (%d,%d) vs global (%d,%d) operation counts disagree",
			pauses, migs, res.PreemptionOps, res.MigrationOps)
	}
}

func TestFairnessVariantLimitsOldJobs(t *testing.T) {
	res := run(t, Options{Period: 600, FairnessAge: 600}, 0, 1,
		jb(0, 0, 1, 1.0, 0.2, 3000),
		jb(1, 1200, 1, 1.0, 0.2, 300),
	)
	if len(res.Jobs) != 2 {
		t.Fatalf("only %d jobs finished", len(res.Jobs))
	}
	jr := byID(res)
	// The young job shares fairly and must finish well before the old one.
	if jr[1].Finish >= jr[0].Finish {
		t.Errorf("young job finished at %v, old at %v", jr[1].Finish, jr[0].Finish)
	}
}

func TestCustomPackerOption(t *testing.T) {
	res := run(t, Options{Period: 600, Packer: vectorpack.FirstFitDecreasing{}, NameOverride: "ffd-variant"},
		0, 2,
		jb(0, 0, 1, 0.5, 0.2, 100),
		jb(1, 0, 1, 0.5, 0.2, 100),
	)
	if res.Algorithm != "ffd-variant" {
		t.Errorf("algorithm name = %q", res.Algorithm)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("only %d jobs finished", len(res.Jobs))
	}
}

func TestPeriodicTicksDoNotLeakAfterCompletion(t *testing.T) {
	// A short workload under a periodic scheduler must terminate (the
	// simulator stops at the last completion even with timers pending).
	res := run(t, Options{Period: 600}, 0, 2, jb(0, 0, 1, 1.0, 0.2, 50))
	if res.Makespan != 650 {
		t.Errorf("makespan = %v, want 650 (start at tick 600 + 50s)", res.Makespan)
	}
}

func TestSameMultiset(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{[]int{1, 2}, []int{2, 1}, true},
		{[]int{1, 1, 2}, []int{1, 2, 2}, false},
		{[]int{}, []int{}, true},
		{[]int{1}, []int{1, 1}, false},
		{[]int{3, 3}, []int{3, 3}, true},
	}
	for _, c := range cases {
		if got := sim.SameMultiset(c.a, c.b); got != c.want {
			t.Errorf("SameMultiset(%v, %v) = %v", c.a, c.b, got)
		}
	}
}
