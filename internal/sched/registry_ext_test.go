package sched_test

import (
	"testing"

	"repro/internal/sched"

	// Populate the registry exactly as production binaries do.
	_ "repro/internal/sched/batch"
	_ "repro/internal/sched/greedy"
	_ "repro/internal/sched/mcb"
)

func TestRegistryContainsPaperAlgorithms(t *testing.T) {
	have := map[string]bool{}
	for _, n := range sched.Names() {
		have[n] = true
	}
	for _, want := range []string{
		"fcfs", "easy", "greedy", "greedy-pmtn", "greedy-pmtn-migr",
		"dynmcb8", "dynmcb8-per", "dynmcb8-asap-per", "dynmcb8-stretch-per",
	} {
		if !have[want] {
			t.Errorf("algorithm %q not registered (have %v)", want, sched.Names())
		}
	}
}

func TestNewReturnsFreshInstances(t *testing.T) {
	a, err := sched.New("fcfs")
	if err != nil {
		t.Fatal(err)
	}
	b, err := sched.New("fcfs")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("New returned a shared instance; schedulers carry per-run state")
	}
	if a.Name() != "fcfs" {
		t.Errorf("Name = %q", a.Name())
	}
}
