package sim

import (
	"fmt"
	"sync"
	"time"
)

// Observer receives scheduling transitions as a simulation executes. A nil
// observer costs nothing: every emission site is guarded by a nil check, so
// the hot path of an unobserved run is unchanged. Observers are invoked
// synchronously from the simulation loop, in deterministic order for a
// deterministic (trace, algorithm, cluster, penalty) tuple; an observer
// that blocks stalls the simulation, so long-running consumers should hand
// events off (see the dfrs.Stream facade helper).
//
// All times are simulated seconds. Node slices are copies the observer may
// retain. Elapsed in SchedulerInvoked is wall-clock time and therefore the
// only nondeterministic quantity delivered through this interface.
type Observer interface {
	// JobSubmitted fires when job jid enters the system, before the
	// scheduler's OnArrival hook runs.
	JobSubmitted(now float64, jid int)
	// JobStarted fires when job jid is dispatched onto nodes (one entry
	// per task) — both the first start and every restart after a
	// preemption.
	JobStarted(now float64, jid int, nodes []int)
	// JobPreempted fires when job jid is paused and releases its nodes.
	// The stream reports raw transitions: a pause that a same-event
	// resume later refunds or reclassifies as a migration still appears
	// here, so counting JobPreempted events can exceed the run's
	// Table II preemption accounting (Result.PreemptionOps), which is
	// charged net of those refunds.
	JobPreempted(now float64, jid int)
	// JobMigrated fires when job jid moves to a new node multiset,
	// including a same-event pause+resume pair the simulator reclassifies
	// as one migration.
	JobMigrated(now float64, jid int, nodes []int)
	// JobCompleted fires after job jid finishes and releases its nodes.
	JobCompleted(now float64, jid int, turnaround float64)
	// SchedulerInvoked fires after every scheduler hook invocation with
	// the hook's name ("init", "arrival", "completion", "timer"), the
	// number of unfinished jobs in the system, and the hook's wall-clock
	// duration (nondeterministic).
	SchedulerInvoked(now float64, hook string, jobsInSystem int, elapsed time.Duration)
}

// EventKind labels one Event delivered by an observer adapter.
type EventKind int

// Event kinds, in lifecycle order.
const (
	EvSubmitted EventKind = iota
	EvStarted
	EvPreempted
	EvMigrated
	EvCompleted
	EvSchedulerInvoked
)

// String returns the lowercase kind name.
func (k EventKind) String() string {
	switch k {
	case EvSubmitted:
		return "submitted"
	case EvStarted:
		return "started"
	case EvPreempted:
		return "preempted"
	case EvMigrated:
		return "migrated"
	case EvCompleted:
		return "completed"
	case EvSchedulerInvoked:
		return "scheduler-invoked"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one observer callback flattened into a value, the unit of the
// streaming facade (dfrs.Stream) and of test assertions on event
// sequences. Fields beyond Kind/Time are populated per kind: JID and Nodes
// for job transitions, Turnaround for completions, Hook/JobsInSystem/
// Elapsed for scheduler invocations. Elapsed is wall-clock time; zero it
// before comparing sequences for determinism.
type Event struct {
	Kind         EventKind
	Time         float64
	JID          int
	Nodes        []int
	Turnaround   float64
	Hook         string
	JobsInSystem int
	Elapsed      time.Duration
}

// String renders the event compactly for logs and live dashboards.
func (e Event) String() string {
	switch e.Kind {
	case EvCompleted:
		return fmt.Sprintf("t=%.1f job %d completed (turnaround %.1fs)", e.Time, e.JID, e.Turnaround)
	case EvStarted, EvMigrated:
		return fmt.Sprintf("t=%.1f job %d %s on %v", e.Time, e.JID, e.Kind, e.Nodes)
	case EvSchedulerInvoked:
		return fmt.Sprintf("t=%.1f scheduler %s (%d jobs in system, %v)", e.Time, e.Hook, e.JobsInSystem, e.Elapsed)
	default:
		return fmt.Sprintf("t=%.1f job %d %s", e.Time, e.JID, e.Kind)
	}
}

// Recorder is an Observer that collects every event in memory. It is safe
// for use from one simulation at a time (the simulator invokes observers
// synchronously); Events is additionally guarded so a recorder can be read
// while another goroutine runs the simulation.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Events returns a copy of the recorded events in emission order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

func (r *Recorder) add(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// JobSubmitted implements Observer.
func (r *Recorder) JobSubmitted(now float64, jid int) {
	r.add(Event{Kind: EvSubmitted, Time: now, JID: jid})
}

// JobStarted implements Observer.
func (r *Recorder) JobStarted(now float64, jid int, nodes []int) {
	r.add(Event{Kind: EvStarted, Time: now, JID: jid, Nodes: nodes})
}

// JobPreempted implements Observer.
func (r *Recorder) JobPreempted(now float64, jid int) {
	r.add(Event{Kind: EvPreempted, Time: now, JID: jid})
}

// JobMigrated implements Observer.
func (r *Recorder) JobMigrated(now float64, jid int, nodes []int) {
	r.add(Event{Kind: EvMigrated, Time: now, JID: jid, Nodes: nodes})
}

// JobCompleted implements Observer.
func (r *Recorder) JobCompleted(now float64, jid int, turnaround float64) {
	r.add(Event{Kind: EvCompleted, Time: now, JID: jid, Turnaround: turnaround})
}

// SchedulerInvoked implements Observer.
func (r *Recorder) SchedulerInvoked(now float64, hook string, jobsInSystem int, elapsed time.Duration) {
	r.add(Event{Kind: EvSchedulerInvoked, Time: now, Hook: hook, JobsInSystem: jobsInSystem, Elapsed: elapsed})
}

// FanoutObserver forwards every callback to each member in order. It lets
// callers combine an application observer with an adapter such as the
// streaming channel bridge.
type FanoutObserver []Observer

// JobSubmitted implements Observer.
func (f FanoutObserver) JobSubmitted(now float64, jid int) {
	for _, o := range f {
		o.JobSubmitted(now, jid)
	}
}

// JobStarted implements Observer.
func (f FanoutObserver) JobStarted(now float64, jid int, nodes []int) {
	for _, o := range f {
		o.JobStarted(now, jid, nodes)
	}
}

// JobPreempted implements Observer.
func (f FanoutObserver) JobPreempted(now float64, jid int) {
	for _, o := range f {
		o.JobPreempted(now, jid)
	}
}

// JobMigrated implements Observer.
func (f FanoutObserver) JobMigrated(now float64, jid int, nodes []int) {
	for _, o := range f {
		o.JobMigrated(now, jid, nodes)
	}
}

// JobCompleted implements Observer.
func (f FanoutObserver) JobCompleted(now float64, jid int, turnaround float64) {
	for _, o := range f {
		o.JobCompleted(now, jid, turnaround)
	}
}

// SchedulerInvoked implements Observer.
func (f FanoutObserver) SchedulerInvoked(now float64, hook string, jobsInSystem int, elapsed time.Duration) {
	for _, o := range f {
		o.SchedulerInvoked(now, hook, jobsInSystem, elapsed)
	}
}
