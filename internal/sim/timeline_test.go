package sim

import (
	"math"
	"testing"
)

func runTimeline(t *testing.T, cfg Config, s Scheduler) *Result {
	t.Helper()
	cfg.RecordTimeline = true
	cfg.CheckInvariants = true
	simulator, err := New(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulator.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTimelineSimpleRun(t *testing.T) {
	res := runTimeline(t, Config{Trace: trace(job(0, 10, 1, 100))}, startImmediately(1))
	segs := res.JobSegments(0)
	if len(segs) != 1 {
		t.Fatalf("segments: %+v", segs)
	}
	s := segs[0]
	if s.State != SegRunning || s.From != 10 || math.Abs(s.To-110) > 1e-9 || s.Yield != 1 {
		t.Errorf("segment: %+v", s)
	}
}

func TestTimelineWaitingSegment(t *testing.T) {
	// A scheduler that delays the start by a timer creates a waiting
	// segment first.
	s := &script{
		onArrival: func(ctl *Controller, jid int) { ctl.SetTimer(50, int64(jid)) },
		onTimer: func(ctl *Controller, tag int64) {
			ctl.Start(int(tag), []int{0})
			ctl.SetYield(int(tag), 1)
		},
	}
	res := runTimeline(t, Config{Trace: trace(job(0, 0, 1, 100))}, s)
	segs := res.JobSegments(0)
	if len(segs) != 2 {
		t.Fatalf("segments: %+v", segs)
	}
	if segs[0].State != SegWaiting || segs[0].From != 0 || segs[0].To != 50 {
		t.Errorf("waiting segment: %+v", segs[0])
	}
	if segs[1].State != SegRunning || segs[1].To != 150 {
		t.Errorf("running segment: %+v", segs[1])
	}
}

func TestTimelineYieldChangeSplitsSegments(t *testing.T) {
	s := startImmediately(1)
	s.onInit = func(ctl *Controller) { ctl.SetTimer(40, 1) }
	s.onTimer = func(ctl *Controller, tag int64) { ctl.SetYield(0, 0.5) }
	res := runTimeline(t, Config{Trace: trace(job(0, 0, 1, 100))}, s)
	segs := res.JobSegments(0)
	if len(segs) != 2 {
		t.Fatalf("segments: %+v", segs)
	}
	if segs[0].Yield != 1 || segs[0].To != 40 {
		t.Errorf("first segment: %+v", segs[0])
	}
	// Remaining 60 virtual seconds at yield 0.5 = 120 wall seconds.
	if segs[1].Yield != 0.5 || math.Abs(segs[1].To-160) > 1e-9 {
		t.Errorf("second segment: %+v", segs[1])
	}
}

func TestTimelinePauseResumeWithPenalty(t *testing.T) {
	s := &script{
		onArrival: func(ctl *Controller, jid int) {
			ctl.Start(jid, []int{0})
			ctl.SetYield(jid, 1)
		},
		onInit: func(ctl *Controller) {
			ctl.SetTimer(10, 1)
			ctl.SetTimer(20, 2)
		},
		onTimer: func(ctl *Controller, tag int64) {
			switch tag {
			case 1:
				ctl.Pause(0)
			case 2:
				ctl.Resume(0, []int{1})
				ctl.SetYield(0, 1)
			}
		},
	}
	res := runTimeline(t, Config{Trace: trace(job(0, 0, 1, 100)), Penalty: 300}, s)
	segs := res.JobSegments(0)
	// running(0-10), paused(10-20), frozen(20-320), running(320-410).
	want := []struct {
		state    SegmentState
		from, to float64
	}{
		{SegRunning, 0, 10},
		{SegPaused, 10, 20},
		{SegFrozen, 20, 320},
		{SegRunning, 320, 410},
	}
	if len(segs) != len(want) {
		t.Fatalf("segments: %+v", segs)
	}
	for i, w := range want {
		if segs[i].State != w.state || math.Abs(segs[i].From-w.from) > 1e-9 || math.Abs(segs[i].To-w.to) > 1e-9 {
			t.Errorf("segment %d = %+v, want %+v", i, segs[i], w)
		}
	}
}

func TestTimelineDisabledByDefault(t *testing.T) {
	res := mustRun(t, Config{Trace: trace(job(0, 0, 1, 10))}, startImmediately(1))
	if len(res.Timeline) != 0 {
		t.Errorf("timeline recorded without opt-in: %d events", len(res.Timeline))
	}
	if segs := res.JobSegments(0); segs != nil {
		t.Errorf("segments from empty timeline: %+v", segs)
	}
}

func TestTimelineKindStrings(t *testing.T) {
	names := map[TimelineKind]string{
		TlSubmit: "submit", TlStart: "start", TlYield: "yield",
		TlPause: "pause", TlResume: "resume", TlMigrate: "migrate", TlFinish: "finish",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q", int(k), got)
		}
	}
	states := map[SegmentState]string{
		SegWaiting: "waiting", SegRunning: "running", SegFrozen: "frozen", SegPaused: "paused",
	}
	for s, want := range states {
		if got := s.String(); got != want {
			t.Errorf("SegmentState(%d).String() = %q", int(s), got)
		}
	}
}
