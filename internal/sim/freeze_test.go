package sim

import "testing"

// TestFrozenJobCompletesNoEarlierThanPenalty pins the finishDue freeze
// check: a job migrated at the brink of completion (zero virtual time
// left) still pays the full rescheduling penalty. Before the fix, any
// later event — here the completions of two bystander jobs at t=150 and
// t=200 — would complete the frozen job early, silently erasing the
// penalty from its turnaround.
func TestFrozenJobCompletesNoEarlierThanPenalty(t *testing.T) {
	s := &script{
		onArrival: func(ctl *Controller, jid int) {
			switch jid {
			case 0:
				ctl.Start(0, []int{0})
				ctl.SetYield(0, 1)
			case 1:
				ctl.Start(1, []int{1})
				ctl.SetYield(1, 1)
			case 2:
				// t=100: job 0's remaining virtual time hits zero at this
				// very instant (arrival events outrank the re-armed
				// completion event at equal times). Migrating it now leaves
				// a running job with zero remaining, frozen until t=400.
				ctl.Migrate(0, []int{2})
				ctl.SetYield(0, 1)
				ctl.Start(2, []int{3})
				ctl.SetYield(2, 1)
			}
		},
	}
	res := mustRun(t, Config{
		Trace: trace(
			job(0, 0, 1, 100),
			job(1, 0, 1, 200),
			job(2, 100, 1, 50),
		),
		Penalty: 300,
	}, s)

	byID := map[int]JobResult{}
	for _, jr := range res.Jobs {
		byID[jr.Job.ID] = jr
	}
	if got := byID[0].Finish; got != 400 {
		t.Errorf("migrated job finish = %v, want 400 (migration at 100 + penalty 300)", got)
	}
	if byID[0].Migrations != 1 {
		t.Errorf("migrations = %d, want 1", byID[0].Migrations)
	}
	if got := byID[2].Finish; got != 150 {
		t.Errorf("bystander job 2 finish = %v, want 150", got)
	}
	if got := byID[1].Finish; got != 200 {
		t.Errorf("bystander job 1 finish = %v, want 200", got)
	}
	if res.Makespan != 400 {
		t.Errorf("makespan = %v, want 400", res.Makespan)
	}
}
