package sim_test

// Multi-resource (d >= 3) invariant battery: every registered algorithm
// runs a GPU-demanding workload on three-dimensional clusters with
// per-event validation of every rigid dimension, plus directed tests of
// the per-dimension eager unschedulability check.

import (
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// gpuTrace decorates the shared contended trace with a GPU demand on a
// third of the jobs, then strips the demand from jobs that could not fit
// the partially-equipped gpu-bimodal layout (only every fourth node
// carries a GPU), so the same trace is feasible on every GPU profile and
// the battery exercises the schedulers rather than the eager reject path.
func gpuTrace(t *testing.T) *workload.Trace {
	t.Helper()
	tr, err := workload.AttachGPUDemand(invariantTrace(t), rng.New(5).Split("gpu"), 0.33, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	gpuJobs := 0
	for i, j := range tr.Jobs {
		if j.Dims() <= 2 {
			continue
		}
		slots := 4 * min(int(1/j.MemReq), int(2/j.Extra[0]))
		if j.Tasks > slots {
			tr.Jobs[i].Extra = nil
			continue
		}
		gpuJobs++
	}
	if gpuJobs == 0 {
		t.Fatal("gpu trace carries no gpu jobs")
	}
	return tr
}

// TestInvariantsOnGPUClusters: every algorithm completes the GPU-demanding
// trace on the gpu-uniform profile, and every non-batch algorithm also on
// the partially-equipped gpu-bimodal mix, with per-event capacity
// validation in every dimension. Batch baselines allocate whole nodes
// exclusively, so on gpu-bimodal a multi-task GPU job can be eligible on
// fewer nodes than its task count — those (scheduler, cluster) pairs are
// covered by TestBatchRejectsUnderprovisionedGPUTrace.
func TestInvariantsOnGPUClusters(t *testing.T) {
	tr := gpuTrace(t)
	nonBatch := []string{"greedy", "greedy-pmtn", "greedy-pmtn-migr",
		"dynmcb8", "dynmcb8-per", "dynmcb8-asap-per", "dynmcb8-stretch-per"}
	for _, tc := range []struct {
		mix  string
		algs []string
	}{
		{cluster.ProfileGPUUniform, nineAlgorithms},
		{cluster.ProfileGPUBimodal, nonBatch},
	} {
		cl, err := cluster.Profile(tc.mix, tr.Nodes)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range tc.algs {
			s, err := sched.New(alg)
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			simulator, err := sim.New(sim.Config{
				Trace:           tr,
				Cluster:         cl,
				CheckInvariants: true,
				Penalty:         300,
				MaxSimTime:      50 * 365 * 24 * 3600,
			}, s)
			if err != nil {
				t.Fatalf("%s on %s: %v", alg, tc.mix, err)
			}
			res, err := simulator.Run()
			if err != nil {
				t.Fatalf("%s on %s: %v", alg, tc.mix, err)
			}
			checkResultInvariants(t, tr, res, alg+"/"+tc.mix, 300)
		}
	}
}

// TestBatchRejectsUnderprovisionedGPUTrace: a multi-task GPU job eligible
// on fewer nodes than its task count would block a batch FIFO queue
// forever; sim.New rejects the combination eagerly through the scheduler's
// CapacityChecker instead of deadlocking mid-run.
func TestBatchRejectsUnderprovisionedGPUTrace(t *testing.T) {
	// 4 nodes, 1 GPU node (gpu-bimodal layout), one 2-task GPU job.
	tr := &workload.Trace{Name: "gpu-starve", Nodes: 4, NodeMemGB: 4, Jobs: []workload.Job{
		{ID: 0, Submit: 0, Tasks: 2, CPUNeed: 0.5, MemReq: 0.5, ExecTime: 10, Extra: []float64{0.2}},
	}}
	cl, err := cluster.Profile(cluster.ProfileGPUBimodal, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"fcfs", "easy", "conservative"} {
		s, err := sched.New(alg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.New(sim.Config{Trace: tr, Cluster: cl}, s); err == nil {
			t.Errorf("%s accepted a trace it can never finish", alg)
		}
	}
	// DFRS algorithms stack tasks and accept the same combination.
	s, err := sched.New("greedy")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.New(sim.Config{Trace: tr, Cluster: cl}, s); err != nil {
		t.Errorf("greedy rejected a feasible trace: %v", err)
	}
}

// TestGPUDemandOnTwoDimClusterRejected: a job demanding a dimension the
// cluster does not declare is eagerly rejected with a typed error naming
// the binding resource.
func TestGPUDemandOnTwoDimClusterRejected(t *testing.T) {
	tr := &workload.Trace{Name: "gpu-miss", Nodes: 2, NodeMemGB: 4, Jobs: []workload.Job{
		{ID: 7, Submit: 0, Tasks: 1, CPUNeed: 0.5, MemReq: 0.5, ExecTime: 10, Extra: []float64{0.4}},
	}}
	s, err := sched.New("fcfs")
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.New(sim.Config{Trace: tr, Cluster: cluster.Homogeneous(2)}, s)
	var ue *sim.UnschedulableError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want UnschedulableError", err)
	}
	if ue.JobID != 7 || ue.Resource != "gpu" || ue.MaxCap != 0 {
		t.Errorf("UnschedulableError = %+v, want job 7 bound by gpu with max capacity 0", ue)
	}
}

// TestGPUDemandExceedingEveryGPUNodeRejected: the per-dimension eager
// check also fires when the dimension exists but no node is large enough.
func TestGPUDemandExceedingEveryGPUNodeRejected(t *testing.T) {
	tr := &workload.Trace{Name: "gpu-big", Nodes: 2, NodeMemGB: 4, Jobs: []workload.Job{
		{ID: 3, Submit: 0, Tasks: 1, CPUNeed: 0.5, MemReq: 0.5, ExecTime: 10, Extra: []float64{0.9}},
	}}
	cl := cluster.New([]cluster.NodeSpec{cluster.Spec(1, 1, 0.5), cluster.Spec(1, 1, 0.2)})
	s, err := sched.New("fcfs")
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.New(sim.Config{Trace: tr, Cluster: cl}, s)
	var ue *sim.UnschedulableError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want UnschedulableError", err)
	}
	if ue.Resource != "gpu" || ue.Need != 0.9 || ue.MaxCap != 0.5 {
		t.Errorf("UnschedulableError = %+v, want gpu need 0.9 vs max 0.5", ue)
	}
}

// TestGangRejectsRowInfeasibleGPUJob: a gang row runs at yield 1, so a
// CPU-hungry multi-task GPU job can exceed a fresh row on a partial-GPU
// mix even though the rigid aggregate check passes (GPU slots alone would
// suffice at yield < 1). Without gang's CapacityChecker veto the job sat
// queued while the quantum timer re-armed forever.
func TestGangRejectsRowInfeasibleGPUJob(t *testing.T) {
	// 8 nodes, 2 GPU nodes (gpu-bimodal layout): rigid slots = 2 nodes x
	// floor(2/0.5) = 8 >= 4 (generic check passes), but CPU at yield 1
	// allows floor(1/0.6) = 1 task per GPU node -> 2 < 4.
	tr := &workload.Trace{Name: "gang-row", Nodes: 8, NodeMemGB: 4, Jobs: []workload.Job{
		{ID: 0, Submit: 0, Tasks: 4, CPUNeed: 0.6, MemReq: 0.1, ExecTime: 10, Extra: []float64{0.5}},
	}}
	cl, err := cluster.Profile(cluster.ProfileGPUBimodal, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New("gang")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.New(sim.Config{Trace: tr, Cluster: cl}, s); err == nil {
		t.Fatal("gang accepted a job that never fits one of its rows")
	}
	// The same job without the CPU pressure is accepted and completes.
	ok := *tr
	ok.Jobs = []workload.Job{{ID: 0, Submit: 0, Tasks: 4, CPUNeed: 0.2, MemReq: 0.1, ExecTime: 10, Extra: []float64{0.5}}}
	s, err = sched.New("gang")
	if err != nil {
		t.Fatal(err)
	}
	simulator, err := sim.New(sim.Config{Trace: &ok, Cluster: cl, CheckInvariants: true,
		MaxSimTime: 50 * 365 * 24 * 3600}, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simulator.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestTinyDemandDoesNotOverflowSlotCount: a vanishingly small rigid demand
// pushes capacity/demand past the int range, where the float-to-int
// conversion is implementation-defined; the eager slot count must clamp
// before converting instead of rejecting a trivially feasible trace.
func TestTinyDemandDoesNotOverflowSlotCount(t *testing.T) {
	tr := &workload.Trace{Name: "tiny", Nodes: 2, NodeMemGB: 4, Jobs: []workload.Job{
		{ID: 0, Submit: 0, Tasks: 2, CPUNeed: 0.5, MemReq: 1e-20, ExecTime: 10},
	}}
	for _, alg := range []string{"greedy-pmtn", "gang", "fcfs"} {
		s, err := sched.New(alg)
		if err != nil {
			t.Fatal(err)
		}
		simulator, err := sim.New(sim.Config{Trace: tr, CheckInvariants: true,
			MaxSimTime: 50 * 365 * 24 * 3600}, s)
		if err != nil {
			t.Fatalf("%s: tiny-demand trace rejected: %v", alg, err)
		}
		if _, err := simulator.Run(); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
}

// TestGPUHardConstraintSerializes: two jobs each demanding the full GPU of
// the only GPU node must run one after the other even though CPU and
// memory would let them share — the rigid dimension is the binding
// constraint.
func TestGPUHardConstraintSerializes(t *testing.T) {
	tr := &workload.Trace{Name: "gpu-serial", Nodes: 2, NodeMemGB: 4, Jobs: []workload.Job{
		{ID: 0, Submit: 0, Tasks: 1, CPUNeed: 0.1, MemReq: 0.1, ExecTime: 100, Extra: []float64{1.0}},
		{ID: 1, Submit: 0, Tasks: 1, CPUNeed: 0.1, MemReq: 0.1, ExecTime: 100, Extra: []float64{1.0}},
	}}
	cl := cluster.NewWithDims([]string{"cpu", "mem", "gpu"},
		[]cluster.NodeSpec{cluster.Spec(1, 1, 1), cluster.Spec(1, 1, 0)})
	s, err := sched.New("greedy")
	if err != nil {
		t.Fatal(err)
	}
	simulator, err := sim.New(sim.Config{Trace: tr, Cluster: cl, CheckInvariants: true,
		MaxSimTime: 50 * 365 * 24 * 3600}, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulator.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("%d jobs finished", len(res.Jobs))
	}
	if res.Makespan < 200-1e-6 {
		t.Errorf("makespan %.1f, want >= 200 (gpu forces serialization)", res.Makespan)
	}
}
