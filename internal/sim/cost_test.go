package sim

// Cost-accounting unit tests against hand-computed schedules: the
// simulator's NodeCostSeconds must equal node cost rate x occupied
// seconds, summed per hosted job, including yield-0 and frozen intervals,
// and must stay exactly zero on unpriced clusters.

import (
	"math"
	"testing"

	"repro/internal/cluster"
)

// pricedCluster returns 4 unit-capacity nodes with cost rates 2, 5, 1, 0.
func pricedCluster() *cluster.Cluster {
	return cluster.New([]cluster.NodeSpec{
		cluster.Unit().WithCost(2),
		cluster.Unit().WithCost(5),
		cluster.Unit().WithCost(1),
		cluster.Unit(),
	})
}

func TestCostSingleJobFullYield(t *testing.T) {
	// One task on node 0 (rate 2) for exactly 100 seconds: 200 units.
	res := mustRun(t, Config{Trace: trace(job(0, 0, 1, 100)), Cluster: pricedCluster()}, startImmediately(1))
	if got, want := res.NodeCostSeconds, 200.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("NodeCostSeconds = %g, want %g", got, want)
	}
}

func TestCostScalesWithOccupancyNotYield(t *testing.T) {
	// Yield 0.5 doubles the occupancy of the same 100-second job: the node
	// is held for 200 seconds, so cost doubles even though delivered work
	// is identical.
	res := mustRun(t, Config{Trace: trace(job(0, 0, 1, 100)), Cluster: pricedCluster()}, startImmediately(0.5))
	if got, want := res.NodeCostSeconds, 400.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("NodeCostSeconds = %g, want %g", got, want)
	}
}

func TestCostMultiTaskCountsPerTask(t *testing.T) {
	// Three tasks on nodes 0, 1, 2 (rates 2+5+1 = 8) for 50 seconds: 400
	// units — a node hosting several tasks accrues its rate once per task.
	res := mustRun(t, Config{Trace: trace(job(0, 0, 3, 50)), Cluster: pricedCluster()}, startImmediately(1))
	if got, want := res.NodeCostSeconds, 400.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("NodeCostSeconds = %g, want %g", got, want)
	}
}

func TestCostPauseResumeAndFrozenInterval(t *testing.T) {
	// Hand-computed pause/resume schedule with a 10-second penalty:
	//
	//	t=0    start on node 0 (rate 2), yield 1
	//	t=50   timer: pause (node released; 50 virtual seconds done)
	//	t=80   timer: resume on node 1 (rate 5), frozen until t=90
	//	t=140  completion (50 remaining virtual seconds after the freeze)
	//
	// Occupancy: node 0 for 50s (100 units) + node 1 for 60s including the
	// 10 frozen seconds (300 units) = 400. The paused interval accrues
	// nothing.
	s := &script{
		onInit: func(ctl *Controller) {
			ctl.SetTimer(50, 1)
			ctl.SetTimer(80, 2)
		},
		onArrival: func(ctl *Controller, jid int) {
			ctl.Start(jid, []int{0})
			ctl.SetYield(jid, 1)
		},
		onTimer: func(ctl *Controller, tag int64) {
			switch tag {
			case 1:
				ctl.Pause(0)
			case 2:
				ctl.Resume(0, []int{1})
				ctl.SetYield(0, 1)
			}
		},
	}
	res := mustRun(t, Config{Trace: trace(job(0, 0, 1, 100)), Cluster: pricedCluster(), Penalty: 10}, s)
	if got := res.Jobs[0].Finish; math.Abs(got-140) > 1e-9 {
		t.Fatalf("finish = %g, want 140", got)
	}
	if got, want := res.NodeCostSeconds, 400.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("NodeCostSeconds = %g, want %g", got, want)
	}
}

func TestCostYieldZeroStillOccupies(t *testing.T) {
	// A suspended (yield-0) job keeps its nodes — a gang row's VM-resident
	// footprint: 40 seconds suspended on node 0 then 100 at full speed:
	// 2 x 140 = 280 units.
	s := &script{
		onInit: func(ctl *Controller) { ctl.SetTimer(40, 1) },
		onArrival: func(ctl *Controller, jid int) {
			ctl.Start(jid, []int{0})
			ctl.SetYield(jid, 0)
		},
		onTimer: func(ctl *Controller, tag int64) {
			ctl.SetYield(0, 1)
		},
	}
	res := mustRun(t, Config{Trace: trace(job(0, 0, 1, 100)), Cluster: pricedCluster()}, s)
	if got := res.Jobs[0].Finish; math.Abs(got-140) > 1e-9 {
		t.Fatalf("finish = %g, want 140", got)
	}
	if got, want := res.NodeCostSeconds, 280.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("NodeCostSeconds = %g, want %g", got, want)
	}
}

func TestCostZeroOnUnpricedCluster(t *testing.T) {
	// The paper's platform carries no prices: the accounting must stay
	// exactly 0.0 (not merely small) so pre-pricing outputs are identical.
	res := mustRun(t, Config{Trace: trace(job(0, 0, 2, 100))}, startImmediately(0.7))
	if res.NodeCostSeconds != 0 {
		t.Fatalf("NodeCostSeconds = %g on an unpriced cluster, want exact 0", res.NodeCostSeconds)
	}
}
