package sim

import "testing"

// BenchmarkSameMultiset measures the node-multiset comparison on the shapes
// the simulator actually sees: repacks usually hand a job back the exact
// node list it already held (the element-wise equality fast path), small
// gangs take the quadratic path, and only large permuted placements fall
// through to the counting map.
func BenchmarkSameMultiset(b *testing.B) {
	perm := func(n, rot int) []int {
		s := make([]int, n)
		for i := range s {
			s[i] = (i + rot) % n
		}
		return s
	}
	cases := []struct {
		name string
		x, y []int
	}{
		{"equal4", perm(4, 0), perm(4, 0)},
		{"permuted4", perm(4, 0), perm(4, 1)},
		{"equal32", perm(32, 0), perm(32, 0)},
		{"permuted32", perm(32, 0), perm(32, 7)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !SameMultiset(c.x, c.y) {
					b.Fatal("multisets should match")
				}
			}
		})
	}
}
