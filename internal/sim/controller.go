package sim

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/floats"
	"repro/internal/placement"
	"repro/internal/sim/index"
	"repro/internal/workload"
)

// Controller is the interface the simulator hands to scheduling algorithms.
// It exposes read access to cluster and job state and the mutating
// operations of Section II-B1: starting jobs, setting per-job yields,
// pausing (preempting), resuming and migrating. All mutations take effect
// instantaneously in simulated time; resumes and migrations additionally
// freeze the job for the configured rescheduling penalty, which the
// algorithms do not observe.
//
// Misuse (starting a non-pending job, oversubscribing memory, yields
// violating node CPU capacity) panics: schedulers in this repository are
// trusted code and such a call is always a bug.
type Controller struct {
	sim *Simulator
}

// Now returns the current simulated time in seconds.
func (c *Controller) Now() float64 { return c.sim.now }

// NumNodes returns the cluster size.
func (c *Controller) NumNodes() int { return len(c.sim.usedCPU) }

// Cluster returns the simulated cluster's resource model. Schedulers must
// treat it as read-only.
func (c *Controller) Cluster() *cluster.Cluster { return c.sim.cl }

// CPUCap returns node's CPU capacity (1.0 on the paper's platform).
func (c *Controller) CPUCap(node int) float64 { return c.sim.cl.CPUCap(node) }

// MemCap returns node's memory capacity (1.0 on the paper's platform).
func (c *Controller) MemCap(node int) float64 { return c.sim.cl.MemCap(node) }

// NumDims returns the cluster's resource dimension count (2 on the paper's
// platform: CPU and memory).
func (c *Controller) NumDims() int { return c.sim.cl.D() }

// Objective returns the run's configured placement objective, or nil when
// the run uses each scheduler family's default selection rule (the paper's
// behaviour). Every family consults it when choosing among feasible nodes
// (see internal/placement).
func (c *Controller) Objective() placement.Objective { return c.sim.cfg.Objective }

// NodeCost returns node's cost rate (cluster.NodeSpec.Cost; 0 on unpriced
// platforms).
func (c *Controller) NodeCost(node int) float64 { return c.sim.cl.Nodes[node].Cost }

// DimName returns the name of resource dimension k ("cpu", "mem",
// "gpu", ...).
func (c *Controller) DimName(k int) string { return c.sim.cl.DimName(k) }

// ResCap returns node's capacity in resource dimension k.
func (c *Controller) ResCap(node, k int) float64 { return c.sim.cl.Cap(node, k) }

// UsedRes returns the amount of rigid resource dimension k currently
// allocated on node. Dimension 1 is memory; dimensions beyond the
// cluster's count report 0, consistent with Cluster.Cap. Asking for the
// fluid CPU dimension (k = 0) panics — use AllocatedCPU for it.
func (c *Controller) UsedRes(node, k int) float64 {
	if k < 1 {
		panic(fmt.Sprintf("sim: UsedRes(%d, %d): rigid dimensions start at 1; use AllocatedCPU for the CPU dimension", node, k))
	}
	if k-1 >= len(c.sim.usedRigid) {
		return 0
	}
	return c.sim.usedRigid[k-1][node]
}

// FreeRes returns the free amount of rigid resource dimension k on node
// (its capacity minus the allocated amount; 0 for dimensions the cluster
// does not declare). Asking for the fluid CPU dimension (k = 0) panics.
func (c *Controller) FreeRes(node, k int) float64 {
	return floats.NonNeg(c.sim.cl.Cap(node, k) - c.UsedRes(node, k))
}

// NumJobs returns the number of jobs in the trace.
func (c *Controller) NumJobs() int { return len(c.sim.jobs) }

// Job returns a read-only snapshot of job jid.
func (c *Controller) Job(jid int) JobInfo {
	j := c.sim.jobs[jid]
	var nodes []int
	if j.nodes != nil {
		nodes = append([]int(nil), j.nodes...)
	}
	return JobInfo{
		JID:         jid,
		Job:         j.job,
		State:       j.state,
		Nodes:       nodes,
		Yield:       j.yield,
		VirtualTime: j.virtual,
		Remaining:   j.remaining,
		FrozenUntil: j.frozenUntil,
		Attempts:    j.attempts,
		LastPause:   j.lastPauseTime,
	}
}

// JobLite returns the same snapshot as Job without copying the node list:
// the Nodes field is nil regardless of state. Schedulers on the hot path
// pair it with JobNodes when they actually need the placement.
func (c *Controller) JobLite(jid int) JobInfo {
	j := c.sim.jobs[jid]
	return JobInfo{
		JID:         jid,
		Job:         j.job,
		State:       j.state,
		Yield:       j.yield,
		VirtualTime: j.virtual,
		Remaining:   j.remaining,
		FrozenUntil: j.frozenUntil,
		Attempts:    j.attempts,
		LastPause:   j.lastPauseTime,
	}
}

// JobNodes returns the node placement of job jid (one entry per task while
// Running, nil otherwise) as a read-only view into simulator state. Callers
// must not mutate or retain it across Controller mutations.
func (c *Controller) JobNodes(jid int) []int { return c.sim.jobs[jid].nodes }

// JobState returns the lifecycle state of job jid.
func (c *Controller) JobState(jid int) JobState { return c.sim.jobs[jid].state }

// JobRef returns a read-only pointer to job jid's immutable trace record,
// sparing hot-path callers the full JobInfo copy when they only need the
// static job description.
func (c *Controller) JobRef(jid int) *workload.Job { return &c.sim.jobs[jid].job }

// VirtualTime returns job jid's accumulated virtual seconds.
func (c *Controller) VirtualTime(jid int) float64 { return c.sim.jobs[jid].virtual }

// JobsInState returns the jids of all jobs currently in the given state, in
// increasing jid order (deterministic). Jobs whose submission time lies in
// the future are invisible to schedulers and never returned, even though
// they sit in the Pending state internally.
func (c *Controller) JobsInState(state JobState) []int {
	return c.AppendJobsInState(nil, state)
}

// AppendJobsInState appends the jids JobsInState would return to dst and
// returns the extended slice; hot-path callers reuse dst across events to
// avoid per-call allocations. The Pending/Running/Paused states are served
// from the simulator's incremental indexes in O(answer).
func (c *Controller) AppendJobsInState(dst []int, state JobState) []int {
	s := c.sim
	switch state {
	case Pending:
		return append(dst, s.visPending...)
	case Running:
		return append(dst, s.running...)
	case Paused:
		return append(dst, s.paused...)
	}
	for jid, j := range s.jobs {
		if j != nil && j.state == state && j.job.Submit <= s.now {
			dst = append(dst, jid)
		}
	}
	return dst
}

// ActiveJobs returns the jids of all jobs currently in the system and
// holding or wanting resources: submitted-pending, running and paused.
func (c *Controller) ActiveJobs() []int {
	return c.AppendActiveJobs(nil)
}

// AppendActiveJobs appends the jids ActiveJobs would return to dst — in
// increasing jid order, merged from the three per-state indexes — and
// returns the extended slice.
func (c *Controller) AppendActiveJobs(dst []int) []int {
	s := c.sim
	p, r, q := s.visPending, s.running, s.paused
	for len(p) > 0 || len(r) > 0 || len(q) > 0 {
		best := math.MaxInt
		if len(p) > 0 {
			best = p[0]
		}
		if len(r) > 0 && r[0] < best {
			best = r[0]
		}
		if len(q) > 0 && q[0] < best {
			best = q[0]
		}
		switch {
		case len(p) > 0 && p[0] == best:
			p = p[1:]
		case len(r) > 0 && r[0] == best:
			r = r[1:]
		default:
			q = q[1:]
		}
		dst = append(dst, best)
	}
	return dst
}

// CPULoad returns the paper's CPU load of a node: the sum of the CPU needs
// of the tasks allocated to it (which may exceed the node's capacity).
func (c *Controller) CPULoad(node int) float64 { return c.sim.cpuLoad[node] }

// AllocatedCPU returns the CPU of a node currently promised to tasks (sum
// of need x yield; at most the node's CPU capacity).
func (c *Controller) AllocatedCPU(node int) float64 { return c.sim.usedCPU[node] }

// UsedMem returns the memory of a node currently allocated.
func (c *Controller) UsedMem(node int) float64 { return c.sim.usedRigid[0][node] }

// FreeMem returns the free memory of a node (its capacity minus the
// allocated memory).
func (c *Controller) FreeMem(node int) float64 {
	return floats.NonNeg(c.sim.cl.MemCap(node) - c.sim.usedRigid[0][node])
}

// MaxCPULoad returns the maximum relative CPU load over all nodes — each
// node's load divided by its own CPU capacity (the paper's capital lambda;
// on the unit-capacity platform this is exactly the raw load). The greedy
// yield rule 1/max(1, lambda) keeps every node within its capacity. The
// value is read from the node index's root, so it is O(1).
func (c *Controller) MaxCPULoad() float64 {
	return c.sim.nodeIdx.MaxLoad()
}

// NodeIndex exposes the simulator's tournament tree over per-node
// (relative CPU load, free memory). Schedulers may query it — and overlay
// tentative placements with Set — but must restore every touched leaf to
// the live values (CPULoad(node)/CPUCap(node), FreeMem(node)) before
// returning control to the simulator.
func (c *Controller) NodeIndex() *index.NodeIndex { return c.sim.nodeIdx }

// IncrementAttempts bumps and returns the job's failed-attempt counter,
// which greedy algorithms use for bounded exponential backoff.
func (c *Controller) IncrementAttempts(jid int) int {
	c.sim.jobs[jid].attempts++
	return c.sim.jobs[jid].attempts
}

// SetTimer schedules an OnTimer callback with the given tag at time at
// (>= now).
func (c *Controller) SetTimer(at float64, tag int64) {
	if at < c.sim.now {
		panic(fmt.Sprintf("sim: timer at %.3f in the past (now %.3f)", at, c.sim.now))
	}
	c.sim.queue.Push(at, timerEv{tag: tag})
}

// Start dispatches pending job jid onto the given nodes (one entry per
// task; a node may appear multiple times) with an initial yield of zero.
// Callers must follow up with SetYield. Starting fresh carries no penalty.
func (c *Controller) Start(jid int, nodes []int) {
	s := c.sim
	j := s.jobs[jid]
	if j.state != Pending {
		panic(fmt.Sprintf("sim: Start on job %d in state %v", jid, j.state))
	}
	if len(nodes) != j.job.Tasks {
		panic(fmt.Sprintf("sim: Start job %d with %d nodes for %d tasks", jid, len(nodes), j.job.Tasks))
	}
	s.occupyNodes(j, nodes)
	j.state = Running
	j.yield = 0
	s.visPending = removeJid(s.visPending, jid)
	s.running = insertJid(s.running, jid)
	if j.start < 0 {
		j.start = s.now
	}
	s.record(TlStart, jid, 0, 0)
	if s.obs != nil {
		s.obs.JobStarted(s.now, jid, append([]int(nil), nodes...))
	}
}

// Pause preempts running job jid: it stops progressing and releases its
// nodes immediately. The preemption occurrence and the save traffic
// (tasks x memReq x nodeMemGB) are accounted to Table II's preemption
// columns; the matching restore traffic is accounted on Resume.
func (c *Controller) Pause(jid int) {
	s := c.sim
	j := s.jobs[jid]
	if j.state != Running {
		panic(fmt.Sprintf("sim: Pause on job %d in state %v", jid, j.state))
	}
	// Refill the retained buffer in place (newRT preserves it across
	// recycling) so pauses allocate nothing at steady state.
	j.lastNodes = append(j.lastNodes[:0], j.nodes...)
	s.releaseNodes(j)
	j.state = Paused
	j.yield = 0
	s.running = removeJid(s.running, jid)
	s.paused = insertJid(s.paused, jid)
	j.pauses++
	j.prevPauseTime = j.lastPauseTime
	j.lastPauseTime = s.now
	j.lastPauseWas = true
	s.result.PreemptionOps++
	s.result.PreemptionGB += s.memGB(j)
	s.record(TlPause, jid, 0, 0)
	if s.obs != nil {
		s.obs.JobPreempted(s.now, jid)
	}
}

// Resume restarts paused job jid on the given nodes with yield zero and
// freezes it for the rescheduling penalty. Two special cases implement the
// paper's semantics for same-event pause+resume (GREEDY-PMTN-MIGR and the
// DYNMCB8 repacks):
//
//   - resumed in the same event on the same node multiset: the pause never
//     physically happened; its occurrence and traffic are refunded and no
//     penalty applies;
//   - resumed in the same event on a different node multiset: the pair is
//     reclassified as one migration (the pause's occurrence and save
//     traffic move to the migration columns).
func (c *Controller) Resume(jid int, nodes []int) {
	s := c.sim
	j := s.jobs[jid]
	if j.state != Paused {
		panic(fmt.Sprintf("sim: Resume on job %d in state %v", jid, j.state))
	}
	if len(nodes) != j.job.Tasks {
		panic(fmt.Sprintf("sim: Resume job %d with %d nodes for %d tasks", jid, len(nodes), j.job.Tasks))
	}
	sameEvent := j.lastPauseWas && j.lastPauseTime == s.now
	switch {
	case sameEvent && SameMultiset(nodes, j.lastNodes):
		// Undo: the job never actually moved. The pause's accounting is
		// refunded in full, including the LastPause timestamp — the refund
		// says the pause never physically happened, so JobInfo must not
		// report it.
		j.pauses--
		j.lastPauseTime = j.prevPauseTime
		s.result.PreemptionOps--
		s.result.PreemptionGB -= s.memGB(j)
		s.occupyNodes(j, nodes)
		j.state = Running
		j.yield = 0
	case sameEvent:
		// Reclassify pause+resume as a single migration.
		j.pauses--
		j.migrations++
		s.result.PreemptionOps--
		s.result.PreemptionGB -= s.memGB(j)
		s.result.MigrationOps++
		s.result.MigrationGB += 2 * s.memGB(j)
		s.occupyNodes(j, nodes)
		j.state = Running
		j.yield = 0
		j.frozenUntil = s.now + s.cfg.Penalty
	default:
		s.result.PreemptionGB += s.memGB(j) // restore traffic
		s.occupyNodes(j, nodes)
		j.state = Running
		j.yield = 0
		j.frozenUntil = s.now + s.cfg.Penalty
	}
	j.lastPauseWas = false
	s.paused = removeJid(s.paused, jid)
	s.running = insertJid(s.running, jid)
	if j.start < 0 {
		j.start = s.now
	}
	s.record(TlResume, jid, 0, j.frozenUntil)
	if s.obs != nil {
		// The stream reports raw transitions: the JobPreempted emitted by
		// the matching Pause is never retracted, even when the accounting
		// above refunds or reclassifies it (see Observer docs). A
		// reclassified pair surfaces the migration; a plain or refunded
		// resume surfaces a restart.
		if sameEvent && !SameMultiset(nodes, j.lastNodes) {
			s.obs.JobMigrated(s.now, jid, append([]int(nil), nodes...))
		} else {
			s.obs.JobStarted(s.now, jid, append([]int(nil), nodes...))
		}
	}
}

// Migrate moves running job jid to a new node multiset in one step
// (pause+resume within the event), counting one migration occurrence and a
// save+restore of the job's memory, and freezing the job for the penalty.
// Migrating onto the identical node multiset is a no-op.
func (c *Controller) Migrate(jid int, nodes []int) {
	s := c.sim
	j := s.jobs[jid]
	if j.state != Running {
		panic(fmt.Sprintf("sim: Migrate on job %d in state %v", jid, j.state))
	}
	if len(nodes) != j.job.Tasks {
		panic(fmt.Sprintf("sim: Migrate job %d with %d nodes for %d tasks", jid, len(nodes), j.job.Tasks))
	}
	if SameMultiset(nodes, j.nodes) {
		return
	}
	s.releaseNodes(j)
	s.occupyNodes(j, nodes)
	j.yield = 0
	j.migrations++
	j.frozenUntil = s.now + s.cfg.Penalty
	s.result.MigrationOps++
	s.result.MigrationGB += 2 * s.memGB(j)
	s.record(TlMigrate, jid, 0, j.frozenUntil)
	if s.obs != nil {
		s.obs.JobMigrated(s.now, jid, append([]int(nil), nodes...))
	}
}

// SetYield assigns job jid's yield, adjusting every hosting node's
// allocated CPU. It panics if the new allocation would exceed any node's
// CPU capacity beyond tolerance.
func (c *Controller) SetYield(jid int, y float64) {
	s := c.sim
	j := s.jobs[jid]
	if j.state != Running {
		panic(fmt.Sprintf("sim: SetYield on job %d in state %v", jid, j.state))
	}
	if y < 0 || y > 1+capTol {
		panic(fmt.Sprintf("sim: SetYield job %d to %g outside [0,1]", jid, y))
	}
	if y > 1 {
		y = 1
	}
	delta := j.job.CPUNeed * (y - j.yield)
	for _, node := range j.nodes {
		s.usedCPU[node] += delta
		if s.usedCPU[node] > s.cl.CPUCap(node)+capTol {
			panic(fmt.Sprintf("sim: %s oversubscribed CPU on node %d (%.6f of %.6f) at t=%.1f",
				s.sched.Name(), node, s.usedCPU[node], s.cl.CPUCap(node), s.now))
		}
		s.usedCPU[node] = floats.NonNeg(s.usedCPU[node])
	}
	j.yield = y
	s.record(TlYield, jid, y, 0)
}

// Penalty returns the configured rescheduling penalty. Exposed for tests
// and reports only; the paper's algorithms never consult it.
func (c *Controller) Penalty() float64 { return c.sim.cfg.Penalty }

// SameMultiset reports whether a and b contain the same nodes with the same
// multiplicities. Tasks are interchangeable, so allocations differing only
// by a permutation are physically identical. Jobs rarely exceed a handful
// of tasks, so small inputs take an allocation-free quadratic count-compare
// path; only larger ones fall back to a counting map.
func SameMultiset(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	// Identical sequences are the overwhelmingly common case (a repack that
	// leaves a job where it was reproduces the node list in the same
	// order): resolve them without touching a counting structure.
	equal := true
	for i, x := range a {
		if b[i] != x {
			equal = false
			break
		}
	}
	if equal {
		return true
	}
	if len(a) <= 8 {
		for i, x := range a {
			// Count x once, on its first occurrence in a.
			first := true
			for _, y := range a[:i] {
				if y == x {
					first = false
					break
				}
			}
			if !first {
				continue
			}
			na, nb := 0, 0
			for _, y := range a[i:] {
				if y == x {
					na++
				}
			}
			for _, y := range b {
				if y == x {
					nb++
				}
			}
			if na != nb {
				return false
			}
		}
		return true
	}
	count := map[int]int{}
	for _, x := range a {
		count[x]++
	}
	for _, x := range b {
		count[x]--
		if count[x] < 0 {
			return false
		}
	}
	return true
}

// EarliestFinish returns, assuming perfect knowledge of execution times and
// current yields, the completion instant of running job jid. It is used by
// the EASY baseline, which the paper grants perfect estimates; DFRS
// algorithms must not call it.
func (c *Controller) EarliestFinish(jid int) float64 {
	j := c.sim.jobs[jid]
	if j.state != Running || j.yield <= 0 {
		return math.Inf(1)
	}
	from := math.Max(c.sim.now, j.frozenUntil)
	return from + j.remaining/j.yield
}
