package sim

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/floats"
	"repro/internal/placement"
)

// Controller is the interface the simulator hands to scheduling algorithms.
// It exposes read access to cluster and job state and the mutating
// operations of Section II-B1: starting jobs, setting per-job yields,
// pausing (preempting), resuming and migrating. All mutations take effect
// instantaneously in simulated time; resumes and migrations additionally
// freeze the job for the configured rescheduling penalty, which the
// algorithms do not observe.
//
// Misuse (starting a non-pending job, oversubscribing memory, yields
// violating node CPU capacity) panics: schedulers in this repository are
// trusted code and such a call is always a bug.
type Controller struct {
	sim *Simulator
}

// Now returns the current simulated time in seconds.
func (c *Controller) Now() float64 { return c.sim.now }

// NumNodes returns the cluster size.
func (c *Controller) NumNodes() int { return len(c.sim.usedCPU) }

// Cluster returns the simulated cluster's resource model. Schedulers must
// treat it as read-only.
func (c *Controller) Cluster() *cluster.Cluster { return c.sim.cl }

// CPUCap returns node's CPU capacity (1.0 on the paper's platform).
func (c *Controller) CPUCap(node int) float64 { return c.sim.cl.CPUCap(node) }

// MemCap returns node's memory capacity (1.0 on the paper's platform).
func (c *Controller) MemCap(node int) float64 { return c.sim.cl.MemCap(node) }

// NumDims returns the cluster's resource dimension count (2 on the paper's
// platform: CPU and memory).
func (c *Controller) NumDims() int { return c.sim.cl.D() }

// Objective returns the run's configured placement objective, or nil when
// the run uses each scheduler family's default selection rule (the paper's
// behaviour). Every family consults it when choosing among feasible nodes
// (see internal/placement).
func (c *Controller) Objective() placement.Objective { return c.sim.cfg.Objective }

// NodeCost returns node's cost rate (cluster.NodeSpec.Cost; 0 on unpriced
// platforms).
func (c *Controller) NodeCost(node int) float64 { return c.sim.cl.Nodes[node].Cost }

// DimName returns the name of resource dimension k ("cpu", "mem",
// "gpu", ...).
func (c *Controller) DimName(k int) string { return c.sim.cl.DimName(k) }

// ResCap returns node's capacity in resource dimension k.
func (c *Controller) ResCap(node, k int) float64 { return c.sim.cl.Cap(node, k) }

// UsedRes returns the amount of rigid resource dimension k currently
// allocated on node. Dimension 1 is memory; dimensions beyond the
// cluster's count report 0, consistent with Cluster.Cap. Asking for the
// fluid CPU dimension (k = 0) panics — use AllocatedCPU for it.
func (c *Controller) UsedRes(node, k int) float64 {
	if k < 1 {
		panic(fmt.Sprintf("sim: UsedRes(%d, %d): rigid dimensions start at 1; use AllocatedCPU for the CPU dimension", node, k))
	}
	if k-1 >= len(c.sim.usedRigid) {
		return 0
	}
	return c.sim.usedRigid[k-1][node]
}

// FreeRes returns the free amount of rigid resource dimension k on node
// (its capacity minus the allocated amount; 0 for dimensions the cluster
// does not declare). Asking for the fluid CPU dimension (k = 0) panics.
func (c *Controller) FreeRes(node, k int) float64 {
	return floats.NonNeg(c.sim.cl.Cap(node, k) - c.UsedRes(node, k))
}

// NumJobs returns the number of jobs in the trace.
func (c *Controller) NumJobs() int { return len(c.sim.jobs) }

// Job returns a read-only snapshot of job jid.
func (c *Controller) Job(jid int) JobInfo {
	j := c.sim.jobs[jid]
	var nodes []int
	if j.nodes != nil {
		nodes = append([]int(nil), j.nodes...)
	}
	return JobInfo{
		JID:         jid,
		Job:         j.job,
		State:       j.state,
		Nodes:       nodes,
		Yield:       j.yield,
		VirtualTime: j.virtual,
		Remaining:   j.remaining,
		FrozenUntil: j.frozenUntil,
		Attempts:    j.attempts,
		LastPause:   j.lastPauseTime,
	}
}

// JobsInState returns the jids of all jobs currently in the given state, in
// increasing jid order (deterministic). Jobs whose submission time lies in
// the future are invisible to schedulers and never returned, even though
// they sit in the Pending state internally.
func (c *Controller) JobsInState(state JobState) []int {
	var out []int
	for jid, j := range c.sim.jobs {
		if j.state == state && j.job.Submit <= c.sim.now {
			out = append(out, jid)
		}
	}
	return out
}

// ActiveJobs returns the jids of all jobs currently in the system and
// holding or wanting resources: submitted-pending, running and paused.
func (c *Controller) ActiveJobs() []int {
	var out []int
	for jid, j := range c.sim.jobs {
		if j.state != Done && j.job.Submit <= c.sim.now {
			out = append(out, jid)
		}
	}
	return out
}

// CPULoad returns the paper's CPU load of a node: the sum of the CPU needs
// of the tasks allocated to it (which may exceed the node's capacity).
func (c *Controller) CPULoad(node int) float64 { return c.sim.cpuLoad[node] }

// AllocatedCPU returns the CPU of a node currently promised to tasks (sum
// of need x yield; at most the node's CPU capacity).
func (c *Controller) AllocatedCPU(node int) float64 { return c.sim.usedCPU[node] }

// UsedMem returns the memory of a node currently allocated.
func (c *Controller) UsedMem(node int) float64 { return c.sim.usedRigid[0][node] }

// FreeMem returns the free memory of a node (its capacity minus the
// allocated memory).
func (c *Controller) FreeMem(node int) float64 {
	return floats.NonNeg(c.sim.cl.MemCap(node) - c.sim.usedRigid[0][node])
}

// MaxCPULoad returns the maximum relative CPU load over all nodes — each
// node's load divided by its own CPU capacity (the paper's capital lambda;
// on the unit-capacity platform this is exactly the raw load). The greedy
// yield rule 1/max(1, lambda) keeps every node within its capacity.
func (c *Controller) MaxCPULoad() float64 {
	m := 0.0
	for node, l := range c.sim.cpuLoad {
		if rel := l / c.sim.cl.CPUCap(node); rel > m {
			m = rel
		}
	}
	return m
}

// IncrementAttempts bumps and returns the job's failed-attempt counter,
// which greedy algorithms use for bounded exponential backoff.
func (c *Controller) IncrementAttempts(jid int) int {
	c.sim.jobs[jid].attempts++
	return c.sim.jobs[jid].attempts
}

// SetTimer schedules an OnTimer callback with the given tag at time at
// (>= now).
func (c *Controller) SetTimer(at float64, tag int64) {
	if at < c.sim.now {
		panic(fmt.Sprintf("sim: timer at %.3f in the past (now %.3f)", at, c.sim.now))
	}
	c.sim.queue.Push(at, timerEv{tag: tag})
}

// Start dispatches pending job jid onto the given nodes (one entry per
// task; a node may appear multiple times) with an initial yield of zero.
// Callers must follow up with SetYield. Starting fresh carries no penalty.
func (c *Controller) Start(jid int, nodes []int) {
	s := c.sim
	j := s.jobs[jid]
	if j.state != Pending {
		panic(fmt.Sprintf("sim: Start on job %d in state %v", jid, j.state))
	}
	if len(nodes) != j.job.Tasks {
		panic(fmt.Sprintf("sim: Start job %d with %d nodes for %d tasks", jid, len(nodes), j.job.Tasks))
	}
	s.occupyNodes(j, nodes)
	j.state = Running
	j.yield = 0
	if j.start < 0 {
		j.start = s.now
	}
	s.record(TlStart, jid, 0, 0)
	if s.obs != nil {
		s.obs.JobStarted(s.now, jid, append([]int(nil), nodes...))
	}
}

// Pause preempts running job jid: it stops progressing and releases its
// nodes immediately. The preemption occurrence and the save traffic
// (tasks x memReq x nodeMemGB) are accounted to Table II's preemption
// columns; the matching restore traffic is accounted on Resume.
func (c *Controller) Pause(jid int) {
	s := c.sim
	j := s.jobs[jid]
	if j.state != Running {
		panic(fmt.Sprintf("sim: Pause on job %d in state %v", jid, j.state))
	}
	j.lastNodes = append([]int(nil), j.nodes...)
	s.releaseNodes(j)
	j.state = Paused
	j.yield = 0
	j.pauses++
	j.lastPauseTime = s.now
	j.lastPauseWas = true
	s.result.PreemptionOps++
	s.result.PreemptionGB += s.memGB(j)
	s.record(TlPause, jid, 0, 0)
	if s.obs != nil {
		s.obs.JobPreempted(s.now, jid)
	}
}

// Resume restarts paused job jid on the given nodes with yield zero and
// freezes it for the rescheduling penalty. Two special cases implement the
// paper's semantics for same-event pause+resume (GREEDY-PMTN-MIGR and the
// DYNMCB8 repacks):
//
//   - resumed in the same event on the same node multiset: the pause never
//     physically happened; its occurrence and traffic are refunded and no
//     penalty applies;
//   - resumed in the same event on a different node multiset: the pair is
//     reclassified as one migration (the pause's occurrence and save
//     traffic move to the migration columns).
func (c *Controller) Resume(jid int, nodes []int) {
	s := c.sim
	j := s.jobs[jid]
	if j.state != Paused {
		panic(fmt.Sprintf("sim: Resume on job %d in state %v", jid, j.state))
	}
	if len(nodes) != j.job.Tasks {
		panic(fmt.Sprintf("sim: Resume job %d with %d nodes for %d tasks", jid, len(nodes), j.job.Tasks))
	}
	sameEvent := j.lastPauseWas && j.lastPauseTime == s.now
	switch {
	case sameEvent && sameMultiset(nodes, j.lastNodes):
		// Undo: the job never actually moved.
		j.pauses--
		s.result.PreemptionOps--
		s.result.PreemptionGB -= s.memGB(j)
		s.occupyNodes(j, nodes)
		j.state = Running
		j.yield = 0
	case sameEvent:
		// Reclassify pause+resume as a single migration.
		j.pauses--
		j.migrations++
		s.result.PreemptionOps--
		s.result.PreemptionGB -= s.memGB(j)
		s.result.MigrationOps++
		s.result.MigrationGB += 2 * s.memGB(j)
		s.occupyNodes(j, nodes)
		j.state = Running
		j.yield = 0
		j.frozenUntil = s.now + s.cfg.Penalty
	default:
		s.result.PreemptionGB += s.memGB(j) // restore traffic
		s.occupyNodes(j, nodes)
		j.state = Running
		j.yield = 0
		j.frozenUntil = s.now + s.cfg.Penalty
	}
	j.lastPauseWas = false
	if j.start < 0 {
		j.start = s.now
	}
	s.record(TlResume, jid, 0, j.frozenUntil)
	if s.obs != nil {
		// The stream reports raw transitions: the JobPreempted emitted by
		// the matching Pause is never retracted, even when the accounting
		// above refunds or reclassifies it (see Observer docs). A
		// reclassified pair surfaces the migration; a plain or refunded
		// resume surfaces a restart.
		if sameEvent && !sameMultiset(nodes, j.lastNodes) {
			s.obs.JobMigrated(s.now, jid, append([]int(nil), nodes...))
		} else {
			s.obs.JobStarted(s.now, jid, append([]int(nil), nodes...))
		}
	}
}

// Migrate moves running job jid to a new node multiset in one step
// (pause+resume within the event), counting one migration occurrence and a
// save+restore of the job's memory, and freezing the job for the penalty.
// Migrating onto the identical node multiset is a no-op.
func (c *Controller) Migrate(jid int, nodes []int) {
	s := c.sim
	j := s.jobs[jid]
	if j.state != Running {
		panic(fmt.Sprintf("sim: Migrate on job %d in state %v", jid, j.state))
	}
	if len(nodes) != j.job.Tasks {
		panic(fmt.Sprintf("sim: Migrate job %d with %d nodes for %d tasks", jid, len(nodes), j.job.Tasks))
	}
	if sameMultiset(nodes, j.nodes) {
		return
	}
	s.releaseNodes(j)
	s.occupyNodes(j, nodes)
	j.yield = 0
	j.migrations++
	j.frozenUntil = s.now + s.cfg.Penalty
	s.result.MigrationOps++
	s.result.MigrationGB += 2 * s.memGB(j)
	s.record(TlMigrate, jid, 0, j.frozenUntil)
	if s.obs != nil {
		s.obs.JobMigrated(s.now, jid, append([]int(nil), nodes...))
	}
}

// SetYield assigns job jid's yield, adjusting every hosting node's
// allocated CPU. It panics if the new allocation would exceed any node's
// CPU capacity beyond tolerance.
func (c *Controller) SetYield(jid int, y float64) {
	s := c.sim
	j := s.jobs[jid]
	if j.state != Running {
		panic(fmt.Sprintf("sim: SetYield on job %d in state %v", jid, j.state))
	}
	if y < 0 || y > 1+capTol {
		panic(fmt.Sprintf("sim: SetYield job %d to %g outside [0,1]", jid, y))
	}
	if y > 1 {
		y = 1
	}
	delta := j.job.CPUNeed * (y - j.yield)
	for _, node := range j.nodes {
		s.usedCPU[node] += delta
		if s.usedCPU[node] > s.cl.CPUCap(node)+capTol {
			panic(fmt.Sprintf("sim: %s oversubscribed CPU on node %d (%.6f of %.6f) at t=%.1f",
				s.sched.Name(), node, s.usedCPU[node], s.cl.CPUCap(node), s.now))
		}
		s.usedCPU[node] = floats.NonNeg(s.usedCPU[node])
	}
	j.yield = y
	s.record(TlYield, jid, y, 0)
}

// Penalty returns the configured rescheduling penalty. Exposed for tests
// and reports only; the paper's algorithms never consult it.
func (c *Controller) Penalty() float64 { return c.sim.cfg.Penalty }

// sameMultiset reports whether a and b contain the same nodes with the same
// multiplicities. Tasks are interchangeable, so allocations differing only
// by a permutation are physically identical.
func sameMultiset(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[int]int{}
	for _, x := range a {
		count[x]++
	}
	for _, x := range b {
		count[x]--
		if count[x] < 0 {
			return false
		}
	}
	return true
}

// EarliestFinish returns, assuming perfect knowledge of execution times and
// current yields, the completion instant of running job jid. It is used by
// the EASY baseline, which the paper grants perfect estimates; DFRS
// algorithms must not call it.
func (c *Controller) EarliestFinish(jid int) float64 {
	j := c.sim.jobs[jid]
	if j.state != Running || j.yield <= 0 {
		return math.Inf(1)
	}
	from := math.Max(c.sim.now, j.frozenUntil)
	return from + j.remaining/j.yield
}
