package sim

import (
	"math"
	"reflect"
	"testing"
)

// contendedScript returns a fresh deterministic scheduler exercising the
// interesting control paths: first-fit placement with queueing, uniform
// yield sharing, and a timer-driven pause/resume (migration) of job 0.
// Each call returns an independent instance so two simulators never share
// state.
func contendedScript() *script {
	startAll := func(ctl *Controller) {
		const eps = 1e-9
		for _, jid := range ctl.JobsInState(Pending) {
			ji := ctl.Job(jid)
			extra := make([]float64, ctl.NumNodes())
			nodes := make([]int, 0, ji.Job.Tasks)
			for task := 0; task < ji.Job.Tasks; task++ {
				placed := false
				for n := 0; n < ctl.NumNodes() && !placed; n++ {
					if ctl.FreeMem(n)-extra[n] >= ji.Job.MemReq-eps {
						nodes = append(nodes, n)
						extra[n] += ji.Job.MemReq
						placed = true
					}
				}
				if !placed {
					break
				}
			}
			if len(nodes) == ji.Job.Tasks {
				ctl.Start(jid, nodes)
			}
		}
		running := ctl.JobsInState(Running)
		for _, jid := range running {
			ctl.SetYield(jid, 0)
		}
		y := 1 / math.Max(1, ctl.MaxCPULoad())
		for _, jid := range running {
			ctl.SetYield(jid, y)
		}
	}
	return &script{
		onInit: func(ctl *Controller) {
			ctl.SetTimer(15, 1)
			ctl.SetTimer(25, 2)
		},
		onArrival:    func(ctl *Controller, jid int) { startAll(ctl) },
		onCompletion: func(ctl *Controller, jid int) { startAll(ctl) },
		onTimer: func(ctl *Controller, tag int64) {
			switch tag {
			case 1:
				ctl.Pause(0)
			case 2:
				ctl.Resume(0, []int{2, 3})
			}
			startAll(ctl)
		},
	}
}

func stepTrace() Config {
	return Config{
		Trace: trace(
			job(0, 0, 2, 100),
			job(1, 10, 2, 50),
			job(2, 20, 4, 30),
		),
		Penalty:         300,
		CheckInvariants: true,
	}
}

// TestStepAPIMatchesRun drives one simulator with Run and a second,
// identically configured one through the step API —
// Start/HasPendingEvents/PeekNextEventTime/ProcessNextEvent/Finalize — and
// demands bit-identical results. Run is documented as exactly a loop over
// ProcessNextEvent; this pins that equivalence.
func TestStepAPIMatchesRun(t *testing.T) {
	ran, err := New(stepTrace(), contendedScript())
	if err != nil {
		t.Fatal(err)
	}
	want, err := ran.Run()
	if err != nil {
		t.Fatal(err)
	}

	stepped, err := New(stepTrace(), contendedScript())
	if err != nil {
		t.Fatal(err)
	}
	stepped.Start()
	prev := math.Inf(-1)
	steps := 0
	for stepped.HasPendingJobs() {
		if !stepped.HasPendingEvents() {
			t.Fatal("pending jobs but no pending events")
		}
		next, ok := stepped.PeekNextEventTime()
		if !ok {
			t.Fatal("PeekNextEventTime disagrees with HasPendingEvents")
		}
		if next < prev {
			t.Fatalf("event time went backwards: %v after %v", next, prev)
		}
		prev = next
		if err := stepped.ProcessNextEvent(); err != nil {
			t.Fatal(err)
		}
		steps++
	}
	got := stepped.Finalize()

	if steps != want.Events {
		t.Errorf("stepped %d events, Run counted %d", steps, want.Events)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("step-driven result differs from Run:\n got %+v\nwant %+v", got, want)
	}
}

// TestResumeUndoRestoresLastPause pins the refund semantics of a same-event
// pause+resume on the same node multiset: the pause never physically
// happened, so JobInfo.LastPause must report the previous real pause time
// (or -1 when there was none), not the refunded event's timestamp.
func TestResumeUndoRestoresLastPause(t *testing.T) {
	afterUndo := math.NaN()
	afterReal := math.NaN()
	s := &script{
		onArrival: func(ctl *Controller, jid int) {
			ctl.Start(jid, []int{0})
			ctl.SetYield(jid, 1)
		},
		onInit: func(ctl *Controller) {
			ctl.SetTimer(10, 1)
			ctl.SetTimer(20, 2)
			ctl.SetTimer(30, 3)
		},
		onTimer: func(ctl *Controller, tag int64) {
			switch tag {
			case 1: // real pause at t=10
				ctl.Pause(0)
			case 2: // real resume at t=20
				ctl.Resume(0, []int{0})
				ctl.SetYield(0, 1)
				afterReal = ctl.Job(0).LastPause
			case 3: // same event, same nodes: a refunded pause
				ctl.Pause(0)
				ctl.Resume(0, []int{0})
				ctl.SetYield(0, 1)
				afterUndo = ctl.Job(0).LastPause
			}
		},
	}
	res := mustRun(t, Config{Trace: trace(job(0, 0, 1, 100))}, s)
	if afterReal != 10 {
		t.Errorf("LastPause after real resume = %v, want 10", afterReal)
	}
	if afterUndo != 10 {
		t.Errorf("LastPause after refunded pause+resume = %v, want 10 (the previous real pause)", afterUndo)
	}
	if res.Jobs[0].Pauses != 1 {
		t.Errorf("recorded pauses = %d, want 1 (the refunded pause must not count)", res.Jobs[0].Pauses)
	}
	if res.PreemptionOps != 1 {
		t.Errorf("PreemptionOps = %d, want 1", res.PreemptionOps)
	}
}

// TestResumeUndoNeverPaused covers the refund when the job had no earlier
// real pause: LastPause must return to its never-paused sentinel.
func TestResumeUndoNeverPaused(t *testing.T) {
	last := math.NaN()
	s := &script{
		onArrival: func(ctl *Controller, jid int) {
			ctl.Start(jid, []int{0})
			ctl.SetYield(jid, 1)
		},
		onInit: func(ctl *Controller) { ctl.SetTimer(10, 1) },
		onTimer: func(ctl *Controller, tag int64) {
			ctl.Pause(0)
			ctl.Resume(0, []int{0})
			ctl.SetYield(0, 1)
			last = ctl.Job(0).LastPause
		},
	}
	res := mustRun(t, Config{Trace: trace(job(0, 0, 1, 100))}, s)
	if last != -1 {
		t.Errorf("LastPause after refunded first pause = %v, want -1 (never paused)", last)
	}
	if res.Jobs[0].Pauses != 0 || res.PreemptionOps != 0 {
		t.Errorf("pauses/ops = %d/%d, want 0/0", res.Jobs[0].Pauses, res.PreemptionOps)
	}
}
