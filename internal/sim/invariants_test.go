package sim_test

// Simulator invariant battery: every one of the paper's nine algorithms is
// run over a small but adversarial synthetic trace with per-event state
// validation enabled (node CPU/memory allocation never exceeds capacity at
// any event time), and the results are checked against the scheduling
// model: no job finishes before its arrival, no job beats its dedicated
// execution time, and the CPU work delivered by the cluster equals the work
// submitted by the finished jobs. This lives in an external test package so
// it can pull in the real scheduler registry without an import cycle.

import (
	"math"
	"testing"

	"repro/internal/lublin"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"

	_ "repro/internal/sched/batch"
	_ "repro/internal/sched/gang"
	_ "repro/internal/sched/greedy"
	_ "repro/internal/sched/mcb"
)

// nineAlgorithms is the paper's full algorithm set (Figure 1 legend order).
var nineAlgorithms = []string{
	"fcfs",
	"easy",
	"greedy",
	"greedy-pmtn",
	"greedy-pmtn-migr",
	"dynmcb8",
	"dynmcb8-per",
	"dynmcb8-asap-per",
	"dynmcb8-stretch-per",
}

// invariantTrace builds a small high-load trace: enough contention that
// preempting algorithms actually pause, migrate and reschedule.
func invariantTrace(t *testing.T) *workload.Trace {
	t.Helper()
	tr, err := lublin.GenerateTrace(rng.New(11), lublin.DefaultParams(16), 40, "invariants")
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := tr.ScaleToLoad(0.9)
	if err != nil {
		t.Fatal(err)
	}
	return scaled
}

func TestInvariantsAcrossAllAlgorithms(t *testing.T) {
	tr := invariantTrace(t)
	for _, alg := range nineAlgorithms {
		for _, penalty := range []float64{0, 300} {
			s, err := sched.New(alg)
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			simulator, err := sim.New(sim.Config{
				Trace: tr,
				// CheckInvariants validates after every event that no
				// node's allocated CPU or memory fraction exceeds 1.0 and
				// that no job holds nodes outside the Running state.
				CheckInvariants: true,
				Penalty:         penalty,
				MaxSimTime:      50 * 365 * 24 * 3600,
			}, s)
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			res, err := simulator.Run()
			if err != nil {
				t.Fatalf("%s (penalty %.0f): %v", alg, penalty, err)
			}
			checkResultInvariants(t, tr, res, alg, penalty)
		}
	}
}

// checkResultInvariants verifies the model-level properties of a finished
// run.
func checkResultInvariants(t *testing.T, tr *workload.Trace, res *sim.Result, alg string, penalty float64) {
	t.Helper()
	if len(res.Jobs) != len(tr.Jobs) {
		t.Errorf("%s (penalty %.0f): %d of %d jobs finished", alg, penalty, len(res.Jobs), len(tr.Jobs))
		return
	}
	var submitted, delivered float64
	for _, jr := range res.Jobs {
		// No job may finish (or start) before its arrival.
		if jr.Finish < jr.Job.Submit {
			t.Errorf("%s (penalty %.0f): job %d finished at %.3f before its arrival %.3f",
				alg, penalty, jr.Job.ID, jr.Finish, jr.Job.Submit)
		}
		if jr.Start >= 0 && jr.Start < jr.Job.Submit-1e-9 {
			t.Errorf("%s (penalty %.0f): job %d started at %.3f before its arrival %.3f",
				alg, penalty, jr.Job.ID, jr.Start, jr.Job.Submit)
		}
		// No job may run faster than with yield 1.0 from submission.
		if jr.Turnaround < jr.Job.ExecTime-1e-6 {
			t.Errorf("%s (penalty %.0f): job %d turnaround %.3f below execution time %.3f",
				alg, penalty, jr.Job.ID, jr.Turnaround, jr.Job.ExecTime)
		}
		// A finished job's tasks each absorbed CPUNeed x ExecTime of CPU.
		submitted += float64(jr.Job.Tasks) * jr.Job.CPUNeed * jr.Job.ExecTime
	}
	delivered = res.DeliveredCPUSeconds
	// Work conservation: total CPU work the cluster delivered equals the
	// work the finished jobs submitted (relative tolerance for the
	// accumulated floating-point integration).
	if diff := math.Abs(delivered - submitted); diff > 1e-6*math.Max(1, submitted) {
		t.Errorf("%s (penalty %.0f): delivered %.6f CPU-seconds, submitted %.6f (diff %g)",
			alg, penalty, delivered, submitted, diff)
	}
	if res.Makespan <= 0 {
		t.Errorf("%s (penalty %.0f): non-positive makespan %g", alg, penalty, res.Makespan)
	}
}

// TestInvariantsOnHighMemoryPressure drives a hand-built trace where memory
// is the binding constraint, the regime where oversubscription bugs would
// hide: four memory-heavy jobs on two nodes cannot all run at once.
func TestInvariantsOnHighMemoryPressure(t *testing.T) {
	jobs := []workload.Job{
		{ID: 0, Submit: 0, Tasks: 1, CPUNeed: 0.5, MemReq: 0.6, ExecTime: 100},
		{ID: 1, Submit: 1, Tasks: 1, CPUNeed: 0.5, MemReq: 0.6, ExecTime: 100},
		{ID: 2, Submit: 2, Tasks: 2, CPUNeed: 0.9, MemReq: 0.4, ExecTime: 100},
		{ID: 3, Submit: 3, Tasks: 1, CPUNeed: 1.0, MemReq: 1.0, ExecTime: 50},
	}
	tr := &workload.Trace{Name: "mem-pressure", Nodes: 2, NodeMemGB: 4, Jobs: jobs}
	for _, alg := range nineAlgorithms {
		s, err := sched.New(alg)
		if err != nil {
			t.Fatal(err)
		}
		simulator, err := sim.New(sim.Config{Trace: tr, CheckInvariants: true, Penalty: 300,
			MaxSimTime: 50 * 365 * 24 * 3600}, s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := simulator.Run()
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		checkResultInvariants(t, tr, res, alg, 300)
	}
}
