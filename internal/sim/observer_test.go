package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// obsTrace builds a small contended trace that forces preemptions under
// greedy-style schedulers.
func obsTrace(t *testing.T) *workload.Trace {
	t.Helper()
	var jobs []workload.Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, workload.Job{
			ID: i, Submit: float64(i * 10), Tasks: 1 + i%2,
			CPUNeed: 1.0, MemReq: 0.45, ExecTime: 200,
		})
	}
	tr := &workload.Trace{Name: "obs", Nodes: 2, NodeMemGB: 8, Jobs: jobs}
	tr.SortBySubmit()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

// stripElapsed zeroes the only nondeterministic event field so sequences
// compare exactly.
func stripElapsed(evs []Event) []Event {
	out := append([]Event(nil), evs...)
	for i := range out {
		out[i].Elapsed = 0
	}
	return out
}

// testGreedy is a minimal self-contained preempting scheduler: arrivals
// start greedily by free memory, an unplaceable arrival preempts the
// youngest running job, and completions resume paused jobs before starting
// pending ones. It exists to exercise every observer event kind without
// depending on the real algorithm packages (which would import-cycle).
type testGreedy struct{}

func newTestGreedy() *testGreedy { return &testGreedy{} }

func (g *testGreedy) Name() string               { return "test-greedy" }
func (g *testGreedy) Init(*Controller)           {}
func (g *testGreedy) OnTimer(*Controller, int64) {}

func (g *testGreedy) OnArrival(ctl *Controller, jid int) {
	if nodes, ok := g.place(ctl, jid); ok {
		ctl.Start(jid, nodes)
	} else if running := ctl.JobsInState(Running); len(running) > 0 {
		victim := running[len(running)-1]
		ctl.Pause(victim)
		if nodes, ok := g.place(ctl, jid); ok {
			ctl.Start(jid, nodes)
		} else if back, ok := g.place(ctl, victim); ok {
			ctl.Resume(victim, back)
		}
	}
	g.applyYields(ctl)
}

func (g *testGreedy) OnCompletion(ctl *Controller, jid int) {
	for _, paused := range ctl.JobsInState(Paused) {
		if nodes, ok := g.place(ctl, paused); ok {
			ctl.Resume(paused, nodes)
		}
	}
	for _, pending := range ctl.JobsInState(Pending) {
		if nodes, ok := g.place(ctl, pending); ok {
			ctl.Start(pending, nodes)
		}
	}
	g.applyYields(ctl)
}

// place puts each task on the node with the most free memory, accounting
// for tasks already placed in this call.
func (g *testGreedy) place(ctl *Controller, jid int) ([]int, bool) {
	ji := ctl.Job(jid)
	extra := make([]float64, ctl.NumNodes())
	nodes := make([]int, 0, ji.Job.Tasks)
	for task := 0; task < ji.Job.Tasks; task++ {
		best, bestFree := -1, 0.0
		for n := 0; n < ctl.NumNodes(); n++ {
			if free := ctl.FreeMem(n) - extra[n]; free >= ji.Job.MemReq && free > bestFree {
				best, bestFree = n, free
			}
		}
		if best < 0 {
			return nil, false
		}
		nodes = append(nodes, best)
		extra[best] += ji.Job.MemReq
	}
	return nodes, true
}

// applyYields gives every running job the uniform greedy yield, zeroing
// first so no node transiently oversubscribes.
func (g *testGreedy) applyYields(ctl *Controller) {
	running := ctl.JobsInState(Running)
	y := 1.0 / max(1, ctl.MaxCPULoad())
	for _, jid := range running {
		ctl.SetYield(jid, 0)
	}
	for _, jid := range running {
		ctl.SetYield(jid, y)
	}
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// runObserved runs the test scheduler over the trace with a fresh recorder.
func runObserved(t *testing.T, tr *workload.Trace) []Event {
	t.Helper()
	rec := &Recorder{}
	s, err := New(Config{Trace: tr, Observer: rec, MaxSimTime: 1e9}, newTestGreedy())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return rec.Events()
}

// TestObserverSequenceDeterministic runs the same simulation twice and
// demands byte-identical event sequences modulo wall-clock timing.
func TestObserverSequenceDeterministic(t *testing.T) {
	tr := obsTrace(t)
	a := stripElapsed(runObserved(t, tr))
	b := stripElapsed(runObserved(t, tr))
	if len(a) == 0 {
		t.Fatal("no events recorded")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("event sequences differ across identical runs:\n%v\nvs\n%v", a, b)
	}
}

// TestObserverDoesNotPerturbResults checks that an observed run produces
// the identical Result as an unobserved one.
func TestObserverDoesNotPerturbResults(t *testing.T) {
	tr := obsTrace(t)
	run := func(obs Observer) *Result {
		s, err := New(Config{Trace: tr, Observer: obs, MaxSimTime: 1e9}, newTestGreedy())
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	observed := run(&Recorder{})
	if plain.Makespan != observed.Makespan || plain.Events != observed.Events ||
		plain.PreemptionOps != observed.PreemptionOps || plain.MigrationOps != observed.MigrationOps {
		t.Fatalf("observation perturbed the run: %+v vs %+v", plain, observed)
	}
}

// TestObserverEventCoverage checks the lifecycle events appear with sane
// shape: one submit and one completion per job, starts with node lists.
func TestObserverEventCoverage(t *testing.T) {
	tr := obsTrace(t)
	evs := runObserved(t, tr)
	counts := map[EventKind]int{}
	for _, e := range evs {
		counts[e.Kind]++
		if e.Kind == EvStarted && len(e.Nodes) == 0 {
			t.Errorf("started event without nodes: %+v", e)
		}
		if e.Kind == EvSchedulerInvoked && e.Hook == "" {
			t.Errorf("scheduler invocation without hook name: %+v", e)
		}
	}
	if counts[EvSubmitted] != len(tr.Jobs) {
		t.Errorf("%d submitted events, want %d", counts[EvSubmitted], len(tr.Jobs))
	}
	if counts[EvCompleted] != len(tr.Jobs) {
		t.Errorf("%d completed events, want %d", counts[EvCompleted], len(tr.Jobs))
	}
	if counts[EvSchedulerInvoked] == 0 {
		t.Error("no scheduler invocations observed")
	}
}

// cancelObserver cancels a context after a fixed number of completions.
type cancelObserver struct {
	Recorder
	cancel context.CancelFunc
	after  int
	seen   int
}

func (c *cancelObserver) JobCompleted(now float64, jid int, turnaround float64) {
	c.Recorder.JobCompleted(now, jid, turnaround)
	c.seen++
	if c.seen == c.after {
		c.cancel()
	}
}

// TestRunContextCancelsAtEventGranularity cancels mid-run from an observer
// hook and checks the simulator stops with an error wrapping
// context.Canceled after at most one further event.
func TestRunContextCancelsAtEventGranularity(t *testing.T) {
	tr := obsTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	obs := &cancelObserver{cancel: cancel, after: 2}
	s, err := New(Config{Trace: tr, Observer: obs, MaxSimTime: 1e9}, newTestGreedy())
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	done := 0
	for _, e := range obs.Events() {
		if e.Kind == EvCompleted {
			done++
		}
	}
	if done != obs.after {
		t.Errorf("%d completions observed after cancel, want exactly %d", done, obs.after)
	}
}

// TestRunContextPreCancelled runs nothing when the context is already
// cancelled.
func TestRunContextPreCancelled(t *testing.T) {
	tr := obsTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := New(Config{Trace: tr, MaxSimTime: 1e9}, newTestGreedy())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestUnschedulableJobRejectedEagerly checks the typed up-front rejection:
// a job too big for every node of a thin cluster must fail at construction
// with an UnschedulableError naming the job and the binding resource.
func TestUnschedulableJobRejectedEagerly(t *testing.T) {
	thin := cluster.New([]cluster.NodeSpec{cluster.Spec(0.5, 0.5), cluster.Spec(0.6, 0.6)})
	mk := func(cpu, mem float64) *workload.Trace {
		tr := &workload.Trace{Name: "thin", Nodes: 2, NodeMemGB: 8, Jobs: []workload.Job{
			{ID: 7, Submit: 0, Tasks: 1, CPUNeed: cpu, MemReq: mem, ExecTime: 10},
		}}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		return tr
	}

	_, err := New(Config{Trace: mk(0.1, 0.8), Cluster: thin}, newTestGreedy())
	var ue *UnschedulableError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want UnschedulableError", err)
	}
	if ue.JobID != 7 || ue.Resource != "memory" || ue.MaxCap != 0.6 {
		t.Errorf("memory rejection wrong: %+v", ue)
	}

	_, err = New(Config{Trace: mk(0.9, 0.1), Cluster: thin}, newTestGreedy())
	ue = nil
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want UnschedulableError", err)
	}
	if ue.JobID != 7 || ue.Resource != "cpu" || ue.MaxCap != 0.6 {
		t.Errorf("cpu rejection wrong: %+v", ue)
	}

	// A job that fits the fattest node passes the eager check.
	if _, err := New(Config{Trace: mk(0.6, 0.6), Cluster: thin}, newTestGreedy()); err != nil {
		t.Errorf("schedulable job rejected: %v", err)
	}
}
