package sim

import (
	"math"
	"testing"

	"repro/internal/workload"
)

// script is a programmable scheduler for driving hand-computed scenarios.
type script struct {
	name         string
	onInit       func(ctl *Controller)
	onArrival    func(ctl *Controller, jid int)
	onCompletion func(ctl *Controller, jid int)
	onTimer      func(ctl *Controller, tag int64)
}

func (s *script) Name() string {
	if s.name == "" {
		return "script"
	}
	return s.name
}
func (s *script) Init(ctl *Controller) {
	if s.onInit != nil {
		s.onInit(ctl)
	}
}
func (s *script) OnArrival(ctl *Controller, jid int) {
	if s.onArrival != nil {
		s.onArrival(ctl, jid)
	}
}
func (s *script) OnCompletion(ctl *Controller, jid int) {
	if s.onCompletion != nil {
		s.onCompletion(ctl, jid)
	}
}
func (s *script) OnTimer(ctl *Controller, tag int64) {
	if s.onTimer != nil {
		s.onTimer(ctl, tag)
	}
}

// startImmediately places every arriving job on nodes [0..tasks) at the
// given yield.
func startImmediately(yield float64) *script {
	return &script{onArrival: func(ctl *Controller, jid int) {
		ji := ctl.Job(jid)
		nodes := make([]int, ji.Job.Tasks)
		for i := range nodes {
			nodes[i] = i
		}
		ctl.Start(jid, nodes)
		ctl.SetYield(jid, yield)
	}}
}

func trace(jobs ...workload.Job) *workload.Trace {
	return &workload.Trace{Name: "test", Nodes: 4, NodeMemGB: 8, Jobs: jobs}
}

func job(id int, submit float64, tasks int, exec float64) workload.Job {
	return workload.Job{ID: id, Submit: submit, Tasks: tasks, CPUNeed: 0.5, MemReq: 0.25, ExecTime: exec}
}

func mustRun(t *testing.T, cfg Config, s Scheduler) *Result {
	t.Helper()
	cfg.CheckInvariants = true
	simulator, err := New(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulator.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFullYieldCompletion(t *testing.T) {
	res := mustRun(t, Config{Trace: trace(job(0, 10, 1, 100))}, startImmediately(1))
	if len(res.Jobs) != 1 {
		t.Fatalf("%d jobs finished", len(res.Jobs))
	}
	jr := res.Jobs[0]
	if jr.Start != 10 || jr.Finish != 110 || jr.Turnaround != 100 {
		t.Errorf("start/finish/turnaround = %v/%v/%v, want 10/110/100", jr.Start, jr.Finish, jr.Turnaround)
	}
	if res.Makespan != 110 {
		t.Errorf("makespan = %v", res.Makespan)
	}
}

func TestHalfYieldDoublesRuntime(t *testing.T) {
	res := mustRun(t, Config{Trace: trace(job(0, 0, 1, 100))}, startImmediately(0.5))
	if got := res.Jobs[0].Turnaround; math.Abs(got-200) > 1e-9 {
		t.Errorf("turnaround = %v, want 200 at yield 0.5", got)
	}
}

func TestYieldChangeMidRun(t *testing.T) {
	// Run at yield 1 for 50s, then drop to 0.25 via a timer: remaining 50
	// virtual seconds take 200 wall seconds; total 250.
	s := startImmediately(1)
	s.onInit = func(ctl *Controller) { ctl.SetTimer(50, 1) }
	s.onTimer = func(ctl *Controller, tag int64) { ctl.SetYield(0, 0.25) }
	res := mustRun(t, Config{Trace: trace(job(0, 0, 1, 100))}, s)
	if got := res.Jobs[0].Turnaround; math.Abs(got-250) > 1e-9 {
		t.Errorf("turnaround = %v, want 250", got)
	}
}

func TestVirtualTimeAccounting(t *testing.T) {
	// The paper's example: 10s at yield 1.0, pause 120s, 30s at yield 0.5
	// gives 25 virtual seconds.
	var vtAt25 float64
	s := &script{
		onArrival: func(ctl *Controller, jid int) {
			ctl.Start(jid, []int{0})
			ctl.SetYield(jid, 1)
		},
		onTimer: func(ctl *Controller, tag int64) {
			switch tag {
			case 1: // t=10: pause
				ctl.Pause(0)
			case 2: // t=130: resume at yield 0.5
				ctl.Resume(0, []int{0})
				ctl.SetYield(0, 0.5)
			case 3: // t=160: observe virtual time
				vtAt25 = ctl.Job(0).VirtualTime
			}
		},
		onInit: func(ctl *Controller) {
			ctl.SetTimer(10, 1)
			ctl.SetTimer(130, 2)
			ctl.SetTimer(160, 3)
		},
	}
	mustRun(t, Config{Trace: trace(job(0, 0, 1, 100))}, s)
	if math.Abs(vtAt25-25) > 1e-9 {
		t.Errorf("virtual time = %v, want 25 (10x1.0 + 30x0.5)", vtAt25)
	}
}

func TestPenaltyFreezesProgress(t *testing.T) {
	// Pause at t=10, resume at t=20 with a 300s penalty: the job holds
	// nodes from t=20 but only progresses from t=320. Remaining 90
	// virtual seconds -> finish at 410.
	s := &script{
		onArrival: func(ctl *Controller, jid int) {
			ctl.Start(jid, []int{0})
			ctl.SetYield(jid, 1)
		},
		onInit: func(ctl *Controller) {
			ctl.SetTimer(10, 1)
			ctl.SetTimer(20, 2)
		},
		onTimer: func(ctl *Controller, tag int64) {
			switch tag {
			case 1:
				ctl.Pause(0)
			case 2:
				ctl.Resume(0, []int{1})
				ctl.SetYield(0, 1)
			}
		},
	}
	res := mustRun(t, Config{Trace: trace(job(0, 0, 1, 100)), Penalty: 300}, s)
	if got := res.Jobs[0].Finish; math.Abs(got-410) > 1e-9 {
		t.Errorf("finish = %v, want 410", got)
	}
	if res.PreemptionOps != 1 {
		t.Errorf("preemptions = %d, want 1", res.PreemptionOps)
	}
	// Save + restore of 1 task x 0.25 x 8 GB = 2 GB each way -> 4 GB.
	if math.Abs(res.PreemptionGB-4) > 1e-9 {
		t.Errorf("preemption GB = %v, want 4", res.PreemptionGB)
	}
	if res.Jobs[0].Pauses != 1 {
		t.Errorf("job pauses = %d", res.Jobs[0].Pauses)
	}
}

func TestMigrationAccounting(t *testing.T) {
	s := &script{
		onArrival: func(ctl *Controller, jid int) {
			ctl.Start(jid, []int{0})
			ctl.SetYield(jid, 1)
		},
		onInit: func(ctl *Controller) { ctl.SetTimer(40, 1) },
		onTimer: func(ctl *Controller, tag int64) {
			ctl.Migrate(0, []int{2})
			ctl.SetYield(0, 1)
		},
	}
	res := mustRun(t, Config{Trace: trace(job(0, 0, 1, 100)), Penalty: 300}, s)
	// 40s of progress, then 300s frozen, then 60s remaining: finish 400.
	if got := res.Jobs[0].Finish; math.Abs(got-400) > 1e-9 {
		t.Errorf("finish = %v, want 400", got)
	}
	if res.MigrationOps != 1 || res.PreemptionOps != 0 {
		t.Errorf("ops = %d pmtn, %d mig", res.PreemptionOps, res.MigrationOps)
	}
	// Migration moves 2 GB twice.
	if math.Abs(res.MigrationGB-4) > 1e-9 {
		t.Errorf("migration GB = %v, want 4", res.MigrationGB)
	}
}

func TestMigrateToSameNodesIsNoop(t *testing.T) {
	s := &script{
		onArrival: func(ctl *Controller, jid int) {
			ctl.Start(jid, []int{0, 1})
			ctl.SetYield(jid, 1)
		},
		onInit: func(ctl *Controller) { ctl.SetTimer(10, 1) },
		onTimer: func(ctl *Controller, tag int64) {
			// Same multiset, different order: physically identical.
			ctl.Migrate(0, []int{1, 0})
		},
	}
	res := mustRun(t, Config{Trace: trace(job(0, 0, 2, 100)), Penalty: 300}, s)
	if res.MigrationOps != 0 {
		t.Errorf("permutation counted as migration")
	}
	if got := res.Jobs[0].Finish; math.Abs(got-100) > 1e-9 {
		t.Errorf("finish = %v, want 100 (no freeze)", got)
	}
}

func TestSameEventPauseResumeRefund(t *testing.T) {
	// Pausing and resuming on the same nodes within one event must leave
	// no trace: no ops, no penalty.
	s := &script{
		onArrival: func(ctl *Controller, jid int) {
			ctl.Start(jid, []int{0})
			ctl.SetYield(jid, 1)
		},
		onInit: func(ctl *Controller) { ctl.SetTimer(10, 1) },
		onTimer: func(ctl *Controller, tag int64) {
			ctl.Pause(0)
			ctl.Resume(0, []int{0})
			ctl.SetYield(0, 1)
		},
	}
	res := mustRun(t, Config{Trace: trace(job(0, 0, 1, 100)), Penalty: 300}, s)
	if res.PreemptionOps != 0 || res.MigrationOps != 0 {
		t.Errorf("ops = %d pmtn %d mig, want 0/0", res.PreemptionOps, res.MigrationOps)
	}
	if got := res.Jobs[0].Finish; math.Abs(got-100) > 1e-9 {
		t.Errorf("finish = %v, want 100", got)
	}
	if res.PreemptionGB != 0 {
		t.Errorf("preemption GB = %v, want 0 after refund", res.PreemptionGB)
	}
}

func TestSameEventPauseResumeElsewhereIsMigration(t *testing.T) {
	s := &script{
		onArrival: func(ctl *Controller, jid int) {
			ctl.Start(jid, []int{0})
			ctl.SetYield(jid, 1)
		},
		onInit: func(ctl *Controller) { ctl.SetTimer(10, 1) },
		onTimer: func(ctl *Controller, tag int64) {
			ctl.Pause(0)
			ctl.Resume(0, []int{3})
			ctl.SetYield(0, 1)
		},
	}
	res := mustRun(t, Config{Trace: trace(job(0, 0, 1, 100)), Penalty: 300}, s)
	if res.PreemptionOps != 0 || res.MigrationOps != 1 {
		t.Errorf("ops = %d pmtn %d mig, want 0/1 (reclassified)", res.PreemptionOps, res.MigrationOps)
	}
	if res.Jobs[0].Migrations != 1 || res.Jobs[0].Pauses != 0 {
		t.Errorf("job counters: %d pauses %d migs", res.Jobs[0].Pauses, res.Jobs[0].Migrations)
	}
	if got := res.Jobs[0].Finish; math.Abs(got-400) > 1e-9 {
		t.Errorf("finish = %v, want 400 (penalty applies)", got)
	}
}

func TestTwoJobsSharedNode(t *testing.T) {
	// Two 1-task jobs on the same node at yield 0.5 each; both finish at
	// 2x execution time.
	s := &script{onArrival: func(ctl *Controller, jid int) {
		ctl.Start(jid, []int{0})
		ctl.SetYield(0, 0)
		if ctl.Job(1).State == Running {
			ctl.SetYield(0, 0.5)
			ctl.SetYield(1, 0.5)
		} else {
			ctl.SetYield(0, 1)
		}
	}}
	tr := trace(job(0, 0, 1, 100), job(1, 0, 1, 100))
	res := mustRun(t, Config{Trace: tr}, s)
	for _, jr := range res.Jobs {
		if math.Abs(jr.Turnaround-200) > 1e-6 {
			t.Errorf("job %d turnaround = %v, want 200", jr.Job.ID, jr.Turnaround)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	// A scheduler that never starts anything must be reported, not hang.
	simulator, err := New(Config{Trace: trace(job(0, 0, 1, 10))}, &script{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simulator.Run(); err == nil {
		t.Error("expected deadlock error")
	}
}

func TestMaxSimTime(t *testing.T) {
	// Yield so low the job would take years: MaxSimTime must abort.
	s := startImmediately(1e-9)
	simulator, err := New(Config{Trace: trace(job(0, 0, 1, 1000)), MaxSimTime: 3600}, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simulator.Run(); err == nil {
		t.Error("expected MaxSimTime error")
	}
}

func TestControllerViews(t *testing.T) {
	var checked bool
	s := &script{
		onArrival: func(ctl *Controller, jid int) {
			if ctl.NumNodes() != 4 || ctl.NumJobs() != 2 {
				t.Errorf("NumNodes/NumJobs = %d/%d", ctl.NumNodes(), ctl.NumJobs())
			}
			ji := ctl.Job(jid)
			if ji.State != Pending {
				t.Errorf("arriving job state = %v", ji.State)
			}
			ctl.Start(jid, []int{1})
			ctl.SetYield(jid, 0.8)
			if got := ctl.CPULoad(1); math.Abs(got-0.5) > 1e-12 {
				t.Errorf("CPULoad = %v, want 0.5 (the need, not the allocation)", got)
			}
			if got := ctl.AllocatedCPU(1); math.Abs(got-0.4) > 1e-12 {
				t.Errorf("AllocatedCPU = %v, want 0.4", got)
			}
			if got := ctl.UsedMem(1); math.Abs(got-0.25) > 1e-12 {
				t.Errorf("UsedMem = %v, want 0.25", got)
			}
			if got := ctl.FreeMem(1); math.Abs(got-0.75) > 1e-12 {
				t.Errorf("FreeMem = %v, want 0.75", got)
			}
			if got := ctl.MaxCPULoad(); math.Abs(got-0.5) > 1e-12 {
				t.Errorf("MaxCPULoad = %v", got)
			}
			if got := ctl.EarliestFinish(jid); math.Abs(got-125) > 1e-9 {
				t.Errorf("EarliestFinish = %v, want 125 (100/0.8)", got)
			}
			checked = true
		},
	}
	tr := &workload.Trace{Name: "v", Nodes: 4, NodeMemGB: 8, Jobs: []workload.Job{
		job(0, 0, 1, 100),
		job(1, 1e6, 1, 1), // future job: must be invisible at t=0
	}}
	simulator, err := New(Config{Trace: tr, CheckInvariants: true}, &script{
		onArrival: func(ctl *Controller, jid int) {
			if jid == 0 {
				s.onArrival(ctl, jid)
				if got := len(ctl.ActiveJobs()); got != 1 {
					t.Errorf("ActiveJobs = %d, want 1 (future jobs invisible)", got)
				}
				return
			}
			ctl.Start(jid, []int{0})
			ctl.SetYield(jid, 1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simulator.Run(); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Error("controller checks never ran")
	}
}

func TestAttemptsCounter(t *testing.T) {
	s := &script{
		onArrival: func(ctl *Controller, jid int) {
			if got := ctl.IncrementAttempts(jid); got != 1 {
				t.Errorf("first increment = %d", got)
			}
			if got := ctl.IncrementAttempts(jid); got != 2 {
				t.Errorf("second increment = %d", got)
			}
			ctl.Start(jid, []int{0})
			ctl.SetYield(jid, 1)
		},
	}
	mustRun(t, Config{Trace: trace(job(0, 0, 1, 10))}, s)
}

func TestStateString(t *testing.T) {
	names := map[JobState]string{Pending: "pending", Running: "running", Paused: "paused", Done: "done"}
	for st, want := range names {
		if got := st.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", st, got, want)
		}
	}
}

func TestRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}, &script{}); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := New(Config{Trace: trace(job(0, 0, 1, 10)), Penalty: -1}, &script{}); err == nil {
		t.Error("negative penalty accepted")
	}
	bad := trace(workload.Job{ID: 0, Tasks: 0, CPUNeed: 0.5, MemReq: 0.5, ExecTime: 1})
	if _, err := New(Config{Trace: bad}, &script{}); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestSchedTimeRecording(t *testing.T) {
	simulator, err := New(Config{Trace: trace(job(0, 0, 1, 10)), RecordSchedTimes: true}, startImmediately(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulator.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SchedSamples) == 0 {
		t.Error("no scheduler timing samples recorded")
	}
}
