package sim

import (
	"fmt"
	"sort"
)

// TimelineKind labels one recorded scheduling transition.
type TimelineKind int

// Timeline event kinds, in rough lifecycle order.
const (
	TlSubmit TimelineKind = iota
	TlStart
	TlYield
	TlPause
	TlResume
	TlMigrate
	TlFinish
)

// String returns the lowercase kind name.
func (k TimelineKind) String() string {
	switch k {
	case TlSubmit:
		return "submit"
	case TlStart:
		return "start"
	case TlYield:
		return "yield"
	case TlPause:
		return "pause"
	case TlResume:
		return "resume"
	case TlMigrate:
		return "migrate"
	case TlFinish:
		return "finish"
	}
	return fmt.Sprintf("TimelineKind(%d)", int(k))
}

// TimelineEvent is one recorded transition of one job. Yield carries the
// job's yield after the transition; FrozenUntil is non-zero for resumes and
// migrations under a rescheduling penalty.
type TimelineEvent struct {
	Time        float64
	JID         int
	Kind        TimelineKind
	Yield       float64
	FrozenUntil float64
}

// record appends a timeline event when recording is enabled.
func (s *Simulator) record(kind TimelineKind, jid int, yield, frozenUntil float64) {
	if !s.cfg.RecordTimeline {
		return
	}
	s.result.Timeline = append(s.result.Timeline, TimelineEvent{
		Time: s.now, JID: jid, Kind: kind, Yield: yield, FrozenUntil: frozenUntil,
	})
}

// SegmentState classifies one interval of a job's life.
type SegmentState int

// Segment states.
const (
	SegWaiting SegmentState = iota // submitted, not yet dispatched
	SegRunning                     // holding nodes and progressing at Yield
	SegFrozen                      // holding nodes, rescheduling penalty
	SegPaused                      // preempted, holding nothing
)

// String returns the lowercase state name.
func (s SegmentState) String() string {
	switch s {
	case SegWaiting:
		return "waiting"
	case SegRunning:
		return "running"
	case SegFrozen:
		return "frozen"
	case SegPaused:
		return "paused"
	}
	return fmt.Sprintf("SegmentState(%d)", int(s))
}

// Segment is one homogeneous interval of a job's timeline.
type Segment struct {
	From, To float64
	State    SegmentState
	Yield    float64 // meaningful for SegRunning
}

// JobSegments reconstructs job jid's life as a sequence of contiguous
// segments from the recorded timeline. It returns nil when the run did not
// record a timeline or the job never appears.
func (r *Result) JobSegments(jid int) []Segment {
	var evs []TimelineEvent
	for _, e := range r.Timeline {
		if e.JID == jid {
			evs = append(evs, e)
		}
	}
	if len(evs) == 0 {
		return nil
	}
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].Time < evs[b].Time })

	var segs []Segment
	cur := Segment{From: evs[0].Time, State: SegWaiting}
	closeAt := func(t float64) {
		if t > cur.From {
			cur.To = t
			segs = append(segs, cur)
		}
	}
	open := func(t float64, st SegmentState, y float64) {
		cur = Segment{From: t, State: st, Yield: y}
	}
	// splitFrozen opens a frozen segment and queues the running segment
	// that follows it.
	for _, e := range evs {
		switch e.Kind {
		case TlSubmit:
			// Already open.
		case TlStart:
			closeAt(e.Time)
			open(e.Time, SegRunning, e.Yield)
		case TlYield:
			if cur.State == SegRunning && cur.Yield != e.Yield {
				closeAt(e.Time)
				open(e.Time, SegRunning, e.Yield)
			} else if cur.State == SegFrozen {
				// Yield set during a freeze: keep the freeze, update the
				// eventual yield.
				cur.Yield = e.Yield
			}
		case TlPause:
			closeAt(e.Time)
			open(e.Time, SegPaused, 0)
		case TlResume, TlMigrate:
			closeAt(e.Time)
			if e.FrozenUntil > e.Time {
				open(e.Time, SegFrozen, e.Yield)
			} else {
				open(e.Time, SegRunning, e.Yield)
			}
		case TlFinish:
			closeAt(e.Time)
			cur = Segment{From: e.Time, To: e.Time, State: SegRunning}
		}
		// A freeze ends silently when the clock passes FrozenUntil; since
		// freezes always end before the job's next transition or finish,
		// split lazily here.
		if cur.State == SegFrozen && e.FrozenUntil > 0 {
			// Leave open; the next event (or finish) closes it. Splitting
			// at the exact thaw instant happens below.
			continue
		}
	}
	// Post-process: split frozen segments at their thaw instant.
	out := segs[:0:0]
	for _, seg := range segs {
		if seg.State != SegFrozen {
			out = append(out, seg)
			continue
		}
		thaw := seg.From // frozen segments record Yield; find thaw from events
		for _, e := range evs {
			if (e.Kind == TlResume || e.Kind == TlMigrate) && e.Time == seg.From {
				thaw = e.FrozenUntil
				break
			}
		}
		if thaw > seg.From && thaw < seg.To {
			out = append(out, Segment{From: seg.From, To: thaw, State: SegFrozen})
			out = append(out, Segment{From: thaw, To: seg.To, State: SegRunning, Yield: seg.Yield})
		} else {
			out = append(out, seg)
		}
	}
	return out
}
