package sim

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/floats"
	"repro/internal/workload"
)

// This file is the simulator's federation surface: the read accessors a
// dispatch layer needs to route jobs across several simulators advancing
// under one external clock (internal/federation), and the direct-admission
// hook that hands a routed job to its destination simulator. Everything
// here composes with the step API (Start / HasPendingEvents /
// PeekNextEventTime / ProcessNextEvent / Finalize); none of it perturbs a
// conventional Run.

// Now returns the simulator's current clock in simulated seconds. Before
// the first processed event it is 0.
func (s *Simulator) Now() float64 { return s.now }

// JobsInSystem returns the number of jobs admitted but not yet completed
// (pending + running + paused). In streaming mode this counts only jobs the
// source or InjectJob has actually delivered, so it is the queue-depth
// signal dispatch policies balance on.
func (s *Simulator) JobsInSystem() int { return s.remainingJobs }

// CanAdmit reports whether job j could ever be admitted to this simulator's
// cluster: it runs the exact admission checks of the streaming path —
// workload validation against the cluster size, per-dimension
// unschedulability, aggregate rigid capacity, and the scheduler's own
// CapacityChecker veto — without admitting anything. A nil return means an
// InjectJob of the same job cannot fail these checks (it may still fail the
// nondecreasing-submission contract).
func (s *Simulator) CanAdmit(j workload.Job) error {
	if err := j.Validate(s.cl.N()); err != nil {
		return err
	}
	return s.checkSchedulable(j)
}

// FreeTaskSlots returns how many of job j's identical tasks the cluster
// could host right now on its unallocated rigid capacity (memory and any
// further rigid dimensions), capped at the job's task count. It applies the
// shared TaskSlots rule to free rather than total capacity, so a cluster
// whose memory is fully committed reports 0 even when the job is statically
// schedulable — the "is there room right now" signal behind cost-aware
// cloud bursting. CPU is fluid (jobs share it through yields) and never
// constrains the count.
func (s *Simulator) FreeTaskSlots(j workload.Job) int {
	return TaskSlots(s.cl.N(), j.Tasks, cluster.DimMem, s.cl.D(), j.Demand,
		func(node, k int) float64 {
			return floats.NonNeg(s.cl.Cap(node, k) - s.usedRigid[k-1][node])
		})
}

// InjectJob admits a job directly into a streaming-mode simulator, exactly
// as if the configured Source had produced it: the job is validated,
// capacity-checked, given the next jid and queued for its arrival hook
// (arrivals outrank coincident queue events, preserving the canonical event
// order). It is the admission path of the federation layer, whose
// dispatcher — not a per-simulator source — decides which simulator each
// arriving job enters. Jobs must be injected in nondecreasing submission
// order per simulator, and never behind the simulator's clock; both
// violations are reported as errors. Materialized (non-streaming)
// simulators own their whole trace up front and reject injection.
func (s *Simulator) InjectJob(j workload.Job) error {
	if s.src == nil {
		return fmt.Errorf("sim: InjectJob on a materialized simulator (configure a streaming Source)")
	}
	// Seed the calendar first: Start pushes arrival events for every job
	// already in s.jobs, so admitting before it would double-deliver the
	// arrival (once from the queue, once from the arrival FIFO).
	s.Start()
	if j.Submit < s.now-floats.Eps {
		return fmt.Errorf("sim: injected job %d submitted at %.6f behind the clock %.6f", j.ID, j.Submit, s.now)
	}
	return s.admit(j)
}

// StepUntil processes pending events whose timestamps are strictly before
// horizon, up to max of them, and returns how many ran. Events at or after
// the horizon stay queued — the conservative-lookahead contract of the
// parallel federation loop, where the horizon is the next arrival instant
// and ties defer to the arrival. A return below max means no further event
// lies before the horizon; a return of exactly max means the caller should
// call again (the chunking lets it check for cancellation between chunks).
func (s *Simulator) StepUntil(horizon float64, max int) (int, error) {
	for n := 0; ; n++ {
		if n >= max {
			return n, nil
		}
		t, ok := s.PeekNextEventTime()
		if !ok || t >= horizon {
			return n, nil
		}
		if err := s.ProcessNextEvent(); err != nil {
			return n, err
		}
	}
}
