package index

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/floats"
)

// scanMaxLoad is the historical O(n) max-load scan the tree replaces.
func scanMaxLoad(load []float64) float64 {
	m := 0.0
	for _, l := range load {
		if l > m {
			m = l
		}
	}
	return m
}

// scanArgmin is the historical O(n) least-loaded-feasible-node scan.
func scanArgmin(load, mem []float64, memReq float64) int {
	best := -1
	bestLoad := math.Inf(1)
	for node := range load {
		if !floats.LessEq(memReq, mem[node]) {
			continue
		}
		if load[node] < bestLoad {
			bestLoad = load[node]
			best = node
		}
	}
	return best
}

// TestNodeIndexMatchesScan drives random Set/query interleavings against
// the reference scans for a range of node counts (including non-powers of
// two, so padding leaves are exercised) and checks every answer agrees.
func TestNodeIndexMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 5, 8, 13, 64, 100} {
		load := make([]float64, n)
		mem := make([]float64, n)
		for i := range mem {
			mem[i] = rng.Float64() * 4
		}
		idx := NewNodeIndex(n, func(node int) float64 { return mem[node] })
		for step := 0; step < 2000; step++ {
			switch rng.Intn(3) {
			case 0: // mutate one node
				node := rng.Intn(n)
				load[node] = rng.Float64() * 3
				mem[node] = rng.Float64() * 4
				if rng.Intn(10) == 0 {
					mem[node] = 0
				}
				if rng.Intn(10) == 0 {
					load[node] = 0
				}
				idx.Set(node, load[node], mem[node])
			case 1:
				want := scanMaxLoad(load)
				if got := idx.MaxLoad(); got != want {
					t.Fatalf("n=%d step=%d: MaxLoad=%v, scan=%v", n, step, got, want)
				}
			case 2:
				memReq := rng.Float64() * 4.5
				if rng.Intn(8) == 0 {
					// Exact-boundary request: equality must resolve the
					// same way in tree and scan (both use floats.LessEq).
					memReq = mem[rng.Intn(n)]
				}
				want := scanArgmin(load, mem, memReq)
				if got := idx.ArgminLoad(memReq); got != want {
					t.Fatalf("n=%d step=%d: ArgminLoad(%v)=%d, scan=%d", n, step, memReq, got, want)
				}
			}
		}
	}
}

// TestNodeIndexTies checks the ascending-node-id tie-break: among equally
// loaded feasible nodes the lowest id must win, exactly like a
// left-to-right scan with strict improvement.
func TestNodeIndexTies(t *testing.T) {
	idx := NewNodeIndex(6, func(int) float64 { return 1 })
	if got := idx.ArgminLoad(0.5); got != 0 {
		t.Fatalf("all-equal argmin = %d, want 0", got)
	}
	idx.Set(0, 0, 0.1) // node 0 infeasible for large requests
	if got := idx.ArgminLoad(0.5); got != 1 {
		t.Fatalf("argmin with node 0 infeasible = %d, want 1", got)
	}
	idx.Set(3, -0.0, 1) // -0 compares equal to 0: node 1 still wins
	if got := idx.ArgminLoad(0.5); got != 1 {
		t.Fatalf("argmin with -0 tie = %d, want 1", got)
	}
}

// TestNodeIndexEmpty covers the degenerate zero-node index.
func TestNodeIndexEmpty(t *testing.T) {
	idx := NewNodeIndex(0, nil)
	if got := idx.MaxLoad(); got != 0 {
		t.Fatalf("empty MaxLoad = %v, want 0", got)
	}
	if got := idx.ArgminLoad(0); got != -1 {
		t.Fatalf("empty ArgminLoad = %d, want -1", got)
	}
}

// TestClasses groups nodes by capacity-vector equality.
func TestClasses(t *testing.T) {
	nodes := []cluster.NodeSpec{
		{Caps: cluster.Vec{1, 1}},
		{Caps: cluster.Vec{2, 1}},
		{Caps: cluster.Vec{1, 1}},
		{Caps: cluster.Vec{1, 1, 1}},
		{Caps: cluster.Vec{2, 1}},
	}
	classOf, reps := Classes(nodes)
	wantClass := []int{0, 1, 0, 2, 1}
	wantReps := []int{0, 1, 3}
	for i, c := range classOf {
		if c != wantClass[i] {
			t.Fatalf("classOf[%d] = %d, want %d", i, c, wantClass[i])
		}
	}
	if len(reps) != len(wantReps) {
		t.Fatalf("reps = %v, want %v", reps, wantReps)
	}
	for i, r := range reps {
		if r != wantReps[i] {
			t.Fatalf("reps[%d] = %d, want %d", i, r, wantReps[i])
		}
	}
}
