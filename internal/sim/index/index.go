// Package index provides the incremental node-state indexes behind the
// simulator's O(log n) scheduling queries: a tournament (segment) tree over
// per-node (relative CPU load, free memory) pairs answering max-load and
// feasible-argmin queries without scanning every node, and capacity classes
// grouping nodes with identical capacity vectors so whole-node eligibility
// counts collapse to one check per distinct node shape.
//
// The tree reproduces the simulator's historical O(n) scans bit for bit:
// leaves store exactly the values the scans computed per node, aggregation
// uses only comparisons (max/min are exact and associative for floats, NaN
// excluded), and the argmin query visits leaves in ascending node order so
// the strict-improvement rule selects the same node as a left-to-right
// scan.
package index

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/floats"
)

// NodeIndex is a tournament tree over the cluster's nodes. Each leaf holds
// one node's relative CPU load (load divided by the node's CPU capacity)
// and free memory; internal vertices aggregate the minimum load, maximum
// load and maximum free memory of their subtree. All three aggregates are
// maintained on every Set, so max-load reads are O(1) and feasibility-
// pruned argmin queries are O(log n) amortized.
type NodeIndex struct {
	n    int // node count
	size int // leaf span: smallest power of two >= n
	// Arrays are 1-based segment-tree layouts of length 2*size: vertex v
	// has children 2v and 2v+1, leaves live at [size, size+n).
	minLoad []float64
	maxLoad []float64
	maxMem  []float64

	qBest int     // argmin query scratch
	qLoad float64 // argmin query scratch
}

// NewNodeIndex builds an index for n nodes with all loads zero and the
// given per-node free memory. Padding leaves (beyond n) are initialized so
// they never win any query: +Inf min-load, -Inf max-load and free memory.
func NewNodeIndex(n int, freeMem func(node int) float64) *NodeIndex {
	size := 1
	for size < n {
		size *= 2
	}
	t := &NodeIndex{
		n:       n,
		size:    size,
		minLoad: make([]float64, 2*size),
		maxLoad: make([]float64, 2*size),
		maxMem:  make([]float64, 2*size),
	}
	for i := 0; i < size; i++ {
		v := size + i
		if i < n {
			t.minLoad[v], t.maxLoad[v], t.maxMem[v] = 0, 0, freeMem(i)
		} else {
			t.minLoad[v], t.maxLoad[v], t.maxMem[v] = math.Inf(1), math.Inf(-1), math.Inf(-1)
		}
	}
	for v := size - 1; v >= 1; v-- {
		t.pull(v)
	}
	return t
}

// N returns the node count the index was built for.
func (t *NodeIndex) N() int { return t.n }

// fmin/fmax are branchy min/max for NaN-free values: unlike math.Min/Max
// (real calls on platforms without float min/max instructions) they inline.
// Leaves never hold NaN, and the ±0 ordering difference from math.Min/Max
// is invisible to the index's comparisons.
func fmin(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func fmax(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func (t *NodeIndex) pull(v int) {
	l, r := 2*v, 2*v+1
	t.minLoad[v] = fmin(t.minLoad[l], t.minLoad[r])
	t.maxLoad[v] = fmax(t.maxLoad[l], t.maxLoad[r])
	t.maxMem[v] = fmax(t.maxMem[l], t.maxMem[r])
}

// Set updates one node's leaf to the given relative load and free memory
// and re-aggregates its root path. The climb stops at the first vertex
// whose aggregates come out unchanged — its ancestors cannot change either
// — so updates to non-extremal nodes touch only a level or two.
func (t *NodeIndex) Set(node int, relLoad, freeMem float64) {
	v := t.size + node
	t.minLoad[v], t.maxLoad[v], t.maxMem[v] = relLoad, relLoad, freeMem
	for v >>= 1; v >= 1; v >>= 1 {
		l, r := 2*v, 2*v+1
		nMin := fmin(t.minLoad[l], t.minLoad[r])
		nMax := fmax(t.maxLoad[l], t.maxLoad[r])
		nMem := fmax(t.maxMem[l], t.maxMem[r])
		if nMin == t.minLoad[v] && nMax == t.maxLoad[v] && nMem == t.maxMem[v] {
			return
		}
		t.minLoad[v], t.maxLoad[v], t.maxMem[v] = nMin, nMax, nMem
	}
}

// Load returns the relative load currently stored for node.
func (t *NodeIndex) Load(node int) float64 { return t.minLoad[t.size+node] }

// FreeMem returns the free memory currently stored for node.
func (t *NodeIndex) FreeMem(node int) float64 { return t.maxMem[t.size+node] }

// MaxLoad returns the maximum relative load over all nodes, floored at
// zero — exactly the result of the historical scan that started its
// running maximum at 0 and only took strictly larger values.
func (t *NodeIndex) MaxLoad() float64 {
	if t.n == 0 || t.maxLoad[1] <= 0 {
		return 0
	}
	return t.maxLoad[1]
}

// ArgminLoad returns the lowest-numbered node with the strictly smallest
// relative load among nodes whose free memory covers memReq under
// floats.LessEq, or -1 if no node does. LessEq is monotone in its second
// argument, so subtrees are pruned when even their maximum free memory
// fails the predicate; right subtrees are pruned when they cannot strictly
// beat the best load found to their left. Together that reproduces an
// ascending-node-id scan with the strict-improvement rule, in O(log n)
// amortized.
func (t *NodeIndex) ArgminLoad(memReq float64) int {
	t.qBest, t.qLoad = -1, math.Inf(1)
	t.argmin(1, memReq)
	return t.qBest
}

func (t *NodeIndex) argmin(v int, memReq float64) {
	if !floats.LessEq(memReq, t.maxMem[v]) {
		return
	}
	if t.qBest >= 0 && t.minLoad[v] >= t.qLoad {
		return
	}
	if v >= t.size {
		if node := v - t.size; node < t.n && t.minLoad[v] < t.qLoad {
			t.qBest, t.qLoad = node, t.minLoad[v]
		}
		return
	}
	t.argmin(2*v, memReq)
	t.argmin(2*v+1, memReq)
}

// Classes partitions nodes by capacity-vector equality: all nodes whose
// Caps compare equal element for element share a class. It returns the
// per-node class assignment and one representative node id per class (the
// lowest-numbered member). Predicates that depend only on a node's
// capacities — batch whole-node eligibility, for one — are then evaluated
// once per class instead of once per node.
func Classes(nodes []cluster.NodeSpec) (classOf []int, reps []int) {
	classOf = make([]int, len(nodes))
	for i := range nodes {
		found := -1
		for c, rep := range reps {
			if sameCaps(nodes[i].Caps, nodes[rep].Caps) {
				found = c
				break
			}
		}
		if found < 0 {
			found = len(reps)
			reps = append(reps, i)
		}
		classOf[i] = found
	}
	return classOf, reps
}

func sameCaps(a, b cluster.Vec) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}
